
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/test_cache.cpp" "tests/mem/CMakeFiles/cooprt_mem_tests.dir/test_cache.cpp.o" "gcc" "tests/mem/CMakeFiles/cooprt_mem_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/mem/test_dram.cpp" "tests/mem/CMakeFiles/cooprt_mem_tests.dir/test_dram.cpp.o" "gcc" "tests/mem/CMakeFiles/cooprt_mem_tests.dir/test_dram.cpp.o.d"
  "/root/repo/tests/mem/test_memory_system.cpp" "tests/mem/CMakeFiles/cooprt_mem_tests.dir/test_memory_system.cpp.o" "gcc" "tests/mem/CMakeFiles/cooprt_mem_tests.dir/test_memory_system.cpp.o.d"
  "/root/repo/tests/mem/test_sectored_cache.cpp" "tests/mem/CMakeFiles/cooprt_mem_tests.dir/test_sectored_cache.cpp.o" "gcc" "tests/mem/CMakeFiles/cooprt_mem_tests.dir/test_sectored_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/cooprt_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

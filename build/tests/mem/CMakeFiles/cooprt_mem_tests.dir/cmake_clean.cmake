file(REMOVE_RECURSE
  "CMakeFiles/cooprt_mem_tests.dir/test_cache.cpp.o"
  "CMakeFiles/cooprt_mem_tests.dir/test_cache.cpp.o.d"
  "CMakeFiles/cooprt_mem_tests.dir/test_dram.cpp.o"
  "CMakeFiles/cooprt_mem_tests.dir/test_dram.cpp.o.d"
  "CMakeFiles/cooprt_mem_tests.dir/test_memory_system.cpp.o"
  "CMakeFiles/cooprt_mem_tests.dir/test_memory_system.cpp.o.d"
  "CMakeFiles/cooprt_mem_tests.dir/test_sectored_cache.cpp.o"
  "CMakeFiles/cooprt_mem_tests.dir/test_sectored_cache.cpp.o.d"
  "cooprt_mem_tests"
  "cooprt_mem_tests.pdb"
  "cooprt_mem_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_mem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

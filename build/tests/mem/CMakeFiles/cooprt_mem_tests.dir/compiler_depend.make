# Empty compiler generated dependencies file for cooprt_mem_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_sampler.cpp" "tests/stats/CMakeFiles/cooprt_stats_tests.dir/test_sampler.cpp.o" "gcc" "tests/stats/CMakeFiles/cooprt_stats_tests.dir/test_sampler.cpp.o.d"
  "/root/repo/tests/stats/test_table.cpp" "tests/stats/CMakeFiles/cooprt_stats_tests.dir/test_table.cpp.o" "gcc" "tests/stats/CMakeFiles/cooprt_stats_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/stats/test_timeline.cpp" "tests/stats/CMakeFiles/cooprt_stats_tests.dir/test_timeline.cpp.o" "gcc" "tests/stats/CMakeFiles/cooprt_stats_tests.dir/test_timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/cooprt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for cooprt_stats_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cooprt_stats_tests.dir/test_sampler.cpp.o"
  "CMakeFiles/cooprt_stats_tests.dir/test_sampler.cpp.o.d"
  "CMakeFiles/cooprt_stats_tests.dir/test_table.cpp.o"
  "CMakeFiles/cooprt_stats_tests.dir/test_table.cpp.o.d"
  "CMakeFiles/cooprt_stats_tests.dir/test_timeline.cpp.o"
  "CMakeFiles/cooprt_stats_tests.dir/test_timeline.cpp.o.d"
  "cooprt_stats_tests"
  "cooprt_stats_tests.pdb"
  "cooprt_stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cooprt_bvh_tests.dir/test_builder.cpp.o"
  "CMakeFiles/cooprt_bvh_tests.dir/test_builder.cpp.o.d"
  "CMakeFiles/cooprt_bvh_tests.dir/test_flat_bvh.cpp.o"
  "CMakeFiles/cooprt_bvh_tests.dir/test_flat_bvh.cpp.o.d"
  "CMakeFiles/cooprt_bvh_tests.dir/test_tlas.cpp.o"
  "CMakeFiles/cooprt_bvh_tests.dir/test_tlas.cpp.o.d"
  "CMakeFiles/cooprt_bvh_tests.dir/test_traversal.cpp.o"
  "CMakeFiles/cooprt_bvh_tests.dir/test_traversal.cpp.o.d"
  "CMakeFiles/cooprt_bvh_tests.dir/test_wide_bvh.cpp.o"
  "CMakeFiles/cooprt_bvh_tests.dir/test_wide_bvh.cpp.o.d"
  "cooprt_bvh_tests"
  "cooprt_bvh_tests.pdb"
  "cooprt_bvh_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_bvh_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

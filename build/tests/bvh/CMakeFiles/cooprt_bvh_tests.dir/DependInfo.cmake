
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bvh/test_builder.cpp" "tests/bvh/CMakeFiles/cooprt_bvh_tests.dir/test_builder.cpp.o" "gcc" "tests/bvh/CMakeFiles/cooprt_bvh_tests.dir/test_builder.cpp.o.d"
  "/root/repo/tests/bvh/test_flat_bvh.cpp" "tests/bvh/CMakeFiles/cooprt_bvh_tests.dir/test_flat_bvh.cpp.o" "gcc" "tests/bvh/CMakeFiles/cooprt_bvh_tests.dir/test_flat_bvh.cpp.o.d"
  "/root/repo/tests/bvh/test_tlas.cpp" "tests/bvh/CMakeFiles/cooprt_bvh_tests.dir/test_tlas.cpp.o" "gcc" "tests/bvh/CMakeFiles/cooprt_bvh_tests.dir/test_tlas.cpp.o.d"
  "/root/repo/tests/bvh/test_traversal.cpp" "tests/bvh/CMakeFiles/cooprt_bvh_tests.dir/test_traversal.cpp.o" "gcc" "tests/bvh/CMakeFiles/cooprt_bvh_tests.dir/test_traversal.cpp.o.d"
  "/root/repo/tests/bvh/test_wide_bvh.cpp" "tests/bvh/CMakeFiles/cooprt_bvh_tests.dir/test_wide_bvh.cpp.o" "gcc" "tests/bvh/CMakeFiles/cooprt_bvh_tests.dir/test_wide_bvh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bvh/CMakeFiles/cooprt_bvh.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/cooprt_scene.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

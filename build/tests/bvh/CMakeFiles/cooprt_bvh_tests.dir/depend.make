# Empty dependencies file for cooprt_bvh_tests.
# This may be replaced when dependencies are built.

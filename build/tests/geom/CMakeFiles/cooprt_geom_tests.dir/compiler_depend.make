# Empty compiler generated dependencies file for cooprt_geom_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geom/test_aabb.cpp" "tests/geom/CMakeFiles/cooprt_geom_tests.dir/test_aabb.cpp.o" "gcc" "tests/geom/CMakeFiles/cooprt_geom_tests.dir/test_aabb.cpp.o.d"
  "/root/repo/tests/geom/test_quantized_aabb.cpp" "tests/geom/CMakeFiles/cooprt_geom_tests.dir/test_quantized_aabb.cpp.o" "gcc" "tests/geom/CMakeFiles/cooprt_geom_tests.dir/test_quantized_aabb.cpp.o.d"
  "/root/repo/tests/geom/test_rng.cpp" "tests/geom/CMakeFiles/cooprt_geom_tests.dir/test_rng.cpp.o" "gcc" "tests/geom/CMakeFiles/cooprt_geom_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/geom/test_transform.cpp" "tests/geom/CMakeFiles/cooprt_geom_tests.dir/test_transform.cpp.o" "gcc" "tests/geom/CMakeFiles/cooprt_geom_tests.dir/test_transform.cpp.o.d"
  "/root/repo/tests/geom/test_triangle.cpp" "tests/geom/CMakeFiles/cooprt_geom_tests.dir/test_triangle.cpp.o" "gcc" "tests/geom/CMakeFiles/cooprt_geom_tests.dir/test_triangle.cpp.o.d"
  "/root/repo/tests/geom/test_vec3.cpp" "tests/geom/CMakeFiles/cooprt_geom_tests.dir/test_vec3.cpp.o" "gcc" "tests/geom/CMakeFiles/cooprt_geom_tests.dir/test_vec3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/cooprt_geom_tests.dir/test_aabb.cpp.o"
  "CMakeFiles/cooprt_geom_tests.dir/test_aabb.cpp.o.d"
  "CMakeFiles/cooprt_geom_tests.dir/test_quantized_aabb.cpp.o"
  "CMakeFiles/cooprt_geom_tests.dir/test_quantized_aabb.cpp.o.d"
  "CMakeFiles/cooprt_geom_tests.dir/test_rng.cpp.o"
  "CMakeFiles/cooprt_geom_tests.dir/test_rng.cpp.o.d"
  "CMakeFiles/cooprt_geom_tests.dir/test_transform.cpp.o"
  "CMakeFiles/cooprt_geom_tests.dir/test_transform.cpp.o.d"
  "CMakeFiles/cooprt_geom_tests.dir/test_triangle.cpp.o"
  "CMakeFiles/cooprt_geom_tests.dir/test_triangle.cpp.o.d"
  "CMakeFiles/cooprt_geom_tests.dir/test_vec3.cpp.o"
  "CMakeFiles/cooprt_geom_tests.dir/test_vec3.cpp.o.d"
  "cooprt_geom_tests"
  "cooprt_geom_tests.pdb"
  "cooprt_geom_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_geom_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cooprt_core_tests.
# This may be replaced when dependencies are built.

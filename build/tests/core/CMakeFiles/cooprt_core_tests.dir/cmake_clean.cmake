file(REMOVE_RECURSE
  "CMakeFiles/cooprt_core_tests.dir/test_end_to_end.cpp.o"
  "CMakeFiles/cooprt_core_tests.dir/test_end_to_end.cpp.o.d"
  "CMakeFiles/cooprt_core_tests.dir/test_report.cpp.o"
  "CMakeFiles/cooprt_core_tests.dir/test_report.cpp.o.d"
  "CMakeFiles/cooprt_core_tests.dir/test_simulation.cpp.o"
  "CMakeFiles/cooprt_core_tests.dir/test_simulation.cpp.o.d"
  "cooprt_core_tests"
  "cooprt_core_tests.pdb"
  "cooprt_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cooprt_scene_tests.
# This may be replaced when dependencies are built.

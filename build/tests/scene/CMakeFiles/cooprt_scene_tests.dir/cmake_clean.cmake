file(REMOVE_RECURSE
  "CMakeFiles/cooprt_scene_tests.dir/test_camera.cpp.o"
  "CMakeFiles/cooprt_scene_tests.dir/test_camera.cpp.o.d"
  "CMakeFiles/cooprt_scene_tests.dir/test_generators.cpp.o"
  "CMakeFiles/cooprt_scene_tests.dir/test_generators.cpp.o.d"
  "CMakeFiles/cooprt_scene_tests.dir/test_obj_io.cpp.o"
  "CMakeFiles/cooprt_scene_tests.dir/test_obj_io.cpp.o.d"
  "CMakeFiles/cooprt_scene_tests.dir/test_primitives.cpp.o"
  "CMakeFiles/cooprt_scene_tests.dir/test_primitives.cpp.o.d"
  "CMakeFiles/cooprt_scene_tests.dir/test_registry.cpp.o"
  "CMakeFiles/cooprt_scene_tests.dir/test_registry.cpp.o.d"
  "cooprt_scene_tests"
  "cooprt_scene_tests.pdb"
  "cooprt_scene_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_scene_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

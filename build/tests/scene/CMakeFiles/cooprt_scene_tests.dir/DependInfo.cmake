
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/scene/test_camera.cpp" "tests/scene/CMakeFiles/cooprt_scene_tests.dir/test_camera.cpp.o" "gcc" "tests/scene/CMakeFiles/cooprt_scene_tests.dir/test_camera.cpp.o.d"
  "/root/repo/tests/scene/test_generators.cpp" "tests/scene/CMakeFiles/cooprt_scene_tests.dir/test_generators.cpp.o" "gcc" "tests/scene/CMakeFiles/cooprt_scene_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/scene/test_obj_io.cpp" "tests/scene/CMakeFiles/cooprt_scene_tests.dir/test_obj_io.cpp.o" "gcc" "tests/scene/CMakeFiles/cooprt_scene_tests.dir/test_obj_io.cpp.o.d"
  "/root/repo/tests/scene/test_primitives.cpp" "tests/scene/CMakeFiles/cooprt_scene_tests.dir/test_primitives.cpp.o" "gcc" "tests/scene/CMakeFiles/cooprt_scene_tests.dir/test_primitives.cpp.o.d"
  "/root/repo/tests/scene/test_registry.cpp" "tests/scene/CMakeFiles/cooprt_scene_tests.dir/test_registry.cpp.o" "gcc" "tests/scene/CMakeFiles/cooprt_scene_tests.dir/test_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scene/CMakeFiles/cooprt_scene.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for cooprt_power_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cooprt_power_tests.dir/test_area_model.cpp.o"
  "CMakeFiles/cooprt_power_tests.dir/test_area_model.cpp.o.d"
  "CMakeFiles/cooprt_power_tests.dir/test_energy_model.cpp.o"
  "CMakeFiles/cooprt_power_tests.dir/test_energy_model.cpp.o.d"
  "cooprt_power_tests"
  "cooprt_power_tests.pdb"
  "cooprt_power_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_power_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

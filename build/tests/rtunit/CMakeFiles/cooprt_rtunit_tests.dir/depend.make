# Empty dependencies file for cooprt_rtunit_tests.
# This may be replaced when dependencies are built.

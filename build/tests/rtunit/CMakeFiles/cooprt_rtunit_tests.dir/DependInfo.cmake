
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rtunit/test_coop_correctness.cpp" "tests/rtunit/CMakeFiles/cooprt_rtunit_tests.dir/test_coop_correctness.cpp.o" "gcc" "tests/rtunit/CMakeFiles/cooprt_rtunit_tests.dir/test_coop_correctness.cpp.o.d"
  "/root/repo/tests/rtunit/test_fuzz.cpp" "tests/rtunit/CMakeFiles/cooprt_rtunit_tests.dir/test_fuzz.cpp.o" "gcc" "tests/rtunit/CMakeFiles/cooprt_rtunit_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/rtunit/test_related_work.cpp" "tests/rtunit/CMakeFiles/cooprt_rtunit_tests.dir/test_related_work.cpp.o" "gcc" "tests/rtunit/CMakeFiles/cooprt_rtunit_tests.dir/test_related_work.cpp.o.d"
  "/root/repo/tests/rtunit/test_rt_unit.cpp" "tests/rtunit/CMakeFiles/cooprt_rtunit_tests.dir/test_rt_unit.cpp.o" "gcc" "tests/rtunit/CMakeFiles/cooprt_rtunit_tests.dir/test_rt_unit.cpp.o.d"
  "/root/repo/tests/rtunit/test_scheduler.cpp" "tests/rtunit/CMakeFiles/cooprt_rtunit_tests.dir/test_scheduler.cpp.o" "gcc" "tests/rtunit/CMakeFiles/cooprt_rtunit_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/rtunit/test_trace_config.cpp" "tests/rtunit/CMakeFiles/cooprt_rtunit_tests.dir/test_trace_config.cpp.o" "gcc" "tests/rtunit/CMakeFiles/cooprt_rtunit_tests.dir/test_trace_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtunit/CMakeFiles/cooprt_rtunit.dir/DependInfo.cmake"
  "/root/repo/build/src/bvh/CMakeFiles/cooprt_bvh.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/cooprt_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cooprt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

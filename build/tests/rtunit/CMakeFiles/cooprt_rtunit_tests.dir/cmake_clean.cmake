file(REMOVE_RECURSE
  "CMakeFiles/cooprt_rtunit_tests.dir/test_coop_correctness.cpp.o"
  "CMakeFiles/cooprt_rtunit_tests.dir/test_coop_correctness.cpp.o.d"
  "CMakeFiles/cooprt_rtunit_tests.dir/test_fuzz.cpp.o"
  "CMakeFiles/cooprt_rtunit_tests.dir/test_fuzz.cpp.o.d"
  "CMakeFiles/cooprt_rtunit_tests.dir/test_related_work.cpp.o"
  "CMakeFiles/cooprt_rtunit_tests.dir/test_related_work.cpp.o.d"
  "CMakeFiles/cooprt_rtunit_tests.dir/test_rt_unit.cpp.o"
  "CMakeFiles/cooprt_rtunit_tests.dir/test_rt_unit.cpp.o.d"
  "CMakeFiles/cooprt_rtunit_tests.dir/test_scheduler.cpp.o"
  "CMakeFiles/cooprt_rtunit_tests.dir/test_scheduler.cpp.o.d"
  "CMakeFiles/cooprt_rtunit_tests.dir/test_trace_config.cpp.o"
  "CMakeFiles/cooprt_rtunit_tests.dir/test_trace_config.cpp.o.d"
  "cooprt_rtunit_tests"
  "cooprt_rtunit_tests.pdb"
  "cooprt_rtunit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_rtunit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

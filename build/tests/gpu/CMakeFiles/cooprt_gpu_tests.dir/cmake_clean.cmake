file(REMOVE_RECURSE
  "CMakeFiles/cooprt_gpu_tests.dir/test_gpu.cpp.o"
  "CMakeFiles/cooprt_gpu_tests.dir/test_gpu.cpp.o.d"
  "CMakeFiles/cooprt_gpu_tests.dir/test_gpu_config.cpp.o"
  "CMakeFiles/cooprt_gpu_tests.dir/test_gpu_config.cpp.o.d"
  "CMakeFiles/cooprt_gpu_tests.dir/test_sm.cpp.o"
  "CMakeFiles/cooprt_gpu_tests.dir/test_sm.cpp.o.d"
  "CMakeFiles/cooprt_gpu_tests.dir/test_warm_memory.cpp.o"
  "CMakeFiles/cooprt_gpu_tests.dir/test_warm_memory.cpp.o.d"
  "cooprt_gpu_tests"
  "cooprt_gpu_tests.pdb"
  "cooprt_gpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_gpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cooprt_gpu_tests.
# This may be replaced when dependencies are built.

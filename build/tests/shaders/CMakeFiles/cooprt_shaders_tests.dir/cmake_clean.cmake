file(REMOVE_RECURSE
  "CMakeFiles/cooprt_shaders_tests.dir/test_ao_shadow.cpp.o"
  "CMakeFiles/cooprt_shaders_tests.dir/test_ao_shadow.cpp.o.d"
  "CMakeFiles/cooprt_shaders_tests.dir/test_compaction.cpp.o"
  "CMakeFiles/cooprt_shaders_tests.dir/test_compaction.cpp.o.d"
  "CMakeFiles/cooprt_shaders_tests.dir/test_film.cpp.o"
  "CMakeFiles/cooprt_shaders_tests.dir/test_film.cpp.o.d"
  "CMakeFiles/cooprt_shaders_tests.dir/test_path_tracer.cpp.o"
  "CMakeFiles/cooprt_shaders_tests.dir/test_path_tracer.cpp.o.d"
  "cooprt_shaders_tests"
  "cooprt_shaders_tests.pdb"
  "cooprt_shaders_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_shaders_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cooprt_shaders_tests.
# This may be replaced when dependencies are built.

# Empty dependencies file for cooprt_rtunit.
# This may be replaced when dependencies are built.

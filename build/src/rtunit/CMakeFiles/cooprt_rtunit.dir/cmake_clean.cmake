file(REMOVE_RECURSE
  "CMakeFiles/cooprt_rtunit.dir/rt_unit.cpp.o"
  "CMakeFiles/cooprt_rtunit.dir/rt_unit.cpp.o.d"
  "libcooprt_rtunit.a"
  "libcooprt_rtunit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_rtunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

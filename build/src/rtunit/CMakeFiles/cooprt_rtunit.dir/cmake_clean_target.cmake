file(REMOVE_RECURSE
  "libcooprt_rtunit.a"
)

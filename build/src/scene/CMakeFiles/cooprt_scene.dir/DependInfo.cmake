
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scene/generators.cpp" "src/scene/CMakeFiles/cooprt_scene.dir/generators.cpp.o" "gcc" "src/scene/CMakeFiles/cooprt_scene.dir/generators.cpp.o.d"
  "/root/repo/src/scene/obj_io.cpp" "src/scene/CMakeFiles/cooprt_scene.dir/obj_io.cpp.o" "gcc" "src/scene/CMakeFiles/cooprt_scene.dir/obj_io.cpp.o.d"
  "/root/repo/src/scene/primitives.cpp" "src/scene/CMakeFiles/cooprt_scene.dir/primitives.cpp.o" "gcc" "src/scene/CMakeFiles/cooprt_scene.dir/primitives.cpp.o.d"
  "/root/repo/src/scene/registry.cpp" "src/scene/CMakeFiles/cooprt_scene.dir/registry.cpp.o" "gcc" "src/scene/CMakeFiles/cooprt_scene.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for cooprt_scene.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcooprt_scene.a"
)

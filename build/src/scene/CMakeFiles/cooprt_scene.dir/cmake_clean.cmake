file(REMOVE_RECURSE
  "CMakeFiles/cooprt_scene.dir/generators.cpp.o"
  "CMakeFiles/cooprt_scene.dir/generators.cpp.o.d"
  "CMakeFiles/cooprt_scene.dir/obj_io.cpp.o"
  "CMakeFiles/cooprt_scene.dir/obj_io.cpp.o.d"
  "CMakeFiles/cooprt_scene.dir/primitives.cpp.o"
  "CMakeFiles/cooprt_scene.dir/primitives.cpp.o.d"
  "CMakeFiles/cooprt_scene.dir/registry.cpp.o"
  "CMakeFiles/cooprt_scene.dir/registry.cpp.o.d"
  "libcooprt_scene.a"
  "libcooprt_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcooprt_stats.a"
)

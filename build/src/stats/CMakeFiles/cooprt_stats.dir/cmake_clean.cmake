file(REMOVE_RECURSE
  "CMakeFiles/cooprt_stats.dir/table.cpp.o"
  "CMakeFiles/cooprt_stats.dir/table.cpp.o.d"
  "CMakeFiles/cooprt_stats.dir/timeline.cpp.o"
  "CMakeFiles/cooprt_stats.dir/timeline.cpp.o.d"
  "libcooprt_stats.a"
  "libcooprt_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cooprt_stats.
# This may be replaced when dependencies are built.

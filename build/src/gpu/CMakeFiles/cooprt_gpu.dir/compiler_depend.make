# Empty compiler generated dependencies file for cooprt_gpu.
# This may be replaced when dependencies are built.

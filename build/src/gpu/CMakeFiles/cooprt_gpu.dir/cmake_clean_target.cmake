file(REMOVE_RECURSE
  "libcooprt_gpu.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cooprt_gpu.dir/gpu.cpp.o"
  "CMakeFiles/cooprt_gpu.dir/gpu.cpp.o.d"
  "CMakeFiles/cooprt_gpu.dir/sm.cpp.o"
  "CMakeFiles/cooprt_gpu.dir/sm.cpp.o.d"
  "libcooprt_gpu.a"
  "libcooprt_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcooprt_core.a"
)

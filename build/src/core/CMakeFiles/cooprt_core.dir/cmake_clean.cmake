file(REMOVE_RECURSE
  "CMakeFiles/cooprt_core.dir/report.cpp.o"
  "CMakeFiles/cooprt_core.dir/report.cpp.o.d"
  "CMakeFiles/cooprt_core.dir/simulation.cpp.o"
  "CMakeFiles/cooprt_core.dir/simulation.cpp.o.d"
  "libcooprt_core.a"
  "libcooprt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cooprt_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cooprt_mem.dir/cache.cpp.o"
  "CMakeFiles/cooprt_mem.dir/cache.cpp.o.d"
  "CMakeFiles/cooprt_mem.dir/memory_system.cpp.o"
  "CMakeFiles/cooprt_mem.dir/memory_system.cpp.o.d"
  "libcooprt_mem.a"
  "libcooprt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

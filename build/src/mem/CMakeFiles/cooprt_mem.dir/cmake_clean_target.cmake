file(REMOVE_RECURSE
  "libcooprt_mem.a"
)

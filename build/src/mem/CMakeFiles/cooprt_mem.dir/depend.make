# Empty dependencies file for cooprt_mem.
# This may be replaced when dependencies are built.

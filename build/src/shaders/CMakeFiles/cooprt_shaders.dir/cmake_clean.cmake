file(REMOVE_RECURSE
  "CMakeFiles/cooprt_shaders.dir/ao.cpp.o"
  "CMakeFiles/cooprt_shaders.dir/ao.cpp.o.d"
  "CMakeFiles/cooprt_shaders.dir/compaction.cpp.o"
  "CMakeFiles/cooprt_shaders.dir/compaction.cpp.o.d"
  "CMakeFiles/cooprt_shaders.dir/film.cpp.o"
  "CMakeFiles/cooprt_shaders.dir/film.cpp.o.d"
  "CMakeFiles/cooprt_shaders.dir/path_tracer.cpp.o"
  "CMakeFiles/cooprt_shaders.dir/path_tracer.cpp.o.d"
  "CMakeFiles/cooprt_shaders.dir/shadow.cpp.o"
  "CMakeFiles/cooprt_shaders.dir/shadow.cpp.o.d"
  "libcooprt_shaders.a"
  "libcooprt_shaders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_shaders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcooprt_shaders.a"
)

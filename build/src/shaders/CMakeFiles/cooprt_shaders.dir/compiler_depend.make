# Empty compiler generated dependencies file for cooprt_shaders.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shaders/ao.cpp" "src/shaders/CMakeFiles/cooprt_shaders.dir/ao.cpp.o" "gcc" "src/shaders/CMakeFiles/cooprt_shaders.dir/ao.cpp.o.d"
  "/root/repo/src/shaders/compaction.cpp" "src/shaders/CMakeFiles/cooprt_shaders.dir/compaction.cpp.o" "gcc" "src/shaders/CMakeFiles/cooprt_shaders.dir/compaction.cpp.o.d"
  "/root/repo/src/shaders/film.cpp" "src/shaders/CMakeFiles/cooprt_shaders.dir/film.cpp.o" "gcc" "src/shaders/CMakeFiles/cooprt_shaders.dir/film.cpp.o.d"
  "/root/repo/src/shaders/path_tracer.cpp" "src/shaders/CMakeFiles/cooprt_shaders.dir/path_tracer.cpp.o" "gcc" "src/shaders/CMakeFiles/cooprt_shaders.dir/path_tracer.cpp.o.d"
  "/root/repo/src/shaders/shadow.cpp" "src/shaders/CMakeFiles/cooprt_shaders.dir/shadow.cpp.o" "gcc" "src/shaders/CMakeFiles/cooprt_shaders.dir/shadow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/cooprt_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/cooprt_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/rtunit/CMakeFiles/cooprt_rtunit.dir/DependInfo.cmake"
  "/root/repo/build/src/bvh/CMakeFiles/cooprt_bvh.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cooprt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cooprt_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bvh/builder.cpp" "src/bvh/CMakeFiles/cooprt_bvh.dir/builder.cpp.o" "gcc" "src/bvh/CMakeFiles/cooprt_bvh.dir/builder.cpp.o.d"
  "/root/repo/src/bvh/flat_bvh.cpp" "src/bvh/CMakeFiles/cooprt_bvh.dir/flat_bvh.cpp.o" "gcc" "src/bvh/CMakeFiles/cooprt_bvh.dir/flat_bvh.cpp.o.d"
  "/root/repo/src/bvh/tlas.cpp" "src/bvh/CMakeFiles/cooprt_bvh.dir/tlas.cpp.o" "gcc" "src/bvh/CMakeFiles/cooprt_bvh.dir/tlas.cpp.o.d"
  "/root/repo/src/bvh/traversal.cpp" "src/bvh/CMakeFiles/cooprt_bvh.dir/traversal.cpp.o" "gcc" "src/bvh/CMakeFiles/cooprt_bvh.dir/traversal.cpp.o.d"
  "/root/repo/src/bvh/wide_bvh.cpp" "src/bvh/CMakeFiles/cooprt_bvh.dir/wide_bvh.cpp.o" "gcc" "src/bvh/CMakeFiles/cooprt_bvh.dir/wide_bvh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scene/CMakeFiles/cooprt_scene.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

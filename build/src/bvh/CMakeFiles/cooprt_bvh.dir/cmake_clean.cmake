file(REMOVE_RECURSE
  "CMakeFiles/cooprt_bvh.dir/builder.cpp.o"
  "CMakeFiles/cooprt_bvh.dir/builder.cpp.o.d"
  "CMakeFiles/cooprt_bvh.dir/flat_bvh.cpp.o"
  "CMakeFiles/cooprt_bvh.dir/flat_bvh.cpp.o.d"
  "CMakeFiles/cooprt_bvh.dir/tlas.cpp.o"
  "CMakeFiles/cooprt_bvh.dir/tlas.cpp.o.d"
  "CMakeFiles/cooprt_bvh.dir/traversal.cpp.o"
  "CMakeFiles/cooprt_bvh.dir/traversal.cpp.o.d"
  "CMakeFiles/cooprt_bvh.dir/wide_bvh.cpp.o"
  "CMakeFiles/cooprt_bvh.dir/wide_bvh.cpp.o.d"
  "libcooprt_bvh.a"
  "libcooprt_bvh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooprt_bvh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

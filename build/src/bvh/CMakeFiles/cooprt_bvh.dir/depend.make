# Empty dependencies file for cooprt_bvh.
# This may be replaced when dependencies are built.

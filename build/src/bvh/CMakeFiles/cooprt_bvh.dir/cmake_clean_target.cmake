file(REMOVE_RECURSE
  "libcooprt_bvh.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/warp_timeline.dir/warp_timeline.cpp.o"
  "CMakeFiles/warp_timeline.dir/warp_timeline.cpp.o.d"
  "warp_timeline"
  "warp_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warp_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for warp_timeline.
# This may be replaced when dependencies are built.

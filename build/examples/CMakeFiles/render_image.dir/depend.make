# Empty dependencies file for render_image.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/render_image.dir/render_image.cpp.o"
  "CMakeFiles/render_image.dir/render_image.cpp.o.d"
  "render_image"
  "render_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

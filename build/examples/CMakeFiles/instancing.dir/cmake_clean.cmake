file(REMOVE_RECURSE
  "CMakeFiles/instancing.dir/instancing.cpp.o"
  "CMakeFiles/instancing.dir/instancing.cpp.o.d"
  "instancing"
  "instancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for instancing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/custom_scene.dir/custom_scene.cpp.o"
  "CMakeFiles/custom_scene.dir/custom_scene.cpp.o.d"
  "custom_scene"
  "custom_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

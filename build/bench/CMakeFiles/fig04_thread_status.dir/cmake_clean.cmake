file(REMOVE_RECURSE
  "CMakeFiles/fig04_thread_status.dir/fig04_thread_status.cpp.o"
  "CMakeFiles/fig04_thread_status.dir/fig04_thread_status.cpp.o.d"
  "fig04_thread_status"
  "fig04_thread_status.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_thread_status.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

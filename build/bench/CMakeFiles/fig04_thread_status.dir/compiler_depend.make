# Empty compiler generated dependencies file for fig04_thread_status.
# This may be replaced when dependencies are built.

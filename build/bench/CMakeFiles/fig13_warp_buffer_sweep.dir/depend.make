# Empty dependencies file for fig13_warp_buffer_sweep.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig19_subwarp_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig19_subwarp_sweep.dir/fig19_subwarp_sweep.cpp.o"
  "CMakeFiles/fig19_subwarp_sweep.dir/fig19_subwarp_sweep.cpp.o.d"
  "fig19_subwarp_sweep"
  "fig19_subwarp_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_subwarp_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

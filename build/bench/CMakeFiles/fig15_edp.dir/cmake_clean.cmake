file(REMOVE_RECURSE
  "CMakeFiles/fig15_edp.dir/fig15_edp.cpp.o"
  "CMakeFiles/fig15_edp.dir/fig15_edp.cpp.o.d"
  "fig15_edp"
  "fig15_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

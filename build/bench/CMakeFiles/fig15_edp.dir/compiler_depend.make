# Empty compiler generated dependencies file for fig15_edp.
# This may be replaced when dependencies are built.

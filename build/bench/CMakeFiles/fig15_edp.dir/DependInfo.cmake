
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig15_edp.cpp" "bench/CMakeFiles/fig15_edp.dir/fig15_edp.cpp.o" "gcc" "bench/CMakeFiles/fig15_edp.dir/fig15_edp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cooprt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/shaders/CMakeFiles/cooprt_shaders.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/cooprt_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/rtunit/CMakeFiles/cooprt_rtunit.dir/DependInfo.cmake"
  "/root/repo/build/src/bvh/CMakeFiles/cooprt_bvh.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/cooprt_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cooprt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cooprt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fig02_active_threads.dir/fig02_active_threads.cpp.o"
  "CMakeFiles/fig02_active_threads.dir/fig02_active_threads.cpp.o.d"
  "fig02_active_threads"
  "fig02_active_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_active_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

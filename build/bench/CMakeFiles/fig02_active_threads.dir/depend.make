# Empty dependencies file for fig02_active_threads.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig12_bandwidth.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table3_area.dir/table3_area.cpp.o"
  "CMakeFiles/table3_area.dir/table3_area.cpp.o.d"
  "table3_area"
  "table3_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig18_mobile.dir/fig18_mobile.cpp.o"
  "CMakeFiles/fig18_mobile.dir/fig18_mobile.cpp.o.d"
  "fig18_mobile"
  "fig18_mobile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig18_mobile.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig09_speedup_pt.dir/fig09_speedup_pt.cpp.o"
  "CMakeFiles/fig09_speedup_pt.dir/fig09_speedup_pt.cpp.o.d"
  "fig09_speedup_pt"
  "fig09_speedup_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_speedup_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

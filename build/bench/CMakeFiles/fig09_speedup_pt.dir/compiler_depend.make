# Empty compiler generated dependencies file for fig09_speedup_pt.
# This may be replaced when dependencies are built.

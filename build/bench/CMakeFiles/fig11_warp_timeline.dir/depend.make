# Empty dependencies file for fig11_warp_timeline.
# This may be replaced when dependencies are built.

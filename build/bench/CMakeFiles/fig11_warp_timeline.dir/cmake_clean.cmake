file(REMOVE_RECURSE
  "CMakeFiles/fig11_warp_timeline.dir/fig11_warp_timeline.cpp.o"
  "CMakeFiles/fig11_warp_timeline.dir/fig11_warp_timeline.cpp.o.d"
  "fig11_warp_timeline"
  "fig11_warp_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_warp_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

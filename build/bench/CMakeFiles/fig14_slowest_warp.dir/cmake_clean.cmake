file(REMOVE_RECURSE
  "CMakeFiles/fig14_slowest_warp.dir/fig14_slowest_warp.cpp.o"
  "CMakeFiles/fig14_slowest_warp.dir/fig14_slowest_warp.cpp.o.d"
  "fig14_slowest_warp"
  "fig14_slowest_warp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_slowest_warp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig14_slowest_warp.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig17_ao_sh.
# This may be replaced when dependencies are built.

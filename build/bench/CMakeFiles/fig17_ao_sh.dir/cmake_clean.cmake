file(REMOVE_RECURSE
  "CMakeFiles/fig17_ao_sh.dir/fig17_ao_sh.cpp.o"
  "CMakeFiles/fig17_ao_sh.dir/fig17_ao_sh.cpp.o.d"
  "fig17_ao_sh"
  "fig17_ao_sh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_ao_sh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

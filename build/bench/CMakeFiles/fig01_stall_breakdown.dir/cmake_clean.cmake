file(REMOVE_RECURSE
  "CMakeFiles/fig01_stall_breakdown.dir/fig01_stall_breakdown.cpp.o"
  "CMakeFiles/fig01_stall_breakdown.dir/fig01_stall_breakdown.cpp.o.d"
  "fig01_stall_breakdown"
  "fig01_stall_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_stall_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Tests for conservative child-box quantization used by the compressed
 * 6-wide BVH node layout.
 */

#include <gtest/gtest.h>

#include "geom/quantized_aabb.hpp"
#include "geom/rng.hpp"

namespace {

using cooprt::geom::AABB;
using cooprt::geom::Pcg32;
using cooprt::geom::QuantFrame;
using cooprt::geom::QuantizedAabb;
using cooprt::geom::Vec3;

TEST(QuantFrame, OriginIsParentLow)
{
    AABB parent{{-1, 2, 3}, {5, 8, 4}};
    auto f = QuantFrame::forParent(parent);
    EXPECT_EQ(f.origin, parent.lo);
}

TEST(QuantFrame, GridCoversParent)
{
    AABB parent{{-1, 2, 3}, {5, 8, 4}};
    auto f = QuantFrame::forParent(parent);
    for (int a = 0; a < 3; ++a) {
        EXPECT_GE(f.decode(a, 255), parent.hi[a]);
        EXPECT_FLOAT_EQ(f.decode(a, 0), parent.lo[a]);
    }
}

TEST(QuantFrame, ScaleIsPowerOfTwo)
{
    AABB parent{{0, 0, 0}, {3.7f, 100.0f, 0.001f}};
    auto f = QuantFrame::forParent(parent);
    for (int a = 0; a < 3; ++a) {
        float s = f.scale[a];
        int exp = 0;
        float m = std::frexp(s, &exp);
        EXPECT_FLOAT_EQ(m, 0.5f) << "axis " << a;
    }
}

TEST(QuantizedAabb, RoundTripContainsOriginal)
{
    AABB parent{{0, 0, 0}, {10, 10, 10}};
    auto f = QuantFrame::forParent(parent);
    AABB child{{1.234f, 5.678f, 0.001f}, {2.5f, 9.999f, 3.3f}};
    auto q = QuantizedAabb::encode(child, f);
    AABB d = q.decode(f);
    EXPECT_TRUE(d.contains(child));
}

TEST(QuantizedAabb, DegenerateParentHandled)
{
    AABB parent{{1, 1, 1}, {1, 1, 1}}; // zero extent
    auto f = QuantFrame::forParent(parent);
    auto q = QuantizedAabb::encode(parent, f);
    AABB d = q.decode(f);
    EXPECT_TRUE(d.contains(parent));
}

TEST(QuantizedAabb, ExactCornersQuantizeTight)
{
    AABB parent{{0, 0, 0}, {255, 255, 255}};
    auto f = QuantFrame::forParent(parent);
    // scale will be 1.0 exactly, so integer-coordinate boxes are exact.
    AABB child{{3, 7, 11}, {200, 100, 50}};
    auto q = QuantizedAabb::encode(child, f);
    AABB d = q.decode(f);
    EXPECT_EQ(d.lo, child.lo);
    EXPECT_EQ(d.hi, child.hi);
}

/**
 * Property (the correctness-critical one): for random parents and
 * random children inside the parent, the decoded box always contains
 * the original, and its slack is bounded by two grid cells per side.
 */
class QuantPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(QuantPropertyTest, ConservativeAndTight)
{
    Pcg32 rng(GetParam());
    for (int iter = 0; iter < 500; ++iter) {
        AABB parent;
        parent.grow(rng.nextInBox(Vec3(-100), Vec3(100)));
        parent.grow(rng.nextInBox(Vec3(-100), Vec3(100)));
        auto f = QuantFrame::forParent(parent);

        AABB child;
        child.grow(rng.nextInBox(parent.lo, parent.hi));
        child.grow(rng.nextInBox(parent.lo, parent.hi));

        auto q = QuantizedAabb::encode(child, f);
        AABB d = q.decode(f);

        ASSERT_TRUE(d.contains(child))
            << "iter " << iter << " child " << child.lo << child.hi
            << " decoded " << d.lo << d.hi;
        for (int a = 0; a < 3; ++a) {
            EXPECT_LE(child.lo[a] - d.lo[a], 2.0f * f.scale[a]);
            EXPECT_LE(d.hi[a] - child.hi[a], 2.0f * f.scale[a]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace

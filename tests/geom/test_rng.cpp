/**
 * @file
 * Tests for the deterministic PCG32 generator and sampling helpers.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "geom/rng.hpp"

namespace {

using cooprt::geom::mix64;
using cooprt::geom::Pcg32;
using cooprt::geom::Vec3;

TEST(Pcg32, DeterministicForSameSeed)
{
    Pcg32 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.nextU32() == b.nextU32());
    EXPECT_LT(same, 5);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(42, 1), b(42, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.nextU32() == b.nextU32());
    EXPECT_LT(same, 5);
}

TEST(Pcg32, FloatInUnitInterval)
{
    Pcg32 rng(9);
    for (int i = 0; i < 10000; ++i) {
        float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Pcg32, FloatMeanIsHalf)
{
    Pcg32 rng(10);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextFloat();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32, NextBelowInRange)
{
    Pcg32 rng(11);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(7), 7u);
}

TEST(Pcg32, NextBelowCoversAllValues)
{
    Pcg32 rng(12);
    int seen[7] = {};
    for (int i = 0; i < 7000; ++i)
        seen[rng.nextBelow(7)]++;
    for (int v = 0; v < 7; ++v)
        EXPECT_GT(seen[v], 500) << "value " << v;
}

TEST(Pcg32, RangeRespected)
{
    Pcg32 rng(13);
    for (int i = 0; i < 1000; ++i) {
        float f = rng.nextRange(-3.0f, 5.0f);
        EXPECT_GE(f, -3.0f);
        EXPECT_LT(f, 5.0f);
    }
}

TEST(Pcg32, BoxSamplesInsideBox)
{
    Pcg32 rng(14);
    Vec3 lo(-1, 2, -3), hi(1, 4, 0);
    for (int i = 0; i < 1000; ++i) {
        Vec3 p = rng.nextInBox(lo, hi);
        EXPECT_GE(p.x, lo.x);
        EXPECT_LT(p.x, hi.x);
        EXPECT_GE(p.y, lo.y);
        EXPECT_LT(p.y, hi.y);
        EXPECT_GE(p.z, lo.z);
        EXPECT_LT(p.z, hi.z);
    }
}

TEST(Pcg32, UnitVectorsAreUnit)
{
    Pcg32 rng(15);
    for (int i = 0; i < 1000; ++i)
        EXPECT_NEAR(rng.nextUnitVector().length(), 1.0f, 1e-4f);
}

TEST(Pcg32, UnitVectorsCoverAllOctants)
{
    Pcg32 rng(16);
    int octant[8] = {};
    for (int i = 0; i < 8000; ++i) {
        Vec3 v = rng.nextUnitVector();
        octant[(v.x > 0) | ((v.y > 0) << 1) | ((v.z > 0) << 2)]++;
    }
    for (int o = 0; o < 8; ++o)
        EXPECT_GT(octant[o], 400) << "octant " << o;
}

TEST(Pcg32, CosineHemisphereAboveSurface)
{
    Pcg32 rng(17);
    Vec3 n(0, 1, 0);
    for (int i = 0; i < 2000; ++i) {
        Vec3 d = rng.nextCosineHemisphere(n);
        EXPECT_NEAR(d.length(), 1.0f, 1e-4f);
        EXPECT_GE(dot(d, n), -1e-4f);
    }
}

TEST(Pcg32, CosineHemisphereMeanMatchesLambert)
{
    // E[cos(theta)] for a cosine-weighted hemisphere is 2/3.
    Pcg32 rng(18);
    Vec3 n(0, 0, 1);
    double sum = 0;
    const int count = 50000;
    for (int i = 0; i < count; ++i)
        sum += dot(rng.nextCosineHemisphere(n), n);
    EXPECT_NEAR(sum / count, 2.0 / 3.0, 0.01);
}

TEST(Mix64, InjectiveOnSmallRange)
{
    // Distinct inputs must not collide on a small sample.
    std::uint64_t prev = mix64(0);
    for (std::uint64_t i = 1; i < 1000; ++i) {
        std::uint64_t h = mix64(i);
        EXPECT_NE(h, prev);
        prev = h;
    }
}

TEST(Mix64, AvalancheChangesManyBits)
{
    int total = 0;
    for (std::uint64_t i = 0; i < 100; ++i)
        total += __builtin_popcountll(mix64(i) ^ mix64(i + 1));
    // ~32 bits should flip on average.
    EXPECT_GT(total / 100, 20);
    EXPECT_LT(total / 100, 44);
}

} // namespace

/**
 * @file
 * Tests for rigid transforms (the instancing Coordinate Transform).
 */

#include <gtest/gtest.h>

#include "geom/rng.hpp"
#include "geom/transform.hpp"

namespace {

using cooprt::geom::AABB;
using cooprt::geom::Pcg32;
using cooprt::geom::Ray;
using cooprt::geom::RigidTransform;
using cooprt::geom::Vec3;

TEST(RigidTransform, IdentityIsNoop)
{
    RigidTransform id;
    Vec3 p(1, 2, 3);
    EXPECT_EQ(id.point(p), p);
    EXPECT_EQ(id.direction(p), p);
}

TEST(RigidTransform, TranslationMovesPointsNotDirections)
{
    auto m = RigidTransform::translate({10, 0, -5});
    EXPECT_EQ(m.point({1, 2, 3}), Vec3(11, 2, -2));
    EXPECT_EQ(m.direction({1, 2, 3}), Vec3(1, 2, 3));
}

TEST(RigidTransform, RotateY90)
{
    auto m = RigidTransform::rotateYTranslate(
        3.14159265358979f / 2.0f, {0, 0, 0});
    Vec3 r = m.point({1, 0, 0});
    EXPECT_NEAR(r.x, 0.0f, 1e-6f);
    EXPECT_NEAR(r.z, -1.0f, 1e-6f);
    EXPECT_NEAR(r.y, 0.0f, 1e-6f);
}

TEST(RigidTransform, InverseRoundTripsPoints)
{
    Pcg32 rng(5);
    for (int i = 0; i < 200; ++i) {
        auto m = RigidTransform::rotateYTranslate(
            rng.nextRange(-3.0f, 3.0f),
            rng.nextInBox(Vec3(-10), Vec3(10)));
        auto inv = m.inverse();
        Vec3 p = rng.nextInBox(Vec3(-5), Vec3(5));
        Vec3 back = inv.point(m.point(p));
        EXPECT_NEAR(back.x, p.x, 1e-4f);
        EXPECT_NEAR(back.y, p.y, 1e-4f);
        EXPECT_NEAR(back.z, p.z, 1e-4f);
    }
}

TEST(RigidTransform, PreservesDistances)
{
    Pcg32 rng(6);
    for (int i = 0; i < 200; ++i) {
        auto m = RigidTransform::rotateYTranslate(
            rng.nextRange(-3.0f, 3.0f),
            rng.nextInBox(Vec3(-10), Vec3(10)));
        Vec3 a = rng.nextInBox(Vec3(-5), Vec3(5));
        Vec3 b = rng.nextInBox(Vec3(-5), Vec3(5));
        EXPECT_NEAR((m.point(a) - m.point(b)).length(),
                    (a - b).length(), 1e-4f);
    }
}

TEST(RigidTransform, RayParameterPreserved)
{
    // The property that makes instancing compose with min_thit: the
    // point at parameter t on the transformed ray is the transform of
    // the point at t on the original ray.
    Pcg32 rng(7);
    for (int i = 0; i < 100; ++i) {
        auto m = RigidTransform::rotateYTranslate(
            rng.nextRange(-3.0f, 3.0f),
            rng.nextInBox(Vec3(-10), Vec3(10)));
        Ray r(rng.nextInBox(Vec3(-5), Vec3(5)), rng.nextUnitVector());
        Ray tr = m.ray(r);
        const float t = rng.nextRange(0.1f, 20.0f);
        Vec3 expect = m.point(r.at(t));
        Vec3 got = tr.at(t);
        EXPECT_NEAR(got.x, expect.x, 1e-3f);
        EXPECT_NEAR(got.y, expect.y, 1e-3f);
        EXPECT_NEAR(got.z, expect.z, 1e-3f);
    }
}

TEST(RigidTransform, BoxIsConservative)
{
    Pcg32 rng(8);
    for (int i = 0; i < 200; ++i) {
        auto m = RigidTransform::rotateYTranslate(
            rng.nextRange(-3.0f, 3.0f),
            rng.nextInBox(Vec3(-5), Vec3(5)));
        AABB b;
        b.grow(rng.nextInBox(Vec3(-4), Vec3(4)));
        b.grow(rng.nextInBox(Vec3(-4), Vec3(4)));
        AABB moved = m.box(b);
        // Any point of the original box maps inside the moved box.
        for (int k = 0; k < 10; ++k) {
            Vec3 p = rng.nextInBox(b.lo, b.hi);
            EXPECT_TRUE(moved.contains(m.point(p)));
        }
    }
}

} // namespace

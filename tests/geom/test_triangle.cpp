/**
 * @file
 * Unit and property tests for the Möller–Trumbore triangle test.
 */

#include <gtest/gtest.h>

#include "geom/rng.hpp"
#include "geom/triangle.hpp"

namespace {

using cooprt::geom::kNoHit;
using cooprt::geom::Pcg32;
using cooprt::geom::Ray;
using cooprt::geom::Triangle;
using cooprt::geom::Vec3;

// Unit right triangle in the z=0 plane.
const Triangle tri{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};

TEST(Triangle, CenterHit)
{
    Ray r({0.25f, 0.25f, 1.0f}, {0, 0, -1});
    EXPECT_FLOAT_EQ(tri.intersect(r, kNoHit), 1.0f);
}

TEST(Triangle, DoubleSidedHitFromBehind)
{
    Ray r({0.25f, 0.25f, -1.0f}, {0, 0, 1});
    EXPECT_FLOAT_EQ(tri.intersect(r, kNoHit), 1.0f);
}

TEST(Triangle, MissOutsideEdge)
{
    Ray r({0.75f, 0.75f, 1.0f}, {0, 0, -1}); // beyond hypotenuse
    EXPECT_EQ(tri.intersect(r, kNoHit), kNoHit);
}

TEST(Triangle, MissNegativeBarycentric)
{
    Ray r({-0.1f, 0.5f, 1.0f}, {0, 0, -1});
    EXPECT_EQ(tri.intersect(r, kNoHit), kNoHit);
}

TEST(Triangle, ParallelRayMisses)
{
    Ray r({0.25f, 0.25f, 1.0f}, {1, 0, 0}); // parallel to plane
    EXPECT_EQ(tri.intersect(r, kNoHit), kNoHit);
}

TEST(Triangle, BehindOriginMisses)
{
    Ray r({0.25f, 0.25f, -1.0f}, {0, 0, -1}); // triangle behind ray
    EXPECT_EQ(tri.intersect(r, kNoHit), kNoHit);
}

TEST(Triangle, RespectsTLimit)
{
    Ray r({0.25f, 0.25f, 2.0f}, {0, 0, -1});
    EXPECT_EQ(tri.intersect(r, 1.5f), kNoHit);   // hit at 2.0 > limit
    EXPECT_FLOAT_EQ(tri.intersect(r, 2.5f), 2.0f);
}

TEST(Triangle, RespectsRayTmax)
{
    Ray r({0.25f, 0.25f, 2.0f}, {0, 0, -1}, 1e-4f, 1.0f);
    EXPECT_EQ(tri.intersect(r, kNoHit), kNoHit);
}

TEST(Triangle, RespectsRayTmin)
{
    // Origin exactly on the triangle: hit distance 0 < tmin rejected,
    // which is the standard self-intersection guard.
    Ray r({0.25f, 0.25f, 0.0f}, {0, 0, -1});
    EXPECT_EQ(tri.intersect(r, kNoHit), kNoHit);
}

TEST(Triangle, BoundsContainVertices)
{
    Triangle t{{-1, 2, 3}, {4, -5, 6}, {0, 0, -2}};
    auto b = t.bounds();
    EXPECT_TRUE(b.contains(t.v0));
    EXPECT_TRUE(b.contains(t.v1));
    EXPECT_TRUE(b.contains(t.v2));
    EXPECT_EQ(b.lo, Vec3(-1, -5, -2));
    EXPECT_EQ(b.hi, Vec3(4, 2, 6));
}

TEST(Triangle, CentroidIsVertexAverage)
{
    Triangle t{{0, 0, 0}, {3, 0, 0}, {0, 3, 0}};
    EXPECT_EQ(t.centroid(), Vec3(1, 1, 0));
}

TEST(Triangle, GeometricNormalDirection)
{
    Vec3 n = tri.geometricNormal();
    EXPECT_EQ(n, Vec3(0, 0, 1));
}

TEST(Triangle, Area2)
{
    EXPECT_FLOAT_EQ(tri.area2(), 1.0f); // 2 * area(0.5)
}

TEST(Triangle, ShadingNormalFacesIncoming)
{
    Vec3 n_above = tri.shadingNormal(Vec3(0, 0, -1));
    EXPECT_GT(n_above.z, 0.0f);
    Vec3 n_below = tri.shadingNormal(Vec3(0, 0, 1));
    EXPECT_LT(n_below.z, 0.0f);
}

TEST(Triangle, DegenerateTriangleNeverHits)
{
    Triangle degen{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}}; // collinear
    Pcg32 rng(5);
    for (int i = 0; i < 100; ++i) {
        Ray r(rng.nextInBox(Vec3(-5), Vec3(5)), rng.nextUnitVector());
        EXPECT_EQ(degen.intersect(r, kNoHit), kNoHit);
    }
}

/**
 * Property: construct the hit point from barycentric coordinates; a
 * ray aimed at it must hit at the expected distance.
 */
TEST(TriangleProperty, RayAtBarycentricPointHits)
{
    Pcg32 rng(123);
    for (int iter = 0; iter < 3000; ++iter) {
        Triangle t{rng.nextInBox(Vec3(-5), Vec3(5)),
                   rng.nextInBox(Vec3(-5), Vec3(5)),
                   rng.nextInBox(Vec3(-5), Vec3(5))};
        if (t.area2() < 1e-3f)
            continue; // skip near-degenerate samples
        // Strictly interior barycentric coordinates.
        float u = 0.1f + 0.6f * rng.nextFloat();
        float v = 0.1f + (0.8f - u) * rng.nextFloat();
        Vec3 p = t.v0 * (1 - u - v) + t.v1 * u + t.v2 * v;
        Vec3 o = p + rng.nextUnitVector() * (1.0f + 5.0f * rng.nextFloat());
        Vec3 d = p - o;
        float dist = d.length();
        Ray r(o, d / dist);
        // Reject grazing configurations where the ray is nearly in the
        // triangle plane (numerically fragile for any intersector).
        Vec3 n = normalize(t.geometricNormal());
        if (std::abs(dot(n, r.dir)) < 0.05f)
            continue;
        float thit = t.intersect(r, kNoHit);
        ASSERT_NE(thit, kNoHit) << "iter " << iter;
        EXPECT_NEAR(thit, dist, 1e-2f * dist + 1e-3f) << "iter " << iter;
    }
}

/**
 * Property: the triangle's bounding box is conservative — whenever the
 * triangle is hit, the box is hit too, at an entry distance <= thit.
 */
TEST(TriangleProperty, BoundsAreConservative)
{
    Pcg32 rng(321);
    int checked = 0;
    for (int iter = 0; iter < 3000; ++iter) {
        Triangle t{rng.nextInBox(Vec3(-5), Vec3(5)),
                   rng.nextInBox(Vec3(-5), Vec3(5)),
                   rng.nextInBox(Vec3(-5), Vec3(5))};
        // Aim at a jittered point near the triangle so enough samples
        // hit the primitive.
        Vec3 o = rng.nextInBox(Vec3(-15), Vec3(15));
        Vec3 target = t.centroid() +
                      rng.nextUnitVector() * (3.0f * rng.nextFloat());
        if ((target - o).lengthSq() < 1e-6f)
            continue;
        Ray r(o, normalize(target - o));
        float thit = t.intersect(r, kNoHit);
        if (thit == kNoHit)
            continue;
        ++checked;
        float tbox = t.bounds().intersect(r, kNoHit);
        ASSERT_NE(tbox, kNoHit) << "iter " << iter;
        EXPECT_LE(tbox, thit + 1e-3f) << "iter " << iter;
    }
    EXPECT_GT(checked, 50);
}

/**
 * Property: intersection distance is invariant under vertex rotation
 * (v0,v1,v2) -> (v1,v2,v0), which permutes barycentrics but not
 * geometry.
 */
TEST(TriangleProperty, VertexRotationInvariance)
{
    Pcg32 rng(777);
    for (int iter = 0; iter < 1000; ++iter) {
        Triangle a{rng.nextInBox(Vec3(-3), Vec3(3)),
                   rng.nextInBox(Vec3(-3), Vec3(3)),
                   rng.nextInBox(Vec3(-3), Vec3(3))};
        Triangle b{a.v1, a.v2, a.v0};
        Ray r(rng.nextInBox(Vec3(-10), Vec3(10)), rng.nextUnitVector());
        float ta = a.intersect(r, kNoHit);
        float tb = b.intersect(r, kNoHit);
        if (ta == kNoHit || tb == kNoHit) {
            // Edge-grazing rays may flip near the boundary; require
            // agreement only when both report hits.
            continue;
        }
        EXPECT_NEAR(ta, tb, 1e-3f * (1.0f + ta)) << "iter " << iter;
    }
}

} // namespace

/**
 * @file
 * Zero-direction ("degenerate") query rays and the proxy-primitive
 * leaf tests backing the cooprt::query workloads: the slab test must
 * return an exact point-to-box distance for them — by dedicated
 * branch, not by epsilon luck with the 1e-30 reciprocal nudge — and
 * zero-extent (tmin == tmax) directional rays must still traverse.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/aabb.hpp"
#include "geom/proxy.hpp"
#include "geom/rng.hpp"
#include "geom/triangle.hpp"

namespace {

using cooprt::geom::AABB;
using cooprt::geom::cellProxy;
using cooprt::geom::kNoHit;
using cooprt::geom::Pcg32;
using cooprt::geom::pointProxy;
using cooprt::geom::QueryKind;
using cooprt::geom::queryLeafTest;
using cooprt::geom::Ray;
using cooprt::geom::Triangle;
using cooprt::geom::Vec3;

const AABB unit_box{{0, 0, 0}, {1, 1, 1}};

/** A point query at @p o searching out to @p tmax beyond @p tmin. */
Ray
pointQuery(const Vec3 &o, float tmin = 0.0f, float tmax = kNoHit)
{
    return Ray(o, Vec3{}, tmin, tmax);
}

TEST(DegenerateRay, DetectedExactly)
{
    EXPECT_TRUE(pointQuery({0.5f, 0.5f, 0.5f}).degenerate());
    EXPECT_FALSE(Ray({0, 0, 0}, {1, 0, 0}).degenerate());
    // One tiny nonzero component is still a directional ray.
    EXPECT_FALSE(Ray({0, 0, 0}, {0, 1e-30f, 0}).degenerate());
}

TEST(DegenerateRay, StoredDirectionStaysZero)
{
    // The ctor nudges only the *reciprocal*; the stored direction
    // must remain exactly zero or degenerate() could not detect it.
    const Ray r = pointQuery({1, 2, 3});
    EXPECT_EQ(r.dir.x, 0.0f);
    EXPECT_EQ(r.dir.y, 0.0f);
    EXPECT_EQ(r.dir.z, 0.0f);
}

TEST(DegenerateSlab, OriginInsideReturnsTmin)
{
    EXPECT_FLOAT_EQ(
        unit_box.intersect(pointQuery({0.5f, 0.5f, 0.5f}), kNoHit),
        0.0f);
    EXPECT_FLOAT_EQ(
        unit_box.intersect(pointQuery({0.5f, 0.5f, 0.5f}, 0.25f),
                           kNoHit),
        0.25f);
}

TEST(DegenerateSlab, FaceDistance)
{
    // Closest point of the box is the x = 1 face.
    EXPECT_FLOAT_EQ(
        unit_box.intersect(pointQuery({2.0f, 0.5f, 0.5f}), kNoHit),
        1.0f);
}

TEST(DegenerateSlab, CornerDistance)
{
    EXPECT_NEAR(
        unit_box.intersect(pointQuery({2.0f, 2.0f, 2.0f}), kNoHit),
        std::sqrt(3.0f), 1e-6f);
}

TEST(DegenerateSlab, SearchLimitCulls)
{
    const Ray q = pointQuery({2.0f, 0.5f, 0.5f});
    EXPECT_EQ(unit_box.intersect(q, 0.5f), kNoHit);
    // The limit is inclusive, matching the directional slab test.
    EXPECT_FLOAT_EQ(unit_box.intersect(q, 1.0f), 1.0f);
}

TEST(DegenerateSlab, TminClampsDoesNotReject)
{
    // A box closer than tmin is still *visitable* at distance tmin —
    // it may contain points beyond tmin; only the leaf test rejects.
    const Ray q = pointQuery({1.1f, 0.5f, 0.5f}, 0.5f);
    EXPECT_FLOAT_EQ(unit_box.intersect(q, kNoHit), 0.5f);
}

TEST(ZeroExtentSlab, TminEqualsTmaxStillTraverses)
{
    // A zero-extent directional ray probes exactly one parameter
    // value; entry == limit must hit (inclusive comparisons).
    Ray r({-2.0f, 0.5f, 0.5f}, {1, 0, 0}, 2.0f, 2.0f);
    const float limit = r.tmax; // searchLimit(min_thit = inf, tmax)
    EXPECT_FLOAT_EQ(unit_box.intersect(r, limit), 2.0f);

    // Probing just before the box must miss: entry 2.0 > limit 1.9.
    Ray before({-2.0f, 0.5f, 0.5f}, {1, 0, 0}, 1.9f, 1.9f);
    EXPECT_EQ(unit_box.intersect(before, before.tmax), kNoHit);
}

/**
 * Property: the degenerate branch equals the clamped point-to-box
 * distance everywhere, and growing the box never increases it.
 */
TEST(DegenerateSlabProperty, MatchesPointToBoxDistance)
{
    Pcg32 rng(1234);
    for (int iter = 0; iter < 2000; ++iter) {
        AABB box;
        box.grow(rng.nextInBox(Vec3(-5), Vec3(5)));
        box.grow(rng.nextInBox(Vec3(-5), Vec3(5)));
        const Vec3 o = rng.nextInBox(Vec3(-10), Vec3(10));
        const float t =
            box.intersect(pointQuery(o), kNoHit);
        const Vec3 closest = min(max(o, box.lo), box.hi);
        const float expect = (o - closest).length();
        ASSERT_FALSE(std::isnan(t)) << "iter " << iter;
        EXPECT_FLOAT_EQ(t, expect) << "iter " << iter;

        AABB outer = box;
        outer.grow(rng.nextInBox(Vec3(-8), Vec3(8)));
        EXPECT_LE(outer.intersect(pointQuery(o), kNoHit), t)
            << "iter " << iter;
    }
}

TEST(Proxy, PointProxyIsDegenerateTriangle)
{
    const Vec3 p{1.0f, 2.0f, 3.0f};
    const Triangle tri = pointProxy(p);
    EXPECT_EQ(tri.v0, p);
    EXPECT_EQ(tri.v1, p);
    EXPECT_EQ(tri.v2, p);
    // Zero-area proxy can never register as a *rendering* hit even
    // for a ray aimed straight through the point.
    Ray through({0, 2.0f, 3.0f}, {1, 0, 0});
    EXPECT_EQ(tri.intersect(through, kNoHit), kNoHit);
}

TEST(Proxy, CellProxyCarriesBounds)
{
    const AABB cell{{0, 0, 0}, {2, 4, 6}};
    const Triangle tri = cellProxy(cell);
    EXPECT_EQ(tri.v0, cell.lo);
    EXPECT_EQ(tri.v1, cell.hi);
    EXPECT_EQ(tri.v2, cell.centroid());
}

TEST(QueryLeaf, NearestPointExactDistance)
{
    const Triangle tri = pointProxy({1, 0, 0});
    const Ray q = pointQuery({0, 0, 0});
    EXPECT_FLOAT_EQ(queryLeafTest(QueryKind::NearestPoint, tri, q,
                                  kNoHit),
                    1.0f);
}

TEST(QueryLeaf, NearestPointStrictTminExcludesPreviousNeighbor)
{
    // Shrinking-sphere k-NN: round j sets tmin to round j-1's
    // distance; recomputing the identical expression must reject.
    const Triangle tri = pointProxy({1, 0, 0});
    const float d =
        queryLeafTest(QueryKind::NearestPoint, tri,
                      pointQuery({0, 0, 0}), kNoHit);
    EXPECT_EQ(queryLeafTest(QueryKind::NearestPoint, tri,
                            pointQuery({0, 0, 0}, /*tmin=*/d),
                            kNoHit),
              kNoHit);
}

TEST(QueryLeaf, NearestPointRespectsRadiusAndLimit)
{
    const Triangle tri = pointProxy({1, 0, 0});
    // tmax is the fixed search radius: d >= tmax rejects.
    EXPECT_EQ(queryLeafTest(QueryKind::NearestPoint, tri,
                            pointQuery({0, 0, 0}, 0.0f, 1.0f),
                            kNoHit),
              kNoHit);
    // t_limit (a closer accepted neighbor) rejects the same way.
    EXPECT_EQ(queryLeafTest(QueryKind::NearestPoint, tri,
                            pointQuery({0, 0, 0}), 0.5f),
              kNoHit);
    EXPECT_FLOAT_EQ(queryLeafTest(QueryKind::NearestPoint, tri,
                                  pointQuery({0, 0, 0}, 0.0f, 1.5f),
                                  2.0f),
                    1.0f);
}

TEST(QueryLeaf, CellContainInclusiveBounds)
{
    const Triangle cell = cellProxy({{0, 0, 0}, {1, 1, 1}});
    EXPECT_FLOAT_EQ(queryLeafTest(QueryKind::CellContain, cell,
                                  pointQuery({0.5f, 0.5f, 0.5f}),
                                  kNoHit),
                    1.0f);
    // Boundary points are inside (the AMR grid tiles the domain).
    EXPECT_FLOAT_EQ(queryLeafTest(QueryKind::CellContain, cell,
                                  pointQuery({0, 0, 0}), kNoHit),
                    1.0f);
    EXPECT_FLOAT_EQ(queryLeafTest(QueryKind::CellContain, cell,
                                  pointQuery({1, 1, 1}), kNoHit),
                    1.0f);
    EXPECT_EQ(queryLeafTest(QueryKind::CellContain, cell,
                            pointQuery({1.01f, 0.5f, 0.5f}), kNoHit),
              kNoHit);
}

TEST(QueryLeaf, CellContainFinestCellWins)
{
    // Overlapping coarse and fine candidates: the fine cell's width
    // is the smaller "hit distance", and once accepted it culls the
    // coarse cell through the ordinary t_limit path.
    const Triangle coarse = cellProxy({{0, 0, 0}, {1, 1, 1}});
    const Triangle fine = cellProxy({{0, 0, 0}, {0.25f, 0.25f, 0.25f}});
    const Ray q = pointQuery({0.1f, 0.1f, 0.1f});
    const float wf =
        queryLeafTest(QueryKind::CellContain, fine, q, kNoHit);
    const float wc =
        queryLeafTest(QueryKind::CellContain, coarse, q, kNoHit);
    EXPECT_LT(wf, wc);
    EXPECT_EQ(queryLeafTest(QueryKind::CellContain, coarse, q, wf),
              kNoHit);
}

} // namespace

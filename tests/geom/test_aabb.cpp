/**
 * @file
 * Unit and property tests for the AABB slab test, the core operation
 * of BVH traversal.
 */

#include <gtest/gtest.h>

#include "geom/aabb.hpp"
#include "geom/rng.hpp"

namespace {

using cooprt::geom::AABB;
using cooprt::geom::kNoHit;
using cooprt::geom::Pcg32;
using cooprt::geom::Ray;
using cooprt::geom::Vec3;

const AABB unit_box{{0, 0, 0}, {1, 1, 1}};

TEST(Aabb, DefaultIsEmpty)
{
    AABB b;
    EXPECT_TRUE(b.empty());
    EXPECT_FLOAT_EQ(b.surfaceArea(), 0.0f);
}

TEST(Aabb, GrowPoint)
{
    AABB b;
    b.grow(Vec3(1, 2, 3));
    EXPECT_FALSE(b.empty());
    EXPECT_EQ(b.lo, Vec3(1, 2, 3));
    EXPECT_EQ(b.hi, Vec3(1, 2, 3));
    b.grow(Vec3(-1, 5, 0));
    EXPECT_EQ(b.lo, Vec3(-1, 2, 0));
    EXPECT_EQ(b.hi, Vec3(1, 5, 3));
}

TEST(Aabb, GrowBox)
{
    AABB b;
    b.grow(AABB{{0, 0, 0}, {1, 1, 1}});
    b.grow(AABB{{-1, 0.5f, 0}, {0.5f, 2, 3}});
    EXPECT_EQ(b.lo, Vec3(-1, 0, 0));
    EXPECT_EQ(b.hi, Vec3(1, 2, 3));
}

TEST(Aabb, SurfaceAreaUnitCube)
{
    EXPECT_FLOAT_EQ(unit_box.surfaceArea(), 6.0f);
}

TEST(Aabb, SurfaceAreaFlatBox)
{
    AABB flat{{0, 0, 0}, {2, 3, 0}};
    EXPECT_FLOAT_EQ(flat.surfaceArea(), 2.0f * (2 * 3));
}

TEST(Aabb, CentroidAndExtent)
{
    AABB b{{0, 2, 4}, {2, 6, 10}};
    EXPECT_EQ(b.centroid(), Vec3(1, 4, 7));
    EXPECT_EQ(b.extent(), Vec3(2, 4, 6));
}

TEST(Aabb, ContainsPoint)
{
    EXPECT_TRUE(unit_box.contains(Vec3(0.5f, 0.5f, 0.5f)));
    EXPECT_TRUE(unit_box.contains(Vec3(0, 0, 0)));      // boundary
    EXPECT_TRUE(unit_box.contains(Vec3(1, 1, 1)));      // boundary
    EXPECT_FALSE(unit_box.contains(Vec3(1.01f, 0.5f, 0.5f)));
    EXPECT_FALSE(unit_box.contains(Vec3(0.5f, -0.01f, 0.5f)));
}

TEST(Aabb, ContainsBox)
{
    EXPECT_TRUE(unit_box.contains(AABB{{0.2f, 0.2f, 0.2f},
                                       {0.8f, 0.8f, 0.8f}}));
    EXPECT_FALSE(unit_box.contains(AABB{{0.2f, 0.2f, 0.2f},
                                        {1.2f, 0.8f, 0.8f}}));
}

TEST(AabbIntersect, HeadOnHitReturnsEntryDistance)
{
    Ray r({-2, 0.5f, 0.5f}, {1, 0, 0});
    float t = unit_box.intersect(r, kNoHit);
    EXPECT_FLOAT_EQ(t, 2.0f);
}

TEST(AabbIntersect, MissAbove)
{
    Ray r({-2, 1.5f, 0.5f}, {1, 0, 0});
    EXPECT_EQ(unit_box.intersect(r, kNoHit), kNoHit);
}

TEST(AabbIntersect, PointingAwayMisses)
{
    Ray r({-2, 0.5f, 0.5f}, {-1, 0, 0});
    EXPECT_EQ(unit_box.intersect(r, kNoHit), kNoHit);
}

TEST(AabbIntersect, OriginInsideReturnsTmin)
{
    Ray r({0.5f, 0.5f, 0.5f}, {0, 1, 0});
    float t = unit_box.intersect(r, kNoHit);
    EXPECT_FLOAT_EQ(t, r.tmin);
}

TEST(AabbIntersect, DiagonalHit)
{
    Ray r({-1, -1, -1}, normalize(Vec3(1, 1, 1)));
    float t = unit_box.intersect(r, kNoHit);
    EXPECT_NEAR(t, std::sqrt(3.0f), 1e-5f);
}

TEST(AabbIntersect, RespectsTLimit)
{
    Ray r({-2, 0.5f, 0.5f}, {1, 0, 0});
    // Entry at t=2, so a limit of 1.5 must reject the box: a closer
    // primitive hit eliminates this subtree (Algorithm 1, line 8).
    EXPECT_EQ(unit_box.intersect(r, 1.5f), kNoHit);
    EXPECT_FLOAT_EQ(unit_box.intersect(r, 2.5f), 2.0f);
}

TEST(AabbIntersect, AxisParallelRayWithZeroComponents)
{
    // Direction with two exactly-zero components: the sanitized
    // reciprocal must not produce NaN.
    Ray r({0.5f, 0.5f, -3.0f}, {0, 0, 1});
    float t = unit_box.intersect(r, kNoHit);
    EXPECT_FLOAT_EQ(t, 3.0f);

    Ray miss({1.5f, 0.5f, -3.0f}, {0, 0, 1});
    EXPECT_EQ(unit_box.intersect(miss, kNoHit), kNoHit);
}

TEST(AabbIntersect, NegativeDirectionHit)
{
    Ray r({3, 0.5f, 0.5f}, {-1, 0, 0});
    EXPECT_FLOAT_EQ(unit_box.intersect(r, kNoHit), 2.0f);
}

TEST(AabbIntersect, GrazingCornerDoesNotCrash)
{
    Ray r({-1, -1, 0.5f}, normalize(Vec3(1, 1, 0)));
    float t = unit_box.intersect(r, kNoHit);
    // Grazing exactly through the (0,0) edge: hit or miss are both
    // acceptable, but the result must be a real number.
    EXPECT_FALSE(std::isnan(t));
}

/**
 * Property: a sampled-point oracle. If the ray passes through a point
 * strictly inside the box, intersect() must report a hit at a distance
 * no greater than the distance to that interior point.
 */
TEST(AabbIntersectProperty, RayThroughInteriorPointAlwaysHits)
{
    Pcg32 rng(42);
    for (int iter = 0; iter < 2000; ++iter) {
        AABB box;
        box.grow(rng.nextInBox(Vec3(-10), Vec3(10)));
        box.grow(rng.nextInBox(Vec3(-10), Vec3(10)));
        // Interior point (strictly inside by construction).
        Vec3 p = lerp(box.lo, box.hi, 0.25f + 0.5f * rng.nextFloat());
        Vec3 o = rng.nextInBox(Vec3(-30), Vec3(30));
        if (box.contains(o))
            continue; // want an exterior origin
        Vec3 d = p - o;
        float dist = d.length();
        if (dist < 1e-3f)
            continue;
        Ray r(o, d / dist);
        float t = box.intersect(r, kNoHit);
        ASSERT_NE(t, kNoHit) << "iter " << iter;
        EXPECT_LE(t, dist + 1e-3f) << "iter " << iter;
    }
}

/**
 * Property: if intersect() reports entry distance t, the ray point at
 * t lies on (or numerically near) the box boundary, inside the box.
 */
TEST(AabbIntersectProperty, ReportedEntryPointIsOnBox)
{
    Pcg32 rng(7);
    int hits = 0;
    for (int iter = 0; iter < 2000; ++iter) {
        AABB box;
        box.grow(rng.nextInBox(Vec3(-5), Vec3(5)));
        box.grow(rng.nextInBox(Vec3(-5), Vec3(5)));
        Vec3 o = rng.nextInBox(Vec3(-20), Vec3(20));
        // Aim at a jittered point near the box so enough samples hit.
        Vec3 target = box.centroid() + rng.nextUnitVector() *
                      (box.extent().maxComponent() * rng.nextFloat());
        Vec3 d = target - o;
        if (d.lengthSq() < 1e-6f)
            continue;
        Ray r(o, normalize(d));
        float t = box.intersect(r, kNoHit);
        if (t == kNoHit || box.contains(o))
            continue;
        ++hits;
        Vec3 q = r.at(t);
        const float eps = 1e-2f;
        AABB inflated{box.lo - Vec3(eps), box.hi + Vec3(eps)};
        EXPECT_TRUE(inflated.contains(q))
            << "iter " << iter << " point " << q;
    }
    // Sanity: the sampler actually produced hits to check.
    EXPECT_GT(hits, 100);
}

/**
 * Property: growing a box never shrinks the reported entry distance
 * from miss to hit... i.e. if a ray hits a box, it hits any enclosing
 * box at an entry distance <= the inner box's entry distance.
 */
TEST(AabbIntersectProperty, EnclosingBoxHitsEarlier)
{
    Pcg32 rng(99);
    for (int iter = 0; iter < 1000; ++iter) {
        AABB inner;
        inner.grow(rng.nextInBox(Vec3(-5), Vec3(5)));
        inner.grow(rng.nextInBox(Vec3(-5), Vec3(5)));
        AABB outer = inner;
        outer.grow(rng.nextInBox(Vec3(-8), Vec3(8)));

        Vec3 o = rng.nextInBox(Vec3(-20), Vec3(20));
        if (outer.contains(o))
            continue;
        Ray r(o, rng.nextUnitVector());
        float ti = inner.intersect(r, kNoHit);
        if (ti == kNoHit)
            continue;
        float to = outer.intersect(r, kNoHit);
        ASSERT_NE(to, kNoHit) << "iter " << iter;
        EXPECT_LE(to, ti + 1e-3f) << "iter " << iter;
    }
}

} // namespace

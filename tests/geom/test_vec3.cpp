/**
 * @file
 * Unit tests for the Vec3 vector type.
 */

#include <gtest/gtest.h>

#include "geom/vec3.hpp"

namespace {

using cooprt::geom::Vec3;

TEST(Vec3, DefaultIsZero)
{
    Vec3 v;
    EXPECT_EQ(v.x, 0.0f);
    EXPECT_EQ(v.y, 0.0f);
    EXPECT_EQ(v.z, 0.0f);
}

TEST(Vec3, BroadcastConstructor)
{
    Vec3 v(2.5f);
    EXPECT_EQ(v, Vec3(2.5f, 2.5f, 2.5f));
}

TEST(Vec3, Addition)
{
    EXPECT_EQ(Vec3(1, 2, 3) + Vec3(4, 5, 6), Vec3(5, 7, 9));
}

TEST(Vec3, Subtraction)
{
    EXPECT_EQ(Vec3(4, 5, 6) - Vec3(1, 2, 3), Vec3(3, 3, 3));
}

TEST(Vec3, ComponentwiseMultiply)
{
    EXPECT_EQ(Vec3(1, 2, 3) * Vec3(2, 3, 4), Vec3(2, 6, 12));
}

TEST(Vec3, ScalarMultiplyCommutes)
{
    EXPECT_EQ(Vec3(1, 2, 3) * 2.0f, 2.0f * Vec3(1, 2, 3));
}

TEST(Vec3, ScalarDivide)
{
    EXPECT_EQ(Vec3(2, 4, 6) / 2.0f, Vec3(1, 2, 3));
}

TEST(Vec3, Negation)
{
    EXPECT_EQ(-Vec3(1, -2, 3), Vec3(-1, 2, -3));
}

TEST(Vec3, CompoundAssignment)
{
    Vec3 v(1, 1, 1);
    v += Vec3(1, 2, 3);
    EXPECT_EQ(v, Vec3(2, 3, 4));
    v -= Vec3(1, 1, 1);
    EXPECT_EQ(v, Vec3(1, 2, 3));
    v *= 3.0f;
    EXPECT_EQ(v, Vec3(3, 6, 9));
}

TEST(Vec3, IndexOperator)
{
    Vec3 v(7, 8, 9);
    EXPECT_EQ(v[0], 7.0f);
    EXPECT_EQ(v[1], 8.0f);
    EXPECT_EQ(v[2], 9.0f);
}

TEST(Vec3, MutableAtWritesComponents)
{
    Vec3 v;
    v.at(0) = 1.0f;
    v.at(1) = 2.0f;
    v.at(2) = 3.0f;
    EXPECT_EQ(v, Vec3(1, 2, 3));
}

TEST(Vec3, DotProduct)
{
    EXPECT_FLOAT_EQ(dot(Vec3(1, 2, 3), Vec3(4, -5, 6)), 12.0f);
}

TEST(Vec3, DotOrthogonalIsZero)
{
    EXPECT_FLOAT_EQ(dot(Vec3(1, 0, 0), Vec3(0, 1, 0)), 0.0f);
}

TEST(Vec3, CrossProductBasis)
{
    EXPECT_EQ(cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
    EXPECT_EQ(cross(Vec3(0, 1, 0), Vec3(0, 0, 1)), Vec3(1, 0, 0));
    EXPECT_EQ(cross(Vec3(0, 0, 1), Vec3(1, 0, 0)), Vec3(0, 1, 0));
}

TEST(Vec3, CrossAntisymmetric)
{
    Vec3 a(1.5f, -2.0f, 0.25f), b(0.5f, 3.0f, -1.0f);
    EXPECT_EQ(cross(a, b), -cross(b, a));
}

TEST(Vec3, CrossOrthogonalToOperands)
{
    Vec3 a(1.5f, -2.0f, 0.25f), b(0.5f, 3.0f, -1.0f);
    Vec3 c = cross(a, b);
    EXPECT_NEAR(dot(c, a), 0.0f, 1e-5f);
    EXPECT_NEAR(dot(c, b), 0.0f, 1e-5f);
}

TEST(Vec3, MinMax)
{
    Vec3 a(1, 5, 3), b(2, 4, 3);
    EXPECT_EQ(min(a, b), Vec3(1, 4, 3));
    EXPECT_EQ(max(a, b), Vec3(2, 5, 3));
}

TEST(Vec3, Length)
{
    EXPECT_FLOAT_EQ(Vec3(3, 4, 0).length(), 5.0f);
    EXPECT_FLOAT_EQ(Vec3(1, 2, 2).lengthSq(), 9.0f);
}

TEST(Vec3, NormalizeYieldsUnitLength)
{
    Vec3 n = normalize(Vec3(3, -4, 12));
    EXPECT_NEAR(n.length(), 1.0f, 1e-6f);
}

TEST(Vec3, LerpEndpointsAndMidpoint)
{
    Vec3 a(0, 0, 0), b(2, 4, 6);
    EXPECT_EQ(lerp(a, b, 0.0f), a);
    EXPECT_EQ(lerp(a, b, 1.0f), b);
    EXPECT_EQ(lerp(a, b, 0.5f), Vec3(1, 2, 3));
}

TEST(Vec3, ReflectAboutNormal)
{
    // 45-degree incidence on the y=0 plane.
    Vec3 d = normalize(Vec3(1, -1, 0));
    Vec3 r = reflect(d, Vec3(0, 1, 0));
    EXPECT_NEAR(r.x, d.x, 1e-6f);
    EXPECT_NEAR(r.y, -d.y, 1e-6f);
    EXPECT_NEAR(r.z, d.z, 1e-6f);
}

TEST(Vec3, ReflectPreservesLength)
{
    Vec3 d(0.3f, -0.9f, 0.2f);
    Vec3 r = reflect(d, normalize(Vec3(1, 2, -1)));
    EXPECT_NEAR(r.length(), d.length(), 1e-5f);
}

TEST(Vec3, MaxMinComponentAndAxis)
{
    Vec3 v(3, 9, 5);
    EXPECT_FLOAT_EQ(v.maxComponent(), 9.0f);
    EXPECT_FLOAT_EQ(v.minComponent(), 3.0f);
    EXPECT_EQ(v.maxAxis(), 1);
    EXPECT_EQ(Vec3(7, 1, 2).maxAxis(), 0);
    EXPECT_EQ(Vec3(1, 2, 7).maxAxis(), 2);
}

} // namespace

/**
 * @file
 * Mutation tests for the audit layer: each seeded model bug from
 * check::allMutations() is armed, the smallest simulation that
 * reaches its injection site is run, and the test asserts that the
 * audits catch the bug *and* name the right invariant. This is the
 * proof that the invariant net actually holds — an audit that never
 * fires is indistinguishable from no audit at all.
 *
 * Only meaningful in COOPRT_CHECK builds; skipped otherwise.
 */

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "core/simulation.hpp"
#include "mem/memory_system.hpp"
#include "memscope/memscope.hpp"
#include "prof/prof.hpp"
#include "raytrace/raytrace.hpp"
#include "trace/metrics.hpp"
#include "trace/registry.hpp"

#include "../rtunit/rtunit_test_util.hpp"

namespace {

using namespace cooprt;
using rtunit::TraceConfig;
using testutil::RtHarness;

class MutationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!check::enabled())
            GTEST_SKIP() << "COOPRT_CHECK is off in this build";
        check::disarmMutation();
    }

    void TearDown() override { check::disarmMutation(); }

    /**
     * Run @p scenario with @p m armed; the audits must abort it with
     * a ViolationError naming @p invariant.
     */
    template <typename Fn>
    void
    expectCaught(check::Mutation m, const std::string &invariant,
                 Fn &&scenario)
    {
        const std::uint64_t fired = check::mutationsFired();
        check::armMutation(m);
        try {
            scenario();
            FAIL() << check::mutationName(m)
                   << " was not caught by any audit";
        } catch (const check::ViolationError &e) {
            EXPECT_EQ(e.violation().invariant, invariant)
                << "caught by the wrong invariant: "
                << e.violation().message();
        }
        EXPECT_EQ(check::mutationsFired(), fired + 1)
            << check::mutationName(m) << " never reached its site";
    }
};

/** Busy 32-ray warp on a small soup; every RT-unit site is reached. */
void
runBusyWarp(const TraceConfig &cfg, int rays = rtunit::kWarpSize)
{
    RtHarness h(testutil::makeSoup(8, 2000), cfg);
    h.runOne(testutil::frontalJob(rays));
}

TEST_F(MutationTest, DoubleConsumeResponse)
{
    expectCaught(check::Mutation::DoubleConsumeResponse,
                 "rtunit.outstanding_matches_fifo",
                 [] { runBusyWarp(TraceConfig{}); });
}

TEST_F(MutationTest, DropResponse)
{
    expectCaught(check::Mutation::DropResponse,
                 "rtunit.pending_matches_responses",
                 [] { runBusyWarp(TraceConfig{}); });
}

TEST_F(MutationTest, StackOverPush)
{
    expectCaught(check::Mutation::StackOverPush,
                 "rtunit.stack_depth_bound",
                 [] { runBusyWarp(TraceConfig{}); });
}

TEST_F(MutationTest, LeakWarpSlot)
{
    expectCaught(check::Mutation::LeakWarpSlot,
                 "rtunit.resident_count",
                 [] { runBusyWarp(TraceConfig{}); });
}

TEST_F(MutationTest, IllegalLbuHelper)
{
    TraceConfig coop;
    coop.coop = true;
    // One busy thread, 31 idle helpers: steals happen every few
    // cycles, so a helper holding stolen work is soon available for
    // the mutation to retarget.
    expectCaught(check::Mutation::IllegalLbuHelper,
                 "rtunit.lbu_steal_legality",
                 [&] { runBusyWarp(coop, 1); });
}

TEST_F(MutationTest, LostWarp)
{
    expectCaught(check::Mutation::LostWarp, "sm.warp_conservation",
                 [] {
                     core::RunConfig cfg;
                     cfg.shader = core::ShaderKind::AmbientOcclusion;
                     cfg.resolution = 16;
                     core::simulationFor("wknd").run(cfg);
                 });
}

TEST_F(MutationTest, CacheHitMiscount)
{
    expectCaught(
        check::Mutation::CacheHitMiscount,
        "mem.cache_access_conservation", [] {
            mem::Cache cache(mem::CacheConfig{1024, 0, 128, 10});
            auto below = [](std::uint64_t, std::uint64_t t) {
                return t + 100;
            };
            cache.access(0, 0, below);   // cold miss installs line 0
            cache.access(0, 500, below); // hit, miscounted twice
        });
}

TEST_F(MutationTest, L2BankTimeTravel)
{
    expectCaught(check::Mutation::L2BankTimeTravel,
                 "mem.l2_bank_monotone", [] {
                     mem::MemConfig mc;
                     mc.num_sms = 1;
                     mem::MemorySystem ms(mc);
                     ms.fetch(0, 0, 128, 0); // L1 miss -> L2 bank
                 });
}

TEST_F(MutationTest, MetricsCycleRepeat)
{
    expectCaught(check::Mutation::MetricsCycleRepeat,
                 "trace.metrics_monotone", [] {
                     trace::Registry registry;
                     trace::MetricsSampler sampler(&registry, 500);
                     sampler.sample(100);
                     sampler.sample(600); // recorded as 100 again
                 });
}

TEST_F(MutationTest, ProfMisattribution)
{
    // A warp cycle the profiler skips breaks the bucket sum ==
    // resident-cycles identity the conservation audit re-derives
    // after every accounting pass.
    expectCaught(check::Mutation::ProfMisattribution,
                 "prof.bucket_conservation", [] {
                     prof::RtUnitProfile profile;
                     RtHarness h(testutil::makeSoup(8, 2000),
                                 TraceConfig{});
                     h.unit.attachProf(&profile, nullptr);
                     h.runOne(testutil::frontalJob(rtunit::kWarpSize));
                 });
}

TEST_F(MutationTest, MemscopeMisattribution)
{
    // Dropping one line's serving-level increment breaks the
    // lines-classified == L1-accesses identity the traffic
    // conservation audit re-derives after every fetch.
    expectCaught(check::Mutation::MemscopeMisattribution,
                 "memscope.traffic_conservation", [] {
                     mem::MemConfig mc;
                     mc.num_sms = 1;
                     mem::MemorySystem ms(mc);
                     memscope::Collector mscope;
                     ms.attachMemscope(&mscope);
                     ms.fetch(0, 0, 128, 0); // one line, one level
                 });
}

TEST_F(MutationTest, RayProvenanceDrop)
{
    // A steal event the recorder silently loses breaks the
    // recorded-vs-expected steal-event ledger the conservation audit
    // re-checks when each sampled warp retires.
    expectCaught(
        check::Mutation::RayProvenanceDrop,
        "ray.event_conservation", [] {
            raytrace::RecorderConfig rcfg;
            rcfg.sample_k = raytrace::kLanes; // every steal is logged
            raytrace::UnitRecorder rec(0, &rcfg);
            TraceConfig coop;
            coop.coop = true;
            RtHarness h(testutil::makeSoup(8, 2000), coop);
            h.unit.attachRayTrace(&rec, nullptr);
            h.runOne(testutil::frontalJob(1)); // steal-heavy warp
        });
}

/** The harness covers every mutation in the catalogue. */
TEST_F(MutationTest, CatalogueFullyExercised)
{
    // One TEST_F above per entry; this guards against a new Mutation
    // being added without a matching detection test.
    EXPECT_EQ(check::allMutations().size(), 12u)
        << "new mutation added: write its detection test and update "
           "this count";
}

} // namespace

/**
 * @file
 * The cooprt::check API itself: violation formatting, handler
 * routing, the RAII collector and the one-shot mutation harness.
 * Everything here works in both default and COOPRT_CHECK builds —
 * the API is always compiled; only the audit *call sites* in the
 * model are conditional.
 */

#include <gtest/gtest.h>

#include <set>

#include "check/check.hpp"

namespace {

using namespace cooprt;

TEST(CheckApi, ViolationMessageCarriesAllFields)
{
    check::Violation v;
    v.component = "rtunit.sm3";
    v.invariant = "rtunit.warp_conservation";
    v.cycle = 1234;
    v.detail = "submitted=5 retired=3 resident=1";
    const std::string msg = v.message();
    EXPECT_NE(msg.find("rtunit.sm3"), std::string::npos);
    EXPECT_NE(msg.find("rtunit.warp_conservation"), std::string::npos);
    EXPECT_NE(msg.find("1234"), std::string::npos);
    EXPECT_NE(msg.find("submitted=5"), std::string::npos);
}

TEST(CheckApi, DefaultHandlerThrowsViolationError)
{
    const std::uint64_t before = check::violationCount();
    try {
        check::fail("mem.l2", "mem.cache_access_conservation", 77,
                    "accesses=1 hits=2");
        FAIL() << "fail() must throw without a handler";
    } catch (const check::ViolationError &e) {
        EXPECT_EQ(e.violation().component, "mem.l2");
        EXPECT_EQ(e.violation().invariant,
                  "mem.cache_access_conservation");
        EXPECT_EQ(e.violation().cycle, 77u);
    }
    EXPECT_EQ(check::violationCount(), before + 1);
}

TEST(CheckApi, CollectorGathersWithoutUnwinding)
{
    const std::uint64_t before = check::violationCount();
    {
        check::Collector collector;
        check::fail("a", "inv.one", 1, "x");
        check::fail("b", "inv.two", 2, "y");
        ASSERT_EQ(collector.items().size(), 2u);
        EXPECT_EQ(collector.items()[0].invariant, "inv.one");
        EXPECT_EQ(collector.items()[1].cycle, 2u);
        EXPECT_FALSE(collector.empty());
    }
    // Destroying the collector restores the throwing default.
    EXPECT_THROW(check::fail("c", "inv.three", 3, "z"),
                 check::ViolationError);
    EXPECT_EQ(check::violationCount(), before + 3);
}

TEST(CheckApi, CustomHandlerReceivesViolations)
{
    int calls = 0;
    check::setHandler([&](const check::Violation &v) {
        calls++;
        EXPECT_EQ(v.invariant, "inv.custom");
    });
    check::fail("comp", "inv.custom", 9, "d");
    check::setHandler(nullptr);
    EXPECT_EQ(calls, 1);
}

TEST(CheckApi, MutationsFireExactlyOnce)
{
    ASSERT_EQ(check::armedMutation(), check::Mutation::None);
    check::armMutation(check::Mutation::DropResponse);
    EXPECT_TRUE(check::mutationArmed(check::Mutation::DropResponse));
    EXPECT_FALSE(
        check::mutationArmed(check::Mutation::LeakWarpSlot));
    // A different site does not consume it...
    EXPECT_FALSE(
        check::mutationFires(check::Mutation::LeakWarpSlot));
    // ...the matching site consumes it exactly once.
    const std::uint64_t fired = check::mutationsFired();
    EXPECT_TRUE(check::mutationFires(check::Mutation::DropResponse));
    EXPECT_FALSE(check::mutationFires(check::Mutation::DropResponse));
    EXPECT_EQ(check::armedMutation(), check::Mutation::None);
    EXPECT_EQ(check::mutationsFired(), fired + 1);
}

TEST(CheckApi, DisarmCancelsWithoutFiring)
{
    const std::uint64_t fired = check::mutationsFired();
    check::armMutation(check::Mutation::StackOverPush);
    check::disarmMutation();
    EXPECT_FALSE(check::mutationFires(check::Mutation::StackOverPush));
    EXPECT_EQ(check::mutationsFired(), fired);
}

TEST(CheckApi, MutationCatalogueIsCompleteAndNamed)
{
    const auto &all = check::allMutations();
    EXPECT_EQ(all.size(), 12u);
    std::set<std::string> names;
    for (const check::Mutation m : all) {
        ASSERT_NE(m, check::Mutation::None);
        const std::string name = check::mutationName(m);
        EXPECT_NE(name, "Unknown");
        EXPECT_NE(name, "None");
        names.insert(name);
    }
    EXPECT_EQ(names.size(), all.size()) << "duplicate mutation names";
}

TEST(CheckApi, EnabledMatchesBuildConfiguration)
{
#if COOPRT_CHECK_ENABLED
    EXPECT_TRUE(check::enabled());
#else
    EXPECT_FALSE(check::enabled());
    // In default builds the macros are inert: no audit, no mutation.
    check::armMutation(check::Mutation::DropResponse);
    EXPECT_FALSE(COOPRT_MUTATE(DropResponse));
    EXPECT_TRUE(
        check::mutationArmed(check::Mutation::DropResponse))
        << "inert COOPRT_MUTATE must not consume the armed mutation";
    check::disarmMutation();
    COOPRT_AUDIT("comp", "inv", 0, false, "never evaluated");
#endif
}

} // namespace

/**
 * @file
 * The other half of the mutation proof: with no mutation armed, the
 * audit net must stay silent across the whole benchmark scene sweep,
 * baseline and CoopRT, with and without an observability session.
 * A false positive here would make every audit worthless in CI.
 *
 * In default builds the audits compile away, so the sweep doubles as
 * a cheap smoke test that violationCount() stays untouched.
 */

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "core/simulation.hpp"
#include "scene/registry.hpp"
#include "trace/session.hpp"

namespace {

using namespace cooprt;

class CleanSweep : public ::testing::TestWithParam<std::string>
{};

TEST_P(CleanSweep, NoViolationsBaseAndCoop)
{
    const std::uint64_t before = check::violationCount();
    check::Collector collector;

    core::RunConfig cfg;
    cfg.resolution = 16;
    cfg.gpu.trace.coop = false;
    const auto base = core::simulationFor(GetParam()).run(cfg);
    cfg.gpu.trace.coop = true;
    const auto coop = core::simulationFor(GetParam()).run(cfg);

    EXPECT_GT(base.gpu.cycles, 0u);
    EXPECT_GT(coop.gpu.cycles, 0u);
    ASSERT_TRUE(collector.empty())
        << collector.items().size() << " violations; first: "
        << collector.items().front().message();
    EXPECT_EQ(check::violationCount(), before);
}

INSTANTIATE_TEST_SUITE_P(
    Scenes, CleanSweep,
    ::testing::ValuesIn(scene::SceneRegistry::allLabels()),
    [](const auto &info) { return info.param; });

TEST(CleanSweepExtra, OtherShadersAndTracingStaySilent)
{
    check::Collector collector;

    core::RunConfig cfg;
    cfg.resolution = 16;
    cfg.gpu.trace.coop = true;

    cfg.shader = core::ShaderKind::AmbientOcclusion;
    core::simulationFor("bunny").run(cfg);
    cfg.shader = core::ShaderKind::Shadow;
    core::simulationFor("ship").run(cfg);

    // A session with metrics sampling exercises the sampler audits.
    trace::SessionOptions opt;
    opt.metrics = true;
    opt.metrics_interval = 100;
    trace::Session session(opt);
    cfg.shader = core::ShaderKind::PathTracing;
    cfg.trace_session = &session;
    const auto out = core::simulationFor("wknd").run(cfg);

    EXPECT_GT(out.gpu.cycles, 0u);
    ASSERT_TRUE(collector.empty())
        << collector.items().size() << " violations; first: "
        << collector.items().front().message();
}

} // namespace

/**
 * @file
 * The diff engine's JSON reader: exact integer round-trip (the
 * property the bit-exact conservation checks stand on), member-order
 * preservation, escapes, and hard failures on malformed input.
 */

#include <gtest/gtest.h>

#include <string>

#include "diff/json_value.hpp"

namespace {

using cooprt::diff::JsonValue;

TEST(JsonValue, ScalarsParseWithExactKinds)
{
    std::string err;
    const JsonValue i = JsonValue::parse("42", &err);
    ASSERT_TRUE(i.valid()) << err;
    EXPECT_TRUE(i.isInt());
    EXPECT_EQ(i.intValue(), 42);

    const JsonValue neg = JsonValue::parse("-7", &err);
    ASSERT_TRUE(neg.valid());
    EXPECT_EQ(neg.intValue(), -7);

    // Integer-looking text stays an Int even at int64 extremes —
    // cycle counters must round-trip without any double rounding.
    const JsonValue big =
        JsonValue::parse("9223372036854775807", &err);
    ASSERT_TRUE(big.valid());
    EXPECT_TRUE(big.isInt());
    EXPECT_EQ(big.intValue(), INT64_MAX);

    const JsonValue d = JsonValue::parse("42.5", &err);
    ASSERT_TRUE(d.valid());
    EXPECT_FALSE(d.isInt());
    EXPECT_DOUBLE_EQ(d.numberValue(), 42.5);

    const JsonValue e = JsonValue::parse("1e3", &err);
    ASSERT_TRUE(e.valid());
    EXPECT_DOUBLE_EQ(e.numberValue(), 1000.0);

    EXPECT_TRUE(JsonValue::parse("true", &err).boolValue());
    EXPECT_FALSE(JsonValue::parse("false", &err).boolValue());
    EXPECT_TRUE(JsonValue::parse("null", &err).isNull());
}

TEST(JsonValue, Uint64OverflowDegradesToDouble)
{
    // A uint64 checksum emitted as a bare number exceeds int64;
    // the reader degrades it to double instead of rejecting the
    // whole document.
    std::string err;
    const JsonValue v =
        JsonValue::parse("18446744073709551615", &err);
    ASSERT_TRUE(v.valid()) << err;
    EXPECT_FALSE(v.isInt());
    EXPECT_TRUE(v.isNumber());
}

TEST(JsonValue, ObjectPreservesMemberOrder)
{
    std::string err;
    const JsonValue v = JsonValue::parse(
        R"({"z":1,"a":{"nested":[1,2,3]},"m":"text"})", &err);
    ASSERT_TRUE(v.valid()) << err;
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "z");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.members()[2].first, "m");

    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    const JsonValue *nested = a->find("nested");
    ASSERT_NE(nested, nullptr);
    ASSERT_TRUE(nested->isArray());
    ASSERT_EQ(nested->array().size(), 3u);
    EXPECT_EQ(nested->array()[2].intValue(), 3);

    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_EQ(v.getInt("z", -1), 1);
    EXPECT_EQ(v.getInt("missing", -1), -1);
    EXPECT_EQ(v.getString("m", ""), "text");
}

TEST(JsonValue, StringEscapes)
{
    std::string err;
    const JsonValue v = JsonValue::parse(
        R"("a\"b\\c\nd\u0041\u00e9")", &err);
    ASSERT_TRUE(v.valid()) << err;
    EXPECT_EQ(v.stringValue(), "a\"b\\c\ndA\xc3\xa9");
}

TEST(JsonValue, MalformedInputFailsWithOffset)
{
    const char *bad[] = {
        "",                       // empty
        "{",                      // unterminated object
        "[1,2",                   // unterminated array
        "\"abc",                  // unterminated string
        "{\"k\" 1}",              // missing colon
        "{\"k\":1,}",             // trailing comma = missing key
        "tru",                    // bad word
        "-",                      // malformed number
        "\"\\x\"",                // unknown escape
        "1 2",                    // trailing garbage
    };
    for (const char *text : bad) {
        std::string err;
        const JsonValue v = JsonValue::parse(text, &err);
        EXPECT_FALSE(v.valid()) << "accepted: " << text;
        EXPECT_NE(err.find("offset"), std::string::npos)
            << "no offset in error for: " << text;
    }
}

TEST(JsonValue, RejectsPathologicalNesting)
{
    std::string deep;
    for (int i = 0; i < 80; ++i)
        deep += '[';
    for (int i = 0; i < 80; ++i)
        deep += ']';
    std::string err;
    EXPECT_FALSE(JsonValue::parse(deep, &err).valid());
    EXPECT_NE(err.find("64"), std::string::npos);
}

} // namespace

/**
 * @file
 * The differential attribution engine on real simulations: the
 * pinned wknd (baseline, CoopRT) pair must reproduce fig09's speedup
 * arithmetic bit-for-bit, bucket deltas must conserve exactly, and
 * every output path must be deterministic — including the campaign
 * diff sink, which must be byte-identical between --jobs 1 and
 * --jobs 4.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/simulation.hpp"
#include "diff/diff.hpp"
#include "exec/exec.hpp"
#include "memscope/memscope.hpp"
#include "prof/prof.hpp"

namespace {

using namespace cooprt;

/** The pinned pair: wknd at 32x32, path tracing, base vs CoopRT,
 *  with the profiler and memscope attached to both runs. */
core::Comparison
wkndPair()
{
    const core::Simulation &sim = core::simulationFor("wknd");
    core::Comparison cmp;

    core::RunConfig base;
    base.resolution = 32;
    prof::Profiler base_prof;
    memscope::Collector base_scope;
    base.profiler = &base_prof;
    base.memscope = &base_scope;
    cmp.base = sim.run(base);

    core::RunConfig coop = base;
    coop.gpu.trace.coop = true;
    prof::Profiler coop_prof;
    memscope::Collector coop_scope;
    coop.profiler = &coop_prof;
    coop.memscope = &coop_scope;
    cmp.coop = sim.run(coop);
    return cmp;
}

std::string
diffJson(const diff::RunDiff &d)
{
    std::ostringstream ss;
    diff::writeJson(ss, d);
    return ss.str();
}

TEST(Fingerprint, StableAndSensitiveToConfigOnly)
{
    core::RunConfig a;
    core::RunConfig b;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());

    core::RunConfig coop = a;
    coop.gpu.trace.coop = true;
    EXPECT_NE(a.fingerprint(), coop.fingerprint());

    core::RunConfig res = a;
    res.resolution = 64;
    EXPECT_NE(a.fingerprint(), res.fingerprint());

    // Observers are borrowed pointers outside the determinism
    // boundary: attaching one must not move the run identity.
    core::RunConfig observed = a;
    prof::Profiler profiler;
    observed.profiler = &profiler;
    EXPECT_EQ(a.fingerprint(), observed.fingerprint());
}

TEST(Fingerprint, StampedIntoOutcomeRunKey)
{
    const core::Simulation &sim = core::simulationFor("wknd");
    core::RunConfig cfg;
    cfg.resolution = 24;
    const core::RunOutcome out = sim.run(cfg);
    EXPECT_TRUE(out.run_key.valid());
    EXPECT_EQ(out.run_key.scene, "wknd");
    EXPECT_EQ(out.run_key.shader, "pt");
    EXPECT_EQ(out.run_key.resolution, 24);
    EXPECT_EQ(out.run_key.fingerprint.substr(0, 2), "0x");
    EXPECT_EQ(out.run_key.fingerprint.size(), 18u);
}

TEST(Diff, WkndPairReproducesFig09Arithmetic)
{
    const core::Comparison cmp = wkndPair();
    const diff::RunDiff d =
        diff::diffRuns(diff::recordFromOutcome(cmp.base),
                       diff::recordFromOutcome(cmp.coop));

    // Exactly the same doubles, not within-epsilon.
    EXPECT_EQ(d.speedup, cmp.speedup());
    EXPECT_EQ(d.power_ratio, cmp.powerRatio());
    EXPECT_EQ(d.energy_ratio, cmp.energyRatio());
    EXPECT_EQ(d.edp_improvement, cmp.edpImprovement());
    EXPECT_EQ(std::uint64_t(d.cycles.base), cmp.base.gpu.cycles);
    EXPECT_EQ(std::uint64_t(d.cycles.other), cmp.coop.gpu.cycles);
    EXPECT_FALSE(d.same_fingerprint);
    EXPECT_GT(d.speedup, 1.0);
}

TEST(Diff, BucketDeltasConserveBitExactly)
{
    const core::Comparison cmp = wkndPair();
    const diff::RunDiff d =
        diff::diffRuns(diff::recordFromOutcome(cmp.base),
                       diff::recordFromOutcome(cmp.coop));
    ASSERT_TRUE(d.has_prof);
    ASSERT_FALSE(d.buckets.empty());

    std::int64_t sum = 0;
    for (const auto &nd : d.buckets)
        if (nd.name != "warp_buffer_full")
            sum += nd.d.delta();
    EXPECT_EQ(sum, d.resident_cycles.delta());
}

TEST(Diff, RoundTripThroughJsonReportKeepsIntegersExact)
{
    const core::Comparison cmp = wkndPair();

    const auto roundTrip = [](const core::RunOutcome &out) {
        std::ostringstream ss;
        core::writeJson(ss, out);
        std::string err;
        const diff::JsonValue doc =
            diff::JsonValue::parse(ss.str(), &err);
        EXPECT_TRUE(doc.valid()) << err;
        diff::RunRecord rec;
        EXPECT_TRUE(diff::recordFromReportJson(doc, &rec, &err))
            << err;
        return rec;
    };

    const diff::RunRecord base = roundTrip(cmp.base);
    const diff::RunRecord coop = roundTrip(cmp.coop);
    const diff::RunDiff parsed = diff::diffRuns(base, coop);
    const diff::RunDiff live =
        diff::diffRuns(diff::recordFromOutcome(cmp.base),
                       diff::recordFromOutcome(cmp.coop));

    // Integer surfaces round-trip exactly through the JSON text, so
    // the parsed diff's cycle/bucket math matches the live diff
    // bit-for-bit (doubles are text-rounded and are NOT compared).
    EXPECT_EQ(parsed.base_key.fingerprint,
              live.base_key.fingerprint);
    EXPECT_EQ(parsed.cycles.delta(), live.cycles.delta());
    EXPECT_EQ(parsed.speedup, live.speedup);
    ASSERT_TRUE(parsed.has_prof);
    ASSERT_EQ(parsed.buckets.size(), live.buckets.size());
    for (std::size_t i = 0; i < parsed.buckets.size(); ++i) {
        EXPECT_EQ(parsed.buckets[i].name, live.buckets[i].name);
        EXPECT_EQ(parsed.buckets[i].d.delta(),
                  live.buckets[i].d.delta());
    }
    ASSERT_TRUE(parsed.has_memscope);
    EXPECT_EQ(parsed.node_accesses.delta(),
              live.node_accesses.delta());
    ASSERT_EQ(parsed.depths.size(), live.depths.size());
    for (std::size_t i = 0; i < parsed.depths.size(); ++i)
        for (int l = 0; l < 3; ++l)
            EXPECT_EQ(parsed.depths[i].level[l].delta(),
                      live.depths[i].level[l].delta());
}

TEST(Diff, JsonEmissionIsDeterministic)
{
    const core::Comparison cmp = wkndPair();
    const diff::RunDiff d =
        diff::diffRuns(diff::recordFromOutcome(cmp.base),
                       diff::recordFromOutcome(cmp.coop));
    EXPECT_EQ(diffJson(d), diffJson(d));

    // And across independent re-simulations of the same configs.
    const core::Comparison again = wkndPair();
    const diff::RunDiff d2 =
        diff::diffRuns(diff::recordFromOutcome(again.base),
                       diff::recordFromOutcome(again.coop));
    EXPECT_EQ(diffJson(d), diffJson(d2));
}

TEST(Diff, IdentityDiffIsAllZero)
{
    const core::Simulation &sim = core::simulationFor("wknd");
    core::RunConfig cfg;
    cfg.resolution = 24;
    const core::RunOutcome out = sim.run(cfg);

    const diff::RunRecord rec = diff::recordFromOutcome(out);
    const diff::RunDiff d = diff::diffRuns(rec, rec);
    EXPECT_TRUE(d.same_fingerprint);
    EXPECT_EQ(d.cycles.delta(), 0);
    EXPECT_EQ(d.speedup, 1.0);
    EXPECT_TRUE(diff::attributionSummary(d).empty());
}

TEST(Differ, KeyMismatchIsCountedAndExplained)
{
    const core::Simulation &wknd = core::simulationFor("wknd");
    const core::Simulation &fox = core::simulationFor("fox");
    core::RunConfig cfg;
    cfg.resolution = 24;
    const diff::RunRecord a =
        diff::recordFromOutcome(wknd.run(cfg));
    const diff::RunRecord b = diff::recordFromOutcome(fox.run(cfg));

    diff::Differ differ;
    diff::RunDiff d;
    std::string error;
    EXPECT_FALSE(differ.compare(a, b, &d, &error));
    EXPECT_NE(error.find("scene mismatch"), std::string::npos);
    EXPECT_EQ(differ.keyMismatches(), 1u);
    EXPECT_EQ(differ.comparisons(), 0u);

    EXPECT_TRUE(differ.compare(a, a, &d, &error));
    EXPECT_EQ(differ.comparisons(), 1u);
}

TEST(Differ, SchemaV1ReportIsRejected)
{
    std::string err;
    const diff::JsonValue doc = diff::JsonValue::parse(
        R"({"scene":"wknd","resolution":32,"cycles":100})", &err);
    ASSERT_TRUE(doc.valid()) << err;
    diff::RunRecord rec;
    EXPECT_FALSE(diff::recordFromReportJson(doc, &rec, &err));
    EXPECT_NE(err.find("run_key"), std::string::npos);
}

/** Campaign diff sink (what campaign_cli --diff-baseline emits) for
 *  @p jobs worker threads, against reports in @p baseline_dir. */
std::string
campaignDiffSink(std::vector<exec::Job> jobs_vec,
                 const std::string &baseline_dir, int jobs)
{
    exec::CampaignOptions opt;
    opt.jobs = jobs;
    opt.attach_profiler = true;
    const auto results = exec::runCampaign(std::move(jobs_vec), opt);

    std::ostringstream sink;
    diff::Differ differ;
    for (const auto &r : results) {
        EXPECT_TRUE(r.ok) << r.tag;
        diff::RunRecord base;
        std::string error;
        EXPECT_TRUE(diff::loadReportFile(
            baseline_dir + "/" + exec::sanitizeTag(r.tag) +
                ".report.json",
            &base, &error))
            << error;
        diff::RunRecord other = diff::recordFromOutcome(r.outcome);
        other.source = r.tag;
        diff::RunDiff d;
        EXPECT_TRUE(differ.compare(base, other, &d, &error))
            << error;
        diff::writeJson(sink, d);
    }
    return sink.str();
}

TEST(Differ, CampaignDiffSinkIsJobsInvariant)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "cooprt_diff_sink_test";
    fs::remove_all(dir);
    fs::create_directories(dir);

    const auto makeJobs = [] {
        std::vector<exec::Job> jobs;
        for (const char *scene : {"wknd", "fox", "ship"})
            for (const bool coop : {false, true}) {
                core::RunConfig cfg;
                cfg.resolution = 24;
                cfg.gpu.trace.coop = coop;
                jobs.push_back(exec::Job{
                    scene, cfg,
                    std::string(scene) + "/" +
                        (coop ? "coop" : "base")});
            }
        return jobs;
    };

    // Baseline campaign: write per-job reports (the --report-dir
    // sink the diff baselines come from).
    exec::CampaignOptions base_opt;
    base_opt.jobs = 2;
    base_opt.attach_profiler = true;
    base_opt.report_dir = dir.string();
    const auto base_results =
        exec::runCampaign(makeJobs(), base_opt);
    for (const auto &r : base_results)
        ASSERT_TRUE(r.ok) << r.tag;

    const std::string serial =
        campaignDiffSink(makeJobs(), dir.string(), 1);
    const std::string parallel =
        campaignDiffSink(makeJobs(), dir.string(), 4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);

    fs::remove_all(dir);
}

} // namespace

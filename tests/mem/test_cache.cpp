/**
 * @file
 * Tests for the cache timing model.
 */

#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace {

using cooprt::mem::Cache;
using cooprt::mem::CacheConfig;

/** Downstream stub: fixed extra latency, counts fetches. */
struct Backing
{
    std::uint64_t latency = 100;
    std::uint64_t fetches = 0;

    std::uint64_t
    operator()(std::uint64_t /*line*/, std::uint64_t now)
    {
        fetches++;
        return now + latency;
    }
};

CacheConfig
smallCfg(std::uint32_t assoc)
{
    CacheConfig c;
    c.size_bytes = 4 * 128;  // 4 lines
    c.assoc = assoc;
    c.line_bytes = 128;
    c.latency = 10;
    return c;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCfg(0));
    Backing mem;
    std::uint64_t r1 = c.access(7, 0, std::ref(mem));
    EXPECT_EQ(r1, 110u); // 10 (L1) + 100 (below)
    EXPECT_EQ(mem.fetches, 1u);

    std::uint64_t r2 = c.access(7, 200, std::ref(mem));
    EXPECT_EQ(r2, 210u); // hit
    EXPECT_EQ(mem.fetches, 1u);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, MshrMergesInFlightMisses)
{
    Cache c(smallCfg(0));
    Backing mem;
    std::uint64_t r1 = c.access(7, 0, std::ref(mem));
    // Second access to the same line while the fill is in flight.
    std::uint64_t r2 = c.access(7, 5, std::ref(mem));
    EXPECT_EQ(r2, r1);          // waits for the same fill
    EXPECT_EQ(mem.fetches, 1u); // no duplicate traffic
    EXPECT_EQ(c.stats().mshr_merges, 1u);
}

TEST(Cache, AccessAfterFillCompletesIsHit)
{
    Cache c(smallCfg(0));
    Backing mem;
    std::uint64_t r1 = c.access(7, 0, std::ref(mem));
    std::uint64_t r2 = c.access(7, r1 + 1, std::ref(mem));
    EXPECT_EQ(r2, r1 + 1 + 10);
    EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Cache, LruEvictionFullyAssociative)
{
    Cache c(smallCfg(0)); // 4 lines
    Backing mem;
    for (std::uint64_t l = 0; l < 4; ++l)
        c.access(l, 1000 * l, std::ref(mem));
    // Touch line 0 to make it MRU, then insert line 4: line 1 evicts.
    c.access(0, 5000, std::ref(mem));
    c.access(4, 6000, std::ref(mem));
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(1));
    EXPECT_TRUE(c.contains(2));
    EXPECT_TRUE(c.contains(4));
}

TEST(Cache, SetAssociativeMapsBySet)
{
    // 4 lines, 2-way => 2 sets; even lines -> set 0, odd -> set 1.
    Cache c(smallCfg(2));
    Backing mem;
    c.access(0, 0, std::ref(mem));
    c.access(2, 100, std::ref(mem));
    c.access(4, 200, std::ref(mem)); // evicts line 0 (set 0 LRU)
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(2));
    EXPECT_TRUE(c.contains(4));
    // Odd set untouched.
    c.access(1, 300, std::ref(mem));
    EXPECT_TRUE(c.contains(1));
}

TEST(Cache, ConflictMissesInSetAssociative)
{
    Cache c(smallCfg(2)); // 2 sets x 2 ways
    Backing mem;
    // Three lines in the same set thrash a 2-way set.
    for (int rep = 0; rep < 3; ++rep)
        for (std::uint64_t l : {0ull, 2ull, 4ull})
            c.access(l, 10000u * rep + l, std::ref(mem));
    EXPECT_EQ(c.stats().hits, 0u);
    EXPECT_EQ(c.stats().misses, 9u);
}

TEST(Cache, FullyAssocNoConflictMisses)
{
    Cache c(smallCfg(0)); // 4 lines fully assoc
    Backing mem;
    for (int rep = 0; rep < 3; ++rep)
        for (std::uint64_t l : {0ull, 2ull, 4ull})
            c.access(l, 10000u * rep + l, std::ref(mem));
    // After the cold pass, everything fits: 3 cold misses, 6 hits.
    EXPECT_EQ(c.stats().misses, 3u);
    EXPECT_EQ(c.stats().hits, 6u);
}

TEST(Cache, MissRateCombinesMergedMisses)
{
    Cache c(smallCfg(0));
    Backing mem;
    c.access(9, 0, std::ref(mem));
    c.access(9, 1, std::ref(mem)); // merged
    c.access(9, 500, std::ref(mem)); // hit
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 2.0 / 3.0);
}

TEST(Cache, ResetClearsContentsAndStats)
{
    Cache c(smallCfg(0));
    Backing mem;
    c.access(3, 0, std::ref(mem));
    c.reset();
    EXPECT_FALSE(c.contains(3));
    EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(Cache, Table1Configurations)
{
    // L1: 64 KB fully associative -> 512 lines of 128 B.
    Cache l1(CacheConfig{64 * 1024, 0, 128, 20});
    Backing mem;
    for (std::uint64_t l = 0; l < 512; ++l)
        l1.access(l, l, std::ref(mem));
    for (std::uint64_t l = 0; l < 512; ++l)
        l1.access(l, 100000 + l, std::ref(mem));
    EXPECT_EQ(l1.stats().misses, 512u);
    EXPECT_EQ(l1.stats().hits, 512u); // all resident

    // One more distinct line evicts exactly one.
    l1.access(1000, 200000, std::ref(mem));
    EXPECT_FALSE(l1.contains(0));
    EXPECT_TRUE(l1.contains(1));
}

TEST(Cache, OutstandingLinesSortedSnapshot)
{
    // Issue misses in scrambled line order: the MSHR table is an
    // unordered_map, but the snapshot the rest of the simulator is
    // allowed to see must come back sorted by line address — the
    // deterministic-emission contract cooprt-lint's
    // nondeterministic-iteration rule enforces statically.
    Cache c(smallCfg(0));
    Backing mem;
    const std::uint64_t lines[] = {9, 2, 17, 5, 33, 1};
    std::uint64_t now = 0;
    for (std::uint64_t l : lines)
        c.access(l, now++, std::ref(mem)); // all in flight

    const auto snap = c.outstandingLines();
    ASSERT_EQ(snap.size(), 6u);
    EXPECT_EQ(c.mshrLive(), 6u);
    for (std::size_t i = 1; i < snap.size(); ++i)
        EXPECT_LT(snap[i - 1].line, snap[i].line);
    EXPECT_EQ(snap.front().line, 1u);
    EXPECT_EQ(snap.back().line, 33u);
    for (const auto &e : snap) {
        EXPECT_GT(e.ready, now); // fills still outstanding
        EXPECT_NE(e.sectors, 0u);
    }
}

} // namespace

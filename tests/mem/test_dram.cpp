/**
 * @file
 * Tests for the DRAM channel/bandwidth model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hpp"

namespace {

using cooprt::mem::Dram;
using cooprt::mem::DramConfig;

DramConfig
cfg(std::uint32_t channels = 2, double bpc = 32.0,
    std::uint32_t latency = 100)
{
    DramConfig c;
    c.channels = channels;
    c.bytes_per_cycle = bpc;
    c.latency = latency;
    c.interleave_bytes = 256;
    return c;
}

TEST(Dram, SingleAccessLatency)
{
    Dram d(cfg());
    // 128 bytes at 32 B/cyc = 4 transfer cycles + 100 latency.
    EXPECT_EQ(d.access(0, 128, 10), 10u + 100 + 4);
}

TEST(Dram, ChannelInterleaving)
{
    Dram d(cfg(2));
    EXPECT_EQ(d.channelOf(0), 0u);
    EXPECT_EQ(d.channelOf(256), 1u);
    EXPECT_EQ(d.channelOf(512), 0u);
    EXPECT_EQ(d.channelOf(300), 1u);
}

TEST(Dram, SameChannelQueues)
{
    Dram d(cfg(2, 32.0, 100));
    std::uint64_t r1 = d.access(0, 128, 0);   // ch 0: busy [0,4)
    std::uint64_t r2 = d.access(512, 128, 0); // ch 0: starts at 4
    EXPECT_EQ(r1, 104u);
    EXPECT_EQ(r2, 108u);
}

TEST(Dram, DifferentChannelsParallel)
{
    Dram d(cfg(2, 32.0, 100));
    std::uint64_t r1 = d.access(0, 128, 0);
    std::uint64_t r2 = d.access(256, 128, 0); // other channel
    EXPECT_EQ(r1, r2);
}

TEST(Dram, LateArrivalDoesNotQueueBehindIdle)
{
    Dram d(cfg(1, 32.0, 100));
    d.access(0, 128, 0); // busy [0,4)
    std::uint64_t r = d.access(0, 128, 1000);
    EXPECT_EQ(r, 1104u); // channel long idle again
}

TEST(Dram, StatsAccumulate)
{
    Dram d(cfg(2, 32.0, 100));
    d.access(0, 128, 0);
    d.access(256, 256, 0);
    EXPECT_EQ(d.stats().requests, 2u);
    EXPECT_EQ(d.stats().bytes, 384u);
    EXPECT_EQ(d.stats().busy_cycles, 4u + 8u);
}

TEST(Dram, UtilizationComputation)
{
    Dram d(cfg(2, 32.0, 100));
    d.access(0, 128, 0);   // 4 busy cycles on ch 0
    d.access(256, 128, 0); // 4 busy cycles on ch 1
    // Over 8 elapsed cycles and 2 channels: 8 / 16 = 50 %.
    EXPECT_DOUBLE_EQ(d.stats().utilization(8, 2), 0.5);
    EXPECT_DOUBLE_EQ(d.stats().utilization(0, 2), 0.0);
}

TEST(Dram, FractionalTransferRoundsUp)
{
    Dram d(cfg(1, 100.0, 10));
    // 128 B at 100 B/cyc -> ceil(1.28) = 2 cycles.
    EXPECT_EQ(d.access(0, 128, 0), 0u + 10 + 2);
}

TEST(Dram, ResetClears)
{
    Dram d(cfg(1, 32.0, 100));
    d.access(0, 128, 0);
    d.reset();
    EXPECT_EQ(d.stats().requests, 0u);
    EXPECT_EQ(d.access(0, 128, 0), 104u); // channel free again
}

} // namespace

/**
 * @file
 * Tests for GPGPU-Sim-style sectored caches: per-sector residency,
 * sector misses on resident lines, and reduced fill traffic through
 * the memory system.
 */

#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/memory_system.hpp"

namespace {

using cooprt::mem::Cache;
using cooprt::mem::CacheConfig;
using cooprt::mem::MemConfig;
using cooprt::mem::MemorySystem;

CacheConfig
sectoredCfg()
{
    CacheConfig c;
    c.size_bytes = 4 * 128;
    c.assoc = 0;
    c.line_bytes = 128;
    c.latency = 10;
    c.sector_bytes = 32; // 4 sectors per line
    return c;
}

struct Backing
{
    std::uint64_t fetched_sectors = 0;
    std::uint64_t fetches = 0;

    std::uint64_t
    operator()(std::uint64_t, std::uint32_t missing, std::uint64_t now)
    {
        fetches++;
        fetched_sectors += std::uint64_t(std::popcount(missing));
        return now + 100;
    }
};

TEST(SectoredCache, MaskHelpers)
{
    Cache c(sectoredCfg());
    EXPECT_EQ(c.fullSectorMask(), 0xfu);
    EXPECT_EQ(c.sectorMaskOf(0, 32), 0x1u);
    EXPECT_EQ(c.sectorMaskOf(0, 33), 0x3u);
    EXPECT_EQ(c.sectorMaskOf(32, 32), 0x2u);
    EXPECT_EQ(c.sectorMaskOf(96, 32), 0x8u);
    EXPECT_EQ(c.sectorMaskOf(0, 128), 0xfu);
    // Offsets are taken modulo the line.
    EXPECT_EQ(c.sectorMaskOf(128 + 64, 32), 0x4u);
}

TEST(SectoredCache, UnsectoredMaskIsUnit)
{
    CacheConfig cfg = sectoredCfg();
    cfg.sector_bytes = 0;
    Cache c(cfg);
    EXPECT_EQ(c.fullSectorMask(), 1u);
    EXPECT_EQ(c.sectorMaskOf(96, 32), 1u);
}

TEST(SectoredCache, SectorMissOnResidentLine)
{
    Cache c(sectoredCfg());
    Backing mem;
    // Fill sector 0 only.
    c.access(7, 0x1u, 0, std::ref(mem));
    EXPECT_EQ(mem.fetched_sectors, 1u);
    // Sector 0 again at a later time: hit.
    std::uint64_t r = c.access(7, 0x1u, 500, std::ref(mem));
    EXPECT_EQ(r, 510u);
    EXPECT_EQ(c.stats().hits, 1u);
    // Sector 2: the line is resident but the sector is not.
    c.access(7, 0x4u, 600, std::ref(mem));
    EXPECT_EQ(c.stats().sector_misses, 1u);
    EXPECT_EQ(mem.fetched_sectors, 2u); // only the missing sector
}

TEST(SectoredCache, PartialHitFetchesOnlyMissingSectors)
{
    Cache c(sectoredCfg());
    Backing mem;
    c.access(3, 0x3u, 0, std::ref(mem)); // sectors 0,1
    c.access(3, 0x7u, 500, std::ref(mem)); // needs 0,1,2 -> fetch 2
    EXPECT_EQ(mem.fetched_sectors, 3u);
}

TEST(SectoredCache, MshrMergeRequiresSectorCoverage)
{
    Cache c(sectoredCfg());
    Backing mem;
    c.access(9, 0x1u, 0, std::ref(mem)); // fill of sector 0 in flight
    // Same sector while in flight: merge, no new fetch.
    c.access(9, 0x1u, 5, std::ref(mem));
    EXPECT_EQ(c.stats().mshr_merges, 1u);
    EXPECT_EQ(mem.fetches, 1u);
    // Different sector while in flight: its own fetch.
    c.access(9, 0x2u, 6, std::ref(mem));
    EXPECT_EQ(mem.fetches, 2u);
}

TEST(SectoredCache, WholeLineOverloadStillWorks)
{
    Cache c(sectoredCfg());
    std::uint64_t fetches = 0;
    auto below = [&](std::uint64_t, std::uint64_t t) {
        fetches++;
        return t + 100;
    };
    c.access(1, 0, below);
    std::uint64_t r = c.access(1, 500, below);
    EXPECT_EQ(r, 510u); // full line resident -> hit
    EXPECT_EQ(fetches, 1u);
}

TEST(SectoredMemorySystem, SmallFetchesMoveLessData)
{
    MemConfig cfg;
    cfg.num_sms = 1;
    cfg.l1 = {4 * 128, 0, 128, 10};
    cfg.l2 = {64 * 1024, 8, 128, 50};
    cfg.l2_banks = 2;
    cfg.dram.channels = 2;

    MemConfig sectored = cfg;
    sectored.l1_sector_bytes = 32;

    // 32-byte strided accesses to distinct lines: unsectored fills
    // whole 128 B lines; sectored fills 32 B sectors.
    MemorySystem plain(cfg), sect(sectored);
    for (int i = 0; i < 32; ++i) {
        plain.fetch(0, std::uint64_t(i) * 128, 32, std::uint64_t(i));
        sect.fetch(0, std::uint64_t(i) * 128, 32, std::uint64_t(i));
    }
    EXPECT_EQ(plain.stats().l2_bytes, 32u * 128);
    EXPECT_EQ(sect.stats().l2_bytes, 32u * 32);
}

TEST(SectoredMemorySystem, InvalidSectorGeometryRejected)
{
    MemConfig cfg;
    cfg.num_sms = 1;
    cfg.l1 = {4 * 128, 0, 128, 10};
    cfg.l2 = {64 * 1024, 8, 128, 50};
    cfg.l1_sector_bytes = 3; // does not divide 128
    EXPECT_THROW(MemorySystem{cfg}, std::invalid_argument);
    cfg.l1_sector_bytes = 2; // 64 sectors > 32
    EXPECT_THROW(MemorySystem{cfg}, std::invalid_argument);
}

} // namespace

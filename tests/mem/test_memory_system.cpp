/**
 * @file
 * Tests for the composed L1/L2/DRAM hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/memory_system.hpp"

namespace {

using cooprt::mem::MemConfig;
using cooprt::mem::MemorySystem;

MemConfig
tinyCfg()
{
    MemConfig c;
    c.num_sms = 2;
    c.l1 = {4 * 128, 0, 128, 10};     // 4 lines, 10 cyc
    c.l2 = {16 * 128, 4, 128, 50};    // 16 lines, 4-way, 50 cyc
    c.l2_banks = 2;
    c.l2_bytes_per_cycle = 64.0;      // 2 cycles per line
    c.dram.channels = 2;
    c.dram.latency = 200;
    c.dram.bytes_per_cycle = 32.0;    // 4 cycles per line
    return c;
}

TEST(MemorySystem, ColdFetchGoesToDram)
{
    MemorySystem ms(tinyCfg());
    std::uint64_t r = ms.fetch(0, 0x1000, 64, 0);
    // L1 miss (10) -> L2 bank (2) + L2 miss (50) -> DRAM (200 + 4).
    EXPECT_EQ(ms.l1Stats(0).misses, 1u);
    EXPECT_EQ(ms.l2Stats().misses, 1u);
    EXPECT_EQ(ms.dramStats().requests, 1u);
    EXPECT_GT(r, 200u);
}

TEST(MemorySystem, L1HitIsFast)
{
    MemorySystem ms(tinyCfg());
    std::uint64_t r1 = ms.fetch(0, 0x1000, 64, 0);
    std::uint64_t r2 = ms.fetch(0, 0x1000, 64, r1 + 1);
    EXPECT_EQ(r2 - (r1 + 1), 10u); // L1 hit latency only
    EXPECT_EQ(ms.dramStats().requests, 1u);
}

TEST(MemorySystem, CrossSmSharingHitsInL2)
{
    MemorySystem ms(tinyCfg());
    std::uint64_t r1 = ms.fetch(0, 0x1000, 64, 0);
    // Same line from the other SM after the fill: misses its own L1
    // but hits the shared L2 -> no extra DRAM traffic.
    ms.fetch(1, 0x1000, 64, r1 + 10);
    EXPECT_EQ(ms.l1Stats(1).misses, 1u);
    EXPECT_EQ(ms.l2Stats().hits, 1u);
    EXPECT_EQ(ms.dramStats().requests, 1u);
}

TEST(MemorySystem, MultiLineFetchSplits)
{
    MemorySystem ms(tinyCfg());
    // 256 bytes starting at a line boundary = 2 lines.
    ms.fetch(0, 0x2000, 256, 0);
    EXPECT_EQ(ms.l1Stats(0).accesses, 2u);
    EXPECT_EQ(ms.dramStats().requests, 2u);
}

TEST(MemorySystem, UnalignedFetchTouchesExtraLine)
{
    MemorySystem ms(tinyCfg());
    // 64 bytes straddling a 128 B boundary = 2 lines.
    ms.fetch(0, 0x20C0, 128, 0);
    EXPECT_EQ(ms.l1Stats(0).accesses, 2u);
}

TEST(MemorySystem, ZeroByteFetchIsFree)
{
    MemorySystem ms(tinyCfg());
    EXPECT_EQ(ms.fetch(0, 0x1000, 0, 42), 42u);
    EXPECT_EQ(ms.l1Stats(0).accesses, 0u);
}

TEST(MemorySystem, BadSmThrows)
{
    MemorySystem ms(tinyCfg());
    EXPECT_THROW(ms.fetch(-1, 0, 64, 0), std::out_of_range);
    EXPECT_THROW(ms.fetch(2, 0, 64, 0), std::out_of_range);
}

TEST(MemorySystem, MismatchedLineSizesRejected)
{
    MemConfig c = tinyCfg();
    c.l1.line_bytes = 64;
    EXPECT_THROW(MemorySystem{c}, std::invalid_argument);
}

TEST(MemorySystem, L2BytesCountInterconnectTraffic)
{
    MemorySystem ms(tinyCfg());
    ms.fetch(0, 0x1000, 128, 0);
    ms.fetch(1, 0x1000, 128, 1000); // L2 hit still crosses interconnect
    EXPECT_EQ(ms.stats().l2_bytes, 256u);
}

TEST(MemorySystem, L2BankContentionSerializes)
{
    MemConfig c = tinyCfg();
    c.l2_banks = 1;
    MemorySystem ms(c);
    // Warm L2 with two lines (through SM 0).
    std::uint64_t w = ms.fetch(0, 0x0, 256, 0);
    // Now two L2 hits from SM 1 at the same cycle: single bank
    // serializes the second by the 2-cycle service time.
    std::uint64_t r1 = ms.fetch(1, 0x0, 128, w);
    ms.reset();
    // Re-warm, then issue both lines at once and compare.
    w = ms.fetch(0, 0x0, 256, 0);
    std::uint64_t r2 = ms.fetch(1, 0x0, 256, w);
    EXPECT_GT(r2, r1 - w + w); // the 2-line fetch finishes later
}

TEST(MemorySystem, AggregatedL1Stats)
{
    MemorySystem ms(tinyCfg());
    ms.fetch(0, 0x1000, 128, 0);
    ms.fetch(1, 0x9000, 128, 0);
    auto total = ms.l1StatsTotal();
    EXPECT_EQ(total.accesses, 2u);
    EXPECT_EQ(total.misses, 2u);
}

TEST(MemorySystem, ResetRestoresColdState)
{
    MemorySystem ms(tinyCfg());
    ms.fetch(0, 0x1000, 128, 0);
    ms.reset();
    EXPECT_EQ(ms.l1Stats(0).accesses, 0u);
    EXPECT_EQ(ms.l2Stats().accesses, 0u);
    EXPECT_EQ(ms.dramStats().requests, 0u);
    ms.fetch(0, 0x1000, 128, 0);
    EXPECT_EQ(ms.l1Stats(0).misses, 1u); // cold again
}

/**
 * Conservation properties under random traffic: every L1 primary
 * miss becomes exactly one L2 access, every L2 primary miss becomes
 * exactly one DRAM line transfer (no write-backs are modeled for the
 * read-only BVH stream).
 */
TEST(MemorySystemProperty, TrafficConservationUnderRandomLoad)
{
    MemorySystem ms(tinyCfg());
    std::uint64_t state = 12345;
    std::uint64_t now = 0;
    for (int i = 0; i < 5000; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const int sm = int(state % 2);
        const std::uint64_t addr = (state >> 8) % (64 * 1024);
        const std::uint32_t bytes = 32u + std::uint32_t(state % 192);
        now += state % 7;
        ms.fetch(sm, addr, bytes, now);
    }
    const auto l1 = ms.l1StatsTotal();
    EXPECT_EQ(ms.l2Stats().accesses, l1.misses);
    EXPECT_EQ(ms.dramStats().requests, ms.l2Stats().misses);
    EXPECT_EQ(ms.dramStats().bytes, ms.l2Stats().misses * 128);
    EXPECT_EQ(ms.stats().l2_bytes, ms.l2Stats().accesses * 128);
    EXPECT_EQ(l1.hits + l1.misses + l1.mshr_merges, l1.accesses);
}

/** Completion cycles never precede request cycles. */
TEST(MemorySystemProperty, CausalityUnderRandomLoad)
{
    MemorySystem ms(tinyCfg());
    std::uint64_t state = 777;
    std::uint64_t now = 0;
    for (int i = 0; i < 2000; ++i) {
        state = state * 6364136223846793005ULL + 99991;
        now += state % 11;
        const std::uint64_t done =
            ms.fetch(int(state % 2), (state >> 5) % 32768, 128, now);
        ASSERT_GE(done, now);
    }
}

TEST(MemorySystem, ResetTimingKeepsCacheContentsWarm)
{
    MemorySystem ms(tinyCfg());
    // Warm a line, then restart the clock with warm contents.
    std::uint64_t t1 = ms.fetch(0, 0x1000, 128, 0);
    EXPECT_GT(t1, 100u); // cold: went to DRAM
    ms.resetTiming();
    EXPECT_EQ(ms.l1Stats(0).accesses, 0u); // stats restarted
    // Same line at cycle 0 of the new pass: L1 hit.
    std::uint64_t t2 = ms.fetch(0, 0x1000, 128, 0);
    EXPECT_EQ(t2, 10u); // L1 hit latency only
    EXPECT_EQ(ms.l1Stats(0).hits, 1u);
}

TEST(MemorySystem, ResetTimingClearsAbsoluteClocks)
{
    MemorySystem ms(tinyCfg());
    // Push the DRAM channel clocks far into the future.
    for (int i = 0; i < 50; ++i)
        ms.fetch(0, 0x100000 + std::uint64_t(i) * 128, 128, 0);
    ms.resetTiming();
    // A cold fetch at cycle 0 must not queue behind phantom traffic:
    // latency == L1 + L2 bank + L2 + DRAM latency + transfer.
    const std::uint64_t t = ms.fetch(0, 0x900000, 128, 0);
    EXPECT_LE(t, 10u + 2 + 50 + 200 + 4);
}

TEST(MemorySystem, ThrashingWorkingSetMissesInL1)
{
    MemorySystem ms(tinyCfg()); // L1 holds 4 lines
    std::uint64_t now = 0;
    for (int rep = 0; rep < 3; ++rep)
        for (std::uint64_t line = 0; line < 8; ++line)
            now = ms.fetch(0, line * 128, 128, now);
    // Working set (8 lines) exceeds L1 (4): every access misses L1...
    EXPECT_EQ(ms.l1Stats(0).hits, 0u);
    // ...but fits in L2 (16 lines): only cold misses go to DRAM.
    EXPECT_EQ(ms.dramStats().requests, 8u);
    EXPECT_EQ(ms.l2Stats().hits, 16u);
}

} // namespace

/**
 * @file
 * Tests for the Table 3 area model: calibration against the paper's
 * synthesized numbers and the < 3.0 % warp-buffer overhead claim.
 */

#include <gtest/gtest.h>

#include "power/area_model.hpp"

namespace {

using cooprt::power::AreaModel;
using cooprt::power::AreaReport;

TEST(AreaModel, MatchesPaperTable3Cells)
{
    // Paper Table 3: cells for subwarp sizes 32/16/8/4. The model is
    // a structural fit; require < 1 % deviation.
    struct Row { int subwarp; double cells; };
    const Row rows[] = {{32, 16122}, {16, 15867}, {8, 15511},
                        {4, 15167}};
    for (const Row &r : rows) {
        AreaReport a = AreaModel::coopLogic(r.subwarp);
        EXPECT_NEAR(double(a.cells), r.cells, 0.01 * r.cells)
            << "subwarp " << r.subwarp;
    }
}

TEST(AreaModel, MatchesPaperTable3Area)
{
    struct Row { int subwarp; double um2; };
    const Row rows[] = {{32, 13347}, {16, 13104}, {8, 12661},
                        {4, 12055}};
    for (const Row &r : rows) {
        AreaReport a = AreaModel::coopLogic(r.subwarp);
        EXPECT_NEAR(a.area_um2, r.um2, 0.02 * r.um2)
            << "subwarp " << r.subwarp;
    }
}

TEST(AreaModel, AreaMonotoneInSubwarpSize)
{
    double prev = 0.0;
    for (int s : {4, 8, 16, 32}) {
        AreaReport a = AreaModel::coopLogic(s);
        EXPECT_GT(a.area_um2, prev) << s;
        prev = a.area_um2;
    }
}

TEST(AreaModel, PercentSavingsMatchTable3Trend)
{
    const double a32 = AreaModel::coopLogic(32).area_um2;
    const double a4 = AreaModel::coopLogic(4).area_um2;
    const double a16 = AreaModel::coopLogic(16).area_um2;
    // Paper: subwarp 4 saves ~9.7 %, subwarp 16 ~1.8 %.
    EXPECT_NEAR((a32 - a4) / a32, 0.097, 0.015);
    EXPECT_NEAR((a32 - a16) / a32, 0.018, 0.015);
}

TEST(AreaModel, WarpBufferBitsMatchPaper)
{
    // Paper: 4 entries * 32 threads * 768 bits = 98,304 bits.
    EXPECT_EQ(AreaModel::warpBufferBits(4), 98304u);
    // One entry costs 24,576 bits (the paper's comparison point for
    // "just add warp buffers").
    EXPECT_EQ(AreaModel::warpBufferEntryBits(), 24576u);
}

TEST(AreaModel, FfEquivalentNearPaper2200)
{
    // Paper: "the area occupied by the combinational logic is
    // equivalent to approximately 2,200 flip-flops".
    const double ff = AreaModel::coopLogic(32).ffEquivalent();
    EXPECT_NEAR(ff, 2224.5, 40.0);
}

TEST(AreaModel, OverheadAboutThreePercent)
{
    // Paper: (2200 + 4*32*(5+1)) / 98304, quoted as "less than
    // 3.0 %" — the unrounded value is 3.02 %; our model's 2224.5 FF
    // equivalents give 3.04 %. Accept the honest ~3 % band.
    const double f = AreaModel::overheadFraction(32, 4);
    EXPECT_LT(f, 0.0306);
    EXPECT_GT(f, 0.028);
}

TEST(AreaModel, SmallerSubwarpSmallerOverhead)
{
    EXPECT_LT(AreaModel::overheadFraction(4, 4),
              AreaModel::overheadFraction(32, 4));
}

TEST(AreaModel, OverheadCheaperThanExtraWarpBufferEntry)
{
    // The paper's headline comparison: the whole CoopRT addition is
    // far cheaper than even one extra warp-buffer entry.
    const AreaReport a = AreaModel::coopLogic(32);
    const double coop_bits_equiv =
        a.ffEquivalent() + 4 * 32 * AreaModel::kExtraBitsPerThread;
    EXPECT_LT(coop_bits_equiv,
              double(AreaModel::warpBufferEntryBits()) / 4.0);
}

} // namespace

/**
 * @file
 * Tests for the GpuWattch-style energy model.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hpp"

namespace {

using cooprt::gpu::GpuRunResult;
using cooprt::power::EnergyCoefficients;
using cooprt::power::EnergyModel;
using cooprt::power::PowerReport;

GpuRunResult
syntheticRun(std::uint64_t cycles)
{
    GpuRunResult r;
    r.cycles = cycles;
    r.rt.box_tests = 1000;
    r.rt.tri_tests = 300;
    r.rt.steals = 50;
    r.rt.issue_cycles = 400;
    r.l1.accesses = 500;
    r.l2.accesses = 200;
    r.dram.requests = 80;
    r.stalls.alu = 100;
    r.stalls.sfu = 40;
    r.stalls.mem = 60;
    return r;
}

TEST(EnergyModel, SecondsFromClock)
{
    EnergyModel m({}, 1.0); // 1 GHz
    PowerReport p = m.evaluate(syntheticRun(1'000'000'000), 1);
    EXPECT_NEAR(p.seconds, 1.0, 1e-9);
}

TEST(EnergyModel, StaticEnergyScalesWithTimeAndSms)
{
    EnergyCoefficients c;
    c.static_w_per_sm = 2.0;
    EnergyModel m(c, 1.0);
    PowerReport p1 = m.evaluate(syntheticRun(1'000'000), 1);
    PowerReport p2 = m.evaluate(syntheticRun(2'000'000), 1);
    PowerReport p30 = m.evaluate(syntheticRun(1'000'000), 30);
    EXPECT_NEAR(p2.static_j, 2.0 * p1.static_j, 1e-12);
    EXPECT_NEAR(p30.static_j, 30.0 * p1.static_j, 1e-12);
}

TEST(EnergyModel, DynamicEnergyIndependentOfCycles)
{
    EnergyModel m;
    PowerReport fast = m.evaluate(syntheticRun(1'000), 4);
    PowerReport slow = m.evaluate(syntheticRun(1'000'000), 4);
    EXPECT_NEAR(fast.dynamic_j, slow.dynamic_j, 1e-15);
    EXPECT_LT(fast.static_j, slow.static_j);
}

TEST(EnergyModel, DynamicComponentsAdd)
{
    EnergyCoefficients c{};
    c.box_test_nj = 1.0;
    c.tri_test_nj = 0.0;
    c.lbu_move_nj = 0.0;
    c.stack_op_nj = 0.0;
    c.l1_access_nj = 0.0;
    c.l2_access_nj = 0.0;
    c.dram_access_nj = 0.0;
    c.shade_cycle_nj = 0.0;
    EnergyModel m(c, 1.0);
    PowerReport p = m.evaluate(syntheticRun(1000), 1);
    EXPECT_NEAR(p.dynamic_j, 1000.0 * 1e-9, 1e-15); // 1000 box tests
}

TEST(EnergyModel, PowerIsEnergyOverTime)
{
    EnergyModel m;
    PowerReport p = m.evaluate(syntheticRun(10'000'000), 8);
    EXPECT_NEAR(p.avgWatts(), p.totalJoules() / p.seconds, 1e-12);
    EXPECT_GT(p.avgWatts(), 0.0);
}

TEST(EnergyModel, EdpIsEnergyTimesDelay)
{
    EnergyModel m;
    PowerReport p = m.evaluate(syntheticRun(5'000'000), 8);
    EXPECT_NEAR(p.edp(), p.totalJoules() * p.seconds, 1e-18);
}

TEST(EnergyModel, ZeroCyclesNoPowerBlowup)
{
    EnergyModel m;
    PowerReport p = m.evaluate(syntheticRun(0), 8);
    EXPECT_DOUBLE_EQ(p.avgWatts(), 0.0);
    EXPECT_DOUBLE_EQ(p.static_j, 0.0);
}

TEST(EnergyModel, CoopShapeFasterRunBurnsLessStaticSameDynamic)
{
    // The Fig. 9 causal story in miniature: same dynamic work, half
    // the cycles -> power roughly doubles, total energy drops.
    EnergyModel m;
    GpuRunResult base = syntheticRun(10'000'000);
    GpuRunResult coop = syntheticRun(5'000'000);
    PowerReport pb = m.evaluate(base, 30);
    PowerReport pc = m.evaluate(coop, 30);
    EXPECT_LT(pc.totalJoules(), pb.totalJoules());
    EXPECT_GT(pc.avgWatts(), pb.avgWatts());
    EXPECT_LT(pc.edp(), pb.edp());
}

} // namespace

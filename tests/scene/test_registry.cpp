/**
 * @file
 * Tests for the 15-scene benchmark registry.
 */

#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "scene/registry.hpp"

namespace {

using cooprt::scene::Scene;
using cooprt::scene::SceneRegistry;

TEST(Registry, HasFifteenLabels)
{
    EXPECT_EQ(SceneRegistry::allLabels().size(), 15u);
}

TEST(Registry, LabelsAreUnique)
{
    std::set<std::string> s(SceneRegistry::allLabels().begin(),
                            SceneRegistry::allLabels().end());
    EXPECT_EQ(s.size(), 15u);
}

TEST(Registry, PaperLabelsPresent)
{
    for (const char *l : {"wknd", "spnza", "bath", "crnvl", "fox",
                          "party", "car", "robot"})
        EXPECT_TRUE(SceneRegistry::has(l)) << l;
    EXPECT_FALSE(SceneRegistry::has("park")); // excluded in the paper
    EXPECT_FALSE(SceneRegistry::has("nope"));
}

TEST(Registry, GetReturnsCachedInstance)
{
    const Scene &a = SceneRegistry::get("wknd");
    const Scene &b = SceneRegistry::get("wknd");
    EXPECT_EQ(&a, &b);
}

TEST(Registry, UnknownLabelThrows)
{
    EXPECT_THROW(SceneRegistry::get("park"), std::out_of_range);
    EXPECT_THROW(SceneRegistry::benchResolution("park"),
                 std::out_of_range);
}

TEST(Registry, SceneNameMatchesLabel)
{
    EXPECT_EQ(SceneRegistry::get("bunny").name, "bunny");
    EXPECT_EQ(SceneRegistry::get("crnvl").name, "crnvl");
}

TEST(Registry, BenchResolutionMirrorsPaperDownscaling)
{
    // Standard scenes at 48x48; the heaviest traversal scenes are
    // down-scaled further, as the paper does with car/robot/park.
    EXPECT_EQ(SceneRegistry::benchResolution("wknd"), 48);
    EXPECT_EQ(SceneRegistry::benchResolution("spnza"), 48);
    EXPECT_EQ(SceneRegistry::benchResolution("fox"), 40);
    EXPECT_EQ(SceneRegistry::benchResolution("car"), 32);
    EXPECT_EQ(SceneRegistry::benchResolution("robot"), 32);
}

TEST(Registry, RelativeSizeOrderingFollowsTable2)
{
    // Table 2 ordering (tree size): wknd smallest; car/robot largest.
    auto size = [](const char *l) {
        return SceneRegistry::get(l).mesh.size();
    };
    EXPECT_LT(size("wknd"), size("bunny"));
    EXPECT_LT(size("bunny"), size("car"));
    EXPECT_LT(size("car"), size("robot"));
    EXPECT_LT(size("wknd"), size("frst"));
}

TEST(Registry, ConcurrentGetIsSafeAndStable)
{
    // The exec pool builds scenes from many workers at once; each
    // label's lazy init is a per-label std::once_flag, so concurrent
    // callers must all see the same fully-built instance. (The CI
    // `tsan` job runs this under ThreadSanitizer.)
    const auto &labels = SceneRegistry::allLabels();
    std::vector<std::vector<const Scene *>> seen(8);
    {
        std::vector<std::jthread> threads;
        for (std::size_t t = 0; t < seen.size(); ++t)
            threads.emplace_back([&, t] {
                // Different starting offsets so several threads race
                // on the same label from the first iteration.
                for (std::size_t i = 0; i < labels.size(); ++i) {
                    const auto &l = labels[(i + t) % labels.size()];
                    seen[t].push_back(&SceneRegistry::get(l));
                    EXPECT_GT(SceneRegistry::benchResolution(l), 0);
                }
            });
    }
    for (std::size_t t = 1; t < seen.size(); ++t) {
        ASSERT_EQ(seen[t].size(), labels.size());
        // Same pointer set regardless of thread: one instance per
        // label, never a torn or duplicate build.
        std::set<const Scene *> a(seen[0].begin(), seen[0].end());
        std::set<const Scene *> b(seen[t].begin(), seen[t].end());
        EXPECT_EQ(a, b);
    }
}

TEST(Registry, ConcurrentGetThrowsForUnknownLabels)
{
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([] {
            for (int i = 0; i < 16; ++i) {
                EXPECT_THROW(SceneRegistry::get("park"),
                             std::out_of_range);
                EXPECT_TRUE(SceneRegistry::has("wknd"));
            }
        });
}

TEST(Registry, SpnzaIsClosedScene)
{
    EXPECT_FLOAT_EQ(SceneRegistry::get("spnza").sky_emission, 0.0f);
}

TEST(Registry, DivergentScenesAreOpen)
{
    for (const char *l : {"crnvl", "fox", "party"})
        EXPECT_GT(SceneRegistry::get(l).sky_emission, 0.0f) << l;
}

TEST(Registry, AllScenesBuildAndAreNonEmpty)
{
    for (const auto &l : SceneRegistry::allLabels()) {
        const Scene &s = SceneRegistry::get(l);
        EXPECT_GT(s.mesh.size(), 100u) << l;
        EXPECT_GT(s.materials.size(), 1u) << l;
    }
}

} // namespace

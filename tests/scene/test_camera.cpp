/**
 * @file
 * Tests for the pinhole camera.
 */

#include <gtest/gtest.h>

#include "scene/camera.hpp"

namespace {

using cooprt::geom::Ray;
using cooprt::geom::Vec3;
using cooprt::scene::Camera;

const Camera cam({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 60.0f);

TEST(Camera, CenterRayPointsAtLookat)
{
    // Exact image center: pixel (32, 32) with zero sub-pixel offset.
    Ray r = cam.primaryRay(32, 32, 64, 64, 0.0f, 0.0f);
    EXPECT_EQ(r.orig, Vec3(0, 0, 5));
    EXPECT_NEAR(r.dir.x, 0.0f, 1e-5f);
    EXPECT_NEAR(r.dir.y, 0.0f, 1e-5f);
    EXPECT_NEAR(r.dir.z, -1.0f, 1e-5f);
}

TEST(Camera, RaysAreUnitLength)
{
    for (int px = 0; px < 64; px += 13)
        for (int py = 0; py < 64; py += 13)
            EXPECT_NEAR(cam.primaryRay(px, py, 64, 64).dir.length(),
                        1.0f, 1e-5f);
}

TEST(Camera, TopOfImageLooksUp)
{
    Ray top = cam.primaryRay(32, 0, 64, 64);
    Ray bottom = cam.primaryRay(32, 63, 64, 64);
    EXPECT_GT(top.dir.y, 0.0f);
    EXPECT_LT(bottom.dir.y, 0.0f);
}

TEST(Camera, RightOfImageLooksRight)
{
    // Camera at +z looking toward -z; image-right is -x? Compute:
    // u = normalize(cross(up, w)) with w = +z: cross((0,1,0),(0,0,1))
    // = (1,0,0), so +sx moves +x.
    Ray right = cam.primaryRay(63, 32, 64, 64);
    Ray left = cam.primaryRay(0, 32, 64, 64);
    EXPECT_GT(right.dir.x, 0.0f);
    EXPECT_LT(left.dir.x, 0.0f);
}

TEST(Camera, FovControlsSpread)
{
    Camera narrow({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 20.0f);
    Camera wide({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 90.0f);
    float spread_n = std::abs(narrow.primaryRay(0, 32, 64, 64).dir.x);
    float spread_w = std::abs(wide.primaryRay(0, 32, 64, 64).dir.x);
    EXPECT_GT(spread_w, spread_n);
}

TEST(Camera, JitterMovesWithinPixel)
{
    Ray a = cam.primaryRay(10, 10, 64, 64, 0.0f, 0.0f);
    Ray b = cam.primaryRay(10, 10, 64, 64, 0.999f, 0.999f);
    Ray next = cam.primaryRay(11, 10, 64, 64, 0.0f, 0.0f);
    // Jitter moves the ray, but less than a whole pixel.
    EXPECT_NE(a.dir.x, b.dir.x);
    EXPECT_LT(b.dir.x, next.dir.x + 1e-6f);
}

TEST(Camera, AspectRatioWidensHorizontalFov)
{
    Ray square = cam.primaryRay(0, 32, 64, 64);
    Ray wide = cam.primaryRay(0, 16, 128, 32);
    EXPECT_GT(std::abs(wide.dir.x), std::abs(square.dir.x));
}

TEST(Camera, ForwardIsTowardLookat)
{
    Camera c({1, 2, 3}, {4, 2, 3}, {0, 1, 0}, 45.0f);
    EXPECT_NEAR(c.forward().x, 1.0f, 1e-5f);
    EXPECT_NEAR(c.forward().y, 0.0f, 1e-5f);
}

} // namespace

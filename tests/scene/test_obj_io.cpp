/**
 * @file
 * Tests for the OBJ importer/exporter.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "scene/obj_io.hpp"
#include "scene/primitives.hpp"

namespace {

using cooprt::geom::Vec3;
using cooprt::scene::loadObj;
using cooprt::scene::Mesh;
using cooprt::scene::saveObj;

TEST(ObjIo, LoadSingleTriangle)
{
    std::istringstream in("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n");
    Mesh m;
    EXPECT_EQ(loadObj(in, m), 1u);
    ASSERT_EQ(m.size(), 1u);
    EXPECT_EQ(m.tri(0).v0, Vec3(0, 0, 0));
    EXPECT_EQ(m.tri(0).v2, Vec3(0, 1, 0));
}

TEST(ObjIo, QuadFaceFanTriangulated)
{
    std::istringstream in(
        "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n");
    Mesh m;
    EXPECT_EQ(loadObj(in, m), 2u);
    EXPECT_EQ(m.size(), 2u);
}

TEST(ObjIo, SlashSyntaxIgnoresExtraIndices)
{
    std::istringstream in(
        "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1/1 2/2/2 3/3/3\n");
    Mesh m;
    EXPECT_EQ(loadObj(in, m), 1u);
}

TEST(ObjIo, NegativeIndicesResolveRelative)
{
    std::istringstream in("v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n");
    Mesh m;
    EXPECT_EQ(loadObj(in, m), 1u);
    EXPECT_EQ(m.tri(0).v1, Vec3(1, 0, 0));
}

TEST(ObjIo, CommentsAndUnknownRecordsIgnored)
{
    std::istringstream in("# hello\no thing\nvn 0 0 1\nvt 0 0\n"
                          "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n");
    Mesh m;
    EXPECT_EQ(loadObj(in, m), 1u);
}

TEST(ObjIo, OutOfRangeIndexThrows)
{
    std::istringstream in("v 0 0 0\nv 1 0 0\nf 1 2 9\n");
    Mesh m;
    EXPECT_THROW(loadObj(in, m), std::runtime_error);
}

TEST(ObjIo, MalformedVertexThrows)
{
    std::istringstream in("v 0 zero 0\n");
    Mesh m;
    EXPECT_THROW(loadObj(in, m), std::runtime_error);
}

TEST(ObjIo, TooFewFaceVertsThrows)
{
    std::istringstream in("v 0 0 0\nv 1 0 0\nf 1 2\n");
    Mesh m;
    EXPECT_THROW(loadObj(in, m), std::runtime_error);
}

TEST(ObjIo, MaterialIdAssigned)
{
    std::istringstream in("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n");
    Mesh m;
    loadObj(in, m, 3);
    EXPECT_EQ(m.materialOf(0), 3);
}

TEST(ObjIo, RoundTripPreservesGeometry)
{
    Mesh original;
    addBox(original, {0, 0, 0}, {1, 2, 3});
    addSphere(original, {5, 5, 5}, 1.0f, 8);

    std::stringstream buf;
    saveObj(buf, original);
    Mesh loaded;
    EXPECT_EQ(loadObj(buf, loaded), original.size());
    ASSERT_EQ(loaded.size(), original.size());
    for (std::uint32_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded.tri(i).v0, original.tri(i).v0) << i;
        EXPECT_EQ(loaded.tri(i).v1, original.tri(i).v1) << i;
        EXPECT_EQ(loaded.tri(i).v2, original.tri(i).v2) << i;
    }
    EXPECT_EQ(loaded.bounds().lo, original.bounds().lo);
    EXPECT_EQ(loaded.bounds().hi, original.bounds().hi);
}

} // namespace

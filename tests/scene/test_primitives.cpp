/**
 * @file
 * Tests for tessellated primitive shapes.
 */

#include <gtest/gtest.h>

#include "scene/primitives.hpp"

namespace {

using cooprt::geom::AABB;
using cooprt::geom::Vec3;
using cooprt::scene::Mesh;

TEST(Primitives, QuadProducesTwoTriangles)
{
    Mesh m;
    addQuad(m, {0, 0, 0}, {1, 0, 0}, {0, 1, 0});
    EXPECT_EQ(m.size(), 2u);
}

TEST(Primitives, QuadCoversCorners)
{
    Mesh m;
    addQuad(m, {1, 2, 3}, {2, 0, 0}, {0, 3, 0});
    AABB b = m.bounds();
    EXPECT_EQ(b.lo, Vec3(1, 2, 3));
    EXPECT_EQ(b.hi, Vec3(3, 5, 3));
}

TEST(Primitives, QuadAreaMatches)
{
    Mesh m;
    addQuad(m, {0, 0, 0}, {2, 0, 0}, {0, 3, 0});
    float area = 0;
    for (std::uint32_t i = 0; i < m.size(); ++i)
        area += 0.5f * m.tri(i).area2();
    EXPECT_FLOAT_EQ(area, 6.0f);
}

TEST(Primitives, BoxProducesTwelveTriangles)
{
    Mesh m;
    addBox(m, {0, 0, 0}, {1, 1, 1});
    EXPECT_EQ(m.size(), 12u);
}

TEST(Primitives, BoxBoundsMatch)
{
    Mesh m;
    addBox(m, {-1, -2, -3}, {4, 5, 6});
    EXPECT_EQ(m.bounds().lo, Vec3(-1, -2, -3));
    EXPECT_EQ(m.bounds().hi, Vec3(4, 5, 6));
}

TEST(Primitives, BoxSurfaceAreaMatches)
{
    Mesh m;
    addBox(m, {0, 0, 0}, {2, 3, 4});
    float area = 0;
    for (std::uint32_t i = 0; i < m.size(); ++i)
        area += 0.5f * m.tri(i).area2();
    EXPECT_NEAR(area, 2.0f * (2 * 3 + 3 * 4 + 2 * 4), 1e-3f);
}

TEST(Primitives, SphereTriangleCountAndBounds)
{
    Mesh m;
    addSphere(m, {1, 2, 3}, 2.0f, 16);
    EXPECT_GT(m.size(), 100u);
    AABB b = m.bounds();
    // Tessellation is inscribed: bounds within the true sphere box.
    EXPECT_GE(b.lo.x, 1.0f - 2.0f - 1e-4f);
    EXPECT_LE(b.hi.x, 1.0f + 2.0f + 1e-4f);
    // ...but should come close to it.
    EXPECT_LT(b.lo.y, 2.0f - 1.9f);
    EXPECT_GT(b.hi.y, 2.0f + 1.9f);
}

TEST(Primitives, SphereVerticesOnSurface)
{
    Mesh m;
    addSphere(m, {0, 0, 0}, 3.0f, 12);
    for (std::uint32_t i = 0; i < m.size(); ++i) {
        EXPECT_NEAR(m.tri(i).v0.length(), 3.0f, 1e-3f);
        EXPECT_NEAR(m.tri(i).v1.length(), 3.0f, 1e-3f);
        EXPECT_NEAR(m.tri(i).v2.length(), 3.0f, 1e-3f);
    }
}

TEST(Primitives, SphereHasNoDegenerateTriangles)
{
    Mesh m;
    addSphere(m, {0, 0, 0}, 1.0f, 10);
    for (std::uint32_t i = 0; i < m.size(); ++i)
        EXPECT_GT(m.tri(i).area2(), 1e-6f) << "triangle " << i;
}

TEST(Primitives, SphereMinimumSegmentsClamped)
{
    Mesh m;
    addSphere(m, {0, 0, 0}, 1.0f, 1); // clamped to 3
    EXPECT_GT(m.size(), 0u);
}

TEST(Primitives, ConeGeometry)
{
    Mesh m;
    addCone(m, {0, 0, 0}, 1.0f, 2.0f, 8);
    EXPECT_EQ(m.size(), 16u); // 8 sides + 8 base
    EXPECT_NEAR(m.bounds().hi.y, 2.0f, 1e-5f);
    EXPECT_NEAR(m.bounds().lo.y, 0.0f, 1e-5f);
    EXPECT_NEAR(m.bounds().hi.x, 1.0f, 1e-5f);
}

TEST(Primitives, CylinderGeometry)
{
    Mesh m;
    addCylinder(m, {0, 1, 0}, 0.5f, 3.0f, 6);
    EXPECT_EQ(m.size(), 12u);
    EXPECT_NEAR(m.bounds().lo.y, 1.0f, 1e-5f);
    EXPECT_NEAR(m.bounds().hi.y, 4.0f, 1e-5f);
}

TEST(Primitives, HeightfieldCountAndExtent)
{
    Mesh m;
    addHeightfield(m, {0, 5, 0}, 10, 20, 4,
                   [](int i, int j) { return float(i + j); });
    EXPECT_EQ(m.size(), 2u * 4 * 4);
    EXPECT_FLOAT_EQ(m.bounds().lo.y, 5.0f);     // height(0,0) = 0
    EXPECT_FLOAT_EQ(m.bounds().hi.y, 5.0f + 8); // height(4,4) = 8
    EXPECT_FLOAT_EQ(m.bounds().hi.x, 10.0f);
    EXPECT_FLOAT_EQ(m.bounds().hi.z, 20.0f);
}

TEST(Primitives, MeshAppendConcatenates)
{
    Mesh a, b;
    addBox(a, {0, 0, 0}, {1, 1, 1}, 1);
    addBox(b, {2, 0, 0}, {3, 1, 1}, 2);
    a.append(b);
    EXPECT_EQ(a.size(), 24u);
    EXPECT_EQ(a.materialOf(0), 1);
    EXPECT_EQ(a.materialOf(12), 2);
    EXPECT_FLOAT_EQ(a.bounds().hi.x, 3.0f);
}

} // namespace

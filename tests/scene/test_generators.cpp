/**
 * @file
 * Tests for the procedural scene generators.
 */

#include <gtest/gtest.h>

#include "scene/generators.hpp"

namespace {

using namespace cooprt::scene;

TEST(Generators, ObjectSceneDeterministic)
{
    Scene a = makeObjectScene("x", 7, 24);
    Scene b = makeObjectScene("x", 7, 24);
    ASSERT_EQ(a.mesh.size(), b.mesh.size());
    for (std::uint32_t i = 0; i < a.mesh.size(); i += 37)
        EXPECT_EQ(a.mesh.tri(i).v0, b.mesh.tri(i).v0) << i;
}

TEST(Generators, ObjectSceneSeedChangesGeometry)
{
    Scene a = makeObjectScene("x", 7, 24);
    Scene c = makeObjectScene("x", 8, 24);
    // Blob displacement is seed-independent but light/ground are not;
    // at minimum the scenes must be valid and same-sized structure.
    EXPECT_EQ(a.mesh.size(), c.mesh.size());
}

TEST(Generators, ObjectSceneDetailScalesTriangles)
{
    Scene small = makeObjectScene("s", 1, 16);
    Scene large = makeObjectScene("l", 1, 64);
    EXPECT_GT(large.mesh.size(), 4 * small.mesh.size());
}

TEST(Generators, ObjectSceneHasOpenSkyAndLight)
{
    Scene s = makeObjectScene("s", 1, 16);
    EXPECT_GT(s.sky_emission, 0.0f);
    bool has_light = false;
    for (std::uint32_t i = 0; i < s.mesh.size(); ++i)
        has_light |= s.materialOf(i).isLight();
    EXPECT_TRUE(has_light);
}

TEST(Generators, ClosedRoomFullyEnclosedHasNoSky)
{
    Scene s = makeClosedRoomScene("room", 3, 8, 0.0f, 5);
    EXPECT_FLOAT_EQ(s.sky_emission, 0.0f);
}

TEST(Generators, ClosedRoomWithOpeningHasSky)
{
    Scene s = makeClosedRoomScene("room", 3, 8, 0.3f, 5);
    EXPECT_GT(s.sky_emission, 0.0f);
}

TEST(Generators, ClosedRoomHasCeilingLight)
{
    Scene s = makeClosedRoomScene("room", 3, 8, 0.0f, 5);
    bool has_light = false;
    for (std::uint32_t i = 0; i < s.mesh.size(); ++i)
        has_light |= s.materialOf(i).isLight();
    EXPECT_TRUE(has_light);
}

TEST(Generators, ClosedRoomCameraInsideBounds)
{
    Scene s = makeClosedRoomScene("room", 3, 8, 0.0f, 5);
    EXPECT_TRUE(s.mesh.bounds().contains(s.camera.eye()));
}

TEST(Generators, OpennessReducesCeilingTriangles)
{
    Scene closed = makeClosedRoomScene("a", 3, 8, 0.0f, 0);
    Scene open = makeClosedRoomScene("b", 3, 8, 0.5f, 0);
    EXPECT_GT(closed.mesh.size(), open.mesh.size());
}

TEST(Generators, ShipSceneNonTrivial)
{
    Scene s = makeShipScene("ship", 5, 100);
    EXPECT_GT(s.mesh.size(), 300u);
    EXPECT_GT(s.sky_emission, 0.0f);
}

TEST(Generators, TreeSceneNonTrivial)
{
    Scene s = makeTreeScene("tree", 5, 30);
    EXPECT_GT(s.mesh.size(), 1000u);
}

TEST(Generators, CarnivalStructuresScaleSize)
{
    Scene small = makeCarnivalScene("c", 9, 20, 8);
    Scene large = makeCarnivalScene("c", 9, 20, 32);
    EXPECT_GT(large.mesh.size(), small.mesh.size());
}

TEST(Generators, ForestTreesScaleSize)
{
    Scene small = makeForestScene("f", 9, 40, 10, 0.9f);
    Scene large = makeForestScene("f", 9, 40, 40, 0.9f);
    EXPECT_GT(large.mesh.size(), small.mesh.size());
}

TEST(Generators, TerrainSceneNonTrivial)
{
    Scene s = makeTerrainScene("t", 9, 32);
    EXPECT_GT(s.mesh.size(), 2u * 32 * 32);
}

TEST(Generators, AllGeneratorsProduceFiniteGeometry)
{
    const Scene scenes[] = {
        makeObjectScene("a", 1, 16),
        makeShipScene("b", 2, 50),
        makeClosedRoomScene("c", 3, 8, 0.1f, 4),
        makeTreeScene("d", 4, 20),
        makeCarnivalScene("e", 5, 15, 6),
        makeForestScene("f", 6, 30, 8, 0.9f),
        makeTerrainScene("g", 7, 16),
    };
    for (const Scene &s : scenes) {
        ASSERT_FALSE(s.mesh.empty()) << s.name;
        const auto &b = s.mesh.bounds();
        EXPECT_TRUE(std::isfinite(b.lo.x) && std::isfinite(b.hi.x))
            << s.name;
        EXPECT_TRUE(std::isfinite(b.lo.y) && std::isfinite(b.hi.y))
            << s.name;
        EXPECT_LT(b.extent().maxComponent(), 1e4f) << s.name;
        for (std::uint32_t i = 0; i < s.mesh.size(); ++i) {
            const auto &t = s.mesh.tri(i);
            ASSERT_TRUE(std::isfinite(t.v0.x) && std::isfinite(t.v1.y) &&
                        std::isfinite(t.v2.z))
                << s.name << " tri " << i;
        }
    }
}

TEST(Generators, MaterialIdsValid)
{
    Scene s = makeCarnivalScene("e", 5, 15, 6);
    for (std::uint32_t i = 0; i < s.mesh.size(); ++i)
        ASSERT_LT(s.mesh.materialOf(i), s.materials.size()) << i;
}

} // namespace

/**
 * @file
 * Unit tests for the memory-side memscope profilers against
 * hand-computed traces: the Mattson reuse-distance stack
 * (CacheScope), its Fenwick-tree growth path, the per-set contention
 * counters and the DRAM row-locality scope.
 */

#include <gtest/gtest.h>

#include "memscope/memscope.hpp"

namespace {

using namespace cooprt;

// Reuse distance d of an access = number of DISTINCT lines touched
// since the previous access to the same line; bucket = bit_width(d).
//
// Hand trace over lines A=10, B=20, C=30 (set ignored):
//
//   pos  line  distinct since last touch   d     bucket
//    0    A    (first touch)               -     cold
//    1    B    (first touch)               -     cold
//    2    C    (first touch)               -     cold
//    3    A    {B, C}                      2     2
//    4    B    {C, A}                      2     2
//    5    B    {}                          0     0
//    6    A    {B}                         1     1
TEST(MemscopeReuse, HandComputedTrace)
{
    memscope::CacheScope scope;
    const std::uint64_t A = 10, B = 20, C = 30;
    for (std::uint64_t line : {A, B, C, A, B, B, A})
        scope.touch(line, 0);

    EXPECT_EQ(scope.accesses(), 7u);
    EXPECT_EQ(scope.cold(), 3u);
    EXPECT_EQ(scope.reused(), 4u);
    EXPECT_EQ(scope.hist()[0], 1u); // B B back to back
    EXPECT_EQ(scope.hist()[1], 1u); // A with one line between
    EXPECT_EQ(scope.hist()[2], 2u); // the two d = 2 re-touches
    for (int b = 3; b < memscope::kReuseBuckets; ++b)
        EXPECT_EQ(scope.hist()[b], 0u) << "bucket " << b;
}

TEST(MemscopeReuse, BucketBoundaries)
{
    // d = 2 and d = 3 share a bucket (bit_width), d = 4 starts the
    // next one.
    auto bucketFor = [](std::uint64_t d) {
        memscope::CacheScope s;
        s.touch(0, 0); // the line under test
        for (std::uint64_t i = 1; i <= d; ++i)
            s.touch(i, 0); // d distinct lines in between
        s.touch(0, 0);     // re-touch: reuse distance exactly d
        int bucket = -1;
        for (int b = 0; b < memscope::kReuseBuckets; ++b)
            if (s.hist()[b] != 0)
                bucket = b;
        return bucket;
    };
    EXPECT_EQ(bucketFor(0), 0);
    EXPECT_EQ(bucketFor(1), 1);
    EXPECT_EQ(bucketFor(2), 2);
    EXPECT_EQ(bucketFor(3), 2);
    EXPECT_EQ(bucketFor(4), 3);
    EXPECT_EQ(bucketFor(7), 3);
    EXPECT_EQ(bucketFor(8), 4);
}

TEST(MemscopeReuse, FenwickGrowthPastInitialCapacity)
{
    // The position tree starts at 1024 entries and doubles; a trace
    // longer than that must keep distances exact across the rebuild.
    memscope::CacheScope scope;
    const std::uint64_t n = 3000;
    scope.touch(0, 0);
    for (std::uint64_t i = 1; i <= n; ++i)
        scope.touch(i, 0);
    scope.touch(0, 0); // d = 3000, bit_width = 12

    EXPECT_EQ(scope.accesses(), n + 2);
    EXPECT_EQ(scope.cold(), n + 1);
    EXPECT_EQ(scope.reused(), 1u);
    EXPECT_EQ(scope.hist()[12], 1u);
}

TEST(MemscopeReuse, SetContentionCounters)
{
    memscope::CacheScope scope;
    scope.touch(1, 0);
    scope.touch(2, 3);
    scope.touch(3, 3);
    scope.touch(4, 3);
    EXPECT_EQ(scope.setsTouched(), 2u);
    EXPECT_EQ(scope.maxSetAccesses(), 3u);
    ASSERT_GE(scope.setAccesses().size(), 4u);
    EXPECT_EQ(scope.setAccesses()[0], 1u);
    EXPECT_EQ(scope.setAccesses()[3], 3u);
}

TEST(MemscopeReuse, ResetClearsEverything)
{
    memscope::CacheScope scope;
    scope.touch(1, 0);
    scope.touch(1, 0);
    scope.reset();
    EXPECT_EQ(scope.accesses(), 0u);
    EXPECT_EQ(scope.cold(), 0u);
    EXPECT_EQ(scope.setsTouched(), 0u);
    // Post-reset distances start from a clean stack.
    scope.touch(1, 0);
    EXPECT_EQ(scope.cold(), 1u);
}

TEST(MemscopeDram, RowLocalityPerChannel)
{
    memscope::DramScope dram; // row_bytes = 2048
    dram.onAccess(0, 64, 0);    // channel 0, row 0: cold -> miss
    dram.onAccess(1024, 64, 0); // same row           -> hit
    dram.onAccess(4096, 64, 0); // row 2              -> miss
    dram.onAccess(4160, 64, 0); // row 2 again        -> hit
    dram.onAccess(64, 64, 1);   // channel 1, row 0: cold -> miss
    dram.onAccess(128, 64, 1);  // same row           -> hit
    // Channel interleaving must not break channel-0 locality.
    dram.onAccess(4224, 64, 0); // still row 2        -> hit

    EXPECT_EQ(dram.requests, 7u);
    EXPECT_EQ(dram.bytes, 7u * 64u);
    EXPECT_EQ(dram.row_hits, 4u);
    EXPECT_EQ(dram.row_misses, 3u);

    dram.reset();
    EXPECT_EQ(dram.requests, 0u);
    dram.onAccess(0, 64, 0);
    EXPECT_EQ(dram.row_misses, 1u) << "reset clears row history";
}

} // namespace

/**
 * @file
 * Collector-level tests: node/depth accumulation, hot-node ranking,
 * the summary roll-up, registry probes and the deterministic export
 * views (folded stacks, JSON).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "memscope/memscope.hpp"
#include "trace/registry.hpp"

namespace {

using namespace cooprt;

TEST(MemscopeCollector, UnitScopeAccumulatesNodeAndDepthRows)
{
    memscope::UnitScope unit;
    unit.record(/*node_id=*/5, /*depth=*/3, /*level=*/1, /*lanes=*/4,
                /*phase=*/1, /*bytes=*/128);
    unit.record(5, 3, 0, 2, 1, 128);
    unit.record(2, 1, 2, 32, 0, 64);

    EXPECT_EQ(unit.accesses, 3u);
    EXPECT_EQ(unit.bytes, 320u);
    ASSERT_GE(unit.nodes.size(), 6u);
    EXPECT_EQ(unit.nodes[5].accesses, 2u);
    EXPECT_EQ(unit.nodes[5].bytes, 256u);
    EXPECT_EQ(unit.nodes[5].lanes, 6u);
    EXPECT_EQ(unit.nodes[5].depth, 3u);
    EXPECT_EQ(unit.nodes[5].level[0], 1u);
    EXPECT_EQ(unit.nodes[5].level[1], 1u);
    ASSERT_GE(unit.depths.size(), 4u);
    EXPECT_EQ(unit.depths[3].accesses, 2u);
    EXPECT_EQ(unit.depths[3].phase[1], 2u);
    EXPECT_EQ(unit.depths[1].level[2], 1u);
    EXPECT_EQ(unit.depths[1].lanes, 32u);
}

/** Two SMs touching overlapping nodes, for the roll-up tests. */
void
fillTwoUnits(memscope::Collector &c)
{
    // SM 0: root twice (L1), node 3 once (L2).
    c.unit(0).record(0, 1, 0, 16, 0, 64);
    c.unit(0).record(0, 1, 0, 8, 1, 64);
    c.unit(0).record(3, 2, 1, 4, 1, 128);
    // SM 1: root once (DRAM), node 7 thrice (L1).
    c.unit(1).record(0, 1, 2, 32, 1, 64);
    c.unit(1).record(7, 2, 0, 1, 2, 128);
    c.unit(1).record(7, 2, 0, 1, 2, 128);
    c.unit(1).record(7, 2, 0, 1, 2, 128);
}

TEST(MemscopeCollector, TotalsAndHotNodesMergeUnits)
{
    memscope::Collector c;
    fillTwoUnits(c);

    const auto totals = c.nodeTotals();
    EXPECT_EQ(totals.accesses, 7u);
    EXPECT_EQ(totals.level[0], 5u);
    EXPECT_EQ(totals.level[1], 1u);
    EXPECT_EQ(totals.level[2], 1u);

    const auto depths = c.depthTotals();
    ASSERT_GE(depths.size(), 3u);
    EXPECT_EQ(depths[1].accesses, 3u); // root fetches
    EXPECT_EQ(depths[2].accesses, 4u);

    // Ranking: accesses desc, node id as the tie-break.
    const auto hot = c.hotNodes(2);
    ASSERT_EQ(hot.size(), 2u);
    EXPECT_EQ(hot[0].node, 0u); // 3 accesses, id 0 beats id 7
    EXPECT_EQ(hot[0].c.accesses, 3u);
    EXPECT_EQ(hot[1].node, 7u);
    EXPECT_EQ(hot[1].c.accesses, 3u);
    EXPECT_EQ(hot[1].depth, 2);
}

TEST(MemscopeCollector, SummaryRollsUpEverySide)
{
    memscope::Collector c;
    fillTwoUnits(c);
    c.l1Scope(0).touch(100, 0);
    c.l1Scope(0).touch(100, 0);
    c.l2Scope().touch(200, 1);
    c.traffic().line_level[0] = 5;
    c.traffic().line_level[1] = 2;
    c.dram().onAccess(0, 64, 0);
    c.dram().onAccess(64, 64, 0);

    const auto s = c.summary();
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.node_accesses, 7u);
    EXPECT_EQ(s.node_level[0], 5u);
    ASSERT_EQ(s.depths.size(), 2u); // depths 1 and 2 touched
    EXPECT_EQ(s.depths[0].depth, 1);
    EXPECT_EQ(s.depths[0].accesses, 3u);
    EXPECT_NEAR(s.depths[0].missRate(), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(s.depths[1].avgLanes(), 7.0 / 4.0, 1e-12);
    EXPECT_EQ(s.traffic.lineTotal(), 7u);
    EXPECT_EQ(s.l1_reuse_cold, 1u);
    EXPECT_EQ(s.l1_reuse_tracked, 2u);
    EXPECT_EQ(s.l2_reuse_tracked, 1u);
    EXPECT_EQ(s.dram_row_hits, 1u);
    EXPECT_EQ(s.dram_row_misses, 1u);
}

TEST(MemscopeCollector, FoldedStacksAreDepthNodeOrdered)
{
    memscope::Collector c;
    fillTwoUnits(c);
    std::ostringstream os;
    c.writeFolded(os, "toy");
    // Root merged across SMs; rows sorted by (depth, node id).
    EXPECT_EQ(os.str(), "toy;depth1;node0 3\n"
                        "toy;depth2;node3 1\n"
                        "toy;depth2;node7 3\n");
}

TEST(MemscopeCollector, WriteJsonCarriesTheSchema)
{
    memscope::Collector c;
    fillTwoUnits(c);
    std::ostringstream os;
    c.writeJson(os, "toy");
    const std::string j = os.str();
    for (const char *key :
         {"\"scene\"", "\"nodes\"", "\"depths\"", "\"hot_nodes\"",
          "\"reuse\"", "\"mem\"", "\"dram\"", "\"units\"",
          "\"accesses\"", "\"lanes\"", "\"hist\""})
        EXPECT_NE(j.find(key), std::string::npos) << key;
    EXPECT_EQ(j.find("nan"), std::string::npos);
}

TEST(MemscopeCollector, RegistryProbesRegisterAndUnregister)
{
    trace::Registry registry;
    {
        memscope::Collector c;
        fillTwoUnits(c);
        c.registerMetrics(registry);
        const auto samples = registry.snapshot("memscope.*");
        ASSERT_FALSE(samples.empty());
        double gpu_accesses = -1, sm1_accesses = -1;
        for (const auto &s : samples) {
            if (s.name == "memscope.gpu.node_accesses")
                gpu_accesses = s.value;
            else if (s.name == "memscope.sm1.node_accesses")
                sm1_accesses = s.value;
        }
        EXPECT_EQ(gpu_accesses, 7.0);
        EXPECT_EQ(sm1_accesses, 4.0);
    }
    // Probes are owner-tagged and dropped with the collector.
    EXPECT_TRUE(registry.snapshot("memscope.*").empty());
}

TEST(MemscopeCollector, ResetKeepsAddressesZeroesData)
{
    memscope::Collector c;
    fillTwoUnits(c);
    memscope::UnitScope *u0 = &c.unit(0);
    c.reset();
    EXPECT_EQ(&c.unit(0), u0);
    EXPECT_EQ(c.unit(0).accesses, 0u);
    EXPECT_EQ(c.nodeTotals().accesses, 0u);
    EXPECT_EQ(c.trafficConst().lineTotal(), 0u);
}

} // namespace

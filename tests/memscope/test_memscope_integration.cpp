/**
 * @file
 * End-to-end memscope runs over real simulations: the traffic
 * conservation identity (checked every fetch in COOPRT_CHECK builds)
 * must also hold for the final totals in default builds, the RT-unit
 * side must agree with the fetch counters, and the folded node
 * heatmap must match its golden file byte for byte.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/simulation.hpp"
#include "memscope/memscope.hpp"

namespace {

using namespace cooprt;

core::RunOutcome
runWithMemscope(memscope::Collector &mscope, const std::string &scene,
                int resolution, core::ShaderKind shader, bool coop)
{
    core::RunConfig cfg;
    cfg.resolution = resolution;
    cfg.shader = shader;
    cfg.gpu.trace.coop = coop;
    cfg.memscope = &mscope;
    return core::simulationFor(scene).run(cfg);
}

TEST(MemscopeIntegration, TrafficConservesAgainstCacheCounters)
{
    memscope::Collector mscope;
    const auto out = runWithMemscope(
        mscope, "wknd", 32, core::ShaderKind::PathTracing, false);

    // Every L1 access is attributed to exactly one serving level, and
    // the L1-served count is exactly the L1 hit count.
    const auto &t = mscope.trafficConst();
    EXPECT_EQ(t.lineTotal(), out.gpu.l1.accesses);
    EXPECT_EQ(t.line_level[0], out.gpu.l1.hits);
    // The DRAM scope sees the same requests the DRAM model serves.
    EXPECT_EQ(mscope.dramConst().requests, out.gpu.dram.requests);
    EXPECT_EQ(mscope.dramConst().bytes, out.gpu.dram.bytes);
    EXPECT_EQ(mscope.dramConst().row_hits + mscope.dramConst().row_misses,
              out.gpu.dram.requests);
    // RT-unit side: one record per node/leaf fetch.
    const auto totals = mscope.nodeTotals();
    EXPECT_EQ(totals.accesses,
              out.gpu.rt.node_fetches + out.gpu.rt.leaf_fetches);
    // Reuse stacks see every L1/L2 access.
    std::uint64_t cold = 0, tracked = 0;
    std::array<std::uint64_t, memscope::kReuseBuckets> hist{};
    mscope.l1ReuseTotals(cold, tracked, hist);
    EXPECT_EQ(tracked, out.gpu.l1.accesses);
    EXPECT_EQ(mscope.l2ScopeConst().accesses(), out.gpu.l2.accesses);
    // The summary mirrors the live counters.
    const auto s = out.gpu.memscope_summary;
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.node_accesses, totals.accesses);
    EXPECT_EQ(s.traffic.lineTotal(), out.gpu.l1.accesses);
}

TEST(MemscopeIntegration, CoopRunConservesToo)
{
    memscope::Collector mscope;
    const auto out = runWithMemscope(
        mscope, "bunny", 24, core::ShaderKind::AmbientOcclusion, true);
    const auto &t = mscope.trafficConst();
    EXPECT_EQ(t.lineTotal(), out.gpu.l1.accesses);
    EXPECT_EQ(t.line_level[0], out.gpu.l1.hits);
    EXPECT_EQ(mscope.nodeTotals().accesses,
              out.gpu.rt.node_fetches + out.gpu.rt.leaf_fetches);
}

TEST(MemscopeIntegration, CollectorIsReusableAcrossRuns)
{
    // exec reuses per-job collectors only within a job, but the Gpu
    // resets an attached collector at run start — two runs through
    // one collector must match a fresh collector's totals.
    memscope::Collector twice;
    runWithMemscope(twice, "wknd", 32, core::ShaderKind::PathTracing,
                    false);
    const auto first = twice.nodeTotals();
    runWithMemscope(twice, "wknd", 32, core::ShaderKind::PathTracing,
                    false);
    EXPECT_EQ(twice.nodeTotals().accesses, first.accesses);
    EXPECT_EQ(twice.nodeTotals().bytes, first.bytes);
}

TEST(MemscopeIntegration, FoldedHeatmapMatchesGolden)
{
    memscope::Collector mscope;
    runWithMemscope(mscope, "wknd", 32, core::ShaderKind::PathTracing,
                    false);
    std::ostringstream got;
    mscope.writeFolded(got, "wknd");

    const std::string path =
        std::string(COOPRT_MEMSCOPE_GOLDEN_DIR) + "/wknd_pt32.folded";
    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.good()) << "missing golden file " << path;
    std::ostringstream want;
    want << is.rdbuf();
    EXPECT_EQ(got.str(), want.str())
        << "folded node heatmap drifted from " << path
        << " — re-pin only with an explicit model change";
}

} // namespace

/**
 * @file
 * Determinism guarantees of the query subsystem. Query results are
 * pure functions of (scene, workload, params, query id): warp
 * scheduling, LBU work stealing, CoopRT on/off and every observer
 * (profiler, ray recorder, memscope, telemetry, trace session) must
 * leave counts, checksums — and, for observers, the simulated cycle
 * counts themselves — bit-identical. This is the query analogue of
 * tests/core/test_pinned_cycles.cpp, pinned relative to a plain run
 * in the same process instead of to hardcoded constants.
 */

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "memscope/memscope.hpp"
#include "prof/prof.hpp"
#include "raytrace/raytrace.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/session.hpp"

namespace {

using namespace cooprt;

core::RunConfig
queryConfig(core::ShaderKind shader, bool coop)
{
    core::RunConfig cfg;
    cfg.shader = shader;
    cfg.resolution = 8;
    cfg.gpu.trace.coop = coop;
    return cfg;
}

core::ShaderKind
naturalShader(const std::string &label)
{
    return scene::SceneRegistry::get(label).kind ==
                   scene::SceneKind::AmrCells
               ? core::ShaderKind::QueryContain
               : core::ShaderKind::QueryKnn;
}

TEST(QueryDeterminism, CoopMatchesBaselineResults)
{
    // CoopRT changes traversal interleaving and cycle counts, never
    // what the queries return.
    for (const auto &l : scene::SceneRegistry::queryLabels()) {
        SCOPED_TRACE(l);
        const auto &sim = core::simulationFor(l);
        const auto base = sim.run(queryConfig(naturalShader(l), false));
        const auto coop = sim.run(queryConfig(naturalShader(l), true));
        EXPECT_EQ(base.query.checksum, coop.query.checksum);
        EXPECT_EQ(base.query.found, coop.query.found);
        EXPECT_EQ(base.query.rounds, coop.query.rounds);
    }
}

TEST(QueryDeterminism, RepeatedRunsBitIdentical)
{
    const auto &sim = core::simulationFor("ptsc");
    const auto cfg =
        queryConfig(core::ShaderKind::QueryRadius, true);
    const auto a = sim.run(cfg);
    const auto b = sim.run(cfg);
    EXPECT_EQ(a.gpu.cycles, b.gpu.cycles);
    EXPECT_EQ(a.query.checksum, b.query.checksum);
}

/**
 * Every observer attached at once — the strongest perturbation test:
 * the observed coop k-NN run must report the exact cycles, fetch
 * counts, steal counts and query checksum of the plain run.
 */
TEST(QueryDeterminism, ObserversDoNotPerturbKnnCoop)
{
    const auto &sim = core::simulationFor("ptsu");
    const auto plain =
        sim.run(queryConfig(core::ShaderKind::QueryKnn, true));

    trace::SessionOptions topt;
    topt.metrics = true;
    trace::Session session(topt);
    prof::Profiler profiler;
    raytrace::Recorder ray;
    memscope::Collector mscope;
    telemetry::Recorder telem;
    auto cfg = queryConfig(core::ShaderKind::QueryKnn, true);
    cfg.trace_session = &session;
    cfg.profiler = &profiler;
    cfg.ray_recorder = &ray;
    cfg.memscope = &mscope;
    cfg.telemetry = &telem;
    const auto observed = sim.run(cfg);

    EXPECT_EQ(observed.gpu.cycles, plain.gpu.cycles);
    EXPECT_EQ(observed.gpu.rt.node_fetches,
              plain.gpu.rt.node_fetches);
    EXPECT_EQ(observed.gpu.rt.leaf_fetches,
              plain.gpu.rt.leaf_fetches);
    EXPECT_EQ(observed.gpu.rt.steals, plain.gpu.rt.steals);
    EXPECT_EQ(observed.query.checksum, plain.query.checksum);
    EXPECT_TRUE(observed.gpu.prof_summary.enabled);
    EXPECT_TRUE(observed.gpu.memscope_summary.enabled);
    EXPECT_GT(observed.traceSummary().metric_samples, 0u);
}

TEST(QueryDeterminism, ObserversDoNotPerturbContainBase)
{
    const auto &sim = core::simulationFor("amrd");
    const auto plain =
        sim.run(queryConfig(core::ShaderKind::QueryContain, false));

    prof::Profiler profiler;
    memscope::Collector mscope;
    auto cfg = queryConfig(core::ShaderKind::QueryContain, false);
    cfg.profiler = &profiler;
    cfg.memscope = &mscope;
    const auto observed = sim.run(cfg);

    EXPECT_EQ(observed.gpu.cycles, plain.gpu.cycles);
    EXPECT_EQ(observed.gpu.rt.stale_pops, plain.gpu.rt.stale_pops);
    EXPECT_EQ(observed.query.checksum, plain.query.checksum);
}

TEST(QueryMetrics, ProbesRegisterAndUnregisterWithStore)
{
    trace::Session session;
    {
        query::ResultStore store(4);
        store.at(0).count = 2;
        store.at(0).rounds = 3;
        store.at(1).count = 1;
        store.at(1).rounds = 1;
        store.registerMetrics(session.registry());

        const auto samples = session.registry().snapshot("query.*");
        ASSERT_EQ(samples.size(), 3u);
        for (const auto &s : samples) {
            if (s.name == "query.queries")
                EXPECT_DOUBLE_EQ(s.value, 4.0);
            else if (s.name == "query.rounds")
                EXPECT_DOUBLE_EQ(s.value, 4.0);
            else if (s.name == "query.found")
                EXPECT_DOUBLE_EQ(s.value, 3.0);
            else
                ADD_FAILURE() << "unexpected probe " << s.name;
        }
    }
    // The store owns its registrations: destruction must leave no
    // dangling probes behind.
    EXPECT_TRUE(session.registry().snapshot("query.*").empty());
}

} // namespace

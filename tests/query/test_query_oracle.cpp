/**
 * @file
 * Correctness anchor of the cooprt::query workloads: every simulator
 * result must match the brute-force reference oracle bit-for-bit, on
 * every query scene. The oracle scans all primitives per round with
 * the identical float expressions the RT-unit leaf test folds, so
 * any traversal bug — a culled subtree that should have been
 * visited, a stale pop eliminating a live entry — surfaces as a
 * mismatch here rather than as a silently wrong neighbor.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/simulation.hpp"

namespace {

using namespace cooprt;

core::RunOutcome
runQuery(const std::string &scene, core::ShaderKind shader,
         int resolution = 8, bool coop = false,
         query::QueryParams params = {})
{
    core::RunConfig cfg;
    cfg.shader = shader;
    cfg.resolution = resolution;
    cfg.gpu.trace.coop = coop;
    cfg.query = params;
    return core::simulationFor(scene).run(cfg);
}

std::vector<std::string>
labelsOfKind(scene::SceneKind kind)
{
    std::vector<std::string> out;
    for (const auto &l : scene::SceneRegistry::queryLabels())
        if (scene::SceneRegistry::get(l).kind == kind)
            out.push_back(l);
    return out;
}

TEST(QueryScenes, RegisteredWithExpectedKinds)
{
    const auto &labels = scene::SceneRegistry::queryLabels();
    ASSERT_EQ(labels.size(), 5u);
    EXPECT_EQ(labelsOfKind(scene::SceneKind::PointCloud).size(), 3u);
    EXPECT_EQ(labelsOfKind(scene::SceneKind::AmrCells).size(), 2u);
    for (const auto &l : labels) {
        SCOPED_TRACE(l);
        EXPECT_TRUE(scene::SceneRegistry::has(l));
        const auto &s = scene::SceneRegistry::get(l);
        EXPECT_NE(s.kind, scene::SceneKind::Triangles);
        EXPECT_GT(s.mesh.size(), 0u);
        EXPECT_EQ(scene::SceneRegistry::benchResolution(l), 32);
    }
}

TEST(QueryScenes, RenderingAxisUnchanged)
{
    // The query scenes must NOT join allLabels(): every existing
    // bench sweeps that list with rendering shaders.
    const auto &all = scene::SceneRegistry::allLabels();
    EXPECT_EQ(all.size(), 15u);
    for (const auto &l : scene::SceneRegistry::queryLabels())
        for (const auto &a : all)
            EXPECT_NE(a, l);
}

TEST(QueryFrame, RejectsSceneKindMismatch)
{
    EXPECT_THROW(runQuery("amrs", core::ShaderKind::QueryKnn),
                 std::invalid_argument);
    EXPECT_THROW(runQuery("ptsu", core::ShaderKind::QueryContain),
                 std::invalid_argument);
    EXPECT_THROW(runQuery("wknd", core::ShaderKind::QueryRadius),
                 std::invalid_argument);
}

TEST(QueryOracle, KnnAgreesOnEveryPointCloud)
{
    for (const auto &l : labelsOfKind(scene::SceneKind::PointCloud)) {
        SCOPED_TRACE(l);
        const auto out = runQuery(l, core::ShaderKind::QueryKnn);
        ASSERT_TRUE(out.query.enabled);
        EXPECT_EQ(out.query.workload, "knn");
        EXPECT_EQ(out.query.queries, 64u);
        ASSERT_TRUE(out.query.verified);
        EXPECT_EQ(out.query.oracle_checked, 64u);
        EXPECT_EQ(out.query.oracle_mismatches, 0u);
        EXPECT_TRUE(out.query.oracleMatches());
    }
}

TEST(QueryOracle, RadiusAgreesOnEveryPointCloud)
{
    for (const auto &l : labelsOfKind(scene::SceneKind::PointCloud)) {
        SCOPED_TRACE(l);
        const auto out = runQuery(l, core::ShaderKind::QueryRadius);
        ASSERT_TRUE(out.query.verified);
        EXPECT_EQ(out.query.oracle_mismatches, 0u);
        // Every neighbor round plus one trailing empty round, unless
        // a query saturated max_rounds.
        EXPECT_GE(out.query.rounds, out.query.found);
    }
}

TEST(QueryOracle, ContainAgreesOnEveryAmrScene)
{
    for (const auto &l : labelsOfKind(scene::SceneKind::AmrCells)) {
        SCOPED_TRACE(l);
        const auto out = runQuery(l, core::ShaderKind::QueryContain);
        ASSERT_TRUE(out.query.verified);
        EXPECT_EQ(out.query.oracle_mismatches, 0u);
        EXPECT_TRUE(out.query.oracleMatches());
    }
}

TEST(QueryOracle, AgreesUnderCoopToo)
{
    // CoopRT reorders traversal (steals, subwarp scopes); results
    // must still be the oracle's, on a representative of each kind.
    for (const char *l : {"ptsc", "amrd"}) {
        SCOPED_TRACE(l);
        const auto out = runQuery(
            l,
            scene::SceneRegistry::get(l).kind ==
                    scene::SceneKind::AmrCells
                ? core::ShaderKind::QueryContain
                : core::ShaderKind::QueryKnn,
            8, /*coop=*/true);
        ASSERT_TRUE(out.query.verified);
        EXPECT_EQ(out.query.oracle_mismatches, 0u);
    }
}

TEST(QuerySemantics, KnnFindsExactlyKNeighbors)
{
    query::QueryParams p;
    p.k = 3;
    const auto out =
        runQuery("ptsu", core::ShaderKind::QueryKnn, 8, false, p);
    // 9000 points, 64 queries: every query has 3 neighbors.
    EXPECT_EQ(out.query.found, 64u * 3u);
    EXPECT_EQ(out.query.rounds, 64u * 3u);
}

TEST(QuerySemantics, ContainIssuesExactlyStepsRounds)
{
    query::QueryParams p;
    p.steps = 6;
    const auto out =
        runQuery("amrs", core::ShaderKind::QueryContain, 8, false, p);
    EXPECT_EQ(out.query.rounds, 64u * 6u);
    // The AMR grid tiles its domain, so every locate step lands in
    // some leaf cell.
    EXPECT_EQ(out.query.found, 64u * 6u);
    EXPECT_TRUE(out.query.oracleMatches());
}

TEST(QuerySemantics, LargerRadiusFindsMoreNeighbors)
{
    query::QueryParams small;
    small.radius = 0.1f;
    query::QueryParams large;
    large.radius = 0.3f;
    const auto a = runQuery("ptss", core::ShaderKind::QueryRadius, 8,
                            false, small);
    const auto b = runQuery("ptss", core::ShaderKind::QueryRadius, 8,
                            false, large);
    EXPECT_LT(a.query.found, b.query.found);
    EXPECT_TRUE(a.query.oracleMatches());
    EXPECT_TRUE(b.query.oracleMatches());
}

TEST(QuerySemantics, VerifyOffSkipsOracle)
{
    query::QueryParams p;
    p.verify = false;
    const auto out =
        runQuery("ptsu", core::ShaderKind::QueryKnn, 8, false, p);
    EXPECT_TRUE(out.query.enabled);
    EXPECT_FALSE(out.query.verified);
    EXPECT_FALSE(out.query.oracleMatches());
    EXPECT_EQ(out.query.oracle_checked, 0u);
}

} // namespace

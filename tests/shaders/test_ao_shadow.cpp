/**
 * @file
 * Tests for the ambient-occlusion and shadow shader workloads
 * (paper Section 7.3).
 */

#include <gtest/gtest.h>

#include "bvh/wide_bvh.hpp"
#include "gpu/gpu.hpp"
#include "scene/generators.hpp"
#include "shaders/ao.hpp"
#include "shaders/path_tracer.hpp"
#include "shaders/shadow.hpp"

namespace {

using namespace cooprt;
using shaders::AmbientOcclusionProgram;
using shaders::AoParams;
using shaders::Film;
using shaders::LightSampler;
using shaders::makeAmbientOcclusionFrame;
using shaders::makeShadowFrame;
using shaders::ShadowParams;

struct WorkloadFixture
{
    scene::Scene sc = scene::makeObjectScene("obj", 9, 20);
    bvh::FlatBvh flat{bvh::buildWideBvh(sc.mesh)};

    gpu::GpuConfig
    cfg(bool coop = false)
    {
        gpu::GpuConfig c;
        c.num_sms = 2;
        c.mem.num_sms = 2;
        c.mem.l1 = {16 * 1024, 0, 128, 20};
        c.mem.l2 = {256 * 1024, 8, 128, 80};
        c.mem.l2_banks = 2;
        c.mem.dram.channels = 2;
        c.trace.coop = coop;
        return c;
    }

    gpu::GpuRunResult
    run(std::vector<std::unique_ptr<gpu::WarpProgram>> programs,
        bool coop = false)
    {
        std::vector<gpu::WarpProgram *> ptrs;
        for (auto &p : programs)
            ptrs.push_back(p.get());
        gpu::Gpu g(flat, sc.mesh, cfg(coop));
        return g.run(ptrs);
    }
};

TEST(AoShader, CoversAllPixels)
{
    WorkloadFixture f;
    Film film(12, 12);
    f.run(makeAmbientOcclusionFrame(f.sc, &film, 12, 12));
    EXPECT_EQ(film.samplesAdded(), 144u);
}

TEST(AoShader, ValuesWithinUnitRange)
{
    WorkloadFixture f;
    Film film(12, 12);
    f.run(makeAmbientOcclusionFrame(f.sc, &film, 12, 12));
    for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 12; ++x) {
            EXPECT_GE(film.pixel(x, y).x, 0.0f) << x << "," << y;
            EXPECT_LE(film.pixel(x, y).x, 1.0f) << x << "," << y;
        }
}

TEST(AoShader, SkyPixelsFullyUnoccluded)
{
    WorkloadFixture f;
    Film film(12, 12);
    f.run(makeAmbientOcclusionFrame(f.sc, &film, 12, 12));
    // The top-left corner looks above the object into the sky.
    EXPECT_FLOAT_EQ(film.pixel(0, 0).x, 1.0f);
}

TEST(AoShader, SomeOcclusionNearGroundContact)
{
    WorkloadFixture f;
    AoParams p;
    p.samples = 8;
    Film film(24, 24);
    f.run(makeAmbientOcclusionFrame(f.sc, &film, 24, 24, p));
    // At least one surface pixel must be partially occluded.
    bool any_occluded = false;
    for (int y = 0; y < 24; ++y)
        for (int x = 0; x < 24; ++x)
            any_occluded |= film.pixel(x, y).x < 0.99f;
    EXPECT_TRUE(any_occluded);
}

TEST(AoShader, TraceCountMatchesSamples)
{
    WorkloadFixture f;
    AoParams p;
    p.samples = 3;
    auto r = f.run(makeAmbientOcclusionFrame(f.sc, nullptr, 8, 8, p));
    // 2 warps x (1 primary + up to 3 AO rounds).
    EXPECT_GE(r.rt.retired_warps, 2u);
    EXPECT_LE(r.rt.retired_warps, 8u);
}

TEST(AoShader, CoopDoesNotChangeImage)
{
    WorkloadFixture f;
    Film base(12, 12), coop(12, 12);
    f.run(makeAmbientOcclusionFrame(f.sc, &base, 12, 12), false);
    f.run(makeAmbientOcclusionFrame(f.sc, &coop, 12, 12), true);
    for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 12; ++x)
            EXPECT_EQ(base.pixel(x, y).x, coop.pixel(x, y).x)
                << x << "," << y;
}

TEST(LightSamplerTest, FindsEmissiveTriangles)
{
    WorkloadFixture f;
    LightSampler ls(f.sc);
    EXPECT_TRUE(ls.hasLights());
    geom::Pcg32 rng(4);
    // Sampled points lie on the light quad (y = 6 plane in the
    // object scene).
    for (int i = 0; i < 50; ++i) {
        geom::Vec3 p = ls.samplePoint(rng);
        EXPECT_NEAR(p.y, 6.0f, 1e-3f);
        EXPECT_GE(p.x, 3.0f - 1e-3f);
        EXPECT_LE(p.x, 5.0f + 1e-3f);
    }
}

TEST(LightSamplerTest, NoLightsFallsBackGracefully)
{
    scene::Scene bare;
    bare.mesh.addTriangle({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
    LightSampler ls(bare);
    EXPECT_FALSE(ls.hasLights());
    geom::Pcg32 rng(5);
    EXPECT_NO_THROW(ls.samplePoint(rng));
}

TEST(ShadowShader, CoversAllPixels)
{
    WorkloadFixture f;
    LightSampler ls(f.sc);
    Film film(12, 12);
    f.run(makeShadowFrame(f.sc, ls, &film, 12, 12));
    EXPECT_EQ(film.samplesAdded(), 144u);
}

TEST(ShadowShader, ValuesWithinExpectedRange)
{
    WorkloadFixture f;
    LightSampler ls(f.sc);
    Film film(12, 12);
    f.run(makeShadowFrame(f.sc, ls, &film, 12, 12));
    for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 12; ++x) {
            EXPECT_GE(film.pixel(x, y).x, 0.15f - 1e-5f);
            EXPECT_LE(film.pixel(x, y).x, 1.0f + 1e-5f);
        }
}

TEST(ShadowShader, ProducesBothLitAndShadowedPixels)
{
    WorkloadFixture f;
    LightSampler ls(f.sc);
    ShadowParams p;
    p.samples = 2;
    Film film(24, 24);
    f.run(makeShadowFrame(f.sc, ls, &film, 24, 24, p));
    bool any_lit = false, any_shadow = false;
    for (int y = 0; y < 24; ++y)
        for (int x = 0; x < 24; ++x) {
            const float v = film.pixel(x, y).x;
            any_lit |= v > 0.9f;
            any_shadow |= v < 0.6f;
        }
    EXPECT_TRUE(any_lit);
    EXPECT_TRUE(any_shadow);
}

TEST(ShadowShader, CoopDoesNotChangeImage)
{
    WorkloadFixture f;
    LightSampler ls(f.sc);
    Film base(10, 10), coop(10, 10);
    f.run(makeShadowFrame(f.sc, ls, &base, 10, 10), false);
    f.run(makeShadowFrame(f.sc, ls, &coop, 10, 10), true);
    for (int y = 0; y < 10; ++y)
        for (int x = 0; x < 10; ++x)
            EXPECT_EQ(base.pixel(x, y).x, coop.pixel(x, y).x);
}

TEST(Workloads, AoAndShadowAreCheaperThanPathTracingInClosedScene)
{
    // The paper's Section 7.3 observation: AO/SH are lightweight
    // compared to PT — which shows where PT actually runs its full
    // bounce loop, i.e. in an enclosed scene. (In an open scene PT
    // paths escape after a bounce or two and the contrast vanishes.)
    scene::Scene room = scene::makeClosedRoomScene("r", 3, 8, 0.0f, 8);
    bvh::FlatBvh flat(bvh::buildWideBvh(room.mesh));
    LightSampler ls(room);

    WorkloadFixture f; // only for cfg()
    auto run = [&](std::vector<std::unique_ptr<gpu::WarpProgram>> ps) {
        std::vector<gpu::WarpProgram *> ptrs;
        for (auto &p : ps)
            ptrs.push_back(p.get());
        gpu::Gpu g(flat, room.mesh, f.cfg());
        return g.run(ptrs);
    };

    auto r_ao = run(makeAmbientOcclusionFrame(room, nullptr, 16, 16));
    auto r_sh = run(makeShadowFrame(room, ls, nullptr, 16, 16));
    auto r_pt = run(shaders::makePathTracerFrame(
        room, nullptr, 16, 16, shaders::PtParams{}));

    EXPECT_LT(r_ao.rt.node_fetches + r_ao.rt.leaf_fetches,
              r_pt.rt.node_fetches + r_pt.rt.leaf_fetches);
    EXPECT_LT(r_sh.rt.node_fetches + r_sh.rt.leaf_fetches,
              r_pt.rt.node_fetches + r_pt.rt.leaf_fetches);
    EXPECT_LT(r_ao.cycles, r_pt.cycles);
}

} // namespace

/**
 * @file
 * Tests for the Film frame buffer.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "shaders/film.hpp"

namespace {

using cooprt::geom::Vec3;
using cooprt::shaders::Film;

TEST(Film, StartsBlack)
{
    Film f(4, 3);
    EXPECT_EQ(f.width(), 4);
    EXPECT_EQ(f.height(), 3);
    EXPECT_EQ(f.pixel(0, 0), Vec3(0, 0, 0));
    EXPECT_DOUBLE_EQ(f.averageLuminance(), 0.0);
}

TEST(Film, AddAccumulates)
{
    Film f(2, 2);
    f.add(1, 0, {0.5f, 0.25f, 0.0f});
    f.add(1, 0, {0.5f, 0.25f, 0.0f});
    EXPECT_EQ(f.pixel(1, 0), Vec3(1.0f, 0.5f, 0.0f));
    EXPECT_EQ(f.samplesAdded(), 2u);
}

TEST(Film, AverageLuminanceOfUniformGray)
{
    Film f(8, 8);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            f.add(x, y, Vec3(1.0f));
    EXPECT_NEAR(f.averageLuminance(), 1.0, 1e-6);
}

TEST(Film, WritePpmProducesValidHeaderAndSize)
{
    Film f(5, 4);
    f.add(2, 1, {1, 0, 0});
    const std::string path = "/tmp/cooprt_film_test.ppm";
    f.writePpm(path);

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::string magic;
    int w = 0, h = 0, maxv = 0;
    in >> magic >> w >> h >> maxv;
    EXPECT_EQ(magic, "P6");
    EXPECT_EQ(w, 5);
    EXPECT_EQ(h, 4);
    EXPECT_EQ(maxv, 255);
    in.get(); // single whitespace after header
    std::vector<char> data(5 * 4 * 3);
    in.read(data.data(), std::streamsize(data.size()));
    EXPECT_EQ(in.gcount(), std::streamsize(data.size()));
    std::remove(path.c_str());
}

TEST(Film, PpmGammaMapsFullWhiteTo255)
{
    Film f(1, 1);
    f.add(0, 0, Vec3(1.0f));
    const std::string path = "/tmp/cooprt_film_white.ppm";
    f.writePpm(path);
    std::ifstream in(path, std::ios::binary);
    std::string magic;
    int w, h, maxv;
    in >> magic >> w >> h >> maxv;
    in.get();
    unsigned char rgb[3];
    in.read(reinterpret_cast<char *>(rgb), 3);
    EXPECT_EQ(rgb[0], 255);
    EXPECT_EQ(rgb[1], 255);
    EXPECT_EQ(rgb[2], 255);
    std::remove(path.c_str());
}

TEST(Film, WriteToBadPathThrows)
{
    Film f(1, 1);
    EXPECT_THROW(f.writePpm("/nonexistent_dir_xyz/file.ppm"),
                 std::runtime_error);
}

} // namespace

namespace {

using cooprt::shaders::Film;
using cooprt::geom::Vec3;

TEST(FilmMetrics, MseOfIdenticalIsZero)
{
    Film a(4, 4), b(4, 4);
    a.add(1, 1, Vec3(0.5f));
    b.add(1, 1, Vec3(0.5f));
    EXPECT_DOUBLE_EQ(a.mse(b), 0.0);
    EXPECT_TRUE(std::isinf(a.psnr(b)));
}

TEST(FilmMetrics, MseOfKnownDifference)
{
    Film a(2, 1), b(2, 1);
    a.add(0, 0, Vec3(1.0f, 0.0f, 0.0f));
    // one channel of six differs by 1 -> MSE = 1/6.
    EXPECT_NEAR(a.mse(b), 1.0 / 6.0, 1e-12);
    EXPECT_NEAR(a.psnr(b), 10.0 * std::log10(6.0), 1e-9);
}

TEST(FilmMetrics, MseSymmetric)
{
    Film a(3, 3), b(3, 3);
    a.add(2, 2, Vec3(0.25f, 0.5f, 0.75f));
    b.add(0, 1, Vec3(0.1f, 0.0f, 0.9f));
    EXPECT_DOUBLE_EQ(a.mse(b), b.mse(a));
}

TEST(FilmMetrics, DimensionMismatchThrows)
{
    Film a(2, 2), b(3, 2);
    EXPECT_THROW(a.mse(b), std::invalid_argument);
}

} // namespace

/**
 * @file
 * Tests for the path-tracing workload — including the cross-check
 * that the timing-level program produces exactly the same image as
 * the functional reference renderer.
 */

#include <gtest/gtest.h>

#include "bvh/wide_bvh.hpp"
#include "gpu/gpu.hpp"
#include "scene/generators.hpp"
#include "shaders/path_tracer.hpp"

namespace {

using namespace cooprt;
using shaders::Film;
using shaders::makePathTracerFrame;
using shaders::PtParams;
using shaders::renderReference;

struct PtFixture
{
    scene::Scene sc = scene::makeClosedRoomScene("room", 3, 8, 0.0f, 8);
    bvh::FlatBvh flat{bvh::buildWideBvh(sc.mesh)};

    gpu::GpuConfig
    cfg(bool coop = false)
    {
        gpu::GpuConfig c;
        c.num_sms = 2;
        c.mem.num_sms = 2;
        c.mem.l1 = {16 * 1024, 0, 128, 20};
        c.mem.l2 = {256 * 1024, 8, 128, 80};
        c.mem.l2_banks = 2;
        c.mem.dram.channels = 2;
        c.trace.coop = coop;
        return c;
    }

    gpu::GpuRunResult
    runFrame(Film *film, int res, bool coop, const PtParams &p = {})
    {
        auto programs = makePathTracerFrame(sc, film, res, res, p);
        std::vector<gpu::WarpProgram *> ptrs;
        for (auto &up : programs)
            ptrs.push_back(up.get());
        gpu::Gpu g(flat, sc.mesh, cfg(coop));
        return g.run(ptrs);
    }
};

TEST(PathTracer, FrameCoversAllPixelsExactlyOnce)
{
    PtFixture f;
    Film film(16, 16);
    f.runFrame(&film, 16, false);
    EXPECT_EQ(film.samplesAdded(), 256u);
}

TEST(PathTracer, TimingProgramMatchesReferenceImage)
{
    PtFixture f;
    const int res = 16;
    PtParams params;
    params.max_bounces = 6;

    Film timing(res, res);
    f.runFrame(&timing, res, false, params);

    Film reference(res, res);
    renderReference(f.sc, f.flat, reference, 1, params);

    // Same RNG streams, same traversal results -> identical images.
    for (int y = 0; y < res; ++y)
        for (int x = 0; x < res; ++x) {
            EXPECT_NEAR(timing.pixel(x, y).x, reference.pixel(x, y).x,
                        1e-5f)
                << x << "," << y;
            EXPECT_NEAR(timing.pixel(x, y).y, reference.pixel(x, y).y,
                        1e-5f)
                << x << "," << y;
        }
}

TEST(PathTracer, CoopRenderingIsPixelIdenticalToBaseline)
{
    // The paper's functional-correctness claim end-to-end: enabling
    // CoopRT must not change a single pixel.
    PtFixture f;
    const int res = 16;
    Film base(res, res), coop(res, res);
    f.runFrame(&base, res, false);
    f.runFrame(&coop, res, true);
    for (int y = 0; y < res; ++y)
        for (int x = 0; x < res; ++x)
            EXPECT_EQ(base.pixel(x, y).x, coop.pixel(x, y).x)
                << x << "," << y;
}

TEST(PathTracer, ClosedRoomLitOnlyByCeilingLight)
{
    PtFixture f;
    const int res = 12;
    Film film(res, res);
    f.runFrame(&film, res, false);
    // Some pixels see light (direct or bounced), image is not black.
    EXPECT_GT(film.averageLuminance(), 0.0);
}

TEST(PathTracer, BounceLimitRespected)
{
    PtFixture f;
    PtParams p;
    p.max_bounces = 3;
    auto programs = makePathTracerFrame(f.sc, nullptr, 8, 8, p);
    std::vector<gpu::WarpProgram *> ptrs;
    for (auto &up : programs)
        ptrs.push_back(up.get());
    gpu::Gpu g(f.flat, f.sc.mesh, f.cfg());
    auto r = g.run(ptrs);
    // 2 warps, at most 3 trace_rays each.
    EXPECT_LE(r.rt.retired_warps, 6u);
    EXPECT_GE(r.rt.retired_warps, 2u);
}

TEST(PathTracer, OpenSceneTerminatesFasterThanClosed)
{
    // In an open scene most rays escape after 1-2 bounces; a closed
    // room keeps bouncing to the limit: more trace_rays per warp.
    scene::Scene open_sc = scene::makeObjectScene("o", 5, 16);
    bvh::FlatBvh open_flat(bvh::buildWideBvh(open_sc.mesh));

    PtFixture f; // closed room
    PtParams p;
    p.max_bounces = 16;

    auto run_traces = [&](const scene::Scene &sc,
                          const bvh::FlatBvh &flat) {
        auto programs = makePathTracerFrame(sc, nullptr, 16, 16, p);
        std::vector<gpu::WarpProgram *> ptrs;
        for (auto &up : programs)
            ptrs.push_back(up.get());
        gpu::Gpu g(flat, sc.mesh, f.cfg());
        return g.run(ptrs).rt.retired_warps;
    };

    const auto open_traces = run_traces(open_sc, open_flat);
    const auto closed_traces = run_traces(f.sc, f.flat);
    EXPECT_LT(open_traces, closed_traces);
}

TEST(PathTracer, ReferenceRendererDeterministic)
{
    PtFixture f;
    Film a(8, 8), b(8, 8);
    renderReference(f.sc, f.flat, a);
    renderReference(f.sc, f.flat, b);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            EXPECT_EQ(a.pixel(x, y).x, b.pixel(x, y).x);
}

TEST(PathTracer, SppAveragingReducesVariance)
{
    PtFixture f;
    Film one(8, 8), many(8, 8);
    renderReference(f.sc, f.flat, one, 1);
    renderReference(f.sc, f.flat, many, 8);
    // Not a strict variance test; just sanity that both are lit and
    // finite.
    EXPECT_GT(many.averageLuminance(), 0.0);
    EXPECT_LT(many.averageLuminance(), 100.0);
}

} // namespace

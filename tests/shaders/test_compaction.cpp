/**
 * @file
 * Tests for the active-thread compaction baseline (Wald, HPG'11).
 */

#include <gtest/gtest.h>

#include "bvh/wide_bvh.hpp"
#include "scene/generators.hpp"
#include "shaders/compaction.hpp"

namespace {

using namespace cooprt;
using shaders::CompactionResult;
using shaders::Film;
using shaders::PtParams;
using shaders::runCompactedPathTrace;

struct CompactionFixture
{
    scene::Scene sc = scene::makeObjectScene("obj", 9, 20);
    bvh::FlatBvh flat{bvh::buildWideBvh(sc.mesh)};

    gpu::GpuConfig
    cfg(bool coop = false)
    {
        gpu::GpuConfig c;
        c.num_sms = 2;
        c.mem.num_sms = 2;
        c.mem.l1 = {16 * 1024, 0, 128, 20};
        c.mem.l2 = {256 * 1024, 8, 128, 80};
        c.mem.l2_banks = 2;
        c.mem.dram.channels = 2;
        c.trace.coop = coop;
        return c;
    }
};

TEST(Compaction, ImageIdenticalToUncompactedTracer)
{
    CompactionFixture f;
    const int res = 16;
    PtParams params;
    params.max_bounces = 6;

    Film compacted(res, res);
    runCompactedPathTrace(f.sc, f.flat, f.cfg(), res, params,
                          &compacted);

    Film reference(res, res);
    renderReference(f.sc, f.flat, reference, 1, params);

    for (int y = 0; y < res; ++y)
        for (int x = 0; x < res; ++x) {
            EXPECT_NEAR(compacted.pixel(x, y).x,
                        reference.pixel(x, y).x, 1e-5f)
                << x << "," << y;
        }
    EXPECT_EQ(compacted.samplesAdded(), std::uint64_t(res) * res);
}

TEST(Compaction, WarpCountShrinksAcrossBounces)
{
    CompactionFixture f;
    CompactionResult r =
        runCompactedPathTrace(f.sc, f.flat, f.cfg(), 24);
    ASSERT_GE(r.bounce_warps.size(), 2u);
    // Open scene: most paths die after a bounce or two, so the
    // compacted warp count must shrink fast.
    EXPECT_LT(r.bounce_warps[1], r.bounce_warps[0]);
    EXPECT_LT(r.bounce_warps.back(), r.bounce_warps.front());
}

TEST(Compaction, CyclesAreSumOfBouncePasses)
{
    CompactionFixture f;
    CompactionResult r =
        runCompactedPathTrace(f.sc, f.flat, f.cfg(), 16);
    std::uint64_t sum = 0;
    for (auto c : r.bounce_cycles)
        sum += c;
    EXPECT_EQ(sum, r.cycles);
    EXPECT_GT(r.traces, 0u);
}

TEST(Compaction, WorksWithCoopEnabled)
{
    CompactionFixture f;
    const int res = 16;
    Film film(res, res);
    CompactionResult r =
        runCompactedPathTrace(f.sc, f.flat, f.cfg(true), res,
                              PtParams{}, &film);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(film.samplesAdded(), std::uint64_t(res) * res);

    // Coop must not change the image either.
    Film reference(res, res);
    renderReference(f.sc, f.flat, reference, 1, PtParams{});
    for (int y = 0; y < res; y += 3)
        for (int x = 0; x < res; x += 3)
            EXPECT_NEAR(film.pixel(x, y).x, reference.pixel(x, y).x,
                        1e-5f);
}

TEST(Compaction, FullWarpsExceptLast)
{
    // First bounce of a 16x16 frame: 256 paths = exactly 8 warps.
    CompactionFixture f;
    CompactionResult r =
        runCompactedPathTrace(f.sc, f.flat, f.cfg(), 16);
    EXPECT_EQ(r.bounce_warps[0], 8u);
}

} // namespace

/**
 * @file
 * Tests for the whole-GPU simulator: scheduling, completion,
 * statistics and the baseline-vs-CoopRT behaviour at GPU scope.
 */

#include <gtest/gtest.h>

#include "bvh/traversal.hpp"
#include "gpu_test_util.hpp"

namespace {

using namespace cooprt;
using gpu::Gpu;
using gpu::GpuRunResult;
using rtunit::kWarpSize;
using rtunit::TraceJob;
using testutil::divergentJob;
using testutil::ScriptedProgram;
using testutil::tinyGpu;

scene::Mesh
makeSoup(std::uint64_t seed, int n)
{
    scene::Mesh m;
    geom::Pcg32 rng(seed);
    for (int i = 0; i < n; ++i) {
        geom::Vec3 p = rng.nextInBox(geom::Vec3(-10), geom::Vec3(10));
        m.addTriangle({p, p + rng.nextUnitVector() * 0.5f,
                       p + rng.nextUnitVector() * 0.5f});
    }
    return m;
}

struct Fixture
{
    scene::Mesh mesh;
    bvh::FlatBvh flat;

    explicit Fixture(std::uint64_t seed = 1, int n = 2000)
        : mesh(makeSoup(seed, n)), flat(bvh::buildWideBvh(mesh))
    {}

    GpuRunResult
    run(const gpu::GpuConfig &cfg,
        std::vector<ScriptedProgram> &programs,
        stats::TimelineRecorder *timeline = nullptr)
    {
        Gpu g(flat, mesh, cfg);
        std::vector<gpu::WarpProgram *> ptrs;
        for (auto &p : programs)
            ptrs.push_back(&p);
        return g.run(ptrs, timeline);
    }

    std::vector<ScriptedProgram>
    makePrograms(int warps, int traces_per_warp, std::uint64_t seed)
    {
        geom::Pcg32 rng(seed);
        std::vector<ScriptedProgram> out;
        for (int w = 0; w < warps; ++w) {
            std::vector<TraceJob> jobs;
            for (int k = 0; k < traces_per_warp; ++k)
                jobs.push_back(divergentJob(rng));
            out.emplace_back(std::move(jobs));
        }
        return out;
    }
};

TEST(Gpu, RunsToCompletionAndCountsWarps)
{
    Fixture f;
    auto programs = f.makePrograms(8, 2, 7);
    GpuRunResult r = f.run(tinyGpu(), programs);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.completions.size(), 8u);
    EXPECT_EQ(r.rt.retired_warps, 16u); // 8 warps x 2 traces
    for (auto &p : programs)
        EXPECT_EQ(p.results.size(), 2u);
}

TEST(Gpu, ResultsMatchOracle)
{
    Fixture f(3, 1500);
    geom::Pcg32 rng(11);
    std::vector<TraceJob> jobs{divergentJob(rng), divergentJob(rng)};
    std::vector<ScriptedProgram> programs;
    programs.emplace_back(jobs);
    GpuRunResult r = f.run(tinyGpu(), programs);
    ASSERT_EQ(programs[0].results.size(), 2u);
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        for (int t = 0; t < kWarpSize; ++t) {
            if (!jobs[k].rays[std::size_t(t)])
                continue;
            auto ref = bvh::closestHit(f.flat, f.mesh,
                                       *jobs[k].rays[std::size_t(t)]);
            const auto &got =
                programs[0].results[k].hits[std::size_t(t)];
            ASSERT_EQ(got.hit(), ref.hit()) << k << "/" << t;
            if (ref.hit()) {
                EXPECT_FLOAT_EQ(got.thit, ref.thit) << k << "/" << t;
            }
        }
    }
    (void)r;
}

TEST(Gpu, DeterministicAcrossRuns)
{
    Fixture f;
    auto p1 = f.makePrograms(6, 2, 21);
    auto p2 = f.makePrograms(6, 2, 21);
    GpuRunResult r1 = f.run(tinyGpu(), p1);
    GpuRunResult r2 = f.run(tinyGpu(), p2);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.rt.node_fetches, r2.rt.node_fetches);
    EXPECT_EQ(r1.dram.bytes, r2.dram.bytes);
}

TEST(Gpu, CoopFasterOnDivergentWork)
{
    Fixture f(5, 3000);
    // Very divergent: only 2 active rays per warp, long traversals.
    geom::Pcg32 rng(31);
    std::vector<ScriptedProgram> base_progs, coop_progs;
    for (int w = 0; w < 8; ++w) {
        std::vector<TraceJob> jobs{divergentJob(rng, 2)};
        base_progs.emplace_back(jobs);
        coop_progs.emplace_back(jobs);
    }
    GpuRunResult rb = f.run(tinyGpu(false), base_progs);
    GpuRunResult rc = f.run(tinyGpu(true), coop_progs);
    EXPECT_LT(rc.cycles, rb.cycles);
    EXPECT_GT(rc.rt.steals, 0u);
    // Utilization must improve (Fig. 10's causal story).
    EXPECT_GT(rc.avg_thread_utilization, rb.avg_thread_utilization);
}

TEST(Gpu, StallBreakdownPopulated)
{
    Fixture f;
    auto programs = f.makePrograms(4, 2, 41);
    GpuRunResult r = f.run(tinyGpu(), programs);
    EXPECT_GT(r.stalls.rt, 0u);
    EXPECT_GT(r.stalls.alu, 0u);
    EXPECT_GT(r.stalls.sfu, 0u);
    EXPECT_GT(r.stalls.mem, 0u);
    // trace_ray dominates (the paper's Fig. 1 observation).
    EXPECT_GT(r.stalls.rt, r.stalls.alu + r.stalls.sfu + r.stalls.mem);
}

TEST(Gpu, MemoryStatsPopulated)
{
    Fixture f;
    auto programs = f.makePrograms(4, 1, 51);
    GpuRunResult r = f.run(tinyGpu(), programs);
    EXPECT_GT(r.l1.accesses, 0u);
    EXPECT_GT(r.l2.accesses, 0u);
    EXPECT_GT(r.dram.requests, 0u);
    EXPECT_GT(r.mem_sys.l2_bytes, 0u);
    EXPECT_GT(r.dram_utilization, 0.0);
    EXPECT_LE(r.dram_utilization, 1.0);
    EXPECT_GT(r.l2BytesPerCycle(), 0.0);
    EXPECT_GT(r.dramBytesPerCycle(), 0.0);
}

TEST(Gpu, UtilizationSeriesSane)
{
    Fixture f;
    auto programs = f.makePrograms(8, 3, 61);
    gpu::GpuConfig cfg = tinyGpu();
    cfg.sample_interval = 100;
    GpuRunResult r = f.run(cfg, programs);
    EXPECT_FALSE(r.utilization_series.empty());
    for (double u : r.utilization_series) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
    EXPECT_GT(r.avg_thread_utilization, 0.0);
    EXPECT_LE(r.avg_thread_utilization, 1.0);
    // Profiling is off by default: the summary stays disabled/zero.
    EXPECT_FALSE(r.prof_summary.enabled);
    EXPECT_EQ(r.prof_summary.threads.total(), 0u);
}

TEST(Gpu, ProfilerConservationAndBitIdenticalTiming)
{
    Fixture f;
    auto p1 = f.makePrograms(8, 3, 91);
    auto p2 = f.makePrograms(8, 3, 91);
    GpuRunResult plain = f.run(tinyGpu(), p1);

    prof::Profiler profiler;
    Gpu g(f.flat, f.mesh, tinyGpu());
    g.setProf(&profiler);
    std::vector<gpu::WarpProgram *> ptrs;
    for (auto &p : p2)
        ptrs.push_back(&p);
    GpuRunResult r = g.run(ptrs);

    // Attaching the profiler must not change timing at all.
    EXPECT_EQ(r.cycles, plain.cycles);
    EXPECT_EQ(r.rt.node_fetches, plain.rt.node_fetches);
    EXPECT_EQ(r.stalls.rt, plain.stalls.rt);

    // Conservation: every warp-resident cycle lands in exactly one
    // bucket, so the bucket sum equals the aggregated trace latency
    // and, with the SM-side warp-buffer waits added, stalls.rt.
    ASSERT_TRUE(r.prof_summary.enabled);
    EXPECT_EQ(r.prof_summary.resident_cycles,
              r.rt.retired_trace_latency);
    std::uint64_t resident_sum = 0;
    for (int b = 0; b < prof::kNumBuckets; ++b)
        if (prof::Bucket(b) != prof::Bucket::WarpBufferFull)
            resident_sum += r.prof_summary.buckets[std::size_t(b)];
    EXPECT_EQ(resident_sum, r.prof_summary.resident_cycles);
    EXPECT_EQ(r.prof_summary.rtStallCycles(), r.stalls.rt);
    EXPECT_GT(r.prof_summary.of(prof::Bucket::IssueCompute), 0u);
    EXPECT_GT(r.prof_summary.threads.total(), 0u);
}

TEST(Gpu, MoreWarpsThanBufferStillComplete)
{
    Fixture f;
    auto programs = f.makePrograms(24, 2, 71); // 12 per SM, buffer 4
    GpuRunResult r = f.run(tinyGpu(), programs);
    EXPECT_EQ(r.completions.size(), 24u);
    EXPECT_EQ(r.rt.retired_warps, 48u);
}

TEST(Gpu, ResidencyLimitRespected)
{
    Fixture f;
    gpu::GpuConfig cfg = tinyGpu();
    cfg.max_warps_per_sm = 1; // serialize each SM
    auto programs = f.makePrograms(6, 1, 81);
    GpuRunResult serial = f.run(cfg, programs);

    auto programs2 = f.makePrograms(6, 1, 81);
    GpuRunResult parallel = f.run(tinyGpu(), programs2);
    EXPECT_EQ(serial.completions.size(), 6u);
    EXPECT_GE(serial.cycles, parallel.cycles);
}

TEST(Gpu, SlowestWarpLatencyIsMax)
{
    Fixture f;
    auto programs = f.makePrograms(5, 2, 91);
    GpuRunResult r = f.run(tinyGpu(), programs);
    std::uint64_t expect = 0;
    for (const auto &c : r.completions)
        expect = std::max(expect, c.latency());
    EXPECT_EQ(r.slowestWarpLatency(), expect);
    EXPECT_GT(expect, 0u);
}

TEST(Gpu, LargerWarpBufferHelpsBaselineThroughput)
{
    Fixture f(9, 2500);
    auto p4 = f.makePrograms(16, 2, 95);
    auto p16 = f.makePrograms(16, 2, 95);

    gpu::GpuConfig small = tinyGpu();
    small.trace.warp_buffer_entries = 1;
    gpu::GpuConfig big = tinyGpu();
    big.trace.warp_buffer_entries = 8;

    GpuRunResult rs = f.run(small, p4);
    GpuRunResult rb = f.run(big, p16);
    EXPECT_LT(rb.cycles, rs.cycles); // Fig. 13 baseline trend
}

TEST(Gpu, TimelineRecorderThroughGpuRun)
{
    Fixture f;
    auto programs = f.makePrograms(4, 1, 99);
    stats::TimelineRecorder rec(kWarpSize);
    GpuRunResult r = f.run(tinyGpu(true), programs, &rec);
    (void)r;
    std::uint64_t busy = 0;
    for (int t = 0; t < kWarpSize; ++t)
        busy += rec.busyCycles(t);
    EXPECT_GT(busy, 0u);
}

TEST(Gpu, MismatchedSmCountThrows)
{
    Fixture f;
    gpu::GpuConfig cfg = tinyGpu();
    cfg.num_sms = 3; // mem.num_sms still 2
    EXPECT_THROW(Gpu(f.flat, f.mesh, cfg), std::invalid_argument);
}

TEST(Gpu, EmptyProgramListFinishesInstantly)
{
    Fixture f;
    Gpu g(f.flat, f.mesh, tinyGpu());
    GpuRunResult r = g.run({});
    EXPECT_EQ(r.completions.size(), 0u);
    EXPECT_EQ(r.rt.retired_warps, 0u);
}

} // namespace

/**
 * @file
 * Tests that the named GPU configurations encode the paper's Table 1
 * and Section 7.4, and that the bench-scaled variants preserve the
 * per-SM compute : memory ratios.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_config.hpp"

namespace {

using cooprt::gpu::GpuConfig;

TEST(GpuConfigTable1, Rtx2060MatchesPaper)
{
    GpuConfig c = GpuConfig::rtx2060();
    EXPECT_EQ(c.num_sms, 30);             // # SMs
    EXPECT_EQ(c.max_warps_per_sm, 32);    // max TBs per SM
    EXPECT_EQ(c.trace.warp_buffer_entries, 4); // RT warp buffer
    EXPECT_FALSE(c.trace.coop);           // baseline by default

    // L1: 64 KB fully associative LRU, 20 cycles.
    EXPECT_EQ(c.mem.l1.size_bytes, 64u * 1024);
    EXPECT_EQ(c.mem.l1.assoc, 0u);
    EXPECT_EQ(c.mem.l1.latency, 20u);

    // L2: 3 MB, 16-way LRU, 160 cycles.
    EXPECT_EQ(c.mem.l2.size_bytes, 3u * 1024 * 1024);
    EXPECT_EQ(c.mem.l2.assoc, 16u);
    EXPECT_EQ(c.mem.l2.latency, 160u);

    EXPECT_EQ(c.mem.dram.channels, 6u);
    EXPECT_EQ(c.num_sms, c.mem.num_sms);
}

TEST(GpuConfigTable1, BenchVariantPreservesPerSmRatios)
{
    GpuConfig full = GpuConfig::rtx2060();
    GpuConfig bench = GpuConfig::rtx2060Bench();

    // Same per-SM L1 and the same L2 latency model.
    EXPECT_EQ(bench.mem.l1.size_bytes, full.mem.l1.size_bytes);
    EXPECT_EQ(bench.mem.l2.latency, full.mem.l2.latency);

    // L2 capacity per SM and DRAM bandwidth per SM within 10 %.
    const double l2_per_sm_full =
        double(full.mem.l2.size_bytes) / full.num_sms;
    const double l2_per_sm_bench =
        double(bench.mem.l2.size_bytes) / bench.num_sms;
    EXPECT_NEAR(l2_per_sm_bench / l2_per_sm_full, 1.0, 0.10);

    const double bw_full = full.mem.dram.channels *
                           full.mem.dram.bytes_per_cycle /
                           full.num_sms;
    const double bw_bench = bench.mem.dram.channels *
                            bench.mem.dram.bytes_per_cycle /
                            bench.num_sms;
    EXPECT_NEAR(bw_bench / bw_full, 1.0, 0.10);
}

TEST(GpuConfigTable1, MobileMatchesSection74)
{
    GpuConfig m = GpuConfig::mobileBench();
    // Paper Section 7.4: 8 SMs and 4 memory channels; the bench
    // variant scales SMs but keeps the 4 channels.
    EXPECT_EQ(m.mem.dram.channels, 4u);
    EXPECT_LT(m.num_sms, GpuConfig::rtx2060Bench().num_sms);
    // Less bandwidth per channel than the desktop part.
    EXPECT_LT(m.mem.dram.bytes_per_cycle,
              GpuConfig::rtx2060().mem.dram.bytes_per_cycle);
}

TEST(GpuConfigTable1, MobileIsBandwidthPoorerPerSm)
{
    GpuConfig desk = GpuConfig::rtx2060Bench();
    GpuConfig mob = GpuConfig::mobileBench();
    const double desk_bw = desk.mem.dram.channels *
                           desk.mem.dram.bytes_per_cycle /
                           desk.num_sms;
    const double mob_bw = mob.mem.dram.channels *
                          mob.mem.dram.bytes_per_cycle / mob.num_sms;
    EXPECT_LT(mob_bw, desk_bw);
}

TEST(GpuConfigTable1, SampleIntervalMatchesAerialVision)
{
    // Paper Section 7.1: stats collected every 500 GPU cycles.
    EXPECT_EQ(GpuConfig().sample_interval, 500u);
}

} // namespace

/**
 * @file
 * Shared helpers for GPU-level tests: a scripted warp program that
 * replays a fixed list of trace jobs.
 */

#ifndef COOPRT_TESTS_GPU_TEST_UTIL_HPP
#define COOPRT_TESTS_GPU_TEST_UTIL_HPP

#include <vector>

#include "geom/rng.hpp"
#include "gpu/gpu.hpp"

namespace cooprt::testutil {

/**
 * Replays a fixed sequence of trace jobs with a constant shading
 * cost between them, recording every TraceResult it receives.
 */
class ScriptedProgram : public gpu::WarpProgram
{
  public:
    explicit ScriptedProgram(std::vector<rtunit::TraceJob> jobs,
                             gpu::ShadingCost cost = {10, 2, 3})
        : jobs_(std::move(jobs)), cost_(cost)
    {}

    gpu::WarpAction
    start() override
    {
        return nextAction();
    }

    gpu::WarpAction
    resume(const rtunit::TraceResult &result) override
    {
        results.push_back(result);
        return nextAction();
    }

    std::vector<rtunit::TraceResult> results;

  private:
    gpu::WarpAction
    nextAction()
    {
        gpu::WarpAction a;
        a.cost = cost_;
        if (next_ >= jobs_.size()) {
            a.kind = gpu::WarpAction::Kind::Finish;
            return a;
        }
        a.kind = gpu::WarpAction::Kind::Trace;
        a.trace = jobs_[next_++];
        return a;
    }

    std::vector<rtunit::TraceJob> jobs_;
    gpu::ShadingCost cost_;
    std::size_t next_ = 0;
};

/** A divergent random warp job over a soup of extent ~10. */
inline rtunit::TraceJob
divergentJob(geom::Pcg32 &rng, int rays = rtunit::kWarpSize)
{
    rtunit::TraceJob job;
    for (int t = 0; t < rays; ++t) {
        geom::Vec3 o = rng.nextInBox(geom::Vec3(-20), geom::Vec3(20));
        geom::Vec3 target =
            rng.nextInBox(geom::Vec3(-8), geom::Vec3(8));
        if ((target - o).lengthSq() < 1e-6f)
            continue;
        job.rays[std::size_t(t)] = geom::Ray(o, normalize(target - o));
    }
    return job;
}

/** A tiny GPU config for tests: 2 SMs, small caches, fast to run. */
inline gpu::GpuConfig
tinyGpu(bool coop = false)
{
    gpu::GpuConfig c;
    c.num_sms = 2;
    c.max_warps_per_sm = 8;
    c.mem.num_sms = 2;
    c.mem.l1 = {8 * 1024, 0, 128, 20};
    c.mem.l2 = {64 * 1024, 8, 128, 80};
    c.mem.l2_banks = 2;
    c.mem.dram.channels = 2;
    c.mem.dram.latency = 150;
    c.mem.dram.bytes_per_cycle = 16.0;
    c.trace.coop = coop;
    return c;
}

} // namespace cooprt::testutil

#endif // COOPRT_TESTS_GPU_TEST_UTIL_HPP

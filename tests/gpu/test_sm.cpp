/**
 * @file
 * Tests for the SM model: residency, shading phases, warp-buffer
 * waits and stall attribution, driven directly (no Gpu top).
 */

#include <gtest/gtest.h>

#include "gpu_test_util.hpp"

namespace {

using namespace cooprt;
using gpu::StreamingMultiprocessor;
using rtunit::kNever;
using rtunit::TraceJob;
using testutil::divergentJob;
using testutil::ScriptedProgram;
using testutil::tinyGpu;

scene::Mesh
soup(std::uint64_t seed, int n)
{
    scene::Mesh m;
    geom::Pcg32 rng(seed);
    for (int i = 0; i < n; ++i) {
        geom::Vec3 p = rng.nextInBox(geom::Vec3(-10), geom::Vec3(10));
        m.addTriangle({p, p + rng.nextUnitVector() * 0.5f,
                       p + rng.nextUnitVector() * 0.5f});
    }
    return m;
}

struct SmFixture
{
    scene::Mesh mesh = soup(1, 1200);
    bvh::FlatBvh flat{bvh::buildWideBvh(mesh)};
    gpu::GpuConfig cfg = tinyGpu();

    std::uint64_t
    drive(StreamingMultiprocessor &sm)
    {
        std::uint64_t now = 0, guard = 0;
        while (!sm.done()) {
            const std::uint64_t e = sm.nextEventCycle(now);
            EXPECT_NE(e, kNever) << "SM stalled with pending work";
            if (e == kNever)
                break;
            if (e > now)
                now = e;
            sm.tick(now);
            now++;
            if (++guard > 50'000'000ull) {
                ADD_FAILURE() << "SM tick runaway";
                break;
            }
        }
        return now;
    }
};

TEST(Sm, SingleWarpCompletes)
{
    SmFixture f;
    StreamingMultiprocessor sm(
        0, f.cfg, f.flat, f.mesh,
        [](std::uint64_t, std::uint32_t, std::uint64_t now) {
            return now + 100;
        });
    geom::Pcg32 rng(5);
    ScriptedProgram p({divergentJob(rng)});
    sm.assign(0, &p);
    EXPECT_FALSE(sm.done());
    f.drive(sm);
    EXPECT_TRUE(sm.done());
    ASSERT_EQ(sm.completions().size(), 1u);
    EXPECT_EQ(p.results.size(), 1u);
}

TEST(Sm, ShadingLatencyDelaysTraceSubmission)
{
    SmFixture f;
    // Huge ALU cost: trace must not start before shading completes.
    gpu::ShadingCost heavy{1000, 0, 0}; // 1000 * 2 = 2000 cycles
    StreamingMultiprocessor sm(
        0, f.cfg, f.flat, f.mesh,
        [](std::uint64_t, std::uint32_t, std::uint64_t now) {
            return now + 10;
        });
    geom::Pcg32 rng(6);
    ScriptedProgram p({divergentJob(rng)}, heavy);
    sm.assign(0, &p);
    f.drive(sm);
    ASSERT_EQ(p.results.size(), 1u);
    EXPECT_GE(p.results[0].issue_cycle, 2000u);
}

TEST(Sm, StallClassesMatchShadingCosts)
{
    SmFixture f;
    gpu::ShadingCost cost{10, 5, 2};
    StreamingMultiprocessor sm(
        0, f.cfg, f.flat, f.mesh,
        [](std::uint64_t, std::uint32_t, std::uint64_t now) {
            return now + 50;
        });
    geom::Pcg32 rng(7);
    ScriptedProgram p({divergentJob(rng)}, cost);
    sm.assign(0, &p);
    f.drive(sm);
    // start() and the post-trace resume both carry the cost.
    EXPECT_EQ(sm.stalls().alu, 2u * 10 * f.cfg.alu_latency);
    EXPECT_EQ(sm.stalls().sfu, 2u * 5 * f.cfg.sfu_latency);
    EXPECT_EQ(sm.stalls().mem, 2u * 2 * f.cfg.mem_latency);
    EXPECT_GT(sm.stalls().rt, 0u);
}

TEST(Sm, WarpBufferWaitCountsAsRtStall)
{
    SmFixture f;
    f.cfg.trace.warp_buffer_entries = 1; // force slot contention
    StreamingMultiprocessor sm(
        0, f.cfg, f.flat, f.mesh,
        [](std::uint64_t, std::uint32_t, std::uint64_t now) {
            return now + 500;
        });
    geom::Pcg32 rng(8);
    std::vector<ScriptedProgram> ps;
    for (int i = 0; i < 4; ++i)
        ps.emplace_back(
            std::vector<TraceJob>{divergentJob(rng)});
    for (int i = 0; i < 4; ++i)
        sm.assign(i, &ps[std::size_t(i)]);
    f.drive(sm);
    EXPECT_EQ(sm.completions().size(), 4u);
    // At least three warps waited for the single buffer slot; their
    // wait is attributed to the RT class alongside trace latency.
    std::uint64_t trace_total = 0;
    for (const auto &p : ps)
        trace_total += p.results[0].latency();
    EXPECT_GT(sm.stalls().rt, trace_total);
}

TEST(Sm, ResidencyLimitQueuesPrograms)
{
    SmFixture f;
    f.cfg.max_warps_per_sm = 2;
    StreamingMultiprocessor sm(
        0, f.cfg, f.flat, f.mesh,
        [](std::uint64_t, std::uint32_t, std::uint64_t now) {
            return now + 100;
        });
    geom::Pcg32 rng(9);
    std::vector<ScriptedProgram> ps;
    for (int i = 0; i < 5; ++i)
        ps.emplace_back(
            std::vector<TraceJob>{divergentJob(rng)});
    for (int i = 0; i < 5; ++i)
        sm.assign(i, &ps[std::size_t(i)]);
    f.drive(sm);
    EXPECT_EQ(sm.completions().size(), 5u);
    for (const auto &p : ps)
        EXPECT_EQ(p.results.size(), 1u);
}

TEST(Sm, CompletionLatenciesAreOrderedSane)
{
    SmFixture f;
    StreamingMultiprocessor sm(
        0, f.cfg, f.flat, f.mesh,
        [](std::uint64_t, std::uint32_t, std::uint64_t now) {
            return now + 100;
        });
    geom::Pcg32 rng(10);
    ScriptedProgram p({divergentJob(rng), divergentJob(rng)});
    sm.assign(7, &p);
    f.drive(sm);
    ASSERT_EQ(sm.completions().size(), 1u);
    const auto &c = sm.completions()[0];
    EXPECT_EQ(c.warp_id, 7);
    EXPECT_GT(c.finish_cycle, c.start_cycle);
    // Warp lifetime covers both trace latencies plus shading.
    EXPECT_GE(c.latency(), p.results[0].latency() +
                               p.results[1].latency());
}

} // namespace

/**
 * @file
 * Tests for multi-pass execution with warm memory state (used by the
 * per-bounce compaction scheduler).
 */

#include <gtest/gtest.h>

#include "bvh/wide_bvh.hpp"
#include "gpu_test_util.hpp"

namespace {

using namespace cooprt;
using testutil::divergentJob;
using testutil::ScriptedProgram;
using testutil::tinyGpu;

scene::Mesh
soup(std::uint64_t seed, int n)
{
    scene::Mesh m;
    geom::Pcg32 rng(seed);
    for (int i = 0; i < n; ++i) {
        geom::Vec3 p = rng.nextInBox(geom::Vec3(-10), geom::Vec3(10));
        m.addTriangle({p, p + rng.nextUnitVector() * 0.5f,
                       p + rng.nextUnitVector() * 0.5f});
    }
    return m;
}

TEST(WarmMemory, SecondPassIsFasterOnSameWorkingSet)
{
    scene::Mesh mesh = soup(1, 2000);
    bvh::FlatBvh flat(bvh::buildWideBvh(mesh));
    gpu::Gpu g(flat, mesh, tinyGpu());

    geom::Pcg32 rng(2);
    auto job = divergentJob(rng);

    ScriptedProgram p1({job});
    std::vector<gpu::WarpProgram *> v1{&p1};
    const auto cold = g.run(v1);

    ScriptedProgram p2({job});
    std::vector<gpu::WarpProgram *> v2{&p2};
    const auto warm = g.run(v2, nullptr, 0, /*warm_memory=*/true);

    EXPECT_LT(warm.cycles, cold.cycles);
    EXPECT_LT(warm.dram.requests, cold.dram.requests);
}

TEST(WarmMemory, ColdRunsAreReproducible)
{
    scene::Mesh mesh = soup(3, 1500);
    bvh::FlatBvh flat(bvh::buildWideBvh(mesh));
    gpu::Gpu g(flat, mesh, tinyGpu());

    geom::Pcg32 rng(4);
    auto job = divergentJob(rng);

    std::uint64_t cycles[3];
    for (int i = 0; i < 3; ++i) {
        ScriptedProgram p({job});
        std::vector<gpu::WarpProgram *> v{&p};
        cycles[i] = g.run(v).cycles; // default: cold every time
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(cycles[1], cycles[2]);
}

TEST(WarmMemory, StatsRestartEachPass)
{
    scene::Mesh mesh = soup(5, 1000);
    bvh::FlatBvh flat(bvh::buildWideBvh(mesh));
    gpu::Gpu g(flat, mesh, tinyGpu());

    geom::Pcg32 rng(6);
    ScriptedProgram p1({divergentJob(rng)});
    std::vector<gpu::WarpProgram *> v1{&p1};
    const auto first = g.run(v1);
    ASSERT_GT(first.l1.accesses, 0u);

    ScriptedProgram p2({divergentJob(rng)});
    std::vector<gpu::WarpProgram *> v2{&p2};
    const auto second = g.run(v2, nullptr, 0, true);
    // Second pass reports only its own accesses, not cumulative.
    EXPECT_LT(second.l1.accesses, 2 * first.l1.accesses);
    EXPECT_GT(second.l1.accesses, 0u);
}

} // namespace

/**
 * @file
 * Tests for the metric registry: counters, probes, histograms,
 * filter matching, owner unregistration and snapshots.
 */

#include <gtest/gtest.h>

#include "trace/registry.hpp"

namespace {

using cooprt::trace::Histogram;
using cooprt::trace::MetricSample;
using cooprt::trace::nameMatchesFilter;
using cooprt::trace::Registry;

double
valueOf(const std::vector<MetricSample> &snap, const std::string &name)
{
    for (const auto &s : snap)
        if (s.name == name)
            return s.value;
    ADD_FAILURE() << "metric not in snapshot: " << name;
    return -1.0;
}

TEST(NameFilter, EmptyFilterMatchesEverything)
{
    EXPECT_TRUE(nameMatchesFilter("rtunit.sm0.steals", ""));
    EXPECT_TRUE(nameMatchesFilter("", ""));
}

TEST(NameFilter, ExactMatch)
{
    EXPECT_TRUE(nameMatchesFilter("mem.l2.misses", "mem.l2.misses"));
    EXPECT_FALSE(nameMatchesFilter("mem.l2.misses", "mem.l2.miss"));
    EXPECT_FALSE(nameMatchesFilter("mem.l2.miss", "mem.l2.misses"));
}

TEST(NameFilter, PrefixWildcard)
{
    EXPECT_TRUE(nameMatchesFilter("rtunit.sm0.steals", "rtunit.*"));
    EXPECT_TRUE(nameMatchesFilter("rtunit.sm11.steals", "rtunit.*"));
    EXPECT_FALSE(nameMatchesFilter("mem.l2.misses", "rtunit.*"));
    // `*` alone matches everything.
    EXPECT_TRUE(nameMatchesFilter("anything.at.all", "*"));
}

TEST(NameFilter, CommaSeparatedListMatchesAnyPattern)
{
    const char *f = "mem.l2.*,rtunit.sm0.*";
    EXPECT_TRUE(nameMatchesFilter("mem.l2.misses", f));
    EXPECT_TRUE(nameMatchesFilter("rtunit.sm0.steals", f));
    EXPECT_FALSE(nameMatchesFilter("rtunit.sm1.steals", f));
    EXPECT_FALSE(nameMatchesFilter("mem.l1.misses", f));
}

TEST(Registry, CounterSlotsAreStableAndShared)
{
    Registry reg;
    std::uint64_t &c = reg.counter("gpu.cycles");
    c = 41;
    reg.counter("gpu.cycles")++;
    EXPECT_EQ(c, 42u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, ProbesReadLiveState)
{
    Registry reg;
    std::uint64_t live = 7;
    reg.probe("rtunit.sm0.node_fetches",
              [&live] { return double(live); });
    EXPECT_DOUBLE_EQ(
        valueOf(reg.snapshot(), "rtunit.sm0.node_fetches"), 7.0);
    live = 9;
    EXPECT_DOUBLE_EQ(
        valueOf(reg.snapshot(), "rtunit.sm0.node_fetches"), 9.0);
}

TEST(Registry, ReRegisteringAProbeOverwrites)
{
    Registry reg;
    reg.probe("m", [] { return 1.0; });
    reg.probe("m", [] { return 2.0; });
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_DOUBLE_EQ(valueOf(reg.snapshot(), "m"), 2.0);
}

TEST(Registry, UnregisterOwnerDropsOnlyThatOwnersProbes)
{
    Registry reg;
    int a = 0, b = 0;
    reg.probe("owned.a", [] { return 1.0; }, &a);
    reg.probe("owned.b", [] { return 2.0; }, &a);
    reg.probe("kept.c", [] { return 3.0; }, &b);
    reg.unregisterOwner(&a);
    const auto names = reg.names();
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "kept.c");
}

TEST(Registry, SnapshotIsSortedByName)
{
    Registry reg;
    reg.counter("z.last") = 1;
    reg.counter("a.first") = 2;
    reg.probe("m.middle", [] { return 3.0; });
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "a.first");
    EXPECT_EQ(snap[1].name, "m.middle");
    EXPECT_EQ(snap[2].name, "z.last");
}

TEST(Registry, SnapshotHonorsFilter)
{
    Registry reg;
    reg.counter("rtunit.sm0.steals") = 5;
    reg.counter("mem.l2.misses") = 6;
    const auto snap = reg.snapshot("rtunit.*");
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].name, "rtunit.sm0.steals");
    EXPECT_DOUBLE_EQ(snap[0].value, 5.0);
}

TEST(Registry, ClearEmptiesEverything)
{
    Registry reg;
    reg.counter("c") = 1;
    reg.histogram("h").record(2);
    reg.probe("p", [] { return 3.0; });
    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Histogram, BucketOfIsLog2)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0);
    EXPECT_EQ(Histogram::bucketOf(1), 1);
    EXPECT_EQ(Histogram::bucketOf(2), 2);
    EXPECT_EQ(Histogram::bucketOf(3), 2);
    EXPECT_EQ(Histogram::bucketOf(4), 3);
    EXPECT_EQ(Histogram::bucketOf(1023), 10);
    EXPECT_EQ(Histogram::bucketOf(1024), 11);
    EXPECT_EQ(Histogram::bucketOf(~std::uint64_t(0)), 64);
}

TEST(Histogram, TracksCountSumMaxMean)
{
    Histogram h;
    h.record(0);
    h.record(10);
    h.record(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 40u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_DOUBLE_EQ(h.mean(), 40.0 / 3.0);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[std::size_t(Histogram::bucketOf(10))], 1u);
}

TEST(Histogram, EmptyMeanIsZero)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Registry, HistogramsExpandInSnapshots)
{
    Registry reg;
    Histogram &h = reg.histogram("rtunit.sm0.trace_latency");
    h.record(100);
    h.record(300);
    const auto snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(
        valueOf(snap, "rtunit.sm0.trace_latency.count"), 2.0);
    EXPECT_DOUBLE_EQ(
        valueOf(snap, "rtunit.sm0.trace_latency.sum"), 400.0);
    EXPECT_DOUBLE_EQ(
        valueOf(snap, "rtunit.sm0.trace_latency.max"), 300.0);
    EXPECT_DOUBLE_EQ(
        valueOf(snap, "rtunit.sm0.trace_latency.mean"), 200.0);
}

} // namespace

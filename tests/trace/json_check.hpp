/**
 * @file
 * A minimal recursive-descent JSON validator for tests: enough to
 * assert that exported trace/report documents are well-formed
 * without pulling a JSON library into the build.
 */

#ifndef COOPRT_TESTS_TRACE_JSON_CHECK_HPP
#define COOPRT_TESTS_TRACE_JSON_CHECK_HPP

#include <cctype>
#include <string_view>

namespace cooprt::testutil {

class JsonChecker
{
  public:
    explicit JsonChecker(std::string_view text) : text_(text) {}

    /** True when the whole input is exactly one valid JSON value. */
    bool
    valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        ws();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        ws();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        ws();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            ws();
            if (peek() != '"' || !string())
                return false;
            ws();
            if (peek() != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        ws();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control char: invalid JSON
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                const char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(text_[pos_])))
                            return false;
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return false;
                }
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!digits())
            return false;
        if (peek() == '.') {
            ++pos_;
            if (!digits())
                return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digits())
                return false;
        }
        return pos_ > start;
    }

    bool
    digits()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    void
    ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

/** Convenience wrapper. */
inline bool
isValidJson(std::string_view text)
{
    return JsonChecker(text).valid();
}

} // namespace cooprt::testutil

#endif // COOPRT_TESTS_TRACE_JSON_CHECK_HPP

/**
 * @file
 * Tests for the shared JSON string escaping (the fix for the report
 * writer's unescaped-string bug) and for the test-side validator.
 */

#include <gtest/gtest.h>

#include "json_check.hpp"
#include "trace/json.hpp"

namespace {

using cooprt::testutil::isValidJson;
using cooprt::trace::escapeJson;
using cooprt::trace::quoteJson;

TEST(JsonEscape, PassesPlainStringsThrough)
{
    EXPECT_EQ(escapeJson("crnvl"), "crnvl");
    EXPECT_EQ(escapeJson(""), "");
    EXPECT_EQ(escapeJson("rtunit.sm0.node_fetches"),
              "rtunit.sm0.node_fetches");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(escapeJson("a\"b"), "a\\\"b");
    EXPECT_EQ(escapeJson("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeJson("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, EscapesCommonControlCharacters)
{
    EXPECT_EQ(escapeJson("a\nb"), "a\\nb");
    EXPECT_EQ(escapeJson("a\tb"), "a\\tb");
    EXPECT_EQ(escapeJson("a\rb"), "a\\rb");
    EXPECT_EQ(escapeJson("a\bb"), "a\\bb");
    EXPECT_EQ(escapeJson("a\fb"), "a\\fb");
}

TEST(JsonEscape, EscapesRareControlCharactersAsUnicode)
{
    EXPECT_EQ(escapeJson(std::string("a") + '\x01' + "b"),
              "a\\u0001b");
    EXPECT_EQ(escapeJson(std::string("a") + '\x1f' + "b"),
              "a\\u001fb");
    EXPECT_EQ(escapeJson(std::string("\0", 1)), "\\u0000");
}

TEST(JsonEscape, QuoteJsonProducesValidJsonStrings)
{
    const std::string nasty =
        "scene \"one\\two\"\n\twith\rcontrol\x02 chars";
    EXPECT_TRUE(isValidJson(quoteJson(nasty)));
    EXPECT_TRUE(isValidJson(quoteJson("")));
    EXPECT_TRUE(isValidJson(quoteJson("plain")));
}

TEST(JsonCheck, ValidatorAcceptsAndRejectsCorrectly)
{
    EXPECT_TRUE(isValidJson("{}"));
    EXPECT_TRUE(isValidJson("[1,2.5,-3e4,\"x\",true,false,null]"));
    EXPECT_TRUE(isValidJson("{\"a\":{\"b\":[{}]}}"));
    EXPECT_TRUE(isValidJson("  {\"k\" : \"v\\n\"} "));
    EXPECT_FALSE(isValidJson("{\"a\":}"));
    EXPECT_FALSE(isValidJson("{\"a\":1,}"));
    EXPECT_FALSE(isValidJson("\"unterminated"));
    EXPECT_FALSE(isValidJson("\"raw\ncontrol\""));
    EXPECT_FALSE(isValidJson("[1 2]"));
    EXPECT_FALSE(isValidJson("{} extra"));
}

} // namespace

/**
 * @file
 * Tests for the Chrome trace_event tracer: ring-buffer behavior,
 * export validity, filtering and metadata tracks.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "json_check.hpp"
#include "trace/chrome_trace.hpp"

namespace {

using cooprt::testutil::isValidJson;
using cooprt::trace::Tracer;

std::string
exportJson(const Tracer &t)
{
    std::ostringstream ss;
    t.writeJson(ss);
    return ss.str();
}

TEST(Tracer, EmptyExportIsValidJson)
{
    Tracer t(16);
    const std::string json = exportJson(t);
    EXPECT_TRUE(isValidJson(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(Tracer, RecordsAllThreeKinds)
{
    Tracer t(16);
    t.complete("sm", "warp", 0, 3, 100, 50);
    t.instant("rtunit.lbu", "steal", 1, 2, 120);
    t.counter("gpu", "thread_utilization", 0, 500, 0.75);
    EXPECT_EQ(t.recorded(), 3u);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.dropped(), 0u);

    const std::string json = exportJson(t);
    EXPECT_TRUE(isValidJson(json));
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"steal\""), std::string::npos);
}

TEST(Tracer, RingOverwritesOldestAndCountsDropped)
{
    Tracer t(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        t.instant("cat", "e", 0, 0, i);
    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.dropped(), 6u);

    // Oldest-first export: surviving timestamps are 6..9.
    const std::string json = exportJson(t);
    EXPECT_TRUE(isValidJson(json));
    EXPECT_EQ(json.find("\"ts\":5"), std::string::npos);
    const auto p6 = json.find("\"ts\":6");
    const auto p9 = json.find("\"ts\":9");
    EXPECT_NE(p6, std::string::npos);
    EXPECT_NE(p9, std::string::npos);
    EXPECT_LT(p6, p9);
}

TEST(Tracer, ExportFilterMatchesCategoryOrQualifiedName)
{
    Tracer t(16);
    t.instant("rtunit.lbu", "steal", 0, 0, 1);
    t.instant("sm", "warp", 0, 0, 2);
    t.setFilter("rtunit.*");
    std::string json = exportJson(t);
    EXPECT_TRUE(isValidJson(json));
    EXPECT_NE(json.find("steal"), std::string::npos);
    EXPECT_EQ(json.find("\"name\":\"warp\""), std::string::npos);

    // Filtering is applied at export only; recording is unaffected.
    EXPECT_EQ(t.recorded(), 2u);

    // `cat.name` also matches, so "sm.warp" selects the sm event.
    t.setFilter("sm.warp");
    json = exportJson(t);
    EXPECT_NE(json.find("\"name\":\"warp\""), std::string::npos);
    EXPECT_EQ(json.find("steal"), std::string::npos);
}

TEST(Tracer, MetadataNamesAreExported)
{
    Tracer t(16);
    t.processName(0, "SM 0");
    t.threadName(0, 5, "warp 5");
    t.instant("sm", "e", 0, 5, 1);
    const std::string json = exportJson(t);
    EXPECT_TRUE(isValidJson(json));
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("SM 0"), std::string::npos);
    EXPECT_NE(json.find("warp 5"), std::string::npos);
}

TEST(Tracer, ClearDropsDataButKeepsCapacity)
{
    Tracer t(8);
    t.instant("c", "e", 0, 0, 1);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.capacity(), 8u);
    EXPECT_TRUE(isValidJson(exportJson(t)));
}

TEST(Tracer, TrackNamesSurviveRingWraparound)
{
    // Track metadata lives outside the event ring: a burst that
    // evicts every early event must not take the processName /
    // threadName records registered alongside them with it, and the
    // export must stay valid JSON. This is what keeps long ray-trace
    // sessions loadable in Perfetto: the named per-warp tracks are
    // registered once at emit time, while events churn through the
    // ring.
    Tracer t(4);
    t.processName(0, "SM 0");
    t.threadName(0, 7, "rays w7");
    t.instant("ray", "launch", 0, 7, 1);
    for (std::uint64_t i = 0; i < 64; ++i)
        t.instant("ray", "pop", 0, 7, 2 + i);

    EXPECT_EQ(t.size(), 4u);
    EXPECT_GT(t.dropped(), 0u);
    // The launch event itself was evicted...
    const std::string json = exportJson(t);
    EXPECT_TRUE(isValidJson(json));
    EXPECT_EQ(json.find("\"name\":\"launch\""), std::string::npos);
    // ...but both name records survived eviction.
    EXPECT_NE(json.find("SM 0"), std::string::npos);
    EXPECT_NE(json.find("rays w7"), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST(Tracer, MacrosAreNullSafe)
{
    Tracer *none = nullptr;
    COOPRT_TRACE_COMPLETE(none, "c", "n", 0, 0, 1, 2);
    COOPRT_TRACE_INSTANT(none, "c", "n", 0, 0, 1);
    COOPRT_TRACE_COUNTER(none, "c", "n", 0, 1, 2.0);

    Tracer t(8);
    Tracer *some = &t;
    COOPRT_TRACE_COMPLETE(some, "c", "n", 0, 0, 1, 2);
    COOPRT_TRACE_INSTANT(some, "c", "n", 0, 0, 1);
    COOPRT_TRACE_COUNTER(some, "c", "n", 0, 1, 2.0);
    EXPECT_EQ(t.recorded(), 3u);
}

TEST(Tracer, CounterValuesSurviveRoundTrip)
{
    Tracer t(8);
    t.counter("gpu", "util", 2, 500, 0.25);
    const std::string json = exportJson(t);
    EXPECT_TRUE(isValidJson(json));
    EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
    EXPECT_NE(json.find("0.25"), std::string::npos);
}

} // namespace

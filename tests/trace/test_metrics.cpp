/**
 * @file
 * Tests for the periodic registry sampler: boundary semantics
 * (matching stats::ActivitySampler), column fixing, filtering and
 * CSV export.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "stats/sampler.hpp"
#include "trace/metrics.hpp"
#include "trace/registry.hpp"

namespace {

using cooprt::stats::ActivitySampler;
using cooprt::trace::MetricsSampler;
using cooprt::trace::Registry;

TEST(MetricsSampler, DueAtStartAndAdvances)
{
    Registry reg;
    MetricsSampler m(&reg, 500);
    EXPECT_TRUE(m.due(0));
    m.sample(0);
    EXPECT_FALSE(m.due(499));
    EXPECT_TRUE(m.due(500));
    EXPECT_EQ(m.nextDue(), 500u);
}

TEST(MetricsSampler, SkipAdvancesWithoutRecording)
{
    Registry reg;
    MetricsSampler m(&reg, 500);
    m.skip(0);
    EXPECT_EQ(m.sampleCount(), 0u);
    EXPECT_EQ(m.nextDue(), 500u);
    m.skip(1700); // advances past idle gap, no back-filling
    EXPECT_EQ(m.nextDue(), 2000u);
}

TEST(MetricsSampler, BoundariesMatchActivitySampler)
{
    // The acceptance criterion behind `--metrics`: driven on the
    // same cycles, both samplers agree on every boundary decision.
    Registry reg;
    ActivitySampler a(500);
    MetricsSampler m(&reg, 500);
    const std::uint64_t cycles[] = {0, 500, 5000, 5500, 9999, 10000};
    for (std::uint64_t c : cycles) {
        ASSERT_EQ(a.due(c), m.due(c)) << "cycle " << c;
        if (!a.due(c))
            continue;
        a.sample(c, 1, 2);
        m.sample(c);
        ASSERT_EQ(a.nextDue(), m.nextDue()) << "cycle " << c;
    }
    EXPECT_EQ(a.sampleCount(), m.sampleCount());
}

TEST(MetricsSampler, ColumnsFixedAtFirstSample)
{
    Registry reg;
    reg.counter("a") = 1;
    MetricsSampler m(&reg, 100);
    m.sample(0);
    ASSERT_EQ(m.columns().size(), 1u);
    // A metric registered after the first sample is not a column;
    // existing columns keep collecting.
    reg.counter("b") = 2;
    reg.counter("a") = 3;
    m.sample(100);
    ASSERT_EQ(m.columns().size(), 1u);
    EXPECT_EQ(m.columns()[0], "a");
    ASSERT_EQ(m.sampleCount(), 2u);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
}

TEST(MetricsSampler, SeriesOfReturnsOneColumn)
{
    Registry reg;
    std::uint64_t &c = reg.counter("rtunit.sm0.steals");
    MetricsSampler m(&reg, 100);
    c = 1;
    m.sample(0);
    c = 4;
    m.sample(100);
    const auto series = m.seriesOf("rtunit.sm0.steals");
    ASSERT_EQ(series.size(), 2u);
    EXPECT_DOUBLE_EQ(series[0], 1.0);
    EXPECT_DOUBLE_EQ(series[1], 4.0);
    EXPECT_TRUE(m.seriesOf("no.such.metric").empty());
}

TEST(MetricsSampler, FilterRestrictsColumns)
{
    Registry reg;
    reg.counter("rtunit.sm0.steals") = 1;
    reg.counter("mem.l2.misses") = 2;
    MetricsSampler m(&reg, 100, "mem.*");
    m.sample(0);
    ASSERT_EQ(m.columns().size(), 1u);
    EXPECT_EQ(m.columns()[0], "mem.l2.misses");
}

TEST(MetricsSampler, CsvHasHeaderAndOneRowPerSample)
{
    Registry reg;
    std::uint64_t &c = reg.counter("m");
    MetricsSampler m(&reg, 500);
    c = 10;
    m.sample(0);
    c = 20;
    m.sample(500);
    std::ostringstream ss;
    m.writeCsv(ss);
    const std::string csv = ss.str();
    std::istringstream lines(csv);
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "cycle,m");
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line.substr(0, 2), "0,");
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line.substr(0, 4), "500,");
    EXPECT_FALSE(std::getline(lines, line));
}

TEST(MetricsSampler, ResetRestartsBoundariesAndDropsData)
{
    Registry reg;
    reg.counter("m") = 1;
    MetricsSampler m(&reg, 100);
    m.sample(0);
    m.reset();
    EXPECT_EQ(m.sampleCount(), 0u);
    EXPECT_TRUE(m.columns().empty());
    EXPECT_TRUE(m.due(0));
    EXPECT_EQ(m.nextDue(), 0u);
}

TEST(MetricsSampler, IntervalOneSamplesEveryCycle)
{
    Registry reg;
    reg.counter("m") = 1;
    MetricsSampler m(&reg, 1);
    for (std::uint64_t c = 0; c < 5; ++c) {
        ASSERT_TRUE(m.due(c));
        m.sample(c);
        ASSERT_FALSE(m.due(c));
        ASSERT_EQ(m.nextDue(), c + 1);
    }
    EXPECT_EQ(m.sampleCount(), 5u);
}

TEST(MetricsSampler, RowsSurviveRegistryMutation)
{
    // Rows are value copies: exporting after probes die must work.
    Registry reg;
    MetricsSampler m(&reg, 100);
    {
        int live = 5;
        reg.probe("p", [&live] { return double(live); }, &live);
        m.sample(0);
        reg.unregisterOwner(&live);
    }
    ASSERT_EQ(m.sampleCount(), 1u);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 5.0);
    std::ostringstream ss;
    m.writeCsv(ss); // must not touch the dead probe
    EXPECT_NE(ss.str().find("p"), std::string::npos);
}

} // namespace

/**
 * @file
 * Unit tests for `cooprt::telemetry`: RSS parsing, phase spans,
 * derived throughput gauges, the per-run JSON sink's
 * deterministic/host split, the campaign event log and monitor
 * (EWMA/ETA math, Prometheus exposition), the heartbeat thread, and
 * the event log driven by a real `exec::Campaign` with a fake
 * runner (conservation between job lines and campaign_end).
 */

#include <chrono>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "exec/exec.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace cooprt;
using namespace cooprt::telemetry;

TEST(ParseProcStatus, ReadsRssAndPeak)
{
    std::istringstream in("Name:\tsim\n"
                          "VmPeak:\t  123456 kB\n"
                          "VmHWM:\t    4096 kB\n"
                          "VmRSS:\t    2048 kB\n");
    const Rss rss = parseProcStatus(in);
    EXPECT_EQ(rss.current_kb, 2048u);
    EXPECT_EQ(rss.peak_kb, 4096u);
}

TEST(ParseProcStatus, MissingFieldsStayZero)
{
    std::istringstream in("Name:\tsim\nThreads:\t4\n");
    const Rss rss = parseProcStatus(in);
    EXPECT_EQ(rss.current_kb, 0u);
    EXPECT_EQ(rss.peak_kb, 0u);
}

TEST(PhaseNames, StableSnakeCase)
{
    EXPECT_STREQ(phaseName(Phase::SceneLoad), "scene_load");
    EXPECT_STREQ(phaseName(Phase::BvhBuild), "bvh_build");
    EXPECT_STREQ(phaseName(Phase::Warmup), "warmup");
    EXPECT_STREQ(phaseName(Phase::SimLoop), "sim_loop");
    EXPECT_STREQ(phaseName(Phase::Report), "report");
}

TEST(Recorder, PhaseSpansAccumulate)
{
    Recorder rec;
    rec.reset();
    rec.recordPhase(Phase::SimLoop, 0.5);
    rec.recordPhase(Phase::SimLoop, 0.25);
    rec.recordPhase(Phase::Warmup, 0.125);
    const Summary &s = rec.summary();
    EXPECT_DOUBLE_EQ(s.phase(Phase::SimLoop).seconds, 0.75);
    EXPECT_EQ(s.phase(Phase::SimLoop).count, 2u);
    EXPECT_EQ(s.phase(Phase::Warmup).count, 1u);
    EXPECT_EQ(s.phase(Phase::Report).count, 0u);
}

TEST(Recorder, ScopedPhaseTimesItsScope)
{
    Recorder rec;
    rec.reset();
    {
        const auto span = Recorder::span(&rec, Phase::Warmup);
        (void)span;
    }
    EXPECT_EQ(rec.summary().phase(Phase::Warmup).count, 1u);
    EXPECT_GE(rec.summary().phase(Phase::Warmup).seconds, 0.0);
    // Null-recorder tolerance: no crash, nothing recorded.
    {
        const auto span = Recorder::span(nullptr, Phase::Warmup);
        (void)span;
    }
}

TEST(Recorder, FinishRunDerivesThroughput)
{
    Recorder rec;
    rec.reset();
    rec.recordPhase(Phase::SimLoop, 2.0);
    rec.finishRun(10000, 500);
    const Summary &s = rec.summary();
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.cycles, 10000u);
    EXPECT_EQ(s.rays_retired, 500u);
    EXPECT_DOUBLE_EQ(s.sim_seconds, 2.0);
    EXPECT_DOUBLE_EQ(s.cycles_per_sec, 5000.0);
    EXPECT_DOUBLE_EQ(s.rays_per_sec, 250.0);
}

TEST(Recorder, FinishRunWithoutSimLoopHasZeroGauges)
{
    Recorder rec;
    rec.reset();
    rec.finishRun(10000, 500);
    EXPECT_DOUBLE_EQ(rec.summary().cycles_per_sec, 0.0);
    EXPECT_DOUBLE_EQ(rec.summary().rays_per_sec, 0.0);
}

TEST(Recorder, ResetClearsEverything)
{
    Recorder rec;
    rec.reset();
    rec.recordPhase(Phase::SimLoop, 1.0);
    rec.publishProgress(42, 7);
    rec.finishRun(100, 10);
    rec.reset();
    EXPECT_FALSE(rec.summary().enabled);
    EXPECT_EQ(rec.summary().cycles, 0u);
    EXPECT_EQ(rec.summary().phase(Phase::SimLoop).count, 0u);
    EXPECT_EQ(rec.liveCycle(), 0u);
    EXPECT_EQ(rec.liveRays(), 0u);
}

TEST(Recorder, WriteJsonSplitsDeterministicFromHost)
{
    Recorder rec;
    rec.reset();
    rec.recordPhase(Phase::SimLoop, 1.0);
    rec.finishRun(12345, 67);
    std::ostringstream os;
    rec.writeJson(os, "wknd");
    const std::string json = os.str();
    EXPECT_NE(json.find("\"scene\":\"wknd\""), std::string::npos);
    EXPECT_NE(json.find("\"telemetry_version\":1"),
              std::string::npos);
    EXPECT_NE(json.find("\"cycles\":12345"), std::string::npos);
    EXPECT_NE(json.find("\"rays_retired\":67"), std::string::npos);
    // Every nondeterministic field sits inside the "host" object:
    // the deterministic prefix before it must not mention seconds,
    // throughput or RSS.
    const auto host = json.find("\"host\"");
    ASSERT_NE(host, std::string::npos);
    const std::string prefix = json.substr(0, host);
    EXPECT_EQ(prefix.find("seconds"), std::string::npos);
    EXPECT_EQ(prefix.find("rss"), std::string::npos);
    EXPECT_EQ(prefix.find("per_sec"), std::string::npos);
    // The build stamp is part of the deterministic prefix.
    EXPECT_NE(prefix.find("\"build\""), std::string::npos);
    EXPECT_NE(prefix.find("\"revision\""), std::string::npos);
}

TEST(BuildInfo, CompactJsonObject)
{
    const std::string info = buildInfoJson();
    EXPECT_EQ(info.front(), '{');
    EXPECT_EQ(info.back(), '}');
    EXPECT_NE(info.find("\"revision\":"), std::string::npos);
    EXPECT_NE(info.find("\"dirty\":"), std::string::npos);
    EXPECT_NE(info.find("\"compiler\":"), std::string::npos);
    EXPECT_NE(info.find("\"build_type\":"), std::string::npos);
    EXPECT_NE(info.find("\"check\":"), std::string::npos);
}

TEST(EventLog, LinesAreDeterministicFirstHostLast)
{
    std::ostringstream os;
    EventLog log(&os);
    ASSERT_TRUE(log.enabled());
    log.campaignBegin(2, 4);
    log.jobStart(0, "a/base", 1);
    log.jobFinish(0, "a/base", true, 1, 1000, 0.5);
    log.jobRetry(1, "b/coop", 2);
    log.jobTimeout(1, "b/coop", 9.0);
    log.jobFinish(1, "b/coop", false, 2, 0, 9.1);
    CampaignCounters c;
    c.done = 1;
    c.failed = 1;
    c.retried = 1;
    c.timed_out = 1;
    log.campaignEnd(c, 9.6);

    std::istringstream in(os.str());
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_EQ(line.rfind("{\"ev\":\"", 0), 0u) << line;
        // One trailing host object per line.
        const auto host = line.find("\"host\":{");
        ASSERT_NE(host, std::string::npos) << line;
        EXPECT_EQ(line.find("\"t_s\":", host), host + 8) << line;
        EXPECT_EQ(line.back(), '}');
    }
    EXPECT_EQ(lines, 7);
    const std::string all = os.str();
    EXPECT_NE(all.find("{\"ev\":\"campaign_begin\",\"jobs\":2,"),
              std::string::npos);
    EXPECT_NE(all.find("{\"ev\":\"job_finish\",\"index\":0,"
                       "\"tag\":\"a/base\",\"ok\":true,"
                       "\"attempts\":1,\"cycles\":1000,"),
              std::string::npos);
    EXPECT_NE(all.find("{\"ev\":\"campaign_end\",\"done\":1,"
                       "\"failed\":1,\"retried\":1,"
                       "\"timed_out\":1,"),
              std::string::npos);
}

TEST(EventLog, NullStreamDisablesEverything)
{
    EventLog log(nullptr);
    EXPECT_FALSE(log.enabled());
    log.campaignBegin(1, 1); // must not crash
    log.jobStart(0, "x", 1);
    log.campaignEnd({}, 0.0);
}

TEST(CampaignMonitor, EwmaAndEta)
{
    CampaignMonitor mon;
    mon.begin(4, 2);
    CampaignCounters c;
    EXPECT_DOUBLE_EQ(mon.ewmaJobSeconds(), 0.0);
    EXPECT_LT(mon.etaSeconds(c), 0.0); // unknown before a finish

    mon.jobFinished(1.0); // first sample seeds the EWMA directly
    EXPECT_DOUBLE_EQ(mon.ewmaJobSeconds(), 1.0);
    mon.jobFinished(2.0); // alpha = 0.3
    EXPECT_NEAR(mon.ewmaJobSeconds(), 0.3 * 2.0 + 0.7 * 1.0, 1e-12);

    c.done = 2;
    // remaining = 4 - 2 = 2, over 2 workers.
    EXPECT_NEAR(mon.etaSeconds(c), 2.0 * 1.3 / 2.0, 1e-12);
    c.failed = 1;
    EXPECT_NEAR(mon.etaSeconds(c), 1.0 * 1.3 / 2.0, 1e-12);
}

TEST(CampaignMonitor, StatusLineMentionsProgress)
{
    CampaignMonitor mon;
    mon.begin(10, 4);
    mon.jobFinished(0.5);
    CampaignCounters c;
    c.done = 3;
    c.failed = 1;
    c.running = 4;
    const std::string line = mon.statusLine(c);
    EXPECT_NE(line.find("3/10 done"), std::string::npos) << line;
    EXPECT_NE(line.find("1 failed"), std::string::npos) << line;
    EXPECT_NE(line.find("eta"), std::string::npos) << line;
}

TEST(CampaignMonitor, PrometheusExposition)
{
    CampaignMonitor mon;
    mon.begin(4, 2);
    mon.jobFinished(0.25);
    CampaignCounters c;
    c.queued = 4;
    c.done = 1;
    c.running = 2;
    c.steals = 3;
    std::ostringstream os;
    mon.writePrometheusTo(os, c);
    const std::string text = os.str();
    EXPECT_NE(text.find("# HELP cooprt_jobs_done"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE cooprt_jobs_done counter"),
              std::string::npos);
    EXPECT_NE(text.find("cooprt_jobs_done 1"), std::string::npos);
    EXPECT_NE(text.find("cooprt_jobs_queued 4"), std::string::npos);
    EXPECT_NE(text.find("cooprt_steals_total 3"),
              std::string::npos);
    EXPECT_NE(text.find("cooprt_job_seconds_ewma 0.25"),
              std::string::npos);
    EXPECT_NE(text.find("cooprt_build_info{revision="),
              std::string::npos);
    EXPECT_EQ(text.back(), '\n');
}

TEST(HeartbeatTest, BeatsAndStopsPromptly)
{
    std::ostringstream os;
    std::atomic<int> calls{0};
    {
        Heartbeat hb(
            0.01, [&] { ++calls; return std::string("status"); }, os);
        for (int i = 0; i < 200 && hb.beats() == 0; ++i)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        EXPECT_GE(hb.beats(), 1u);
    } // destructor must join without waiting a full interval
    EXPECT_GE(calls.load(), 1);
    EXPECT_NE(os.str().find("[telemetry] status\n"),
              std::string::npos);
}

// Event-log conservation over a real campaign (fake runner, so no
// scenes are built): every job starts and finishes exactly once and
// campaign_end agrees, for both 1 and 4 workers.
TEST(CampaignIntegration, EventLogConservation)
{
    for (int workers : {1, 4}) {
        std::ostringstream os;
        EventLog log(&os);
        CampaignMonitor mon;
        exec::CampaignOptions opt;
        opt.jobs = workers;
        opt.event_log = &log;
        opt.monitor = &mon;
        exec::Campaign campaign(opt);
        for (int i = 0; i < 6; ++i)
            campaign.add(exec::Job{"fake", {},
                                   "job" + std::to_string(i)});
        campaign.setRunner([](const exec::Job &, std::stop_token) {
            core::RunOutcome out;
            out.gpu.cycles = 77;
            return out;
        });
        const auto results = campaign.run();
        ASSERT_EQ(results.size(), 6u);

        const std::string all = os.str();
        std::size_t starts = 0, finishes = 0, pos = 0;
        while ((pos = all.find("\"ev\":\"job_start\"", pos)) !=
               std::string::npos)
            ++starts, ++pos;
        pos = 0;
        while ((pos = all.find("\"ev\":\"job_finish\"", pos)) !=
               std::string::npos)
            ++finishes, ++pos;
        EXPECT_EQ(starts, 6u) << "workers=" << workers;
        EXPECT_EQ(finishes, 6u) << "workers=" << workers;
        EXPECT_NE(all.find("{\"ev\":\"campaign_begin\",\"jobs\":6,"),
                  std::string::npos);
        EXPECT_NE(all.find("{\"ev\":\"campaign_end\",\"done\":6,"
                           "\"failed\":0,"),
                  std::string::npos);
        EXPECT_NE(all.find("\"cycles\":77,"), std::string::npos);
        EXPECT_DOUBLE_EQ(mon.etaSeconds(
                             exec::countersSnapshot(
                                 campaign.stats())),
                         0.0);
    }
}

} // namespace

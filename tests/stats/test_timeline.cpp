/**
 * @file
 * Tests for the Fig. 11-style timeline recorder.
 */

#include <gtest/gtest.h>

#include "stats/timeline.hpp"

namespace {

using cooprt::stats::TimelineRecorder;

TEST(Timeline, SingleInterval)
{
    TimelineRecorder t(4);
    t.setBusy(0, 100, true);
    t.setBusy(0, 200, false);
    ASSERT_EQ(t.intervalsOf(0).size(), 1u);
    EXPECT_EQ(t.intervalsOf(0)[0].begin, 100u);
    EXPECT_EQ(t.intervalsOf(0)[0].end, 200u);
    EXPECT_EQ(t.busyCycles(0), 100u);
}

TEST(Timeline, RepeatedSetBusyIsIdempotent)
{
    TimelineRecorder t(2);
    t.setBusy(0, 100, true);
    t.setBusy(0, 120, true); // no-op
    t.setBusy(0, 150, false);
    t.setBusy(0, 160, false); // no-op
    ASSERT_EQ(t.intervalsOf(0).size(), 1u);
    EXPECT_EQ(t.busyCycles(0), 50u);
}

TEST(Timeline, ZeroLengthIntervalDropped)
{
    TimelineRecorder t(1);
    t.setBusy(0, 100, true);
    t.setBusy(0, 100, false);
    EXPECT_TRUE(t.intervalsOf(0).empty());
}

TEST(Timeline, MultipleIntervalsPerLane)
{
    TimelineRecorder t(1);
    t.setBusy(0, 0, true);
    t.setBusy(0, 10, false);
    t.setBusy(0, 20, true);
    t.setBusy(0, 35, false);
    EXPECT_EQ(t.intervalsOf(0).size(), 2u);
    EXPECT_EQ(t.busyCycles(0), 25u);
}

TEST(Timeline, FinishClosesOpenIntervals)
{
    TimelineRecorder t(3);
    t.setBusy(0, 10, true);
    t.setBusy(2, 5, true);
    t.finish(50);
    EXPECT_EQ(t.busyCycles(0), 40u);
    EXPECT_EQ(t.busyCycles(1), 0u);
    EXPECT_EQ(t.busyCycles(2), 45u);
}

TEST(Timeline, FirstAndLastCycle)
{
    TimelineRecorder t(2);
    t.setBusy(0, 30, true);
    t.setBusy(0, 60, false);
    t.setBusy(1, 10, true);
    t.setBusy(1, 40, false);
    EXPECT_EQ(t.firstCycle(), 10u);
    EXPECT_EQ(t.lastCycle(), 60u);
}

TEST(Timeline, AverageUtilization)
{
    TimelineRecorder t(2);
    // Lane 0 busy for the whole span, lane 1 idle: 50%.
    t.setBusy(0, 0, true);
    t.setBusy(0, 100, false);
    EXPECT_DOUBLE_EQ(t.averageUtilization(), 0.5);
}

TEST(Timeline, EmptyUtilizationZero)
{
    TimelineRecorder t(4);
    EXPECT_DOUBLE_EQ(t.averageUtilization(), 0.0);
    EXPECT_TRUE(t.render(40).empty());
}

TEST(Timeline, RenderShape)
{
    TimelineRecorder t(2);
    t.setBusy(0, 0, true);
    t.setBusy(0, 100, false);
    t.setBusy(1, 50, true);
    t.setBusy(1, 100, false);
    std::string art = t.render(10);
    // Two rows, each "tNN " + 10 columns + newline.
    ASSERT_EQ(art.size(), 2u * (4 + 10 + 1));
    // Lane 0 busy everywhere; lane 1 only the second half.
    EXPECT_EQ(art.substr(4, 10), "##########");
    std::string lane1 = art.substr(15 + 4, 10);
    EXPECT_EQ(lane1.substr(0, 4), "....");
    EXPECT_EQ(lane1.substr(6, 4), "####");
}

} // namespace

/**
 * @file
 * Tests for the interval activity sampler.
 */

#include <gtest/gtest.h>

#include "stats/sampler.hpp"

namespace {

using cooprt::stats::ActivitySampler;

TEST(Sampler, DueAtStart)
{
    ActivitySampler s(500);
    EXPECT_TRUE(s.due(0));
}

TEST(Sampler, NotDueAgainWithinInterval)
{
    ActivitySampler s(500);
    s.sample(0, 1, 2);
    EXPECT_FALSE(s.due(100));
    EXPECT_FALSE(s.due(499));
    EXPECT_TRUE(s.due(500));
}

TEST(Sampler, SkipsIdleGaps)
{
    ActivitySampler s(500);
    s.sample(0, 1, 2);
    // Long idle gap: next sample at cycle 5000 should be accepted and
    // boundaries advanced past it (no back-filling).
    EXPECT_TRUE(s.due(5000));
    s.sample(5000, 1, 2);
    EXPECT_FALSE(s.due(5400));
    EXPECT_TRUE(s.due(5500));
    EXPECT_EQ(s.sampleCount(), 2u);
}

TEST(Sampler, RatioComputation)
{
    ActivitySampler s(500);
    s.sample(0, 8, 32);
    s.sample(500, 16, 32);
    EXPECT_DOUBLE_EQ(s.ratioAt(0), 0.25);
    EXPECT_DOUBLE_EQ(s.ratioAt(1), 0.5);
    EXPECT_DOUBLE_EQ(s.averageRatio(), 0.375);
}

TEST(Sampler, ZeroTotalIsZeroRatio)
{
    ActivitySampler s(500);
    s.sample(0, 0, 0);
    EXPECT_DOUBLE_EQ(s.ratioAt(0), 0.0);
}

TEST(Sampler, EmptyAverageIsZero)
{
    ActivitySampler s;
    EXPECT_DOUBLE_EQ(s.averageRatio(), 0.0);
}

TEST(Sampler, SeriesMatchesRatios)
{
    ActivitySampler s(100);
    s.sample(0, 1, 4);
    s.sample(100, 2, 4);
    s.sample(200, 3, 4);
    auto series = s.series();
    ASSERT_EQ(series.size(), 3u);
    EXPECT_DOUBLE_EQ(series[0], 0.25);
    EXPECT_DOUBLE_EQ(series[2], 0.75);
}

TEST(Sampler, ResetClears)
{
    ActivitySampler s(100);
    s.sample(0, 1, 2);
    s.reset();
    EXPECT_EQ(s.sampleCount(), 0u);
    EXPECT_TRUE(s.due(0));
}

} // namespace

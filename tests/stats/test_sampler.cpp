/**
 * @file
 * Tests for the interval activity sampler.
 */

#include <gtest/gtest.h>

#include "stats/sampler.hpp"

namespace {

using cooprt::stats::ActivitySampler;

TEST(Sampler, DueAtStart)
{
    ActivitySampler s(500);
    EXPECT_TRUE(s.due(0));
}

TEST(Sampler, NotDueAgainWithinInterval)
{
    ActivitySampler s(500);
    s.sample(0, 1, 2);
    EXPECT_FALSE(s.due(100));
    EXPECT_FALSE(s.due(499));
    EXPECT_TRUE(s.due(500));
}

TEST(Sampler, SkipsIdleGaps)
{
    ActivitySampler s(500);
    s.sample(0, 1, 2);
    // Long idle gap: next sample at cycle 5000 should be accepted and
    // boundaries advanced past it (no back-filling).
    EXPECT_TRUE(s.due(5000));
    s.sample(5000, 1, 2);
    EXPECT_FALSE(s.due(5400));
    EXPECT_TRUE(s.due(5500));
    EXPECT_EQ(s.sampleCount(), 2u);
}

TEST(Sampler, RatioComputation)
{
    ActivitySampler s(500);
    s.sample(0, 8, 32);
    s.sample(500, 16, 32);
    EXPECT_DOUBLE_EQ(s.ratioAt(0), 0.25);
    EXPECT_DOUBLE_EQ(s.ratioAt(1), 0.5);
    EXPECT_DOUBLE_EQ(s.averageRatio(), 0.375);
}

TEST(Sampler, ZeroTotalIsZeroRatio)
{
    ActivitySampler s(500);
    s.sample(0, 0, 0);
    EXPECT_DOUBLE_EQ(s.ratioAt(0), 0.0);
}

TEST(Sampler, EmptyAverageIsZero)
{
    ActivitySampler s;
    EXPECT_DOUBLE_EQ(s.averageRatio(), 0.0);
}

TEST(Sampler, SeriesMatchesRatios)
{
    ActivitySampler s(100);
    s.sample(0, 1, 4);
    s.sample(100, 2, 4);
    s.sample(200, 3, 4);
    auto series = s.series();
    ASSERT_EQ(series.size(), 3u);
    EXPECT_DOUBLE_EQ(series[0], 0.25);
    EXPECT_DOUBLE_EQ(series[2], 0.75);
}

TEST(Sampler, ResetClears)
{
    ActivitySampler s(100);
    s.sample(0, 1, 2);
    s.reset();
    EXPECT_EQ(s.sampleCount(), 0u);
    EXPECT_TRUE(s.due(0));
}

TEST(Sampler, NextDueAdvancesExactlyPastSampledCycle)
{
    ActivitySampler s(500);
    EXPECT_EQ(s.nextDue(), 0u);
    s.sample(0, 1, 2);
    EXPECT_EQ(s.nextDue(), 500u);
    // Sampling exactly on the boundary advances one interval.
    s.sample(500, 1, 2);
    EXPECT_EQ(s.nextDue(), 1000u);
    // Sampling mid-interval advances past the given cycle only.
    s.sample(1700, 1, 2);
    EXPECT_EQ(s.nextDue(), 2000u);
}

TEST(Sampler, NotDueOneCycleBeforeBoundary)
{
    ActivitySampler s(500);
    s.sample(0, 1, 2);
    EXPECT_FALSE(s.due(s.nextDue() - 1));
    EXPECT_TRUE(s.due(s.nextDue()));
}

TEST(Sampler, IntervalOneIsDueEveryCycle)
{
    ActivitySampler s(1);
    for (std::uint64_t c = 0; c < 4; ++c) {
        ASSERT_TRUE(s.due(c));
        s.sample(c, 1, 1);
        ASSERT_FALSE(s.due(c));
        ASSERT_EQ(s.nextDue(), c + 1);
    }
    EXPECT_EQ(s.sampleCount(), 4u);
}

TEST(Sampler, SkipMatchesSampleBoundaries)
{
    // skip() must advance exactly like sample() so idle intervals
    // (zero resident threads) keep the two paths in lock-step.
    ActivitySampler sampled(500), skipped(500);
    const std::uint64_t cycles[] = {0, 500, 2300, 2500};
    for (std::uint64_t c : cycles) {
        sampled.sample(c, 1, 2);
        skipped.skip(c);
        ASSERT_EQ(sampled.nextDue(), skipped.nextDue());
    }
    EXPECT_EQ(skipped.sampleCount(), 0u);
}

TEST(Sampler, ZeroTotalSamplesCountTowardAverage)
{
    // A recorded zero-total interval contributes a 0 ratio (distinct
    // from skip(), which records nothing).
    ActivitySampler s(500);
    s.sample(0, 8, 32);
    s.sample(500, 0, 0);
    EXPECT_EQ(s.sampleCount(), 2u);
    EXPECT_DOUBLE_EQ(s.averageRatio(), 0.125);
}

} // namespace

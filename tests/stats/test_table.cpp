/**
 * @file
 * Tests for the table printer and aggregate helpers.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "stats/table.hpp"

namespace {

using cooprt::stats::geomean;
using cooprt::stats::mean;
using cooprt::stats::Table;

TEST(Table, CellAccess)
{
    Table t({"scene", "speedup"});
    t.row().cell("crnvl").cell(4.52, 2);
    t.row().cell("fox").cell(5.11, 2);
    EXPECT_EQ(t.rowCount(), 2u);
    EXPECT_EQ(t.columnCount(), 2u);
    EXPECT_EQ(t.at(0, 0), "crnvl");
    EXPECT_EQ(t.at(1, 1), "5.11");
}

TEST(Table, IntegerCells)
{
    Table t({"n"});
    t.row().cell(std::uint64_t(98304));
    EXPECT_EQ(t.at(0, 0), "98304");
}

TEST(Table, MissingCellIsEmpty)
{
    Table t({"a", "b"});
    t.row().cell("x");
    EXPECT_EQ(t.at(0, 1), "");
}

TEST(Table, OutOfRangeRowThrows)
{
    Table t({"a"});
    EXPECT_THROW(t.at(0, 0), std::out_of_range);
}

TEST(Table, CellBeforeRowThrows)
{
    Table t({"a"});
    EXPECT_THROW(t.cell("x"), std::logic_error);
}

TEST(Table, PrintAlignsColumns)
{
    Table t({"scene", "speedup"});
    t.row().cell("fox").cell(5.11, 2);
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("scene"), std::string::npos);
    EXPECT_NE(s.find("5.11"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos); // separator
}

TEST(Table, PrintCsv)
{
    Table t({"scene", "x"});
    t.row().cell("fox").cell(1.5, 1);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "scene,x\nfox,1.5\n");
}

TEST(Aggregates, GeomeanBasic)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Aggregates, GeomeanSingle)
{
    EXPECT_DOUBLE_EQ(geomean({3.5}), 3.5);
}

TEST(Aggregates, GeomeanEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Aggregates, GeomeanRejectsNonPositive)
{
    EXPECT_THROW(geomean({1.0, 0.0}), std::domain_error);
    EXPECT_THROW(geomean({-1.0}), std::domain_error);
}

TEST(Aggregates, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

} // namespace

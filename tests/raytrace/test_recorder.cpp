/**
 * @file
 * Unit tests for the ray-provenance recorder: deterministic seed-
 * derived sampling, per-ray lifecycle conservation, steal accounting
 * and the lane-timeline replay that rebuilds Fig. 11.
 */

#include <gtest/gtest.h>

#include "raytrace/raytrace.hpp"

#include "../rtunit/rtunit_test_util.hpp"

namespace {

using namespace cooprt;
using raytrace::EventKind;
using raytrace::RecorderConfig;
using raytrace::UnitRecorder;
using raytrace::WarpRecord;
using rtunit::TraceConfig;
using testutil::RtHarness;

/** Run one frontal warp with @p rcfg attached and return the unit
 *  recorder (moved out via the harness-owned copy's records). */
struct RecordedRun
{
    RecorderConfig cfg;
    UnitRecorder rec;
    rtunit::TraceResult result;

    RecordedRun(const RecorderConfig &rcfg, const TraceConfig &tcfg,
                int rays = rtunit::kWarpSize,
                std::uint64_t soup_seed = 8, int soup_n = 2000)
        : cfg(rcfg), rec(0, &cfg)
    {
        RtHarness h(testutil::makeSoup(soup_seed, soup_n), tcfg);
        h.unit.attachRayTrace(&rec, nullptr);
        result = h.runOne(testutil::frontalJob(rays));
    }
};

TEST(UnitRecorder, SamplingIsBitStableAcrossRecorders)
{
    RecorderConfig rcfg;
    rcfg.sample_k = 4;
    TraceConfig coop;
    coop.coop = true;

    RecordedRun a(rcfg, coop);
    RecordedRun b(rcfg, coop);

    ASSERT_EQ(a.rec.warps().size(), 1u);
    ASSERT_EQ(b.rec.warps().size(), 1u);
    const WarpRecord &wa = a.rec.warps()[0];
    const WarpRecord &wb = b.rec.warps()[0];
    EXPECT_EQ(wa.sampled_mask, wb.sampled_mask);
    EXPECT_EQ(wa.active_mask, wb.active_mask);
    ASSERT_EQ(wa.rays.size(), wb.rays.size());
    for (std::size_t r = 0; r < wa.rays.size(); ++r) {
        const auto &ra = wa.rays[r];
        const auto &rb = wb.rays[r];
        EXPECT_EQ(ra.lane, rb.lane);
        ASSERT_EQ(ra.events.size(), rb.events.size());
        for (std::size_t e = 0; e < ra.events.size(); ++e) {
            EXPECT_EQ(ra.events[e].cycle, rb.events[e].cycle);
            EXPECT_EQ(ra.events[e].kind, rb.events[e].kind);
            EXPECT_EQ(ra.events[e].lane, rb.events[e].lane);
            EXPECT_EQ(ra.events[e].value, rb.events[e].value);
            EXPECT_EQ(ra.events[e].aux, rb.events[e].aux);
        }
    }
    EXPECT_EQ(a.rec.stats().events_recorded,
              b.rec.stats().events_recorded);
}

TEST(UnitRecorder, SampleKBoundsRaysAndSeedMovesTheChoice)
{
    RecorderConfig rcfg;
    rcfg.sample_k = 4;
    RecordedRun a(rcfg, TraceConfig{});
    ASSERT_EQ(a.rec.warps().size(), 1u);
    const WarpRecord &wa = a.rec.warps()[0];
    EXPECT_EQ(wa.rays.size(), 4u);
    EXPECT_EQ(wa.sampled_mask & ~wa.active_mask, 0u)
        << "sampled a lane that was not active";

    RecorderConfig other = rcfg;
    other.seed = 0xdeadbeefu;
    RecordedRun b(other, TraceConfig{});
    ASSERT_EQ(b.rec.warps().size(), 1u);
    EXPECT_NE(wa.sampled_mask, b.rec.warps()[0].sampled_mask)
        << "lane choice must be seed-derived";
}

TEST(UnitRecorder, LifecycleConservation)
{
    for (const bool coop : {false, true}) {
        RecorderConfig rcfg;
        rcfg.sample_k = raytrace::kLanes;
        TraceConfig tcfg;
        tcfg.coop = coop;
        RecordedRun run(rcfg, tcfg);
        ASSERT_EQ(run.rec.warps().size(), 1u);
        const WarpRecord &w = run.rec.warps()[0];
        EXPECT_TRUE(w.retired);
        for (const auto &r : w.rays) {
            // Every stack entry a ray ever owned (its root plus its
            // pushes) is eventually popped — by its own lane or by a
            // helper — exactly once, so the owner-keyed live count
            // drains to zero by retirement.
            EXPECT_EQ(r.live_entries, 0)
                << "lane " << int(r.lane) << " coop=" << coop;
            EXPECT_GT(r.events.size(), 0u);
            EXPECT_EQ(r.events.front().kind, EventKind::Launch);
            EXPECT_EQ(r.events.back().kind, EventKind::Retire);
            std::uint64_t prev = 0;
            for (const auto &ev : r.events) {
                EXPECT_GE(ev.cycle, prev);
                prev = ev.cycle;
            }
            EXPECT_EQ(r.stats.node_visits,
                      r.stats.level_hist[0] + r.stats.level_hist[1] +
                          r.stats.level_hist[2]);
        }
    }
}

TEST(UnitRecorder, StealAccountingBalances)
{
    RecorderConfig rcfg;
    rcfg.sample_k = raytrace::kLanes;
    TraceConfig coop;
    coop.coop = true;
    RecordedRun run(rcfg, coop);
    ASSERT_EQ(run.rec.warps().size(), 1u);
    const WarpRecord &w = run.rec.warps()[0];

    std::uint64_t in = 0, out = 0, ev_donated = 0, ev_received = 0;
    for (const auto &r : w.rays) {
        in += r.stats.steals_in;
        out += r.stats.steals_out;
        for (const auto &ev : r.events) {
            if (ev.kind == EventKind::StealDonated)
                ev_donated++;
            if (ev.kind == EventKind::StealReceived)
                ev_received++;
        }
    }
    EXPECT_GT(out, 0u) << "coop warp produced no steals";
    // All lanes are sampled, so both sides of every steal are logged.
    EXPECT_EQ(in, out);
    EXPECT_EQ(ev_donated, out);
    EXPECT_EQ(ev_received, in);
    EXPECT_EQ(run.rec.stats().steal_events, out);
}

TEST(UnitRecorder, WarpSkipAndPerUnitCap)
{
    RecorderConfig rcfg;
    rcfg.sample_k = 2;
    rcfg.warp_skip = 1;
    rcfg.max_warps_per_unit = 1;
    UnitRecorder rec(0, &rcfg);
    RtHarness h(testutil::makeSoup(8, 500), TraceConfig{});
    h.unit.attachRayTrace(&rec, nullptr);
    for (int i = 0; i < 3; ++i)
        h.runOne(testutil::frontalJob(rtunit::kWarpSize));

    EXPECT_EQ(rec.stats().warps_seen, 3u);
    EXPECT_EQ(rec.stats().warps_sampled, 1u);
    ASSERT_EQ(rec.warps().size(), 1u);
    EXPECT_EQ(rec.warps()[0].ordinal, 1u) << "must skip warp 0";
}

TEST(UnitRecorder, SetWarpIdSurvivesInstantRetire)
{
    RecorderConfig rcfg;
    rcfg.sample_k = 2;
    UnitRecorder rec(0, &rcfg);
    RtHarness h(testutil::makeSoup(8, 500), TraceConfig{});
    h.unit.attachRayTrace(&rec, nullptr);

    bool done = false;
    const int slot = h.unit.submit(
        testutil::frontalJob(rtunit::kWarpSize), h.now,
        [&](int, const rtunit::TraceResult &) { done = true; });
    h.drain([&] { return done; });
    // The SM names the record after submit() returns — by then the
    // warp may already have retired, but the record must keep it.
    rec.setWarpId(slot, 77);
    ASSERT_EQ(rec.warps().size(), 1u);
    EXPECT_EQ(rec.warps()[0].warp_id, 77);
}

TEST(UnitRecorder, LaneTimelineReplaysArmTimelineExactly)
{
    const int kRays = rtunit::kWarpSize;
    TraceConfig coop;
    coop.coop = true;

    // Legacy path: the RT unit drives a TimelineRecorder directly.
    stats::TimelineRecorder legacy(rtunit::kWarpSize);
    {
        RtHarness h(testutil::makeSoup(8, 2000), coop);
        h.unit.armTimeline(&legacy, 0);
        h.runOne(testutil::frontalJob(kRays));
    }

    // Recorder path: the same run logs lane edges; laneTimeline()
    // replays them (this is what fig11_warp_timeline renders).
    RecorderConfig rcfg;
    rcfg.sample_k = raytrace::kLanes;
    rcfg.lane_timeline = true;
    RecordedRun run(rcfg, coop, kRays);
    ASSERT_EQ(run.rec.warps().size(), 1u);
    stats::TimelineRecorder replay =
        raytrace::laneTimeline(run.rec.warps()[0]);

    EXPECT_EQ(replay.firstCycle(), legacy.firstCycle());
    EXPECT_EQ(replay.lastCycle(), legacy.lastCycle());
    EXPECT_DOUBLE_EQ(replay.averageUtilization(),
                     legacy.averageUtilization());
    EXPECT_EQ(replay.render(100), legacy.render(100));
}

TEST(UnitRecorder, ResetClearsEverything)
{
    RecorderConfig rcfg;
    rcfg.sample_k = 2;
    UnitRecorder rec(0, &rcfg);
    {
        RtHarness h(testutil::makeSoup(8, 500), TraceConfig{});
        h.unit.attachRayTrace(&rec, nullptr);
        h.runOne(testutil::frontalJob(rtunit::kWarpSize));
    }
    EXPECT_GT(rec.stats().events_recorded, 0u);
    rec.reset();
    EXPECT_EQ(rec.warps().size(), 0u);
    EXPECT_EQ(rec.stats().events_recorded, 0u);
    EXPECT_EQ(rec.stats().warps_seen, 0u);
}

} // namespace

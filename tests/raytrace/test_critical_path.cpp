/**
 * @file
 * Critical-path attribution tests: every cycle of a sampled warp's
 * lifetime lands in exactly one stall-taxonomy bucket, and the
 * whole-GPU report picks each SM's slowest sampled warp.
 */

#include <numeric>
#include <sstream>

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "raytrace/raytrace.hpp"

#include "../rtunit/rtunit_test_util.hpp"

namespace {

using namespace cooprt;
using raytrace::CriticalPathEntry;
using raytrace::RecorderConfig;
using raytrace::UnitRecorder;
using rtunit::TraceConfig;
using testutil::RtHarness;

std::uint64_t
bucketSum(const CriticalPathEntry &e)
{
    return std::accumulate(e.buckets.begin(), e.buckets.end(),
                           std::uint64_t(0));
}

TEST(CriticalPath, BucketSumEqualsWarpLatency)
{
    for (const bool coop : {false, true}) {
        RecorderConfig rcfg;
        rcfg.sample_k = 4;
        UnitRecorder rec(0, &rcfg);
        TraceConfig tcfg;
        tcfg.coop = coop;
        RtHarness h(testutil::makeSoup(8, 2000), tcfg);
        h.unit.attachRayTrace(&rec, nullptr);
        h.runOne(testutil::frontalJob(rtunit::kWarpSize));

        ASSERT_EQ(rec.warps().size(), 1u);
        const CriticalPathEntry e =
            raytrace::attributeCriticalPath(rec.warps()[0]);
        EXPECT_EQ(bucketSum(e), e.latency())
            << "attribution must be exhaustive and exclusive "
               "(coop=" << coop << ")";
        EXPECT_GE(e.blocking_lane, 0);
        EXPECT_LE(e.retire_cycle, rec.warps()[0].retire_cycle);
    }
}

TEST(CriticalPath, WholeGpuReportPicksSlowestPerSm)
{
    raytrace::Recorder ray;
    core::RunConfig cfg;
    cfg.shader = core::ShaderKind::AmbientOcclusion;
    cfg.resolution = 16;
    cfg.ray_recorder = &ray;
    const core::RunOutcome out = core::simulationFor("wknd").run(cfg);

    ASSERT_TRUE(out.gpu.ray_summary.enabled);
    const raytrace::CriticalPathReport report = ray.criticalPath();
    ASSERT_FALSE(report.per_sm.empty());
    for (const auto &e : report.per_sm) {
        EXPECT_EQ(bucketSum(e), e.latency());
        // The reported warp really is the slowest sampled one on its
        // SM.
        const raytrace::WarpRecord *slowest = ray.slowestWarp(e.sm);
        ASSERT_NE(slowest, nullptr);
        EXPECT_EQ(e.latency(), slowest->latency());
    }
    const CriticalPathEntry *top = report.slowest();
    ASSERT_NE(top, nullptr);
    for (const auto &e : report.per_sm)
        EXPECT_LE(e.latency(), top->latency());

    // The summary carried into the run outcome mirrors the report.
    ASSERT_EQ(out.gpu.ray_summary.critical.size(),
              report.per_sm.size());
    for (std::size_t i = 0; i < report.per_sm.size(); ++i)
        EXPECT_EQ(out.gpu.ray_summary.critical[i].latency(),
                  report.per_sm[i].latency());

    std::ostringstream ss;
    raytrace::writeCriticalPath(ss, report);
    EXPECT_NE(ss.str().find("slowest:"), std::string::npos);
    EXPECT_NE(ss.str().find("starved_dram"), std::string::npos);
}

TEST(CriticalPath, RecorderIsObservationOnly)
{
    // Attaching the recorder must not change simulated timing: the
    // same config with and without it reports identical cycles.
    core::RunConfig cfg;
    cfg.shader = core::ShaderKind::AmbientOcclusion;
    cfg.resolution = 16;
    cfg.gpu.trace.coop = true;
    const core::RunOutcome plain =
        core::simulationFor("bunny").run(cfg);

    raytrace::Recorder ray;
    cfg.ray_recorder = &ray;
    const core::RunOutcome recorded =
        core::simulationFor("bunny").run(cfg);

    EXPECT_EQ(plain.gpu.cycles, recorded.gpu.cycles);
    EXPECT_EQ(plain.gpu.rt.steals, recorded.gpu.rt.steals);
    EXPECT_EQ(plain.gpu.rt.node_fetches, recorded.gpu.rt.node_fetches);
    EXPECT_GT(ray.stats().rays_sampled, 0u);
}

} // namespace

/**
 * @file
 * Export tests for the ray-provenance recorder: raystats JSON/CSV,
 * Perfetto track emission, and the `ray.*` metrics probes.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "raytrace/raytrace.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/registry.hpp"

#include "../rtunit/rtunit_test_util.hpp"
#include "../trace/json_check.hpp"

namespace {

using namespace cooprt;
using raytrace::Recorder;
using raytrace::RecorderConfig;
using rtunit::TraceConfig;
using testutil::RtHarness;

/** Drives one coop warp through SM 0 of a whole-GPU style recorder. */
struct RecordedWarp
{
    static RecorderConfig
    makeConfig(int sample_k = 4)
    {
        RecorderConfig rcfg;
        rcfg.sample_k = sample_k;
        return rcfg;
    }

    Recorder ray;

    explicit RecordedWarp(RecorderConfig rcfg = makeConfig())
        : ray(rcfg)
    {
        TraceConfig coop;
        coop.coop = true;
        RtHarness h(testutil::makeSoup(8, 2000), coop);
        h.unit.attachRayTrace(&ray.unit(0), nullptr);
        h.runOne(testutil::frontalJob(rtunit::kWarpSize));
    }
};

TEST(RayStatsExport, JsonIsValidAndCarriesTheSchema)
{
    RecordedWarp run;
    const Recorder &ray = run.ray;
    std::ostringstream ss;
    ray.writeRayStatsJson(ss, "soup");
    const std::string json = ss.str();
    EXPECT_TRUE(testutil::isValidJson(json)) << json.substr(0, 400);
    for (const char *key :
         {"\"scene\"", "\"sample_k\"", "\"rays_sampled\"",
          "\"warps\"", "\"node_visits\"", "\"stack_hwm\"",
          "\"levels\"", "\"steals_in\"", "\"steals_out\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(RayStatsExport, CsvHasOneRowPerRay)
{
    RecordedWarp run;
    const Recorder &ray = run.ray;
    std::ostringstream ss;
    ray.writeRayStatsCsv(ss);
    std::istringstream lines(ss.str());
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_EQ(header,
              "sm,ordinal,warp_id,lane,launch,retire,node_visits,"
              "node_pops,stale_pops,node_pushes,leaf_tests,steals_in,"
              "steals_out,stack_hwm,l1,l2,dram,events");
    std::size_t rows = 0;
    std::string line;
    while (std::getline(lines, line))
        if (!line.empty())
            rows++;
    EXPECT_EQ(rows, ray.stats().rays_sampled);
}

TEST(RayStatsExport, PerfettoTracksPerWarpAndRay)
{
    RecordedWarp run;
    const Recorder &ray = run.ray;
    trace::Tracer tracer(1 << 16);
    ray.emitPerfetto(tracer);
    std::ostringstream ss;
    tracer.writeJson(ss);
    const std::string json = ss.str();
    EXPECT_TRUE(testutil::isValidJson(json));
    // One named track group per sampled warp plus one per ray.
    EXPECT_NE(json.find("rays ord"), std::string::npos);
    EXPECT_NE(json.find("lane"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"warp\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"ray\""), std::string::npos);
    EXPECT_NE(json.find("fetch_"), std::string::npos);
}

TEST(RayStatsExport, RegistryProbesMirrorRecorderStats)
{
    // The registry must outlive the recorder (the recorder's dtor
    // unregisters its owned probes), so declare it first.
    trace::Registry reg;
    RecordedWarp run;
    Recorder &ray = run.ray;
    ray.registerMetrics(reg);
    const auto samples = reg.snapshot("ray.*");
    ASSERT_EQ(samples.size(), 7u);
    for (const auto &s : samples) {
        if (s.name == "ray.rays_sampled") {
            EXPECT_EQ(s.value, double(ray.stats().rays_sampled));
        }
        if (s.name == "ray.events_recorded") {
            EXPECT_EQ(s.value, double(ray.stats().events_recorded));
        }
    }
}

TEST(RayStatsExport, EventCapDropsAndCounts)
{
    RecorderConfig rcfg;
    rcfg.sample_k = raytrace::kLanes;
    rcfg.max_events_per_ray = 4; // force overflow
    Recorder ray(rcfg);
    TraceConfig coop;
    coop.coop = true;
    RtHarness h(testutil::makeSoup(8, 2000), coop);
    h.unit.attachRayTrace(&ray.unit(0), nullptr);
    h.runOne(testutil::frontalJob(rtunit::kWarpSize));

    EXPECT_GT(ray.stats().events_dropped, 0u);
    std::ostringstream ss;
    ray.writeRayStatsJson(ss, "soup");
    EXPECT_TRUE(testutil::isValidJson(ss.str()));
}

} // namespace

/**
 * @file
 * End-to-end tests of the observability subsystem attached to real
 * simulation runs: zero perturbation, Chrome-trace validity, and the
 * metrics CSV reproducing the activity sampler's series.
 */

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "../trace/json_check.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"
#include "trace/session.hpp"

namespace {

using namespace cooprt;

core::RunConfig
smallCfg()
{
    core::RunConfig c;
    c.resolution = 16;
    c.gpu = gpu::GpuConfig::rtx2060Bench();
    return c;
}

trace::SessionOptions
fullOptions()
{
    trace::SessionOptions opt;
    opt.events = true;
    opt.metrics = true;
    return opt;
}

TEST(TraceIntegration, TracingDoesNotPerturbTheRun)
{
    // The headline guarantee: a session only observes. Cycle counts
    // and every counter must be bit-identical with tracing on.
    const core::Simulation &sim = core::simulationFor("wknd");
    core::RunConfig cfg = smallCfg();
    const core::RunOutcome plain = sim.run(cfg);

    trace::Session session(fullOptions());
    cfg.trace_session = &session;
    const core::RunOutcome traced = sim.run(cfg);

    EXPECT_EQ(plain.gpu.cycles, traced.gpu.cycles);
    EXPECT_EQ(plain.gpu.rt.node_fetches, traced.gpu.rt.node_fetches);
    EXPECT_EQ(plain.gpu.rt.steals, traced.gpu.rt.steals);
    EXPECT_EQ(plain.gpu.rt.retired_warps, traced.gpu.rt.retired_warps);
    EXPECT_EQ(plain.gpu.l2.accesses, traced.gpu.l2.accesses);
    EXPECT_EQ(plain.gpu.dram.requests, traced.gpu.dram.requests);
    EXPECT_DOUBLE_EQ(plain.gpu.avg_thread_utilization,
                     traced.gpu.avg_thread_utilization);
}

TEST(TraceIntegration, SummaryReportsCollection)
{
    const core::Simulation &sim = core::simulationFor("wknd");
    core::RunConfig cfg = smallCfg();
    trace::Session session(fullOptions());
    cfg.trace_session = &session;
    const core::RunOutcome out = sim.run(cfg);

    const trace::RunTraceSummary &ts = out.traceSummary();
    EXPECT_TRUE(ts.enabled);
    EXPECT_GT(ts.events_recorded, 0u);
    EXPECT_GT(ts.metric_samples, 0u);
    EXPECT_GT(ts.registered_metrics, 0u);
    // The report embeds the summary when a session was attached.
    const std::string j = core::toJson(out);
    EXPECT_TRUE(testutil::isValidJson(j));
    EXPECT_NE(j.find("\"trace\":{"), std::string::npos);
    EXPECT_NE(j.find("\"events_recorded\":"), std::string::npos);
}

TEST(TraceIntegration, ChromeTraceExportIsValidAndPopulated)
{
    const core::Simulation &sim = core::simulationFor("wknd");
    core::RunConfig cfg = smallCfg();
    trace::Session session(fullOptions());
    cfg.trace_session = &session;
    sim.run(cfg);

    std::ostringstream ss;
    session.writeTrace(ss);
    const std::string json = ss.str();
    EXPECT_TRUE(testutil::isValidJson(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Per-warp RT duration events and SM track metadata.
    EXPECT_NE(json.find("\"name\":\"trace_ray\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    // Counter track for the sampled utilization.
    EXPECT_NE(json.find("\"name\":\"thread_utilization\""),
              std::string::npos);
}

TEST(TraceIntegration, MetricsCsvMatchesActivitySampler)
{
    // Acceptance criterion: the exported `rtunit.thread_utilization`
    // column reproduces the Fig. 2/10 series the simulator already
    // reports through stats::ActivitySampler.
    const core::Simulation &sim = core::simulationFor("wknd");
    core::RunConfig cfg = smallCfg();
    trace::Session session(fullOptions());
    cfg.trace_session = &session;
    const core::RunOutcome out = sim.run(cfg);

    ASSERT_NE(session.metrics(), nullptr);
    const std::vector<double> csv_series =
        session.metrics()->seriesOf("rtunit.thread_utilization");
    const std::vector<double> &ref = out.gpu.utilization_series;
    ASSERT_FALSE(ref.empty());
    ASSERT_EQ(csv_series.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_DOUBLE_EQ(csv_series[i], ref[i]) << "sample " << i;
}

TEST(TraceIntegration, MetricsCsvIsWellFormed)
{
    const core::Simulation &sim = core::simulationFor("wknd");
    core::RunConfig cfg = smallCfg();
    trace::Session session(fullOptions());
    cfg.trace_session = &session;
    sim.run(cfg);

    std::ostringstream ss;
    session.writeMetricsCsv(ss);
    std::istringstream lines(ss.str());
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    // Schema v2 prepends the run-key stamp as a `#` comment line.
    EXPECT_EQ(header.rfind("# cooprt schema_version=", 0), 0u);
    EXPECT_NE(header.find("scene=wknd"), std::string::npos);
    EXPECT_NE(header.find("fingerprint=0x"), std::string::npos);
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_EQ(header.rfind("cycle,", 0), 0u);
    EXPECT_NE(header.find("rtunit.thread_utilization"),
              std::string::npos);
    EXPECT_NE(header.find("mem.l2."), std::string::npos);
    const std::size_t cols =
        std::size_t(std::count(header.begin(), header.end(), ',')) + 1;
    std::string line;
    std::size_t rows = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(std::size_t(std::count(line.begin(), line.end(),
                                         ',')) + 1, cols);
        ++rows;
    }
    EXPECT_GT(rows, 0u);
}

TEST(TraceIntegration, FilterRestrictsExportedData)
{
    const core::Simulation &sim = core::simulationFor("wknd");
    core::RunConfig cfg = smallCfg();
    trace::SessionOptions opt = fullOptions();
    opt.filter = "rtunit.*";
    trace::Session session(opt);
    cfg.trace_session = &session;
    sim.run(cfg);

    std::ostringstream mf;
    session.writeMetricsCsv(mf);
    std::istringstream mlines(mf.str());
    std::string header;
    // Skip the schema/run-key `#` comment stamp (schema v2).
    while (std::getline(mlines, header) && !header.empty() &&
           header[0] == '#') {
    }
    EXPECT_NE(header.find("rtunit."), std::string::npos);
    EXPECT_EQ(header.find("mem."), std::string::npos);

    std::ostringstream tf;
    session.writeTrace(tf);
    const std::string json = tf.str();
    EXPECT_TRUE(testutil::isValidJson(json));
    EXPECT_NE(json.find("\"cat\":\"rtunit\""), std::string::npos);
    EXPECT_EQ(json.find("\"cat\":\"sm\""), std::string::npos);
}

TEST(TraceIntegration, SessionIsReusableAcrossRuns)
{
    const core::Simulation &sim = core::simulationFor("wknd");
    core::RunConfig cfg = smallCfg();
    trace::Session session(fullOptions());
    cfg.trace_session = &session;
    const core::RunOutcome a = sim.run(cfg);
    const std::uint64_t first = a.traceSummary().metric_samples;
    const core::RunOutcome b = sim.run(cfg);
    // Data restarts per run instead of accumulating.
    EXPECT_EQ(b.traceSummary().metric_samples, first);
    EXPECT_EQ(a.gpu.cycles, b.gpu.cycles);
}

TEST(TraceIntegration, MetricsOnlySessionRecordsNoEvents)
{
    const core::Simulation &sim = core::simulationFor("wknd");
    core::RunConfig cfg = smallCfg();
    trace::SessionOptions opt;
    opt.metrics = true;
    trace::Session session(opt);
    cfg.trace_session = &session;
    const core::RunOutcome out = sim.run(cfg);
    EXPECT_EQ(out.traceSummary().events_recorded, 0u);
    EXPECT_GT(out.traceSummary().metric_samples, 0u);
    EXPECT_EQ(session.tracer(), nullptr);
}

} // namespace

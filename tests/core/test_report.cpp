/**
 * @file
 * Tests for the JSON run report.
 */

#include <gtest/gtest.h>

#include "../trace/json_check.hpp"
#include "core/report.hpp"

namespace {

using namespace cooprt;

const core::RunOutcome &
sampleOutcome()
{
    static core::RunOutcome out = [] {
        const core::Simulation &sim = core::simulationFor("wknd");
        core::RunConfig cfg;
        cfg.resolution = 16;
        return sim.run(cfg);
    }();
    return out;
}

TEST(Report, ContainsTopLevelFields)
{
    const std::string j = core::toJson(sampleOutcome());
    EXPECT_NE(j.find("\"scene\":\"wknd\""), std::string::npos);
    EXPECT_NE(j.find("\"resolution\":16"), std::string::npos);
    EXPECT_NE(j.find("\"cycles\":"), std::string::npos);
    EXPECT_NE(j.find("\"rt_unit\":{"), std::string::npos);
    EXPECT_NE(j.find("\"memory\":{"), std::string::npos);
    EXPECT_NE(j.find("\"stalls\":{"), std::string::npos);
    EXPECT_NE(j.find("\"power\":{"), std::string::npos);
}

TEST(Report, BalancedBracesAndQuotes)
{
    const std::string j = core::toJson(sampleOutcome());
    int depth = 0;
    int quotes = 0;
    for (char c : j) {
        if (c == '{')
            depth++;
        else if (c == '}')
            depth--;
        else if (c == '"')
            quotes++;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(quotes % 2, 0);
}

TEST(Report, NoTrailingCommas)
{
    const std::string j = core::toJson(sampleOutcome());
    EXPECT_EQ(j.find(",}"), std::string::npos);
    EXPECT_EQ(j.find(",,"), std::string::npos);
    EXPECT_EQ(j.find("{,"), std::string::npos);
}

TEST(Report, NumbersAreFinite)
{
    const std::string j = core::toJson(sampleOutcome());
    EXPECT_EQ(j.find("nan"), std::string::npos);
    EXPECT_EQ(j.find("inf"), std::string::npos);
}

TEST(Report, EndsWithNewline)
{
    const std::string j = core::toJson(sampleOutcome());
    ASSERT_FALSE(j.empty());
    EXPECT_EQ(j.back(), '\n');
}

TEST(Report, IsValidJson)
{
    EXPECT_TRUE(
        testutil::isValidJson(core::toJson(sampleOutcome())));
}

TEST(Report, EscapesSceneNameWithQuotes)
{
    // The original writer emitted strings raw; a quote in the scene
    // name produced unparseable output.
    core::RunOutcome out;
    out.scene = "cornell \"box\"";
    const std::string j = core::toJson(out);
    EXPECT_TRUE(testutil::isValidJson(j));
    EXPECT_NE(j.find("cornell \\\"box\\\""), std::string::npos);
}

TEST(Report, EscapesBackslashesAndControlCharacters)
{
    core::RunOutcome out;
    out.scene = "a\\b\nnewline\ttab";
    const std::string j = core::toJson(out);
    EXPECT_TRUE(testutil::isValidJson(j));
    EXPECT_NE(j.find("a\\\\b\\nnewline\\ttab"), std::string::npos);
}

TEST(Report, OmitsTraceBlockWithoutSession)
{
    const std::string j = core::toJson(sampleOutcome());
    EXPECT_EQ(j.find("\"trace\":{"), std::string::npos);
}

} // namespace

/**
 * @file
 * Determinism regression: the simulator is a pure function of its
 * RunConfig. Two identical runs must agree bit-for-bit on every
 * reported statistic, and attaching an observability session (which
 * the docs promise is purely observational) must not move a single
 * cycle. Guards against hidden global state, iteration-order
 * dependence and observer effects sneaking into the timing model.
 */

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "trace/session.hpp"

namespace {

using namespace cooprt;

/** Every scalar statistic of a run, for exact comparison. */
void
expectIdentical(const gpu::GpuRunResult &a, const gpu::GpuRunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);

    EXPECT_EQ(a.rt.node_fetches, b.rt.node_fetches);
    EXPECT_EQ(a.rt.leaf_fetches, b.rt.leaf_fetches);
    EXPECT_EQ(a.rt.box_tests, b.rt.box_tests);
    EXPECT_EQ(a.rt.tri_tests, b.rt.tri_tests);
    EXPECT_EQ(a.rt.steals, b.rt.steals);
    EXPECT_EQ(a.rt.stale_pops, b.rt.stale_pops);
    EXPECT_EQ(a.rt.stack_overflows, b.rt.stack_overflows);
    EXPECT_EQ(a.rt.retired_warps, b.rt.retired_warps);
    EXPECT_EQ(a.rt.retired_trace_latency, b.rt.retired_trace_latency);
    EXPECT_EQ(a.rt.max_trace_latency, b.rt.max_trace_latency);
    EXPECT_EQ(a.rt.issue_cycles, b.rt.issue_cycles);

    EXPECT_EQ(a.l1.accesses, b.l1.accesses);
    EXPECT_EQ(a.l1.hits, b.l1.hits);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
    EXPECT_EQ(a.l1.mshr_merges, b.l1.mshr_merges);
    EXPECT_EQ(a.l2.accesses, b.l2.accesses);
    EXPECT_EQ(a.l2.misses, b.l2.misses);
    EXPECT_EQ(a.dram.requests, b.dram.requests);
    EXPECT_EQ(a.dram.bytes, b.dram.bytes);
    EXPECT_EQ(a.mem_sys.l2_bytes, b.mem_sys.l2_bytes);
    EXPECT_EQ(a.mem_sys.l2_busy_cycles, b.mem_sys.l2_busy_cycles);

    EXPECT_EQ(a.stalls.rt, b.stalls.rt);
    EXPECT_EQ(a.stalls.mem, b.stalls.mem);
    EXPECT_EQ(a.stalls.alu, b.stalls.alu);
    EXPECT_EQ(a.stalls.sfu, b.stalls.sfu);

    ASSERT_EQ(a.completions.size(), b.completions.size());
    for (std::size_t i = 0; i < a.completions.size(); ++i) {
        EXPECT_EQ(a.completions[i].warp_id, b.completions[i].warp_id);
        EXPECT_EQ(a.completions[i].start_cycle,
                  b.completions[i].start_cycle);
        EXPECT_EQ(a.completions[i].finish_cycle,
                  b.completions[i].finish_cycle);
    }

    EXPECT_EQ(a.avg_thread_utilization, b.avg_thread_utilization);
    ASSERT_EQ(a.utilization_series.size(),
              b.utilization_series.size());
    for (std::size_t i = 0; i < a.utilization_series.size(); ++i)
        EXPECT_EQ(a.utilization_series[i], b.utilization_series[i]);
}

class Determinism : public ::testing::TestWithParam<bool>
{};

TEST_P(Determinism, RepeatedRunsAreBitIdentical)
{
    core::RunConfig cfg;
    cfg.resolution = 24;
    cfg.gpu.trace.coop = GetParam();

    const core::Simulation &sim = core::simulationFor("wknd");
    const auto first = sim.run(cfg);
    const auto second = sim.run(cfg);
    expectIdentical(first.gpu, second.gpu);
}

TEST_P(Determinism, ObservabilitySessionPerturbsNothing)
{
    core::RunConfig cfg;
    cfg.resolution = 24;
    cfg.gpu.trace.coop = GetParam();

    const core::Simulation &sim = core::simulationFor("wknd");
    const auto plain = sim.run(cfg);

    trace::SessionOptions opt;
    opt.events = true;
    opt.metrics = true;
    opt.metrics_interval = 100;
    trace::Session session(opt);
    cfg.trace_session = &session;
    const auto traced = sim.run(cfg);

    expectIdentical(plain.gpu, traced.gpu);
    // ...and the session did actually observe the run.
    EXPECT_GT(traced.traceSummary().registered_metrics, 0u);
}

INSTANTIATE_TEST_SUITE_P(BaseAndCoop, Determinism,
                         ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? "coop" : "base";
                         });

} // namespace

/**
 * @file
 * End-to-end integration tests of the top-level Simulation API on the
 * registry scenes — small resolutions so the suite stays fast.
 */

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace {

using namespace cooprt;
using core::Comparison;
using core::RunConfig;
using core::RunOutcome;
using core::ShaderKind;
using core::Simulation;

RunConfig
smallCfg(int res = 16)
{
    RunConfig c;
    c.resolution = res;
    c.gpu = gpu::GpuConfig::rtx2060Bench();
    return c;
}

TEST(Simulation, PathTracingRunsOnRegistryScene)
{
    const Simulation &sim = core::simulationFor("wknd");
    RunOutcome r = sim.run(smallCfg());
    EXPECT_EQ(r.scene, "wknd");
    EXPECT_EQ(r.resolution, 16);
    EXPECT_GT(r.gpu.cycles, 0u);
    EXPECT_GT(r.gpu.rt.retired_warps, 0u);
    EXPECT_GT(r.power.totalJoules(), 0.0);
}

TEST(Simulation, SimulationForCachesInstances)
{
    const Simulation &a = core::simulationFor("wknd");
    const Simulation &b = core::simulationFor("wknd");
    EXPECT_EQ(&a, &b);
}

TEST(Simulation, TreeStatsExposed)
{
    const Simulation &sim = core::simulationFor("wknd");
    auto s = sim.treeStats();
    EXPECT_GT(s.triangles, 100u);
    EXPECT_GT(s.max_depth, 2);
    EXPECT_GT(s.sizeMiB(), 0.0);
}

TEST(Simulation, DefaultResolutionFromScene)
{
    const Simulation &sim = core::simulationFor("wknd");
    RunConfig c;
    c.resolution = 0;
    // Keep this cheap: small frame via explicit override instead.
    c.resolution = 8;
    RunOutcome r = sim.run(c);
    EXPECT_EQ(r.resolution, 8);
}

TEST(Simulation, Deterministic)
{
    const Simulation &sim = core::simulationFor("wknd");
    RunOutcome a = sim.run(smallCfg());
    RunOutcome b = sim.run(smallCfg());
    EXPECT_EQ(a.gpu.cycles, b.gpu.cycles);
    EXPECT_EQ(a.gpu.rt.node_fetches, b.gpu.rt.node_fetches);
}

TEST(Simulation, CoopSpeedsUpDivergentScene)
{
    Comparison cmp = core::compareCoop("crnvl", smallCfg());
    EXPECT_GT(cmp.speedup(), 1.2);
    EXPECT_GT(cmp.coop.gpu.rt.steals, 0u);
    // Utilization improves (Fig. 10).
    EXPECT_GT(cmp.coop.gpu.avg_thread_utilization,
              cmp.base.gpu.avg_thread_utilization);
}

TEST(Simulation, CoopRaisesPowerLowersEdp)
{
    Comparison cmp = core::compareCoop("crnvl", smallCfg());
    EXPECT_GT(cmp.powerRatio(), 1.0);
    EXPECT_GT(cmp.edpImprovement(), 1.0);
}

TEST(Simulation, AoShaderRuns)
{
    const Simulation &sim = core::simulationFor("wknd");
    RunConfig c = smallCfg();
    c.shader = ShaderKind::AmbientOcclusion;
    RunOutcome r = sim.run(c);
    EXPECT_GT(r.gpu.rt.retired_warps, 0u);
}

TEST(Simulation, ShadowShaderRuns)
{
    const Simulation &sim = core::simulationFor("wknd");
    RunConfig c = smallCfg();
    c.shader = ShaderKind::Shadow;
    RunOutcome r = sim.run(c);
    EXPECT_GT(r.gpu.rt.retired_warps, 0u);
}

TEST(Simulation, FilmOutputFilled)
{
    const Simulation &sim = core::simulationFor("wknd");
    shaders::Film film(16, 16);
    sim.run(smallCfg(16), &film);
    EXPECT_EQ(film.samplesAdded(), 256u);
    EXPECT_GT(film.averageLuminance(), 0.0);
}

TEST(Simulation, TimelineRecorded)
{
    const Simulation &sim = core::simulationFor("bath");
    stats::TimelineRecorder rec(rtunit::kWarpSize);
    RunConfig c = smallCfg(16);
    c.gpu.trace.coop = true;
    sim.run(c, nullptr, &rec);
    std::uint64_t busy = 0;
    for (int t = 0; t < rtunit::kWarpSize; ++t)
        busy += rec.busyCycles(t);
    EXPECT_GT(busy, 0u);
}

TEST(Simulation, WarpBufferSweepBaselineMonotoneIsh)
{
    // Fig. 13 baseline trend at miniature scale: 16-entry buffer is
    // not slower than 1-entry.
    const Simulation &sim = core::simulationFor("bath");
    RunConfig c = smallCfg(16);
    c.gpu.trace.warp_buffer_entries = 1;
    RunOutcome small = sim.run(c);
    c.gpu.trace.warp_buffer_entries = 16;
    RunOutcome large = sim.run(c);
    EXPECT_LE(large.gpu.cycles, small.gpu.cycles);
}

TEST(Simulation, MobileConfigRuns)
{
    const Simulation &sim = core::simulationFor("wknd");
    RunConfig c = smallCfg(16);
    c.gpu = gpu::GpuConfig::mobileBench();
    RunOutcome r = sim.run(c);
    EXPECT_GT(r.gpu.cycles, 0u);
    EXPECT_GT(r.gpu.dram_utilization, 0.0);
}

} // namespace

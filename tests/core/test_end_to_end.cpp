/**
 * @file
 * End-to-end frame-level properties across registry scenes: the
 * timing simulator's image must equal the functional reference
 * renderer's, with and without CoopRT — at every scene tested.
 */

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace {

using namespace cooprt;

class FrameEquivalence
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(FrameEquivalence, TimingImageEqualsReference)
{
    const int res = 12;
    const core::Simulation &sim = core::simulationFor(GetParam());
    shaders::PtParams params;
    params.max_bounces = 5;

    shaders::Film reference(res, res);
    renderReference(sim.scene(), sim.bvh(), reference, 1, params);

    for (bool coop : {false, true}) {
        core::RunConfig cfg;
        cfg.resolution = res;
        cfg.pt = params;
        cfg.gpu.trace.coop = coop;
        shaders::Film film(res, res);
        sim.run(cfg, &film);
        EXPECT_EQ(film.samplesAdded(), std::uint64_t(res) * res)
            << GetParam() << " coop=" << coop;
        EXPECT_LT(film.mse(reference), 1e-10)
            << GetParam() << " coop=" << coop;
    }
}

TEST_P(FrameEquivalence, RelatedWorkKnobsPreserveImage)
{
    const int res = 10;
    const core::Simulation &sim = core::simulationFor(GetParam());
    shaders::PtParams params;
    params.max_bounces = 4;

    shaders::Film reference(res, res);
    renderReference(sim.scene(), sim.bvh(), reference, 1, params);

    core::RunConfig cfg;
    cfg.resolution = res;
    cfg.pt = params;
    cfg.gpu.trace.coop = true;
    cfg.gpu.trace.child_prefetch = true;
    cfg.gpu.trace.intersection_predictor = true;
    cfg.gpu.trace.sched = rtunit::WarpSchedPolicy::GreedyThenOldest;
    shaders::Film film(res, res);
    sim.run(cfg, &film);
    EXPECT_LT(film.mse(reference), 1e-10) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Scenes, FrameEquivalence,
                         ::testing::Values("wknd", "spnza", "crnvl",
                                           "bath"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

} // namespace

/**
 * @file
 * Pinned end-to-end cycle counts. These exact values were captured
 * from the repository's reference build and pin the timing model
 * bit-for-bit: *any* change to reported cycles — including from code
 * that claims to be purely observational (tracing, COOPRT_CHECK
 * audits) — fails here and must be an explicit, reviewed re-pin.
 *
 * The default build and the COOPRT_CHECK build must both pass this
 * file unchanged; that is the audit layer's zero-perturbation proof.
 */

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "memscope/memscope.hpp"
#include "raytrace/raytrace.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace cooprt;

core::RunOutcome
runPinned(const std::string &scene, int resolution,
          core::ShaderKind shader, bool coop,
          raytrace::Recorder *ray = nullptr,
          memscope::Collector *mscope = nullptr,
          telemetry::Recorder *telem = nullptr)
{
    core::RunConfig cfg;
    cfg.resolution = resolution;
    cfg.shader = shader;
    cfg.gpu.trace.coop = coop;
    cfg.ray_recorder = ray;
    cfg.memscope = mscope;
    cfg.telemetry = telem;
    return core::simulationFor(scene).run(cfg);
}

TEST(PinnedCycles, WkndPathTracingBaseline)
{
    const auto out = runPinned("wknd", 32,
                               core::ShaderKind::PathTracing, false);
    EXPECT_EQ(out.gpu.cycles, 34868u);
    EXPECT_EQ(out.gpu.rt.node_fetches, 4545u);
    EXPECT_EQ(out.gpu.rt.leaf_fetches, 2430u);
    EXPECT_EQ(out.gpu.rt.box_tests, 45996u);
    EXPECT_EQ(out.gpu.rt.tri_tests, 11363u);
    EXPECT_EQ(out.gpu.rt.steals, 0u);
    EXPECT_EQ(out.gpu.rt.stale_pops, 844u);
    EXPECT_EQ(out.gpu.rt.retired_warps, 155u);
    EXPECT_EQ(out.gpu.rt.max_trace_latency, 11839u);
    EXPECT_EQ(out.gpu.l1.accesses, 10863u);
    EXPECT_EQ(out.gpu.dram.bytes, 158336u);
    EXPECT_EQ(out.gpu.stalls.rt, 310412u);
}

TEST(PinnedCycles, WkndPathTracingCoop)
{
    const auto out = runPinned("wknd", 32,
                               core::ShaderKind::PathTracing, true);
    EXPECT_EQ(out.gpu.cycles, 18756u);
    EXPECT_EQ(out.gpu.rt.node_fetches, 6060u);
    EXPECT_EQ(out.gpu.rt.leaf_fetches, 3028u);
    EXPECT_EQ(out.gpu.rt.steals, 3750u);
    EXPECT_EQ(out.gpu.rt.retired_warps, 155u);
    EXPECT_EQ(out.gpu.rt.max_trace_latency, 6188u);
    EXPECT_EQ(out.gpu.dram.bytes, 202624u);
}

TEST(PinnedCycles, BunnyAmbientOcclusionCoop)
{
    const auto out = runPinned(
        "bunny", 24, core::ShaderKind::AmbientOcclusion, true);
    EXPECT_EQ(out.gpu.cycles, 17550u);
    EXPECT_EQ(out.gpu.rt.steals, 5129u);
    EXPECT_EQ(out.gpu.rt.retired_warps, 78u);
}

TEST(PinnedCycles, ShipShadowBaseline)
{
    const auto out =
        runPinned("ship", 24, core::ShaderKind::Shadow, false);
    EXPECT_EQ(out.gpu.cycles, 36233u);
    EXPECT_EQ(out.gpu.rt.stale_pops, 5123u);
    EXPECT_EQ(out.gpu.rt.retired_warps, 50u);
}

// The ray-provenance recorder claims to be purely observational; the
// pins below repeat two coop and one base run with a recorder
// attached and demand the exact same cycle counts as above.

TEST(PinnedCycles, WkndPathTracingCoopWithRayRecorder)
{
    raytrace::Recorder ray;
    const auto out = runPinned("wknd", 32,
                               core::ShaderKind::PathTracing, true,
                               &ray);
    EXPECT_EQ(out.gpu.cycles, 18756u);
    EXPECT_EQ(out.gpu.rt.steals, 3750u);
    EXPECT_EQ(out.gpu.rt.max_trace_latency, 6188u);
    EXPECT_EQ(out.gpu.dram.bytes, 202624u);
    EXPECT_TRUE(out.gpu.ray_summary.enabled);
    EXPECT_GT(ray.stats().rays_sampled, 0u);
}

TEST(PinnedCycles, BunnyAmbientOcclusionCoopWithRayRecorder)
{
    raytrace::Recorder ray;
    const auto out = runPinned(
        "bunny", 24, core::ShaderKind::AmbientOcclusion, true, &ray);
    EXPECT_EQ(out.gpu.cycles, 17550u);
    EXPECT_EQ(out.gpu.rt.steals, 5129u);
    EXPECT_EQ(out.gpu.rt.retired_warps, 78u);
}

TEST(PinnedCycles, ShipShadowBaselineWithRayRecorder)
{
    raytrace::Recorder ray;
    const auto out =
        runPinned("ship", 24, core::ShaderKind::Shadow, false, &ray);
    EXPECT_EQ(out.gpu.cycles, 36233u);
    EXPECT_EQ(out.gpu.rt.stale_pops, 5123u);
    EXPECT_EQ(out.gpu.rt.retired_warps, 50u);
}

// The memscope collector also claims to be purely observational; the
// four seed pins are repeated with memscope attached and must report
// the exact same cycle counts, plus a profiler/counter cross-check:
// every RT-unit node or leaf fetch is exactly one memscope record.

std::uint64_t
memscopeAccesses(const memscope::Collector &mscope)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < mscope.unitCount(); ++i)
        total += mscope.unitAt(i).accesses;
    return total;
}

TEST(PinnedCycles, WkndPathTracingBaselineWithMemscope)
{
    memscope::Collector mscope;
    const auto out = runPinned("wknd", 32,
                               core::ShaderKind::PathTracing, false,
                               nullptr, &mscope);
    EXPECT_EQ(out.gpu.cycles, 34868u);
    EXPECT_EQ(out.gpu.rt.node_fetches, 4545u);
    EXPECT_EQ(out.gpu.rt.leaf_fetches, 2430u);
    EXPECT_EQ(out.gpu.l1.accesses, 10863u);
    EXPECT_EQ(out.gpu.dram.bytes, 158336u);
    EXPECT_EQ(out.gpu.stalls.rt, 310412u);
    EXPECT_TRUE(out.gpu.memscope_summary.enabled);
    EXPECT_EQ(memscopeAccesses(mscope),
              out.gpu.rt.node_fetches + out.gpu.rt.leaf_fetches);
}

TEST(PinnedCycles, WkndPathTracingCoopWithMemscope)
{
    memscope::Collector mscope;
    const auto out = runPinned("wknd", 32,
                               core::ShaderKind::PathTracing, true,
                               nullptr, &mscope);
    EXPECT_EQ(out.gpu.cycles, 18756u);
    EXPECT_EQ(out.gpu.rt.steals, 3750u);
    EXPECT_EQ(out.gpu.rt.max_trace_latency, 6188u);
    EXPECT_EQ(out.gpu.dram.bytes, 202624u);
    EXPECT_EQ(memscopeAccesses(mscope),
              out.gpu.rt.node_fetches + out.gpu.rt.leaf_fetches);
}

TEST(PinnedCycles, BunnyAmbientOcclusionCoopWithMemscope)
{
    memscope::Collector mscope;
    const auto out =
        runPinned("bunny", 24, core::ShaderKind::AmbientOcclusion,
                  true, nullptr, &mscope);
    EXPECT_EQ(out.gpu.cycles, 17550u);
    EXPECT_EQ(out.gpu.rt.steals, 5129u);
    EXPECT_EQ(out.gpu.rt.retired_warps, 78u);
    EXPECT_EQ(memscopeAccesses(mscope),
              out.gpu.rt.node_fetches + out.gpu.rt.leaf_fetches);
}

TEST(PinnedCycles, ShipShadowBaselineWithMemscope)
{
    memscope::Collector mscope;
    const auto out = runPinned("ship", 24, core::ShaderKind::Shadow,
                               false, nullptr, &mscope);
    EXPECT_EQ(out.gpu.cycles, 36233u);
    EXPECT_EQ(out.gpu.rt.stale_pops, 5123u);
    EXPECT_EQ(out.gpu.rt.retired_warps, 50u);
    EXPECT_EQ(memscopeAccesses(mscope),
              out.gpu.rt.node_fetches + out.gpu.rt.leaf_fetches);
}

// The host-telemetry recorder watches the simulator process (wall
// clock, RSS), not the simulated machine; the four seed pins are
// repeated with a recorder attached and must report the exact same
// cycle counts, while the telemetry summary's deterministic fields
// must mirror the outcome.

TEST(PinnedCycles, WkndPathTracingBaselineWithTelemetry)
{
    telemetry::Recorder telem;
    const auto out = runPinned("wknd", 32,
                               core::ShaderKind::PathTracing, false,
                               nullptr, nullptr, &telem);
    EXPECT_EQ(out.gpu.cycles, 34868u);
    EXPECT_EQ(out.gpu.rt.node_fetches, 4545u);
    EXPECT_EQ(out.gpu.l1.accesses, 10863u);
    EXPECT_EQ(out.gpu.dram.bytes, 158336u);
    EXPECT_EQ(out.gpu.stalls.rt, 310412u);
    EXPECT_TRUE(out.telemetry.enabled);
    EXPECT_EQ(out.telemetry.cycles, out.gpu.cycles);
    EXPECT_EQ(out.telemetry.rays_retired, out.gpu.rt.retired_warps);
}

TEST(PinnedCycles, WkndPathTracingCoopWithTelemetry)
{
    telemetry::Recorder telem;
    const auto out = runPinned("wknd", 32,
                               core::ShaderKind::PathTracing, true,
                               nullptr, nullptr, &telem);
    EXPECT_EQ(out.gpu.cycles, 18756u);
    EXPECT_EQ(out.gpu.rt.steals, 3750u);
    EXPECT_EQ(out.gpu.rt.max_trace_latency, 6188u);
    EXPECT_EQ(out.gpu.dram.bytes, 202624u);
    EXPECT_EQ(out.telemetry.cycles, out.gpu.cycles);
}

TEST(PinnedCycles, BunnyAmbientOcclusionCoopWithTelemetry)
{
    telemetry::Recorder telem;
    const auto out =
        runPinned("bunny", 24, core::ShaderKind::AmbientOcclusion,
                  true, nullptr, nullptr, &telem);
    EXPECT_EQ(out.gpu.cycles, 17550u);
    EXPECT_EQ(out.gpu.rt.steals, 5129u);
    EXPECT_EQ(out.gpu.rt.retired_warps, 78u);
    EXPECT_EQ(out.telemetry.rays_retired, 78u);
}

TEST(PinnedCycles, ShipShadowBaselineWithTelemetry)
{
    telemetry::Recorder telem;
    const auto out = runPinned("ship", 24, core::ShaderKind::Shadow,
                               false, nullptr, nullptr, &telem);
    EXPECT_EQ(out.gpu.cycles, 36233u);
    EXPECT_EQ(out.gpu.rt.stale_pops, 5123u);
    EXPECT_EQ(out.gpu.rt.retired_warps, 50u);
    EXPECT_EQ(out.telemetry.cycles, 36233u);
}

} // namespace

/**
 * @file
 * Campaign-engine determinism: a parallel run must be bit-identical
 * to a serial run of the same jobs, on real simulations. The four
 * pinned seed baselines (tests/core/test_pinned_cycles.cpp) anchor
 * the comparison to absolute values, not just serial == parallel.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/report.hpp"
#include "exec/exec.hpp"

namespace {

using namespace cooprt;

exec::Job
pinnedJob(const std::string &scene, int resolution,
          core::ShaderKind shader, bool coop, const std::string &tag)
{
    core::RunConfig cfg;
    cfg.resolution = resolution;
    cfg.shader = shader;
    cfg.gpu.trace.coop = coop;
    return exec::Job{scene, cfg, tag};
}

std::vector<exec::Job>
pinnedJobs()
{
    std::vector<exec::Job> jobs;
    jobs.push_back(pinnedJob("wknd", 32, core::ShaderKind::PathTracing,
                             false, "wknd/pt/base"));
    jobs.push_back(pinnedJob("wknd", 32, core::ShaderKind::PathTracing,
                             true, "wknd/pt/coop"));
    jobs.push_back(pinnedJob("bunny", 24,
                             core::ShaderKind::AmbientOcclusion, true,
                             "bunny/ao/coop"));
    jobs.push_back(pinnedJob("ship", 24, core::ShaderKind::Shadow,
                             false, "ship/sh/base"));
    return jobs;
}

TEST(ExecCampaign, ParallelMatchesSerialBitIdentical)
{
    exec::CampaignOptions serial;
    serial.jobs = 1;
    const auto s = exec::runCampaign(pinnedJobs(), serial);

    exec::CampaignOptions parallel;
    parallel.jobs = 4;
    const auto p = exec::runCampaign(pinnedJobs(), parallel);

    ASSERT_EQ(s.size(), 4u);
    ASSERT_EQ(p.size(), 4u);
    for (std::size_t i = 0; i < s.size(); ++i) {
        ASSERT_TRUE(s[i].ok) << s[i].tag;
        ASSERT_TRUE(p[i].ok) << p[i].tag;
        EXPECT_EQ(s[i].index, i);
        EXPECT_EQ(p[i].index, i);
        EXPECT_EQ(s[i].tag, p[i].tag);
        // The full outcome, not just cycles: every counter, series
        // and report field must match bit-for-bit.
        EXPECT_EQ(core::toJson(s[i].outcome), core::toJson(p[i].outcome))
            << s[i].tag;
    }

    // Anchored to the seed baselines, so serial == parallel cannot
    // pass by both being wrong the same way.
    EXPECT_EQ(p[0].outcome.gpu.cycles, 34868u);
    EXPECT_EQ(p[1].outcome.gpu.cycles, 18756u);
    EXPECT_EQ(p[2].outcome.gpu.cycles, 17550u);
    EXPECT_EQ(p[3].outcome.gpu.cycles, 36233u);
}

TEST(ExecCampaign, JsonLinesByteIdenticalAcrossWorkerCounts)
{
    auto render = [](const std::vector<exec::JobResult> &results) {
        std::ostringstream os;
        for (const auto &r : results)
            exec::writeJsonLine(os, r);
        return os.str();
    };

    exec::CampaignOptions serial;
    serial.jobs = 1;
    exec::CampaignOptions parallel;
    parallel.jobs = 3;
    const std::string a = render(exec::runCampaign(pinnedJobs(), serial));
    const std::string b =
        render(exec::runCampaign(pinnedJobs(), parallel));
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"tag\":\"wknd/pt/base\""), std::string::npos);
    EXPECT_NE(a.find("\"ok\":true"), std::string::npos);
    // One line per job, each a complete JSON object.
    EXPECT_EQ(std::count(a.begin(), a.end(), '\n'), 4);
}

TEST(ExecCampaign, RegistersCountersInSession)
{
    trace::Session session;
    {
        exec::CampaignOptions opt;
        opt.jobs = 2;
        opt.session = &session;
        exec::Campaign campaign(opt);
        campaign.setRunner([](const exec::Job &, std::stop_token) {
            return core::RunOutcome{};
        });
        for (int i = 0; i < 5; ++i)
            campaign.add(exec::Job{"wknd", core::RunConfig{},
                                   "job" + std::to_string(i)});
        campaign.run();

        const auto samples = session.registry().snapshot("exec.*");
        ASSERT_FALSE(samples.empty());
        double queued = -1, done = -1, failed = -1;
        for (const auto &s : samples) {
            if (s.name == "exec.jobs_queued")
                queued = s.value;
            else if (s.name == "exec.jobs_done")
                done = s.value;
            else if (s.name == "exec.jobs_failed")
                failed = s.value;
        }
        EXPECT_EQ(queued, 5.0);
        EXPECT_EQ(done, 5.0);
        EXPECT_EQ(failed, 0.0);
    }
    // Probes are owner-tagged and dropped with the campaign.
    EXPECT_TRUE(session.registry().snapshot("exec.*").empty());
}

TEST(ExecCampaign, ResultsKeepSubmissionOrder)
{
    exec::CampaignOptions opt;
    opt.jobs = 4;
    exec::Campaign campaign(opt);
    // Later submissions finish first; the result vector must not.
    campaign.setRunner([](const exec::Job &job, std::stop_token) {
        const int idx = std::stoi(job.tag);
        std::this_thread::sleep_for(
            std::chrono::milliseconds((16 - idx) * 2));
        core::RunOutcome out;
        out.gpu.cycles = std::uint64_t(idx);
        return out;
    });
    for (int i = 0; i < 16; ++i)
        campaign.add(
            exec::Job{"wknd", core::RunConfig{}, std::to_string(i)});
    const auto results = campaign.run();
    ASSERT_EQ(results.size(), 16u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].tag, std::to_string(i));
        ASSERT_TRUE(results[i].ok);
        EXPECT_EQ(results[i].outcome.gpu.cycles, i);
    }
}

TEST(ExecCampaign, RayStatsSinksByteIdenticalAcrossWorkerCounts)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() / "cooprt_raystats_test";
    fs::remove_all(root);

    auto runWithJobs = [&](int jobs) {
        const fs::path dir = root / ("jobs" + std::to_string(jobs));
        fs::create_directories(dir);
        exec::CampaignOptions opt;
        opt.jobs = jobs;
        opt.raytrace_dir = dir.string();
        opt.ray_config.sample_k = 2;
        const auto results = exec::runCampaign(pinnedJobs(), opt);
        for (const auto &r : results)
            EXPECT_TRUE(r.ok) << r.tag;
        return dir;
    };
    const fs::path serial = runWithJobs(1);
    const fs::path parallel = runWithJobs(4);

    auto slurp = [](const fs::path &p) {
        std::ifstream is(p, std::ios::binary);
        EXPECT_TRUE(is.good()) << p;
        std::ostringstream ss;
        ss << is.rdbuf();
        return ss.str();
    };
    // Per-ray sampling is seed-derived, never scheduler-derived, so
    // every per-job raystats file must be byte-identical regardless
    // of how many workers ran the campaign.
    std::size_t files = 0;
    for (const auto &entry : fs::directory_iterator(serial)) {
        const std::string name = entry.path().filename().string();
        const std::string a = slurp(entry.path());
        const std::string b = slurp(parallel / name);
        EXPECT_EQ(a, b) << name;
        EXPECT_NE(a.find("\"rays_sampled\""), std::string::npos);
        files++;
    }
    EXPECT_EQ(files, 4u) << "one raystats file per job";
    fs::remove_all(root);
}

TEST(ExecCampaign, MemscopeSinksByteIdenticalAcrossWorkerCounts)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() / "cooprt_memscope_test";
    fs::remove_all(root);

    auto runWithJobs = [&](int jobs) {
        const fs::path dir = root / ("jobs" + std::to_string(jobs));
        fs::create_directories(dir);
        exec::CampaignOptions opt;
        opt.jobs = jobs;
        opt.memscope_dir = dir.string();
        const auto results = exec::runCampaign(pinnedJobs(), opt);
        for (const auto &r : results) {
            EXPECT_TRUE(r.ok) << r.tag;
            EXPECT_TRUE(r.outcome.gpu.memscope_summary.enabled)
                << r.tag;
        }
        return dir;
    };
    const fs::path serial = runWithJobs(1);
    const fs::path parallel = runWithJobs(4);

    auto slurp = [](const fs::path &p) {
        std::ifstream is(p, std::ios::binary);
        EXPECT_TRUE(is.good()) << p;
        std::ostringstream ss;
        ss << is.rdbuf();
        return ss.str();
    };
    // Memscope counters depend only on the simulated run, never on
    // host scheduling, so both the JSON profile and the folded node
    // heatmap must be byte-identical regardless of worker count.
    std::size_t json_files = 0, folded_files = 0;
    for (const auto &entry : fs::directory_iterator(serial)) {
        const std::string name = entry.path().filename().string();
        const std::string a = slurp(entry.path());
        const std::string b = slurp(parallel / name);
        EXPECT_EQ(a, b) << name;
        if (name.ends_with(".memscope.json")) {
            EXPECT_NE(a.find("\"reuse\""), std::string::npos) << name;
            json_files++;
        } else if (name.ends_with(".memscope.folded")) {
            EXPECT_NE(a.find(";depth1;node0 "), std::string::npos)
                << name;
            folded_files++;
        }
    }
    EXPECT_EQ(json_files, 4u) << "one memscope JSON per job";
    EXPECT_EQ(folded_files, 4u) << "one folded heatmap per job";
    fs::remove_all(root);
}

TEST(ExecCampaign, UnknownSceneIsAStructuredFailure)
{
    exec::CampaignOptions opt;
    opt.jobs = 2;
    std::vector<exec::Job> jobs;
    jobs.push_back(exec::Job{"no-such-scene", core::RunConfig{}, "bad"});
    jobs.push_back(pinnedJob("wknd", 32, core::ShaderKind::PathTracing,
                             false, "good"));
    const auto results = exec::runCampaign(std::move(jobs), opt);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].ok);
    ASSERT_TRUE(results[0].failure.has_value());
    EXPECT_EQ(results[0].failure->kind, exec::FailureKind::Exception);
    EXPECT_NE(results[0].failure->message.find("no-such-scene"),
              std::string::npos);
    // The bad job must not take the campaign down with it.
    ASSERT_TRUE(results[1].ok);
    EXPECT_EQ(results[1].outcome.gpu.cycles, 34868u);
}

TEST(ExecCampaign, SanitizeTagMakesFileNames)
{
    EXPECT_EQ(exec::sanitizeTag("fig09/crnvl coop#3"),
              "fig09_crnvl_coop_3");
    EXPECT_EQ(exec::sanitizeTag("a.b-c_9"), "a.b-c_9");
}

TEST(ExecCampaign, FailureKindNames)
{
    EXPECT_STREQ(exec::failureKindName(exec::FailureKind::Exception),
                 "exception");
    EXPECT_STREQ(exec::failureKindName(exec::FailureKind::Timeout),
                 "timeout");
}

} // namespace

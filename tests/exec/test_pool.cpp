/**
 * @file
 * The pool half of `cooprt::exec`: work stealing under skewed job
 * sizes, per-job fault isolation (exception capture, retry budget)
 * and wall-clock timeouts. These tests inject a stub runner and
 * never touch the simulator, so they are fast and run unchanged
 * under TSan (the CI `tsan` job exercises them).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "exec/exec.hpp"

namespace {

using namespace cooprt;
using namespace std::chrono_literals;

core::RunOutcome
outcomeWithCycles(std::uint64_t cycles)
{
    core::RunOutcome out;
    out.gpu.cycles = cycles;
    return out;
}

TEST(ExecPool, StealsAcrossWorkersUnderSkew)
{
    // Two workers, round-robin deal: worker 0 gets the even-indexed
    // jobs, worker 1 the odd ones. Job 0 pins worker 0 for ~150 ms
    // while worker 1 drains its own short jobs, so worker 0's
    // remaining queue must be stolen for the campaign to finish
    // promptly.
    exec::CampaignOptions opt;
    opt.jobs = 2;
    exec::Campaign campaign(opt);
    campaign.setRunner([](const exec::Job &job, std::stop_token) {
        std::this_thread::sleep_for(job.tag == "0" ? 150ms : 2ms);
        return core::RunOutcome{};
    });
    for (int i = 0; i < 12; ++i)
        campaign.add(
            exec::Job{"wknd", core::RunConfig{}, std::to_string(i)});
    const auto results = campaign.run();
    ASSERT_EQ(results.size(), 12u);
    for (const auto &r : results)
        EXPECT_TRUE(r.ok) << r.tag;
    EXPECT_GT(campaign.stats().steals.load(), 0u);
    EXPECT_EQ(campaign.stats().done.load(), 12u);
    EXPECT_EQ(campaign.stats().running.load(), 0u);
}

TEST(ExecPool, ThrowingJobIsIsolated)
{
    exec::CampaignOptions opt;
    opt.jobs = 3;
    exec::Campaign campaign(opt);
    campaign.setRunner([](const exec::Job &job, std::stop_token) {
        if (job.tag == "boom")
            throw std::runtime_error("injected fault");
        return outcomeWithCycles(7);
    });
    campaign.add(exec::Job{"wknd", core::RunConfig{}, "a"});
    campaign.add(exec::Job{"wknd", core::RunConfig{}, "boom"});
    campaign.add(exec::Job{"wknd", core::RunConfig{}, "b"});
    const auto results = campaign.run();

    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_TRUE(results[2].ok);
    EXPECT_FALSE(results[1].ok);
    ASSERT_TRUE(results[1].failure.has_value());
    EXPECT_EQ(results[1].failure->kind, exec::FailureKind::Exception);
    EXPECT_EQ(results[1].failure->message, "injected fault");
    EXPECT_EQ(campaign.stats().done.load(), 2u);
    EXPECT_EQ(campaign.stats().failed.load(), 1u);
    EXPECT_EQ(campaign.stats().timed_out.load(), 0u);
}

TEST(ExecPool, RetryBudgetRecoversTransientFailures)
{
    exec::CampaignOptions opt;
    opt.jobs = 2;
    opt.retries = 2;
    exec::Campaign campaign(opt);
    std::atomic<int> flaky_attempts{0};
    campaign.setRunner(
        [&flaky_attempts](const exec::Job &job, std::stop_token) {
            if (job.tag == "flaky" && ++flaky_attempts <= 2)
                throw std::runtime_error("transient");
            return outcomeWithCycles(11);
        });
    campaign.add(exec::Job{"wknd", core::RunConfig{}, "flaky"});
    campaign.add(exec::Job{"wknd", core::RunConfig{}, "steady"});
    const auto results = campaign.run();

    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 3);
    EXPECT_TRUE(results[1].ok);
    EXPECT_EQ(results[1].attempts, 1);
    EXPECT_EQ(campaign.stats().retried.load(), 2u);
    EXPECT_EQ(campaign.stats().failed.load(), 0u);
}

TEST(ExecPool, RetriesExhaustedReportsLastError)
{
    exec::CampaignOptions opt;
    opt.jobs = 1;
    opt.retries = 2;
    exec::Campaign campaign(opt);
    campaign.setRunner(
        [](const exec::Job &, std::stop_token) -> core::RunOutcome {
            throw std::runtime_error("always broken");
        });
    campaign.add(exec::Job{"wknd", core::RunConfig{}, "doomed"});
    const auto results = campaign.run();

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 3); // 1 + 2 retries
    ASSERT_TRUE(results[0].failure.has_value());
    EXPECT_EQ(results[0].failure->message, "always broken");
    EXPECT_EQ(campaign.stats().retried.load(), 2u);
    EXPECT_EQ(campaign.stats().failed.load(), 1u);
}

TEST(ExecPool, TimeoutFailsJobAndCampaignCompletes)
{
    exec::CampaignOptions opt;
    opt.jobs = 2;
    opt.retries = 3; // must NOT apply to timeouts
    opt.timeout_s = 0.2;
    exec::Campaign campaign(opt);
    campaign.setRunner([](const exec::Job &job, std::stop_token st) {
        if (job.tag == "slow") {
            // Cooperative runner: poll the stop token the watchdog
            // trips, bail out well before the 10 s worst case.
            for (int i = 0; i < 10000 && !st.stop_requested(); ++i)
                std::this_thread::sleep_for(1ms);
        }
        return outcomeWithCycles(3);
    });
    campaign.add(exec::Job{"wknd", core::RunConfig{}, "slow"});
    campaign.add(exec::Job{"wknd", core::RunConfig{}, "quick"});
    const auto results = campaign.run();

    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].ok);
    ASSERT_TRUE(results[0].failure.has_value());
    EXPECT_EQ(results[0].failure->kind, exec::FailureKind::Timeout);
    EXPECT_EQ(results[0].attempts, 1); // timeouts are never retried
    EXPECT_TRUE(results[1].ok);
    EXPECT_EQ(campaign.stats().timed_out.load(), 1u);
    EXPECT_EQ(campaign.stats().failed.load(), 1u);
    EXPECT_EQ(campaign.stats().retried.load(), 0u);
    // The watchdog stopped the slow job cooperatively, so the whole
    // campaign finished far inside the job's 10 s worst case.
    EXPECT_LT(campaign.wallSeconds(), 5.0);
}

TEST(ExecPool, CompletionHookSeesEveryFinalResult)
{
    std::atomic<int> calls{0};
    std::atomic<int> failures{0};
    exec::CampaignOptions opt;
    opt.jobs = 3;
    opt.on_job_done = [&](const exec::JobResult &r) {
        ++calls;
        if (!r.ok)
            ++failures;
    };
    exec::Campaign campaign(opt);
    campaign.setRunner([](const exec::Job &job, std::stop_token) {
        if (job.tag == "4")
            throw std::runtime_error("x");
        return core::RunOutcome{};
    });
    for (int i = 0; i < 9; ++i)
        campaign.add(
            exec::Job{"wknd", core::RunConfig{}, std::to_string(i)});
    campaign.run();
    EXPECT_EQ(calls.load(), 9);
    EXPECT_EQ(failures.load(), 1);
}

TEST(ExecPool, ZeroJobsRunsEmptyCampaign)
{
    exec::CampaignOptions opt;
    opt.jobs = 4;
    exec::Campaign campaign(opt);
    const auto results = campaign.run();
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(campaign.stats().done.load(), 0u);
}

} // namespace

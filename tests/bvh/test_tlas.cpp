/**
 * @file
 * Tests for the two-level (TLAS/BLAS) acceleration structure.
 */

#include <gtest/gtest.h>

#include "bvh/tlas.hpp"
#include "geom/rng.hpp"
#include "scene/primitives.hpp"

namespace {

using namespace cooprt;
using bvh::Blas;
using bvh::Instance;
using bvh::InstancedHit;
using bvh::Tlas;
using geom::Pcg32;
using geom::Ray;
using geom::RigidTransform;
using geom::Vec3;

std::shared_ptr<Blas>
boxBlas(const Vec3 &lo, const Vec3 &hi)
{
    scene::Mesh m;
    addBox(m, lo, hi);
    return std::make_shared<Blas>(std::move(m));
}

std::shared_ptr<Blas>
soupBlas(std::uint64_t seed, int n)
{
    scene::Mesh m;
    Pcg32 rng(seed);
    for (int i = 0; i < n; ++i) {
        Vec3 p = rng.nextInBox(Vec3(-1), Vec3(1));
        m.addTriangle({p, p + rng.nextUnitVector() * 0.2f,
                       p + rng.nextUnitVector() * 0.2f});
    }
    return std::make_shared<Blas>(std::move(m));
}

TEST(Tlas, EmptyMisses)
{
    Tlas t;
    t.build();
    EXPECT_FALSE(t.closestHit(Ray({0, 0, 0}, {0, 0, 1})).valid());
    EXPECT_FALSE(t.anyHit(Ray({0, 0, 0}, {0, 0, 1})));
}

TEST(Tlas, SingleIdentityInstanceMatchesBlas)
{
    Tlas t;
    auto blas = soupBlas(1, 300);
    const std::uint32_t b = t.addBlas(blas);
    t.addInstance({b, RigidTransform{}});
    t.build();

    Pcg32 rng(2);
    for (int i = 0; i < 200; ++i) {
        Ray r(rng.nextInBox(Vec3(-4), Vec3(4)), rng.nextUnitVector());
        auto direct = bvh::closestHit(blas->flat, blas->mesh, r);
        auto inst = t.closestHit(r);
        ASSERT_EQ(direct.hit(), inst.valid()) << i;
        if (direct.hit()) {
            EXPECT_FLOAT_EQ(direct.thit, inst.hit.thit) << i;
            EXPECT_EQ(inst.instance, 0u);
        }
    }
}

TEST(Tlas, TranslatedInstanceHitAtWorldPosition)
{
    Tlas t;
    const std::uint32_t b =
        t.addBlas(boxBlas({-1, -1, -1}, {1, 1, 1}));
    t.addInstance({b, RigidTransform::translate({10, 0, 0})});
    t.build();

    // World ray toward the translated box.
    Ray r({10, 0, -5}, {0, 0, 1});
    auto hit = t.closestHit(r);
    ASSERT_TRUE(hit.valid());
    EXPECT_NEAR(hit.hit.thit, 4.0f, 1e-4f);
    // The original object-space location is empty.
    EXPECT_FALSE(t.anyHit(Ray({0, 0, -5}, {0, 0, 1}, 1e-4f, 20.0f)));
}

TEST(Tlas, ClosestAcrossInstancesWins)
{
    Tlas t;
    const std::uint32_t b =
        t.addBlas(boxBlas({-1, -1, -1}, {1, 1, 1}));
    t.addInstance({b, RigidTransform::translate({0, 0, 5})});
    t.addInstance({b, RigidTransform::translate({0, 0, 10})});
    t.build();

    Ray r({0, 0, 0}, {0, 0, 1});
    auto hit = t.closestHit(r);
    ASSERT_TRUE(hit.valid());
    EXPECT_NEAR(hit.hit.thit, 4.0f, 1e-4f); // front face of nearest
    EXPECT_EQ(hit.instance, 0u);
}

TEST(Tlas, RotatedInstanceGeometryMoves)
{
    // A box offset to +x in object space, instanced with a 180-degree
    // Y rotation: it must appear at -x in world space.
    Tlas t;
    const std::uint32_t b = t.addBlas(boxBlas({3, -1, -1}, {5, 1, 1}));
    t.addInstance(
        {b, RigidTransform::rotateYTranslate(3.14159265f, {0, 0, 0})});
    t.build();

    EXPECT_TRUE(t.anyHit(Ray({-4, 0, -5}, {0, 0, 1}, 1e-4f, 20.0f)));
    EXPECT_FALSE(t.anyHit(Ray({4, 0, -5}, {0, 0, 1}, 1e-4f, 20.0f)));
}

TEST(Tlas, ManyInstancesMatchBruteForce)
{
    Tlas t;
    auto blas = soupBlas(3, 200);
    const std::uint32_t b = t.addBlas(blas);
    Pcg32 rng(4);
    std::vector<Instance> placed;
    for (int i = 0; i < 24; ++i) {
        Instance inst{b, RigidTransform::rotateYTranslate(
                             rng.nextRange(-3.0f, 3.0f),
                             rng.nextInBox(Vec3(-15), Vec3(15)))};
        placed.push_back(inst);
        t.addInstance(inst);
    }
    t.build();
    EXPECT_EQ(t.instanceCount(), 24u);

    // Brute-force oracle: traverse each instance independently.
    auto brute = [&](const Ray &r) {
        InstancedHit best;
        for (std::uint32_t i = 0; i < placed.size(); ++i) {
            Ray obj = placed[i].to_world.inverse().ray(r);
            obj.tmax = std::min(best.hit.thit, r.tmax);
            auto rec = bvh::closestHit(blas->flat, blas->mesh, obj);
            if (rec.hit() && rec.thit < best.hit.thit) {
                best.hit = rec;
                best.instance = i;
            }
        }
        return best;
    };

    for (int i = 0; i < 300; ++i) {
        Ray r(rng.nextInBox(Vec3(-20), Vec3(20)), rng.nextUnitVector());
        auto expect = brute(r);
        auto got = t.closestHit(r);
        ASSERT_EQ(expect.valid(), got.valid()) << i;
        if (expect.valid()) {
            EXPECT_FLOAT_EQ(expect.hit.thit, got.hit.thit) << i;
            EXPECT_EQ(expect.instance, got.instance) << i;
        }
        EXPECT_EQ(t.anyHit(r), expect.valid()) << i;
    }
}

TEST(Tlas, InstancingSharesStorage)
{
    Tlas t;
    const std::uint32_t b = t.addBlas(soupBlas(5, 500));
    for (int i = 0; i < 10; ++i)
        t.addInstance({b, RigidTransform::translate(
                              {float(i) * 5.0f, 0, 0})});
    t.build();
    EXPECT_EQ(t.instancedTriangles(), 5000u);
    EXPECT_EQ(t.storedTriangles(), 500u); // 10x reuse
}

TEST(Tlas, BadBlasIndexThrows)
{
    Tlas t;
    EXPECT_THROW(t.addInstance({0, RigidTransform{}}),
                 std::out_of_range);
    EXPECT_THROW(t.addBlas(nullptr), std::invalid_argument);
}

TEST(Tlas, QueryBeforeBuildThrows)
{
    Tlas t;
    t.addBlas(boxBlas({-1, -1, -1}, {1, 1, 1}));
    t.addInstance({0, RigidTransform{}});
    EXPECT_THROW(t.closestHit(Ray({0, 0, -5}, {0, 0, 1})),
                 std::logic_error);
}

TEST(Tlas, WorldBoundsCoverInstances)
{
    Tlas t;
    const std::uint32_t b =
        t.addBlas(boxBlas({-1, -1, -1}, {1, 1, 1}));
    t.addInstance({b, RigidTransform::translate({10, 0, 0})});
    t.addInstance({b, RigidTransform::translate({-10, 0, 0})});
    t.build();
    EXPECT_LE(t.worldBounds().lo.x, -11.0f + 1e-4f);
    EXPECT_GE(t.worldBounds().hi.x, 11.0f - 1e-4f);
}

} // namespace

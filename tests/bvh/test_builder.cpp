/**
 * @file
 * Tests for the binned SAH binary BVH builder.
 */

#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "bvh/builder.hpp"
#include "geom/rng.hpp"
#include "scene/primitives.hpp"

namespace {

using namespace cooprt;
using bvh::BinaryBvh;
using bvh::BinaryNode;
using bvh::buildBinaryBvh;
using geom::Pcg32;
using geom::Vec3;
using scene::Mesh;

Mesh
randomSoup(std::uint64_t seed, int n, float extent = 10.0f)
{
    Mesh m;
    Pcg32 rng(seed);
    for (int i = 0; i < n; ++i) {
        Vec3 p = rng.nextInBox(Vec3(-extent), Vec3(extent));
        Vec3 e1 = rng.nextUnitVector() * 0.3f;
        Vec3 e2 = rng.nextUnitVector() * 0.3f;
        m.addTriangle({p, p + e1, p + e2});
    }
    return m;
}

TEST(Builder, EmptyMeshGivesEmptyBvh)
{
    Mesh m;
    EXPECT_TRUE(buildBinaryBvh(m).empty());
}

TEST(Builder, SingleTriangleIsLeafRoot)
{
    Mesh m;
    m.addTriangle({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
    BinaryBvh b = buildBinaryBvh(m);
    ASSERT_EQ(b.nodes.size(), 1u);
    EXPECT_TRUE(b.root().isLeaf());
    EXPECT_EQ(b.root().prim_count, 1u);
}

TEST(Builder, RootBoundsEqualMeshBounds)
{
    Mesh m = randomSoup(1, 500);
    BinaryBvh b = buildBinaryBvh(m);
    EXPECT_EQ(b.root().bounds.lo, m.bounds().lo);
    EXPECT_EQ(b.root().bounds.hi, m.bounds().hi);
}

TEST(Builder, PrimOrderIsPermutation)
{
    Mesh m = randomSoup(2, 777);
    BinaryBvh b = buildBinaryBvh(m);
    std::set<std::uint32_t> seen(b.prim_order.begin(),
                                 b.prim_order.end());
    EXPECT_EQ(seen.size(), m.size());
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), std::uint32_t(m.size() - 1));
}

TEST(Builder, LeafRangesPartitionPrimOrder)
{
    Mesh m = randomSoup(3, 600);
    BinaryBvh b = buildBinaryBvh(m);
    std::vector<int> covered(m.size(), 0);
    for (const BinaryNode &n : b.nodes) {
        if (!n.isLeaf())
            continue;
        for (std::uint32_t k = 0; k < n.prim_count; ++k)
            covered[n.first_prim + k]++;
    }
    for (std::size_t i = 0; i < covered.size(); ++i)
        EXPECT_EQ(covered[i], 1) << "slot " << i;
}

TEST(Builder, ParentContainsChildren)
{
    Mesh m = randomSoup(4, 800);
    BinaryBvh b = buildBinaryBvh(m);
    const float eps = 1e-4f;
    for (const BinaryNode &n : b.nodes) {
        if (n.isLeaf())
            continue;
        cooprt::geom::AABB inflated{n.bounds.lo - Vec3(eps),
                                    n.bounds.hi + Vec3(eps)};
        EXPECT_TRUE(inflated.contains(b.nodes[n.left].bounds));
        EXPECT_TRUE(inflated.contains(b.nodes[n.right].bounds));
    }
}

TEST(Builder, LeafBoundsContainTheirPrimitives)
{
    Mesh m = randomSoup(5, 400);
    BinaryBvh b = buildBinaryBvh(m);
    const float eps = 1e-4f;
    for (const BinaryNode &n : b.nodes) {
        if (!n.isLeaf())
            continue;
        cooprt::geom::AABB inflated{n.bounds.lo - Vec3(eps),
                                    n.bounds.hi + Vec3(eps)};
        for (std::uint32_t k = 0; k < n.prim_count; ++k) {
            std::uint32_t prim = b.prim_order[n.first_prim + k];
            EXPECT_TRUE(inflated.contains(m.tri(prim).bounds()));
        }
    }
}

TEST(Builder, RespectsMaxLeafSize)
{
    Mesh m = randomSoup(6, 1000);
    bvh::BuildConfig cfg;
    cfg.max_leaf_size = 2;
    BinaryBvh b = buildBinaryBvh(m, cfg);
    for (const BinaryNode &n : b.nodes)
        if (n.isLeaf()) {
            EXPECT_LE(n.prim_count, 2u);
        }
}

TEST(Builder, DepthIsLogarithmicForUniformSoup)
{
    Mesh m = randomSoup(7, 4096);
    BinaryBvh b = buildBinaryBvh(m);
    // 4096 prims / 4-per-leaf = 1024 leaves; a quality SAH tree
    // should stay well under 3x the balanced depth (~10).
    EXPECT_LE(b.maxDepth(), 32);
    EXPECT_GE(b.maxDepth(), 10);
}

TEST(Builder, IdenticalCentroidsDoNotRecurseForever)
{
    // 100 triangles stacked at the same location: SAH cannot split by
    // centroid, so the median fallback must terminate the build.
    Mesh m;
    for (int i = 0; i < 100; ++i)
        m.addTriangle({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
    BinaryBvh b = buildBinaryBvh(m);
    EXPECT_FALSE(b.empty());
    EXPECT_LE(b.maxDepth(), 10); // ceil(log2(100/4)) + margin
}

TEST(Builder, DeterministicAcrossRuns)
{
    Mesh m = randomSoup(8, 500);
    BinaryBvh a = buildBinaryBvh(m);
    BinaryBvh b = buildBinaryBvh(m);
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    EXPECT_EQ(a.prim_order, b.prim_order);
}

TEST(Builder, NodeCountLinearInPrims)
{
    Mesh m = randomSoup(9, 2000);
    BinaryBvh b = buildBinaryBvh(m);
    // A binary tree with L leaves has 2L-1 nodes; leaves hold >= 1
    // prim each, so nodes <= 2 * prims.
    EXPECT_LE(b.nodes.size(), 2 * m.size());
}

TEST(Builder, SahBeatsMedianOnClusteredInput)
{
    // Two distant clusters: SAH should isolate them near the root,
    // which shows as the root's children having much smaller area
    // than the root.
    Mesh m;
    Pcg32 rng(10);
    for (int i = 0; i < 200; ++i) {
        Vec3 p = rng.nextInBox(Vec3(-1), Vec3(1));
        m.addTriangle({p, p + Vec3(0.1f, 0, 0), p + Vec3(0, 0.1f, 0)});
    }
    for (int i = 0; i < 200; ++i) {
        Vec3 p = rng.nextInBox(Vec3(99), Vec3(101));
        m.addTriangle({p, p + Vec3(0.1f, 0, 0), p + Vec3(0, 0.1f, 0)});
    }
    BinaryBvh b = buildBinaryBvh(m);
    const BinaryNode &root = b.root();
    ASSERT_FALSE(root.isLeaf());
    float child_area = b.nodes[root.left].bounds.surfaceArea() +
                       b.nodes[root.right].bounds.surfaceArea();
    EXPECT_LT(child_area, 0.2f * root.bounds.surfaceArea());
}

TEST(Builder, MedianSplitBuildsValidTree)
{
    Mesh m = randomSoup(20, 1500);
    bvh::BuildConfig cfg;
    cfg.strategy = bvh::SplitStrategy::MedianSplit;
    BinaryBvh b = buildBinaryBvh(m, cfg);
    ASSERT_FALSE(b.empty());
    // Same structural invariants as SAH.
    std::size_t leaf_prims = 0;
    for (const BinaryNode &n : b.nodes)
        if (n.isLeaf())
            leaf_prims += n.prim_count;
    EXPECT_EQ(leaf_prims, m.size());
    // Median split is perfectly balanced: depth == ceil(lg(n/leaf))+1.
    EXPECT_LE(b.maxDepth(), 11);
}

TEST(Builder, SahProducesTighterTreesThanMedian)
{
    // The quality metric: total surface area of internal nodes —
    // proportional to expected node visits for random rays.
    Mesh m;
    Pcg32 rng(21);
    for (int c = 0; c < 10; ++c) {
        Vec3 ctr = rng.nextInBox(Vec3(-40), Vec3(40));
        for (int i = 0; i < 200; ++i) {
            Vec3 p = ctr + rng.nextUnitVector() * 2.0f;
            m.addTriangle({p, p + rng.nextUnitVector() * 0.3f,
                           p + rng.nextUnitVector() * 0.3f});
        }
    }
    auto area_of = [&](bvh::SplitStrategy s) {
        bvh::BuildConfig cfg;
        cfg.strategy = s;
        BinaryBvh b = buildBinaryBvh(m, cfg);
        double area = 0;
        for (const BinaryNode &n : b.nodes)
            if (!n.isLeaf())
                area += n.bounds.surfaceArea();
        return area;
    };
    EXPECT_LT(area_of(bvh::SplitStrategy::BinnedSah),
              0.8 * area_of(bvh::SplitStrategy::MedianSplit));
}

/** Parameterized sweep: structural invariants hold at many sizes. */
class BuilderSweep : public ::testing::TestWithParam<int>
{};

TEST_P(BuilderSweep, InvariantsHold)
{
    Mesh m = randomSoup(11 + GetParam(), GetParam());
    BinaryBvh b = buildBinaryBvh(m);
    ASSERT_FALSE(b.empty());
    EXPECT_EQ(b.prim_order.size(), m.size());

    std::size_t leaf_prims = 0;
    for (const BinaryNode &n : b.nodes) {
        if (n.isLeaf()) {
            EXPECT_GE(n.prim_count, 1u);
            leaf_prims += n.prim_count;
        } else {
            EXPECT_GE(n.left, 0);
            EXPECT_GE(n.right, 0);
            EXPECT_LT(std::size_t(n.left), b.nodes.size());
            EXPECT_LT(std::size_t(n.right), b.nodes.size());
        }
    }
    EXPECT_EQ(leaf_prims, m.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BuilderSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 16, 33,
                                           100, 257, 1000, 3000));

} // namespace

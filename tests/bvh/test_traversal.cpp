/**
 * @file
 * Tests for the reference BVH traversal, including the key property
 * test: BVH closest-hit == brute force over every triangle.
 */

#include <gtest/gtest.h>

#include "bvh/traversal.hpp"
#include "geom/rng.hpp"
#include "scene/generators.hpp"
#include "scene/primitives.hpp"

namespace {

using namespace cooprt;
using bvh::anyHit;
using bvh::bruteForceClosest;
using bvh::buildWideBvh;
using bvh::closestHit;
using bvh::FlatBvh;
using bvh::TraversalStats;
using geom::HitRecord;
using geom::kNoHit;
using geom::Pcg32;
using geom::Ray;
using geom::Vec3;
using scene::Mesh;

Mesh
randomSoup(std::uint64_t seed, int n)
{
    Mesh m;
    Pcg32 rng(seed);
    for (int i = 0; i < n; ++i) {
        Vec3 p = rng.nextInBox(Vec3(-10), Vec3(10));
        Vec3 e1 = rng.nextUnitVector() * 0.5f;
        Vec3 e2 = rng.nextUnitVector() * 0.5f;
        m.addTriangle({p, p + e1, p + e2});
    }
    return m;
}

TEST(Traversal, EmptySceneMisses)
{
    Mesh m;
    FlatBvh flat(buildWideBvh(m));
    Ray r({0, 0, 0}, {0, 0, 1});
    EXPECT_FALSE(closestHit(flat, m, r).hit());
    EXPECT_FALSE(anyHit(flat, m, r));
}

TEST(Traversal, SingleTriangleHit)
{
    Mesh m;
    m.addTriangle({{-1, -1, 5}, {1, -1, 5}, {0, 1, 5}});
    FlatBvh flat(buildWideBvh(m));
    Ray r({0, 0, 0}, {0, 0, 1});
    HitRecord rec = closestHit(flat, m, r);
    ASSERT_TRUE(rec.hit());
    EXPECT_FLOAT_EQ(rec.thit, 5.0f);
    EXPECT_EQ(rec.prim_id, 0u);
    EXPECT_TRUE(anyHit(flat, m, r));
}

TEST(Traversal, PicksClosestOfStackedTriangles)
{
    Mesh m;
    for (int i = 1; i <= 8; ++i)
        m.addTriangle({{-1, -1, float(i)}, {1, -1, float(i)},
                       {0, 1, float(i)}});
    FlatBvh flat(buildWideBvh(m));
    Ray r({0, 0, 0}, {0, 0, 1});
    HitRecord rec = closestHit(flat, m, r);
    ASSERT_TRUE(rec.hit());
    EXPECT_FLOAT_EQ(rec.thit, 1.0f);
    EXPECT_EQ(rec.prim_id, 0u);
}

TEST(Traversal, RespectsRayTmax)
{
    Mesh m;
    m.addTriangle({{-1, -1, 5}, {1, -1, 5}, {0, 1, 5}});
    FlatBvh flat(buildWideBvh(m));
    Ray shortRay({0, 0, 0}, {0, 0, 1}, 1e-4f, 2.0f);
    EXPECT_FALSE(closestHit(flat, m, shortRay).hit());
    EXPECT_FALSE(anyHit(flat, m, shortRay));
}

TEST(Traversal, NormalFacesRayOrigin)
{
    Mesh m;
    m.addTriangle({{-1, -1, 5}, {1, -1, 5}, {0, 1, 5}});
    FlatBvh flat(buildWideBvh(m));
    HitRecord rec = closestHit(flat, m, Ray({0, 0, 0}, {0, 0, 1}));
    ASSERT_TRUE(rec.hit());
    EXPECT_LT(rec.normal.z, 0.0f); // opposes +z ray
}

TEST(Traversal, StatsAreCollected)
{
    Mesh m = randomSoup(1, 2000);
    FlatBvh flat(buildWideBvh(m));
    TraversalStats st;
    Ray r({0, 0, -30}, {0, 0, 1});
    closestHit(flat, m, r, &st);
    EXPECT_GT(st.nodes_visited, 0u);
    EXPECT_GT(st.box_tests, 0u);
    EXPECT_GT(st.max_stack_depth, 0u);
}

TEST(Traversal, MissingRayVisitsNothing)
{
    Mesh m = randomSoup(2, 500);
    FlatBvh flat(buildWideBvh(m));
    TraversalStats st;
    Ray r({0, 100, 0}, {0, 1, 0}); // up and away
    EXPECT_FALSE(closestHit(flat, m, r, &st).hit());
    EXPECT_EQ(st.nodes_visited, 0u); // root box rejected
}

TEST(Traversal, AnyHitCheaperThanClosestHit)
{
    Mesh m = randomSoup(3, 5000);
    FlatBvh flat(buildWideBvh(m));
    Pcg32 rng(3);
    std::uint64_t any_work = 0, closest_work = 0;
    for (int i = 0; i < 200; ++i) {
        Ray r(rng.nextInBox(Vec3(-12), Vec3(12)), rng.nextUnitVector());
        TraversalStats sa, sc;
        bool a = anyHit(flat, m, r, &sa);
        HitRecord c = closestHit(flat, m, r, &sc);
        EXPECT_EQ(a, c.hit()) << "iter " << i;
        any_work += sa.tri_tests + sa.box_tests;
        closest_work += sc.tri_tests + sc.box_tests;
    }
    EXPECT_LT(any_work, closest_work);
}

/**
 * THE key correctness property: BVH traversal through the quantized
 * 6-wide flat layout finds exactly the same closest hit as brute
 * force over all triangles.
 */
class OracleTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(OracleTest, MatchesBruteForceOnRandomSoup)
{
    Mesh m = randomSoup(GetParam(), 1500);
    FlatBvh flat(buildWideBvh(m));
    Pcg32 rng(GetParam() * 31 + 7);
    for (int i = 0; i < 300; ++i) {
        Vec3 o = rng.nextInBox(Vec3(-15), Vec3(15));
        Vec3 target = rng.nextInBox(Vec3(-8), Vec3(8));
        if ((target - o).lengthSq() < 1e-6f)
            continue;
        Ray r(o, normalize(target - o));
        HitRecord ref = bruteForceClosest(m, r);
        HitRecord got = closestHit(flat, m, r);
        ASSERT_EQ(ref.hit(), got.hit()) << "iter " << i;
        if (ref.hit()) {
            EXPECT_EQ(ref.prim_id, got.prim_id) << "iter " << i;
            EXPECT_FLOAT_EQ(ref.thit, got.thit) << "iter " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(OracleSceneTest, MatchesBruteForceOnGeneratedScene)
{
    scene::Scene s = scene::makeClosedRoomScene("t", 5, 8, 0.1f, 6);
    FlatBvh flat(buildWideBvh(s.mesh));
    Pcg32 rng(99);
    const auto &b = s.mesh.bounds();
    for (int i = 0; i < 150; ++i) {
        Vec3 o = rng.nextInBox(b.lo, b.hi);
        Ray r(o, rng.nextUnitVector());
        HitRecord ref = bruteForceClosest(s.mesh, r);
        HitRecord got = closestHit(flat, s.mesh, r);
        ASSERT_EQ(ref.hit(), got.hit()) << "iter " << i;
        if (ref.hit()) {
            EXPECT_FLOAT_EQ(ref.thit, got.thit) << "iter " << i;
        }
    }
}

TEST(OracleSceneTest, AnyHitAgreesWithBruteForce)
{
    Mesh m = randomSoup(77, 1000);
    FlatBvh flat(buildWideBvh(m));
    Pcg32 rng(78);
    for (int i = 0; i < 200; ++i) {
        Ray r(rng.nextInBox(Vec3(-12), Vec3(12)), rng.nextUnitVector(),
              1e-4f, rng.nextRange(1.0f, 30.0f));
        EXPECT_EQ(anyHit(flat, m, r), bruteForceClosest(m, r).hit())
            << "iter " << i;
    }
}

} // namespace

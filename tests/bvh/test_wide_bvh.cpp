/**
 * @file
 * Tests for the 6-ary wide BVH collapse.
 */

#include <gtest/gtest.h>

#include "bvh/wide_bvh.hpp"
#include "geom/rng.hpp"

namespace {

using namespace cooprt;
using bvh::buildBinaryBvh;
using bvh::buildWideBvh;
using bvh::collapseToWide;
using bvh::kWideArity;
using bvh::WideBvh;
using bvh::WideNode;
using geom::Pcg32;
using geom::Vec3;
using scene::Mesh;

Mesh
randomSoup(std::uint64_t seed, int n)
{
    Mesh m;
    Pcg32 rng(seed);
    for (int i = 0; i < n; ++i) {
        Vec3 p = rng.nextInBox(Vec3(-10), Vec3(10));
        Vec3 e1 = rng.nextUnitVector() * 0.3f;
        Vec3 e2 = rng.nextUnitVector() * 0.3f;
        m.addTriangle({p, p + e1, p + e2});
    }
    return m;
}

TEST(WideBvh, EmptyCollapse)
{
    EXPECT_TRUE(collapseToWide(bvh::BinaryBvh{}).empty());
}

TEST(WideBvh, SingleLeafRoot)
{
    Mesh m;
    m.addTriangle({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
    WideBvh w = buildWideBvh(m);
    ASSERT_EQ(w.nodes.size(), 1u);
    EXPECT_TRUE(w.root().isLeaf());
}

TEST(WideBvh, ArityNeverExceedsSix)
{
    WideBvh w = buildWideBvh(randomSoup(1, 2000));
    for (const WideNode &n : w.nodes)
        EXPECT_LE(int(n.child_count), kWideArity);
}

TEST(WideBvh, InternalNodesAreMostlyFull)
{
    // The collapse should produce nodes well past binary arity;
    // the greedy largest-area expansion averages ~3.8 of 6 on a
    // uniform soup (deeper subtrees run out of internal candidates).
    WideBvh w = buildWideBvh(randomSoup(2, 4000));
    std::size_t total = 0, internals = 0;
    for (const WideNode &n : w.nodes) {
        if (n.isLeaf())
            continue;
        internals++;
        total += n.child_count;
    }
    ASSERT_GT(internals, 0u);
    EXPECT_GT(double(total) / double(internals), 3.5);
}

TEST(WideBvh, DepthNotGreaterThanBinary)
{
    Mesh m = randomSoup(3, 3000);
    auto bin = buildBinaryBvh(m);
    auto wide = collapseToWide(bin);
    EXPECT_LE(wide.maxDepth(), bin.maxDepth());
    // And it should be a real compression for a tree this large.
    EXPECT_LT(wide.maxDepth(), bin.maxDepth());
}

TEST(WideBvh, ParentContainsChildren)
{
    WideBvh w = buildWideBvh(randomSoup(4, 2000));
    const float eps = 1e-4f;
    for (const WideNode &n : w.nodes) {
        for (int c = 0; c < n.child_count; ++c) {
            geom::AABB inflated{n.bounds.lo - Vec3(eps),
                                n.bounds.hi + Vec3(eps)};
            EXPECT_TRUE(inflated.contains(w.nodes[n.child[c]].bounds));
        }
    }
}

TEST(WideBvh, EveryNodeReachableExactlyOnce)
{
    WideBvh w = buildWideBvh(randomSoup(5, 1500));
    std::vector<int> refs(w.nodes.size(), 0);
    refs[0] = 1; // root
    for (const WideNode &n : w.nodes)
        for (int c = 0; c < n.child_count; ++c)
            refs[n.child[c]]++;
    for (std::size_t i = 0; i < refs.size(); ++i)
        EXPECT_EQ(refs[i], 1) << "node " << i;
}

TEST(WideBvh, LeafRangesCoverAllPrims)
{
    Mesh m = randomSoup(6, 1234);
    WideBvh w = buildWideBvh(m);
    std::vector<int> covered(m.size(), 0);
    for (const WideNode &n : w.nodes) {
        if (!n.isLeaf())
            continue;
        for (std::uint32_t k = 0; k < n.prim_count; ++k)
            covered[n.first_prim + k]++;
    }
    for (std::size_t i = 0; i < covered.size(); ++i)
        ASSERT_EQ(covered[i], 1) << "slot " << i;
}

TEST(WideBvh, PrimOrderPreserved)
{
    Mesh m = randomSoup(7, 500);
    auto bin = buildBinaryBvh(m);
    auto wide = collapseToWide(bin);
    EXPECT_EQ(wide.prim_order, bin.prim_order);
}

TEST(WideBvh, CountsAddUp)
{
    WideBvh w = buildWideBvh(randomSoup(8, 2000));
    EXPECT_EQ(w.leafCount() + w.internalCount(), w.nodes.size());
    EXPECT_GT(w.leafCount(), 0u);
}

TEST(WideBvh, FewerNodesThanBinary)
{
    Mesh m = randomSoup(9, 3000);
    auto bin = buildBinaryBvh(m);
    auto wide = collapseToWide(bin);
    EXPECT_LT(wide.nodes.size(), bin.nodes.size());
}

} // namespace

/**
 * @file
 * Tests for the flat byte-addressed quantized BVH layout.
 */

#include <set>

#include <gtest/gtest.h>

#include "bvh/flat_bvh.hpp"
#include "geom/rng.hpp"

namespace {

using namespace cooprt;
using bvh::buildWideBvh;
using bvh::ChildInfo;
using bvh::FlatBvh;
using bvh::kNodeBase;
using bvh::kNodeBytes;
using bvh::kTriBase;
using bvh::kTriBytes;
using bvh::NodeRef;
using geom::Pcg32;
using geom::Vec3;
using scene::Mesh;

Mesh
randomSoup(std::uint64_t seed, int n)
{
    Mesh m;
    Pcg32 rng(seed);
    for (int i = 0; i < n; ++i) {
        Vec3 p = rng.nextInBox(Vec3(-10), Vec3(10));
        Vec3 e1 = rng.nextUnitVector() * 0.3f;
        Vec3 e2 = rng.nextUnitVector() * 0.3f;
        m.addTriangle({p, p + e1, p + e2});
    }
    return m;
}

TEST(NodeRefPacking, InternalRoundTrip)
{
    NodeRef r = NodeRef::internal(123456);
    EXPECT_FALSE(r.isLeaf());
    EXPECT_EQ(r.nodeIndex(), 123456u);
}

TEST(NodeRefPacking, LeafRoundTrip)
{
    NodeRef r = NodeRef::leaf(0x00abcdefu, 5);
    EXPECT_TRUE(r.isLeaf());
    EXPECT_EQ(r.firstSlot(), 0x00abcdefu);
    EXPECT_EQ(r.primCount(), 5u);
}

TEST(NodeRefPacking, DefaultIsInternalZero)
{
    NodeRef r;
    EXPECT_FALSE(r.isLeaf());
    EXPECT_EQ(r.nodeIndex(), 0u);
}

TEST(FlatBvh, AddressArithmetic)
{
    FlatBvh flat(buildWideBvh(randomSoup(1, 500)));
    NodeRef internal = NodeRef::internal(3);
    EXPECT_EQ(flat.addressOf(internal), kNodeBase + 3 * kNodeBytes);
    EXPECT_EQ(flat.fetchBytes(internal), kNodeBytes);

    NodeRef leaf = NodeRef::leaf(10, 4);
    EXPECT_EQ(flat.addressOf(leaf), kTriBase + 10 * kTriBytes);
    EXPECT_EQ(flat.fetchBytes(leaf), 4 * kTriBytes);
}

TEST(FlatBvh, NodeAndTriRegionsDisjoint)
{
    FlatBvh flat(buildWideBvh(randomSoup(2, 5000)));
    const std::uint64_t node_end =
        kNodeBase + flat.nodeCount() * kNodeBytes;
    EXPECT_LT(node_end, kTriBase);
}

TEST(FlatBvh, RootBoundsMatchMesh)
{
    Mesh m = randomSoup(3, 700);
    FlatBvh flat(buildWideBvh(m));
    EXPECT_EQ(flat.rootBounds().lo, m.bounds().lo);
    EXPECT_EQ(flat.rootBounds().hi, m.bounds().hi);
}

TEST(FlatBvh, DecodedChildBoxesContainSubtreeBoxes)
{
    auto wide = buildWideBvh(randomSoup(4, 1000));
    FlatBvh flat(wide);

    // Walk the flat tree; every decoded child box must contain all
    // primitives reachable below it. Check leaves directly.
    Mesh m = randomSoup(4, 1000);
    std::vector<NodeRef> stack{flat.root()};
    while (!stack.empty()) {
        NodeRef n = stack.back();
        stack.pop_back();
        if (n.isLeaf())
            continue;
        for (int c = 0; c < flat.childCount(n); ++c) {
            ChildInfo info = flat.child(n, c);
            if (info.ref.isLeaf()) {
                for (std::uint32_t k = 0; k < info.ref.primCount();
                     ++k) {
                    std::uint32_t prim =
                        flat.primAt(info.ref.firstSlot() + k);
                    geom::AABB inflated{info.box.lo - Vec3(1e-3f),
                                        info.box.hi + Vec3(1e-3f)};
                    EXPECT_TRUE(
                        inflated.contains(m.tri(prim).bounds()))
                        << "prim " << prim;
                }
            } else {
                stack.push_back(info.ref);
            }
        }
    }
}

TEST(FlatBvh, AllLeafSlotsReachable)
{
    Mesh m = randomSoup(5, 800);
    FlatBvh flat(buildWideBvh(m));
    std::vector<int> covered(m.size(), 0);
    std::vector<NodeRef> stack{flat.root()};
    while (!stack.empty()) {
        NodeRef n = stack.back();
        stack.pop_back();
        if (n.isLeaf()) {
            for (std::uint32_t k = 0; k < n.primCount(); ++k)
                covered[n.firstSlot() + k]++;
            continue;
        }
        for (int c = 0; c < flat.childCount(n); ++c)
            stack.push_back(flat.child(n, c).ref);
    }
    for (std::size_t i = 0; i < covered.size(); ++i)
        ASSERT_EQ(covered[i], 1) << "slot " << i;
}

TEST(FlatBvh, StatsConsistent)
{
    Mesh m = randomSoup(6, 2000);
    auto wide = buildWideBvh(m);
    FlatBvh flat(wide);
    auto s = flat.stats();
    EXPECT_EQ(s.triangles, m.size());
    EXPECT_EQ(s.internal_nodes, wide.internalCount());
    EXPECT_EQ(s.leaf_nodes, wide.leafCount());
    EXPECT_EQ(s.max_depth, wide.maxDepth());
    EXPECT_EQ(s.size_bytes, s.internal_nodes * kNodeBytes +
                                s.triangles * kTriBytes);
    EXPECT_GT(s.sizeMiB(), 0.0);
}

TEST(FlatBvh, SingleLeafTree)
{
    Mesh m;
    m.addTriangle({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
    FlatBvh flat(buildWideBvh(m));
    EXPECT_TRUE(flat.root().isLeaf());
    auto s = flat.stats();
    EXPECT_EQ(s.leaf_nodes, 1u);
    EXPECT_EQ(s.internal_nodes, 0u);
}

TEST(FlatBvh, EmptyTree)
{
    FlatBvh flat;
    EXPECT_TRUE(flat.empty());
    EXPECT_EQ(flat.primCount(), 0u);
}

} // namespace

/**
 * @file
 * Unit tests of the stall taxonomy itself: `prof::classify` is a
 * total function over the WarpView space (exhaustiveness), always
 * lands in an RT-resident bucket (WarpBufferFull is SM-side), and
 * follows the documented priority order (exclusivity — a view can
 * satisfy several conditions, but exactly one bucket wins).
 */

#include <cctype>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "prof/prof.hpp"

namespace {

using namespace cooprt;
using prof::Bucket;
using prof::MemLevel;
using prof::Phase;
using prof::WarpView;

/** Every combination of the WarpView inputs (2^7 x 2 x 3 = 2304). */
std::vector<WarpView>
allViews()
{
    std::vector<WarpView> out;
    for (int bits = 0; bits < (1 << 7); ++bits)
        for (int outstanding : {0, 3})
            for (int level = 0; level < 3; ++level) {
                WarpView v;
                v.progressed = bits & 1;
                v.stole = bits & 2;
                v.has_ready = bits & 4;
                v.ready_all_stale = bits & 8;
                v.lbu_eligible = bits & 16;
                v.coop = bits & 32;
                v.any_stack_work = bits & 64;
                v.has_idle_lane = (bits & 96) == 96; // vary w/ others
                v.outstanding = outstanding;
                v.wait_level = MemLevel(level);
                out.push_back(v);
            }
    return out;
}

TEST(Taxonomy, TotalAndNeverSmSideBucket)
{
    // Exhaustiveness: every input maps to a bucket in range, and the
    // RT unit never produces the SM-side WarpBufferFull bucket — that
    // is what keeps the resident conservation sum well-defined.
    for (const WarpView &v : allViews()) {
        const Bucket b = prof::classify(v);
        ASSERT_GE(int(b), 0);
        ASSERT_LT(int(b), prof::kNumBuckets);
        ASSERT_NE(b, Bucket::WarpBufferFull);
    }
}

TEST(Taxonomy, PriorityOrderIsExclusive)
{
    // A view satisfying several predicates resolves by the documented
    // priority chain, making the buckets mutually exclusive.
    WarpView v;
    v.progressed = true;
    v.stole = true;
    v.has_ready = true;
    v.lbu_eligible = true;
    v.outstanding = 2;
    EXPECT_EQ(prof::classify(v), Bucket::IssueCompute);

    v.progressed = false;
    EXPECT_EQ(prof::classify(v), Bucket::LbuSteal); // served steal

    v.stole = false;
    EXPECT_EQ(prof::classify(v), Bucket::FetchQueued);

    v.ready_all_stale = true;
    EXPECT_EQ(prof::classify(v), Bucket::StackBound);

    v.has_ready = false;
    EXPECT_EQ(prof::classify(v), Bucket::LbuSteal); // steal possible

    v.lbu_eligible = false;
    v.wait_level = prof::MemLevel::L2;
    EXPECT_EQ(prof::classify(v), Bucket::StarvedL2);

    v.outstanding = 0;
    EXPECT_EQ(prof::classify(v), Bucket::IdleNoRay);
}

TEST(Taxonomy, StarvedSplitsByServingLevel)
{
    WarpView v;
    v.outstanding = 1;
    v.wait_level = MemLevel::L1;
    EXPECT_EQ(prof::classify(v), Bucket::StarvedL1);
    v.wait_level = MemLevel::L2;
    EXPECT_EQ(prof::classify(v), Bucket::StarvedL2);
    v.wait_level = MemLevel::Dram;
    EXPECT_EQ(prof::classify(v), Bucket::StarvedDram);
}

TEST(Taxonomy, SubwarpDrainNeedsCoopIdleLanesAndNoStackWork)
{
    WarpView v;
    v.outstanding = 1;
    v.coop = true;
    v.any_stack_work = false;
    v.has_idle_lane = true;
    EXPECT_EQ(prof::classify(v), Bucket::SubwarpDrain);
    v.any_stack_work = true; // stealable work exists -> plain starve
    EXPECT_EQ(prof::classify(v), Bucket::StarvedL1);
    v.any_stack_work = false;
    v.coop = false; // baseline has no helpers to drain
    EXPECT_EQ(prof::classify(v), Bucket::StarvedL1);
    v.coop = true;
    v.has_idle_lane = false; // every lane still has its own work
    EXPECT_EQ(prof::classify(v), Bucket::StarvedL1);
}

TEST(Taxonomy, BucketNamesStableUniqueSnakeCase)
{
    std::set<std::string> names;
    for (int b = 0; b < prof::kNumBuckets; ++b) {
        const std::string name = prof::bucketName(Bucket(b));
        EXPECT_FALSE(name.empty());
        for (const char c : name)
            EXPECT_TRUE(std::islower(std::uint8_t(c)) ||
                        std::isdigit(std::uint8_t(c)) || c == '_')
                << name;
        names.insert(name);
    }
    EXPECT_EQ(names.size(), std::size_t(prof::kNumBuckets));
    EXPECT_STREQ(prof::bucketName(Bucket::WarpBufferFull),
                 "warp_buffer_full");
}

TEST(Taxonomy, PhaseOfMatchesLifecycle)
{
    EXPECT_EQ(prof::phaseOf(false, false), Phase::Ramp);
    EXPECT_EQ(prof::phaseOf(false, true), Phase::Ramp);
    EXPECT_EQ(prof::phaseOf(true, true), Phase::Traverse);
    EXPECT_EQ(prof::phaseOf(true, false), Phase::Drain);
}

TEST(Taxonomy, ProfileAddKeepsConservation)
{
    prof::RtUnitProfile p;
    p.add(Bucket::IssueCompute, Phase::Ramp, 3);
    p.add(Bucket::StarvedL2, Phase::Traverse, 7);
    p.addWarpBufferFull(11); // SM-side: outside the resident sum
    EXPECT_EQ(p.resident_cycles, 10u);
    EXPECT_EQ(p.residentBucketSum(), 10u);
    EXPECT_EQ(p.buckets[std::size_t(Bucket::WarpBufferFull)], 11u);
    std::uint64_t phase_sum = 0;
    for (const auto &row : p.phase_buckets)
        for (const std::uint64_t c : row)
            phase_sum += c;
    EXPECT_EQ(phase_sum, p.resident_cycles);
    p.reset();
    EXPECT_EQ(p.residentBucketSum(), 0u);
    EXPECT_EQ(p.threads.total(), 0u);
}

} // namespace

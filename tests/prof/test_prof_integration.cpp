/**
 * @file
 * End-to-end tests of the stall-attribution profiler on real
 * simulation runs: exact conservation on every registry scene, zero
 * timing perturbation against the pinned reference cycles, the
 * folded-stack golden file, and the prof.* metrics-CSV columns.
 */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "../trace/json_check.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"
#include "prof/prof.hpp"
#include "trace/session.hpp"

namespace {

using namespace cooprt;
using prof::Bucket;

core::RunOutcome
runProfiled(prof::Profiler &profiler, const std::string &scene,
            int resolution, bool coop,
            core::ShaderKind shader = core::ShaderKind::PathTracing)
{
    core::RunConfig cfg;
    cfg.resolution = resolution;
    cfg.shader = shader;
    cfg.gpu.trace.coop = coop;
    cfg.profiler = &profiler;
    return core::simulationFor(scene).run(cfg);
}

/** The taxonomy's accounting identities for one profiled run. */
void
expectConservation(const core::RunOutcome &out, const char *what)
{
    const auto &p = out.gpu.prof_summary;
    ASSERT_TRUE(p.enabled) << what;
    // Every warp-resident cycle lands in exactly one bucket, so the
    // bucket sum equals the aggregated trace latency exactly ...
    std::uint64_t resident_sum = 0;
    for (int b = 0; b < prof::kNumBuckets; ++b)
        if (Bucket(b) != Bucket::WarpBufferFull)
            resident_sum += p.buckets[std::size_t(b)];
    EXPECT_EQ(resident_sum, p.resident_cycles) << what;
    EXPECT_EQ(p.resident_cycles, out.gpu.rt.retired_trace_latency)
        << what;
    // ... and, with the SM-side warp-buffer waits added, the
    // class-level RT stall counter (same quantities, two ledgers).
    EXPECT_EQ(p.rtStallCycles(), out.gpu.stalls.rt) << what;
}

TEST(ProfIntegration, PinnedCyclesUnchangedWithProfiler)
{
    // The profiler is purely observational: the pinned reference
    // numbers of tests/core/test_pinned_cycles.cpp hold bit-for-bit
    // with profiling enabled.
    prof::Profiler profiler;
    const auto out = runProfiled(profiler, "wknd", 32, false);
    EXPECT_EQ(out.gpu.cycles, 34868u);
    EXPECT_EQ(out.gpu.rt.node_fetches, 4545u);
    EXPECT_EQ(out.gpu.rt.retired_warps, 155u);
    EXPECT_EQ(out.gpu.stalls.rt, 310412u);
    expectConservation(out, "wknd@32 pt baseline");
    EXPECT_GT(out.gpu.prof_summary.of(Bucket::IssueCompute), 0u);
}

TEST(ProfIntegration, ConservationOnEveryRegistryScene)
{
    // Acceptance criterion: sum(stall buckets) == warp-resident
    // cycles exactly — for every scene, baseline and CoopRT.
    prof::Profiler profiler;
    for (const auto &label : scene::SceneRegistry::allLabels())
        for (const bool coop : {false, true}) {
            const auto out = runProfiled(profiler, label, 16, coop);
            const std::string what =
                label + (coop ? " coop" : " base");
            expectConservation(out, what.c_str());
        }
}

TEST(ProfIntegration, CoopShiftsStarvationIntoStealsAndDrain)
{
    // The taxonomy must tell the paper's causal story: CoopRT
    // converts memory-starved warp cycles into LBU activity and a
    // terminal subwarp drain (which only exists with helpers).
    prof::Profiler profiler;
    const auto base = runProfiled(profiler, "wknd", 32, false);
    const auto &pb = base.gpu.prof_summary;
    EXPECT_EQ(pb.of(Bucket::LbuSteal), 0u);
    EXPECT_EQ(pb.of(Bucket::SubwarpDrain), 0u);

    const auto coop = runProfiled(profiler, "wknd", 32, true);
    const auto &pc = coop.gpu.prof_summary;
    EXPECT_GT(pc.of(Bucket::LbuSteal), 0u);
    EXPECT_GT(pc.of(Bucket::SubwarpDrain), 0u);
    const auto starved = [](const prof::Summary &s) {
        return s.of(Bucket::StarvedL1) + s.of(Bucket::StarvedL2) +
               s.of(Bucket::StarvedDram);
    };
    EXPECT_LT(starved(pc), starved(pb));
}

TEST(ProfIntegration, PhaseMatrixSumsToResidentCycles)
{
    prof::Profiler profiler;
    runProfiled(profiler, "wknd", 32, true);
    const auto phases = profiler.phaseTotals();
    std::uint64_t phase_sum = 0;
    for (const auto &row : phases)
        for (const std::uint64_t c : row)
            phase_sum += c;
    EXPECT_EQ(phase_sum, profiler.residentCycles());
    // Every warp starts in ramp and (having consumed responses with
    // an eventually-empty stack) ends in drain.
    std::uint64_t ramp = 0, drain = 0;
    for (int b = 0; b < prof::kNumBuckets; ++b) {
        ramp += phases[std::size_t(prof::Phase::Ramp)][std::size_t(b)];
        drain +=
            phases[std::size_t(prof::Phase::Drain)][std::size_t(b)];
    }
    EXPECT_GT(ramp, 0u);
    EXPECT_GT(drain, 0u);
}

TEST(ProfIntegration, FoldedExportMatchesGoldenFile)
{
    // Golden-file pin of the flamegraph export: deterministic
    // simulator, so the folded stacks for wknd@32 baseline are
    // reproduced byte-for-byte. Regenerate with:
    //   simulate_cli --scene wknd --resolution 32
    //     --profile-out tests/prof/golden/wknd32_pt_baseline.folded
    prof::Profiler profiler;
    const auto out = runProfiled(profiler, "wknd", 32, false);
    std::ostringstream got;
    profiler.writeFolded(got, out.scene);

    const std::string path = std::string(COOPRT_PROF_GOLDEN_DIR) +
                             "/wknd32_pt_baseline.folded";
    std::ifstream gf(path);
    ASSERT_TRUE(gf) << "missing golden file " << path;
    std::stringstream want;
    want << gf.rdbuf();
    EXPECT_EQ(got.str(), want.str());
}

TEST(ProfIntegration, FoldedLinesAreWellFormed)
{
    prof::Profiler profiler;
    const auto out = runProfiled(profiler, "wknd", 16, true);
    std::ostringstream ss;
    profiler.writeFolded(ss, out.scene);
    std::istringstream lines(ss.str());
    std::string line;
    std::size_t n = 0;
    std::uint64_t count_sum = 0;
    while (std::getline(lines, line)) {
        // scene;sm<i>;rtunit;<bucket> <count>
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string stack = line.substr(0, space);
        EXPECT_EQ(stack.rfind("wknd;sm", 0), 0u) << line;
        EXPECT_NE(stack.find(";rtunit;"), std::string::npos) << line;
        const std::uint64_t count =
            std::stoull(line.substr(space + 1));
        EXPECT_GT(count, 0u) << line; // zero buckets are omitted
        count_sum += count;
        ++n;
    }
    EXPECT_GT(n, 0u);
    // The folded counts carry the whole profile (incl. any SM-side
    // warp-buffer-full cycles).
    EXPECT_EQ(count_sum, profiler.residentCycles() +
                             profiler.warpBufferFullCycles());
}

TEST(ProfIntegration, ProfileJsonIsValidAndConserves)
{
    prof::Profiler profiler;
    const auto out = runProfiled(profiler, "wknd", 16, true);
    std::ostringstream ss;
    profiler.writeJson(ss, out.scene);
    EXPECT_TRUE(testutil::isValidJson(ss.str()));
    EXPECT_NE(ss.str().find("\"subwarp_drain\":"), std::string::npos);

    // The run report embeds the summary as a "prof" object.
    const std::string report = core::toJson(out);
    EXPECT_TRUE(testutil::isValidJson(report));
    EXPECT_NE(report.find("\"prof\":{"), std::string::npos);
    EXPECT_NE(report.find("\"resident_cycles\":"), std::string::npos);
}

TEST(ProfIntegration, MetricsCsvCarriesProfColumns)
{
    // With both a trace session and a profiler attached, the
    // taxonomy rides the per-interval metrics CSV.
    trace::SessionOptions opt;
    opt.metrics = true;
    trace::Session session(opt);
    prof::Profiler profiler;
    core::RunConfig cfg;
    cfg.resolution = 16;
    cfg.trace_session = &session;
    cfg.profiler = &profiler;
    core::simulationFor("wknd").run(cfg);

    std::ostringstream ss;
    session.writeMetricsCsv(ss);
    std::istringstream lines(ss.str());
    std::string header;
    // Skip the schema/run-key `#` comment stamp (schema v2).
    while (std::getline(lines, header) && !header.empty() &&
           header[0] == '#') {
    }
    EXPECT_NE(header.find("prof.sm0.issue_compute"),
              std::string::npos);
    EXPECT_NE(header.find("prof.gpu.starved_l2"), std::string::npos);

    // The sampled series is a monotone prefix of the final totals.
    const std::vector<double> series =
        session.metrics()->seriesOf("prof.gpu.issue_compute");
    ASSERT_FALSE(series.empty());
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_GE(series[i], series[i - 1]) << "sample " << i;
    EXPECT_LE(series.back(),
              double(profiler.totals()[std::size_t(
                  Bucket::IssueCompute)]));
}

TEST(ProfIntegration, ProfilerIsReusableAcrossRuns)
{
    prof::Profiler profiler;
    const auto a = runProfiled(profiler, "wknd", 16, false);
    const auto b = runProfiled(profiler, "wknd", 16, false);
    // Data restarts per run instead of accumulating, and the
    // deterministic simulator reproduces the exact same profile.
    EXPECT_EQ(a.gpu.prof_summary.buckets, b.gpu.prof_summary.buckets);
    EXPECT_EQ(a.gpu.prof_summary.threads.total(),
              b.gpu.prof_summary.threads.total());
}

} // namespace

/**
 * @file
 * Behavioural tests for the RT-unit timing model (baseline and
 * CoopRT mechanics: coalescing, warp buffer, LBU, timelines).
 */

#include <gtest/gtest.h>

#include "rtunit_test_util.hpp"

namespace {

using namespace cooprt;
using rtunit::kWarpSize;
using rtunit::TraceConfig;
using rtunit::TraceJob;
using rtunit::TraceResult;
using testutil::frontalJob;
using testutil::makeSoup;
using testutil::RtHarness;

TEST(RtUnit, EmptyJobRetiresImmediately)
{
    RtHarness h(makeSoup(1, 200), TraceConfig{});
    TraceJob job; // no rays
    TraceResult r = h.runOne(job);
    EXPECT_EQ(r.latency(), 0u);
    EXPECT_EQ(h.fetches, 0u);
    for (const auto &hit : r.hits)
        EXPECT_FALSE(hit.hit());
}

TEST(RtUnit, AllRaysMissSceneBoxRetiresWithoutFetch)
{
    RtHarness h(makeSoup(2, 200), TraceConfig{});
    TraceJob job;
    job.rays[0] = geom::Ray({0, 100, 0}, {0, 1, 0}); // away from scene
    TraceResult r = h.runOne(job);
    EXPECT_EQ(h.fetches, 0u);
    EXPECT_FALSE(r.hits[0].hit());
}

TEST(RtUnit, SingleRayMatchesOracle)
{
    scene::Mesh mesh = makeSoup(3, 800);
    RtHarness h(mesh, TraceConfig{});
    TraceJob job = frontalJob(1);
    TraceResult r = h.runOne(job);
    auto ref = bvh::closestHit(h.flat, h.mesh, *job.rays[0]);
    EXPECT_EQ(r.hits[0].hit(), ref.hit());
    if (ref.hit()) {
        EXPECT_EQ(r.hits[0].prim_id, ref.prim_id);
        EXPECT_FLOAT_EQ(r.hits[0].thit, ref.thit);
    }
}

TEST(RtUnit, FullWarpMatchesOraclePerThread)
{
    scene::Mesh mesh = makeSoup(4, 1500);
    RtHarness h(mesh, TraceConfig{});
    TraceJob job = frontalJob(kWarpSize);
    TraceResult r = h.runOne(job);
    for (int t = 0; t < kWarpSize; ++t) {
        auto ref = bvh::closestHit(h.flat, h.mesh, *job.rays[t]);
        ASSERT_EQ(r.hits[t].hit(), ref.hit()) << "thread " << t;
        if (ref.hit()) {
            EXPECT_FLOAT_EQ(r.hits[t].thit, ref.thit) << "thread " << t;
        }
    }
}

TEST(RtUnit, IdenticalRaysCoalesceFetches)
{
    scene::Mesh mesh = makeSoup(5, 1000);

    TraceJob one = frontalJob(1);
    RtHarness h1(mesh, TraceConfig{});
    h1.runOne(one);
    const std::uint64_t solo_fetches = h1.fetches;

    // 32 copies of the same ray must coalesce to the same unique
    // addresses: fetch count equals the single-ray count.
    TraceJob same;
    for (int t = 0; t < kWarpSize; ++t)
        same.rays[std::size_t(t)] = *one.rays[0];
    RtHarness h32(mesh, TraceConfig{});
    TraceResult r = h32.runOne(same);
    EXPECT_EQ(h32.fetches, solo_fetches);
    EXPECT_GT(h32.unit.stats().coalesced_threads,
              31u * h32.unit.stats().issue_cycles / 2);
    for (int t = 1; t < kWarpSize; ++t)
        EXPECT_EQ(r.hits[t].prim_id, r.hits[0].prim_id);
}

TEST(RtUnit, WarpBufferCapacityEnforced)
{
    scene::Mesh mesh = makeSoup(6, 300);
    TraceConfig cfg;
    cfg.warp_buffer_entries = 2;
    RtHarness h(mesh, cfg, 1000000); // huge latency: jobs stay resident
    EXPECT_EQ(h.unit.freeSlots(), 2);
    h.unit.submit(frontalJob(4, 1), 0, nullptr);
    EXPECT_EQ(h.unit.freeSlots(), 1);
    h.unit.submit(frontalJob(4, 2), 0, nullptr);
    EXPECT_EQ(h.unit.freeSlots(), 0);
    EXPECT_THROW(h.unit.submit(frontalJob(4, 3), 0, nullptr),
                 std::runtime_error);
}

TEST(RtUnit, MultipleWarpsAllRetireCorrectly)
{
    scene::Mesh mesh = makeSoup(7, 1200);
    TraceConfig cfg;
    cfg.warp_buffer_entries = 4;
    RtHarness h(mesh, cfg);
    int retired = 0;
    std::array<TraceJob, 4> jobs;
    std::array<TraceResult, 4> results;
    for (int w = 0; w < 4; ++w) {
        jobs[w] = frontalJob(8, 100 + w);
        h.unit.submit(jobs[w], h.now,
                      [&results, &retired, w](int,
                                              const TraceResult &r) {
                          results[w] = r;
                          retired++;
                      });
    }
    h.drain([&] { return retired == 4; });
    for (int w = 0; w < 4; ++w) {
        for (int t = 0; t < 8; ++t) {
            auto ref = bvh::closestHit(h.flat, h.mesh,
                                       *jobs[w].rays[t]);
            ASSERT_EQ(results[w].hits[t].hit(), ref.hit())
                << "warp " << w << " thread " << t;
            if (ref.hit()) {
                EXPECT_FLOAT_EQ(results[w].hits[t].thit, ref.thit);
            }
        }
    }
    EXPECT_EQ(h.unit.stats().retired_warps, 4u);
    EXPECT_TRUE(h.unit.idle());
}

TEST(RtUnit, CoopProducesSteals)
{
    scene::Mesh mesh = makeSoup(8, 2000);
    TraceConfig coop;
    coop.coop = true;
    RtHarness h(mesh, coop);
    h.runOne(frontalJob(1)); // one busy thread, 31 idle helpers
    EXPECT_GT(h.unit.stats().steals, 0u);
}

TEST(RtUnit, BaselineNeverSteals)
{
    scene::Mesh mesh = makeSoup(8, 2000);
    RtHarness h(mesh, TraceConfig{});
    h.runOne(frontalJob(1));
    EXPECT_EQ(h.unit.stats().steals, 0u);
}

TEST(RtUnit, CoopSingleRayFasterThanBaseline)
{
    scene::Mesh mesh = makeSoup(9, 3000);
    TraceJob job = frontalJob(1, 42);

    RtHarness base(mesh, TraceConfig{});
    TraceResult rb = base.runOne(job);

    TraceConfig coop_cfg;
    coop_cfg.coop = true;
    RtHarness coop(mesh, coop_cfg);
    TraceResult rc = coop.runOne(job);

    // Same answer...
    EXPECT_EQ(rb.hits[0].hit(), rc.hits[0].hit());
    if (rb.hits[0].hit()) {
        EXPECT_FLOAT_EQ(rb.hits[0].thit, rc.hits[0].thit);
    }
    // ...much faster: the helpers parallelize the latency chain.
    EXPECT_LT(rc.latency() * 2, rb.latency());
}

TEST(RtUnit, SubwarpRestrictionLimitsSpeedup)
{
    scene::Mesh mesh = makeSoup(10, 3000);
    TraceJob job = frontalJob(1, 7);

    auto run_latency = [&](int subwarp) {
        TraceConfig cfg;
        cfg.coop = true;
        cfg.subwarp_size = subwarp;
        RtHarness h(mesh, cfg);
        return h.runOne(job).latency();
    };

    const std::uint64_t l4 = run_latency(4);
    const std::uint64_t l32 = run_latency(32);
    // Thread 0's subwarp of 4 offers at most 3 helpers; the full warp
    // offers 31. Full-warp cooperation must not be slower.
    EXPECT_LE(l32, l4);
}

TEST(RtUnit, LbuBandwidthAblation)
{
    scene::Mesh mesh = makeSoup(11, 3000);
    TraceJob job = frontalJob(1, 3);

    TraceConfig one;
    one.coop = true;
    one.lbu_moves_per_cycle = 1;
    RtHarness h1(mesh, one);
    const std::uint64_t l1 = h1.runOne(job).latency();

    TraceConfig four = one;
    four.lbu_moves_per_cycle = 4;
    RtHarness h4(mesh, four);
    const std::uint64_t l4 = h4.runOne(job).latency();

    // More LBU bandwidth should be at worst neutral (a small
    // tolerance absorbs work-order perturbation from extra moves).
    EXPECT_LE(double(l4), double(l1) * 1.05 + 50.0);
}

TEST(RtUnit, StealFromBottomStillCorrect)
{
    scene::Mesh mesh = makeSoup(12, 1500);
    TraceJob job = frontalJob(4, 5);

    TraceConfig cfg;
    cfg.coop = true;
    cfg.steal_from_bottom = true;
    RtHarness h(mesh, cfg);
    TraceResult r = h.runOne(job);
    for (int t = 0; t < 4; ++t) {
        auto ref = bvh::closestHit(h.flat, h.mesh, *job.rays[t]);
        ASSERT_EQ(r.hits[t].hit(), ref.hit()) << t;
        if (ref.hit()) {
            EXPECT_FLOAT_EQ(r.hits[t].thit, ref.thit) << t;
        }
    }
    EXPECT_GT(h.unit.stats().steals, 0u);
}

TEST(RtUnit, BfsOrderCorrect)
{
    scene::Mesh mesh = makeSoup(13, 1500);
    TraceJob job = frontalJob(6, 6);

    TraceConfig cfg;
    cfg.order = rtunit::TraversalOrder::Bfs;
    RtHarness h(mesh, cfg);
    TraceResult r = h.runOne(job);
    for (int t = 0; t < 6; ++t) {
        auto ref = bvh::closestHit(h.flat, h.mesh, *job.rays[t]);
        ASSERT_EQ(r.hits[t].hit(), ref.hit()) << t;
        if (ref.hit()) {
            EXPECT_FLOAT_EQ(r.hits[t].thit, ref.thit) << t;
        }
    }
}

TEST(RtUnit, BfsCoopCorrectAndSteals)
{
    scene::Mesh mesh = makeSoup(14, 2000);
    TraceJob job = frontalJob(1, 8);

    TraceConfig cfg;
    cfg.order = rtunit::TraversalOrder::Bfs;
    cfg.coop = true;
    RtHarness h(mesh, cfg);
    TraceResult r = h.runOne(job);
    auto ref = bvh::closestHit(h.flat, h.mesh, *job.rays[0]);
    ASSERT_EQ(r.hits[0].hit(), ref.hit());
    if (ref.hit()) {
        EXPECT_FLOAT_EQ(r.hits[0].thit, ref.thit);
    }
    EXPECT_GT(h.unit.stats().steals, 0u);
}

TEST(RtUnit, TimelineRecordsBusyBars)
{
    scene::Mesh mesh = makeSoup(15, 1500);
    TraceConfig cfg;
    cfg.coop = true;
    RtHarness h(mesh, cfg);

    stats::TimelineRecorder rec(kWarpSize);
    h.unit.armTimeline(&rec);
    h.runOne(frontalJob(2, 9));

    // The two active threads and at least one helper were busy.
    EXPECT_GT(rec.busyCycles(0) + rec.busyCycles(1), 0u);
    std::uint64_t helper_busy = 0;
    for (int t = 2; t < kWarpSize; ++t)
        helper_busy += rec.busyCycles(t);
    EXPECT_GT(helper_busy, 0u);
    EXPECT_GT(rec.lastCycle(), rec.firstCycle());
}

TEST(RtUnit, StalePopsOccurOnOccludedScenes)
{
    // Many stacked parallel triangles: the closest one eliminates the
    // farther subtrees after the first leaf hit.
    scene::Mesh mesh;
    for (int i = 0; i < 256; ++i) {
        float z = 1.0f + 0.05f * float(i);
        mesh.addTriangle({{-5, -5, z}, {5, -5, z}, {0, 5, z}});
    }
    RtHarness h(mesh, TraceConfig{});
    TraceJob job;
    job.rays[0] = geom::Ray({0, 0, -1}, {0, 0, 1});
    TraceResult r = h.runOne(job);
    EXPECT_TRUE(r.hits[0].hit());
    EXPECT_NEAR(r.hits[0].thit, 2.0f, 1e-4f);
    EXPECT_GT(h.unit.stats().stale_pops, 0u);
}

TEST(RtUnit, StatsCountsAreConsistent)
{
    scene::Mesh mesh = makeSoup(16, 1500);
    RtHarness h(mesh, TraceConfig{});
    h.runOne(frontalJob(16, 11));
    const auto &s = h.unit.stats();
    // The memory port carries node/leaf fetches plus the hit-record
    // store-queue writes at retire.
    EXPECT_EQ(s.node_fetches + s.leaf_fetches + s.hit_stores,
              h.fetches);
    EXPECT_EQ(s.issue_cycles, s.node_fetches + s.leaf_fetches);
    EXPECT_GE(s.coalesced_threads, s.issue_cycles); // >= 1 per issue
    EXPECT_EQ(s.retired_warps, 1u);
    EXPECT_GT(s.box_tests, 0u);
    EXPECT_GT(s.hit_stores, 0u);
}

TEST(RtUnit, HitStoresCanBeDisabled)
{
    scene::Mesh mesh = makeSoup(24, 800);
    TraceConfig cfg;
    cfg.model_hit_stores = false;
    RtHarness h(mesh, cfg);
    h.runOne(frontalJob(8, 24));
    const auto &s = h.unit.stats();
    EXPECT_EQ(s.hit_stores, 0u);
    EXPECT_EQ(s.node_fetches + s.leaf_fetches, h.fetches);
}

TEST(RtUnit, HitStoresCountOnlyHittingThreads)
{
    scene::Mesh mesh = makeSoup(25, 800);
    RtHarness h(mesh, TraceConfig{});
    TraceJob job = frontalJob(8, 25);
    TraceResult r = h.runOne(job);
    std::uint64_t hits = 0;
    for (const auto &rec : r.hits)
        hits += rec.hit();
    EXPECT_EQ(h.unit.stats().hit_stores, hits);
}

TEST(RtUnit, AnyHitAgreesWithOracleOnHitExistence)
{
    scene::Mesh mesh = makeSoup(21, 1500);
    RtHarness h(mesh, TraceConfig{});
    TraceJob job = frontalJob(16, 21);
    job.any_hit = true;
    TraceResult r = h.runOne(job);
    for (int t = 0; t < 16; ++t) {
        const bool expect =
            bvh::anyHit(h.flat, h.mesh, *job.rays[std::size_t(t)]);
        EXPECT_EQ(r.hits[std::size_t(t)].hit(), expect) << t;
    }
}

TEST(RtUnit, AnyHitCheaperThanClosestHit)
{
    scene::Mesh mesh = makeSoup(22, 3000);
    TraceJob closest = frontalJob(16, 22);
    TraceJob any = closest;
    any.any_hit = true;

    RtHarness hc(mesh, TraceConfig{});
    hc.runOne(closest);
    RtHarness ha(mesh, TraceConfig{});
    ha.runOne(any);
    EXPECT_LT(ha.fetches, hc.fetches);
}

TEST(RtUnit, AnyHitCoopStillCorrect)
{
    scene::Mesh mesh = makeSoup(23, 2000);
    TraceConfig cfg;
    cfg.coop = true;
    RtHarness h(mesh, cfg);
    TraceJob job = frontalJob(4, 23);
    job.any_hit = true;
    TraceResult r = h.runOne(job);
    for (int t = 0; t < 4; ++t) {
        const bool expect =
            bvh::anyHit(h.flat, h.mesh, *job.rays[std::size_t(t)]);
        EXPECT_EQ(r.hits[std::size_t(t)].hit(), expect) << t;
    }
}

TEST(RtUnit, StackOverflowCounted)
{
    scene::Mesh mesh = makeSoup(17, 4000);
    TraceConfig cfg;
    cfg.stack_capacity = 1; // absurdly small to force overflows
    RtHarness h(mesh, cfg);
    h.runOne(frontalJob(8, 12));
    EXPECT_GT(h.unit.stats().stack_overflows, 0u);
}

} // namespace

/**
 * @file
 * Randomized cross-configuration fuzzing of the RT unit: every
 * combination of knobs the hardware supports must return exactly the
 * oracle's closest hits, for arbitrary scenes and ray mixes. This is
 * the widest net for interaction bugs (coop x any-hit x predictor x
 * prefetch x BFS x subwarps x ...).
 */

#include <gtest/gtest.h>

#include "rtunit_test_util.hpp"

namespace {

using namespace cooprt;
using rtunit::kWarpSize;
using rtunit::TraceConfig;
using rtunit::TraceJob;
using rtunit::TraceResult;
using rtunit::TraversalOrder;
using testutil::RtHarness;

/** A random configuration drawn from the whole knob space. */
TraceConfig
randomConfig(geom::Pcg32 &rng)
{
    TraceConfig cfg;
    cfg.coop = rng.nextBelow(4) != 0; // mostly coop
    const int subwarps[] = {4, 8, 16, 32};
    cfg.subwarp_size = subwarps[rng.nextBelow(4)];
    const int buffers[] = {1, 2, 4, 8};
    cfg.warp_buffer_entries = buffers[rng.nextBelow(4)];
    cfg.lbu_moves_per_cycle = 1 + int(rng.nextBelow(3));
    cfg.steal_from_bottom = rng.nextBelow(2) != 0;
    cfg.order = rng.nextBelow(4) == 0 ? TraversalOrder::Bfs
                                      : TraversalOrder::Dfs;
    cfg.helper_requires_idle = rng.nextBelow(2) != 0;
    cfg.child_prefetch = rng.nextBelow(3) == 0;
    cfg.intersection_predictor = rng.nextBelow(3) == 0;
    cfg.model_hit_stores = rng.nextBelow(2) != 0;
    cfg.math_latency = 1 + rng.nextBelow(8);
    cfg.stack_capacity = 4 + int(rng.nextBelow(28));
    return cfg;
}

/** A random job: random active mask, random ray kinds, maybe any-hit. */
TraceJob
randomJob(geom::Pcg32 &rng)
{
    TraceJob job;
    job.any_hit = rng.nextBelow(3) == 0;
    const int actives = 1 + int(rng.nextBelow(kWarpSize));
    for (int k = 0; k < actives; ++k) {
        const int t = int(rng.nextBelow(kWarpSize));
        geom::Vec3 o = rng.nextInBox(geom::Vec3(-25), geom::Vec3(25));
        geom::Vec3 target =
            rng.nextInBox(geom::Vec3(-9), geom::Vec3(9));
        if ((target - o).lengthSq() < 1e-6f)
            continue;
        // A mix of unbounded and short (occlusion-like) rays.
        const float tmax = rng.nextBelow(3) == 0
                               ? rng.nextRange(1.0f, 20.0f)
                               : geom::kNoHit;
        job.rays[std::size_t(t)] =
            geom::Ray(o, normalize(target - o), 1e-4f, tmax);
    }
    return job;
}

class RtUnitFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RtUnitFuzz, AllConfigurationsMatchOracle)
{
    geom::Pcg32 rng(GetParam());
    scene::Mesh mesh =
        testutil::makeSoup(GetParam() * 3 + 1, 1200 + int(rng.nextBelow(1500)));
    const TraceConfig cfg = randomConfig(rng);
    RtHarness h(mesh, cfg, 50 + rng.nextBelow(400));

    for (int round = 0; round < 6; ++round) {
        const TraceJob job = randomJob(rng);
        const TraceResult r = h.runOne(job);
        for (int t = 0; t < kWarpSize; ++t) {
            if (!job.rays[std::size_t(t)]) {
                EXPECT_FALSE(r.hits[std::size_t(t)].hit())
                    << "seed " << GetParam() << " r" << round << " t"
                    << t;
                continue;
            }
            const geom::Ray &ray = *job.rays[std::size_t(t)];
            if (job.any_hit) {
                EXPECT_EQ(r.hits[std::size_t(t)].hit(),
                          bvh::anyHit(h.flat, h.mesh, ray))
                    << "seed " << GetParam() << " r" << round << " t"
                    << t;
            } else {
                const auto ref = bvh::closestHit(h.flat, h.mesh, ray);
                ASSERT_EQ(r.hits[std::size_t(t)].hit(), ref.hit())
                    << "seed " << GetParam() << " r" << round << " t"
                    << t;
                if (ref.hit()) {
                    EXPECT_FLOAT_EQ(r.hits[std::size_t(t)].thit,
                                    ref.thit)
                        << "seed " << GetParam() << " r" << round
                        << " t" << t;
                    EXPECT_EQ(r.hits[std::size_t(t)].prim_id,
                              ref.prim_id)
                        << "seed " << GetParam() << " r" << round
                        << " t" << t;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtUnitFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

/**
 * Multi-warp fuzz: fill the warp buffer with concurrent jobs so the
 * response FIFO, LBU and retire paths interleave across slots — the
 * regime where conservation bugs (and the COOPRT_CHECK audits that
 * hunt them) live. Every ray must still match the oracle exactly.
 */
class RtUnitMultiWarpFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RtUnitMultiWarpFuzz, ConcurrentWarpsMatchOracle)
{
    geom::Pcg32 rng(GetParam() * 977 + 5);
    scene::Mesh mesh = testutil::makeSoup(
        GetParam() * 7 + 2, 800 + int(rng.nextBelow(1200)));
    TraceConfig cfg = randomConfig(rng);
    RtHarness h(mesh, cfg, 50 + rng.nextBelow(300));

    // Several batches, each filling every warp-buffer slot at once.
    for (int batch = 0; batch < 3; ++batch) {
        const int warps = cfg.warp_buffer_entries;
        std::vector<TraceJob> jobs;
        std::vector<TraceResult> results;
        results.resize(std::size_t(warps));
        std::vector<bool> done(std::size_t(warps), false);
        for (int w = 0; w < warps; ++w)
            jobs.push_back(randomJob(rng));
        for (int w = 0; w < warps; ++w)
            h.unit.submit(
                jobs[std::size_t(w)], h.now,
                [&results, &done, w](int,
                                     const TraceResult &r) {
                    results[std::size_t(w)] = r;
                    done[std::size_t(w)] = true;
                });
        h.drain([&] {
            for (const bool d : done)
                if (!d)
                    return false;
            return true;
        });

        for (int w = 0; w < warps; ++w) {
            const TraceJob &job = jobs[std::size_t(w)];
            const TraceResult &r = results[std::size_t(w)];
            for (int t = 0; t < kWarpSize; ++t) {
                if (!job.rays[std::size_t(t)]) {
                    EXPECT_FALSE(r.hits[std::size_t(t)].hit())
                        << "seed " << GetParam() << " b" << batch
                        << " w" << w << " t" << t;
                    continue;
                }
                const geom::Ray &ray = *job.rays[std::size_t(t)];
                if (job.any_hit) {
                    EXPECT_EQ(r.hits[std::size_t(t)].hit(),
                              bvh::anyHit(h.flat, h.mesh, ray))
                        << "seed " << GetParam() << " b" << batch
                        << " w" << w << " t" << t;
                    continue;
                }
                const auto ref = bvh::closestHit(h.flat, h.mesh, ray);
                ASSERT_EQ(r.hits[std::size_t(t)].hit(), ref.hit())
                    << "seed " << GetParam() << " b" << batch << " w"
                    << w << " t" << t;
                if (ref.hit()) {
                    EXPECT_FLOAT_EQ(r.hits[std::size_t(t)].thit,
                                    ref.thit)
                        << "seed " << GetParam() << " b" << batch
                        << " w" << w << " t" << t;
                }
            }
        }
        EXPECT_TRUE(h.unit.idle())
            << "seed " << GetParam() << " batch " << batch;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtUnitMultiWarpFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

} // namespace

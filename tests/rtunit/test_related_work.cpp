/**
 * @file
 * Tests for the related-work RT-unit features discussed in the
 * paper's Section 8.2: the treelet-style child prefetcher and the
 * intersection predictor. Both must preserve exact closest hits.
 */

#include <gtest/gtest.h>

#include "rtunit_test_util.hpp"

namespace {

using namespace cooprt;
using rtunit::TraceConfig;
using rtunit::TraceJob;
using rtunit::TraceResult;
using testutil::frontalJob;
using testutil::makeSoup;
using testutil::RtHarness;

TEST(Prefetch, DisabledByDefault)
{
    RtHarness h(makeSoup(1, 500), TraceConfig{});
    h.runOne(frontalJob(4));
    EXPECT_EQ(h.unit.stats().prefetches, 0u);
}

TEST(Prefetch, CountsAndPreservesResults)
{
    scene::Mesh mesh = makeSoup(2, 2000);
    TraceJob job = frontalJob(8, 3);

    RtHarness plain(mesh, TraceConfig{});
    TraceResult r_plain = plain.runOne(job);

    TraceConfig pf;
    pf.child_prefetch = true;
    RtHarness pre(mesh, pf);
    TraceResult r_pre = pre.runOne(job);

    EXPECT_GT(pre.unit.stats().prefetches, 0u);
    // Prefetch issues extra fetches through the memory port.
    EXPECT_GT(pre.fetches, plain.fetches);
    for (int t = 0; t < 8; ++t) {
        ASSERT_EQ(r_pre.hits[std::size_t(t)].hit(),
                  r_plain.hits[std::size_t(t)].hit())
            << t;
        if (r_plain.hits[std::size_t(t)].hit()) {
            EXPECT_FLOAT_EQ(r_pre.hits[std::size_t(t)].thit,
                            r_plain.hits[std::size_t(t)].thit);
        }
    }
}

TEST(Prefetch, ComposesWithCoop)
{
    scene::Mesh mesh = makeSoup(3, 2000);
    TraceConfig cfg;
    cfg.coop = true;
    cfg.child_prefetch = true;
    RtHarness h(mesh, cfg);
    TraceJob job = frontalJob(2, 5);
    TraceResult r = h.runOne(job);
    EXPECT_GT(h.unit.stats().steals, 0u);
    EXPECT_GT(h.unit.stats().prefetches, 0u);
    for (int t = 0; t < 2; ++t) {
        auto ref = bvh::closestHit(h.flat, h.mesh,
                                   *job.rays[std::size_t(t)]);
        ASSERT_EQ(r.hits[std::size_t(t)].hit(), ref.hit()) << t;
        if (ref.hit()) {
            EXPECT_FLOAT_EQ(r.hits[std::size_t(t)].thit, ref.thit);
        }
    }
}

TEST(Predictor, DisabledByDefault)
{
    RtHarness h(makeSoup(4, 500), TraceConfig{});
    h.runOne(frontalJob(4));
    EXPECT_EQ(h.unit.stats().predictor_hits, 0u);
    EXPECT_EQ(h.unit.stats().predictor_misses, 0u);
}

TEST(Predictor, LearnsAndPrunesRepeatedRays)
{
    scene::Mesh mesh = makeSoup(5, 3000);
    TraceConfig cfg;
    cfg.intersection_predictor = true;
    RtHarness h(mesh, cfg);

    TraceJob job = frontalJob(16, 7);
    h.runOne(job); // cold: table learns the hits
    const std::uint64_t cold_fetches = h.fetches;
    const std::uint64_t misses1 = h.unit.stats().predictor_misses;
    EXPECT_GT(misses1, 0u);

    TraceResult r = h.runOne(job); // warm: predictions confirm
    EXPECT_GT(h.unit.stats().predictor_hits, 0u);
    const std::uint64_t warm_fetches = h.fetches - cold_fetches;
    EXPECT_LT(warm_fetches, cold_fetches); // pruned traversal

    // And the results are still exact.
    for (int t = 0; t < 16; ++t) {
        auto ref = bvh::closestHit(h.flat, h.mesh,
                                   *job.rays[std::size_t(t)]);
        ASSERT_EQ(r.hits[std::size_t(t)].hit(), ref.hit()) << t;
        if (ref.hit()) {
            EXPECT_FLOAT_EQ(r.hits[std::size_t(t)].thit, ref.thit)
                << t;
            EXPECT_EQ(r.hits[std::size_t(t)].prim_id, ref.prim_id)
                << t;
        }
    }
}

TEST(Predictor, AnyHitPredictionSkipsTraversalEntirely)
{
    scene::Mesh mesh = makeSoup(6, 2000);
    TraceConfig cfg;
    cfg.intersection_predictor = true;
    RtHarness h(mesh, cfg);

    TraceJob job = frontalJob(8, 9);
    job.any_hit = true;
    h.runOne(job); // learn
    const std::uint64_t cold = h.fetches;
    h.runOne(job); // predicted any-hits terminate instantly
    const std::uint64_t warm = h.fetches - cold;
    // Missing rays learn nothing (the table stores hits only), so
    // they re-traverse; but the hitting rays' traversals vanish.
    EXPECT_LT(warm, cold);
    EXPECT_GT(h.unit.stats().predictor_hits, 0u);
}

TEST(Predictor, ValidatesConfig)
{
    TraceConfig cfg;
    cfg.predictor_entries = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

} // namespace

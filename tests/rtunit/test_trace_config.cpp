/**
 * @file
 * Tests for TraceConfig validation.
 */

#include <gtest/gtest.h>

#include "rtunit/trace_config.hpp"

namespace {

using cooprt::rtunit::TraceConfig;

TEST(TraceConfig, DefaultsAreValidBaseline)
{
    TraceConfig c;
    EXPECT_NO_THROW(c.validate());
    EXPECT_FALSE(c.coop);
    EXPECT_EQ(c.subwarp_size, 32);
    EXPECT_EQ(c.warp_buffer_entries, 4); // Table 1
}

TEST(TraceConfig, PaperSubwarpSizesAccepted)
{
    for (int s : {4, 8, 16, 32}) {
        TraceConfig c;
        c.subwarp_size = s;
        EXPECT_NO_THROW(c.validate()) << s;
    }
}

TEST(TraceConfig, BadSubwarpRejected)
{
    for (int s : {0, 1, 2, 3, 5, 6, 7, 12, 64}) {
        TraceConfig c;
        c.subwarp_size = s;
        EXPECT_THROW(c.validate(), std::invalid_argument) << s;
    }
}

TEST(TraceConfig, WarpBufferBounds)
{
    TraceConfig c;
    c.warp_buffer_entries = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c.warp_buffer_entries = 65;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    for (int n : {4, 8, 16, 32}) { // Fig. 13 sweep values
        c.warp_buffer_entries = n;
        EXPECT_NO_THROW(c.validate()) << n;
    }
}

TEST(TraceConfig, LbuMovesPositive)
{
    TraceConfig c;
    c.lbu_moves_per_cycle = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(TraceConfig, StackCapacityPositive)
{
    TraceConfig c;
    c.stack_capacity = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

} // namespace

/**
 * @file
 * Shared harness for RT-unit tests: a scene, its flat BVH, a
 * constant-latency memory stub and a tick loop driving the unit to
 * completion.
 */

#ifndef COOPRT_TESTS_RTUNIT_TEST_UTIL_HPP
#define COOPRT_TESTS_RTUNIT_TEST_UTIL_HPP

#include <gtest/gtest.h>

#include "bvh/traversal.hpp"
#include "geom/rng.hpp"
#include "rtunit/rt_unit.hpp"

namespace cooprt::testutil {

/** Random triangle soup used across the RT-unit tests. */
inline scene::Mesh
makeSoup(std::uint64_t seed, int n, float extent = 10.0f)
{
    scene::Mesh m;
    geom::Pcg32 rng(seed);
    for (int i = 0; i < n; ++i) {
        geom::Vec3 p = rng.nextInBox(geom::Vec3(-extent),
                                     geom::Vec3(extent));
        geom::Vec3 e1 = rng.nextUnitVector() * 0.5f;
        geom::Vec3 e2 = rng.nextUnitVector() * 0.5f;
        m.addTriangle({p, p + e1, p + e2});
    }
    return m;
}

/**
 * Owns a mesh + flat BVH + RT unit with a fixed-latency, unlimited-
 * bandwidth memory stub, and drives traces to completion.
 */
class RtHarness
{
  public:
    RtHarness(scene::Mesh mesh_in, const rtunit::TraceConfig &cfg,
              std::uint64_t mem_latency = 100)
        : mesh(std::move(mesh_in)), flat(bvh::buildWideBvh(mesh)),
          unit(flat, mesh, cfg,
               [this, mem_latency](std::uint64_t, std::uint32_t,
                                   std::uint64_t now) {
                   fetches++;
                   return now + mem_latency;
               })
    {}

    /** Submit one job and run the unit until it retires. */
    rtunit::TraceResult
    runOne(const rtunit::TraceJob &job)
    {
        bool done = false;
        rtunit::TraceResult out;
        unit.submit(job, now,
                    [&](int, const rtunit::TraceResult &r) {
                        out = r;
                        done = true;
                    });
        drain([&] { return done; });
        return out;
    }

    /** Tick until @p until() is true (or the unit empties). */
    template <typename Pred>
    void
    drain(Pred until)
    {
        std::uint64_t guard = 0;
        while (!until()) {
            const std::uint64_t e = unit.nextEventCycle(now);
            ASSERT_NE(e, rtunit::kNever)
                << "RT unit stalled with work outstanding";
            if (e > now)
                now = e;
            unit.tick(now);
            now++;
            ASSERT_LT(++guard, 50'000'000ull) << "tick loop runaway";
        }
    }

    scene::Mesh mesh;
    bvh::FlatBvh flat;
    std::uint64_t fetches = 0;
    std::uint64_t now = 0;
    rtunit::RtUnit unit;
};

/** A warp job with @p k rays aimed from z=-20 into the soup. */
inline rtunit::TraceJob
frontalJob(int k, std::uint64_t seed = 9)
{
    rtunit::TraceJob job;
    geom::Pcg32 rng(seed);
    for (int t = 0; t < k && t < rtunit::kWarpSize; ++t) {
        geom::Vec3 o{rng.nextRange(-10, 10), rng.nextRange(-10, 10),
                     -20.0f};
        geom::Vec3 target{rng.nextRange(-8, 8), rng.nextRange(-8, 8),
                          rng.nextRange(-8, 8)};
        job.rays[std::size_t(t)] =
            geom::Ray(o, normalize(target - o));
    }
    return job;
}

} // namespace cooprt::testutil

#endif // COOPRT_TESTS_RTUNIT_TEST_UTIL_HPP

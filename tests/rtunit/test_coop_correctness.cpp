/**
 * @file
 * The paper's central functional claim, as a property test: "This
 * cooperative traversal is functionally correct, i.e., the closest-hit
 * primitive will be correctly identified" (Section 4.2). Every CoopRT
 * variant must return exactly the baseline/oracle closest hits.
 */

#include <gtest/gtest.h>

#include "rtunit_test_util.hpp"
#include "scene/generators.hpp"

namespace {

using namespace cooprt;
using rtunit::kWarpSize;
using rtunit::TraceConfig;
using rtunit::TraceJob;
using rtunit::TraceResult;
using rtunit::TraversalOrder;
using testutil::makeSoup;
using testutil::RtHarness;

struct CoopCase
{
    std::uint64_t seed;
    int subwarp;
    int active_rays;
    bool steal_bottom;
    TraversalOrder order;
    bool conservative = false; ///< helper_requires_idle variant
};

std::string
caseName(const ::testing::TestParamInfo<CoopCase> &info)
{
    const CoopCase &c = info.param;
    std::string s = "seed" + std::to_string(c.seed) + "_sw" +
                    std::to_string(c.subwarp) + "_rays" +
                    std::to_string(c.active_rays);
    s += c.steal_bottom ? "_bottom" : "_tos";
    s += c.order == TraversalOrder::Bfs ? "_bfs" : "_dfs";
    if (c.conservative)
        s += "_conservative";
    return s;
}

class CoopCorrectness : public ::testing::TestWithParam<CoopCase>
{};

TEST_P(CoopCorrectness, MatchesOracle)
{
    const CoopCase &p = GetParam();
    scene::Mesh mesh = makeSoup(p.seed, 2500);

    // Divergent job: rays with wildly different origins/directions so
    // traversal lengths differ and helpers engage.
    TraceJob job;
    geom::Pcg32 rng(p.seed * 17 + 1);
    for (int t = 0; t < p.active_rays; ++t) {
        geom::Vec3 o = rng.nextInBox(geom::Vec3(-25), geom::Vec3(25));
        geom::Vec3 target =
            rng.nextInBox(geom::Vec3(-9), geom::Vec3(9));
        if ((target - o).lengthSq() < 1e-6f)
            continue;
        job.rays[std::size_t(t)] = geom::Ray(o, normalize(target - o));
    }

    TraceConfig cfg;
    cfg.coop = true;
    cfg.subwarp_size = p.subwarp;
    cfg.steal_from_bottom = p.steal_bottom;
    cfg.order = p.order;
    cfg.helper_requires_idle = p.conservative;
    RtHarness h(mesh, cfg);
    TraceResult r = h.runOne(job);

    for (int t = 0; t < kWarpSize; ++t) {
        if (!job.rays[std::size_t(t)]) {
            EXPECT_FALSE(r.hits[std::size_t(t)].hit()) << t;
            continue;
        }
        auto ref = bvh::closestHit(h.flat, h.mesh,
                                   *job.rays[std::size_t(t)]);
        ASSERT_EQ(r.hits[std::size_t(t)].hit(), ref.hit())
            << "thread " << t;
        if (ref.hit()) {
            EXPECT_EQ(r.hits[std::size_t(t)].prim_id, ref.prim_id)
                << "thread " << t;
            EXPECT_FLOAT_EQ(r.hits[std::size_t(t)].thit, ref.thit)
                << "thread " << t;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoopCorrectness,
    ::testing::Values(
        CoopCase{101, 32, 1, false, TraversalOrder::Dfs},
        CoopCase{102, 32, 4, false, TraversalOrder::Dfs},
        CoopCase{103, 32, 16, false, TraversalOrder::Dfs},
        CoopCase{104, 32, 32, false, TraversalOrder::Dfs},
        CoopCase{105, 16, 8, false, TraversalOrder::Dfs},
        CoopCase{106, 8, 8, false, TraversalOrder::Dfs},
        CoopCase{107, 4, 8, false, TraversalOrder::Dfs},
        CoopCase{108, 4, 32, false, TraversalOrder::Dfs},
        CoopCase{109, 32, 8, true, TraversalOrder::Dfs},
        CoopCase{110, 8, 16, true, TraversalOrder::Dfs},
        CoopCase{111, 32, 8, false, TraversalOrder::Bfs},
        CoopCase{112, 4, 16, false, TraversalOrder::Bfs},
        CoopCase{113, 32, 32, true, TraversalOrder::Dfs},
        CoopCase{114, 16, 32, false, TraversalOrder::Bfs},
        CoopCase{115, 32, 1, false, TraversalOrder::Dfs, true},
        CoopCase{116, 8, 16, false, TraversalOrder::Dfs, true},
        CoopCase{117, 32, 32, true, TraversalOrder::Dfs, true}),
    caseName);

/**
 * Coop vs baseline on a generated scene with materials and realistic
 * structure: identical per-thread hit results.
 */
TEST(CoopVsBaseline, IdenticalResultsOnGeneratedScene)
{
    scene::Scene s = scene::makeCarnivalScene("t", 55, 20, 10);
    geom::Pcg32 rng(56);

    for (int rep = 0; rep < 6; ++rep) {
        TraceJob job;
        for (int t = 0; t < kWarpSize; ++t) {
            geom::Vec3 o{rng.nextRange(-20, 20),
                         rng.nextRange(0.5f, 6.0f),
                         rng.nextRange(-20, 20)};
            job.rays[std::size_t(t)] =
                geom::Ray(o, rng.nextUnitVector());
        }

        RtHarness base(s.mesh, TraceConfig{});
        TraceResult rb = base.runOne(job);

        TraceConfig cc;
        cc.coop = true;
        RtHarness coop(s.mesh, cc);
        TraceResult rc = coop.runOne(job);

        for (int t = 0; t < kWarpSize; ++t) {
            ASSERT_EQ(rb.hits[std::size_t(t)].hit(),
                      rc.hits[std::size_t(t)].hit())
                << "rep " << rep << " thread " << t;
            if (rb.hits[std::size_t(t)].hit()) {
                EXPECT_EQ(rb.hits[std::size_t(t)].prim_id,
                          rc.hits[std::size_t(t)].prim_id);
                EXPECT_FLOAT_EQ(rb.hits[std::size_t(t)].thit,
                                rc.hits[std::size_t(t)].thit);
            }
        }
        // Coop must never be slower in this unlimited-bandwidth
        // harness.
        EXPECT_LE(rc.latency(), rb.latency()) << "rep " << rep;
    }
}

} // namespace

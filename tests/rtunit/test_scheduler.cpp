/**
 * @file
 * Tests for the RT warp-scheduler policies (round-robin vs greedy-
 * then-oldest vs oldest-first): all must preserve exact results;
 * the timing differs by policy.
 */

#include <gtest/gtest.h>

#include "rtunit_test_util.hpp"

namespace {

using namespace cooprt;
using rtunit::TraceConfig;
using rtunit::TraceJob;
using rtunit::TraceResult;
using rtunit::WarpSchedPolicy;
using testutil::frontalJob;
using testutil::makeSoup;
using testutil::RtHarness;

class SchedPolicyTest
    : public ::testing::TestWithParam<WarpSchedPolicy>
{};

TEST_P(SchedPolicyTest, MultiWarpResultsMatchOracle)
{
    scene::Mesh mesh = makeSoup(31, 1500);
    TraceConfig cfg;
    cfg.sched = GetParam();
    cfg.coop = true;
    cfg.warp_buffer_entries = 4;
    RtHarness h(mesh, cfg);

    int retired = 0;
    std::array<TraceJob, 4> jobs;
    std::array<TraceResult, 4> results;
    for (int w = 0; w < 4; ++w) {
        jobs[std::size_t(w)] = frontalJob(12, 300 + w);
        h.unit.submit(jobs[std::size_t(w)], h.now,
                      [&results, &retired, w](int,
                                              const TraceResult &r) {
                          results[std::size_t(w)] = r;
                          retired++;
                      });
    }
    h.drain([&] { return retired == 4; });

    for (int w = 0; w < 4; ++w)
        for (int t = 0; t < 12; ++t) {
            const auto ref = bvh::closestHit(
                h.flat, h.mesh, *jobs[std::size_t(w)].rays[std::size_t(t)]);
            ASSERT_EQ(results[std::size_t(w)].hits[std::size_t(t)].hit(),
                      ref.hit())
                << "warp " << w << " thread " << t;
            if (ref.hit()) {
                EXPECT_FLOAT_EQ(
                    results[std::size_t(w)].hits[std::size_t(t)].thit,
                    ref.thit);
            }
        }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SchedPolicyTest,
    ::testing::Values(WarpSchedPolicy::RoundRobin,
                      WarpSchedPolicy::GreedyThenOldest,
                      WarpSchedPolicy::OldestFirst),
    [](const ::testing::TestParamInfo<WarpSchedPolicy> &info) {
        switch (info.param) {
          case WarpSchedPolicy::RoundRobin: return "RoundRobin";
          case WarpSchedPolicy::GreedyThenOldest: return "Gto";
          case WarpSchedPolicy::OldestFirst: return "Oldest";
        }
        return "Unknown";
    });

TEST(SchedPolicy, OldestFirstDrainsOldWarpFirst)
{
    scene::Mesh mesh = makeSoup(32, 2000);
    TraceConfig cfg;
    cfg.sched = WarpSchedPolicy::OldestFirst;
    cfg.warp_buffer_entries = 2;
    RtHarness h(mesh, cfg, 200);

    std::uint64_t first_retire = 0, second_retire = 0;
    h.unit.submit(frontalJob(16, 401), 0,
                  [&](int, const TraceResult &r) {
                      first_retire = r.retire_cycle;
                  });
    // Second warp submitted later must not finish before the first
    // when both trace similar work under oldest-first service.
    h.now = 50;
    h.unit.submit(frontalJob(16, 401), 50,
                  [&](int, const TraceResult &r) {
                      second_retire = r.retire_cycle;
                  });
    h.drain([&] { return first_retire && second_retire; });
    EXPECT_LE(first_retire, second_retire);
}

TEST(SchedPolicy, PoliciesProduceDifferentTimings)
{
    scene::Mesh mesh = makeSoup(33, 2500);
    std::array<std::uint64_t, 3> latency{};
    const WarpSchedPolicy policies[] = {
        WarpSchedPolicy::RoundRobin, WarpSchedPolicy::GreedyThenOldest,
        WarpSchedPolicy::OldestFirst};
    for (std::size_t p = 0; p < 3; ++p) {
        TraceConfig cfg;
        cfg.sched = policies[p];
        cfg.warp_buffer_entries = 4;
        RtHarness h(mesh, cfg, 300);
        int retired = 0;
        std::uint64_t last = 0;
        for (int w = 0; w < 4; ++w)
            h.unit.submit(frontalJob(16, 500 + w), 0,
                          [&](int, const TraceResult &r) {
                              retired++;
                              last = std::max(last, r.retire_cycle);
                          });
        h.drain([&] { return retired == 4; });
        latency[p] = last;
        EXPECT_GT(last, 0u);
    }
    // All complete; at least the makespans are plausible (within 3x).
    const auto [mn, mx] =
        std::minmax_element(latency.begin(), latency.end());
    EXPECT_LT(*mx, *mn * 3);
}

} // namespace

#!/usr/bin/env python3
"""Self-test for tools/cooprt_lint.

Four layers:

  1. fixture goldens  — every fixtures/<rule>/ mini-repo must lint
     to exactly its expected.keys (stable finding keys);
  2. gate exit codes  — violations fail (1), bad usage is 2, the
     --keys/--list-rules modes are 0;
  3. HEAD is clean    — the real repo lints clean against the
     checked-in baseline (which is empty: every real finding was
     fixed or carries an inline allow() with a reason);
  4. lint mutation    — seed a fresh violation into a copy of a
     fixture and prove the baseline gate catches it, that baselined
     findings stay quiet, that baseline keys are line-independent,
     and that removing a baselined finding reports it as stale.

Run:  python3 tools/test_cooprt_lint.py
"""

from __future__ import annotations

import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lintlib  # noqa: E402

TOOLS = Path(__file__).resolve().parent
LINT = TOOLS / "cooprt_lint"
FIXTURES = LINT / "fixtures"

tool = lintlib.Tool("test_cooprt_lint")
problems: list[str] = []

_SEED = """
void
seededViolation(std::ostream &os)
{
    std::unordered_map<int, int> seeded_table;
    for (const auto &kv : seeded_table)
        os << kv.first;
}
"""


def run_lint(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(LINT)] + args,
                          capture_output=True, text=True)


def check(cond: bool, msg: str) -> None:
    if not cond:
        problems.append(msg)


def test_fixture_goldens() -> int:
    n = 0
    for d in sorted(FIXTURES.iterdir()):
        golden = d / "expected.keys"
        if not golden.exists():
            continue
        n += 1
        r = run_lint(["--repo", str(d), "--no-baseline", "--keys"])
        check(r.returncode == 0,
              f"{d.name}: --keys exited {r.returncode}")
        want = golden.read_text(encoding="utf-8")
        check(r.stdout == want,
              f"{d.name}: key mismatch\n--- got ---\n{r.stdout}"
              f"--- want ---\n{want}")
    check(n >= 7, f"only {n} fixture goldens found, expected >= 7")
    return n


def test_gate_exit_codes() -> None:
    d = FIXTURES / "nondeterministic_iteration"
    r = run_lint(["--repo", str(d), "--no-baseline"])
    check(r.returncode == 1,
          f"violations must exit 1, got {r.returncode}")
    check("FAIL" in r.stdout, "gate failure must print FAIL")

    r = run_lint(["--rules", "bogus-rule"])
    check(r.returncode == 2,
          f"unknown rule must exit 2, got {r.returncode}")

    r = run_lint(["--list-rules"])
    check(r.returncode == 0 and "audit-coverage" in r.stdout,
          "--list-rules must list the rule catalogue")


def test_head_clean() -> None:
    r = run_lint([])
    check(r.returncode == 0,
          f"HEAD must lint clean against the baseline:\n{r.stdout}")


def test_lint_mutation() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmpd = Path(tmp) / "fx"
        shutil.copytree(FIXTURES / "nondeterministic_iteration",
                        tmpd)
        bl = Path(tmp) / "baseline.json"
        case = tmpd / "src" / "case.cpp"

        r = run_lint(["--repo", str(tmpd), "--baseline", str(bl),
                      "--update-baseline"])
        check(r.returncode == 0, "--update-baseline must exit 0")

        r = run_lint(["--repo", str(tmpd), "--baseline", str(bl)])
        check(r.returncode == 0,
              f"baselined findings must pass the gate:\n{r.stdout}")

        # Baseline keys are line-independent: shifting every finding
        # down must not resurrect anything.
        case.write_text("// shifted\n// shifted\n"
                        + case.read_text(encoding="utf-8"),
                        encoding="utf-8")
        r = run_lint(["--repo", str(tmpd), "--baseline", str(bl)])
        check(r.returncode == 0,
              f"line shifts must not resurrect baselined findings:"
              f"\n{r.stdout}")

        # Seeded violation: a brand-new finding must fail the gate.
        case.write_text(case.read_text(encoding="utf-8") + _SEED,
                        encoding="utf-8")
        r = run_lint(["--repo", str(tmpd), "--baseline", str(bl)])
        check(r.returncode == 1,
              f"seeded violation must fail the gate:\n{r.stdout}")
        check("seeded_table" in r.stdout,
              "gate output must name the seeded container")
        check("1 new" in r.stdout,
              f"exactly the seeded finding must be new:\n{r.stdout}")

        # Stale detection: baseline the seed, remove it again.
        r = run_lint(["--repo", str(tmpd), "--baseline", str(bl),
                      "--update-baseline"])
        check(r.returncode == 0, "re-baselining must exit 0")
        text = case.read_text(encoding="utf-8")
        case.write_text(text.replace(_SEED, ""), encoding="utf-8")
        r = run_lint(["--repo", str(tmpd), "--baseline", str(bl)])
        check(r.returncode == 0 and "stale" in r.stdout,
              f"removed finding must be reported stale:\n{r.stdout}")


def main() -> int:
    n = test_fixture_goldens()
    test_gate_exit_codes()
    test_head_clean()
    test_lint_mutation()
    return tool.report(
        problems,
        ok=f"{n} fixture goldens, gate exit codes, clean HEAD, "
           f"mutation/baseline mechanics")


if __name__ == "__main__":
    sys.exit(main())

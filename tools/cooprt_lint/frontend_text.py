"""Structural text frontend.

Dependency-free fact extraction: declaration scanning for
unordered-container / floating-point variables, clock aliases,
for-loop body resolution, and COOPRT_AUDIT / COOPRT_CHECK_ONLY
argument spans. Offsets come from the stripped ``code`` view so
comments and string literals can never fake a declaration or a loop.

This frontend is deliberately conservative: it classifies by
declared-name lookup (file-local first, project-union second), which
the libclang frontend replaces with real type information when
available. Both fill the identical ``FileFacts`` schema.
"""

from __future__ import annotations

import re
from pathlib import Path

from model import FileFacts, Loop
from source import SourceFile, Span, match_forward

_UNORDERED_TYPE_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")

_UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*[^;\n]*unordered_(?:map|set|multimap"
    r"|multiset)")

_FLOAT_DECL_RE = re.compile(
    r"\b(?:double|float)\s+(&?\s*\w+)\s*(?:[;={(,)]|\s*=)")

_CLOCK_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*std::chrono::(?:steady_clock"
    r"|system_clock|high_resolution_clock)\s*;")

_FOR_RE = re.compile(r"\bfor\s*\(")

_AUDIT_RE = re.compile(r"\b(?:COOPRT_AUDIT|COOPRT_CHECK_ONLY)\s*\(")


def _declared_names(code: str, type_re: re.Pattern) -> set[str]:
    """Declarator names for template types: @p type_re must end at
    the opening ``<``; the declarator follows the balanced ``>``."""
    names: set[str] = set()
    for m in type_re.finditer(code):
        # m.end() is just past '<'; walk to the balanced '>'.
        i = m.end()
        depth = 1
        while i < len(code) and depth > 0:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        dm = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)", code[i:])
        if dm:
            names.add(dm.group(1))
    return names


def _alias_names(code: str, alias_re: re.Pattern) -> set[str]:
    return {m.group(1) for m in alias_re.finditer(code)}


def _scan_loops(sf: SourceFile) -> list[Loop]:
    loops: list[Loop] = []
    code = sf.code
    for m in _FOR_RE.finditer(code):
        open_paren = m.end() - 1
        close = match_forward(code, open_paren, "(", ")")
        header = code[open_paren + 1:close - 1]
        # Top-level ':' (not '::') splits a range-for header.
        iterated = ""
        depth = 0
        for i, c in enumerate(header):
            if c in "([{<":
                depth += 1
            elif c in ")]}>":
                depth -= 1
            elif (c == ":" and depth == 0
                  and header[i - 1:i] != ":"
                  and header[i + 1:i + 2] != ":"):
                iterated = header[i + 1:].strip()
                break
        # Body: a braced block or a single statement.
        j = close
        while j < len(code) and code[j].isspace():
            j += 1
        if j < len(code) and code[j] == "{":
            body = Span(j + 1, match_forward(code, j, "{", "}") - 1)
        else:
            end = code.find(";", j)
            body = Span(j, len(code) if end < 0 else end)
        loops.append(Loop(line=sf.line_of(m.start()), header=header,
                          iterated=iterated, body=body))
    return loops


def _scan_audit_spans(sf: SourceFile) -> list[Span]:
    spans = []
    for m in _AUDIT_RE.finditer(sf.code):
        open_paren = m.end() - 1
        spans.append(Span(open_paren + 1,
                          match_forward(sf.code, open_paren,
                                        "(", ")") - 1))
    return spans


def analyze_file(path: Path, rel: str) -> FileFacts:
    sf = SourceFile(path, rel, path.read_text(encoding="utf-8",
                                              errors="replace"))
    facts = FileFacts(src=sf)

    aliases = _alias_names(sf.code, _UNORDERED_ALIAS_RE)
    facts.unordered_vars = _declared_names(sf.code,
                                           _UNORDERED_TYPE_RE)
    for alias in aliases:
        # `Alias<...> name` or `Alias name`.
        for m in re.finditer(r"\b" + re.escape(alias)
                             + r"(?:\s*<)?", sf.code):
            i = m.end()
            if sf.code[m.end() - 1:m.end()] == "<":
                depth = 1
                while i < len(sf.code) and depth > 0:
                    if sf.code[i] == "<":
                        depth += 1
                    elif sf.code[i] == ">":
                        depth -= 1
                    i += 1
            dm = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)", sf.code[i:])
            if dm and dm.group(1) != alias:
                facts.unordered_vars.add(dm.group(1))

    # The float regex captures the declarator itself (group 1).
    facts.float_vars = {m.group(1).lstrip("& ").strip()
                        for m in _FLOAT_DECL_RE.finditer(sf.code)}
    facts.clock_aliases = _alias_names(sf.code, _CLOCK_ALIAS_RE)
    facts.loops = _scan_loops(sf)
    facts.audit_spans = _scan_audit_spans(sf)
    return facts


def classify_loops(files: list[FileFacts],
                   project_unordered: set[str]) -> None:
    """Second pass once the project union of unordered names is
    known: a range-for is over-unordered when its sequence expression
    names an unordered container (declared in this file or, for
    members, in the matching header)."""
    from model import last_identifier
    for f in files:
        for loop in f.loops:
            if not loop.iterated:
                continue
            name = last_identifier(loop.iterated)
            loop.over_unordered = (
                "unordered_" in loop.iterated
                or name in f.unordered_vars
                or name in project_unordered)

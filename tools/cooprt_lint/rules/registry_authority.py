"""Rule: registry-authority.

The trace registry is the single authority for metric names: every
tool downstream (report tables, lint_stats_registry, campaign
manifests) resolves names against it. Two registrations of the same
literal name shadow each other silently (last wins), and a metric
that exists in code but not in DESIGN.md cannot be reviewed against
the paper's figure list.

Only *literal dotted* names (``"exec.jobs_queued"``) are checked;
computed names (``prefix + ".hits"``) follow their prefix family's
wildcard entry (``rtunit.*``) and are validated at runtime by the
registry's own collision audit.

Some metric families additionally have a single *owning file* (the
DESIGN.md authority tables): a ``prof.*`` probe registered outside
``src/prof/prof.cpp`` would fork the taxonomy, so any literal
registration of an owned family outside its home file is a finding.
Families whose names are legitimately registered from several files
(``mem.*``, ``rtunit.*``) are not in the map.
"""

from __future__ import annotations

import re

from model import Project, Rule

_LITERAL_REG_RE = re.compile(
    r'\b(?:probe|add)\s*\(\s*"([\w]+(?:\.[\w]+)+)"')

_WILDCARD_RE = re.compile(r"`([\w.]+)\.\*`")

#: Metric families with a single registration authority: literal
#: names under the prefix may only be registered from the owning
#: file (mirrors the DESIGN.md authority tables; in-repo paths).
_AUTHORITY_FILES = {
    "prof.": "src/prof/prof.cpp",
    "memscope.": "src/memscope/memscope.cpp",
    "exec.": "src/exec/exec.cpp",
    "telemetry.": "src/telemetry/telemetry.cpp",
    "query.": "src/query/query.cpp",
    "diff.": "src/diff/diff.cpp",
}


class RegistryAuthority(Rule):
    id = "registry-authority"
    description = ("literal metric name registered twice or absent "
                   "from DESIGN.md")
    roots = ("src",)

    def check_project(self, project: Project, add) -> None:
        sites: dict[str, list[tuple[str, int]]] = {}
        for facts in project.files:
            if not self.applies_to(facts.rel):
                continue
            nc = facts.src.nc
            for m in _LITERAL_REG_RE.finditer(nc):
                sites.setdefault(m.group(1), []).append(
                    (facts.rel, facts.src.line_of(m.start())))

        design = project.design_md()
        wildcards = {w + "." for w in _WILDCARD_RE.findall(design)}

        for name in sorted(sites):
            where = sites[name]
            if len(where) > 1:
                first = f"{where[0][0]}:{where[0][1]}"
                for rel, line in where[1:]:
                    add(self.id, rel, line,
                        f"metric '{name}' registered more than once",
                        f"metric '{name}' is already registered at "
                        f"{first}; the registry is single-authority "
                        f"— rename or merge")
            for prefix, owner in _AUTHORITY_FILES.items():
                if not name.startswith(prefix):
                    continue
                for rel, line in where:
                    if rel != owner:
                        add(self.id, rel, line,
                            f"metric '{name}' registered outside "
                            f"its authority file",
                            f"the {prefix}* family is registered "
                            f"only from {owner} (DESIGN.md "
                            f"authority table); move the "
                            f"registration there or compute the "
                            f"name through that module's API")
            documented = (f"`{name}`" in design
                          or any(name.startswith(w)
                                 for w in wildcards))
            if not documented:
                rel, line = where[0]
                add(self.id, rel, line,
                    f"metric '{name}' not documented in DESIGN.md",
                    f"metric '{name}' is registered here but has "
                    f"no `{name}` (or wildcard family) entry in "
                    f"DESIGN.md; document it in the metric "
                    f"catalogue")

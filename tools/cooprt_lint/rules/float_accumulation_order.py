"""Rule: float-accumulation-order.

Floating-point addition is not associative: summing the same set of
doubles in two different orders yields different low bits, and
low bits leak into report files and figure tables. Two shapes are
hazardous here:

  - ``x += ...`` on a float/double inside a loop over an unordered
    container (hash order decides the accumulation order), and
  - ``x += ...`` on a float/double anywhere in ``src/exec/``
    (campaign workers complete in scheduling order; accumulating
    across jobs in completion order is nondeterministic under
    ``--jobs N``).

Per-slot writes (a single writer filling its own result slot) are
fine and should carry an allow() stating exactly that.
"""

from __future__ import annotations

import re

from model import Project, Rule, last_identifier

_ACCUM_RE = re.compile(r"([A-Za-z_][\w.\[\]]*(?:->[\w.\[\]]+)*)"
                       r"\s*\+=")


class FloatAccumulationOrder(Rule):
    id = "float-accumulation-order"
    description = ("float += where iteration/completion order "
                   "decides the sum")

    def check_project(self, project: Project, add) -> None:
        floats = project.float_names
        for facts in project.files:
            if not self.applies_to(facts.rel):
                continue
            code = facts.src.code
            # Shape 1: accumulation inside an unordered loop.
            for loop in facts.loops:
                if not loop.over_unordered:
                    continue
                body = code[loop.body.start:loop.body.end]
                for m in _ACCUM_RE.finditer(body):
                    name = last_identifier(m.group(1))
                    if name in facts.float_vars or name in floats:
                        off = loop.body.start + m.start()
                        add(self.id, facts.rel,
                            facts.src.line_of(off),
                            f"float '+=' on '{name}' in unordered "
                            f"loop",
                            f"'{name}' accumulates in hash order; "
                            f"sort the keys first or accumulate "
                            f"into an ordered intermediate")
            # Shape 2: accumulation in the campaign engine.
            if not facts.rel.startswith("src/exec/"):
                continue
            for m in _ACCUM_RE.finditer(code):
                name = last_identifier(m.group(1))
                if name in facts.float_vars or name in floats:
                    add(self.id, facts.rel,
                        facts.src.line_of(m.start()),
                        f"float '+=' on '{name}' in exec worker "
                        f"path",
                        f"'{name}' accumulates where worker "
                        f"completion order is scheduler-dependent; "
                        f"make it per-slot or reduce in job order")

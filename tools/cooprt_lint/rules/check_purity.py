"""Rule: check-purity.

``COOPRT_CHECK_ENABLED`` builds must produce bit-identical
simulation results to release builds — that is what makes the audit
harness trustworthy (DESIGN.md §10: checks observe, never steer).
Therefore code that exists only under ``#if COOPRT_CHECK_ENABLED``,
or inside ``COOPRT_AUDIT(...)`` / ``COOPRT_CHECK_ONLY(...)``
argument spans, must not write simulation state.

Writes are allowed to: locals declared inside the region, and
fields following the check-state naming convention
(``audit_*`` / ``check_*`` prefix on the final identifier).
Everything else is a purity violation.
"""

from __future__ import annotations

import re

from model import FileFacts, Rule
from source import Span, match_forward

_MUTATION_RE = re.compile(
    r"^\s*([A-Za-z_][\w.\[\]]*(?:->[\w.\[\]]+)*)\s*"
    r"(\+\+|--|\+=|-=|\*=|/=|\|=|&=|\^=|=(?!=))")

_DECL_RE = re.compile(
    r"\b(?:auto|bool|int|long|unsigned|short|float|double|char"
    r"|size_t|std\s*::\s*[\w:]+|uint\d+_t|int\d+_t)\b"
    r"(?:\s*<[^;<>]*>)?(?:\s*::\s*\w+)*\s*(?:const\s*)?[&*]?\s*"
    r"(\w+)\s*(?:=|\{|;|\()")

_BINDING_RE = re.compile(r"\bauto\s*&?\s*\[([^\]]*)\]")

_FOR_RE = re.compile(r"\bfor\s*\(")


class CheckPurity(Rule):
    id = "check-purity"
    description = ("check-only code writes state outside the "
                   "audit_*/check_* namespace")

    def check_file(self, facts: FileFacts, add) -> None:
        sf = facts.src
        regions = list(sf.check_regions) + list(facts.audit_spans)
        for region in regions:
            self._check_region(facts, region, add)

    def _check_region(self, facts: FileFacts, region: Span,
                      add) -> None:
        sf = facts.src
        text = sf.code[region.start:region.end]
        # Loop headers manage their own induction variables; blank
        # them so `++i` / `i = 0` fragments are not statements.
        buf = list(text)
        for m in _FOR_RE.finditer(text):
            end = match_forward(text, m.end() - 1, "(", ")")
            for k in range(m.start(), end):
                if buf[k] != "\n":
                    buf[k] = " "
        text = "".join(buf)

        locals_: set[str] = {m.group(1)
                             for m in _DECL_RE.finditer(text)}
        for m in _BINDING_RE.finditer(text):
            locals_.update(n.strip() for n in m.group(1).split(",")
                           if n.strip())

        pos = 0
        for m in re.finditer(r"[;{}]", text):
            stmt = text[pos:m.start()]
            self._check_statement(facts, region.start + pos, stmt,
                                  locals_, add)
            pos = m.end()
        self._check_statement(facts, region.start + pos, text[pos:],
                              locals_, add)

    def _check_statement(self, facts: FileFacts, offset: int,
                         stmt: str, locals_: set[str], add) -> None:
        m = _MUTATION_RE.match(stmt)
        if not m:
            return
        lvalue = m.group(1)
        ids = re.findall(r"[A-Za-z_]\w*", lvalue)
        name = ids[-1] if ids else ""
        root = ids[0] if ids else ""
        # Check-private state: either end of the chain carries the
        # audit_/check_ prefix ('w.audit_steal_expected++',
        # 'audit_rt.node_fetches += ...'), or the root is a local
        # declared inside this region.
        if (name.startswith(("audit_", "check_"))
                or root.startswith(("audit_", "check_"))
                or root in locals_):
            return
        # `x = y` where the statement is really a declaration
        # (`type x = y`) never matches: the lvalue chain cannot
        # span whitespace, so only genuine assignments arrive here.
        line = facts.src.line_of(offset + m.start(1))
        add(self.id, facts.rel, line,
            f"write to '{name}' in check-only code",
            f"check-only code writes '{lvalue}'; checks must "
            f"observe, never steer — rename to audit_*/check_* if "
            f"this is check-private state, otherwise move the "
            f"write out of the COOPRT_CHECK region")

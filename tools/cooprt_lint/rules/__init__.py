"""Rule registry. Import order is the report order."""

from rules.nondeterministic_iteration import NondeterministicIteration
from rules.unseeded_randomness import UnseededRandomness
from rules.float_accumulation_order import FloatAccumulationOrder
from rules.audit_coverage import AuditCoverage
from rules.check_purity import CheckPurity
from rules.registry_authority import RegistryAuthority

ALL_RULES = [
    NondeterministicIteration(),
    UnseededRandomness(),
    FloatAccumulationOrder(),
    AuditCoverage(),
    CheckPurity(),
    RegistryAuthority(),
]

RULE_IDS = [r.id for r in ALL_RULES]

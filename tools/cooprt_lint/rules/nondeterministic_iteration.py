"""Rule: nondeterministic-iteration.

A range-for over ``std::unordered_{map,set,...}`` visits elements in
hash order, which varies across libstdc++ versions and (for
pointer-keyed tables) across runs. That is fine for pure reductions
(sums, erase sweeps) but poisonous the moment the body emits
anything ordered: report rows, folded-stack lines, tracer events,
metric registrations. This rule flags unordered-iteration loops
whose body reaches a sink; the fix is to snapshot + ``std::sort``
first (see ``memscope.cpp:writeFolded`` for the canonical pattern).
"""

from __future__ import annotations

import re

from model import FileFacts, Rule

# Ordered-output sinks: stream inserts into stream-ish lvalues,
# appends into result containers, and writer/recorder calls.
_STREAM_RE = re.compile(
    r"\b\w*(?:os|out|stream|ss|cout|cerr|file|log)\w*\s*<<",
    re.IGNORECASE)
_APPEND_RE = re.compile(
    r"\b(?:push_back|emplace_back|append)\s*\(")
_WRITER_RE = re.compile(
    r"\b(?:\w*(?:write|emit|record|dump|print|fprintf|probe)\w*)"
    r"\s*\(")


class NondeterministicIteration(Rule):
    id = "nondeterministic-iteration"
    description = ("iteration over an unordered container feeds a "
                   "report/sink/tracer path")

    def check_file(self, facts: FileFacts, add) -> None:
        code = facts.src.code
        for loop in facts.loops:
            if not loop.over_unordered:
                continue
            body = code[loop.body.start:loop.body.end]
            sink = None
            for rx, kind in ((_STREAM_RE, "stream write"),
                             (_APPEND_RE, "container append"),
                             (_WRITER_RE, "writer call")):
                m = rx.search(body)
                if m:
                    sink = (kind, m.group(0).strip())
                    break
            if sink is None:
                continue
            name = _loop_name(loop.iterated)
            add(self.id, facts.rel, loop.line,
                f"loop over '{name}' reaches sink",
                f"range-for over unordered container '{name}' "
                f"reaches an ordered sink ({sink[0]} '{sink[1]}'); "
                f"snapshot into a vector and std::sort before "
                f"emitting")


def _loop_name(iterated: str) -> str:
    from model import last_identifier
    return last_identifier(iterated) or iterated[:32]

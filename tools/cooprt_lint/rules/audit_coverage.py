"""Rule: audit-coverage.

Every counter the trace registry can observe is part of the
published result surface (report tables, pinned-cycle baselines).
A counter that is bumped on some hot path but never appears in a
``COOPRT_AUDIT`` invariant is unprotected: a refactor can silently
double-count or drop it and nothing fails until a human re-diffs a
figure. This rule cross-references three sets:

  registered   fields reachable from ``Registry::probe``/``add``
  mutated      fields incremented (``++``/``+=``/``fetch_add``)
  audited      identifiers named inside any ``COOPRT_AUDIT(...)`` /
               ``COOPRT_CHECK_ONLY(...)`` argument span, project-wide

and flags registered+mutated fields with no audit mention. Fields
that are genuinely un-invariantable (pure event tallies with no
conservation partner) take an inline allow() naming why.
"""

from __future__ import annotations

import re

from model import Project, Rule

# add("name", &s->field)  /  add("name", &stats.field)
_ADD_ADDR_RE = re.compile(
    r'\badd\s*\(\s*"[\w.]+"\s*,\s*&\s*\w+(?:->|\.)(\w+)\s*\)')
# probe("a.b.c", stats_.field)
_PROBE_MEMBER_RE = re.compile(
    r'\bprobe\s*\(\s*"[\w.]+"\s*,\s*\w+(?:\.|->)(\w+)\s*[,)]')
# agg(&CacheStats::field)
_AGG_RE = re.compile(r"&\s*\w+Stats\s*::\s*(\w+)")
# probe("...", [..]{ ... return <chain>.field; ... })
_PROBE_CALL_RE = re.compile(r'\bprobe\s*\(\s*"[\w.]+"')
_LAMBDA_RETURN_RE = re.compile(
    r"return\s+(?:[\w]+(?:\.|->))*(\w+)(?:\.load\(\))?\s*;")

_LAMBDA_WINDOW = 280  # bytes after probe( to look for the return


class AuditCoverage(Rule):
    id = "audit-coverage"
    description = ("registry-observable counter incremented but "
                   "named in no COOPRT_AUDIT invariant")
    roots = ("src",)

    def check_project(self, project: Project, add) -> None:
        registered: set[str] = set()
        audited: set[str] = set()
        for facts in project.files:
            nc = facts.src.nc
            for rx in (_ADD_ADDR_RE, _PROBE_MEMBER_RE, _AGG_RE):
                registered.update(m.group(1) for m in rx.finditer(nc))
            for m in _PROBE_CALL_RE.finditer(nc):
                window = nc[m.end():m.end() + _LAMBDA_WINDOW]
                r = _LAMBDA_RETURN_RE.search(window)
                if r:
                    registered.add(r.group(1))
            code = facts.src.code
            for span in facts.audit_spans:
                audited.update(
                    re.findall(r"[A-Za-z_]\w*",
                               code[span.start:span.end]))

        uncovered = registered - audited
        if not uncovered:
            return
        for facts in project.files:
            if not self.applies_to(facts.rel):
                continue
            code = facts.src.code
            for field in sorted(uncovered):
                rx = re.compile(
                    r"(?:\.|->)" + re.escape(field)
                    + r"\s*(?:\+\+|\+=)"
                    r"|(?:\.|->)" + re.escape(field)
                    + r"\s*\.\s*fetch_add\s*\(")
                m = rx.search(code)
                if not m:
                    continue
                add(self.id, facts.rel,
                    facts.src.line_of(m.start()),
                    f"counter '{field}' mutated without audit",
                    f"registry-observable counter '{field}' is "
                    f"incremented here but appears in no "
                    f"COOPRT_AUDIT invariant anywhere; add a "
                    f"conservation check or allow() with the "
                    f"reason it cannot have one")

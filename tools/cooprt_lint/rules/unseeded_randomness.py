"""Rule: unseeded-randomness.

The simulator's contract is: same config + same seed => bit-identical
outputs. Anything that injects entropy the seed does not control
breaks replay: ``rand()``/``srand()``, ``std::random_device``,
wall-clock reads (``steady_clock::now`` and friends, including
through ``using Clock = ...`` aliases), ``time(NULL)`` seeds, and
pointer identity laundered through ``reinterpret_cast<uintptr_t>``
(ASLR makes the address a per-run random number the moment it is
compared, hashed or printed).

Legitimate uses (wall-clock timing that is reporting-only and never
feeds simulated state) must carry an inline allow with a reason.
"""

from __future__ import annotations

import re

from model import FileFacts, Rule

_PATTERNS: list[tuple[str, re.Pattern]] = [
    ("std::random_device",
     re.compile(r"\bstd\s*::\s*random_device\b")),
    ("rand()",
     re.compile(r"(?<![\w:.])s?rand\s*\(")),
    ("chrono ::now()",
     re.compile(r"\bstd::chrono::(?:steady_clock|system_clock"
                r"|high_resolution_clock)\s*::\s*now\s*\(")),
    ("time(NULL)",
     re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)\s*\)")),
    ("pointer identity",
     re.compile(r"\breinterpret_cast\s*<\s*(?:std::)?u?intptr_t"
                r"\s*>")),
]


class UnseededRandomness(Rule):
    id = "unseeded-randomness"
    description = ("entropy the run seed does not control: rand, "
                   "random_device, wall clocks, pointer identity")

    def check_file(self, facts: FileFacts, add) -> None:
        code = facts.src.code
        patterns = list(_PATTERNS)
        for alias in sorted(facts.clock_aliases):
            patterns.append((
                f"{alias}::now()",
                re.compile(r"\b" + re.escape(alias)
                           + r"\s*::\s*now\s*\(")))
        for construct, rx in patterns:
            for m in rx.finditer(code):
                add(self.id, facts.rel, facts.src.line_of(m.start()),
                    construct,
                    f"'{construct}' injects per-run entropy the "
                    f"seed does not control; derive from the run "
                    f"seed or allow() with a reason if it is "
                    f"reporting-only")

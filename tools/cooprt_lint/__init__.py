"""cooprt-lint — static determinism & audit-coverage analysis for the
CoopRT simulator.

Every result this reproduction publishes rests on bit-identical
determinism (pinned-cycle baselines, jobs-1-vs-4 byte-identity,
figure tables matching the paper). The runtime ``cooprt::check``
audits enforce that property *dynamically*; this package rejects the
hazard patterns *statically*, before they reach a run:

  ====================================  =================================
  rule id                               hazard class
  ====================================  =================================
  ``nondeterministic-iteration``        hash-container iteration feeding
                                        a report/sink/tracer path
  ``unseeded-randomness``               wall-clock / rand / pointer
                                        identity influencing results
  ``float-accumulation-order``          float ``+=`` reductions in
                                        unordered loops or exec workers
  ``audit-coverage``                    registry-observable counters
                                        mutated but never audited
  ``check-purity``                      COOPRT_CHECK-only code writing
                                        non-check state
  ``registry-authority``                metric names registered twice or
                                        missing from the DESIGN.md tables
  ====================================  =================================

Two interchangeable frontends produce the same fact stream:

  - ``text``: a structural C++ scanner (comment/string stripping,
    brace/paren matching, declaration and loop extraction). Zero
    dependencies; this is the CI gate and the ctest default.
  - ``clang``: libclang (``pip install libclang``) driven by
    ``build/compile_commands.json`` for type-accurate container and
    float classification. Used when importable; advisory until parity
    with the text frontend is pinned in CI.

Findings can be suppressed inline with a mandatory reason::

    // cooprt-lint: allow(rule-id) why this is safe
    COOPRT_LINT_ALLOW("rule-id", "why this is safe");

and a checked-in baseline (``tools/cooprt_lint/BASELINE.json``) makes
CI fail only on *new* violations. See DESIGN.md §15 for the rule
catalogue.
"""

__version__ = "1.0"

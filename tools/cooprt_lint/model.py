"""Finding / rule / project model shared by both frontends."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from source import SourceFile, Span


@dataclass
class Finding:
    """One rule violation.

    The baseline keys findings by (path, rule, what) — *not* by line
    — so unrelated edits above a baselined finding do not resurrect
    it. ``what`` must therefore be a stable, identifier-grade label
    ("loop over 'outstanding_' -> operator<<"), never free prose with
    positions in it.
    """
    rule: str
    rel: str          # repo-relative posix path
    line: int         # 1-based
    what: str         # stable label, baseline key component
    message: str      # human-readable explanation

    def key(self) -> str:
        return f"{self.rel}::{self.rule}::{self.what}"

    def render(self) -> str:
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Loop:
    """One for-loop with a resolved body span."""
    line: int
    header: str          # text between the for(...) parens
    iterated: str        # range-for sequence expression ('' if not)
    body: Span           # byte span of the body in SourceFile views
    over_unordered: bool = False


@dataclass
class FileFacts:
    """Frontend-produced facts for one file. Both frontends fill the
    same schema; rules never see frontend-specific state."""
    src: SourceFile
    unordered_vars: set[str] = field(default_factory=set)
    float_vars: set[str] = field(default_factory=set)
    clock_aliases: set[str] = field(default_factory=set)
    loops: list[Loop] = field(default_factory=list)
    audit_spans: list[Span] = field(default_factory=list)

    @property
    def rel(self) -> str:
        return self.src.rel


class Project:
    """All analyzed files plus repo-level context for project rules."""

    def __init__(self, root: Path, files: list[FileFacts]):
        self.root = root
        self.files = files
        #: Union of container/float names across files: member types
        #: are declared in headers but iterated in the matching .cpp.
        self.unordered_names: set[str] = set()
        self.float_names: set[str] = set()
        for f in files:
            self.unordered_names |= f.unordered_vars
            self.float_names |= f.float_vars

    def design_md(self) -> str:
        p = self.root / "DESIGN.md"
        return p.read_text(encoding="utf-8") if p.exists() else ""


class Rule:
    """Base class. Subclasses set ``id``/``description``/``roots``
    and override one or both check hooks, calling ``add(...)`` per
    violation."""

    id = "base"
    description = ""
    #: Top-level directories this rule applies to (repo-relative).
    roots: tuple[str, ...] = ("src", "bench", "examples", "tests")

    def applies_to(self, rel: str) -> bool:
        return any(rel == r or rel.startswith(r + "/")
                   for r in self.roots)

    def check_file(self, facts: FileFacts, add) -> None:
        pass

    def check_project(self, project: Project, add) -> None:
        pass


def last_identifier(expr: str) -> str:
    """Final identifier of an lvalue/member chain: 's.where' ->
    'where', 'u->nodes' -> 'nodes', 'queues[i].q' -> 'q'."""
    ids = re.findall(r"[A-Za-z_]\w*", expr)
    return ids[-1] if ids else ""

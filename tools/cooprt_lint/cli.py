"""Command-line driver.

Invocation (from the repo root)::

    python3 tools/cooprt_lint                    # gate against baseline
    python3 tools/cooprt_lint --keys             # stable keys (goldens)
    python3 tools/cooprt_lint --update-baseline  # accept current findings
    python3 tools/cooprt_lint --repo <dir>       # lint a fixture mini-repo

Exit codes follow the repo tool convention (lintlib): 0 clean,
1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
from pathlib import Path

import baseline as baseline_mod
import frontend_clang
import frontend_text
import lintlib
from model import FileFacts, Finding, Project
from rules import ALL_RULES, RULE_IDS

_EXTS = {".cpp", ".hpp", ".h", ".cc", ".cxx", ".hxx"}
_DEFAULT_ROOTS = ("src", "bench", "examples", "tests")

# Meta-rules produced by the suppression machinery itself; they are
# not suppressible and not listed in --list-rules.
BAD_SUPPRESSION = "bad-suppression"
UNUSED_SUPPRESSION = "unused-suppression"


def _gather(repo: Path, paths: list[str]) -> list[Path]:
    out: list[Path] = []
    if paths:
        for p in paths:
            pp = Path(p)
            if pp.is_dir():
                out.extend(f for f in pp.rglob("*")
                           if f.suffix in _EXTS)
            else:
                out.append(pp)
    else:
        for root in _DEFAULT_ROOTS:
            d = repo / root
            if d.is_dir():
                out.extend(f for f in d.rglob("*")
                           if f.suffix in _EXTS)
    return sorted(set(p.resolve() for p in out))


def _rel(repo: Path, path: Path) -> str:
    try:
        return path.relative_to(repo).as_posix()
    except ValueError:
        return path.name


def _analyze(repo: Path, files: list[Path],
             frontend: str) -> list[FileFacts]:
    use_clang = (frontend == "clang"
                 or (frontend == "auto"
                     and frontend_clang.available()))
    compile_commands = (
        frontend_clang.load_compile_commands(repo)
        if use_clang else {})
    facts: list[FileFacts] = []
    for f in files:
        rel = _rel(repo, f)
        if use_clang:
            facts.append(frontend_clang.analyze_file(
                f, rel, repo, compile_commands))
        else:
            facts.append(frontend_text.analyze_file(f, rel))
    union = set()
    for ff in facts:
        union |= ff.unordered_vars
    frontend_text.classify_loops(facts, union)
    return facts


def _run_rules(project: Project, rule_ids: list[str]
               ) -> list[Finding]:
    findings: list[Finding] = []

    def add(rule, rel, line, what, message):
        findings.append(Finding(rule, rel, line, what, message))

    for rule in ALL_RULES:
        if rule.id not in rule_ids:
            continue
        for facts in project.files:
            if rule.applies_to(facts.rel):
                rule.check_file(facts, add)
        rule.check_project(project, add)
    return findings


def _apply_suppressions(project: Project, findings: list[Finding],
                        full_rule_set: bool) -> list[Finding]:
    """Drop findings covered by a valid allow-annotation; emit
    meta-findings for malformed or unused annotations."""
    by_rel = {f.rel: f for f in project.files}
    kept: list[Finding] = []
    for finding in findings:
        facts = by_rel.get(finding.rel)
        suppressed = False
        if facts is not None:
            for s in facts.src.suppressions:
                if not s.covers(finding.line):
                    continue
                if finding.rule not in s.rules:
                    continue
                if not s.reason:
                    continue  # invalid: does not suppress
                s.used = True
                suppressed = True
                break
        if not suppressed:
            kept.append(finding)

    for facts in project.files:
        # The header that defines COOPRT_LINT_ALLOW documents the
        # annotation syntax; its examples are not live suppressions.
        if "#define COOPRT_LINT_ALLOW" in facts.src.text:
            continue
        for s in facts.src.suppressions:
            bad = [r for r in s.rules if r not in RULE_IDS]
            if bad or not s.rules:
                kept.append(Finding(
                    BAD_SUPPRESSION, facts.rel, s.line,
                    f"allow() names unknown rule "
                    f"'{','.join(bad) or '<empty>'}'",
                    f"allow({', '.join(s.rules) or ''}) names no "
                    f"valid rule id; known rules: "
                    f"{', '.join(RULE_IDS)}"))
            if not s.reason:
                kept.append(Finding(
                    BAD_SUPPRESSION, facts.rel, s.line,
                    f"allow({','.join(s.rules)}) missing reason",
                    f"suppressions are contracts: "
                    f"allow({', '.join(s.rules)}) must state why "
                    f"the pattern is safe here"))
            elif full_rule_set and not s.used and not bad:
                kept.append(Finding(
                    UNUSED_SUPPRESSION, facts.rel, s.line,
                    f"unused allow({','.join(s.rules)})",
                    f"allow({', '.join(s.rules)}) matched no "
                    f"finding; delete it so stale suppressions "
                    f"cannot mask future regressions"))
    return kept


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="cooprt-lint", add_help=True,
        description="static determinism & audit-coverage analysis")
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to lint (default: src bench "
                         "examples tests under --repo)")
    ap.add_argument("--repo", type=Path, default=lintlib.REPO,
                    help="repo root (default: auto-detected)")
    ap.add_argument("--frontend",
                    choices=("auto", "text", "clang"),
                    default="auto")
    ap.add_argument("--rules", default="",
                    help="comma-separated rule ids to run")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="baseline file (default: "
                         "tools/cooprt_lint/BASELINE.json)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="every finding fails, baseline ignored")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from current "
                         "findings and exit 0")
    ap.add_argument("--keys", action="store_true",
                    help="print stable finding keys (for goldens) "
                         "and exit 0")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        return lintlib.EXIT_USAGE if e.code not in (0, None) \
            else lintlib.EXIT_OK

    if args.list_rules:
        for r in ALL_RULES:
            print(f"{r.id:32s} {r.description}")
        return lintlib.EXIT_OK

    rule_ids = list(RULE_IDS)
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",")
                    if r.strip()]
        unknown = [r for r in rule_ids if r not in RULE_IDS]
        if unknown:
            print(f"cooprt-lint: unknown rule(s): "
                  f"{', '.join(unknown)}")
            return lintlib.EXIT_USAGE

    repo = args.repo.resolve()
    files = _gather(repo, args.paths)
    if not files:
        print(f"cooprt-lint: no C++ sources found under {repo}")
        return lintlib.EXIT_USAGE

    facts = _analyze(repo, files, args.frontend)
    project = Project(repo, facts)
    findings = _run_rules(project, rule_ids)
    findings = _apply_suppressions(project, findings,
                                   full_rule_set=not args.rules)
    findings.sort(key=lambda f: (f.rel, f.line, f.rule, f.what))

    if args.keys:
        for f in findings:
            print(f.key())
        return lintlib.EXIT_OK

    baseline_path = args.baseline or (
        Path(__file__).resolve().parent / "BASELINE.json")

    if args.update_baseline:
        baseline_mod.save(baseline_path, findings)
        print(f"cooprt-lint: baseline updated "
              f"({len(findings)} findings -> {baseline_path})")
        return lintlib.EXIT_OK

    known = set() if args.no_baseline \
        else baseline_mod.load(baseline_path)
    new, stale = baseline_mod.compare(findings, known)

    for f in new:
        print(f.render())
    for key in sorted(stale):
        print(f"cooprt-lint: warning: stale baseline entry: {key}")

    if new:
        print(f"cooprt-lint: FAIL ({len(new)} new, "
              f"{len(findings) - len(new)} baselined, "
              f"{len(stale)} stale) over {len(files)} files")
        return lintlib.EXIT_FAIL
    print(f"cooprt-lint: OK ({len(files)} files, "
          f"{len(rule_ids)} rules, {len(findings)} baselined, "
          f"{len(stale)} stale)")
    return lintlib.EXIT_OK

"""libclang frontend (optional).

When the ``clang`` Python bindings and a loadable libclang are
present, declaration and loop classification comes from the real AST
instead of the text scanner: variable/field/binding types are
resolved through typedefs and template sugar, so an
``unordered_map`` hidden behind three aliases still classifies, and
float detection covers ``auto`` deductions.

Everything preprocessor-shaped (suppressions, COOPRT_CHECK regions,
COOPRT_AUDIT spans) stays textual — libclang does not keep
skipped-branch tokens — so this frontend *refines* the text facts
rather than replacing them: it starts from ``frontend_text`` output
and overwrites the type-dependent fields when parsing succeeds.

Compilation flags come from ``build/compile_commands.json`` when the
file has an entry; headers and unlisted files parse with a default
``-std=c++20 -I<root>/src`` command line.

Availability is probed once; any parse failure falls back to the
text facts for that file, so a broken libclang install degrades to
the text frontend instead of crashing the gate.
"""

from __future__ import annotations

import json
from pathlib import Path

import frontend_text
from model import FileFacts


def available() -> bool:
    """True when the clang bindings import and libclang loads."""
    try:
        import clang.cindex as ci
        ci.Index.create()
        return True
    except Exception:
        return False


def _flags_for(root: Path, path: Path,
               compile_commands: dict[str, list[str]]) -> list[str]:
    args = compile_commands.get(str(path))
    if args:
        # Drop the compiler and the input/output operands; keep
        # include paths, defines and the language standard.
        keep: list[str] = []
        skip_next = False
        for a in args[1:]:
            if skip_next:
                skip_next = False
                continue
            if a in ("-o", "-c"):
                skip_next = a == "-o"
                continue
            if a == str(path):
                continue
            keep.append(a)
        return keep
    return ["-std=c++20", f"-I{root / 'src'}"]


def load_compile_commands(root: Path) -> dict[str, list[str]]:
    p = root / "build" / "compile_commands.json"
    if not p.exists():
        return {}
    try:
        entries = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    out: dict[str, list[str]] = {}
    for e in entries:
        if "file" in e and "command" in e:
            out[e["file"]] = e["command"].split()
        elif "file" in e and "arguments" in e:
            out[e["file"]] = list(e["arguments"])
    return out


def _refine(facts: FileFacts, tu) -> None:
    import clang.cindex as ci

    unordered: set[str] = set()
    floats: set[str] = set()
    this_file = str(facts.src.path)

    decl_kinds = (ci.CursorKind.VAR_DECL, ci.CursorKind.FIELD_DECL,
                  ci.CursorKind.PARM_DECL)

    def visit(cursor):
        for c in cursor.get_children():
            loc = c.location
            if loc.file is not None and str(loc.file) != this_file:
                continue
            if c.kind in decl_kinds and c.spelling:
                canon = c.type.get_canonical().spelling
                if "unordered_map" in canon or \
                        "unordered_set" in canon or \
                        "unordered_multi" in canon:
                    unordered.add(c.spelling)
                if canon.rstrip("&* ") in ("float", "double",
                                           "long double"):
                    floats.add(c.spelling)
            visit(c)

    visit(tu.cursor)
    # Union with the text scan: macro-heavy regions the AST skipped
    # keep their textual classification.
    facts.unordered_vars |= unordered
    facts.float_vars |= floats


def analyze_file(path: Path, rel: str, root: Path,
                 compile_commands: dict[str, list[str]]) -> FileFacts:
    facts = frontend_text.analyze_file(path, rel)
    try:
        import clang.cindex as ci
        index = ci.Index.create()
        tu = index.parse(str(path),
                         args=_flags_for(root, path,
                                         compile_commands),
                         options=ci.TranslationUnit
                         .PARSE_DETAILED_PROCESSING_RECORD)
        if tu is not None:
            _refine(facts, tu)
    except Exception:
        pass  # text facts remain authoritative for this file
    return facts

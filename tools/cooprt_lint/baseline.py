"""Findings baseline.

``BASELINE.json`` holds the keys of findings that are accepted on
HEAD; the gate fails only on findings whose key is *not* in the
baseline. Keys are ``rel::rule::what`` — line numbers are excluded
on purpose so edits above a baselined finding do not resurrect it.

The file is written sorted and newline-terminated so diffs are
minimal and deterministic. Stale entries (baselined keys the
current run no longer produces) are reported and pruned by
``--update-baseline``.
"""

from __future__ import annotations

import json
from pathlib import Path

from model import Finding

_VERSION = 1


def load(path: Path) -> set[str]:
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != _VERSION:
        raise ValueError(f"{path}: unsupported baseline version "
                         f"{data.get('version')!r}")
    return set(data.get("findings", []))


def save(path: Path, findings: list[Finding]) -> None:
    data = {
        "version": _VERSION,
        "findings": sorted({f.key() for f in findings}),
    }
    path.write_text(json.dumps(data, indent=2) + "\n",
                    encoding="utf-8")


def compare(findings: list[Finding], baseline: set[str]
            ) -> tuple[list[Finding], set[str]]:
    """Return (new_findings, stale_keys)."""
    present = {f.key() for f in findings}
    new = [f for f in findings if f.key() not in baseline]
    stale = baseline - present
    return new, stale

"""Lexical layer: comment/string stripping, brace and paren
matching, preprocessor regions, and inline suppressions.

The stripped views preserve byte offsets (every skipped character is
replaced by a space, newlines are kept), so spans computed on one
view index correctly into every other view and into the original
text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

# // cooprt-lint: allow(rule-a, rule-b) reason text
_SUPPRESS_COMMENT_RE = re.compile(
    r"cooprt-lint:\s*allow\(([^)]*)\)\s*(.*?)\s*(?:\*/.*)?$")

# COOPRT_LINT_ALLOW("rule-a", "reason text")
_SUPPRESS_MACRO_RE = re.compile(
    r'COOPRT_LINT_ALLOW\(\s*"([^"]*)"\s*,\s*"([^"]*)"\s*\)')


@dataclass
class Suppression:
    """One inline allow-annotation. Covers its own line and the
    first following non-comment line (so the reason may wrap over
    several comment lines)."""
    line: int                      # 1-based physical line
    rules: tuple[str, ...]         # rule ids it covers
    reason: str                    # mandatory justification
    target: int = -1               # first code line below
    used: bool = False             # matched at least one finding

    def covers(self, line: int) -> bool:
        return line in (self.line, self.target)


@dataclass
class Span:
    """Half-open byte range [start, end) into a SourceFile view."""
    start: int
    end: int


def strip_views(text: str) -> tuple[str, str]:
    """Return (code, nocomment) views of @p text, offset-preserving.

    ``code`` blanks comments *and* string/char literals; ``nocomment``
    blanks comments only (string literals kept, for scanning metric
    name registrations). Raw strings, escapes and line continuations
    are handled; blanked bytes become spaces, newlines survive.
    """
    n = len(text)
    code = list(text)
    nc = list(text)

    def blank(buf, i, j, keep_newlines=True):
        for k in range(i, j):
            if not (keep_newlines and buf[k] == "\n"):
                buf[k] = " "

    i = 0
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            blank(code, i, j)
            blank(nc, i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            blank(code, i, j)
            blank(nc, i, j)
            i = j
        elif c == '"' and text[max(0, i - 1):i + 1] == 'R"':
            # Raw string R"delim( ... )delim"
            m = re.match(r'R"([^()\s\\]{0,16})\(', text[i - 1:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end() - 1)
                j = n if j < 0 else j + len(close)
                blank(code, i, j)
                i = j
            else:
                i += 1
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            blank(code, i + 1, max(i + 1, j - 1))
            i = j
        else:
            i += 1
    return "".join(code), "".join(nc)


def match_forward(code: str, start: int, open_ch: str,
                  close_ch: str) -> int:
    """Index just past the delimiter matching code[start] == open_ch,
    or len(code) when unbalanced."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


class SourceFile:
    """One analyzed file: raw text, stripped views, line mapping,
    suppressions and COOPRT_CHECK preprocessor regions."""

    def __init__(self, path: Path, rel: str, text: str):
        self.path = path
        self.rel = rel
        self.text = text
        self.code, self.nc = strip_views(text)
        # line_starts[k] = offset of line k+1.
        self.line_starts = [0]
        for m in re.finditer("\n", text):
            self.line_starts.append(m.end())
        self.suppressions = self._scan_suppressions()
        self.check_regions = self._scan_check_regions()

    def line_of(self, offset: int) -> int:
        """1-based line containing byte @p offset."""
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def _scan_suppressions(self) -> list[Suppression]:
        lines = self.text.splitlines()
        out: list[Suppression] = []
        for idx, line in enumerate(lines, start=1):
            m = _SUPPRESS_COMMENT_RE.search(line)
            if not (m and ("//" in line or "/*" in line)):
                m = _SUPPRESS_MACRO_RE.search(line)
            if not m:
                continue
            rules = tuple(r.strip() for r in m.group(1).split(",")
                          if r.strip())
            s = Suppression(idx, rules, m.group(2).strip())
            # Target: the first following line that is not blank or
            # comment-only, so wrapped reasons stay covered. A bare
            # allow() line takes the next comment line as its reason.
            for j in range(idx, min(idx + 8, len(lines))):
                stripped = lines[j].strip()
                if (stripped and not stripped.startswith("//")
                        and not stripped.startswith("/*")
                        and not stripped.startswith("*")):
                    s.target = j + 1
                    break
                if not s.reason and stripped.startswith("//"):
                    s.reason = stripped.lstrip("/ ").strip()
            out.append(s)
        return out

    def _scan_check_regions(self) -> list[Span]:
        """Byte spans of the COOPRT_CHECK-enabled branches of
        ``#if COOPRT_CHECK_ENABLED`` / ``#endif`` conditionals
        (the ``#else`` branch is default-build code, not included)."""
        regions: list[Span] = []
        stack: list[tuple[int, bool]] = []  # (start_off, is_check)
        for m in re.finditer(r"^[ \t]*#[ \t]*(\w+)(.*)$", self.code,
                             re.MULTILINE):
            directive, rest = m.group(1), m.group(2)
            if directive in ("if", "ifdef", "ifndef"):
                is_check = (directive != "ifndef"
                            and "COOPRT_CHECK_ENABLED" in rest
                            and "!" not in rest)
                stack.append((m.end(), is_check))
            elif directive in ("else", "elif") and stack:
                start, is_check = stack[-1]
                if is_check:
                    regions.append(Span(start, m.start()))
                stack[-1] = (m.end(), False)
            elif directive == "endif" and stack:
                start, is_check = stack.pop()
                if is_check:
                    regions.append(Span(start, m.start()))
        return regions

    def in_check_region(self, offset: int) -> bool:
        return any(r.start <= offset < r.end
                   for r in self.check_regions)

"""Entry point: ``python3 tools/cooprt_lint [args]``.

Directory execution puts the package dir on sys.path (flat module
imports); the parent ``tools/`` dir is added for ``lintlib``.
"""

import sys
from pathlib import Path

_pkg = Path(__file__).resolve().parent
for p in (str(_pkg), str(_pkg.parent)):
    if p not in sys.path:
        sys.path.insert(0, p)

import cli  # noqa: E402

if __name__ == "__main__":
    sys.exit(cli.main(sys.argv[1:]))

// Fixture: nondeterministic-iteration. Lines marked V must be
// flagged; everything else must stay clean.
#include <map>
#include <ostream>
#include <unordered_map>
#include <vector>

struct Row
{
    int weight = 0;
};

void
emitRows(std::ostream &os)
{
    std::unordered_map<int, Row> table;

    // V: hash-order iteration straight into a stream.
    for (const auto &kv : table)
        os << kv.first << "\n";

    // V: hash-order append into a result container.
    std::vector<Row> rows;
    for (const auto &kv : table)
        rows.push_back(kv.second);

    // Clean: pure reduction, no ordered sink.
    int total = 0;
    for (const auto &kv : table)
        total += kv.second.weight;

    // Clean: erase sweep via iterators (not a range-for).
    for (auto it = table.begin(); it != table.end();)
        it = table.erase(it);

    // Clean: the canonical fix — ordered snapshot, then emit.
    std::map<int, Row> sorted(table.begin(), table.end());
    for (const auto &kv : sorted)
        os << kv.first << " " << total << "\n";
}

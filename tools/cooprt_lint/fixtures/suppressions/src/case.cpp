// Fixture: suppression mechanics. A valid allow() with a reason
// silences its finding; missing reasons, unknown rule ids and
// unused suppressions are findings themselves.
#include <chrono>

void
timing()
{
    // cooprt-lint: allow(unseeded-randomness) fixture: wall-clock
    // here is reporting-only and never feeds results
    auto t0 = std::chrono::steady_clock::now(); // suppressed

    auto t1 = std::chrono::steady_clock::now(); // V: unsuppressed

    // cooprt-lint: allow(unseeded-randomness)
    auto t2 = std::chrono::steady_clock::now(); // V: reason missing

    // cooprt-lint: allow(no-such-rule) misspelled rule id
    auto t3 = std::chrono::steady_clock::now(); // V: not covered

    // cooprt-lint: allow(nondeterministic-iteration) nothing here
    // iterates, so this suppression is dead weight
    auto t4 = std::chrono::steady_clock::now(); // V: wrong rule

    (void)t0;
    (void)t1;
    (void)t2;
    (void)t3;
    (void)t4;
}

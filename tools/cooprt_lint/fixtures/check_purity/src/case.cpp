// Fixture: check-purity. Check-only code may write locals and
// audit_*/check_* state; writing simulation state is flagged.
#include <cstdint>

#define COOPRT_CHECK_ENABLED 1
#define COOPRT_AUDIT(component, invariant, cycle, cond, detail)

struct Warp
{
    int outstanding = 0;
    int audit_expected = 0;
};

void
verify(Warp &w, std::uint64_t now)
{
#if COOPRT_CHECK_ENABLED
    std::uint64_t local_total = 0; // clean: region-local
    for (int i = 0; i < 4; ++i)    // clean: loop header induction
        local_total += 1;          // clean: writes a local
    w.audit_expected++;            // clean: audit_* namespace
    w.outstanding--;               // V: writes simulation state
    COOPRT_AUDIT("warp", "warp.outstanding_sane", now,
                 w.outstanding >= 0, "went negative");
#endif
}

// Fixture: unseeded-randomness. Lines marked V must be flagged.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

using Clock = std::chrono::steady_clock;

unsigned
entropySoup(const void *ptr)
{
    std::random_device rd;                         // V
    unsigned a = rd();
    unsigned b = unsigned(rand());                 // V
    auto t0 = Clock::now();                        // V (alias)
    auto t1 = std::chrono::steady_clock::now();    // V (direct)
    srand(unsigned(time(NULL)));                   // V + V
    auto key = reinterpret_cast<std::uintptr_t>(ptr); // V
    (void)t0;
    (void)t1;
    return a ^ b ^ unsigned(key);
}

// Clean: all randomness derives from the run seed.
std::uint64_t
seededDraw(std::uint64_t run_seed)
{
    std::mt19937_64 gen(run_seed);
    return gen();
}

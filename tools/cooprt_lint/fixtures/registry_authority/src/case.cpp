// Fixture: registry-authority. Literal dotted metric names must be
// registered once and documented in DESIGN.md (exact or wildcard).
struct Registry
{
    void probe(const char *, double) {}
};

void
registerAll(Registry &reg)
{
    reg.probe("unit.documented", 1.0);    // clean: exact entry
    reg.probe("unit.wild.anything", 2.0); // clean: unit.wild.*
    reg.probe("unit.undocumented", 3.0);  // V: no DESIGN.md entry
    reg.probe("unit.twice", 4.0);         // clean: first site
    reg.probe("unit.twice", 5.0);         // V: duplicate
    reg.probe("prof.outside", 6.0);       // V: owned family, wrong file
}

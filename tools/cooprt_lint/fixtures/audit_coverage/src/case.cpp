// Fixture: audit-coverage. A registered counter incremented with no
// COOPRT_AUDIT naming it anywhere is flagged; its audited sibling
// stays clean.
#include <cstdint>
#include <string>

#define COOPRT_AUDIT(component, invariant, cycle, cond, detail)

struct Registry
{
    void add(const char *, const std::uint64_t *) {}
};

struct UnitStats
{
    std::uint64_t pops = 0;
    std::uint64_t pushes = 0;
};

void
registerMetrics(Registry &reg, const UnitStats *s)
{
    reg.add("unit_pops", &s->pops);
    reg.add("unit_pushes", &s->pushes);
}

void
tick(UnitStats &st)
{
    st.pops++;   // V: registered, mutated, never audited
    st.pushes++; // clean: named in the invariant below
}

void
verify(const UnitStats &st, std::uint64_t now,
       std::uint64_t prev_pushes)
{
    COOPRT_AUDIT("unit", "unit.push_monotone", now,
                 st.pushes >= prev_pushes,
                 "push counter must never run backwards");
}

// Fixture: float-accumulation-order (exec-worker shape). Any float
// accumulation in src/exec/ is flagged: campaign workers complete
// in scheduler order.
#include <cstdint>

struct Aggregate
{
    double wall = 0.0;
    std::uint64_t jobs = 0;
};

void
onJobDone(Aggregate &agg, double elapsed)
{
    // V: completion-order float accumulation across jobs.
    agg.wall += elapsed;

    // Clean: integer counters commute.
    agg.jobs += 1;
}

// Fixture: float-accumulation-order (unordered-loop shape).
#include <cstdint>
#include <map>
#include <unordered_map>

double
totalHashOrder()
{
    std::unordered_map<int, double> weights;
    double total = 0.0;

    // V: the sum depends on hash iteration order.
    for (const auto &kv : weights)
        total += kv.second;

    // Clean: integer accumulation commutes exactly.
    std::uint64_t count = 0;
    for (const auto &kv : weights)
        count += std::uint64_t(kv.first);

    // Clean: ordered container fixes the accumulation order.
    std::map<int, double> sorted(weights.begin(), weights.end());
    for (const auto &kv : sorted)
        total += kv.second;

    return total + double(count);
}

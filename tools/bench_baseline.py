#!/usr/bin/env python3
"""Bench-regression baselines for the figure suite.

Runs the performance-critical bench binaries (fig09 speedup, fig12
bandwidth) in --csv --json-out mode, normalizes their ndjson output
into one baseline document, and either writes it (--json-out, the
committed BENCH_PR<N>.json files) or compares the fresh run against a
committed baseline with per-metric tolerances (--compare).

Besides the figure metrics (simulated, deterministic, hard-gated),
the baseline carries a host "throughput" bench: cycles_per_sec and
peak_rss_kb per scene from simulate_cli's telemetry sink. Host timing
is machine-dependent, so those metrics are marked ``warn_only`` — a
tolerance breach prints WARN and never fails the gate; the committed
trajectory still makes simulator-speed drift visible across PRs.

Regression sentinel: a scalar gate can only say *that* fig09
regressed; with the differential attribution engine (src/diff/,
DESIGN.md §18) it can also say *where the cycles went*. When a
tracked figure metric regresses, the gate re-runs the scene's
(baseline, CoopRT) pair with the profiler and memscope attached,
diffs the pair through ``diff_cli``, and appends the engine's
attribution summary to the regression line, e.g.::

    REGRESSION fig09/wknd/speedup: baseline 1.86 -> 1.74 (-6.45%)
      attribution: cycles +6.1%: starved_l2 +4.1% (depth 3-5), ...

The simulator is deterministic, so on an unmodified tree a comparison
matches the baseline exactly; the 5% tolerance only gives headroom to
intentional model changes, which must re-pin the baseline explicitly:

    # capture (from the repo root, after building the bench targets)
    python3 tools/bench_baseline.py --build-dir build --json-out BENCH_PR3.json

    # gate (CI): exit 1 on any >5% regression in a tracked metric
    python3 tools/bench_baseline.py --build-dir build --compare BENCH_PR3.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

# The tracked suite: binary, short name, and the metrics gated per
# scene row. "higher_is_better" decides the regression direction;
# non-tracked columns are carried in the baseline for context only.
SUITE = [
    {
        "name": "fig09",
        "binary": os.path.join("bench", "fig09_speedup_pt"),
        "banner_prefix": "Fig. 9",
        "metrics": {
            "speedup": {"higher_is_better": True, "tolerance": 0.05},
        },
    },
    {
        "name": "fig12",
        "binary": os.path.join("bench", "fig12_bandwidth"),
        "banner_prefix": "Fig. 12",
        "metrics": {
            "L2 bw": {"higher_is_better": True, "tolerance": 0.05},
            "DRAM bw": {"higher_is_better": True, "tolerance": 0.05},
        },
    },
]


def run_bench(build_dir: str, spec: dict, scenes: str | None,
              jobs: int | None) -> tuple[dict, float]:
    """Run one bench binary; return ({scene: {column: value}}, wall)."""
    binary = os.path.join(build_dir, spec["binary"])
    if not os.path.exists(binary):
        sys.exit(f"error: {binary} not built "
                 f"(cmake --build {build_dir} --target "
                 f"{os.path.basename(spec['binary'])})")
    with tempfile.NamedTemporaryFile(mode="r", suffix=".ndjson") as tmp:
        cmd = [binary, "--csv", "--json-out", tmp.name]
        if scenes:
            cmd += ["--scenes", scenes]
        if jobs:
            cmd += ["--jobs", str(jobs)]
        start = time.monotonic()
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL)
        wall_seconds = time.monotonic() - start
        lines = [json.loads(l) for l in tmp.read().splitlines() if l]
    for doc in lines:
        if doc["bench"].startswith(spec["banner_prefix"]):
            table = doc["table"]
            break
    else:
        sys.exit(f"error: {binary} emitted no table for "
                 f"{spec['banner_prefix']!r}")
    headers = table["headers"]
    rows = {}
    for row in table["rows"]:
        label = row[0]
        rows[label] = {
            headers[i]: row[i]
            for i in range(1, len(headers))
            if i < len(row) and isinstance(row[i], (int, float))
        }
    return rows, wall_seconds


# Scenes probed for the host-throughput trajectory (subset filtered
# by --scenes). Generous tolerances: CI machines vary, and breaches
# only WARN (warn_only below), never gate.
THROUGHPUT_SCENES = ["wknd", "bunny", "ship"]
THROUGHPUT_METRICS = {
    "cycles_per_sec": {"higher_is_better": True, "tolerance": 0.25,
                       "warn_only": True},
    "peak_rss_kb": {"higher_is_better": False, "tolerance": 0.25,
                    "warn_only": True},
}


def throughput_rows(build_dir: str, scenes: str | None) -> dict | None:
    """Host sim-throughput + peak RSS per scene via the telemetry
    sink (``simulate_cli --telemetry-out``); best-of-2 on throughput
    to damp host noise."""
    binary = os.path.join(build_dir, "examples", "simulate_cli")
    if not os.path.exists(binary):
        print(f"[bench_baseline] {binary} not built; skipping "
              f"throughput probe", file=sys.stderr)
        return None
    wanted = THROUGHPUT_SCENES
    if scenes:
        subset = set(scenes.split(","))
        wanted = [s for s in wanted if s in subset] or wanted[:1]
    rows = {}
    for scene in wanted:
        best = None
        for _ in range(2):
            with tempfile.NamedTemporaryFile(
                    mode="r", suffix=".telemetry.json") as tmp:
                subprocess.run(
                    [binary, "--scene", scene, "--shader", "pt",
                     "--telemetry-out", tmp.name],
                    check=True, stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL)
                doc = json.load(open(tmp.name))
            host = doc["host"]
            row = {"cycles_per_sec": round(host["cycles_per_sec"]),
                   "peak_rss_kb": host["rss_peak_kb"],
                   "sim_seconds": round(host["sim_seconds"], 4)}
            if best is None or row["cycles_per_sec"] > \
                    best["cycles_per_sec"]:
                best = row
        rows[scene] = best
    return rows


def memscope_overhead(build_dir: str) -> dict | None:
    """Wall-clock cost of attaching the memscope collector.

    Runs one mid-size scene through simulate_cli with and without
    --memscope and records the relative host-time delta. Like
    "wall_seconds" this sits outside the gated rows, so compare()
    never fails on it (host timing is machine-dependent); the
    documented budget is < 5% (DESIGN.md §14), and the captured
    number makes drift visible across baseline re-pins.
    """
    binary = os.path.join(build_dir, "examples", "simulate_cli")
    if not os.path.exists(binary):
        print(f"[bench_baseline] {binary} not built; skipping "
              f"memscope overhead probe", file=sys.stderr)
        return None

    def timed(extra: list[str]) -> float:
        cmd = [binary, "--scene", "wknd", "--shader", "pt"] + extra
        best = None
        for _ in range(3):  # best-of-3 to damp host noise
            start = time.monotonic()
            subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL,
                           stderr=subprocess.DEVNULL)
            elapsed = time.monotonic() - start
            best = elapsed if best is None else min(best, elapsed)
        return best

    off = timed([])
    on = timed(["--memscope"])
    return {
        "off_seconds": round(off, 3),
        "on_seconds": round(on, 3),
        "overhead": round((on - off) / off, 4) if off > 0 else 0.0,
    }


def collect(build_dir: str, scenes: str | None,
            jobs: int | None) -> dict:
    benches = {}
    for spec in SUITE:
        print(f"[bench_baseline] running {spec['name']} ...",
              file=sys.stderr)
        rows, wall_seconds = run_bench(build_dir, spec, scenes, jobs)
        benches[spec["name"]] = {
            "metrics": spec["metrics"],
            "rows": rows,
            # Host wall clock of the campaign, for context only: it
            # sits outside "rows" so compare() never gates on it (the
            # simulated cycle counts are jobs-invariant; wall clock is
            # not).
            "wall_seconds": round(wall_seconds, 3),
        }
    print("[bench_baseline] probing sim throughput ...",
          file=sys.stderr)
    rows = throughput_rows(build_dir, scenes)
    if rows is not None:
        benches["throughput"] = {
            "metrics": THROUGHPUT_METRICS,
            "rows": rows,
        }
    doc = {"suite_version": 1, "benches": benches}
    print("[bench_baseline] probing memscope overhead ...",
          file=sys.stderr)
    overhead = memscope_overhead(build_dir)
    if overhead is not None:
        # Top-level, not under "benches": informational only.
        doc["memscope_overhead"] = overhead
    return doc


#: Benches whose rows are per-scene (baseline, CoopRT) comparisons
#: that the diff engine can attribute.
ATTRIBUTABLE = {"fig09", "fig12"}


def attribute_regression(build_dir: str, scene: str,
                         cache: dict) -> str | None:
    """One attribution line for a regressed scene: re-run its
    (baseline, CoopRT) pair with prof + memscope attached and pull
    the diff engine's summary out of the diff document."""
    if scene in cache:
        return cache[scene]
    simulate = os.path.join(build_dir, "examples", "simulate_cli")
    diff_cli = os.path.join(build_dir, "examples", "diff_cli")
    if not (os.path.exists(simulate) and os.path.exists(diff_cli)):
        cache[scene] = None
        return None
    try:
        with tempfile.TemporaryDirectory() as tmp:
            paths = []
            for tag, extra in (("base", []), ("coop", ["--coop"])):
                path = os.path.join(tmp, f"{tag}.json")
                with open(path, "w") as f:
                    subprocess.run(
                        [simulate, "--scene", scene, "--profile",
                         "--memscope", "--json", *extra],
                        check=True, stdout=f,
                        stderr=subprocess.DEVNULL)
                paths.append(path)
            out = subprocess.run(
                [diff_cli, "--json", "-", *paths],
                check=True, capture_output=True, text=True)
            doc = json.loads(out.stdout.splitlines()[0])
            cache[scene] = doc.get("attribution") or None
    except (subprocess.CalledProcessError, json.JSONDecodeError,
            IndexError):
        cache[scene] = None
    return cache[scene]


def compare(baseline: dict, current: dict,
            build_dir: str | None = None) -> int:
    """Print a report; return the number of tolerance regressions."""
    regressions = 0
    attribution_cache: dict = {}
    for name, base_bench in baseline["benches"].items():
        cur_bench = current["benches"].get(name)
        if cur_bench is None:
            print(f"REGRESSION {name}: bench missing from current run")
            regressions += 1
            continue
        for scene, base_row in base_bench["rows"].items():
            cur_row = cur_bench["rows"].get(scene)
            if cur_row is None:
                print(f"REGRESSION {name}/{scene}: scene missing")
                regressions += 1
                continue
            for metric, policy in base_bench["metrics"].items():
                if metric not in base_row:
                    continue
                base_v, cur_v = base_row[metric], cur_row.get(metric)
                if cur_v is None:
                    print(f"REGRESSION {name}/{scene}/{metric}: "
                          f"metric missing")
                    regressions += 1
                    continue
                if base_v == 0:
                    continue
                delta = (cur_v - base_v) / base_v
                worse = -delta if policy["higher_is_better"] else delta
                status = "ok"
                if worse > policy["tolerance"]:
                    # warn_only metrics (host timing/RSS) never fail
                    # the gate — machines differ; the printed WARN
                    # keeps the drift visible in CI logs.
                    if policy.get("warn_only"):
                        status = "WARN"
                    else:
                        status = "REGRESSION"
                        regressions += 1
                if status != "ok" or abs(delta) > 1e-12:
                    print(f"{status} {name}/{scene}/{metric}: "
                          f"baseline {base_v} -> {cur_v} "
                          f"({100 * delta:+.2f}%)")
                if (status == "REGRESSION" and build_dir
                        and name in ATTRIBUTABLE):
                    attribution = attribute_regression(
                        build_dir, scene, attribution_cache)
                    if attribution:
                        print(f"  attribution: {attribution}")
    return regressions


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory with the bench "
                         "binaries (default: build)")
    ap.add_argument("--scenes", default=None,
                    help="comma-separated scene subset passed through "
                         "to the bench binaries")
    ap.add_argument("--jobs", type=int, default=None,
                    help="worker threads passed through to the bench "
                         "binaries (campaign engine); simulated "
                         "results are identical for any value")
    ap.add_argument("--json-out", default=None,
                    help="write the collected baseline to this file")
    ap.add_argument("--compare", default=None, metavar="BASELINE",
                    help="compare a fresh run against this baseline; "
                         "exit 1 on any tracked-metric regression")
    args = ap.parse_args()
    if not args.json_out and not args.compare:
        ap.error("need --json-out (capture) or --compare (gate)")

    current = collect(args.build_dir, args.scenes, args.jobs)

    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(current, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"[bench_baseline] wrote {args.json_out}",
              file=sys.stderr)

    if args.compare:
        with open(args.compare) as f:
            baseline = json.load(f)
        regressions = compare(baseline, current, args.build_dir)
        if regressions:
            print(f"[bench_baseline] {regressions} regression(s) vs "
                  f"{args.compare}", file=sys.stderr)
            return 1
        print(f"[bench_baseline] no regressions vs {args.compare}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Cross-check stats counters against trace::Registry registrations.

Every ``std::uint64_t`` counter in the simulator's stats structs is
supposed to be observable through the ``cooprt::trace`` registry (the
PR-1 observability layer), so metric CSVs and Chrome traces never
silently lag behind a newly added counter. This lint parses the stats
struct definitions and the corresponding ``registerMetrics`` /
``attachTrace`` registration code and fails when a counter exists but
is never registered.

Counters whose information reaches the registry through another
channel (e.g. the ``trace_latency`` histogram covering both
``retired_trace_latency`` and ``max_trace_latency``) are allowlisted
explicitly, with the reason, below.

Run from the repository root (CI registers it as a ctest case):

    python3 tools/lint_stats_registry.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

import lintlib

tool = lintlib.Tool("lint_stats_registry")
REPO = lintlib.REPO

# (struct, header, field) -> why it is allowed to skip registration.
ALLOWLIST = {
    ("RtUnitStats", "retired_trace_latency"):
        "sum is derivable from the trace_latency histogram",
    ("RtUnitStats", "max_trace_latency"):
        "max is derivable from the trace_latency histogram",
}

FIELD_RE = re.compile(
    r"^\s*std::uint64_t\s+(\w+)\s*=\s*0\s*;", re.MULTILINE)


def struct_fields(header: Path, struct: str) -> list[str]:
    """The uint64 counter fields of ``struct`` in ``header``."""
    text = header.read_text()
    m = re.search(rf"struct\s+{struct}\b.*?^\}};", text,
                  re.MULTILINE | re.DOTALL)
    if m is None:
        tool.fail(f"struct {struct} not found in {header}")
    return FIELD_RE.findall(m.group(0))


def registered_fields(source: Path, pattern: str) -> set[str]:
    """Field names captured by ``pattern`` across ``source``."""
    return set(re.findall(pattern, source.read_text()))


def check(struct: str, header: str, source: str,
          pattern: str) -> list[str]:
    fields = struct_fields(REPO / header, struct)
    registered = registered_fields(REPO / source, pattern)
    problems = []
    for field in fields:
        if field in registered:
            continue
        if (struct, field) in ALLOWLIST:
            continue
        problems.append(
            f"{header}: {struct}.{field} is never registered in "
            f"{source} (register it, or allowlist it with a reason "
            f"in tools/lint_stats_registry.py)")
    for field, reason in [(f, r) for (s, f), r in ALLOWLIST.items()
                          if s == struct]:
        if field not in fields:
            problems.append(
                f"allowlist entry ({struct}, {field}) matches no "
                f"field; stale entry?")
        if field in registered:
            problems.append(
                f"allowlist entry ({struct}, {field}) is registered "
                f"after all ({reason}); drop the entry")
    return problems


def prof_bucket_problems() -> list[str]:
    """Cross-check the prof stall taxonomy across its three homes.

    The Bucket enum (prof.hpp), the kBucketNames table (prof.cpp) and
    the DESIGN.md taxonomy section must agree; every name must be
    snake_case and unique; the names must be published as ``prof.*``
    registry probes from prof.cpp and nowhere else (one registration
    authority, like the stats counters above).
    """
    problems: list[str] = []
    hpp = (REPO / "src/prof/prof.hpp").read_text()
    cpp = (REPO / "src/prof/prof.cpp").read_text()

    m = re.search(r"enum\s+class\s+Bucket\s*:\s*int\s*\{(.*?)\};",
                  hpp, re.DOTALL)
    if m is None:
        return ["src/prof/prof.hpp: Bucket enum not found"]
    enum_members = re.findall(r"^\s*(\w+)\s*(?:=\s*\d+)?\s*,",
                              m.group(1), re.MULTILINE)

    m = re.search(r"kBucketNames\s*=\s*\{(.*?)\};", cpp, re.DOTALL)
    if m is None:
        return ["src/prof/prof.cpp: kBucketNames table not found"]
    names = re.findall(r'"([^"]+)"', m.group(1))

    if len(enum_members) != len(names):
        problems.append(
            f"prof taxonomy size mismatch: {len(enum_members)} enum "
            f"members vs {len(names)} kBucketNames entries")
    if len(set(names)) != len(names):
        problems.append("duplicate names in kBucketNames")
    for member, name in zip(enum_members, names):
        if not re.fullmatch(r"[a-z][a-z0-9_]*", name):
            problems.append(f"bucket name {name!r} is not snake_case")
        # The table is order-indexed by the enum: the snake_case name
        # must be the member name itself (IssueCompute/issue_compute).
        if member.lower() != name.replace("_", ""):
            problems.append(
                f"kBucketNames[{names.index(name)}] = {name!r} does "
                f"not match enum member {member} — table order "
                f"drifted from the enum")

    design = (REPO / "DESIGN.md").read_text()
    for name in names:
        if f"`{name}`" not in design:
            problems.append(
                f"bucket `{name}` is missing from the DESIGN.md "
                f"stall-taxonomy table")

    if "prof.sm" not in cpp or "prof.gpu." not in cpp:
        problems.append(
            "src/prof/prof.cpp no longer registers prof.sm<i>.* and "
            "prof.gpu.* probes")
    for src in (REPO / "src").rglob("*.cpp"):
        if src.name == "prof.cpp":
            continue
        if re.search(r'probe\(\s*"prof\.', src.read_text()):
            problems.append(
                f"{src.relative_to(REPO)} registers prof.* probes; "
                f"prof.cpp is the single registration authority")
    return problems


def memscope_problems() -> list[str]:
    """Cross-check the memscope probe surface.

    src/memscope/memscope.cpp is the single registration authority
    for ``memscope.*`` probes; every literal probe name it registers
    must be documented (in backticks) in the DESIGN.md memscope
    section, and the conservation-critical families (per-SM, GPU,
    interconnect, DRAM, reuse) must all still be present.
    """
    problems: list[str] = []
    cpp = (REPO / "src/memscope/memscope.cpp").read_text()

    names = set(re.findall(r'registry\.probe\("(memscope\.[\w.]+)"',
                           cpp))
    if not names:
        return ["src/memscope/memscope.cpp registers no literal "
                "memscope.* probes"]

    for family in ("memscope.sm", "memscope.gpu.", "memscope.mem.",
                   "memscope.dram.", "memscope.l1.", "memscope.l2."):
        if family not in cpp:
            problems.append(
                f"src/memscope/memscope.cpp no longer registers "
                f"{family}* probes")

    design = (REPO / "DESIGN.md").read_text()
    for name in sorted(names):
        if f"`{name}`" not in design:
            problems.append(
                f"probe `{name}` is missing from the DESIGN.md "
                f"memscope probe table")
    # Computed names (per-SM prefix, per-level suffix) are documented
    # as patterns; the patterns themselves must stay in DESIGN.md.
    for pattern in ("`memscope.sm<i>.node_accesses`",
                    "`memscope.sm<i>.node_bytes`",
                    "`memscope.gpu.level_<lvl>`"):
        if pattern not in design:
            problems.append(
                f"probe pattern {pattern} is missing from the "
                f"DESIGN.md memscope probe table")

    for src in (REPO / "src").rglob("*.cpp"):
        if src.name == "memscope.cpp":
            continue
        if re.search(r'probe\(\s*"memscope\.', src.read_text()):
            problems.append(
                f"{src.relative_to(REPO)} registers memscope.* "
                f"probes; memscope.cpp is the single registration "
                f"authority")
    return problems


def telemetry_problems() -> list[str]:
    """Cross-check the host-telemetry probe surface.

    src/telemetry/telemetry.cpp is the single registration authority
    for ``telemetry.*`` probes; every literal probe name it registers
    must be documented (in backticks) in the DESIGN.md §16 authority
    table, and both probe groups (per-run deterministic progress,
    campaign host gauges) must still be present.
    """
    problems: list[str] = []
    cpp = (REPO / "src/telemetry/telemetry.cpp").read_text()

    names = set(re.findall(r'"(telemetry\.[\w.]+)"', cpp))
    if not names:
        return ["src/telemetry/telemetry.cpp registers no literal "
                "telemetry.* probes"]

    for required in ("telemetry.sim_cycle", "telemetry.rays_retired",
                     "telemetry.ewma_job_seconds",
                     "telemetry.eta_seconds"):
        if required not in names:
            problems.append(
                f"src/telemetry/telemetry.cpp no longer registers "
                f"the {required} probe")

    design = (REPO / "DESIGN.md").read_text()
    for name in sorted(names):
        if f"`{name}`" not in design:
            problems.append(
                f"probe `{name}` is missing from the DESIGN.md "
                f"telemetry probe table")

    for src in (REPO / "src").rglob("*.cpp"):
        if src.name == "telemetry.cpp":
            continue
        if re.search(r'probe\(\s*"telemetry\.', src.read_text()):
            problems.append(
                f"{src.relative_to(REPO)} registers telemetry.* "
                f"probes; telemetry.cpp is the single registration "
                f"authority")
    return problems


def query_problems() -> list[str]:
    """Cross-check the query-workload probe surface.

    src/query/query.cpp is the single registration authority for
    ``query.*`` probes (ResultStore::registerMetrics); the three
    run-progress probes must all still be present, every literal name
    it registers must be documented (in backticks) in the DESIGN.md
    §17 probe table, and no other translation unit may register
    ``query.*`` names.
    """
    problems: list[str] = []
    cpp = (REPO / "src/query/query.cpp").read_text()

    names = set(re.findall(r'probe\("(query\.[\w.]+)"', cpp))
    if not names:
        return ["src/query/query.cpp registers no literal query.* "
                "probes"]

    for required in ("query.queries", "query.rounds", "query.found"):
        if required not in names:
            problems.append(
                f"src/query/query.cpp no longer registers the "
                f"{required} probe")

    design = (REPO / "DESIGN.md").read_text()
    for name in sorted(names):
        if f"`{name}`" not in design:
            problems.append(
                f"probe `{name}` is missing from the DESIGN.md "
                f"query probe table")

    for src in (REPO / "src").rglob("*.cpp"):
        if src.name == "query.cpp":
            continue
        if re.search(r'probe\(\s*"query\.', src.read_text()):
            problems.append(
                f"{src.relative_to(REPO)} registers query.* probes; "
                f"query.cpp is the single registration authority")
    return problems


def main() -> int:
    problems: list[str] = []

    # RtUnit counters -> rtunit.sm<i>.* probes in attachTrace.
    problems += check(
        "RtUnitStats", "src/rtunit/rt_unit.hpp",
        "src/rtunit/rt_unit.cpp",
        r'add\("(\w+)",\s*&stats_\.\w+\)')

    # Cache counters -> <prefix>.* probes in Cache::registerMetrics.
    problems += check(
        "CacheStats", "src/mem/cache.hpp", "src/mem/cache.cpp",
        r'add\("(\w+)",\s*&s->\w+\)')

    # DRAM counters -> mem.dram.* probes.
    problems += check(
        "DramStats", "src/mem/dram.hpp", "src/mem/memory_system.cpp",
        r'registry\.probe\("mem\.dram\.(\w+)"')

    # Memory-system aggregates -> mem.l2.* probes (field l2_bytes is
    # registered as mem.l2.bytes, so strip the l2_ prefix).
    fields = struct_fields(REPO / "src/mem/memory_system.hpp",
                           "MemSystemStats")
    registered = registered_fields(
        REPO / "src/mem/memory_system.cpp",
        r'registry\.probe\("mem\.l2\.(\w+)"')
    for field in fields:
        if field.removeprefix("l2_") not in registered:
            problems.append(
                f"src/mem/memory_system.hpp: MemSystemStats.{field} "
                f"is never registered as a mem.l2.* probe")

    # Ray-provenance recorder counters -> ray.* probes in
    # Recorder::registerMetrics.
    problems += check(
        "RecorderStats", "src/raytrace/raytrace.hpp",
        "src/raytrace/raytrace.cpp",
        r'reg\.probe\("ray\.(\w+)"')

    # Stall-taxonomy cross-check (enum <-> name table <-> DESIGN.md
    # <-> prof.* registry probes).
    problems += prof_bucket_problems()

    # Memscope probe surface (single authority + DESIGN.md table).
    problems += memscope_problems()

    # Telemetry probe surface (single authority + DESIGN.md table).
    problems += telemetry_problems()

    # Query-workload probe surface (single authority + DESIGN.md
    # table).
    problems += query_problems()

    return tool.report(problems, ok="all stats counters are "
                                    "registry-observable")


if __name__ == "__main__":
    sys.exit(main())

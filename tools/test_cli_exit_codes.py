#!/usr/bin/env python3
"""Exit-code contract for the repository's command-line tools.

Every user-facing binary must reject bad input the same way: a
diagnostic on *stderr* and a non-zero exit status (2, the
conventional usage-error code), never a silent success or a crash.
Successful informational paths (``--list-configs``) must exit 0.

Registered as a ctest case; the binary paths arrive on argv:

    test_cli_exit_codes.py SIMULATE_CLI CAMPAIGN_CLI BENCH_BIN DIFF_CLI
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile


def run(argv: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(argv, capture_output=True, text=True,
                          timeout=120)


FAILURES: list[str] = []


def expect(argv: list[str], code: int, on_stderr: str = "") -> None:
    p = run(argv)
    label = " ".join(argv[1:]) or "(no args)"
    if p.returncode != code:
        FAILURES.append(
            f"{argv[0]} {label}: exit {p.returncode}, want {code}\n"
            f"    stderr: {p.stderr.strip()[:200]}")
        return
    if code != 0 and not p.stderr.strip():
        FAILURES.append(
            f"{argv[0]} {label}: failed silently (empty stderr)")
    if on_stderr and on_stderr not in p.stderr:
        FAILURES.append(
            f"{argv[0]} {label}: stderr {p.stderr.strip()[:200]!r} "
            f"does not mention {on_stderr!r}")


def main(argv: list[str]) -> int:
    if len(argv) != 5:
        print(__doc__, file=sys.stderr)
        return 2
    simulate, campaign, bench, diff_cli = argv[1:]

    # simulate_cli: every malformed invocation is a usage error.
    expect([simulate, "--no-such-flag"], 2, "unknown flag")
    expect([simulate, "--scene", "not-a-scene"], 2, "unknown scene")
    expect([simulate, "--shader", "bogus"], 2, "unknown shader")
    expect([simulate, "--ray-sample-k", "0"], 2, "--ray-sample-k")
    expect([simulate, "--telemetry-out"], 2, "--telemetry-out")
    expect([simulate, "--heartbeat-s"], 2, "--heartbeat-s")
    expect([simulate, "--heartbeat-s", "0"], 2, "--heartbeat-s")
    expect([simulate, "--heartbeat-s", "-1"], 2, "--heartbeat-s")

    # campaign_cli: flag errors exit 2; --list-configs is a success.
    expect([campaign, "--no-such-flag"], 2)
    expect([campaign, "--configs", "no-such-config"], 2)
    expect([campaign, "--jobs"], 2)
    expect([campaign, "--ray-sample-k", "0"], 2)
    expect([campaign, "--telemetry-log"], 2, "--telemetry-log")
    expect([campaign, "--heartbeat-s", "0"], 2, "--heartbeat-s")
    expect([campaign, "--heartbeat-s", "-0.5"], 2, "--heartbeat-s")
    expect([campaign, "--list-configs"], 0)

    # `--json-out -` contract: stdout is *pure* JSON lines (human
    # output goes to stderr), so piping into jq etc. always works.
    p = run([campaign, "--scenes", "wknd", "--configs", "base",
             "--resolution", "16", "--json-out", "-"])
    if p.returncode != 0:
        FAILURES.append(f"{campaign} --json-out -: exit "
                        f"{p.returncode}\n    stderr: "
                        f"{p.stderr.strip()[:200]}")
    else:
        lines = p.stdout.splitlines()
        if not lines:
            FAILURES.append(f"{campaign} --json-out -: empty stdout")
        for i, line in enumerate(lines, 1):
            try:
                json.loads(line)
            except json.JSONDecodeError:
                FAILURES.append(
                    f"{campaign} --json-out -: stdout line {i} is "
                    f"not JSON: {line[:120]!r}")
                break

    # bench binaries share bench_util's strict parser.
    expect([bench, "--no-such-flag"], 2, "unknown flag")
    expect([bench, "--scenes"], 2, "needs a value")
    expect([bench, "--scenes", "not-a-scene"], 2, "unknown scene")

    # --version is a success path everywhere it exists.
    for binary in (simulate, campaign, diff_cli):
        p = run([binary, "--version"])
        if p.returncode != 0 or "revision" not in p.stdout:
            FAILURES.append(
                f"{binary} --version: exit {p.returncode}, "
                f"stdout {p.stdout.strip()[:120]!r}")

    # diff_cli: the exit-2 contract separates "not comparable" from
    # "regressed" for scripted gates (DESIGN.md section 18).
    expect([diff_cli], 2)
    expect([diff_cli, "--no-such-flag", "a", "b"], 2, "unknown flag")
    expect([diff_cli, "/does/not/exist.json",
            "/does/not/exist2.json"], 2, "no such input")
    with tempfile.TemporaryDirectory() as tmp:
        # Two reports from different scenes: parseable, stamped,
        # but with mismatched run keys -> exit 2.
        reports = {}
        for scene in ("wknd", "fox"):
            p = run([simulate, "--scene", scene,
                     "--resolution", "16", "--json"])
            if p.returncode != 0:
                FAILURES.append(
                    f"{simulate} --scene {scene} --json: exit "
                    f"{p.returncode}")
                break
            path = os.path.join(tmp, f"{scene}.json")
            with open(path, "w") as f:
                f.write(p.stdout)
            reports[scene] = path
        else:
            expect([diff_cli, reports["wknd"], reports["fox"]], 2,
                   "mismatch")
            # Matching keys diff cleanly (identity pair, exit 0).
            expect([diff_cli, reports["wknd"], reports["wknd"]], 0)
            # A file cannot be diffed against a directory.
            expect([diff_cli, reports["wknd"], tmp], 2)
        # Empty/missing baseline directories are usage errors.
        empty = os.path.join(tmp, "empty")
        os.mkdir(empty)
        other = os.path.join(tmp, "other")
        os.mkdir(other)
        expect([diff_cli, empty, other], 2, "no *.json")

        # campaign_cli --diff-baseline contract: needs --diff-out,
        # and the baseline must be an existing directory.
        expect([campaign, "--diff-baseline", empty], 2, "--diff-out")
        expect([campaign, "--diff-baseline",
                os.path.join(tmp, "missing"), "--diff-out",
                os.path.join(tmp, "d.ndjson")], 2,
               "not a directory")

    if FAILURES:
        print("test_cli_exit_codes: FAIL")
        for f in FAILURES:
            print("  -", f)
        return 1
    print("test_cli_exit_codes: OK (diagnostics on stderr, "
          "non-zero exits on bad input)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate a raystats JSON file produced by the ray-provenance
recorder (``simulate_cli --ray-trace --ray-out FILE`` or the campaign
engine's ``--ray-dir`` sinks).

Checks the schema and the internal conservation laws the recorder
guarantees (see DESIGN.md §13):

  - every top-level counter exists and is a non-negative integer;
  - ``rays_sampled`` equals the number of per-ray records;
  - each warp samples at most ``sample_k`` rays, all on distinct
    lanes covered by ``sampled_mask``;
  - each retired ray's launch cycle is <= its retire cycle, and its
    ``node_visits`` equals the sum of its per-level histogram.

CI runs this against a fresh smoke run (see ray-trace-smoke in
.github/workflows/ci.yml):

    python3 tools/validate_raystats.py out.raystats.json
"""

from __future__ import annotations

import sys

import lintlib

tool = lintlib.Tool("validate_raystats")
fail = tool.fail

TOP_COUNTERS = (
    "sample_k", "seed", "warps_seen", "warps_sampled",
    "warps_retired", "rays_sampled", "events_recorded",
    "events_dropped", "steal_events",
)

RAY_COUNTERS = (
    "lane", "launch", "retire", "node_visits", "node_pops",
    "stale_pops", "node_pushes", "leaf_tests", "steals_in",
    "steals_out", "stack_hwm", "events", "events_dropped",
)


def validate(doc: dict) -> tuple[int, int]:
    tool.expect_stamp(doc)
    if not isinstance(doc.get("scene"), str):
        fail("top level: missing string field 'scene'")
    for key in TOP_COUNTERS:
        tool.expect_counter(doc, key, "top level")
    sample_k = doc["sample_k"]
    if sample_k <= 0:
        fail(f"sample_k = {sample_k} must be positive")

    warps = doc.get("warps")
    if not isinstance(warps, list):
        fail("top level: 'warps' is not an array")
    if len(warps) != doc["warps_sampled"]:
        fail(f"warps_sampled = {doc['warps_sampled']} but the warps "
             f"array holds {len(warps)} records")

    rays_total = 0
    for i, w in enumerate(warps):
        where = f"warps[{i}]"
        for key in ("sm", "ordinal", "warp_id", "submit", "retire",
                    "sampled_mask"):
            if key not in w:
                fail(f"{where}: missing field {key!r}")
        if not isinstance(w.get("retired"), bool):
            fail(f"{where}: 'retired' is not a boolean")
        rays = w.get("rays")
        if not isinstance(rays, list):
            fail(f"{where}: 'rays' is not an array")
        if len(rays) > sample_k:
            fail(f"{where}: {len(rays)} rays sampled with "
                 f"sample_k = {sample_k}")
        lanes = set()
        for j, r in enumerate(rays):
            rwhere = f"{where}.rays[{j}]"
            for key in RAY_COUNTERS:
                tool.expect_counter(r, key, rwhere)
            lane = r["lane"]
            if lane in lanes:
                fail(f"{rwhere}: duplicate lane {lane}")
            lanes.add(lane)
            if not (w["sampled_mask"] >> lane) & 1:
                fail(f"{rwhere}: lane {lane} not in sampled_mask "
                     f"{w['sampled_mask']:#x}")
            levels = r.get("levels")
            if not isinstance(levels, list) or len(levels) != 3:
                fail(f"{rwhere}: 'levels' is not a 3-entry array")
            if sum(levels) != r["node_visits"]:
                fail(f"{rwhere}: node_visits = {r['node_visits']} "
                     f"but levels sum to {sum(levels)}")
            if w["retired"] and r["launch"] > r["retire"]:
                fail(f"{rwhere}: launch {r['launch']} after retire "
                     f"{r['retire']}")
        rays_total += len(rays)

    if rays_total != doc["rays_sampled"]:
        fail(f"rays_sampled = {doc['rays_sampled']} but per-warp "
             f"records hold {rays_total} rays")
    return rays_total, len(warps)


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        return tool.usage(
            "usage: validate_raystats.py FILE.raystats.json")
    doc = tool.load_json(argv[1])
    rays, warps = validate(doc)
    return tool.report([], ok=f"{argv[1]}: {rays} rays over "
                             f"{warps} warps, scene {doc['scene']!r}")


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate a memscope JSON profile produced by the BVH-topology &
memory-hierarchy profiler (``simulate_cli --memscope-json FILE`` or
the campaign engine's ``--memscope-dir`` sinks).

Checks the schema and the internal conservation laws the collector
guarantees (see DESIGN.md §14):

  - every counter exists and is a non-negative integer;
  - node-level totals equal the sum over per-depth rows and over
    per-unit rows (every fetch is attributed exactly once);
  - per-depth level and phase histograms each sum to the row's
    access count;
  - per-level line counts sum to the reuse-stack access count
    (``mem.line_* == reuse.l1.tracked``) and each reuse histogram
    plus its cold count accounts for every tracked access;
  - hot nodes are ranked by accesses (descending, node id as the
    tie-break) and never exceed the node totals;
  - DRAM row hits + misses equal DRAM requests.

CI runs this against a fresh smoke run (see memscope-smoke in
.github/workflows/ci.yml):

    python3 tools/validate_memscope.py out.memscope.json

With ``--run SIMULATE_CLI`` the script produces its own input by
running a small scene through the given binary first (the ctest
``validate_memscope`` case uses this form):

    python3 tools/validate_memscope.py --run build/examples/simulate_cli
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path

import lintlib

tool = lintlib.Tool("validate_memscope")
fail = tool.fail

NODE_COUNTERS = ("accesses", "bytes", "lanes")
LEVELS = ("l1", "l2", "dram")
PHASES = ("ramp", "traverse", "drain")
MEM_COUNTERS = ("line_l1", "line_l2", "line_dram", "l2_fill_bytes",
                "bank_requests", "bank_conflicts", "bank_wait_cycles")
DRAM_COUNTERS = ("requests", "bytes", "row_hits", "row_misses")
REUSE_BUCKETS = 32


def expect_counter(obj: dict, key: str, where: str) -> int:
    return tool.expect_counter(obj, key, where)


def level_sum(obj: dict, where: str) -> int:
    """Sum the flat per-level fields (``l1``/``l2``/``dram``)."""
    return sum(expect_counter(obj, lvl, where) for lvl in LEVELS)


def validate_reuse(obj: dict, where: str) -> int:
    cold = expect_counter(obj, "cold", where)
    tracked = expect_counter(obj, "tracked", where)
    hist = obj.get("hist")
    if not isinstance(hist, list) or len(hist) != REUSE_BUCKETS:
        fail(f"{where}: 'hist' is not a {REUSE_BUCKETS}-entry array")
    reused = sum(hist)
    if cold + reused != tracked:
        fail(f"{where}: cold {cold} + histogram {reused} != "
             f"tracked {tracked}")
    return tracked


def validate(doc: dict) -> tuple[int, int]:
    tool.expect_stamp(doc)
    if not isinstance(doc.get("scene"), str):
        fail("top level: missing string field 'scene'")

    nodes = doc.get("nodes")
    if not isinstance(nodes, dict):
        fail("top level: 'nodes' is not an object")
    for key in NODE_COUNTERS:
        expect_counter(nodes, key, "nodes")
    levels = nodes.get("levels")
    if not isinstance(levels, dict):
        fail("nodes: 'levels' is not an object")
    if sum(expect_counter(levels, lvl, "nodes.levels")
           for lvl in LEVELS) != nodes["accesses"]:
        fail("nodes: serving-level histogram does not sum to "
             f"accesses = {nodes['accesses']}")

    depths = doc.get("depths")
    if not isinstance(depths, list):
        fail("top level: 'depths' is not an array")
    depth_accesses = depth_bytes = 0
    last_depth = 0
    for i, d in enumerate(depths):
        where = f"depths[{i}]"
        depth = expect_counter(d, "depth", where)
        if depth <= last_depth:
            fail(f"{where}: depth {depth} not strictly increasing")
        last_depth = depth
        acc = expect_counter(d, "accesses", where)
        depth_accesses += acc
        depth_bytes += expect_counter(d, "bytes", where)
        expect_counter(d, "lanes", where)
        if level_sum(d, where) != acc:
            fail(f"{where}: level histogram does not sum to "
                 f"accesses = {acc}")
        phases = d.get("phases")
        if not isinstance(phases, dict):
            fail(f"{where}: 'phases' is not an object")
        if sum(expect_counter(phases, p, f"{where}.phases")
               for p in PHASES) != acc:
            fail(f"{where}: phase histogram does not sum to "
                 f"accesses = {acc}")
    if depth_accesses != nodes["accesses"]:
        fail(f"per-depth rows hold {depth_accesses} accesses but "
             f"nodes.accesses = {nodes['accesses']}")
    if depth_bytes != nodes["bytes"]:
        fail(f"per-depth rows hold {depth_bytes} bytes but "
             f"nodes.bytes = {nodes['bytes']}")

    hot = doc.get("hot_nodes")
    if not isinstance(hot, list):
        fail("top level: 'hot_nodes' is not an array")
    prev = None
    for i, h in enumerate(hot):
        where = f"hot_nodes[{i}]"
        node = expect_counter(h, "node", where)
        expect_counter(h, "depth", where)
        acc = expect_counter(h, "accesses", where)
        if acc > nodes["accesses"]:
            fail(f"{where}: {acc} accesses exceeds the node total")
        if level_sum(h, where) != acc:
            fail(f"{where}: level histogram does not sum to "
                 f"accesses = {acc}")
        if prev is not None and (acc > prev[0] or
                                 (acc == prev[0] and node < prev[1])):
            fail(f"{where}: ranking broken — ({acc}, node {node}) "
                 f"after ({prev[0]}, node {prev[1]})")
        prev = (acc, node)

    reuse = doc.get("reuse")
    if not isinstance(reuse, dict):
        fail("top level: 'reuse' is not an object")
    l1_tracked = validate_reuse(reuse.get("l1", {}), "reuse.l1")
    validate_reuse(reuse.get("l2", {}), "reuse.l2")
    expect_counter(reuse, "l2_sets_touched", "reuse")
    expect_counter(reuse, "l2_set_max_accesses", "reuse")

    mem = doc.get("mem")
    if not isinstance(mem, dict):
        fail("top level: 'mem' is not an object")
    for key in MEM_COUNTERS:
        expect_counter(mem, key, "mem")
    lines = mem["line_l1"] + mem["line_l2"] + mem["line_dram"]
    if lines != l1_tracked:
        fail(f"mem: per-level line counts sum to {lines} but the L1 "
             f"reuse stack tracked {l1_tracked} accesses")
    if mem["bank_conflicts"] > mem["bank_requests"]:
        fail("mem: more bank conflicts than bank requests")

    dram = doc.get("dram")
    if not isinstance(dram, dict):
        fail("top level: 'dram' is not an object")
    for key in DRAM_COUNTERS:
        expect_counter(dram, key, "dram")
    if dram["row_hits"] + dram["row_misses"] != dram["requests"]:
        fail(f"dram: row hits {dram['row_hits']} + misses "
             f"{dram['row_misses']} != requests {dram['requests']}")

    units = doc.get("units")
    if not isinstance(units, list):
        fail("top level: 'units' is not an array")
    unit_accesses = unit_bytes = 0
    for i, u in enumerate(units):
        where = f"units[{i}]"
        expect_counter(u, "sm", where)
        unit_accesses += expect_counter(u, "accesses", where)
        unit_bytes += expect_counter(u, "bytes", where)
    if unit_accesses != nodes["accesses"]:
        fail(f"per-unit rows hold {unit_accesses} accesses but "
             f"nodes.accesses = {nodes['accesses']}")
    if unit_bytes != nodes["bytes"]:
        fail(f"per-unit rows hold {unit_bytes} bytes but "
             f"nodes.bytes = {nodes['bytes']}")

    return nodes["accesses"], len(depths)


def main(argv: list[str]) -> int:
    if len(argv) == 3 and argv[1] == "--run":
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "smoke.memscope.json"
            cmd = [argv[2], "--scene", "wknd", "--shader", "pt",
                   "--resolution", "32", "--memscope-json", str(out)]
            r = subprocess.run(cmd, stdout=subprocess.DEVNULL)
            if r.returncode != 0:
                fail(f"{' '.join(cmd)} exited {r.returncode}")
            return main([argv[0], str(out)])
    if len(argv) != 2:
        return tool.usage(
            "usage: validate_memscope.py FILE.memscope.json\n"
            "       validate_memscope.py --run SIMULATE_CLI")
    doc = tool.load_json(argv[1])
    accesses, depths = validate(doc)
    return tool.report([], ok=f"{argv[1]}: {accesses} node fetches "
                             f"over {depths} depths, scene "
                             f"{doc['scene']!r}")


if __name__ == "__main__":
    sys.exit(main(sys.argv))

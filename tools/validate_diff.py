#!/usr/bin/env python3
"""Validate a diff document produced by the cross-run differential
attribution engine (``diff_cli --json`` or the campaign engine's
``--diff-baseline``/``--diff-out`` sink).

Checks the schema and the delta laws the engine guarantees (see
DESIGN.md §18):

  - ``schema_version`` is present and current, and both ``run_key``
    and ``other_key`` blocks are complete (scene, shader, resolution,
    ``0x``-prefixed 64-bit fingerprint) and agree on everything but
    the fingerprint;
  - ``same_fingerprint`` is consistent with the two fingerprints, and
    an identity diff (equal fingerprints) has all-zero deterministic
    deltas;
  - every delta triple satisfies ``delta == other - base`` exactly
    (integers end to end);
  - ``speedup`` equals base/other cycles (fig09's arithmetic, checked
    to the document's printed precision);
  - prof: non-``warp_buffer_full`` bucket deltas sum *bit-exactly* to
    the ``resident_cycles`` delta (conservation under subtraction);
  - memscope: per-depth serving-level deltas sum to the row's access
    delta, and depth rows sum to the node totals.

Usage::

    python3 tools/validate_diff.py DIFF.json
    python3 tools/validate_diff.py --ndjson DIFFS.ndjson
    python3 tools/validate_diff.py --run SIMULATE_CLI --diff DIFF_CLI

The ``--run``/``--diff`` form (the ctest ``validate_diff`` case)
produces its own input: a (baseline, CoopRT) wknd pair through the
given ``simulate_cli``, diffed by the given ``diff_cli``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

import lintlib

tool = lintlib.Tool("validate_diff")
fail = tool.fail

SCHEMA_VERSION = 2
KEY_FIELDS = ("scene", "shader", "resolution", "fingerprint")
LEVELS = ("l1", "l2", "dram")
#: The one prof bucket outside the resident-cycle conservation sum.
NON_RESIDENT_BUCKET = "warp_buffer_full"


def expect_delta(obj: dict, key: str, where: str) -> dict:
    """``obj[key]`` as a {base, other, delta} triple of exact ints
    with ``delta == other - base``."""
    d = obj.get(key)
    if not isinstance(d, dict):
        fail(f"{where}: '{key}' is not a delta object")
    for f in ("base", "other", "delta"):
        v = d.get(f)
        if not isinstance(v, int) or isinstance(v, bool):
            fail(f"{where}.{key}: {f} = {v!r} is not an integer")
    if d["delta"] != d["other"] - d["base"]:
        fail(f"{where}.{key}: delta {d['delta']} != other "
             f"{d['other']} - base {d['base']}")
    return d


def validate_key(doc: dict, name: str) -> dict:
    key = doc.get(name)
    if not isinstance(key, dict):
        fail(f"top level: '{name}' is not an object")
    for f in KEY_FIELDS:
        if f not in key:
            fail(f"{name}: missing field {f!r}")
    if not isinstance(key["scene"], str) or not key["scene"]:
        fail(f"{name}: empty scene")
    fp = key["fingerprint"]
    if (not isinstance(fp, str) or not fp.startswith("0x")
            or len(fp) != 18):
        fail(f"{name}: fingerprint {fp!r} is not a 0x-prefixed "
             f"64-bit hex string")
    return key


def validate(doc: dict, where: str = "diff") -> str:
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"{where}: schema_version = "
             f"{doc.get('schema_version')!r}, want {SCHEMA_VERSION}")
    base_key = validate_key(doc, "run_key")
    other_key = validate_key(doc, "other_key")
    for f in ("scene", "shader", "resolution"):
        if base_key[f] != other_key[f]:
            fail(f"{where}: keys disagree on {f}: {base_key[f]!r} "
                 f"vs {other_key[f]!r} (not comparable)")
    identical = base_key["fingerprint"] == other_key["fingerprint"]
    if doc.get("same_fingerprint") != identical:
        fail(f"{where}: same_fingerprint = "
             f"{doc.get('same_fingerprint')!r} but fingerprints "
             f"{'match' if identical else 'differ'}")

    build = doc.get("build")
    if not isinstance(build, dict) or "revision" not in build:
        fail(f"{where}: missing build provenance block")

    cycles = expect_delta(doc, "cycles", where)
    speedup = doc.get("speedup")
    if not isinstance(speedup, (int, float)):
        fail(f"{where}: 'speedup' is not a number")
    if cycles["other"] > 0:
        want = cycles["base"] / cycles["other"]
        # The document prints 6 significant digits.
        if abs(speedup - want) > 1e-4 * max(1.0, abs(want)):
            fail(f"{where}: speedup {speedup} != base/other cycles "
                 f"{want}")

    bw = doc.get("bandwidth")
    if not isinstance(bw, dict):
        fail(f"{where}: 'bandwidth' is not an object")
    expect_delta(bw, "l2_bytes", f"{where}.bandwidth")
    expect_delta(bw, "dram_bytes", f"{where}.bandwidth")

    if identical and cycles["delta"] != 0:
        fail(f"{where}: identity diff (equal fingerprints) has a "
             f"non-zero cycle delta {cycles['delta']}")

    prof = doc.get("prof")
    if prof is not None:
        if not isinstance(prof, dict):
            fail(f"{where}: 'prof' is not an object")
        resident = expect_delta(prof, "resident_cycles",
                                f"{where}.prof")
        expect_delta(prof, "rt_stall_cycles", f"{where}.prof")
        buckets = prof.get("buckets")
        if not isinstance(buckets, list) or not buckets:
            fail(f"{where}.prof: 'buckets' is not a non-empty array")
        total = 0
        names = set()
        for i, b in enumerate(buckets):
            bwhere = f"{where}.prof.buckets[{i}]"
            name = b.get("name")
            if not isinstance(name, str) or not name:
                fail(f"{bwhere}: missing bucket name")
            if name in names:
                fail(f"{bwhere}: duplicate bucket {name!r}")
            names.add(name)
            if b.get("delta") != b.get("other") - b.get("base"):
                fail(f"{bwhere}: delta is not other - base")
            if name != NON_RESIDENT_BUCKET:
                total += b["delta"]
        # The conservation law: exact integer equality, no epsilon.
        if total != resident["delta"]:
            fail(f"{where}.prof: non-{NON_RESIDENT_BUCKET} bucket "
                 f"deltas sum to {total}, but the resident-cycle "
                 f"delta is {resident['delta']}")

    mscope = doc.get("memscope")
    if mscope is not None:
        if not isinstance(mscope, dict):
            fail(f"{where}: 'memscope' is not an object")
        accesses = expect_delta(mscope, "node_accesses",
                                f"{where}.memscope")
        bytes_ = expect_delta(mscope, "node_bytes",
                              f"{where}.memscope")
        levels = mscope.get("levels")
        if not isinstance(levels, dict):
            fail(f"{where}.memscope: 'levels' is not an object")
        level_sum = sum(
            expect_delta(levels, lvl,
                         f"{where}.memscope.levels")["delta"]
            for lvl in LEVELS)
        if level_sum != accesses["delta"]:
            fail(f"{where}.memscope: serving-level deltas sum to "
                 f"{level_sum}, not the access delta "
                 f"{accesses['delta']}")
        depths = mscope.get("depths")
        if not isinstance(depths, list):
            fail(f"{where}.memscope: 'depths' is not an array")
        depth_acc = depth_bytes = 0
        last = 0
        for i, row in enumerate(depths):
            rwhere = f"{where}.memscope.depths[{i}]"
            depth = row.get("depth")
            if not isinstance(depth, int) or depth <= last:
                fail(f"{rwhere}: depth {depth!r} not strictly "
                     f"increasing")
            last = depth
            acc = expect_delta(row, "accesses", rwhere)
            depth_acc += acc["delta"]
            depth_bytes += expect_delta(row, "bytes",
                                        rwhere)["delta"]
            row_levels = sum(
                expect_delta(row, lvl, rwhere)["delta"]
                for lvl in LEVELS)
            if row_levels != acc["delta"]:
                fail(f"{rwhere}: level deltas sum to {row_levels}, "
                     f"not the access delta {acc['delta']}")
        if depth_acc != accesses["delta"]:
            fail(f"{where}.memscope: depth rows sum to {depth_acc} "
                 f"accesses, not {accesses['delta']}")
        if depth_bytes != bytes_["delta"]:
            fail(f"{where}.memscope: depth rows sum to "
                 f"{depth_bytes} bytes, not {bytes_['delta']}")

    if "attribution" not in doc:
        fail(f"{where}: missing 'attribution' summary")

    return (f"{base_key['scene']} {base_key['fingerprint']} -> "
            f"{other_key['fingerprint']}")


def self_generate(simulate: str, diff_cli: str) -> int:
    """Produce a (baseline, CoopRT) wknd pair and validate its diff
    (plus an identity diff) end to end."""
    with tempfile.TemporaryDirectory() as tmp:
        reports = {}
        for name, extra in (("base", []), ("coop", ["--coop"])):
            cmd = [simulate, "--scene", "wknd", "--resolution",
                   "32", "--profile", "--memscope", "--json",
                   *extra]
            r = subprocess.run(cmd, capture_output=True, text=True)
            if r.returncode != 0:
                fail(f"{' '.join(cmd)} exited {r.returncode}")
            reports[name] = Path(tmp) / f"{name}.json"
            reports[name].write_text(r.stdout)
        out = Path(tmp) / "diff.ndjson"
        cmd = [diff_cli, "--quiet", "--json", str(out),
               str(reports["base"]), str(reports["coop"])]
        r = subprocess.run(cmd)
        if r.returncode != 0:
            fail(f"{' '.join(cmd)} exited {r.returncode}")
        summary = validate(json.loads(out.read_text()))

        # Identity pair: must diff to all-zero, exit 0.
        cmd = [diff_cli, "--quiet", "--json", str(out),
               str(reports["base"]), str(reports["base"])]
        r = subprocess.run(cmd)
        if r.returncode != 0:
            fail(f"identity diff exited {r.returncode}")
        identity = json.loads(out.read_text())
        validate(identity, "identity-diff")
        if not identity.get("same_fingerprint"):
            fail("identity diff does not report same_fingerprint")
        return tool.report([], ok=f"generated pair: {summary}")


def main(argv: list[str]) -> int:
    if len(argv) == 5 and argv[1] == "--run" and argv[3] == "--diff":
        return self_generate(argv[2], argv[4])
    if len(argv) == 3 and argv[1] == "--ndjson":
        count = 0
        with open(argv[2], encoding="utf-8") as f:
            for i, line in enumerate(f, 1):
                if not line.strip():
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{argv[2]}:{i}: {e}")
                validate(doc, f"{argv[2]}:{i}")
                count += 1
        if count == 0:
            fail(f"{argv[2]}: no diff documents")
        return tool.report([], ok=f"{count} diff lines validated")
    if len(argv) != 2:
        return tool.usage(
            "usage: validate_diff.py DIFF.json\n"
            "       validate_diff.py --ndjson DIFFS.ndjson\n"
            "       validate_diff.py --run SIMULATE_CLI "
            "--diff DIFF_CLI")
    summary = validate(tool.load_json(argv[1]))
    return tool.report([], ok=f"{argv[1]}: {summary}")


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate query-workload reports produced by ``cooprt::query``
(the ``"query"`` object of ``simulate_cli --json`` reports and of the
campaign engine's JSON lines).

A query run reports deterministic counts (queries, traversal rounds,
neighbors/cells found), an order-insensitive 64-bit checksum (emitted
as a hex *string* — JSON numbers are doubles and cannot carry 64
bits), and — unless ``--no-oracle`` was passed — the brute-force
oracle cross-check: every simulator result replayed against an
exhaustive scan and compared bit-for-bit (see DESIGN.md §17). This
tool checks the result schema and demands oracle agreement:

report file (``validate_query.py FILE.json``)
  the report carries a well-formed "query" object: known workload
  name, queries == resolution^2, round/found conservation, hex
  checksum, and an oracle block with zero mismatches.

fresh smoke runs (``--run SIMULATE_CLI``)
  produce the input by running one k-NN (point-cloud) and one
  containment (AMR) scene through the given binary with ``--json``
  (the ctest ``validate_query`` case and the query-smoke CI job use
  this form):

    python3 tools/validate_query.py --run build/examples/simulate_cli
"""

from __future__ import annotations

import json
import re
import subprocess
import sys

import lintlib

tool = lintlib.Tool("validate_query")
fail = tool.fail

WORKLOADS = ("knn", "radius", "contain")
CHECKSUM_RE = re.compile(r"^0x[0-9a-f]{1,16}$")


def validate_report(doc: dict, where: str) -> tuple[str, str]:
    """Schema + oracle agreement; returns (scene, workload)."""
    tool.expect_stamp(doc, where)
    if not isinstance(doc.get("scene"), str):
        fail(f"{where}: missing string field 'scene'")
    resolution = tool.expect_counter(doc, "resolution", where)
    tool.expect_counter(doc, "cycles", where)

    q = doc.get("query")
    if not isinstance(q, dict):
        fail(f"{where}: missing 'query' object (not a query run?)")
    if q.get("workload") not in WORKLOADS:
        fail(f"{where}.query: workload {q.get('workload')!r} not in "
             f"{WORKLOADS}")
    queries = tool.expect_counter(q, "queries", f"{where}.query")
    rounds = tool.expect_counter(q, "rounds", f"{where}.query")
    found = tool.expect_counter(q, "found", f"{where}.query")
    if queries != resolution * resolution:
        fail(f"{where}.query: {queries} queries != resolution^2 = "
             f"{resolution * resolution}")
    if rounds < queries:
        fail(f"{where}.query: {rounds} rounds < {queries} queries "
             "(every query issues at least one round)")
    if found > rounds:
        fail(f"{where}.query: found {found} exceeds rounds {rounds} "
             "(at most one accept per round)")
    checksum = q.get("checksum")
    if not isinstance(checksum, str) or not CHECKSUM_RE.match(checksum):
        fail(f"{where}.query: checksum {checksum!r} is not a 64-bit "
             "hex string")

    oracle = q.get("oracle")
    if not isinstance(oracle, dict):
        fail(f"{where}.query: missing 'oracle' object (run without "
             "--no-oracle to cross-check)")
    checked = tool.expect_counter(oracle, "checked",
                                  f"{where}.query.oracle")
    mismatches = tool.expect_counter(oracle, "mismatches",
                                     f"{where}.query.oracle")
    if checked != queries:
        fail(f"{where}.query.oracle: checked {checked} != "
             f"{queries} queries")
    if oracle.get("matches") is not True:
        fail(f"{where}.query.oracle: 'matches' is "
             f"{oracle.get('matches')!r}, expected true")
    if mismatches != 0:
        fail(f"{where}.query.oracle: {mismatches} of {checked} "
             "queries disagree with the brute-force oracle")
    return doc["scene"], q["workload"]


def run_one(simulate_cli: str, shader: str, want_scene: str) -> str:
    cmd = [simulate_cli, "--shader", shader, "--resolution", "12",
           "--json"]
    r = subprocess.run(cmd, stdout=subprocess.PIPE)
    if r.returncode != 0:
        fail(f"{' '.join(cmd)} exited {r.returncode}")
    try:
        doc = json.loads(r.stdout)
    except json.JSONDecodeError as e:
        fail(f"{' '.join(cmd)}: output is not JSON: {e}")
    scene, workload = validate_report(doc, f"--shader {shader}")
    if scene != want_scene:
        fail(f"--shader {shader}: defaulted to scene {scene!r}, "
             f"expected {want_scene!r}")
    if workload != shader:
        fail(f"--shader {shader}: report says workload {workload!r}")
    return f"{workload}@{scene} oracle-clean"


def run_smoke(simulate_cli: str) -> int:
    notes = [run_one(simulate_cli, "knn", "ptsu"),
             run_one(simulate_cli, "contain", "amrs")]
    return tool.report([], ok="fresh runs: " + ", ".join(notes))


def main(argv: list[str]) -> int:
    if len(argv) == 3 and argv[1] == "--run":
        return run_smoke(argv[2])
    if len(argv) == 2 and not argv[1].startswith("-"):
        doc = tool.load_json(argv[1])
        scene, workload = validate_report(doc, argv[1])
        return tool.report([], ok=f"{argv[1]}: {workload}@{scene}, "
                                 f"schema holds, oracle agrees")
    return tool.usage(
        "usage: validate_query.py FILE.json\n"
        "       validate_query.py --run SIMULATE_CLI")


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validate host-telemetry sinks produced by ``cooprt::telemetry``
(``simulate_cli --telemetry-out FILE``, the campaign engine's
``--telemetry-dir`` sinks, and ``--telemetry-log`` event logs).

Telemetry files split into *deterministic* fields (a pure function of
the simulated run: cycles, rays retired, job indices/tags/attempts)
and *host* fields (wall clock, RSS, worker scheduling), which always
live inside a ``"host"`` object (see DESIGN.md §16). This tool checks
three things:

per-run sink (``validate_telemetry.py FILE.telemetry.json``)
  schema: version, build stamp, sim counters, all five phase spans
  present with non-negative seconds, derived throughput consistent
  with cycles / sim_seconds.

event log (``--log FILE.jsonl``)
  every line parses, known event kinds only, and the conservation
  laws hold: campaign_begin announces exactly the jobs that then
  start; each job finishes exactly once; campaign_end's done+failed
  equals the job count and its retried count matches the job_retry
  lines observed.

deterministic identity (``--identical A B``)
  the deterministic projection of two sinks is equal: strip every
  ``"host"`` object, and for event logs sort the per-job lines
  (completion order is scheduling-dependent, the set is not). This is
  how CI proves ``--jobs 1`` and ``--jobs 4`` agree.

With ``--run SIMULATE_CLI`` the script produces its own input by
running a small scene through the given binary first (the ctest
``validate_telemetry`` case uses this form):

    python3 tools/validate_telemetry.py --run build/examples/simulate_cli
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

import lintlib

tool = lintlib.Tool("validate_telemetry")
fail = tool.fail

PHASES = ("scene_load", "bvh_build", "warmup", "sim_loop", "report")
BUILD_FIELDS = {"revision": str, "dirty": bool, "compiler": str,
                "build_type": str, "check": bool}
EVENTS = ("campaign_begin", "job_start", "job_retry", "job_timeout",
          "job_finish", "campaign_end")
#: Relative tolerance for derived gauges recomputed from their inputs.
REL_TOL = 1e-6


def expect_number(obj: dict, key: str, where: str) -> float:
    """``obj[key]`` as a finite non-negative number, or fail."""
    if key not in obj:
        fail(f"{where}: missing field {key!r}")
    v = obj[key]
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        fail(f"{where}: {key} = {v!r} is not a number")
    if not (v >= 0.0) or v != v or v in (float("inf"),):
        fail(f"{where}: {key} = {v!r} is not finite and non-negative")
    return float(v)


def validate_build(build, where: str) -> None:
    if not isinstance(build, dict):
        fail(f"{where}: 'build' is not an object")
    for key, kind in BUILD_FIELDS.items():
        if key not in build:
            fail(f"{where}.build: missing field {key!r}")
        if not isinstance(build[key], kind):
            fail(f"{where}.build: {key} = {build[key]!r} is not a "
                 f"{kind.__name__}")
    if build["revision"] == "":
        fail(f"{where}.build: empty revision")


def validate_sink(doc: dict) -> tuple[str, int]:
    """Per-run sink schema; returns (scene, cycles)."""
    tool.expect_stamp(doc)
    if not isinstance(doc.get("scene"), str):
        fail("top level: missing string field 'scene'")
    if doc.get("telemetry_version") != 1:
        fail("top level: telemetry_version != 1")
    validate_build(doc.get("build"), "top level")

    sim = doc.get("sim")
    if not isinstance(sim, dict):
        fail("top level: 'sim' is not an object")
    cycles = tool.expect_counter(sim, "cycles", "sim")
    tool.expect_counter(sim, "rays_retired", "sim")

    host = doc.get("host")
    if not isinstance(host, dict):
        fail("top level: 'host' is not an object")
    phases = host.get("phases")
    if not isinstance(phases, dict):
        fail("host: 'phases' is not an object")
    if tuple(phases) != PHASES:
        fail(f"host.phases: keys {tuple(phases)} != {PHASES}")
    for name, span in phases.items():
        where = f"host.phases.{name}"
        if not isinstance(span, dict):
            fail(f"{where}: not an object")
        expect_number(span, "seconds", where)
        tool.expect_counter(span, "count", where)
        if span["count"] == 0 and span["seconds"] != 0:
            fail(f"{where}: nonzero seconds with zero entries")

    sim_seconds = expect_number(host, "sim_seconds", "host")
    cps = expect_number(host, "cycles_per_sec", "host")
    rps = expect_number(host, "rays_per_sec", "host")
    tool.expect_counter(host, "rss_current_kb", "host")
    tool.expect_counter(host, "rss_peak_kb", "host")
    if host["rss_peak_kb"] < host["rss_current_kb"]:
        fail("host: rss_peak_kb below rss_current_kb")
    loop = phases["sim_loop"]["seconds"]
    if abs(sim_seconds - loop) > REL_TOL * max(sim_seconds, loop):
        fail(f"host: sim_seconds {sim_seconds} != sim_loop span "
             f"{loop}")
    if sim_seconds > 0:
        want = cycles / sim_seconds
        if abs(cps - want) > max(1.0, REL_TOL * want) * 1e3:
            # cycles_per_sec is serialized with %g (6 significant
            # digits), so compare loosely.
            fail(f"host: cycles_per_sec {cps} inconsistent with "
                 f"cycles {cycles} / sim_seconds {sim_seconds}")
    elif cps != 0 or rps != 0:
        fail("host: nonzero throughput with sim_seconds == 0")
    return doc["scene"], cycles


def load_log(path: str | Path) -> list[dict]:
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")
    events = []
    for i, line in enumerate(raw, 1):
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i}: not a JSON line: {e}")
        if not isinstance(ev, dict) or not isinstance(
                ev.get("ev"), str):
            fail(f"{path}:{i}: missing string field 'ev'")
        if ev["ev"] not in EVENTS:
            fail(f"{path}:{i}: unknown event {ev['ev']!r}")
        if not isinstance(ev.get("host"), dict):
            fail(f"{path}:{i}: missing 'host' object")
        events.append(ev)
    return events


def validate_log(path: str | Path) -> tuple[int, int]:
    """Event-log schema + conservation; returns (jobs, lines)."""
    events = load_log(path)
    if not events:
        fail(f"{path}: empty event log")
    if events[0]["ev"] != "campaign_begin":
        fail(f"{path}: first event is {events[0]['ev']!r}, "
             "expected campaign_begin")
    if events[-1]["ev"] != "campaign_end":
        fail(f"{path}: last event is {events[-1]['ev']!r}, "
             "expected campaign_end")
    begin, end = events[0], events[-1]
    jobs = tool.expect_counter(begin, "jobs", "campaign_begin")
    validate_build(begin.get("build"), "campaign_begin")

    started: set[int] = set()
    finished: dict[int, dict] = {}
    retries = 0
    for i, ev in enumerate(events[1:-1], 2):
        where = f"{path}:{i} ({ev['ev']})"
        if ev["ev"] in ("campaign_begin", "campaign_end"):
            fail(f"{where}: lifecycle event in the middle of the log")
        index = tool.expect_counter(ev, "index", where)
        if index >= jobs:
            fail(f"{where}: index {index} out of range for "
                 f"{jobs} jobs")
        if not isinstance(ev.get("tag"), str):
            fail(f"{where}: missing string field 'tag'")
        if ev["ev"] == "job_start":
            tool.expect_counter(ev, "attempt", where)
            started.add(index)
        elif ev["ev"] == "job_retry":
            tool.expect_counter(ev, "next_attempt", where)
            retries += 1
        elif ev["ev"] == "job_timeout":
            expect_number(ev, "budget_s", where)
        elif ev["ev"] == "job_finish":
            if not isinstance(ev.get("ok"), bool):
                fail(f"{where}: missing bool field 'ok'")
            tool.expect_counter(ev, "attempts", where)
            tool.expect_counter(ev, "cycles", where)
            if index in finished:
                fail(f"{where}: job {index} finished twice")
            finished[index] = ev

    if started != set(range(jobs)):
        fail(f"{path}: job_start covers indices {sorted(started)}, "
             f"expected 0..{jobs - 1}")
    if set(finished) != set(range(jobs)):
        fail(f"{path}: job_finish covers {sorted(finished)}, "
             f"expected 0..{jobs - 1}")
    done = tool.expect_counter(end, "done", "campaign_end")
    failed = tool.expect_counter(end, "failed", "campaign_end")
    if done + failed != jobs:
        fail(f"{path}: campaign_end done {done} + failed {failed} "
             f"!= jobs {jobs}")
    oks = sum(1 for ev in finished.values() if ev["ok"])
    if oks != done:
        fail(f"{path}: {oks} ok job_finish lines but campaign_end "
             f"done = {done}")
    if tool.expect_counter(end, "retried", "campaign_end") != retries:
        fail(f"{path}: campaign_end retried != {retries} job_retry "
             "lines")
    return jobs, len(events)


def strip_host(obj):
    """Drop every ``"host"`` object, recursively."""
    if isinstance(obj, dict):
        return {k: strip_host(v) for k, v in obj.items()
                if k != "host"}
    if isinstance(obj, list):
        return [strip_host(v) for v in obj]
    return obj


def projection(path: str | Path):
    """The deterministic projection of a sink or event log.

    Event logs (.jsonl) keep lifecycle lines in order but sort the
    per-job lines: workers interleave them nondeterministically, yet
    the *set* of per-job events is a pure function of the campaign.
    """
    text = Path(path).read_text(encoding="utf-8")
    lines = text.splitlines()
    try:
        docs = [json.loads(l) for l in lines]
    except json.JSONDecodeError:
        # A pretty-printed single document (e.g. *.telemetry.json).
        try:
            docs = [json.loads(text)]
        except json.JSONDecodeError as e:
            fail(f"{path}: {e}")
    stripped = [strip_host(d) for d in docs]
    if len(stripped) == 1:
        return stripped
    key = lambda d: json.dumps(d, sort_keys=True)
    ordered = [d for d in stripped
               if not str(d.get("ev", "")).startswith("job_")]
    jobs = sorted((d for d in stripped
                   if str(d.get("ev", "")).startswith("job_")),
                  key=key)
    return ordered + jobs


def check_identical(a: str, b: str) -> int:
    pa, pb = projection(a), projection(b)
    if pa != pb:
        for i, (da, db) in enumerate(zip(pa, pb)):
            if da != db:
                fail(f"deterministic projections differ at entry "
                     f"{i}:\n  {a}: {da}\n  {b}: {db}")
        fail(f"deterministic projections differ in length: "
             f"{a} has {len(pa)} entries, {b} has {len(pb)}")
    return tool.report([], ok=f"{a} and {b}: deterministic "
                             f"projections identical "
                             f"({len(pa)} entries)")


def run_smoke(simulate_cli: str) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "smoke.telemetry.json"
        cmd = [simulate_cli, "--scene", "wknd", "--shader", "pt",
               "--resolution", "32", "--telemetry-out", str(out)]
        r = subprocess.run(cmd, stdout=subprocess.DEVNULL)
        if r.returncode != 0:
            fail(f"{' '.join(cmd)} exited {r.returncode}")
        doc = tool.load_json(out)
        scene, cycles = validate_sink(doc)
        return tool.report([], ok=f"fresh {scene!r} run: {cycles} "
                                 f"cycles, schema + derivations hold")


def main(argv: list[str]) -> int:
    if len(argv) == 3 and argv[1] == "--run":
        return run_smoke(argv[2])
    if len(argv) == 3 and argv[1] == "--log":
        jobs, lines = validate_log(argv[2])
        return tool.report([], ok=f"{argv[2]}: {lines} events over "
                                 f"{jobs} jobs, conservation holds")
    if len(argv) == 4 and argv[1] == "--identical":
        return check_identical(argv[2], argv[3])
    if len(argv) == 2 and not argv[1].startswith("-"):
        doc = tool.load_json(argv[1])
        scene, cycles = validate_sink(doc)
        return tool.report([], ok=f"{argv[1]}: scene {scene!r}, "
                                 f"{cycles} cycles, schema + "
                                 f"derivations hold")
    return tool.usage(
        "usage: validate_telemetry.py FILE.telemetry.json\n"
        "       validate_telemetry.py --log EVENTS.jsonl\n"
        "       validate_telemetry.py --identical A B\n"
        "       validate_telemetry.py --run SIMULATE_CLI")


if __name__ == "__main__":
    sys.exit(main(sys.argv))

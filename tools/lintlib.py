"""Shared scaffolding for the repository's Python lint/validation
tools (``lint_stats_registry``, ``validate_raystats``,
``validate_memscope`` and ``cooprt_lint``).

Every tool follows the same contract, enforced here once instead of
four times:

  - usage errors print to stderr and exit 2;
  - a failed check prints ``<tool>: FAIL`` (plus the problems) and
    exits 1;
  - success prints one ``<tool>: OK (...)`` summary line and exits 0;
  - JSON inputs are loaded with uniform error reporting;
  - counter fields are validated as non-negative integers the same
    way everywhere.

Usage::

    import lintlib
    tool = lintlib.Tool("validate_foo")
    doc = tool.load_json(path)
    n = tool.expect_counter(doc, "requests", "top level")
    ...
    return tool.report(problems, ok=f"{n} requests validated")
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import NoReturn

#: Repository root (tools/ lives directly under it).
REPO = Path(__file__).resolve().parent.parent

#: Conventional exit codes shared by every tool.
EXIT_OK = 0
EXIT_FAIL = 1
EXIT_USAGE = 2


class Tool:
    """One lint/validation tool's reporting surface."""

    def __init__(self, name: str):
        self.name = name

    def fail(self, msg: str) -> NoReturn:
        """Abort immediately: ``<tool>: FAIL: <msg>`` and exit 1."""
        sys.exit(f"{self.name}: FAIL: {msg}")

    def usage(self, text: str) -> int:
        """Print usage to stderr; return the usage exit code (2)."""
        print(text, file=sys.stderr)
        return EXIT_USAGE

    def load_json(self, path: str | Path):
        """Load a JSON document, failing with a uniform message."""
        try:
            with open(path, encoding="utf-8") as f:
                return json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            self.fail(f"{path}: {e}")

    def expect_counter(self, obj: dict, key: str, where: str) -> int:
        """``obj[key]`` as a non-negative integer, or fail."""
        if key not in obj:
            self.fail(f"{where}: missing field {key!r}")
        v = obj[key]
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            self.fail(
                f"{where}: {key} = {v!r} is not a non-negative "
                f"integer")
        return v

    def expect_stamp(self, doc: dict, where: str = "top level",
                     run_key: bool = True) -> None:
        """Assert the schema-v2 stamp every JSON sink carries: a
        ``schema_version`` field and (for per-run sinks) a complete
        ``run_key`` identity block (DESIGN.md §18)."""
        v = doc.get("schema_version")
        if not isinstance(v, int) or v < 2:
            self.fail(f"{where}: schema_version = {v!r} (want an "
                      f"integer >= 2; re-capture with a current "
                      f"build)")
        if not run_key:
            return
        key = doc.get("run_key")
        if not isinstance(key, dict):
            self.fail(f"{where}: missing 'run_key' identity block")
        for f in ("scene", "shader", "resolution", "fingerprint"):
            if f not in key:
                self.fail(f"{where}: run_key is missing {f!r}")
        fp = key["fingerprint"]
        if (not isinstance(fp, str) or not fp.startswith("0x")
                or len(fp) != 18):
            self.fail(f"{where}: run_key.fingerprint {fp!r} is not "
                      f"a 0x-prefixed 64-bit hex string")

    def report(self, problems: list[str], ok: str) -> int:
        """Print the verdict and return the exit code.

        A non-empty ``problems`` list prints ``<tool>: FAIL`` with
        one indented line per problem and returns 1; otherwise prints
        ``<tool>: OK (<ok>)`` and returns 0.
        """
        if problems:
            print(f"{self.name}: FAIL")
            for p in problems:
                print("  -", p)
            return EXIT_FAIL
        print(f"{self.name}: OK ({ok})")
        return EXIT_OK

/**
 * @file
 * Two-level acceleration structures (TLAS/BLAS) through the public
 * API: build one tree BLAS, stamp a forest of rigid-transformed
 * instances, query it directly, then flatten it into a single-level
 * scene and measure how much CoopRT accelerates tracing it.
 *
 *   ./instancing [instances]
 */

#include <cstdio>

#include "bvh/tlas.hpp"
#include "core/simulation.hpp"
#include "geom/rng.hpp"
#include "scene/generators.hpp"
#include "scene/primitives.hpp"
#include "shaders/film.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;

    const int count = argc > 1 ? std::atoi(argv[1]) : 60;

    // 1. One detailed tree as the bottom-level structure.
    scene::Scene proto = scene::makeTreeScene("tree", 7, 120);
    auto blas = std::make_shared<bvh::Blas>(proto.mesh);

    // 2. A forest of instances, each a rotation + translation.
    bvh::Tlas tlas;
    const std::uint32_t b = tlas.addBlas(blas);
    geom::Pcg32 rng(11);
    for (int i = 0; i < count; ++i)
        tlas.addInstance(
            {b, geom::RigidTransform::rotateYTranslate(
                    rng.nextRange(-3.14f, 3.14f),
                    {rng.nextRange(-60, 60), 0,
                     rng.nextRange(-60, 60)})});
    tlas.build();

    std::printf("forest: %zu instances of a %zu-triangle tree\n",
                tlas.instanceCount(), blas->mesh.size());
    std::printf("  instanced triangles: %zu, stored once: %zu "
                "(%.0fx memory saving)\n",
                tlas.instancedTriangles(), tlas.storedTriangles(),
                double(tlas.instancedTriangles()) /
                    double(tlas.storedTriangles()));

    // 3. Query the two-level structure directly.
    int hits = 0;
    const int probes = 2000;
    for (int i = 0; i < probes; ++i) {
        geom::Ray r({rng.nextRange(-60, 60), rng.nextRange(1, 6),
                     rng.nextRange(-60, 60)},
                    rng.nextUnitVector());
        hits += tlas.closestHit(r).valid();
    }
    std::printf("  random probe hit rate: %.1f%%\n",
                100.0 * hits / probes);

    // 4. Flatten for the timing simulator (which traces single-level
    //    BVHs) and measure the CoopRT benefit on the instanced scene.
    scene::Scene flat_scene;
    flat_scene.name = "forest";
    flat_scene.materials = proto.materials;
    for (std::uint32_t i = 0; i < tlas.instanceCount(); ++i) {
        const auto &inst = tlas.instance(i);
        const auto &mesh = tlas.blasOf(inst).mesh;
        for (std::uint32_t t = 0; t < mesh.size(); ++t) {
            const geom::Triangle &tri = mesh.tri(t);
            flat_scene.mesh.addTriangle(
                {inst.to_world.point(tri.v0),
                 inst.to_world.point(tri.v1),
                 inst.to_world.point(tri.v2)},
                mesh.materialOf(t));
        }
    }
    scene::addQuad(flat_scene.mesh, {-80, 0, -80}, {160, 0, 0},
                   {0, 0, 160});
    flat_scene.sky_emission = 1.0f;
    flat_scene.camera = scene::Camera({70, 10, 70}, {0, 4, 0},
                                      {0, 1, 0}, 50.0f);
    flat_scene.default_resolution = 40;

    core::Simulation sim(flat_scene);
    core::RunConfig cfg;
    const auto base = sim.run(cfg);
    cfg.gpu.trace.coop = true;
    const auto coop = sim.run(cfg);
    std::printf("flattened scene: %zu triangles, BVH %.1f MiB\n",
                flat_scene.mesh.size(), sim.treeStats().sizeMiB());
    std::printf("  baseline %llu cycles -> CoopRT %llu cycles "
                "(%.2fx)\n",
                static_cast<unsigned long long>(base.gpu.cycles),
                static_cast<unsigned long long>(coop.gpu.cycles),
                double(base.gpu.cycles) / double(coop.gpu.cycles));
    return 0;
}

/**
 * @file
 * The command-line front end to the simulator: run any scene under
 * any configuration and get human-readable or JSON output. This is
 * the "driver binary" a downstream user scripts against.
 *
 *   ./simulate_cli --scene fox --coop --subwarp 8 --json
 *   ./simulate_cli --scene spnza --shader ao --resolution 64
 *   ./simulate_cli --list
 *
 * Flags:
 *   --scene <label>       scene to simulate (default crnvl; query
 *                         shaders default to ptsu / amrs instead)
 *   --shader pt|ao|sh|knn|radius|contain
 *                         workload (default pt). knn/radius run
 *                         nearest-neighbor / fixed-radius search over
 *                         point-cloud scenes; contain runs point
 *                         containment over AMR scenes (src/query/)
 *   --resolution N        square frame size (default: scene's bench)
 *   --coop                enable CoopRT
 *   --subwarp N           CoopRT helper scope (4/8/16/32)
 *   --warp-buffer N       RT warp-buffer entries
 *   --prefetch            treelet-style child prefetch
 *   --predictor           intersection predictor
 *   --bfs                 BFS traversal order
 *   --mobile              mobile GPU configuration
 *   --bounces N           path-tracing bounce limit
 *   --query-k N           k for the knn workload (default 4)
 *   --query-radius R      search radius for the radius workload
 *   --query-steps N       locate-advect rounds for contain
 *   --no-oracle           skip the brute-force oracle cross-check
 *                         that query runs perform by default
 *   --json                emit a JSON report instead of text
 *   --list                list scene labels and exit
 *   --version             print build provenance (git revision,
 *                         compiler, COOPRT_CHECK) and exit
 *
 * Observability (see DESIGN.md "Observability" and src/trace/):
 *   --trace FILE          write Chrome trace_event JSON (open in
 *                         chrome://tracing or https://ui.perfetto.dev)
 *   --metrics FILE        write the sampled metric time-series CSV
 *   --trace-filter PAT    restrict events/metric columns, e.g.
 *                         "rtunit.*" or "mem.l2.*,rtunit.sm0.*"
 *   --trace-capacity N    event ring-buffer capacity (default 1M)
 *
 * Stall-attribution profiling (see DESIGN.md "Profiling" / src/prof/):
 *   --profile             collect the warp stall taxonomy and print a
 *                         per-bucket summary (adds a "prof" object to
 *                         --json reports)
 *   --profile-out FILE    write folded flamegraph stacks, one
 *                         `scene;sm<i>;rtunit;<bucket> N` line each —
 *                         pipe into flamegraph.pl or load in
 *                         speedscope (implies --profile)
 *   --profile-json FILE   write the hierarchical JSON profile
 *                         (implies --profile)
 *
 * Ray-level provenance tracing (DESIGN.md "Ray provenance" /
 * src/raytrace/):
 *   --ray-trace           sample K rays per warp, record their
 *                         lifecycle events and print the per-SM
 *                         critical-path attribution (adds a "ray"
 *                         object to --json reports; sampled rays get
 *                         their own tracks in --trace exports)
 *   --ray-sample-k N      rays sampled per warp (default 4; implies
 *                         --ray-trace)
 *   --ray-out FILE        write the per-ray statistics summary —
 *                         JSON, or CSV when FILE ends in ".csv"
 *                         (implies --ray-trace)
 *
 * Memory & BVH-topology profiling (DESIGN.md "Memscope" /
 * src/memscope/):
 *   --memscope            tag every node fetch with node id, tree
 *                         depth and serving level; print per-depth
 *                         miss/divergence rows and the hot-node table
 *                         (adds a "memscope" object to --json reports
 *                         and memscope counter tracks to --trace)
 *   --memscope-out FILE   write folded `scene;depth<d>;node<id> N`
 *                         stacks for flamegraph.pl / speedscope
 *                         (implies --memscope)
 *   --memscope-json FILE  write the hierarchical JSON memscope
 *                         profile (implies --memscope)
 *
 * Host-side telemetry (DESIGN.md "Telemetry" / src/telemetry/):
 *   --telemetry           record phase-scoped wall-clock spans
 *                         (scene load, BVH build, warmup, sim loop,
 *                         report), derived throughput (cycles/sec,
 *                         rays/sec) and RSS; print a summary line.
 *                         Unlike the observers above this measures
 *                         the simulator process, not the simulated
 *                         GPU; simulated results stay bit-identical.
 *   --telemetry-out FILE  write the per-run telemetry JSON sink —
 *                         deterministic "sim" fields plus a "host"
 *                         object with the wall-clock/RSS fields
 *                         (implies --telemetry)
 *   --heartbeat-s S       print a live progress line (simulated
 *                         cycle, rays retired, RSS) to stderr every
 *                         S seconds while the run executes; S must
 *                         be positive (implies --telemetry)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include <optional>

#include "core/build_info.hpp"
#include "core/report.hpp"
#include "core/simulation.hpp"
#include "memscope/memscope.hpp"
#include "prof/prof.hpp"
#include "raytrace/raytrace.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/session.hpp"

namespace {

int
usage(const char *msg = nullptr)
{
    if (msg)
        std::cerr << "error: " << msg << "\n";
    std::cerr << "see the header of simulate_cli.cpp or run --help\n";
    return 2;
}

void
printVersion(std::ostream &os)
{
    os << "cooprt simulate_cli\n"
       << "  revision:   " << cooprt::build::kGitRevision
       << (cooprt::build::kGitDirty ? " (dirty)" : "") << "\n"
       << "  compiler:   " << cooprt::build::kCompiler << "\n"
       << "  build type: " << cooprt::build::kBuildType << "\n"
       << "  check:      "
       << (cooprt::build::kCheckEnabled ? "on" : "off") << "\n"
       << "  schema:     v" << cooprt::trace::kSchemaVersion << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cooprt;

    std::string scene_label = "crnvl";
    bool scene_explicit = false;
    core::RunConfig cfg;
    bool json = false;
    bool profile = false;
    bool ray_trace = false;
    bool memscope_on = false;
    std::string trace_path;
    std::string metrics_path;
    std::string profile_folded_path;
    std::string profile_json_path;
    std::string ray_out_path;
    std::string memscope_folded_path;
    std::string memscope_json_path;
    bool telemetry_on = false;
    std::string telemetry_out_path;
    double heartbeat_s = 0.0;
    trace::SessionOptions trace_opt;
    raytrace::RecorderConfig ray_cfg;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--version") {
            printVersion(std::cout);
            return 0;
        } else if (a == "--list") {
            for (const auto &l : scene::SceneRegistry::allLabels())
                std::cout << l << "\n";
            for (const auto &l : scene::SceneRegistry::queryLabels())
                std::cout << l << "\n";
            return 0;
        } else if (a == "--help" || a == "-h") {
            std::cout <<
                "usage: simulate_cli [--scene L]\n"
                "  [--shader pt|ao|sh|knn|radius|contain]\n"
                "  [--resolution N] [--coop] [--subwarp N]\n"
                "  [--warp-buffer N] [--prefetch] [--predictor]\n"
                "  [--bfs] [--mobile] [--bounces N]\n"
                "  [--query-k N] [--query-radius R] [--query-steps N]\n"
                "  [--no-oracle] [--json] [--list] [--version]\n"
                "  [--trace FILE] [--metrics FILE]\n"
                "  [--trace-filter PAT] [--trace-capacity N]\n"
                "  [--profile] [--profile-out FILE]\n"
                "  [--profile-json FILE]\n"
                "  [--ray-trace] [--ray-sample-k N] [--ray-out FILE]\n"
                "  [--memscope] [--memscope-out FILE]\n"
                "  [--memscope-json FILE]\n"
                "  [--telemetry] [--telemetry-out FILE]\n"
                "  [--heartbeat-s S]\n";
            return 0;
        } else if (a == "--scene") {
            scene_label = next("--scene");
            scene_explicit = true;
        } else if (a == "--shader") {
            const std::string s = next("--shader");
            if (s == "pt")
                cfg.shader = core::ShaderKind::PathTracing;
            else if (s == "ao")
                cfg.shader = core::ShaderKind::AmbientOcclusion;
            else if (s == "sh")
                cfg.shader = core::ShaderKind::Shadow;
            else if (s == "knn")
                cfg.shader = core::ShaderKind::QueryKnn;
            else if (s == "radius")
                cfg.shader = core::ShaderKind::QueryRadius;
            else if (s == "contain")
                cfg.shader = core::ShaderKind::QueryContain;
            else
                return usage(
                    "unknown shader (pt|ao|sh|knn|radius|contain)");
        } else if (a == "--resolution") {
            cfg.resolution = std::atoi(next("--resolution"));
        } else if (a == "--coop") {
            cfg.gpu.trace.coop = true;
        } else if (a == "--subwarp") {
            cfg.gpu.trace.subwarp_size = std::atoi(next("--subwarp"));
        } else if (a == "--warp-buffer") {
            cfg.gpu.trace.warp_buffer_entries =
                std::atoi(next("--warp-buffer"));
        } else if (a == "--prefetch") {
            cfg.gpu.trace.child_prefetch = true;
        } else if (a == "--predictor") {
            cfg.gpu.trace.intersection_predictor = true;
        } else if (a == "--bfs") {
            cfg.gpu.trace.order = rtunit::TraversalOrder::Bfs;
        } else if (a == "--mobile") {
            cfg.gpu = gpu::GpuConfig::mobileBench();
        } else if (a == "--bounces") {
            cfg.pt.max_bounces = std::atoi(next("--bounces"));
        } else if (a == "--query-k") {
            cfg.query.k = std::atoi(next("--query-k"));
            if (cfg.query.k <= 0)
                return usage("--query-k needs a positive value");
        } else if (a == "--query-radius") {
            cfg.query.radius =
                float(std::atof(next("--query-radius")));
            if (cfg.query.radius <= 0.0f)
                return usage("--query-radius needs a positive value");
        } else if (a == "--query-steps") {
            cfg.query.steps = std::atoi(next("--query-steps"));
            if (cfg.query.steps <= 0)
                return usage("--query-steps needs a positive value");
        } else if (a == "--no-oracle") {
            cfg.query.verify = false;
        } else if (a == "--json") {
            json = true;
        } else if (a == "--trace") {
            trace_path = next("--trace");
            trace_opt.events = true;
        } else if (a == "--metrics") {
            metrics_path = next("--metrics");
            trace_opt.metrics = true;
        } else if (a == "--trace-filter") {
            trace_opt.filter = next("--trace-filter");
        } else if (a == "--trace-capacity") {
            trace_opt.ring_capacity =
                std::size_t(std::atoll(next("--trace-capacity")));
        } else if (a == "--profile") {
            profile = true;
        } else if (a == "--profile-out") {
            profile_folded_path = next("--profile-out");
            profile = true;
        } else if (a == "--profile-json") {
            profile_json_path = next("--profile-json");
            profile = true;
        } else if (a == "--ray-trace") {
            ray_trace = true;
        } else if (a == "--ray-sample-k") {
            ray_cfg.sample_k = std::atoi(next("--ray-sample-k"));
            ray_trace = true;
        } else if (a == "--ray-out") {
            ray_out_path = next("--ray-out");
            ray_trace = true;
        } else if (a == "--memscope") {
            memscope_on = true;
        } else if (a == "--memscope-out") {
            memscope_folded_path = next("--memscope-out");
            memscope_on = true;
        } else if (a == "--memscope-json") {
            memscope_json_path = next("--memscope-json");
            memscope_on = true;
        } else if (a == "--telemetry") {
            telemetry_on = true;
        } else if (a == "--telemetry-out") {
            telemetry_out_path = next("--telemetry-out");
            telemetry_on = true;
        } else if (a == "--heartbeat-s") {
            heartbeat_s = std::atof(next("--heartbeat-s"));
            if (heartbeat_s <= 0.0)
                return usage("--heartbeat-s needs a positive value");
            telemetry_on = true;
        } else {
            return usage(("unknown flag " + a).c_str());
        }
    }

    // Query workloads need a query scene; when the user didn't pick
    // one, swap the rendering default for the matching query default
    // (point cloud for knn/radius, AMR hierarchy for contain).
    if (core::isQueryShader(cfg.shader) && !scene_explicit)
        scene_label = cfg.shader == core::ShaderKind::QueryContain
                          ? "amrs"
                          : "ptsu";
    if (!scene::SceneRegistry::has(scene_label))
        return usage(("unknown scene " + scene_label).c_str());
    if (core::isQueryShader(cfg.shader)) {
        const auto kind = scene::SceneRegistry::get(scene_label).kind;
        const bool want_amr =
            cfg.shader == core::ShaderKind::QueryContain;
        if (kind != (want_amr ? scene::SceneKind::AmrCells
                              : scene::SceneKind::PointCloud))
            return usage((std::string("query shaders need a ") +
                          (want_amr ? "cell (amr*)"
                                    : "point-cloud (pts*)") +
                          " scene, got '" + scene_label + "'")
                             .c_str());
    } else if (scene::SceneRegistry::get(scene_label).kind !=
               scene::SceneKind::Triangles) {
        return usage(("rendering shaders need a triangle scene; '" +
                      scene_label + "' is a query scene (use "
                      "--shader knn/radius/contain)")
                         .c_str());
    }
    try {
        cfg.gpu.trace.validate();
    } catch (const std::exception &e) {
        return usage(e.what());
    }

    // The session outlives the run; metrics sampling shares the
    // GPU's activity-sampling interval so the exported series lines
    // up with the paper's 500-cycle AerialVision-style samples.
    trace_opt.metrics_interval = cfg.gpu.sample_interval;
    trace::Session session(trace_opt);
    if (trace_opt.events || trace_opt.metrics)
        cfg.trace_session = &session;
    prof::Profiler profiler;
    if (profile)
        cfg.profiler = &profiler;
    if (ray_trace && ray_cfg.sample_k <= 0)
        return usage("--ray-sample-k needs a positive value");
    raytrace::Recorder ray(ray_cfg);
    if (ray_trace)
        cfg.ray_recorder = &ray;
    memscope::Collector mscope;
    if (memscope_on)
        cfg.memscope = &mscope;
    telemetry::Recorder telem;
    if (telemetry_on)
        cfg.telemetry = &telem;

    const core::Simulation &sim = core::simulationFor(scene_label);
    core::RunOutcome out;
    {
        // Heartbeat scope: lives exactly as long as the run, reading
        // the recorder's lock-free live gauges from its own thread.
        std::optional<telemetry::Heartbeat> heartbeat;
        if (heartbeat_s > 0.0)
            heartbeat.emplace(
                heartbeat_s,
                [&] {
                    const telemetry::Rss rss = telemetry::readRss();
                    return scene_label + " cycle " +
                           std::to_string(telem.liveCycle()) +
                           ", rays retired " +
                           std::to_string(telem.liveRays()) +
                           ", rss " +
                           std::to_string(rss.current_kb / 1024) +
                           " MB";
                },
                std::cerr);
        out = sim.run(cfg);
    }
    const double report_t0 =
        telemetry_on ? telemetry::monotonicSeconds() : 0.0;

    auto write_file = [](const std::string &path, auto &&writer,
                         const char *what) {
        std::ofstream os(path);
        if (!os) {
            std::cerr << "error: cannot open " << path << " for "
                      << what << "\n";
            std::exit(1);
        }
        writer(os);
        std::cerr << "[trace] wrote " << what << " to " << path
                  << "\n";
    };
    if (!trace_path.empty())
        write_file(trace_path,
                   [&](std::ostream &os) { session.writeTrace(os); },
                   "chrome trace");
    if (!metrics_path.empty())
        write_file(
            metrics_path,
            [&](std::ostream &os) { session.writeMetricsCsv(os); },
            "metrics csv");
    if (!profile_folded_path.empty())
        write_file(profile_folded_path,
                   [&](std::ostream &os) {
                       profiler.writeFolded(os, out.scene);
                   },
                   "folded profile");
    if (!profile_json_path.empty())
        write_file(profile_json_path,
                   [&](std::ostream &os) {
                       profiler.writeJson(os, out.scene);
                   },
                   "json profile");
    if (!ray_out_path.empty()) {
        const bool csv =
            ray_out_path.size() >= 4 &&
            ray_out_path.compare(ray_out_path.size() - 4, 4,
                                 ".csv") == 0;
        write_file(ray_out_path,
                   [&](std::ostream &os) {
                       if (csv)
                           ray.writeRayStatsCsv(os);
                       else
                           ray.writeRayStatsJson(os, out.scene);
                   },
                   csv ? "ray stats csv" : "ray stats json");
    }
    if (!memscope_folded_path.empty())
        write_file(memscope_folded_path,
                   [&](std::ostream &os) {
                       mscope.writeFolded(os, out.scene);
                   },
                   "folded memscope stacks");
    if (!memscope_json_path.empty())
        write_file(memscope_json_path,
                   [&](std::ostream &os) {
                       mscope.writeJson(os, out.scene);
                       os << '\n';
                   },
                   "json memscope profile");
    if (cfg.trace_session != nullptr) {
        const auto &ts = out.traceSummary();
        std::cerr << "[trace] events recorded " << ts.events_recorded
                  << " (dropped " << ts.events_dropped
                  << "), metric samples " << ts.metric_samples
                  << " over " << ts.registered_metrics
                  << " metrics\n";
    }

    if (telemetry_on) {
        // The report phase covers the sink emission above; the
        // telemetry sink itself is written last so it can carry the
        // measurement.
        telem.recordPhase(telemetry::Phase::Report,
                          telemetry::monotonicSeconds() - report_t0);
        if (!telemetry_out_path.empty())
            write_file(telemetry_out_path,
                       [&](std::ostream &os) {
                           telem.writeJson(os, out.scene);
                       },
                       "telemetry json");
    }

    if (json) {
        core::writeJson(std::cout, out);
        return 0;
    }
    std::cout << "scene " << out.scene << " @" << out.resolution << "x"
              << out.resolution
              << (cfg.gpu.trace.coop ? " [CoopRT]" : " [baseline]")
              << "\n";
    std::cout << "  cycles:           " << out.gpu.cycles << "\n";
    std::cout << "  trace_rays:       " << out.gpu.rt.retired_warps
              << "\n";
    std::cout << "  node fetches:     "
              << out.gpu.rt.node_fetches + out.gpu.rt.leaf_fetches
              << " (steals " << out.gpu.rt.steals << ")\n";
    std::cout << "  thread util:      "
              << 100.0 * out.gpu.avg_thread_utilization << "%\n";
    std::cout << "  L1/L2 miss:       " << out.gpu.l1.missRate() << " / "
              << out.gpu.l2.missRate() << "\n";
    std::cout << "  DRAM util:        " << out.gpu.dram_utilization
              << "\n";
    std::cout << "  avg power:        " << out.power.avgWatts()
              << " W\n";
    std::cout << "  energy:           " << out.power.totalJoules()
              << " J (EDP " << out.power.edp() << ")\n";
    if (out.query.enabled) {
        std::printf("  query:            %s, %llu queries, "
                    "%llu rounds, %llu found, checksum 0x%llx\n",
                    out.query.workload.c_str(),
                    static_cast<unsigned long long>(out.query.queries),
                    static_cast<unsigned long long>(out.query.rounds),
                    static_cast<unsigned long long>(out.query.found),
                    static_cast<unsigned long long>(
                        out.query.checksum));
        if (out.query.verified)
            std::printf("  oracle:           %llu checked, "
                        "%llu mismatches (%s)\n",
                        static_cast<unsigned long long>(
                            out.query.oracle_checked),
                        static_cast<unsigned long long>(
                            out.query.oracle_mismatches),
                        out.query.oracleMatches() ? "agree"
                                                  : "DISAGREE");
    }
    if (profile) {
        const auto &p = out.gpu.prof_summary;
        std::cout << "  stall taxonomy (" << p.resident_cycles
                  << " warp-resident cycles):\n";
        for (int b = 0; b < prof::kNumBuckets; ++b) {
            const std::uint64_t c = p.buckets[std::size_t(b)];
            if (c == 0)
                continue;
            const double denom = double(p.rtStallCycles());
            std::printf("    %-16s %12llu  %5.1f%%\n",
                        prof::bucketName(prof::Bucket(b)),
                        static_cast<unsigned long long>(c),
                        denom > 0 ? 100.0 * double(c) / denom : 0.0);
        }
    }
    if (ray_trace) {
        const auto &r = out.gpu.ray_summary;
        std::cout << "  ray provenance:   " << r.stats.rays_sampled
                  << " rays over " << r.stats.warps_sampled << "/"
                  << r.stats.warps_seen << " warps, "
                  << r.stats.events_recorded << " events (dropped "
                  << r.stats.events_dropped << ")\n";
        raytrace::writeCriticalPath(std::cout, ray.criticalPath());
    }
    if (memscope_on) {
        const auto &m = out.gpu.memscope_summary;
        std::cout << "  memscope:         " << m.node_accesses
                  << " node fetches, " << m.node_bytes
                  << " B (l1 " << m.node_level[0] << " / l2 "
                  << m.node_level[1] << " / dram " << m.node_level[2]
                  << ")\n";
        std::cout << "  per-depth attribution:\n";
        for (const auto &d : m.depths)
            std::printf(
                "    depth %2d  %10llu fetches  miss %5.1f%%  "
                "avg lanes %5.2f\n",
                d.depth,
                static_cast<unsigned long long>(d.accesses),
                100.0 * d.missRate(), d.avgLanes());
        mscope.writeHotNodes(std::cout, 10);
    }
    if (telemetry_on) {
        const auto &t = telem.summary();
        std::printf("  telemetry:        sim %.3f s, %.3g cycles/s, "
                    "%.3g rays/s, rss %llu/%llu MB\n",
                    t.sim_seconds, t.cycles_per_sec, t.rays_per_sec,
                    static_cast<unsigned long long>(
                        t.rss.current_kb / 1024),
                    static_cast<unsigned long long>(
                        t.rss.peak_kb / 1024));
        std::cout << "  phases:          ";
        for (int p = 0; p < telemetry::kNumPhases; ++p) {
            const auto phase = telemetry::Phase(p);
            std::printf(" %s %.3fs",
                        telemetry::phaseName(phase),
                        t.phase(phase).seconds);
        }
        std::cout << "\n";
    }
    return 0;
}

/**
 * @file
 * Architecture design-space exploration on one scene: sweep the RT
 * warp-buffer size and the CoopRT subwarp scope (the paper's two
 * hardware cost/performance knobs, Sections 7.1 and 7.5), and print
 * performance together with the area model's cost estimates — the
 * trade-off a hardware architect would actually study.
 *
 *   ./design_space [scene-label]
 */

#include <iostream>
#include <string>

#include "core/simulation.hpp"
#include "power/area_model.hpp"
#include "stats/table.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;

    const std::string label = argc > 1 ? argv[1] : "crnvl";
    if (!scene::SceneRegistry::has(label)) {
        std::cerr << "unknown scene " << label << "\n";
        return 1;
    }
    const core::Simulation &sim = core::simulationFor(label);

    core::RunConfig cfg;
    const core::RunOutcome base = sim.run(cfg);
    std::cout << "scene " << label << ", baseline (4-entry warp "
              << "buffer, no coop): " << base.gpu.cycles
              << " cycles\n\n";

    // Sweep 1: warp-buffer entries with and without CoopRT (Fig. 13's
    // question: is cooperation cheaper than more buffering?).
    stats::Table wb({"warp buffer", "speedup w/o coop",
                     "speedup w/ coop", "extra storage (bits)"});
    for (int entries : {4, 8, 16, 32}) {
        cfg = core::RunConfig{};
        cfg.gpu.trace.warp_buffer_entries = entries;
        const auto plain = sim.run(cfg);
        cfg.gpu.trace.coop = true;
        const auto coop = sim.run(cfg);
        const std::uint64_t extra_bits =
            power::AreaModel::warpBufferBits(entries) -
            power::AreaModel::warpBufferBits(4);
        wb.row()
            .cell(std::to_string(entries))
            .cell(double(base.gpu.cycles) / double(plain.gpu.cycles), 2)
            .cell(double(base.gpu.cycles) / double(coop.gpu.cycles), 2)
            .cell(extra_bits);
    }
    wb.print(std::cout);

    // Sweep 2: subwarp scope vs area (Fig. 19 + Table 3 combined).
    std::cout << "\n";
    stats::Table sw({"subwarp", "speedup", "coop cells",
                     "coop area um^2", "% of warp buffer"});
    for (int subwarp : {4, 8, 16, 32}) {
        cfg = core::RunConfig{};
        cfg.gpu.trace.coop = true;
        cfg.gpu.trace.subwarp_size = subwarp;
        const auto run = sim.run(cfg);
        const auto area = power::AreaModel::coopLogic(subwarp);
        sw.row()
            .cell(std::to_string(subwarp))
            .cell(double(base.gpu.cycles) / double(run.gpu.cycles), 2)
            .cell(std::uint64_t(area.cells))
            .cell(area.area_um2, 0)
            .cell(100.0 * power::AreaModel::overheadFraction(subwarp),
                  2);
    }
    sw.print(std::cout);

    std::cout << "\nCoopRT at 4 warp-buffer entries vs a 32-entry "
              << "baseline buffer:\n  speedup parity at ~"
              << power::AreaModel::coopLogic(32).ffEquivalent()
              << " flip-flop equivalents instead of "
              << 28 * power::AreaModel::warpBufferEntryBits()
              << " bits of extra buffer storage.\n";
    return 0;
}

/**
 * @file
 * Visualize one warp's trace_ray execution as per-thread busy bars —
 * the paper's Fig. 11 — for the baseline RT unit and for CoopRT.
 *
 * In the baseline rendering, only the lanes that own long rays show
 * long bars; with CoopRT, idle lanes fill with stolen work and the
 * whole block shortens.
 *
 *   ./warp_timeline [scene-label] [columns]
 */

#include <cstdio>
#include <string>

#include "core/simulation.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;

    const std::string label = argc > 1 ? argv[1] : "bath";
    const int columns = argc > 2 ? std::atoi(argv[2]) : 100;
    // Skip past the coherent primary traces to a divergent late
    // bounce, like the paper's Fig. 11 warp.
    const int skip = argc > 3 ? std::atoi(argv[3]) : 40;
    if (!scene::SceneRegistry::has(label) || columns < 10) {
        std::fprintf(stderr,
                     "usage: warp_timeline [scene] [columns] [skip]\n");
        return 1;
    }
    const core::Simulation &sim = core::simulationFor(label);

    for (bool coop : {false, true}) {
        core::RunConfig cfg;
        cfg.gpu.trace.coop = coop;
        stats::TimelineRecorder rec(rtunit::kWarpSize);
        sim.run(cfg, nullptr, &rec, skip);

        std::printf("\n%s, scene %s — one trace_ray on SM 0 "
                    "('#' = non-empty traversal stack):\n",
                    coop ? "CoopRT" : "Baseline", label.c_str());
        std::printf("  span %llu cycles, average lane utilization "
                    "%.1f%%\n",
                    static_cast<unsigned long long>(rec.lastCycle() -
                                                    rec.firstCycle()),
                    100.0 * rec.averageUtilization());
        std::fputs(rec.render(columns).c_str(), stdout);
    }
    return 0;
}

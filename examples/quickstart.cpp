/**
 * @file
 * Quickstart: the minimal CoopRT library session.
 *
 * Builds one benchmark scene, runs the cycle-level GPU simulation
 * with the baseline RT unit and with CoopRT, and prints the headline
 * comparison (speedup, power, energy, EDP — the paper's Fig. 9
 * quantities for one scene).
 *
 *   ./quickstart [scene-label]     (default: crnvl)
 */

#include <cstdio>
#include <string>

#include "core/simulation.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;

    const std::string label = argc > 1 ? argv[1] : "crnvl";
    if (!scene::SceneRegistry::has(label)) {
        std::fprintf(stderr, "unknown scene '%s'; labels:", label.c_str());
        for (const auto &l : scene::SceneRegistry::allLabels())
            std::fprintf(stderr, " %s", l.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }

    // 1. A prepared simulation: scene + its 6-wide quantized BVH.
    const core::Simulation &sim = core::simulationFor(label);
    const auto tree = sim.treeStats();
    std::printf("scene %s: %zu triangles, BVH depth %d, %.1f MiB\n",
                label.c_str(), tree.triangles, tree.max_depth,
                tree.sizeMiB());

    // 2. Path-trace one frame on the baseline RT unit...
    core::RunConfig cfg; // rtx2060Bench GPU, path tracing, 16 bounces
    core::RunOutcome base = sim.run(cfg);

    // 3. ...and again with cooperative BVH traversal enabled.
    cfg.gpu.trace.coop = true;
    core::RunOutcome coop = sim.run(cfg);

    std::printf("baseline: %12llu cycles  (%.1f%% RT-unit thread "
                "utilization)\n",
                static_cast<unsigned long long>(base.gpu.cycles),
                100.0 * base.gpu.avg_thread_utilization);
    std::printf("CoopRT:   %12llu cycles  (%.1f%% utilization, "
                "%llu LBU steals)\n",
                static_cast<unsigned long long>(coop.gpu.cycles),
                100.0 * coop.gpu.avg_thread_utilization,
                static_cast<unsigned long long>(coop.gpu.rt.steals));

    const double speedup =
        double(base.gpu.cycles) / double(coop.gpu.cycles);
    std::printf("speedup: %.2fx   power: %.2fx   energy: %.2fx   "
                "EDP improvement: %.2fx\n",
                speedup,
                coop.power.avgWatts() / base.power.avgWatts(),
                coop.power.totalJoules() / base.power.totalJoules(),
                base.power.edp() / coop.power.edp());
    return 0;
}

/**
 * @file
 * diff_cli — compare schema-stamped run reports with the
 * `cooprt::diff` attribution engine (DESIGN.md section 18).
 *
 *     # two report files (simulate_cli --json > file)
 *     diff_cli base.report.json coop.report.json
 *
 *     # whole directories (campaign_cli --report-dir)
 *     diff_cli runs/baseline/ runs/candidate/
 *
 *     # machine-readable / markdown exports
 *     diff_cli --json - base.json other.json
 *     diff_cli --markdown diff.md base.json other.json
 *
 * Two reports are comparable when their run keys agree on scene,
 * shader and resolution; differing fingerprints are the normal case
 * (the configuration change is what is being measured). A key
 * mismatch, unreadable input or a missing baseline exits 2, so
 * scripted gates can distinguish "regressed" from "not comparable".
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/build_info.hpp"
#include "diff/diff.hpp"

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: diff_cli [options] <base> <other> [<other>...]\n"
        "\n"
        "  <base>/<other>   run-report JSON files (simulate_cli\n"
        "                   --json, campaign_cli --report-dir) or\n"
        "                   two directories of *.report.json\n"
        "\n"
        "options:\n"
        "  --json FILE|-    write the diff(s) as JSON lines\n"
        "  --markdown FILE  write a markdown export\n"
        "  --quiet          suppress the stdout tables\n"
        "  --version        print build provenance and exit\n"
        "\n"
        "exit: 0 = diffed; 2 = bad usage, unreadable input or\n"
        "      run-key mismatch\n");
    return 2;
}

void
printVersion(std::ostream &os)
{
    os << "cooprt diff_cli\n"
       << "  revision:   " << cooprt::build::kGitRevision
       << (cooprt::build::kGitDirty ? " (dirty)" : "") << "\n"
       << "  compiler:   " << cooprt::build::kCompiler << "\n"
       << "  build type: " << cooprt::build::kBuildType << "\n"
       << "  check:      "
       << (cooprt::build::kCheckEnabled ? "on" : "off") << "\n"
       << "  schema:     v" << cooprt::trace::kSchemaVersion << "\n";
}

/** Report-file pair to diff (dir mode pairs files by name). */
struct Pair
{
    std::string base;
    std::string other;
};

bool
collectPairs(const std::string &base, const std::string &other,
             std::vector<Pair> *pairs)
{
    namespace fs = std::filesystem;
    const bool base_dir = fs::is_directory(base);
    const bool other_dir = fs::is_directory(other);
    if (!fs::exists(base)) {
        std::fprintf(stderr, "[diff] no such input: %s\n",
                     base.c_str());
        return false;
    }
    if (!fs::exists(other)) {
        std::fprintf(stderr, "[diff] no such input: %s\n",
                     other.c_str());
        return false;
    }
    if (base_dir != other_dir) {
        std::fprintf(stderr,
                     "[diff] cannot compare a file with a directory "
                     "(%s vs %s)\n",
                     base.c_str(), other.c_str());
        return false;
    }
    if (!base_dir) {
        pairs->push_back({base, other});
        return true;
    }
    // Directory mode: align *.json by file name, sorted so output
    // order never depends on directory iteration order.
    std::vector<std::string> names;
    for (const auto &entry : fs::directory_iterator(base)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name.size() >= 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    if (names.empty()) {
        std::fprintf(stderr, "[diff] no *.json reports under %s\n",
                     base.c_str());
        return false;
    }
    bool ok = true;
    for (const std::string &name : names) {
        const std::string counterpart = other + "/" + name;
        if (!fs::exists(counterpart)) {
            std::fprintf(stderr,
                         "[diff] %s has no counterpart under %s\n",
                         name.c_str(), other.c_str());
            ok = false;
            continue;
        }
        pairs->push_back({base + "/" + name, counterpart});
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_out;
    std::string markdown_out;
    bool quiet = false;
    std::vector<std::string> inputs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "[diff] %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--json")
            json_out = next("--json");
        else if (arg == "--markdown")
            markdown_out = next("--markdown");
        else if (arg == "--quiet")
            quiet = true;
        else if (arg == "--version") {
            printVersion(std::cout);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "[diff] unknown flag '%s'\n",
                         arg.c_str());
            return usage();
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.size() < 2)
        return usage();
    if (inputs.size() > 2 &&
        std::filesystem::is_directory(inputs[0])) {
        std::fprintf(stderr,
                     "[diff] directory mode takes exactly two "
                     "directories\n");
        return 2;
    }

    // N-way: the first input anchors, every later one diffs against
    // it. Directory inputs expand to name-aligned file pairs.
    std::vector<Pair> pairs;
    bool inputs_ok = true;
    for (std::size_t i = 1; i < inputs.size(); ++i)
        inputs_ok &= collectPairs(inputs[0], inputs[i], &pairs);
    if (!inputs_ok || pairs.empty())
        return 2;

    std::ofstream json_file;
    std::ostream *json_os = nullptr;
    if (!json_out.empty()) {
        if (json_out == "-") {
            json_os = &std::cout;
            quiet = true; // keep stdout pure JSON lines
        } else {
            json_file.open(json_out);
            if (!json_file) {
                std::fprintf(stderr, "[diff] cannot write %s\n",
                             json_out.c_str());
                return 2;
            }
            json_os = &json_file;
        }
    }
    std::ofstream md_file;
    if (!markdown_out.empty()) {
        md_file.open(markdown_out);
        if (!md_file) {
            std::fprintf(stderr, "[diff] cannot write %s\n",
                         markdown_out.c_str());
            return 2;
        }
    }

    cooprt::diff::Differ differ;
    bool any_mismatch = false;
    bool first = true;
    for (const Pair &pair : pairs) {
        cooprt::diff::RunRecord base;
        cooprt::diff::RunRecord other;
        std::string error;
        if (!cooprt::diff::loadReportFile(pair.base, &base,
                                          &error) ||
            !cooprt::diff::loadReportFile(pair.other, &other,
                                          &error)) {
            std::fprintf(stderr, "[diff] %s\n", error.c_str());
            return 2;
        }
        cooprt::diff::RunDiff d;
        if (!differ.compare(base, other, &d, &error)) {
            std::fprintf(stderr, "[diff] run-key mismatch: %s\n",
                         error.c_str());
            any_mismatch = true;
            continue;
        }
        if (!quiet) {
            if (first) {
                printVersion(std::cout);
                std::cout << "\n";
            } else {
                std::cout << "\n";
            }
            cooprt::diff::writeText(std::cout, d);
        }
        if (json_os != nullptr)
            cooprt::diff::writeJson(*json_os, d);
        if (md_file.is_open()) {
            if (!first)
                md_file << "\n";
            cooprt::diff::writeMarkdown(md_file, d);
        }
        first = false;
    }
    return any_mismatch ? 2 : 0;
}

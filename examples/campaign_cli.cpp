/**
 * @file
 * Campaign driver over the `cooprt::exec` engine: expand a
 * scenes × configs matrix into jobs, run them across the
 * work-stealing pool, and emit a summary table plus optional
 * JSON-lines results. Parallel output is byte-identical to
 * `--jobs 1` (see DESIGN.md "Campaign engine").
 *
 *   ./campaign_cli --matrix wknd,ship x base,coop --jobs 8
 *   ./campaign_cli --scenes fox --configs base,coop,sw8 --json-out r.ndjson
 *   ./campaign_cli --configs base,coop --retries 1 --timeout-s 600
 *
 * Flags:
 *   --matrix S x C        scene list and config list in one flag
 *                         (either side may be "all"); equivalent to
 *                         --scenes S --configs C
 *   --scenes a,b,c        scene axis (default: all 15 rendering
 *                         scenes; query shaders default to their
 *                         matching query scenes instead — point
 *                         clouds for knn/radius, AMR grids for
 *                         contain — and "all" resolves the same way)
 *   --configs c1,c2       config axis (default: base,coop); see
 *                         --list-configs for the named presets
 *   --shader pt|ao|sh|knn|radius|contain
 *                         workload applied to every config (query
 *                         workloads: see src/query/)
 *   --resolution N        square frame size (default: scene's bench)
 *   --jobs N              worker threads (default: hardware
 *                         concurrency)
 *   --retries K           extra attempts after a thrown job failure
 *   --timeout-s T         per-job wall-clock budget in seconds
 *   --json-out FILE       append one JSON line per job; "-" writes
 *                         the lines to stdout (and the summary table
 *                         moves to stderr, so stdout stays pure JSON)
 *   --report-dir DIR      per-job schema-stamped run report
 *                         (`<tag>.report.json`) — the files
 *                         diff_cli and --diff-baseline consume;
 *                         byte-identical across --jobs counts
 *   --metrics-dir DIR     per-job metrics CSV, named by job tag
 *   --profile-dir DIR     per-job folded + JSON stall profiles
 *   --ray-dir DIR         per-job ray-provenance stats JSON, named
 *                         by job tag (see DESIGN.md "Ray provenance")
 *   --ray-sample-k N      rays sampled per warp for --ray-dir
 *                         recorders (default 4)
 *   --memscope-dir DIR    per-job memscope JSON + folded node
 *                         heatmaps, named by job tag (see DESIGN.md
 *                         "Memory & BVH-topology profiling")
 *   --csv                 CSV summary table
 *   --list-configs        list named configs and exit
 *   --version             print build provenance (git revision,
 *                         compiler, COOPRT_CHECK) and exit
 *
 * Differential attribution (DESIGN.md section 18 / src/diff/):
 *   --diff-baseline DIR   diff every successful job against the
 *                         matching `<tag>.report.json` under DIR (a
 *                         previous run's --report-dir); requires
 *                         --diff-out. A missing DIR exits 2 before
 *                         any job runs.
 *   --diff-out FILE       where the per-job diff documents go, one
 *                         JSON line per job in submission order —
 *                         byte-identical across --jobs counts.
 *                         "-" writes them to stdout (the summary
 *                         table then moves to stderr)
 *
 * Host-side telemetry (DESIGN.md "Telemetry" / src/telemetry/):
 *   --telemetry-dir DIR   per-job telemetry JSON (phase spans,
 *                         throughput, RSS), named by job tag;
 *                         deterministic fields are byte-identical
 *                         across --jobs counts, wall-clock fields
 *                         live in each sink's "host" object
 *   --telemetry-log FILE  campaign lifecycle event log, one JSON
 *                         line per job start/retry/timeout/finish
 *                         plus campaign begin/end
 *   --heartbeat-s S       live stderr status line every S seconds
 *                         (done/failed/running jobs, steals, EWMA
 *                         job duration, ETA, RSS); S must be
 *                         positive
 *   --prom-out FILE       Prometheus text-exposition snapshot of the
 *                         campaign counters, rewritten atomically on
 *                         every heartbeat (or once at exit without
 *                         --heartbeat-s)
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "core/build_info.hpp"
#include "diff/diff.hpp"
#include "exec/exec.hpp"
#include "stats/table.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace cooprt;

/** Named configuration presets for the config axis. */
struct NamedConfig
{
    const char *name;
    const char *what;
    void (*apply)(core::RunConfig &);
};

const NamedConfig kConfigs[] = {
    {"base", "baseline RT unit", [](core::RunConfig &) {}},
    {"coop", "CoopRT",
     [](core::RunConfig &c) { c.gpu.trace.coop = true; }},
    {"sw4", "CoopRT, subwarp 4",
     [](core::RunConfig &c) {
         c.gpu.trace.coop = true;
         c.gpu.trace.subwarp_size = 4;
     }},
    {"sw8", "CoopRT, subwarp 8",
     [](core::RunConfig &c) {
         c.gpu.trace.coop = true;
         c.gpu.trace.subwarp_size = 8;
     }},
    {"sw16", "CoopRT, subwarp 16",
     [](core::RunConfig &c) {
         c.gpu.trace.coop = true;
         c.gpu.trace.subwarp_size = 16;
     }},
    {"prefetch", "treelet-style child prefetch",
     [](core::RunConfig &c) { c.gpu.trace.child_prefetch = true; }},
    {"predictor", "intersection predictor",
     [](core::RunConfig &c) {
         c.gpu.trace.intersection_predictor = true;
     }},
    {"bfs", "BFS traversal order",
     [](core::RunConfig &c) {
         c.gpu.trace.order = rtunit::TraversalOrder::Bfs;
     }},
    {"mobile", "mobile GPU, baseline",
     [](core::RunConfig &c) { c.gpu = gpu::GpuConfig::mobileBench(); }},
    {"mobile-coop", "mobile GPU, CoopRT",
     [](core::RunConfig &c) {
         c.gpu = gpu::GpuConfig::mobileBench();
         c.gpu.trace.coop = true;
     }},
};

const NamedConfig *
findConfig(const std::string &name)
{
    for (const auto &c : kConfigs)
        if (name == c.name)
            return &c;
    return nullptr;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string tok;
    while (std::getline(ss, tok, ','))
        if (!tok.empty())
            out.push_back(tok);
    return out;
}

int
usage(const std::string &msg = {})
{
    if (!msg.empty())
        std::cerr << "error: " << msg << "\n";
    std::cerr << "see the header of campaign_cli.cpp or run --help\n";
    return 2;
}

void
printVersion(std::ostream &os)
{
    os << "cooprt campaign_cli\n"
       << "  revision:   " << cooprt::build::kGitRevision
       << (cooprt::build::kGitDirty ? " (dirty)" : "") << "\n"
       << "  compiler:   " << cooprt::build::kCompiler << "\n"
       << "  build type: " << cooprt::build::kBuildType << "\n"
       << "  check:      "
       << (cooprt::build::kCheckEnabled ? "on" : "off") << "\n"
       << "  schema:     v" << cooprt::trace::kSchemaVersion << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> scenes =
        scene::SceneRegistry::allLabels();
    bool scenes_explicit = false;
    std::vector<std::string> config_names = {"base", "coop"};
    core::ShaderKind shader = core::ShaderKind::PathTracing;
    int resolution = 0;
    exec::CampaignOptions copt;
    bool csv = false;
    std::string json_out;
    std::string diff_baseline;
    std::string diff_out;
    std::string telemetry_log;
    std::string prom_out;
    double heartbeat_s = 0.0;

    auto set_scenes = [&](const std::string &list) {
        if (list == "all")
            return; // keeps the shader-dependent default axis
        scenes_explicit = true;
        scenes = splitList(list);
        for (const auto &s : scenes)
            if (!scene::SceneRegistry::has(s)) {
                std::cerr << "error: unknown scene '" << s
                          << "' (run simulate_cli --list)\n";
                std::exit(2);
            }
        if (scenes.empty()) {
            std::cerr << "error: empty scene list\n";
            std::exit(2);
        }
    };
    auto set_configs = [&](const std::string &list) {
        if (list == "all") {
            config_names.clear();
            for (const auto &c : kConfigs)
                config_names.push_back(c.name);
            return;
        }
        config_names = splitList(list);
        for (const auto &c : config_names)
            if (findConfig(c) == nullptr) {
                std::cerr << "error: unknown config '" << c
                          << "' (run --list-configs)\n";
                std::exit(2);
            }
        if (config_names.empty()) {
            std::cerr << "error: empty config list\n";
            std::exit(2);
        }
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            std::cout
                << "usage: campaign_cli [--matrix S x C]\n"
                   "  [--scenes a,b,c] [--configs c1,c2]\n"
                   "  [--shader pt|ao|sh|knn|radius|contain]\n"
                   "  [--resolution N]\n"
                   "  [--jobs N] [--retries K] [--timeout-s T]\n"
                   "  [--json-out FILE] [--report-dir DIR]\n"
                   "  [--diff-baseline DIR --diff-out FILE]\n"
                   "  [--metrics-dir DIR]\n"
                   "  [--profile-dir DIR] [--ray-dir DIR]\n"
                   "  [--ray-sample-k N] [--memscope-dir DIR]\n"
                   "  [--telemetry-dir DIR] [--telemetry-log FILE]\n"
                   "  [--heartbeat-s S] [--prom-out FILE]\n"
                   "  [--csv] [--list-configs] [--version]\n";
            return 0;
        } else if (a == "--version") {
            printVersion(std::cout);
            return 0;
        } else if (a == "--list-configs") {
            for (const auto &c : kConfigs)
                std::printf("%-12s %s\n", c.name, c.what);
            return 0;
        } else if (a == "--matrix") {
            // "--matrix scenes x configs" (x or ×), e.g.
            // "--matrix wknd,ship x base,coop".
            const std::string s = next("--matrix");
            if (i + 2 < argc && (std::string(argv[i + 1]) == "x" ||
                                 std::string(argv[i + 1]) == "×")) {
                set_scenes(s);
                ++i; // the separator
                set_configs(next("--matrix"));
            } else {
                return usage("--matrix wants 'SCENES x CONFIGS'");
            }
        } else if (a == "--scenes") {
            set_scenes(next("--scenes"));
        } else if (a == "--configs") {
            set_configs(next("--configs"));
        } else if (a == "--shader") {
            const std::string s = next("--shader");
            if (s == "pt")
                shader = core::ShaderKind::PathTracing;
            else if (s == "ao")
                shader = core::ShaderKind::AmbientOcclusion;
            else if (s == "sh")
                shader = core::ShaderKind::Shadow;
            else if (s == "knn")
                shader = core::ShaderKind::QueryKnn;
            else if (s == "radius")
                shader = core::ShaderKind::QueryRadius;
            else if (s == "contain")
                shader = core::ShaderKind::QueryContain;
            else
                return usage(
                    "unknown shader (pt|ao|sh|knn|radius|contain)");
        } else if (a == "--resolution") {
            resolution = std::atoi(next("--resolution"));
        } else if (a == "--jobs") {
            copt.jobs = std::atoi(next("--jobs"));
        } else if (a == "--retries") {
            copt.retries = std::atoi(next("--retries"));
        } else if (a == "--timeout-s") {
            copt.timeout_s = std::atof(next("--timeout-s"));
        } else if (a == "--json-out") {
            json_out = next("--json-out");
        } else if (a == "--report-dir") {
            copt.report_dir = next("--report-dir");
        } else if (a == "--diff-baseline") {
            diff_baseline = next("--diff-baseline");
        } else if (a == "--diff-out") {
            diff_out = next("--diff-out");
        } else if (a == "--metrics-dir") {
            copt.metrics_dir = next("--metrics-dir");
        } else if (a == "--profile-dir") {
            copt.profile_dir = next("--profile-dir");
        } else if (a == "--ray-dir") {
            copt.raytrace_dir = next("--ray-dir");
        } else if (a == "--memscope-dir") {
            copt.memscope_dir = next("--memscope-dir");
        } else if (a == "--ray-sample-k") {
            copt.ray_config.sample_k =
                std::atoi(next("--ray-sample-k"));
            if (copt.ray_config.sample_k <= 0)
                return usage("--ray-sample-k wants a positive value");
        } else if (a == "--telemetry-dir") {
            copt.telemetry_dir = next("--telemetry-dir");
        } else if (a == "--telemetry-log") {
            telemetry_log = next("--telemetry-log");
        } else if (a == "--heartbeat-s") {
            heartbeat_s = std::atof(next("--heartbeat-s"));
            if (heartbeat_s <= 0.0)
                return usage("--heartbeat-s wants a positive value");
        } else if (a == "--prom-out") {
            prom_out = next("--prom-out");
        } else if (a == "--csv") {
            csv = true;
        } else {
            return usage("unknown flag " + a);
        }
    }

    // The diff sink is a gate: refuse to start a campaign whose
    // comparison target cannot exist, so "regressed" (exit 1 from a
    // downstream gate) stays distinguishable from "not comparable"
    // (exit 2 here, before any job has run).
    if (diff_baseline.empty() != diff_out.empty())
        return usage("--diff-baseline and --diff-out go together");
    if (!diff_baseline.empty() &&
        !std::filesystem::is_directory(diff_baseline)) {
        std::cerr << "error: --diff-baseline " << diff_baseline
                  << " is not a directory (expected a previous "
                     "run's --report-dir)\n";
        return 2;
    }

    // Query shaders only run on query scenes, so when the scene axis
    // was left at its default (or given as "all"), resolve it to the
    // query scenes whose kind matches the workload.
    if (core::isQueryShader(shader) && !scenes_explicit) {
        const scene::SceneKind need =
            shader == core::ShaderKind::QueryContain
                ? scene::SceneKind::AmrCells
                : scene::SceneKind::PointCloud;
        scenes.clear();
        for (const auto &l : scene::SceneRegistry::queryLabels())
            if (scene::SceneRegistry::get(l).kind == need)
                scenes.push_back(l);
    }

    // The campaign's own observability: exec.* counters live in this
    // session's registry and are printed with the summary. The diff
    // engine adds its diff.* probes when --diff-baseline is active;
    // the Differ outlives the end-of-run registry snapshot below.
    trace::Session session;
    copt.session = &session;
    diff::Differ differ;
    if (!diff_baseline.empty())
        differ.registerMetrics(session.registry());

    // Campaign telemetry: the event log streams lifecycle events as
    // JSON lines, the monitor aggregates EWMA/ETA and serves the
    // heartbeat and Prometheus snapshots.
    std::ofstream telemetry_log_os;
    if (!telemetry_log.empty()) {
        telemetry_log_os.open(telemetry_log);
        if (!telemetry_log_os) {
            std::cerr << "error: cannot open " << telemetry_log
                      << " for the telemetry event log\n";
            return 1;
        }
    }
    telemetry::EventLog event_log(
        telemetry_log_os.is_open() ? &telemetry_log_os : nullptr);
    if (event_log.enabled())
        copt.event_log = &event_log;
    telemetry::CampaignMonitor monitor;
    const bool monitor_on = heartbeat_s > 0.0 || !prom_out.empty();
    if (monitor_on) {
        copt.monitor = &monitor;
        monitor.registerProbes(session.registry(), &monitor);
    }

    const std::size_t total = scenes.size() * config_names.size();
    std::atomic<std::size_t> completed{0};
    copt.on_job_done = [&](const exec::JobResult &r) {
        std::fprintf(stderr, "[campaign] %s %s [%zu/%zu]%s\n",
                     r.tag.c_str(), r.ok ? "ok" : "FAILED",
                     ++completed, total,
                     r.attempts > 1
                         ? (" (attempts " + std::to_string(r.attempts) +
                            ")")
                               .c_str()
                         : "");
    };

    exec::Campaign campaign(copt);
    for (const auto &label : scenes)
        for (const auto &cname : config_names) {
            core::RunConfig cfg;
            findConfig(cname)->apply(cfg);
            cfg.shader = shader;
            cfg.resolution = resolution;
            campaign.add(
                exec::Job{label, cfg, label + "/" + cname});
        }

    std::vector<exec::JobResult> results;
    {
        // Heartbeat scope: lives exactly as long as the run. Each
        // beat prints the monitor's status line to stderr and, when
        // requested, refreshes the Prometheus snapshot atomically.
        std::optional<telemetry::Heartbeat> heartbeat;
        if (heartbeat_s > 0.0)
            heartbeat.emplace(
                heartbeat_s,
                [&] {
                    const telemetry::CampaignCounters c =
                        exec::countersSnapshot(campaign.stats());
                    if (!prom_out.empty())
                        monitor.writePrometheus(prom_out, c);
                    return monitor.statusLine(c);
                },
                std::cerr);
        results = campaign.run();
    }
    if (!prom_out.empty())
        monitor.writePrometheus(
            prom_out, exec::countersSnapshot(campaign.stats()));

    // "--json-out -" streams the JSON lines to stdout; the summary
    // table then moves to stderr so stdout stays pure JSON.
    const bool json_to_stdout = json_out == "-";
    if (!json_out.empty()) {
        if (json_to_stdout) {
            for (const auto &r : results)
                exec::writeJsonLine(std::cout, r);
        } else {
            std::ofstream os(json_out, std::ios::app);
            if (!os) {
                std::cerr << "error: cannot append to " << json_out
                          << "\n";
                return 1;
            }
            for (const auto &r : results)
                exec::writeJsonLine(os, r);
        }
    }

    // Differential attribution sink: each successful job diffed
    // against the matching report under --diff-baseline, one JSON
    // line per job. Results are walked in submission order, so the
    // sink is byte-identical between --jobs 1 and --jobs N.
    const bool diff_to_stdout = diff_out == "-";
    if (!diff_baseline.empty()) {
        std::ofstream diff_file;
        std::ostream *diff_os = &std::cout;
        if (!diff_to_stdout) {
            diff_file.open(diff_out);
            if (!diff_file) {
                std::cerr << "error: cannot write " << diff_out
                          << "\n";
                return 2;
            }
            diff_os = &diff_file;
        }
        for (const auto &r : results) {
            if (!r.ok)
                continue;
            const std::string base_path =
                diff_baseline + "/" + exec::sanitizeTag(r.tag) +
                ".report.json";
            diff::RunRecord base;
            std::string error;
            if (!diff::loadReportFile(base_path, &base, &error)) {
                std::fprintf(stderr,
                             "[campaign] diff: no baseline for %s "
                             "(%s)\n",
                             r.tag.c_str(), error.c_str());
                continue;
            }
            diff::RunRecord other = diff::recordFromOutcome(r.outcome);
            other.source = r.tag;
            diff::RunDiff d;
            if (!differ.compare(base, other, &d, &error)) {
                std::fprintf(stderr,
                             "[campaign] diff: key mismatch for %s: "
                             "%s\n",
                             r.tag.c_str(), error.c_str());
                continue;
            }
            diff::writeJson(*diff_os, d);
        }
    }

    // Summary table: cycles per scene × config, plus speedup columns
    // relative to the first config when there is more than one.
    std::vector<std::string> headers = {"scene"};
    for (const auto &c : config_names)
        headers.push_back(c + " cycles");
    for (std::size_t c = 1; c < config_names.size(); ++c)
        headers.push_back(config_names[c] + " speedup");
    stats::Table t(headers);
    const std::size_t ncfg = config_names.size();
    for (std::size_t s = 0; s < scenes.size(); ++s) {
        auto row = &t.row().cell(scenes[s]);
        const exec::JobResult &first = results[s * ncfg];
        for (std::size_t c = 0; c < ncfg; ++c) {
            const exec::JobResult &r = results[s * ncfg + c];
            if (r.ok)
                row->cell(double(r.outcome.gpu.cycles), 0);
            else
                row->cell(std::string("FAILED(") +
                          exec::failureKindName(r.failure->kind) +
                          ")");
        }
        for (std::size_t c = 1; c < ncfg; ++c) {
            const exec::JobResult &r = results[s * ncfg + c];
            if (first.ok && r.ok && r.outcome.gpu.cycles > 0)
                row->cell(double(first.outcome.gpu.cycles) /
                              double(r.outcome.gpu.cycles),
                          2);
            else
                row->cell("-");
        }
    }
    std::ostream &table_os =
        (json_to_stdout || diff_to_stdout) ? std::cerr : std::cout;
    if (csv)
        t.printCsv(table_os);
    else
        t.print(table_os);

    const auto &st = campaign.stats();
    std::fprintf(stderr,
                 "[campaign] %llu ok, %llu failed (%llu timeouts), "
                 "%llu retried, %llu steals, %.2f s wall\n",
                 (unsigned long long)st.done.load(),
                 (unsigned long long)st.failed.load(),
                 (unsigned long long)st.timed_out.load(),
                 (unsigned long long)st.retried.load(),
                 (unsigned long long)st.steals.load(),
                 campaign.wallSeconds());
    for (const auto &sample : session.registry().snapshot("exec.*"))
        std::fprintf(stderr, "[campaign] %s = %.0f\n",
                     sample.name.c_str(), sample.value);
    if (!diff_baseline.empty())
        for (const auto &sample :
             session.registry().snapshot("diff.*"))
            std::fprintf(stderr, "[campaign] %s = %.0f\n",
                         sample.name.c_str(), sample.value);
    if (monitor_on)
        for (const auto &sample :
             session.registry().snapshot("telemetry.*"))
            std::fprintf(stderr, "[campaign] %s = %.2f\n",
                         sample.name.c_str(), sample.value);

    return st.failed.load() == 0 ? 0 : 1;
}

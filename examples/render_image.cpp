/**
 * @file
 * Render a benchmark scene to a PPM image — twice.
 *
 * First with the functional reference path tracer, then through the
 * cycle-level GPU simulation with CoopRT enabled, demonstrating the
 * paper's functional-correctness property end to end: the two images
 * (and a baseline RT-unit render) are bit-identical, because
 * cooperative traversal never changes which primitive a ray hits.
 *
 *   ./render_image [scene-label] [resolution] [spp]
 */

#include <cmath>
#include <cstdio>
#include <string>

#include "core/simulation.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;

    const std::string label = argc > 1 ? argv[1] : "spnza";
    const int res = argc > 2 ? std::atoi(argv[2]) : 96;
    const int spp = argc > 3 ? std::atoi(argv[3]) : 4;
    if (!scene::SceneRegistry::has(label) || res <= 0 || spp <= 0) {
        std::fprintf(stderr,
                     "usage: render_image [scene] [resolution] [spp]\n");
        return 1;
    }

    const core::Simulation &sim = core::simulationFor(label);

    // Functional reference render (multi-sample for a cleaner image).
    shaders::Film reference(res, res);
    shaders::PtParams params;
    renderReference(sim.scene(), sim.bvh(), reference, spp, params);
    const std::string ref_path = label + "_reference.ppm";
    reference.writePpm(ref_path);
    std::printf("wrote %s (avg luminance %.3f)\n", ref_path.c_str(),
                reference.averageLuminance());

    // The same frame executed instruction-by-instruction in the
    // timing simulator with CoopRT on (1 spp).
    core::RunConfig cfg;
    cfg.resolution = res;
    cfg.gpu.trace.coop = true;
    shaders::Film simulated(res, res);
    core::RunOutcome out = sim.run(cfg, &simulated);
    const std::string sim_path = label + "_cooprt.ppm";
    simulated.writePpm(sim_path);
    std::printf("wrote %s (simulated %llu cycles, %.2f ms on a "
                "1.365 GHz GPU)\n",
                sim_path.c_str(),
                static_cast<unsigned long long>(out.gpu.cycles),
                out.power.seconds * 1e3);

    // Cross-check: the 1-spp reference must match the timing render
    // exactly (same RNG streams, same traversal results).
    shaders::Film ref1(res, res);
    renderReference(sim.scene(), sim.bvh(), ref1, 1, params);
    double max_diff = 0.0;
    for (int y = 0; y < res; ++y)
        for (int x = 0; x < res; ++x) {
            const auto d = ref1.pixel(x, y) - simulated.pixel(x, y);
            max_diff = std::max({max_diff, std::abs(double(d.x)),
                                 std::abs(double(d.y)),
                                 std::abs(double(d.z))});
        }
    std::printf("max |reference - simulated| over all pixels: %g %s\n",
                max_diff, max_diff < 1e-5 ? "(identical)" : "(DIFFERS!)");
    return max_diff < 1e-5 ? 0 : 2;
}

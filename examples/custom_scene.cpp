/**
 * @file
 * Bring-your-own-geometry: build a scene through the public API
 * (procedural primitives, or an OBJ file), and evaluate how much
 * CoopRT would help a GPU tracing it.
 *
 *   ./custom_scene                 (built-in demo geometry)
 *   ./custom_scene model.obj       (your mesh on a ground plane)
 */

#include <cstdio>
#include <string>

#include "core/simulation.hpp"
#include "scene/obj_io.hpp"
#include "scene/primitives.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;

    // Assemble a scene from scratch with the public scene API.
    scene::Scene sc;
    sc.name = "custom";
    const auto gray = sc.materials.add({{0.7f, 0.7f, 0.7f}, 0, 0.95f});
    const auto ground =
        sc.materials.add({{0.45f, 0.4f, 0.35f}, 0, 0.9f});
    const auto light = sc.materials.add({{1, 1, 1}, 8.0f, 1.0f});

    if (argc > 1) {
        const std::size_t n =
            scene::loadObjFile(argv[1], sc.mesh, gray);
        std::printf("loaded %zu triangles from %s\n", n, argv[1]);
    } else {
        // Demo: a mirror-ish sphere grid over a checker of boxes.
        for (int i = 0; i < 5; ++i)
            for (int j = 0; j < 5; ++j) {
                geom::Vec3 c{-4.0f + 2.0f * i, 1.0f, -4.0f + 2.0f * j};
                if ((i + j) % 2)
                    addSphere(sc.mesh, c, 0.7f, 16, gray);
                else
                    addBox(sc.mesh, c - geom::Vec3(0.6f, 1.0f, 0.6f),
                           c + geom::Vec3(0.6f, 0.2f, 0.6f), gray);
            }
        std::printf("built demo geometry: %zu triangles\n",
                    sc.mesh.size());
    }

    const auto b = sc.mesh.bounds();
    const geom::Vec3 e = b.extent();
    addQuad(sc.mesh, {b.lo.x - e.x, b.lo.y, b.lo.z - e.z},
            {3 * e.x, 0, 0}, {0, 0, 3 * e.z}, ground);
    addQuad(sc.mesh, {b.centroid().x, b.hi.y + e.y, b.centroid().z},
            {0.2f * e.x, 0, 0}, {0, 0, 0.2f * e.z}, light);
    sc.sky_emission = 1.0f;
    sc.camera = scene::Camera(b.centroid() + e * 1.2f, b.centroid(),
                              {0, 1, 0}, 45.0f);
    sc.default_resolution = 48;

    // Build the BVH and report what the hardware sees.
    core::Simulation sim(sc);
    const auto tree = sim.treeStats();
    std::printf("BVH: %zu internal nodes, depth %d, %.2f MiB\n",
                tree.internal_nodes, tree.max_depth, tree.sizeMiB());

    // Evaluate the CoopRT benefit for this geometry.
    core::RunConfig cfg;
    const auto base = sim.run(cfg);
    cfg.gpu.trace.coop = true;
    const auto coop = sim.run(cfg);
    std::printf("baseline %llu cycles -> CoopRT %llu cycles: "
                "%.2fx speedup (utilization %.0f%% -> %.0f%%)\n",
                static_cast<unsigned long long>(base.gpu.cycles),
                static_cast<unsigned long long>(coop.gpu.cycles),
                double(base.gpu.cycles) / double(coop.gpu.cycles),
                100.0 * base.gpu.avg_thread_utilization,
                100.0 * coop.gpu.avg_thread_utilization);

    // Round-trip the generated geometry for external viewers.
    scene::saveObjFile("custom_scene.obj", sc.mesh);
    std::printf("wrote custom_scene.obj\n");
    return 0;
}

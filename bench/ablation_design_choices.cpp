/**
 * @file
 * Ablations of the CoopRT design choices the paper argues about in
 * prose (beyond its numbered figures):
 *
 *  - LBU bandwidth: 1 node moved per cycle (the paper's design) vs 2
 *    and 4 — Section 5.1 sets the push count to 1 per cycle;
 *  - steal position: TOS (paper) vs bottom-of-stack — Section 4.2
 *    claims "the degree of parallelization is not affected by which
 *    address is taken by a helper thread";
 *  - helper re-targeting: Vulkan-sim-like eager (default) vs
 *    conservative helpers that wait for their last fetch;
 *  - traversal order: DFS (paper) vs the BFS generalization of
 *    Section 4.2, with front-of-queue stealing.
 */

#include "bench_util.hpp"

namespace {

struct Variant
{
    const char *name;
    void (*apply)(cooprt::core::RunConfig &);
};

const Variant kVariants[] = {
    {"coop (paper)",
     [](cooprt::core::RunConfig &c) { c.gpu.trace.coop = true; }},
    {"lbu 2/cycle",
     [](cooprt::core::RunConfig &c) {
         c.gpu.trace.coop = true;
         c.gpu.trace.lbu_moves_per_cycle = 2;
     }},
    {"lbu 4/cycle",
     [](cooprt::core::RunConfig &c) {
         c.gpu.trace.coop = true;
         c.gpu.trace.lbu_moves_per_cycle = 4;
     }},
    {"steal bottom",
     [](cooprt::core::RunConfig &c) {
         c.gpu.trace.coop = true;
         c.gpu.trace.steal_from_bottom = true;
     }},
    {"eager helpers",
     [](cooprt::core::RunConfig &c) {
         c.gpu.trace.coop = true;
         c.gpu.trace.helper_requires_idle = false;
     }},
    {"bfs coop",
     [](cooprt::core::RunConfig &c) {
         c.gpu.trace.coop = true;
         c.gpu.trace.order = cooprt::rtunit::TraversalOrder::Bfs;
     }},
    {"gto sched",
     [](cooprt::core::RunConfig &c) {
         c.gpu.trace.coop = true;
         c.gpu.trace.sched =
             cooprt::rtunit::WarpSchedPolicy::GreedyThenOldest;
     }},
    {"oldest sched",
     [](cooprt::core::RunConfig &c) {
         c.gpu.trace.coop = true;
         c.gpu.trace.sched =
             cooprt::rtunit::WarpSchedPolicy::OldestFirst;
     }},
    {"sectored L1",
     [](cooprt::core::RunConfig &c) {
         c.gpu.trace.coop = true;
         c.gpu.mem.l1_sector_bytes = 32;
     }},
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    // A representative subset keeps this ablation quick by default.
    if (opt.scenes.size() == scene::SceneRegistry::allLabels().size())
        opt.scenes = {"wknd", "bath", "crnvl", "fox", "robot"};

    benchutil::banner("Ablation — CoopRT design choices "
                      "(speedup over baseline)", opt);

    std::vector<std::string> headers = {"scene"};
    for (const auto &v : kVariants)
        headers.push_back(v.name);
    stats::Table t(headers);
    std::vector<std::vector<double>> cols(std::size(kVariants));

    // Config 0 is the baseline; configs 1..N the variants.
    std::vector<core::RunConfig> cfgs(1 + std::size(kVariants));
    for (std::size_t k = 0; k < std::size(kVariants); ++k)
        kVariants[k].apply(cfgs[k + 1]);
    const auto m =
        benchutil::runMatrix(opt, opt.scenes, cfgs, "ablation");
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const double base = double(m.at(s, 0).gpu.cycles);
        auto row = &t.row().cell(opt.scenes[s]);
        for (std::size_t k = 0; k < std::size(kVariants); ++k) {
            const double sp = base / double(m.at(s, k + 1).gpu.cycles);
            cols[k].push_back(sp);
            row->cell(sp, 2);
        }
    }
    if (!cols[0].empty()) {
        auto row = &t.row().cell("gmean");
        for (auto &c : cols)
            row->cell(stats::geomean(c), 2);
    }
    benchutil::emit(t, opt);
    return 0;
}

/**
 * @file
 * Paper Fig. 12: L2<->interconnect and DRAM bandwidth with CoopRT,
 * normalized to the baseline (path tracing). The paper sees up to
 * 5.7x / 5.5x — CoopRT turns idle threads into memory parallelism.
 */

#include "bench_util.hpp"

#include "diff/diff.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 12 — normalized L2 and DRAM bandwidth "
                      "(CoopRT / baseline)", opt);

    stats::Table t({"scene", "L2 bw", "DRAM bw", "DRAM util base",
                    "DRAM util coop"});
    std::vector<double> l2s, drams;
    const auto cmps = benchutil::compareCoopAll(
        opt, opt.scenes, core::RunConfig{}, "fig12");
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const auto &label = opt.scenes[s];
        const core::Comparison &cmp = cmps[s];
        // The normalized-bandwidth columns come from the diff engine
        // (same bytes/cycle arithmetic as gpu::RunStats, same numbers
        // as the "bandwidth" ratios in a diff_cli JSON document).
        const diff::RunDiff d =
            diff::diffRuns(diff::recordFromOutcome(cmp.base),
                           diff::recordFromOutcome(cmp.coop));
        const double l2 = d.l2BandwidthRatio();
        const double dram = d.dramBandwidthRatio();
        l2s.push_back(l2);
        drams.push_back(dram);
        t.row()
            .cell(label)
            .cell(l2, 2)
            .cell(dram, 2)
            .cell(cmp.base.gpu.dram_utilization, 2)
            .cell(cmp.coop.gpu.dram_utilization, 2);
    }
    if (!l2s.empty())
        t.row().cell("gmean").cell(stats::geomean(l2s), 2).cell(
            stats::geomean(drams), 2);
    benchutil::emit(t, opt);
    return 0;
}

/**
 * @file
 * Paper Fig. 18 (Section 7.4): CoopRT on a mobile GPU configuration
 * (8 SMs, 4 memory channels in the paper; bench-scaled here). The
 * paper: 1.8x speedup, 1.71x power, 0.95x energy, with DRAM
 * utilization rising from 44% to 85% — bandwidth becomes the limit.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 18 — CoopRT on the mobile GPU config", opt);

    stats::Table t({"scene", "speedup", "power", "energy",
                    "DRAM util base", "DRAM util coop"});
    std::vector<double> s_col, p_col, e_col;
    double ub = 0, uc = 0;
    int n = 0;
    for (const auto &label : opt.scenes) {
        // The paper's Fig. 18 omits car/robot on mobile.
        if (label == "car" || label == "robot")
            continue;
        benchutil::note("fig18 " + label);
        core::RunConfig cfg;
        cfg.gpu = gpu::GpuConfig::mobileBench();
        core::Comparison cmp = core::compareCoop(label, cfg);
        s_col.push_back(cmp.speedup());
        p_col.push_back(cmp.powerRatio());
        e_col.push_back(cmp.energyRatio());
        ub += cmp.base.gpu.dram_utilization;
        uc += cmp.coop.gpu.dram_utilization;
        ++n;
        t.row()
            .cell(label)
            .cell(cmp.speedup(), 2)
            .cell(cmp.powerRatio(), 2)
            .cell(cmp.energyRatio(), 2)
            .cell(cmp.base.gpu.dram_utilization, 2)
            .cell(cmp.coop.gpu.dram_utilization, 2);
    }
    if (n > 0)
        t.row()
            .cell("gmean")
            .cell(stats::geomean(s_col), 2)
            .cell(stats::geomean(p_col), 2)
            .cell(stats::geomean(e_col), 2)
            .cell(ub / n, 2)
            .cell(uc / n, 2);
    benchutil::emit(t, opt);
    return 0;
}

/**
 * @file
 * Paper Fig. 18 (Section 7.4): CoopRT on a mobile GPU configuration
 * (8 SMs, 4 memory channels in the paper; bench-scaled here). The
 * paper: 1.8x speedup, 1.71x power, 0.95x energy, with DRAM
 * utilization rising from 44% to 85% — bandwidth becomes the limit.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 18 — CoopRT on the mobile GPU config", opt);

    stats::Table t({"scene", "speedup", "power", "energy",
                    "DRAM util base", "DRAM util coop"});
    std::vector<double> s_col, p_col, e_col;
    double ub = 0, uc = 0;
    int n = 0;
    // The paper's Fig. 18 omits car/robot on mobile.
    std::vector<std::string> scenes;
    for (const auto &label : opt.scenes)
        if (label != "car" && label != "robot")
            scenes.push_back(label);
    core::RunConfig cfg;
    cfg.gpu = gpu::GpuConfig::mobileBench();
    const auto cmps =
        benchutil::compareCoopAll(opt, scenes, cfg, "fig18");
    for (std::size_t s = 0; s < scenes.size(); ++s) {
        const auto &label = scenes[s];
        const core::Comparison &cmp = cmps[s];
        s_col.push_back(cmp.speedup());
        p_col.push_back(cmp.powerRatio());
        e_col.push_back(cmp.energyRatio());
        ub += cmp.base.gpu.dram_utilization;
        uc += cmp.coop.gpu.dram_utilization;
        ++n;
        t.row()
            .cell(label)
            .cell(cmp.speedup(), 2)
            .cell(cmp.powerRatio(), 2)
            .cell(cmp.energyRatio(), 2)
            .cell(cmp.base.gpu.dram_utilization, 2)
            .cell(cmp.coop.gpu.dram_utilization, 2);
    }
    if (n > 0)
        t.row()
            .cell("gmean")
            .cell(stats::geomean(s_col), 2)
            .cell(stats::geomean(p_col), 2)
            .cell(stats::geomean(e_col), 2)
            .cell(ub / n, 2)
            .cell(uc / n, 2);
    benchutil::emit(t, opt);
    return 0;
}

/**
 * @file
 * Shared plumbing for the figure/table bench binaries.
 *
 * Every binary regenerates one of the paper's tables or figures and
 * prints the same rows/series the paper reports. Common flags:
 *
 *   --csv              machine-readable output
 *   --scenes a,b,c     restrict to a subset of the 15 scenes
 *   --json-out FILE    append each emitted table as one JSON line
 *                      ({"bench": ..., "table": {...}}), so bench
 *                      trajectories can be collected by tooling
 */

#ifndef COOPRT_BENCH_BENCH_UTIL_HPP
#define COOPRT_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "stats/table.hpp"
#include "trace/json.hpp"

namespace cooprt::benchutil {

/** Parsed common command-line options. */
struct Options
{
    bool csv = false;
    std::vector<std::string> scenes;
    /** When set, emit() appends machine-readable JSON lines here. */
    std::string json_out;
    /** The experiment name of the last banner(), tagged into JSON. */
    mutable std::string bench_name;
};

inline Options
parse(int argc, char **argv)
{
    Options opt;
    opt.scenes = scene::SceneRegistry::allLabels();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--scenes" && i + 1 < argc) {
            opt.scenes.clear();
            std::stringstream ss(argv[++i]);
            std::string tok;
            while (std::getline(ss, tok, ','))
                if (scene::SceneRegistry::has(tok))
                    opt.scenes.push_back(tok);
        } else if (arg == "--json-out" && i + 1 < argc) {
            opt.json_out = argv[++i];
        }
    }
    return opt;
}

/**
 * Print @p table per the --csv flag; with --json-out, also append
 * it as one JSON line tagged with the current banner name.
 */
inline void
emit(const stats::Table &table, const Options &opt)
{
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    if (opt.json_out.empty())
        return;
    std::ofstream os(opt.json_out, std::ios::app);
    if (!os) {
        std::fprintf(stderr, "[bench] cannot append to %s\n",
                     opt.json_out.c_str());
        return;
    }
    os << "{\"bench\":" << trace::quoteJson(opt.bench_name)
       << ",\"table\":";
    table.printJson(os);
    os << "}\n";
}

/** Progress note on stderr (kept off the table output). */
inline void
note(const std::string &msg)
{
    std::fprintf(stderr, "[bench] %s\n", msg.c_str());
}

/** Header line naming the experiment. */
inline void
banner(const std::string &what, const Options &opt)
{
    opt.bench_name = what;
    if (!opt.csv)
        std::cout << "== " << what << " ==\n";
}

} // namespace cooprt::benchutil

#endif // COOPRT_BENCH_BENCH_UTIL_HPP

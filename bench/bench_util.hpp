/**
 * @file
 * Shared plumbing for the figure/table bench binaries.
 *
 * Every binary regenerates one of the paper's tables or figures and
 * prints the same rows/series the paper reports. Common flags:
 *
 *   --csv              machine-readable output
 *   --scenes a,b,c     restrict to a subset of the 15 scenes
 */

#ifndef COOPRT_BENCH_BENCH_UTIL_HPP
#define COOPRT_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "stats/table.hpp"

namespace cooprt::benchutil {

/** Parsed common command-line options. */
struct Options
{
    bool csv = false;
    std::vector<std::string> scenes;
};

inline Options
parse(int argc, char **argv)
{
    Options opt;
    opt.scenes = scene::SceneRegistry::allLabels();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--scenes" && i + 1 < argc) {
            opt.scenes.clear();
            std::stringstream ss(argv[++i]);
            std::string tok;
            while (std::getline(ss, tok, ','))
                if (scene::SceneRegistry::has(tok))
                    opt.scenes.push_back(tok);
        }
    }
    return opt;
}

/** Print @p table per the --csv flag. */
inline void
emit(const stats::Table &table, const Options &opt)
{
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

/** Progress note on stderr (kept off the table output). */
inline void
note(const std::string &msg)
{
    std::fprintf(stderr, "[bench] %s\n", msg.c_str());
}

/** Header line naming the experiment. */
inline void
banner(const std::string &what, const Options &opt)
{
    if (!opt.csv)
        std::cout << "== " << what << " ==\n";
}

} // namespace cooprt::benchutil

#endif // COOPRT_BENCH_BENCH_UTIL_HPP

/**
 * @file
 * Shared plumbing for the figure/table bench binaries.
 *
 * Every binary regenerates one of the paper's tables or figures and
 * prints the same rows/series the paper reports. Common flags:
 *
 *   --csv              machine-readable output
 *   --scenes a,b,c     restrict to a subset of the 15 scenes
 *                      (unknown labels are an error)
 *   --jobs N           campaign worker threads (default: hardware
 *                      concurrency; output is byte-identical for
 *                      every N — see src/exec/)
 *   --json-out FILE    append each emitted table as one JSON line
 *                      ({"bench": ..., "table": {...}}), so bench
 *                      trajectories can be collected by tooling
 *
 * The per-scene × per-config simulation loops run on the
 * `cooprt::exec` campaign engine (`runMatrix` / `compareCoopAll`
 * below): jobs execute across a work-stealing pool, results come
 * back in submission order, and the printed tables are bit-identical
 * to a serial run.
 */

#ifndef COOPRT_BENCH_BENCH_UTIL_HPP
#define COOPRT_BENCH_BENCH_UTIL_HPP

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "exec/exec.hpp"
#include "stats/table.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/json.hpp"

namespace cooprt::benchutil {

/** Parsed common command-line options. */
struct Options
{
    bool csv = false;
    std::vector<std::string> scenes;
    /** Campaign worker threads; 0 = hardware concurrency. */
    int jobs = 0;
    /** When set, emit() appends machine-readable JSON lines here. */
    std::string json_out;
    /** The experiment name of the last banner(), tagged into JSON. */
    mutable std::string bench_name;
};

inline Options
parse(int argc, char **argv)
{
    Options opt;
    opt.scenes = scene::SceneRegistry::allLabels();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        // Diagnostics go to stderr and exit non-zero (2, the usage
        // convention the CLIs share), so scripted sweeps fail loudly
        // instead of silently running the full default matrix.
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "[bench] %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--scenes") {
            opt.scenes.clear();
            std::stringstream ss(next("--scenes"));
            std::string tok;
            while (std::getline(ss, tok, ',')) {
                if (!scene::SceneRegistry::has(tok)) {
                    std::string valid;
                    for (const auto &l :
                         scene::SceneRegistry::allLabels())
                        valid += (valid.empty() ? "" : ", ") + l;
                    std::fprintf(stderr,
                                 "[bench] unknown scene '%s' "
                                 "(valid: %s)\n",
                                 tok.c_str(), valid.c_str());
                    std::exit(2);
                }
                opt.scenes.push_back(tok);
            }
            if (opt.scenes.empty()) {
                std::fprintf(stderr,
                             "[bench] --scenes selected no scenes\n");
                std::exit(2);
            }
        } else if (arg == "--jobs") {
            opt.jobs = std::atoi(next("--jobs"));
        } else if (arg == "--json-out") {
            opt.json_out = next("--json-out");
        } else {
            std::fprintf(stderr,
                         "[bench] unknown flag '%s' (--csv, "
                         "--scenes a,b,c, --jobs N, --json-out "
                         "FILE)\n",
                         arg.c_str());
            std::exit(2);
        }
    }
    return opt;
}

/**
 * Print @p table per the --csv flag; with --json-out, also append
 * it as one JSON line tagged with the current banner name.
 */
inline void
emit(const stats::Table &table, const Options &opt)
{
    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    if (opt.json_out.empty())
        return;
    std::ofstream os(opt.json_out, std::ios::app);
    if (!os) {
        std::fprintf(stderr, "[bench] cannot append to %s\n",
                     opt.json_out.c_str());
        return;
    }
    // The build stamp is constant per binary, so lines stay
    // byte-identical across --jobs while recording which tree and
    // toolchain produced each bench trajectory point.
    os << "{\"schema_version\":" << trace::kSchemaVersion
       << ",\"bench\":" << trace::quoteJson(opt.bench_name)
       << ",\"build\":" << telemetry::buildInfoJson()
       << ",\"table\":";
    table.printJson(os);
    os << "}\n";
}

/** Progress note on stderr (kept off the table output). */
inline void
note(const std::string &msg)
{
    std::fprintf(stderr, "[bench] %s\n", msg.c_str());
}

/** Header line naming the experiment. */
inline void
banner(const std::string &what, const Options &opt)
{
    opt.bench_name = what;
    if (!opt.csv)
        std::cout << "== " << what << " ==\n";
}

/** Scene-major result block of one scenes × configs campaign. */
struct Matrix
{
    std::vector<core::RunOutcome> outcomes;
    std::size_t num_configs = 1;

    const core::RunOutcome &
    at(std::size_t scene, std::size_t config) const
    {
        return outcomes[scene * num_configs + config];
    }
};

/**
 * Run every scene × config pair as one `cooprt::exec` campaign
 * (worker count from `opt.jobs`) and return the outcomes in
 * submission order. Progress goes to stderr in completion order;
 * the returned data — and hence every table built from it — is
 * independent of scheduling. Any failed job aborts the bench with
 * its captured error.
 */
inline Matrix
runMatrix(const Options &opt, const std::vector<std::string> &scenes,
          const std::vector<core::RunConfig> &configs,
          const std::string &what, bool attach_profiler = false,
          bool attach_memscope = false)
{
    std::vector<exec::Job> jobs;
    jobs.reserve(scenes.size() * configs.size());
    for (const auto &label : scenes)
        for (std::size_t c = 0; c < configs.size(); ++c) {
            std::string tag = what + " " + label;
            if (configs.size() > 1) {
                tag += '#';
                tag += std::to_string(c);
            }
            jobs.push_back(exec::Job{label, configs[c], std::move(tag)});
        }

    exec::CampaignOptions copt;
    copt.jobs = opt.jobs;
    copt.attach_profiler = attach_profiler;
    copt.attach_memscope = attach_memscope;
    const std::size_t total = jobs.size();
    std::atomic<std::size_t> completed{0};
    copt.on_job_done = [&](const exec::JobResult &r) {
        note(r.tag + (r.ok ? "" : " FAILED") + " [" +
             std::to_string(++completed) + "/" +
             std::to_string(total) + "]");
    };

    auto results = exec::runCampaign(std::move(jobs), copt);
    Matrix m;
    m.num_configs = configs.empty() ? 1 : configs.size();
    m.outcomes.reserve(results.size());
    for (auto &r : results) {
        if (!r.ok) {
            std::fprintf(
                stderr, "[bench] job '%s' failed (%s): %s\n",
                r.tag.c_str(),
                r.failure ? exec::failureKindName(r.failure->kind)
                          : "?",
                r.failure ? r.failure->message.c_str() : "?");
            std::exit(1);
        }
        m.outcomes.push_back(std::move(r.outcome));
    }
    return m;
}

/**
 * Baseline-vs-CoopRT comparisons for @p scenes under @p cfg, one
 * campaign for the whole sweep (replaces per-scene `compareCoop`
 * loops). Results are ordered like @p scenes.
 */
inline std::vector<core::Comparison>
compareCoopAll(const Options &opt,
               const std::vector<std::string> &scenes,
               core::RunConfig cfg, const std::string &what,
               bool attach_memscope = false)
{
    core::RunConfig base = cfg;
    base.gpu.trace.coop = false;
    core::RunConfig coop = cfg;
    coop.gpu.trace.coop = true;
    const Matrix m = runMatrix(opt, scenes, {base, coop}, what,
                               /*attach_profiler=*/false,
                               attach_memscope);
    std::vector<core::Comparison> out(scenes.size());
    for (std::size_t s = 0; s < scenes.size(); ++s) {
        out[s].base = m.at(s, 0);
        out[s].coop = m.at(s, 1);
    }
    return out;
}

} // namespace cooprt::benchutil

#endif // COOPRT_BENCH_BENCH_UTIL_HPP

/**
 * @file
 * Paper Fig. 1: share of pipeline stalls by instruction class (RT =
 * trace_ray, MEM/ALU/SFU = CUDA-core instructions) on the baseline
 * GPU, path tracing, 1 spp. The paper's point: trace_ray dominates.
 *
 * The RT class is additionally split by the stall-attribution
 * profiler's taxonomy (prof/prof.hpp): issue = cycles the warp made
 * progress, starved = waiting on the memory hierarchy, queued = lost
 * the single-issue arbitration or waited for a warp-buffer slot,
 * other = stack-bound / LBU / drain / idle. The split sums to the RT
 * share exactly (the prof.bucket_conservation identity).
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    using prof::Bucket;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 1 — pipeline stall breakdown (baseline, "
                      "path tracing)", opt);

    stats::Table t({"scene", "RT %", "MEM %", "ALU %", "SFU %",
                    "rt issue %", "rt starved %", "rt queued %",
                    "rt other %"});
    const auto m = benchutil::runMatrix(
        opt, opt.scenes, {core::RunConfig{}}, "fig01",
        /*attach_profiler=*/true);
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const auto &label = opt.scenes[s];
        const core::RunOutcome &r = m.at(s, 0);
        const double total = double(r.gpu.stalls.total());
        const auto &p = r.gpu.prof_summary;
        const double issue = double(p.of(Bucket::IssueCompute));
        const double starved = double(p.of(Bucket::StarvedL1) +
                                      p.of(Bucket::StarvedL2) +
                                      p.of(Bucket::StarvedDram));
        const double queued = double(p.of(Bucket::FetchQueued) +
                                     p.of(Bucket::WarpBufferFull));
        const double other =
            double(p.rtStallCycles()) - issue - starved - queued;
        t.row()
            .cell(label)
            .cell(100.0 * double(r.gpu.stalls.rt) / total, 1)
            .cell(100.0 * double(r.gpu.stalls.mem) / total, 1)
            .cell(100.0 * double(r.gpu.stalls.alu) / total, 1)
            .cell(100.0 * double(r.gpu.stalls.sfu) / total, 1)
            .cell(100.0 * issue / total, 1)
            .cell(100.0 * starved / total, 1)
            .cell(100.0 * queued / total, 1)
            .cell(100.0 * other / total, 1);
    }
    benchutil::emit(t, opt);
    return 0;
}

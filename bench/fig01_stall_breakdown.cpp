/**
 * @file
 * Paper Fig. 1: share of pipeline stalls by instruction class (RT =
 * trace_ray, MEM/ALU/SFU = CUDA-core instructions) on the baseline
 * GPU, path tracing, 1 spp. The paper's point: trace_ray dominates.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 1 — pipeline stall breakdown (baseline, "
                      "path tracing)", opt);

    stats::Table t({"scene", "RT %", "MEM %", "ALU %", "SFU %"});
    for (const auto &label : opt.scenes) {
        benchutil::note("fig01 " + label);
        const auto &sim = core::simulationFor(label);
        core::RunOutcome r = sim.run(core::RunConfig{});
        const double total = double(r.gpu.stalls.total());
        t.row()
            .cell(label)
            .cell(100.0 * double(r.gpu.stalls.rt) / total, 1)
            .cell(100.0 * double(r.gpu.stalls.mem) / total, 1)
            .cell(100.0 * double(r.gpu.stalls.alu) / total, 1)
            .cell(100.0 * double(r.gpu.stalls.sfu) / total, 1);
    }
    benchutil::emit(t, opt);
    return 0;
}

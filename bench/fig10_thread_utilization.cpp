/**
 * @file
 * Paper Fig. 10: average RT-unit thread utilization, baseline vs
 * CoopRT (AerialVision-style 500-cycle sampling). The paper's
 * observation: speedups track the utilization *improvement*, not the
 * absolute final utilization.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 10 — average thread utilization, baseline "
                      "vs CoopRT", opt);

    stats::Table t({"scene", "baseline %", "CoopRT %", "improvement",
                    "speedup"});
    const auto cmps = benchutil::compareCoopAll(
        opt, opt.scenes, core::RunConfig{}, "fig10");
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const auto &label = opt.scenes[s];
        const core::Comparison &cmp = cmps[s];
        const double b = cmp.base.gpu.avg_thread_utilization;
        const double c = cmp.coop.gpu.avg_thread_utilization;
        t.row()
            .cell(label)
            .cell(100.0 * b, 1)
            .cell(100.0 * c, 1)
            .cell(b > 0 ? c / b : 0.0, 2)
            .cell(cmp.speedup(), 2);
    }
    benchutil::emit(t, opt);
    return 0;
}

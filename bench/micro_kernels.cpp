/**
 * @file
 * Google-benchmark micro-kernels for the substrate hot paths: the
 * intersection math the RT unit's math units model, BVH construction
 * and traversal, cache access, and one full RT-unit trace. These are
 * host-performance benchmarks of the simulator itself (useful when
 * optimizing it), not simulated-GPU results.
 */

#include <benchmark/benchmark.h>

#include "bvh/traversal.hpp"
#include "geom/rng.hpp"
#include "mem/memory_system.hpp"
#include "rtunit/rt_unit.hpp"
#include "scene/generators.hpp"

namespace {

using namespace cooprt;

scene::Mesh
soup(int n)
{
    scene::Mesh m;
    geom::Pcg32 rng(42);
    for (int i = 0; i < n; ++i) {
        geom::Vec3 p = rng.nextInBox(geom::Vec3(-10), geom::Vec3(10));
        m.addTriangle({p, p + rng.nextUnitVector() * 0.5f,
                       p + rng.nextUnitVector() * 0.5f});
    }
    return m;
}

void
BM_RayBoxIntersect(benchmark::State &state)
{
    geom::Pcg32 rng(1);
    geom::AABB box{{-1, -1, -1}, {1, 1, 1}};
    geom::Ray ray({-3, 0.1f, 0.2f}, normalize(geom::Vec3(1, 0.05f, 0.1f)));
    for (auto _ : state)
        benchmark::DoNotOptimize(box.intersect(ray, geom::kNoHit));
}
BENCHMARK(BM_RayBoxIntersect);

void
BM_RayTriangleIntersect(benchmark::State &state)
{
    geom::Triangle tri{{-1, -1, 5}, {1, -1, 5}, {0, 1, 5}};
    geom::Ray ray({0.1f, 0.0f, 0}, {0, 0, 1});
    for (auto _ : state)
        benchmark::DoNotOptimize(tri.intersect(ray, geom::kNoHit));
}
BENCHMARK(BM_RayTriangleIntersect);

void
BM_QuantizedDecode(benchmark::State &state)
{
    geom::AABB parent{{-10, -10, -10}, {10, 10, 10}};
    auto frame = geom::QuantFrame::forParent(parent);
    auto q = geom::QuantizedAabb::encode({{-3, 1, -2}, {4, 5, 6}},
                                         frame);
    for (auto _ : state)
        benchmark::DoNotOptimize(q.decode(frame));
}
BENCHMARK(BM_QuantizedDecode);

void
BM_BvhBuild(benchmark::State &state)
{
    scene::Mesh m = soup(int(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(bvh::buildWideBvh(m));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BvhBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void
BM_CpuClosestHit(benchmark::State &state)
{
    scene::Mesh m = soup(20000);
    bvh::FlatBvh flat(bvh::buildWideBvh(m));
    geom::Pcg32 rng(3);
    for (auto _ : state) {
        geom::Ray r(rng.nextInBox(geom::Vec3(-15), geom::Vec3(15)),
                    rng.nextUnitVector());
        benchmark::DoNotOptimize(bvh::closestHit(flat, m, r));
    }
}
BENCHMARK(BM_CpuClosestHit);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache({64 * 1024, 0, 128, 20});
    geom::Pcg32 rng(4);
    std::uint64_t now = 0;
    auto below = [](std::uint64_t, std::uint64_t t) { return t + 300; };
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.nextBelow(2048), now, below));
        now += 3;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_RtUnitFullTrace(benchmark::State &state)
{
    const bool coop = state.range(0) != 0;
    scene::Mesh m = soup(20000);
    bvh::FlatBvh flat(bvh::buildWideBvh(m));
    rtunit::TraceConfig cfg;
    cfg.coop = coop;
    geom::Pcg32 rng(5);

    for (auto _ : state) {
        rtunit::RtUnit unit(flat, m, cfg,
                            [](std::uint64_t, std::uint32_t,
                               std::uint64_t now) { return now + 300; });
        rtunit::TraceJob job;
        for (int t = 0; t < 8; ++t)
            job.rays[std::size_t(t)] =
                geom::Ray(rng.nextInBox(geom::Vec3(-15), geom::Vec3(15)),
                          rng.nextUnitVector());
        bool done = false;
        unit.submit(job, 0,
                    [&](int, const rtunit::TraceResult &) {
                        done = true;
                    });
        std::uint64_t now = 0;
        while (!done) {
            const std::uint64_t e = unit.nextEventCycle(now);
            if (e > now)
                now = e;
            unit.tick(now);
            now++;
        }
        benchmark::DoNotOptimize(now);
    }
}
BENCHMARK(BM_RtUnitFullTrace)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();

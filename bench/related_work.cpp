/**
 * @file
 * Comparison against the related work the paper discusses (Sections
 * 3 and 8): active-thread compaction (Wald, HPG'11), treelet-style
 * child prefetching (Chou et al., MICRO'23) and the intersection
 * predictor (Liu et al., MICRO'21) — alone and combined with CoopRT.
 *
 * Expected shapes, per the paper's arguments:
 *  - compaction fixes inactive threads but not early finishers, so
 *    it captures only part of CoopRT's gain;
 *  - prefetching helps the latency-bound baseline, and composes with
 *    CoopRT while bandwidth headroom remains;
 *  - the predictor shines on localized AO rays, less on path tracing.
 */

#include "bench_util.hpp"
#include "shaders/compaction.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    // Representative subset by default (override with --scenes).
    if (opt.scenes.size() == scene::SceneRegistry::allLabels().size())
        opt.scenes = {"wknd", "bath", "spnza", "crnvl", "fox", "robot"};

    benchutil::banner("Related work — speedup over baseline "
                      "(path tracing)", opt);

    stats::Table t({"scene", "prefetch", "predictor", "compaction",
                    "CoopRT", "CoopRT+prefetch"});
    std::vector<std::vector<double>> cols(5);

    for (const auto &label : opt.scenes) {
        benchutil::note("related_work " + label);
        const auto &sim = core::simulationFor(label);
        const auto base = sim.run(core::RunConfig{});
        const double base_cycles = double(base.gpu.cycles);

        auto speedup_of = [&](auto mutate) {
            core::RunConfig cfg;
            mutate(cfg);
            return base_cycles / double(sim.run(cfg).gpu.cycles);
        };

        const double s_pf = speedup_of([](core::RunConfig &c) {
            c.gpu.trace.child_prefetch = true;
        });
        const double s_pred = speedup_of([](core::RunConfig &c) {
            c.gpu.trace.intersection_predictor = true;
        });

        // Compaction re-packs alive paths into full warps per bounce.
        const int res = scene::SceneRegistry::benchResolution(label);
        const auto comp = shaders::runCompactedPathTrace(
            sim.scene(), sim.bvh(), core::RunConfig{}.gpu, res);
        const double s_comp = base_cycles / double(comp.cycles);

        const double s_coop = speedup_of([](core::RunConfig &c) {
            c.gpu.trace.coop = true;
        });
        const double s_both = speedup_of([](core::RunConfig &c) {
            c.gpu.trace.coop = true;
            c.gpu.trace.child_prefetch = true;
        });

        const double vals[] = {s_pf, s_pred, s_comp, s_coop, s_both};
        auto row = &t.row().cell(label);
        for (std::size_t k = 0; k < 5; ++k) {
            cols[k].push_back(vals[k]);
            row->cell(vals[k], 2);
        }
    }
    if (!cols[0].empty()) {
        auto row = &t.row().cell("gmean");
        for (auto &c : cols)
            row->cell(stats::geomean(c), 2);
    }
    benchutil::emit(t, opt);

    // Second table: the predictor on ambient occlusion, where the
    // paper expects it to be effective (localized rays).
    benchutil::banner("Related work — intersection predictor on AO",
                      opt);
    stats::Table ao({"scene", "predictor AO", "CoopRT AO"});
    for (const auto &label : opt.scenes) {
        benchutil::note("related_work AO " + label);
        const auto &sim = core::simulationFor(label);
        core::RunConfig cfg;
        cfg.shader = core::ShaderKind::AmbientOcclusion;
        const auto base = sim.run(cfg);

        cfg.gpu.trace.intersection_predictor = true;
        const auto pred = sim.run(cfg);
        cfg.gpu.trace.intersection_predictor = false;
        cfg.gpu.trace.coop = true;
        const auto coop = sim.run(cfg);
        ao.row()
            .cell(label)
            .cell(double(base.gpu.cycles) / double(pred.gpu.cycles), 2)
            .cell(double(base.gpu.cycles) / double(coop.gpu.cycles),
                  2);
    }
    benchutil::emit(ao, opt);
    return 0;
}

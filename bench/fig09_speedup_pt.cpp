/**
 * @file
 * Paper Fig. 9: CoopRT speedup, power and energy vs the baseline RT
 * unit, path tracing, per scene plus the geometric mean. The paper
 * reports up to 5.11x, gmean 2.15x, power ~2.02x, energy ~0.94x.
 *
 * Pass --config to also echo the Table 1 hardware configuration.
 */

#include "bench_util.hpp"

#include "diff/diff.hpp"

namespace {

void
printConfig(const cooprt::gpu::GpuConfig &c)
{
    std::printf("GPU configuration (Table 1, bench-scaled):\n");
    std::printf("  SMs: %d, warps/SM: %d, RT warp buffer: %d entries\n",
                c.num_sms, c.max_warps_per_sm,
                c.trace.warp_buffer_entries);
    std::printf("  L1: %llu KB fully-assoc, %u cyc; L2: %llu KB "
                "%u-way, %u cyc\n",
                (unsigned long long)c.mem.l1.size_bytes / 1024,
                c.mem.l1.latency,
                (unsigned long long)c.mem.l2.size_bytes / 1024,
                c.mem.l2.assoc, c.mem.l2.latency);
    std::printf("  DRAM: %u channels, %u cyc, %.1f B/cyc/channel\n\n",
                c.mem.dram.channels, c.mem.dram.latency,
                c.mem.dram.bytes_per_cycle);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--config")
            printConfig(gpu::GpuConfig::rtx2060Bench());

    benchutil::banner("Fig. 9 — CoopRT speedup / power / energy over "
                      "baseline (path tracing)", opt);

    stats::Table t({"scene", "speedup", "power", "energy",
                    "util base", "util coop"});
    std::vector<double> speedups, powers, energies;
    const auto cmps = benchutil::compareCoopAll(
        opt, opt.scenes, core::RunConfig{}, "fig09");
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const auto &label = opt.scenes[s];
        const core::Comparison &cmp = cmps[s];
        // Route the compare columns through the diff engine — same
        // double arithmetic as core::Comparison, and the same numbers
        // diff_cli reports for the exported (base, coop) report pair.
        const diff::RunDiff d =
            diff::diffRuns(diff::recordFromOutcome(cmp.base),
                           diff::recordFromOutcome(cmp.coop));
        speedups.push_back(d.speedup);
        powers.push_back(d.power_ratio);
        energies.push_back(d.energy_ratio);
        t.row()
            .cell(label)
            .cell(d.speedup, 2)
            .cell(d.power_ratio, 2)
            .cell(d.energy_ratio, 2)
            .cell(d.utilization_base, 2)
            .cell(d.utilization_other, 2);
    }
    if (!speedups.empty())
        t.row()
            .cell("gmean")
            .cell(stats::geomean(speedups), 2)
            .cell(stats::geomean(powers), 2)
            .cell(stats::geomean(energies), 2);
    benchutil::emit(t, opt);
    return 0;
}

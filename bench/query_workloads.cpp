/**
 * @file
 * Non-rendering query workloads (src/query/) — baseline vs CoopRT on
 * every query scene. The RTNN-style k-NN and fixed-radius searches
 * run over the three point-cloud scenes, the locate-and-advect cell
 * containment over the two AMR scenes; every job keeps the
 * brute-force oracle cross-check on, so a row printing at all means
 * the simulator results matched the oracle bit-for-bit.
 *
 * Per row: query counts, cycles for both configs, the speedup, the
 * hottest CoopRT stall bucket (cooprt::prof taxonomy) and the BVH
 * depth absorbing the most node fetches (cooprt::memscope), so the
 * table shows not just *that* cooperative traversal helps short
 * query rays but *where* the residual time goes.
 *
 *   ./query_workloads
 *   ./query_workloads --scenes ptsc,amrd --jobs 4 --csv
 */

#include <algorithm>

#include "bench_util.hpp"
#include "prof/prof.hpp"

namespace {

using namespace cooprt;

/** Name + share of the largest stall bucket of a coop run. */
std::string
topStall(const core::RunOutcome &o)
{
    const auto &p = o.gpu.prof_summary;
    if (!p.enabled || p.rtStallCycles() == 0)
        return "-";
    int best = 0;
    for (int b = 1; b < prof::kNumBuckets; ++b)
        if (p.buckets[std::size_t(b)] > p.buckets[std::size_t(best)])
            best = b;
    const double share = 100.0 * double(p.buckets[std::size_t(best)]) /
                         double(p.rtStallCycles());
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s %.0f%%",
                  prof::bucketName(prof::Bucket(best)), share);
    return buf;
}

/** BVH depth absorbing the most node fetches (memscope heatmap). */
std::string
hotDepth(const core::RunOutcome &o)
{
    const auto &m = o.gpu.memscope_summary;
    if (!m.enabled || m.depths.empty() || m.node_accesses == 0)
        return "-";
    const auto it = std::max_element(
        m.depths.begin(), m.depths.end(),
        [](const auto &a, const auto &b) {
            return a.accesses < b.accesses;
        });
    char buf[64];
    std::snprintf(buf, sizeof(buf), "d%d %.0f%%", it->depth,
                  100.0 * double(it->accesses) /
                      double(m.node_accesses));
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    // The rendering default axis makes no sense here: when --scenes
    // was not given, sweep the query scenes instead.
    if (opt.scenes == scene::SceneRegistry::allLabels())
        opt.scenes = scene::SceneRegistry::queryLabels();
    benchutil::banner(
        "Query workloads — baseline vs CoopRT (oracle-checked)", opt);

    std::vector<std::string> points;
    std::vector<std::string> amr;
    for (const auto &label : opt.scenes) {
        switch (scene::SceneRegistry::get(label).kind) {
          case scene::SceneKind::PointCloud:
            points.push_back(label);
            break;
          case scene::SceneKind::AmrCells:
            amr.push_back(label);
            break;
          case scene::SceneKind::Triangles:
            benchutil::note("skipping triangle scene " + label +
                            " (query workloads want pts*/amr*)");
            break;
        }
    }

    struct Row
    {
        const char *workload;
        core::ShaderKind shader;
        const std::vector<std::string> *scenes;
    };
    const Row rows[] = {
        {"knn", core::ShaderKind::QueryKnn, &points},
        {"radius", core::ShaderKind::QueryRadius, &points},
        {"contain", core::ShaderKind::QueryContain, &amr},
    };

    stats::Table t({"workload", "scene", "queries", "found",
                    "base cycles", "coop cycles", "speedup",
                    "coop top stall", "hot depth"});
    for (const auto &r : rows) {
        if (r.scenes->empty())
            continue;
        core::RunConfig base;
        base.shader = r.shader;
        core::RunConfig coop = base;
        coop.gpu.trace.coop = true;
        const benchutil::Matrix m = benchutil::runMatrix(
            opt, *r.scenes, {base, coop},
            std::string("query ") + r.workload,
            /*attach_profiler=*/true, /*attach_memscope=*/true);
        for (std::size_t s = 0; s < r.scenes->size(); ++s) {
            const core::RunOutcome &b = m.at(s, 0);
            const core::RunOutcome &c = m.at(s, 1);
            if (!b.query.oracleMatches() || !c.query.oracleMatches()) {
                std::fprintf(stderr,
                             "[bench] %s/%s disagrees with the "
                             "brute-force oracle\n",
                             (*r.scenes)[s].c_str(), r.workload);
                return 1;
            }
            t.row()
                .cell(r.workload)
                .cell((*r.scenes)[s])
                .cell(b.query.queries)
                .cell(b.query.found)
                .cell(double(b.gpu.cycles), 0)
                .cell(double(c.gpu.cycles), 0)
                .cell(double(b.gpu.cycles) / double(c.gpu.cycles), 2)
                .cell(topStall(c))
                .cell(hotDepth(c));
        }
    }
    benchutil::emit(t, opt);
    return 0;
}

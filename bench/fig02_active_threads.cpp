/**
 * @file
 * Paper Fig. 2: percentage of busy threads in the RT unit over time
 * (baseline, path tracing). The paper shows ~100% on the primary
 * rays, then a steep drop as bounce divergence accumulates.
 *
 * Output: one row per time bucket (fraction of the frame) per scene.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 2 — busy-thread ratio in the RT unit over "
                      "time (baseline)", opt);

    const int buckets = 10;
    std::vector<std::string> headers = {"scene"};
    for (int b = 0; b < buckets; ++b)
        headers.push_back(std::to_string((b + 1) * 100 / buckets) +
                          "% frame");
    stats::Table t(headers);

    const auto m = benchutil::runMatrix(
        opt, opt.scenes, {core::RunConfig{}}, "fig02");
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const auto &label = opt.scenes[s];
        const core::RunOutcome &r = m.at(s, 0);
        const auto &series = r.gpu.utilization_series;
        auto row = &t.row().cell(label);
        if (series.empty())
            continue;
        const std::size_t per =
            std::max<std::size_t>(1, series.size() / buckets);
        for (int b = 0; b < buckets; ++b) {
            double sum = 0.0;
            std::size_t n = 0;
            for (std::size_t i = std::size_t(b) * per;
                 i < std::size_t(b + 1) * per && i < series.size();
                 ++i, ++n)
                sum += series[i];
            row->cell(n ? 100.0 * sum / double(n) : 0.0, 1);
        }
    }
    benchutil::emit(t, opt);
    return 0;
}

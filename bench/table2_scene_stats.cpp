/**
 * @file
 * Paper Table 2: benchmark scene statistics — BVH size and depth per
 * scene. Our procedural stand-ins are scaled down from LumiBench, but
 * the relative ordering (wknd smallest ... car/robot largest) and
 * the depth growth with size are preserved.
 *
 * The query scenes (src/query/ point clouds and AMR grids) get rows
 * too when the default scene list is used: their "triangles" are
 * proxy primitives (one per point / leaf cell), and a "mean trav"
 * column reports the average node+leaf fetches per query from a
 * cheap low-resolution run of the scene's natural workload (k-NN
 * for point clouds, containment for AMR; "-" for rendering scenes,
 * whose traversal statistics the figure benches already report).
 */

#include "bench_util.hpp"

namespace {

using namespace cooprt;

/** Mean node+leaf fetches per query from a small probe run. */
double
meanTraversal(const std::string &label)
{
    core::RunConfig cfg;
    cfg.shader =
        scene::SceneRegistry::get(label).kind ==
                scene::SceneKind::AmrCells
            ? core::ShaderKind::QueryContain
            : core::ShaderKind::QueryKnn;
    cfg.resolution = 16;
    cfg.query.verify = false;
    const auto out = core::simulationFor(label).run(cfg);
    const double queries = double(out.query.queries);
    return queries > 0 ? double(out.gpu.rt.node_fetches +
                                out.gpu.rt.leaf_fetches) /
                             queries
                       : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    // The query scenes join the sweep unless --scenes picked a
    // subset explicitly.
    if (opt.scenes == scene::SceneRegistry::allLabels())
        for (const auto &l : scene::SceneRegistry::queryLabels())
            opt.scenes.push_back(l);
    benchutil::banner("Table 2 — scene/BVH statistics", opt);

    stats::Table t({"scene", "triangles", "internal nodes", "leaves",
                    "tree size (MiB)", "depth", "bench res",
                    "mean trav"});
    for (const auto &label : opt.scenes) {
        benchutil::note("table2 " + label);
        const auto &sim = core::simulationFor(label);
        const auto s = sim.treeStats();
        auto row = &t.row();
        row->cell(label)
            .cell(std::uint64_t(s.triangles))
            .cell(std::uint64_t(s.internal_nodes))
            .cell(std::uint64_t(s.leaf_nodes))
            .cell(s.sizeMiB(), 2)
            .cell(std::uint64_t(s.max_depth))
            .cell(std::uint64_t(
                scene::SceneRegistry::benchResolution(label)));
        if (sim.scene().kind == scene::SceneKind::Triangles)
            row->cell("-");
        else
            row->cell(meanTraversal(label), 1);
    }
    benchutil::emit(t, opt);
    return 0;
}

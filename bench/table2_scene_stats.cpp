/**
 * @file
 * Paper Table 2: benchmark scene statistics — BVH size and depth per
 * scene. Our procedural stand-ins are scaled down from LumiBench, but
 * the relative ordering (wknd smallest ... car/robot largest) and
 * the depth growth with size are preserved.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Table 2 — scene/BVH statistics", opt);

    stats::Table t({"scene", "triangles", "internal nodes", "leaves",
                    "tree size (MiB)", "depth", "bench res"});
    for (const auto &label : opt.scenes) {
        benchutil::note("table2 " + label);
        const auto &sim = core::simulationFor(label);
        const auto s = sim.treeStats();
        t.row()
            .cell(label)
            .cell(std::uint64_t(s.triangles))
            .cell(std::uint64_t(s.internal_nodes))
            .cell(std::uint64_t(s.leaf_nodes))
            .cell(s.sizeMiB(), 2)
            .cell(std::uint64_t(s.max_depth))
            .cell(std::uint64_t(
                scene::SceneRegistry::benchResolution(label)));
    }
    benchutil::emit(t, opt);
    return 0;
}

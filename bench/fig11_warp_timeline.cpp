/**
 * @file
 * Paper Fig. 11: per-thread trace_ray execution timeline of one warp
 * in the bath scene, baseline vs CoopRT. A '#' column means the lane
 * has a non-empty traversal stack (or a node in flight). CoopRT fills
 * idle lanes with stolen work and shortens the whole trace.
 *
 * Built on the ray-provenance recorder (src/raytrace/): the recorder
 * samples the same late warp the legacy armTimeline path recorded
 * (all 32 lanes, SM 0, 60 trace_rays skipped) and its lane-edge log
 * replays into the identical rendered timeline.
 */

#include "bench_util.hpp"
#include "raytrace/raytrace.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    const std::string label = "bath"; // the paper's Fig. 11 scene
    const int columns = 100;
    // Skip the coherent primary traces; record a divergent bounce.
    const int skip = 60;

    const auto &sim = core::simulationFor(label);
    prof::Profiler profiler;
    stats::Table t({"variant", "trace cycles", "lane util %",
                    "issue %", "starved %", "steal %"});

    for (bool coop : {false, true}) {
        benchutil::note(std::string("fig11 ") +
                        (coop ? "coop" : "baseline"));
        core::RunConfig cfg;
        cfg.gpu.trace.coop = coop;
        cfg.profiler = &profiler;
        raytrace::RecorderConfig rcfg;
        rcfg.sample_k = rtunit::kWarpSize;
        rcfg.warp_skip = std::uint64_t(skip);
        rcfg.max_warps_per_unit = 1;
        rcfg.lane_timeline = true;
        raytrace::Recorder ray(rcfg);
        cfg.ray_recorder = &ray;
        core::RunOutcome out = sim.run(cfg);

        const raytrace::WarpRecord *warp = nullptr;
        for (const raytrace::WarpRecord *w : ray.warps())
            if (w->sm == 0)
                warp = w;
        if (warp == nullptr) {
            std::fprintf(stderr,
                         "fig11: recorder captured no warp on SM 0\n");
            return 1;
        }
        stats::TimelineRecorder rec = raytrace::laneTimeline(*warp);

        if (!opt.csv) {
            std::printf("\nFig. 11%s — %s, scene %s, one late "
                        "trace_ray on SM 0:\n",
                        coop ? "b" : "a",
                        coop ? "CoopRT" : "baseline", label.c_str());
            std::fputs(rec.render(columns).c_str(), stdout);
        }
        // Whole-run taxonomy shares explain what the rendered
        // timeline shows: CoopRT converts starved lanes into steals.
        using prof::Bucket;
        const auto &p = out.gpu.prof_summary;
        const double resident = double(p.resident_cycles);
        const double starved = double(p.of(Bucket::StarvedL1) +
                                      p.of(Bucket::StarvedL2) +
                                      p.of(Bucket::StarvedDram));
        t.row()
            .cell(coop ? "CoopRT" : "baseline")
            .cell(rec.lastCycle() - rec.firstCycle())
            .cell(100.0 * rec.averageUtilization(), 1)
            .cell(100.0 * double(p.of(Bucket::IssueCompute)) /
                      resident, 1)
            .cell(100.0 * starved / resident, 1)
            .cell(100.0 * double(p.of(Bucket::LbuSteal)) / resident,
                  1);
    }
    benchutil::emit(t, opt);
    return 0;
}

/**
 * @file
 * Paper Fig. 11: per-thread trace_ray execution timeline of one warp
 * in the bath scene, baseline vs CoopRT. A '#' column means the lane
 * has a non-empty traversal stack (or a node in flight). CoopRT fills
 * idle lanes with stolen work and shortens the whole trace.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    const std::string label = "bath"; // the paper's Fig. 11 scene
    const int columns = 100;
    // Skip the coherent primary traces; record a divergent bounce.
    const int skip = 60;

    const auto &sim = core::simulationFor(label);
    stats::Table t({"variant", "trace cycles", "lane util %"});

    for (bool coop : {false, true}) {
        benchutil::note(std::string("fig11 ") +
                        (coop ? "coop" : "baseline"));
        core::RunConfig cfg;
        cfg.gpu.trace.coop = coop;
        stats::TimelineRecorder rec(rtunit::kWarpSize);
        sim.run(cfg, nullptr, &rec, skip);

        if (!opt.csv) {
            std::printf("\nFig. 11%s — %s, scene %s, one late "
                        "trace_ray on SM 0:\n",
                        coop ? "b" : "a",
                        coop ? "CoopRT" : "baseline", label.c_str());
            std::fputs(rec.render(columns).c_str(), stdout);
        }
        t.row()
            .cell(coop ? "CoopRT" : "baseline")
            .cell(rec.lastCycle() - rec.firstCycle())
            .cell(100.0 * rec.averageUtilization(), 1);
    }
    benchutil::emit(t, opt);
    return 0;
}

/**
 * @file
 * Paper Fig. 14: latency of the slowest (longest-running) warp,
 * normalized to the 4-entry baseline — CoopRT with 4 entries vs the
 * 32-entry warp buffer without CoopRT. Lower is better; the slowest
 * warp bounds the frame rate in real-time rendering. The paper:
 * 0.46x (CoopRT) vs 0.62x (big buffer).
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 14 — slowest-warp latency normalized to "
                      "baseline (lower is better)", opt);

    stats::Table t({"scene", "4 w/ coop", "32 w/o coop"});
    std::vector<double> coop_col, big_col;
    for (const auto &label : opt.scenes) {
        benchutil::note("fig14 " + label);
        const auto &sim = core::simulationFor(label);

        core::RunConfig cfg;
        cfg.gpu = gpu::GpuConfig::rtx2060HighOccupancy();
        const auto base = sim.run(cfg);
        const double base_slowest = double(base.gpu.slowestWarpLatency());

        cfg.gpu.trace.coop = true; // 4 entries with CoopRT
        const auto coop = sim.run(cfg);

        cfg = core::RunConfig{};
        cfg.gpu = gpu::GpuConfig::rtx2060HighOccupancy();
        cfg.gpu.trace.warp_buffer_entries = 32; // big buffer, no coop
        const auto big = sim.run(cfg);

        const double c =
            double(coop.gpu.slowestWarpLatency()) / base_slowest;
        const double b =
            double(big.gpu.slowestWarpLatency()) / base_slowest;
        coop_col.push_back(c);
        big_col.push_back(b);
        t.row().cell(label).cell(c, 2).cell(b, 2);
    }
    if (!coop_col.empty())
        t.row()
            .cell("gmean")
            .cell(stats::geomean(coop_col), 2)
            .cell(stats::geomean(big_col), 2);
    benchutil::emit(t, opt);
    return 0;
}

/**
 * @file
 * Paper Fig. 14: latency of the slowest (longest-running) warp,
 * normalized to the 4-entry baseline — CoopRT with 4 entries vs the
 * 32-entry warp buffer without CoopRT. Lower is better; the slowest
 * warp bounds the frame rate in real-time rendering. The paper:
 * 0.46x (CoopRT) vs 0.62x (big buffer).
 *
 * The headline ratios come from the per-warp completion records as
 * before; the ray-provenance recorder (src/raytrace/) then explains
 * WHY the slowest warp is slow: a final CoopRT run on the first scene
 * attributes every cycle of each SM's slowest sampled warp to the
 * stall-taxonomy bucket blocking its critical ray.
 */

#include <iostream>

#include "bench_util.hpp"
#include "raytrace/raytrace.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 14 — slowest-warp latency normalized to "
                      "baseline (lower is better)", opt);

    stats::Table t({"scene", "4 w/ coop", "32 w/o coop"});
    std::vector<double> coop_col, big_col;
    // Config 0: 4-entry baseline; 1: CoopRT (4 entries); 2: the
    // 32-entry buffer without CoopRT.
    std::vector<core::RunConfig> cfgs(3);
    for (auto &c : cfgs)
        c.gpu = gpu::GpuConfig::rtx2060HighOccupancy();
    cfgs[1].gpu.trace.coop = true;
    cfgs[2].gpu.trace.warp_buffer_entries = 32;
    const auto m = benchutil::runMatrix(opt, opt.scenes, cfgs, "fig14");
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const double base_slowest =
            double(m.at(s, 0).gpu.slowestWarpLatency());
        const double c =
            double(m.at(s, 1).gpu.slowestWarpLatency()) / base_slowest;
        const double b =
            double(m.at(s, 2).gpu.slowestWarpLatency()) / base_slowest;
        coop_col.push_back(c);
        big_col.push_back(b);
        t.row().cell(opt.scenes[s]).cell(c, 2).cell(b, 2);
    }
    if (!coop_col.empty())
        t.row()
            .cell("gmean")
            .cell(stats::geomean(coop_col), 2)
            .cell(stats::geomean(big_col), 2);
    benchutil::emit(t, opt);

    // Critical-path attribution of the slowest sampled warps (text
    // mode only, so --csv output is unchanged): one more CoopRT run
    // on the first scene with the provenance recorder attached.
    if (!opt.csv && !opt.scenes.empty()) {
        benchutil::note("fig14 critical path " + opt.scenes[0]);
        core::RunConfig cfg = cfgs[1];
        raytrace::Recorder ray;
        cfg.ray_recorder = &ray;
        core::simulationFor(opt.scenes[0]).run(cfg);
        std::printf("\nscene %s, CoopRT (4-entry buffer):\n",
                    opt.scenes[0].c_str());
        raytrace::writeCriticalPath(std::cout, ray.criticalPath());
    }
    return 0;
}

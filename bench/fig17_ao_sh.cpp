/**
 * @file
 * Paper Fig. 17: CoopRT speedups for the ambient-occlusion and shadow
 * shaders. These rays are short and coherent, so the gains are much
 * smaller than path tracing (paper: 1.42x AO, 1.28x SH on average).
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 17 — CoopRT speedup for AO and shadow "
                      "shaders", opt);

    stats::Table t({"scene", "AO speedup", "SH speedup"});
    std::vector<double> ao_col, sh_col;
    for (const auto &label : opt.scenes) {
        benchutil::note("fig17 " + label);
        core::RunConfig cfg;
        cfg.shader = core::ShaderKind::AmbientOcclusion;
        core::Comparison ao = core::compareCoop(label, cfg);
        cfg.shader = core::ShaderKind::Shadow;
        core::Comparison sh = core::compareCoop(label, cfg);
        ao_col.push_back(ao.speedup());
        sh_col.push_back(sh.speedup());
        t.row()
            .cell(label)
            .cell(ao.speedup(), 2)
            .cell(sh.speedup(), 2);
    }
    if (!ao_col.empty())
        t.row()
            .cell("gmean")
            .cell(stats::geomean(ao_col), 2)
            .cell(stats::geomean(sh_col), 2);
    benchutil::emit(t, opt);
    return 0;
}

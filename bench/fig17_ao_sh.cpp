/**
 * @file
 * Paper Fig. 17: CoopRT speedups for the ambient-occlusion and shadow
 * shaders. These rays are short and coherent, so the gains are much
 * smaller than path tracing (paper: 1.42x AO, 1.28x SH on average).
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 17 — CoopRT speedup for AO and shadow "
                      "shaders", opt);

    stats::Table t({"scene", "AO speedup", "SH speedup"});
    std::vector<double> ao_col, sh_col;
    // One campaign over all four cells: {AO, SH} × {base, coop}.
    std::vector<core::RunConfig> cfgs(4);
    cfgs[0].shader = core::ShaderKind::AmbientOcclusion;
    cfgs[1].shader = core::ShaderKind::AmbientOcclusion;
    cfgs[1].gpu.trace.coop = true;
    cfgs[2].shader = core::ShaderKind::Shadow;
    cfgs[3].shader = core::ShaderKind::Shadow;
    cfgs[3].gpu.trace.coop = true;
    const auto m = benchutil::runMatrix(opt, opt.scenes, cfgs, "fig17");
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const auto &label = opt.scenes[s];
        const double ao = double(m.at(s, 0).gpu.cycles) /
                          double(m.at(s, 1).gpu.cycles);
        const double sh = double(m.at(s, 2).gpu.cycles) /
                          double(m.at(s, 3).gpu.cycles);
        ao_col.push_back(ao);
        sh_col.push_back(sh);
        t.row().cell(label).cell(ao, 2).cell(sh, 2);
    }
    if (!ao_col.empty())
        t.row()
            .cell("gmean")
            .cell(stats::geomean(ao_col), 2)
            .cell(stats::geomean(sh_col), 2);
    benchutil::emit(t, opt);
    return 0;
}

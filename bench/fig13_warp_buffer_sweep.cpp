/**
 * @file
 * Paper Fig. 13: speedup for RT warp-buffer sizes 8/16/32 without
 * CoopRT and 4/8/16/32 with CoopRT, all normalized to the 4-entry
 * baseline. The paper's headline: CoopRT with just 4 entries beats
 * the 32-entry baseline buffer.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 13 — speedup vs warp-buffer size, with and "
                      "without CoopRT (baseline: 4 entries, no coop)",
                      opt);

    const int sizes[] = {8, 16, 32};
    const int coop_sizes[] = {4, 8, 16, 32};

    stats::Table t({"scene", "8 w/o", "16 w/o", "32 w/o", "4 w/",
                    "8 w/", "16 w/", "32 w/"});
    std::vector<std::vector<double>> cols(7);

    // Config 0: the 4-entry high-occupancy baseline; then the seven
    // buffer variants in column order.
    auto high_occ = [] {
        core::RunConfig c;
        c.gpu = gpu::GpuConfig::rtx2060HighOccupancy();
        return c;
    };
    std::vector<core::RunConfig> cfgs;
    cfgs.push_back(high_occ());
    for (int entries : sizes) {
        auto c = high_occ();
        c.gpu.trace.warp_buffer_entries = entries;
        cfgs.push_back(c);
    }
    for (int entries : coop_sizes) {
        auto c = high_occ();
        c.gpu.trace.coop = true;
        c.gpu.trace.warp_buffer_entries = entries;
        cfgs.push_back(c);
    }
    const auto m = benchutil::runMatrix(opt, opt.scenes, cfgs, "fig13");
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const double base = double(m.at(s, 0).gpu.cycles);
        auto row = &t.row().cell(opt.scenes[s]);
        for (std::size_t k = 0; k + 1 < cfgs.size(); ++k) {
            const double sp = base / double(m.at(s, k + 1).gpu.cycles);
            cols[k].push_back(sp);
            row->cell(sp, 2);
        }
    }
    if (!cols[0].empty()) {
        auto row = &t.row().cell("gmean");
        for (auto &c : cols)
            row->cell(stats::geomean(c), 2);
    }
    benchutil::emit(t, opt);
    return 0;
}

/**
 * @file
 * Paper Fig. 13: speedup for RT warp-buffer sizes 8/16/32 without
 * CoopRT and 4/8/16/32 with CoopRT, all normalized to the 4-entry
 * baseline. The paper's headline: CoopRT with just 4 entries beats
 * the 32-entry baseline buffer.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 13 — speedup vs warp-buffer size, with and "
                      "without CoopRT (baseline: 4 entries, no coop)",
                      opt);

    const int sizes[] = {8, 16, 32};
    const int coop_sizes[] = {4, 8, 16, 32};

    stats::Table t({"scene", "8 w/o", "16 w/o", "32 w/o", "4 w/",
                    "8 w/", "16 w/", "32 w/"});
    std::vector<std::vector<double>> cols(7);

    for (const auto &label : opt.scenes) {
        benchutil::note("fig13 " + label);
        const auto &sim = core::simulationFor(label);
        core::RunConfig cfg;
        cfg.gpu = gpu::GpuConfig::rtx2060HighOccupancy();
        const auto base = sim.run(cfg);

        auto row = &t.row().cell(label);
        int col = 0;
        for (int entries : sizes) {
            cfg = core::RunConfig{};
            cfg.gpu = gpu::GpuConfig::rtx2060HighOccupancy();
            cfg.gpu.trace.warp_buffer_entries = entries;
            const auto r = sim.run(cfg);
            const double s =
                double(base.gpu.cycles) / double(r.gpu.cycles);
            cols[std::size_t(col++)].push_back(s);
            row->cell(s, 2);
        }
        for (int entries : coop_sizes) {
            cfg = core::RunConfig{};
            cfg.gpu = gpu::GpuConfig::rtx2060HighOccupancy();
            cfg.gpu.trace.coop = true;
            cfg.gpu.trace.warp_buffer_entries = entries;
            const auto r = sim.run(cfg);
            const double s =
                double(base.gpu.cycles) / double(r.gpu.cycles);
            cols[std::size_t(col++)].push_back(s);
            row->cell(s, 2);
        }
    }
    if (!cols[0].empty()) {
        auto row = &t.row().cell("gmean");
        for (auto &c : cols)
            row->cell(stats::geomean(c), 2);
    }
    benchutil::emit(t, opt);
    return 0;
}

/**
 * @file
 * Paper Fig. 4: distribution of thread status inside the RT unit
 * (inactive / busy / waiting-after-early-finish), sampled at fixed
 * intervals on the baseline, path tracing.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 4 — thread status distribution (baseline)",
                      opt);

    stats::Table t({"scene", "inactive %", "busy %", "early-wait %"});
    for (const auto &label : opt.scenes) {
        benchutil::note("fig04 " + label);
        const auto &sim = core::simulationFor(label);
        core::RunOutcome r = sim.run(core::RunConfig{});
        const double total = double(r.gpu.thread_status.total());
        if (total == 0)
            continue;
        t.row()
            .cell(label)
            .cell(100.0 * double(r.gpu.thread_status.inactive) / total,
                  1)
            .cell(100.0 * double(r.gpu.thread_status.busy) / total, 1)
            .cell(100.0 * double(r.gpu.thread_status.waiting) / total,
                  1);
    }
    benchutil::emit(t, opt);
    return 0;
}

/**
 * @file
 * Paper Fig. 4: distribution of thread status inside the RT unit
 * (inactive / busy / waiting-after-early-finish) on the baseline,
 * path tracing. Exact per-cycle totals from the stall-attribution
 * profiler (prof::Summary::threads), not interval samples.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 4 — thread status distribution (baseline)",
                      opt);

    stats::Table t({"scene", "inactive %", "busy %", "early-wait %"});
    const auto m = benchutil::runMatrix(
        opt, opt.scenes, {core::RunConfig{}}, "fig04",
        /*attach_profiler=*/true);
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const auto &label = opt.scenes[s];
        const core::RunOutcome &r = m.at(s, 0);
        const auto &th = r.gpu.prof_summary.threads;
        const double total = double(th.total());
        if (total == 0)
            continue;
        t.row()
            .cell(label)
            .cell(100.0 * double(th.inactive) / total, 1)
            .cell(100.0 * double(th.busy) / total, 1)
            .cell(100.0 * double(th.waiting) / total, 1);
    }
    benchutil::emit(t, opt);
    return 0;
}

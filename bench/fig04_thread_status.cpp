/**
 * @file
 * Paper Fig. 4: distribution of thread status inside the RT unit
 * (inactive / busy / waiting-after-early-finish) on the baseline,
 * path tracing. Exact per-cycle totals from the stall-attribution
 * profiler (prof::Summary::threads), not interval samples.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 4 — thread status distribution (baseline)",
                      opt);

    prof::Profiler profiler;
    stats::Table t({"scene", "inactive %", "busy %", "early-wait %"});
    for (const auto &label : opt.scenes) {
        benchutil::note("fig04 " + label);
        const auto &sim = core::simulationFor(label);
        core::RunConfig cfg;
        cfg.profiler = &profiler;
        core::RunOutcome r = sim.run(cfg);
        const auto &th = r.gpu.prof_summary.threads;
        const double total = double(th.total());
        if (total == 0)
            continue;
        t.row()
            .cell(label)
            .cell(100.0 * double(th.inactive) / total, 1)
            .cell(100.0 * double(th.busy) / total, 1)
            .cell(100.0 * double(th.waiting) / total, 1);
    }
    benchutil::emit(t, opt);
    return 0;
}

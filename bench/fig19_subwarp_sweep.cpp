/**
 * @file
 * Paper Fig. 19 (Section 7.5): CoopRT speedup for subwarp sizes 4, 8,
 * 16 and 32 — restricting which threads may help each other to save
 * area. The paper: 1.72x/1.97x/2.09x/2.15x, biggest drop from 8 to 4.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 19 — CoopRT speedup vs subwarp size", opt);

    const int subwarps[] = {4, 8, 16, 32};
    stats::Table t({"scene", "sw 4", "sw 8", "sw 16", "sw 32"});
    std::vector<std::vector<double>> cols(4);

    for (const auto &label : opt.scenes) {
        benchutil::note("fig19 " + label);
        const auto &sim = core::simulationFor(label);
        core::RunConfig cfg;
        const auto base = sim.run(cfg);

        auto row = &t.row().cell(label);
        for (std::size_t k = 0; k < 4; ++k) {
            cfg = core::RunConfig{};
            cfg.gpu.trace.coop = true;
            cfg.gpu.trace.subwarp_size = subwarps[k];
            const auto r = sim.run(cfg);
            const double s =
                double(base.gpu.cycles) / double(r.gpu.cycles);
            cols[k].push_back(s);
            row->cell(s, 2);
        }
    }
    if (!cols[0].empty()) {
        auto row = &t.row().cell("gmean");
        for (auto &c : cols)
            row->cell(stats::geomean(c), 2);
    }
    benchutil::emit(t, opt);
    return 0;
}

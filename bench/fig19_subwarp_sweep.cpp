/**
 * @file
 * Paper Fig. 19 (Section 7.5): CoopRT speedup for subwarp sizes 4, 8,
 * 16 and 32 — restricting which threads may help each other to save
 * area. The paper: 1.72x/1.97x/2.09x/2.15x, biggest drop from 8 to 4.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 19 — CoopRT speedup vs subwarp size", opt);

    const int subwarps[] = {4, 8, 16, 32};
    stats::Table t({"scene", "sw 4", "sw 8", "sw 16", "sw 32"});
    std::vector<std::vector<double>> cols(4);

    // Config 0 is the baseline; configs 1..4 the subwarp variants.
    std::vector<core::RunConfig> cfgs(5);
    for (std::size_t k = 0; k < 4; ++k) {
        cfgs[k + 1].gpu.trace.coop = true;
        cfgs[k + 1].gpu.trace.subwarp_size = subwarps[k];
    }
    const auto m = benchutil::runMatrix(opt, opt.scenes, cfgs, "fig19");
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const double base = double(m.at(s, 0).gpu.cycles);
        auto row = &t.row().cell(opt.scenes[s]);
        for (std::size_t k = 0; k < 4; ++k) {
            const double sp = base / double(m.at(s, k + 1).gpu.cycles);
            cols[k].push_back(sp);
            row->cell(sp, 2);
        }
    }
    if (!cols[0].empty()) {
        auto row = &t.row().cell("gmean");
        for (auto &c : cols)
            row->cell(stats::geomean(c), 2);
    }
    benchutil::emit(t, opt);
    return 0;
}

/**
 * @file
 * Paper Fig. 16: L1 and L2 miss rates, baseline vs CoopRT. The paper
 * observes higher L1 miss rates under CoopRT (more contention) but
 * similar L2 miss rates (L1 reuse migrates to L2), and that MLP
 * matters more than the miss count.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 16 — cache miss rates, baseline vs CoopRT",
                      opt);

    stats::Table t({"scene", "L1 base", "L1 coop", "L2 base",
                    "L2 coop", "L2 accesses x"});
    const auto cmps = benchutil::compareCoopAll(
        opt, opt.scenes, core::RunConfig{}, "fig16");
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const auto &label = opt.scenes[s];
        const core::Comparison &cmp = cmps[s];
        t.row()
            .cell(label)
            .cell(cmp.base.gpu.l1.missRate(), 3)
            .cell(cmp.coop.gpu.l1.missRate(), 3)
            .cell(cmp.base.gpu.l2.missRate(), 3)
            .cell(cmp.coop.gpu.l2.missRate(), 3)
            .cell(double(cmp.coop.gpu.l2.accesses) /
                      double(cmp.base.gpu.l2.accesses),
                  2);
    }
    benchutil::emit(t, opt);
    return 0;
}

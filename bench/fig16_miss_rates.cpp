/**
 * @file
 * Paper Fig. 16: L1 and L2 miss rates, baseline vs CoopRT. The paper
 * observes higher L1 miss rates under CoopRT (more contention) but
 * similar L2 miss rates (L1 reuse migrates to L2), and that MLP
 * matters more than the miss count.
 *
 * The L1 columns are derived from the `cooprt::memscope` per-line
 * serving-level attribution rather than the raw cache counters; the
 * two agree exactly by the `memscope.traffic_conservation` invariant
 * (see DESIGN.md), so the headline table is byte-identical to the
 * pre-memscope accounting. A second table attributes the L1 misses
 * by BVH tree depth, aggregated over the selected scenes.
 */

#include <algorithm>

#include "bench_util.hpp"

namespace {

using namespace cooprt;

/**
 * L1 miss rate recomputed from the memscope line-fetch attribution:
 * every L1 access is classified by the level that served it, so
 * misses are exactly the lines served by L2 or DRAM.
 */
double
l1MissFromMemscope(const core::RunOutcome &o)
{
    const auto &t = o.gpu.memscope_summary.traffic;
    const std::uint64_t total = t.lineTotal();
    if (total == 0)
        return 0.0;
    return double(t.line_level[1] + t.line_level[2]) / double(total);
}

/** Per-depth accumulation across scenes for one config column. */
struct DepthAgg
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0; ///< node fetches served past L1
    std::uint64_t lanes = 0;

    void
    add(const memscope::Summary::DepthRow &d)
    {
        accesses += d.accesses;
        misses += d.level[1] + d.level[2];
        lanes += d.lanes;
    }

    double missRate() const
    {
        return accesses == 0 ? 0.0 : double(misses) / double(accesses);
    }

    double avgLanes() const
    {
        return accesses == 0 ? 0.0 : double(lanes) / double(accesses);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 16 — cache miss rates, baseline vs CoopRT",
                      opt);

    stats::Table t({"scene", "L1 base", "L1 coop", "L2 base",
                    "L2 coop", "L2 accesses x"});
    const auto cmps = benchutil::compareCoopAll(
        opt, opt.scenes, core::RunConfig{}, "fig16",
        /*attach_memscope=*/true);
    std::vector<DepthAgg> base_depths, coop_depths;
    auto accumulate = [](std::vector<DepthAgg> &agg,
                         const memscope::Summary &m) {
        for (const auto &d : m.depths) {
            if (agg.size() <= std::size_t(d.depth))
                agg.resize(std::size_t(d.depth) + 1);
            agg[std::size_t(d.depth)].add(d);
        }
    };
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const auto &label = opt.scenes[s];
        const core::Comparison &cmp = cmps[s];
        t.row()
            .cell(label)
            .cell(l1MissFromMemscope(cmp.base), 3)
            .cell(l1MissFromMemscope(cmp.coop), 3)
            .cell(cmp.base.gpu.l2.missRate(), 3)
            .cell(cmp.coop.gpu.l2.missRate(), 3)
            .cell(double(cmp.coop.gpu.l2.accesses) /
                      double(cmp.base.gpu.l2.accesses),
                  2);
        accumulate(base_depths, cmp.base.gpu.memscope_summary);
        accumulate(coop_depths, cmp.coop.gpu.memscope_summary);
    }
    benchutil::emit(t, opt);

    // Where in the tree do the misses live? Node fetches (RT-unit
    // side of the memscope attribution), bucketed by BVH depth and
    // aggregated over the selected scenes.
    benchutil::banner(
        "Fig. 16b — L1 miss attribution by BVH depth", opt);
    stats::Table d({"depth", "base fetches", "base miss",
                    "coop fetches", "coop miss", "coop lanes"});
    const std::size_t max_depth =
        std::max(base_depths.size(), coop_depths.size());
    base_depths.resize(max_depth);
    coop_depths.resize(max_depth);
    for (std::size_t i = 0; i < max_depth; ++i) {
        if (base_depths[i].accesses == 0 &&
            coop_depths[i].accesses == 0)
            continue;
        d.row()
            .cell(double(i), 0)
            .cell(double(base_depths[i].accesses), 0)
            .cell(base_depths[i].missRate(), 3)
            .cell(double(coop_depths[i].accesses), 0)
            .cell(coop_depths[i].missRate(), 3)
            .cell(coop_depths[i].avgLanes(), 2);
    }
    benchutil::emit(d, opt);
    return 0;
}

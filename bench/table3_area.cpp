/**
 * @file
 * Paper Table 3 (Section 7.5): synthesized area of the CoopRT
 * hardware for subwarp sizes 32/16/8/4, plus the warp-buffer
 * overhead computation ("< 3.0 % of the warp buffer area").
 * Model values are printed next to the paper's synthesis results.
 */

#include "bench_util.hpp"
#include "power/area_model.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Table 3 — CoopRT area vs subwarp size "
                      "(model vs paper synthesis)", opt);

    struct PaperRow
    {
        int subwarp;
        std::uint64_t cells;
        double um2;
    };
    const PaperRow paper[] = {{32, 16122, 13347.0},
                              {16, 15867, 13104.0},
                              {8, 15511, 12661.0},
                              {4, 15167, 12055.0}};

    stats::Table t({"subwarp", "cells (model)", "cells (paper)",
                    "area um2 (model)", "area um2 (paper)",
                    "% change (model)"});
    const double a32 = power::AreaModel::coopLogic(32).area_um2;
    for (const auto &row : paper) {
        const auto m = power::AreaModel::coopLogic(row.subwarp);
        t.row()
            .cell(std::to_string(row.subwarp))
            .cell(m.cells)
            .cell(row.cells)
            .cell(m.area_um2, 0)
            .cell(row.um2, 0)
            .cell(100.0 * (a32 - m.area_um2) / a32, 1);
    }
    benchutil::emit(t, opt);

    if (!opt.csv) {
        const auto full = power::AreaModel::coopLogic(32);
        std::printf("\nwarp buffer: %llu bits (4 entries x 32 threads "
                    "x 768 bits)\n",
                    (unsigned long long)power::AreaModel::warpBufferBits());
        std::printf("CoopRT logic ~= %.0f flip-flop equivalents + "
                    "%d extra bits/thread\n",
                    full.ffEquivalent(),
                    power::AreaModel::kExtraBitsPerThread);
        std::printf("overhead: %.2f%% of the warp buffer area "
                    "(paper: <3.0%%)\n",
                    100.0 * power::AreaModel::overheadFraction());
        std::printf("one extra warp-buffer entry alone would cost "
                    "%llu bits\n",
                    (unsigned long long)
                        power::AreaModel::warpBufferEntryBits());
    }
    return 0;
}

/**
 * @file
 * Paper Fig. 15: energy-delay-product improvement over the 4-entry
 * baseline, for warp-buffer sizes 8/16/32 without CoopRT vs CoopRT
 * with 4 entries. The paper: gmeans 1.54x/1.75x/1.75x vs 2.29x —
 * CoopRT wins on EDP with far less area.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 15 — EDP improvement over 4-entry baseline",
                      opt);

    stats::Table t({"scene", "8 w/o", "16 w/o", "32 w/o", "4 w/coop"});
    std::vector<std::vector<double>> cols(4);

    for (const auto &label : opt.scenes) {
        benchutil::note("fig15 " + label);
        const auto &sim = core::simulationFor(label);
        core::RunConfig cfg;
        cfg.gpu = gpu::GpuConfig::rtx2060HighOccupancy();
        const auto base = sim.run(cfg);
        const double base_edp = base.power.edp();

        auto row = &t.row().cell(label);
        int col = 0;
        for (int entries : {8, 16, 32}) {
            cfg = core::RunConfig{};
        cfg.gpu = gpu::GpuConfig::rtx2060HighOccupancy();
            cfg.gpu.trace.warp_buffer_entries = entries;
            const auto r = sim.run(cfg);
            const double e = base_edp / r.power.edp();
            cols[std::size_t(col++)].push_back(e);
            row->cell(e, 2);
        }
        cfg = core::RunConfig{};
        cfg.gpu = gpu::GpuConfig::rtx2060HighOccupancy();
        cfg.gpu.trace.coop = true;
        const auto coop = sim.run(cfg);
        const double e = base_edp / coop.power.edp();
        cols[3].push_back(e);
        row->cell(e, 2);
    }
    if (!cols[0].empty()) {
        auto row = &t.row().cell("gmean");
        for (auto &c : cols)
            row->cell(stats::geomean(c), 2);
    }
    benchutil::emit(t, opt);
    return 0;
}

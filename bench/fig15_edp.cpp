/**
 * @file
 * Paper Fig. 15: energy-delay-product improvement over the 4-entry
 * baseline, for warp-buffer sizes 8/16/32 without CoopRT vs CoopRT
 * with 4 entries. The paper: gmeans 1.54x/1.75x/1.75x vs 2.29x —
 * CoopRT wins on EDP with far less area.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace cooprt;
    auto opt = benchutil::parse(argc, argv);
    benchutil::banner("Fig. 15 — EDP improvement over 4-entry baseline",
                      opt);

    stats::Table t({"scene", "8 w/o", "16 w/o", "32 w/o", "4 w/coop"});
    std::vector<std::vector<double>> cols(4);

    // Config 0: the 4-entry baseline; 1-3: bigger buffers without
    // CoopRT; 4: CoopRT with the 4-entry buffer.
    auto high_occ = [] {
        core::RunConfig c;
        c.gpu = gpu::GpuConfig::rtx2060HighOccupancy();
        return c;
    };
    std::vector<core::RunConfig> cfgs;
    cfgs.push_back(high_occ());
    for (int entries : {8, 16, 32}) {
        auto c = high_occ();
        c.gpu.trace.warp_buffer_entries = entries;
        cfgs.push_back(c);
    }
    {
        auto c = high_occ();
        c.gpu.trace.coop = true;
        cfgs.push_back(c);
    }
    const auto m = benchutil::runMatrix(opt, opt.scenes, cfgs, "fig15");
    for (std::size_t s = 0; s < opt.scenes.size(); ++s) {
        const double base_edp = m.at(s, 0).power.edp();
        auto row = &t.row().cell(opt.scenes[s]);
        for (std::size_t k = 0; k < 4; ++k) {
            const double e = base_edp / m.at(s, k + 1).power.edp();
            cols[k].push_back(e);
            row->cell(e, 2);
        }
    }
    if (!cols[0].empty()) {
        auto row = &t.row().cell("gmean");
        for (auto &c : cols)
            row->cell(stats::geomean(c), 2);
    }
    benchutil::emit(t, opt);
    return 0;
}

/**
 * @file
 * Minimal Wavefront OBJ import/export for triangle meshes.
 *
 * Lets users bring their own geometry into the simulator (the paper
 * uses LumiBench assets; downstream users will have OBJ files) and
 * lets the examples dump generated scenes for inspection in external
 * viewers.
 */

#ifndef COOPRT_SCENE_OBJ_IO_HPP
#define COOPRT_SCENE_OBJ_IO_HPP

#include <iosfwd>
#include <string>

#include "scene/mesh.hpp"

namespace cooprt::scene {

/**
 * Parse an OBJ stream into @p mesh (appending). Supports `v` and `f`
 * records; faces with more than 3 vertices are fan-triangulated;
 * texture/normal indices (`f a/b/c`) are accepted and ignored.
 * Negative (relative) indices are supported.
 *
 * @return Number of triangles appended.
 * @throws std::runtime_error on malformed records or out-of-range
 *         indices.
 */
std::size_t loadObj(std::istream &in, Mesh &mesh, MaterialId mat = 0);

/** Convenience overload reading from a file path. */
std::size_t loadObjFile(const std::string &path, Mesh &mesh,
                        MaterialId mat = 0);

/** Write @p mesh as an OBJ stream (v/f records, one object). */
void saveObj(std::ostream &out, const Mesh &mesh);

/** Convenience overload writing to a file path. */
void saveObjFile(const std::string &path, const Mesh &mesh);

} // namespace cooprt::scene

#endif // COOPRT_SCENE_OBJ_IO_HPP

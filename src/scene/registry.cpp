#include "scene/registry.hpp"

#include <chrono>
#include <map>
#include <mutex>
#include <stdexcept>

#include "scene/generators.hpp"

namespace cooprt::scene {

namespace {

/** Monotonic host seconds, for Scene::build_seconds only (scene does
 *  not depend on cooprt_telemetry; telemetry re-reports the value). */
double
wallSeconds()
{
    // cooprt-lint: allow(unseeded-randomness) one-time scene
    // construction cost is reporting-only (telemetry scene_load
    // phase) and never feeds simulated state
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch())
        .count();
}

} // namespace

const std::vector<std::string> &
SceneRegistry::allLabels()
{
    static const std::vector<std::string> labels = {
        "wknd", "ship", "bunny", "spnza", "chsnt", "bath", "ref",
        "crnvl", "fox", "party", "sprng", "lands", "frst", "car",
        "robot",
    };
    return labels;
}

const std::vector<std::string> &
SceneRegistry::queryLabels()
{
    static const std::vector<std::string> labels = {
        "ptsu", "ptsc", "ptss", "amrs", "amrd",
    };
    return labels;
}

bool
SceneRegistry::has(const std::string &label)
{
    for (const auto &l : allLabels())
        if (l == label)
            return true;
    for (const auto &l : queryLabels())
        if (l == label)
            return true;
    return false;
}

Scene
SceneRegistry::build(const std::string &label)
{
    // Parameters are chosen so that (a) triangle counts — and hence
    // BVH sizes/depths — follow the relative ordering of the paper's
    // Table 2, and (b) openness/clustering reproduces each scene's
    // divergence profile described in Sections 3 and 7.1.
    // Sizes are chosen so that every tree exceeds the (bench-scaled)
    // L1 and most exceed the L2, keeping traversal memory-bound as
    // in the paper, whose trees span 0.2 MB - 1.7 GB (Table 2).
    if (label == "wknd")
        return makeObjectScene("wknd", 101, 56, 0.8f);
    if (label == "ship")
        return makeShipScene("ship", 102, 2500);
    if (label == "bunny")
        return makeObjectScene("bunny", 103, 110);
    if (label == "spnza")
        // Fully enclosed atrium: minimal exposed sky, high SIMT
        // efficiency despite many BVH node visits (paper Section 7.1).
        return makeClosedRoomScene("spnza", 104, 22, 0.0f, 90);
    if (label == "chsnt")
        return makeTreeScene("chsnt", 105, 300);
    if (label == "bath")
        return makeClosedRoomScene("bath", 106, 18, 0.25f, 70);
    if (label == "ref")
        return makeClosedRoomScene("ref", 107, 26, 0.10f, 90);
    if (label == "crnvl")
        // Sparse open structures with dense lattices: extreme
        // divergence + long surviving traversals, highest gains.
        return makeCarnivalScene("crnvl", 108, 120, 60);
    if (label == "fox")
        // Sparse stand of extremely dense crowns: most rays escape
        // between trees (divergence), the rest traverse very long —
        // the paper's best-case scene (up to 5.11x there).
        return makeForestScene("fox", 109, 2250, 40, 0.85f);
    if (label == "party")
        return makeCarnivalScene("party", 110, 130, 70);
    if (label == "sprng")
        return makeForestScene("sprng", 111, 400, 55, 0.90f);
    if (label == "lands")
        return makeTerrainScene("lands", 112, 140);
    if (label == "frst")
        return makeForestScene("frst", 113, 700, 70, 0.95f);
    if (label == "car")
        return makeObjectScene("car", 114, 350, 1.2f);
    if (label == "robot")
        return makeObjectScene("robot", 115, 400, 1.4f);
    // Query scenes (cooprt::query): proxy-primitive point clouds and
    // AMR grids, sized so their trees land in the same
    // L1-exceeding range as the rendering scenes above.
    if (label == "ptsu")
        return makeUniformPointCloudScene("ptsu", 116, 9000);
    if (label == "ptsc")
        return makeClusteredPointCloudScene("ptsc", 117, 9000, 24);
    if (label == "ptss")
        return makeSurfacePointCloudScene("ptss", 118, 9000);
    if (label == "amrs")
        return makeAmrScene("amrs", 119, 4, 0.55f);
    if (label == "amrd")
        return makeAmrScene("amrd", 120, 6, 1.3f);
    throw std::out_of_range("unknown scene label: " + label);
}

namespace {

/**
 * Per-label build-once slot. The map itself is created once (all
 * labels pre-inserted, structure immutable afterwards, so concurrent
 * lookups need no lock) and each scene builds under its own
 * once_flag — different labels build concurrently on the campaign
 * pool, the same label exactly once.
 */
struct SceneSlot
{
    std::once_flag once;
    std::unique_ptr<Scene> scene;
};

std::map<std::string, SceneSlot> &
sceneCache()
{
    static std::map<std::string, SceneSlot> cache;
    static std::once_flag init;
    std::call_once(init, [] {
        for (const auto &l : SceneRegistry::allLabels())
            cache.try_emplace(l);
        for (const auto &l : SceneRegistry::queryLabels())
            cache.try_emplace(l);
    });
    return cache;
}

} // namespace

const Scene &
SceneRegistry::get(const std::string &label)
{
    auto &cache = sceneCache();
    auto it = cache.find(label);
    if (it == cache.end())
        throw std::out_of_range("unknown scene label: " + label);
    SceneSlot &slot = it->second;
    std::call_once(slot.once, [&] {
        const double t0 = wallSeconds();
        auto s = std::make_unique<Scene>(build(label));
        s->default_resolution = benchResolution(label);
        s->build_seconds = wallSeconds() - t0;
        slot.scene = std::move(s);
    });
    return *slot.scene;
}

int
SceneRegistry::benchResolution(const std::string &label)
{
    if (label == "car" || label == "robot")
        return 32;
    // The heaviest traversal workloads run at 40x40, mirroring the
    // paper's own down-scaling of its heaviest scenes.
    if (label == "fox" || label == "party" || label == "frst")
        return 40;
    // Query scenes issue one query per "pixel"; 32x32 = 1024 queries
    // keeps the oracle cross-check cheap at bench scale.
    for (const auto &l : queryLabels())
        if (l == label)
            return 32;
    if (!has(label))
        throw std::out_of_range("unknown scene label: " + label);
    return 48;
}

} // namespace cooprt::scene

/**
 * @file
 * The scene registry: 15 procedural stand-ins for the LumiBench scenes
 * evaluated in the paper (its Figs. 1-19 scene axis).
 */

#ifndef COOPRT_SCENE_REGISTRY_HPP
#define COOPRT_SCENE_REGISTRY_HPP

#include <memory>
#include <string>
#include <vector>

#include "scene/scene.hpp"

namespace cooprt::scene {

/**
 * Builds and caches the benchmark scenes by label.
 *
 * Labels follow the paper: wknd, ship, bunny, spnza, chsnt, bath, ref,
 * crnvl, fox, party, sprng, lands, frst, car, robot. (The paper's
 * `park` scene never completed simulation and is excluded there too.)
 *
 * Scenes are built once per process and shared; they are immutable
 * after construction.
 */
class SceneRegistry
{
  public:
    /**
     * The 15 rendering benchmark labels, in the paper's figure
     * order. Query scenes are deliberately *not* included: every
     * existing bench path-traces this list, and the proxy-primitive
     * scenes are not renderable.
     */
    static const std::vector<std::string> &allLabels();

    /**
     * The non-rendering query scenes (`cooprt::query`): three point
     * clouds (ptsu uniform, ptsc Gaussian-mixture, ptss
     * surface-sampled) for k-NN / radius search, and two AMR grids
     * (amrs shallow, amrd deep hotspot-refined) for point
     * containment.
     */
    static const std::vector<std::string> &queryLabels();

    /** True when @p label names a registered scene (either list). */
    static bool has(const std::string &label);

    /**
     * The scene for @p label, built on first use and cached.
     * Throws std::out_of_range for unknown labels.
     */
    static const Scene &get(const std::string &label);

    /**
     * Bench resolution for @p label: 64, except `car`/`robot` at 32 —
     * mirroring the paper's use of 128x128 instead of 256x256 for its
     * two largest scenes.
     */
    static int benchResolution(const std::string &label);

  private:
    static Scene build(const std::string &label);
};

} // namespace cooprt::scene

#endif // COOPRT_SCENE_REGISTRY_HPP

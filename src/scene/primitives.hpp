/**
 * @file
 * Tessellated primitive shapes used by the procedural scene
 * generators: quads, boxes, spheres, cones, disks and heightfields.
 */

#ifndef COOPRT_SCENE_PRIMITIVES_HPP
#define COOPRT_SCENE_PRIMITIVES_HPP

#include <cstdint>

#include "geom/vec3.hpp"
#include "scene/mesh.hpp"

namespace cooprt::scene {

/**
 * Append a quad (two triangles) spanned by corner @p origin and edge
 * vectors @p eu, @p ev.
 */
void addQuad(Mesh &mesh, const geom::Vec3 &origin, const geom::Vec3 &eu,
             const geom::Vec3 &ev, MaterialId mat = 0);

/** Append an axis-aligned box (12 triangles). */
void addBox(Mesh &mesh, const geom::Vec3 &lo, const geom::Vec3 &hi,
            MaterialId mat = 0);

/**
 * Append a UV-tessellated sphere.
 *
 * @param segments Number of longitudinal segments (>= 3). The sphere
 *                 produces roughly 2 * segments * (segments / 2)
 *                 triangles.
 */
void addSphere(Mesh &mesh, const geom::Vec3 &center, float radius,
               int segments, MaterialId mat = 0);

/** Append a cone with its base disk at @p base, apex above it. */
void addCone(Mesh &mesh, const geom::Vec3 &base, float radius,
             float height, int segments, MaterialId mat = 0);

/** Append a vertical cylinder (side wall only). */
void addCylinder(Mesh &mesh, const geom::Vec3 &base, float radius,
                 float height, int segments, MaterialId mat = 0);

/**
 * Append a heightfield grid over the XZ rectangle [lo, lo+size],
 * with heights supplied by @p height(x, z) in grid coordinates
 * [0, n] x [0, n]. Produces 2 * n * n triangles.
 */
template <typename HeightFn>
void
addHeightfield(Mesh &mesh, const geom::Vec3 &lo, float size_x,
               float size_z, int n, HeightFn height, MaterialId mat = 0)
{
    auto p = [&](int i, int j) {
        float x = lo.x + size_x * float(i) / float(n);
        float z = lo.z + size_z * float(j) / float(n);
        return geom::Vec3{x, lo.y + height(i, j), z};
    };
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            geom::Vec3 a = p(i, j), b = p(i + 1, j);
            geom::Vec3 c = p(i + 1, j + 1), d = p(i, j + 1);
            mesh.addTriangle({a, b, c}, mat);
            mesh.addTriangle({a, c, d}, mat);
        }
    }
}

} // namespace cooprt::scene

#endif // COOPRT_SCENE_PRIMITIVES_HPP

/**
 * @file
 * Triangle mesh container: the geometry input to the BVH builder.
 */

#ifndef COOPRT_SCENE_MESH_HPP
#define COOPRT_SCENE_MESH_HPP

#include <cstdint>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/triangle.hpp"
#include "scene/material.hpp"

namespace cooprt::scene {

/**
 * A triangle soup with per-triangle material ids.
 *
 * All generators append into a Mesh; the BVH builder consumes the
 * triangle array and refers back to primitives by index.
 */
class Mesh
{
  public:
    /** Append one triangle with material @p mat. */
    void
    addTriangle(const geom::Triangle &t, MaterialId mat = 0)
    {
        tris_.push_back(t);
        mats_.push_back(mat);
        bounds_.grow(t.bounds());
    }

    /** Append all triangles of @p other (material ids preserved). */
    void
    append(const Mesh &other)
    {
        tris_.insert(tris_.end(), other.tris_.begin(), other.tris_.end());
        mats_.insert(mats_.end(), other.mats_.begin(), other.mats_.end());
        bounds_.grow(other.bounds_);
    }

    std::size_t size() const { return tris_.size(); }
    bool empty() const { return tris_.empty(); }

    const geom::Triangle &tri(std::uint32_t i) const { return tris_[i]; }
    MaterialId materialOf(std::uint32_t i) const { return mats_[i]; }

    const std::vector<geom::Triangle> &triangles() const { return tris_; }

    /** Bounding box of the whole mesh (the BVH root box). */
    const geom::AABB &bounds() const { return bounds_; }

  private:
    std::vector<geom::Triangle> tris_;
    std::vector<MaterialId> mats_;
    geom::AABB bounds_;
};

} // namespace cooprt::scene

#endif // COOPRT_SCENE_MESH_HPP

#include "scene/obj_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cooprt::scene {

using geom::Triangle;
using geom::Vec3;

namespace {

/** Resolve an OBJ index (1-based, or negative-relative) to 0-based. */
std::size_t
resolveIndex(long idx, std::size_t count, const std::string &line)
{
    long resolved = idx > 0 ? idx - 1 : long(count) + idx;
    if (resolved < 0 || std::size_t(resolved) >= count)
        throw std::runtime_error("obj: index out of range in: " + line);
    return std::size_t(resolved);
}

/** Parse the vertex-index prefix of an `f` token ("12/3/4" -> 12). */
long
parseFaceToken(const std::string &tok, const std::string &line)
{
    try {
        return std::stol(tok); // stops at the first '/'
    } catch (const std::exception &) {
        throw std::runtime_error("obj: bad face token in: " + line);
    }
}

} // namespace

std::size_t
loadObj(std::istream &in, Mesh &mesh, MaterialId mat)
{
    std::vector<Vec3> verts;
    std::size_t added = 0;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string kind;
        if (!(ls >> kind) || kind.empty() || kind[0] == '#')
            continue;
        if (kind == "v") {
            Vec3 v;
            if (!(ls >> v.x >> v.y >> v.z))
                throw std::runtime_error("obj: bad vertex: " + line);
            verts.push_back(v);
        } else if (kind == "f") {
            std::vector<std::size_t> idx;
            std::string tok;
            while (ls >> tok)
                idx.push_back(resolveIndex(parseFaceToken(tok, line),
                                           verts.size(), line));
            if (idx.size() < 3)
                throw std::runtime_error("obj: face needs >=3 verts: " +
                                         line);
            for (std::size_t k = 2; k < idx.size(); ++k) {
                mesh.addTriangle(Triangle{verts[idx[0]],
                                          verts[idx[k - 1]],
                                          verts[idx[k]]}, mat);
                ++added;
            }
        }
        // vt/vn/o/g/usemtl/s etc. are silently ignored.
    }
    return added;
}

std::size_t
loadObjFile(const std::string &path, Mesh &mesh, MaterialId mat)
{
    std::ifstream f(path);
    if (!f)
        throw std::runtime_error("obj: cannot open " + path);
    return loadObj(f, mesh, mat);
}

void
saveObj(std::ostream &out, const Mesh &mesh)
{
    // 9 significant digits round-trip float32 exactly through text.
    out.precision(9);
    out << "# cooprt mesh, " << mesh.size() << " triangles\n";
    for (std::uint32_t i = 0; i < mesh.size(); ++i) {
        const Triangle &t = mesh.tri(i);
        out << "v " << t.v0.x << ' ' << t.v0.y << ' ' << t.v0.z << '\n'
            << "v " << t.v1.x << ' ' << t.v1.y << ' ' << t.v1.z << '\n'
            << "v " << t.v2.x << ' ' << t.v2.y << ' ' << t.v2.z << '\n';
    }
    for (std::size_t i = 0; i < mesh.size(); ++i) {
        const std::size_t b = 3 * i + 1;
        out << "f " << b << ' ' << b + 1 << ' ' << b + 2 << '\n';
    }
}

void
saveObjFile(const std::string &path, const Mesh &mesh)
{
    std::ofstream f(path);
    if (!f)
        throw std::runtime_error("obj: cannot open " + path);
    saveObj(f, mesh);
}

} // namespace cooprt::scene

/**
 * @file
 * Pinhole camera generating primary rays for the raygen shader.
 */

#ifndef COOPRT_SCENE_CAMERA_HPP
#define COOPRT_SCENE_CAMERA_HPP

#include <cmath>

#include "geom/ray.hpp"
#include "geom/vec3.hpp"

namespace cooprt::scene {

/**
 * A pinhole camera.
 *
 * Primary rays are generated exactly as a raygen shader would: one ray
 * per pixel (1 sample per pixel in the paper's configuration), with an
 * optional sub-pixel jitter.
 */
class Camera
{
  public:
    Camera() = default;

    /**
     * @param eye      Camera position.
     * @param lookat   Point the camera looks at.
     * @param up       Approximate up direction.
     * @param vfov_deg Vertical field of view in degrees.
     */
    Camera(const geom::Vec3 &eye, const geom::Vec3 &lookat,
           const geom::Vec3 &up, float vfov_deg)
        : eye_(eye)
    {
        const geom::Vec3 w = normalize(eye - lookat); // backward
        u_ = normalize(cross(up, w));                  // right
        v_ = cross(w, u_);                             // true up
        fwd_ = -w;
        half_tan_ = std::tan(vfov_deg * 3.14159265358979f / 360.0f);
    }

    /**
     * Primary ray through pixel (@p px, @p py) of a @p width x
     * @p height image; (@p jx, @p jy) in [0,1) is the sub-pixel
     * position (0.5, 0.5 = pixel center).
     */
    geom::Ray
    primaryRay(int px, int py, int width, int height, float jx = 0.5f,
               float jy = 0.5f) const
    {
        const float aspect = float(width) / float(height);
        const float sx = (2.0f * ((px + jx) / float(width)) - 1.0f) *
                         half_tan_ * aspect;
        // Image rows grow downward; flip so +v is up in the image.
        const float sy = (1.0f - 2.0f * ((py + jy) / float(height))) *
                         half_tan_;
        return geom::Ray(eye_, normalize(fwd_ + u_ * sx + v_ * sy));
    }

    const geom::Vec3 &eye() const { return eye_; }
    const geom::Vec3 &forward() const { return fwd_; }

  private:
    geom::Vec3 eye_;
    geom::Vec3 u_, v_, fwd_;
    float half_tan_ = 1.0f;
};

} // namespace cooprt::scene

#endif // COOPRT_SCENE_CAMERA_HPP

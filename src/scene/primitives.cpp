#include "scene/primitives.hpp"

#include <cmath>

namespace cooprt::scene {

using geom::Triangle;
using geom::Vec3;

void
addQuad(Mesh &mesh, const Vec3 &origin, const Vec3 &eu, const Vec3 &ev,
        MaterialId mat)
{
    const Vec3 a = origin;
    const Vec3 b = origin + eu;
    const Vec3 c = origin + eu + ev;
    const Vec3 d = origin + ev;
    mesh.addTriangle({a, b, c}, mat);
    mesh.addTriangle({a, c, d}, mat);
}

void
addBox(Mesh &mesh, const Vec3 &lo, const Vec3 &hi, MaterialId mat)
{
    const Vec3 e = hi - lo;
    const Vec3 ex{e.x, 0, 0}, ey{0, e.y, 0}, ez{0, 0, e.z};
    addQuad(mesh, lo, ex, ey, mat);                   // front  (z = lo)
    addQuad(mesh, lo + ez, ey, ex, mat);              // back   (z = hi)
    addQuad(mesh, lo, ey, ez, mat);                   // left   (x = lo)
    addQuad(mesh, lo + ex, ez, ey, mat);              // right  (x = hi)
    addQuad(mesh, lo, ez, ex, mat);                   // bottom (y = lo)
    addQuad(mesh, lo + ey, ex, ez, mat);              // top    (y = hi)
}

void
addSphere(Mesh &mesh, const Vec3 &center, float radius, int segments,
          MaterialId mat)
{
    const int nu = segments < 3 ? 3 : segments;
    const int nv = nu / 2 < 2 ? 2 : nu / 2;
    const float pi = 3.14159265358979f;

    auto point = [&](int i, int j) {
        const float theta = pi * float(j) / float(nv);   // polar
        const float phi = 2.0f * pi * float(i) / float(nu);
        return center + radius * Vec3{std::sin(theta) * std::cos(phi),
                                      std::cos(theta),
                                      std::sin(theta) * std::sin(phi)};
    };

    for (int i = 0; i < nu; ++i) {
        for (int j = 0; j < nv; ++j) {
            Vec3 a = point(i, j), b = point(i + 1, j);
            Vec3 c = point(i + 1, j + 1), d = point(i, j + 1);
            // Skip the degenerate triangles at the two poles.
            if (j > 0)
                mesh.addTriangle({a, b, c}, mat);
            if (j + 1 < nv)
                mesh.addTriangle({a, c, d}, mat);
        }
    }
}

void
addCone(Mesh &mesh, const Vec3 &base, float radius, float height,
        int segments, MaterialId mat)
{
    const int n = segments < 3 ? 3 : segments;
    const float pi = 3.14159265358979f;
    const Vec3 apex = base + Vec3{0, height, 0};

    auto rim = [&](int i) {
        const float phi = 2.0f * pi * float(i) / float(n);
        return base + radius * Vec3{std::cos(phi), 0, std::sin(phi)};
    };

    for (int i = 0; i < n; ++i) {
        Vec3 a = rim(i), b = rim(i + 1);
        mesh.addTriangle({a, b, apex}, mat);  // side
        mesh.addTriangle({a, base, b}, mat);  // base disk
    }
}

void
addCylinder(Mesh &mesh, const Vec3 &base, float radius, float height,
            int segments, MaterialId mat)
{
    const int n = segments < 3 ? 3 : segments;
    const float pi = 3.14159265358979f;
    const Vec3 up{0, height, 0};

    auto rim = [&](int i) {
        const float phi = 2.0f * pi * float(i) / float(n);
        return base + radius * Vec3{std::cos(phi), 0, std::sin(phi)};
    };

    for (int i = 0; i < n; ++i) {
        Vec3 a = rim(i), b = rim(i + 1);
        mesh.addTriangle({a, b, b + up}, mat);
        mesh.addTriangle({a, b + up, a + up}, mat);
    }
}

} // namespace cooprt::scene

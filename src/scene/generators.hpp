/**
 * @file
 * Procedural scene generators.
 *
 * These produce the 15 stand-in scenes for the LumiBench suite used in
 * the paper (Table 2). Each generator is parameterized along the two
 * axes that drive CoopRT's behaviour:
 *
 *  - *openness* — how quickly rays escape to the sky or die at lights,
 *    which controls the growth of inactive threads per bounce (paper
 *    Fig. 2 / Fig. 4);
 *  - *geometric clustering / depth* — which controls the distribution
 *    of traversal lengths and hence early-finishing threads.
 *
 * All generators are deterministic for a given seed.
 */

#ifndef COOPRT_SCENE_GENERATORS_HPP
#define COOPRT_SCENE_GENERATORS_HPP

#include <cstdint>

#include "scene/scene.hpp"

namespace cooprt::scene {

/**
 * A single detailed object (displaced sphere blob) on a ground plane
 * under an open sky. Small-object scenes: wknd, bunny, car, robot —
 * `detail` scales triangle count.
 */
Scene makeObjectScene(const std::string &name, std::uint64_t seed,
                      int detail, float object_scale = 1.0f);

/**
 * An elongated hull of boxes and cylinders on a water plane (ship).
 */
Scene makeShipScene(const std::string &name, std::uint64_t seed,
                    int detail);

/**
 * A closed interior: floor, walls, ceiling with an area light,
 * colonnade and clutter. `openness` in [0,1] removes that fraction of
 * the wall/ceiling area (0 = fully enclosed like sponza's atrium
 * core). Scenes: spnza, bath, ref.
 */
Scene makeClosedRoomScene(const std::string &name, std::uint64_t seed,
                          int detail, float openness,
                          int clutter_objects);

/**
 * A large solitary tree with a dense leaf canopy on terrain under an
 * open sky (chsnt).
 */
Scene makeTreeScene(const std::string &name, std::uint64_t seed,
                    int detail);

/**
 * Sparse tall structures (rides, tents, stalls) scattered over a
 * large open ground: extremely divergent, rays either escape
 * immediately or wander through dense lattices (crnvl, party).
 */
Scene makeCarnivalScene(const std::string &name, std::uint64_t seed,
                        int detail, int structures);

/**
 * A forest: many trees with dense canopies on rolling terrain, open
 * sky (fox, frst, sprng).
 */
Scene makeForestScene(const std::string &name, std::uint64_t seed,
                      int detail, int trees, float density);

/**
 * Rolling terrain heightfield with scattered rocks, open sky (lands).
 */
Scene makeTerrainScene(const std::string &name, std::uint64_t seed,
                       int detail);

// --- Query scenes (cooprt::query, non-rendering workloads) --------
//
// These encode point clouds and AMR cell hierarchies as degenerate
// proxy triangles (geom/proxy.hpp) so they flow through the BVH
// builder, the RT unit and every profiling layer unchanged. The
// three point distributions span the clustering axis that drives
// traversal-length skew: uniform (shallow, balanced BVH), Gaussian
// mixture (hot clusters, deep subtrees) and surface-sampled (a 2D
// shell in 3D space, extreme anisotropy).

/** Uniform points in a (non-cubic) box; kind = PointCloud (ptsu). */
Scene makeUniformPointCloudScene(const std::string &name,
                                 std::uint64_t seed, int points);

/**
 * Gaussian-mixture points: `clusters` isotropic bells with random
 * centers/widths; kind = PointCloud (ptsc).
 */
Scene makeClusteredPointCloudScene(const std::string &name,
                                   std::uint64_t seed, int points,
                                   int clusters);

/**
 * Points sampled on a displaced-sphere shell (a 2D surface, as from
 * a LiDAR scan); kind = PointCloud (ptss).
 */
Scene makeSurfacePointCloudScene(const std::string &name,
                                 std::uint64_t seed, int points);

/**
 * A nested-refinement AMR grid: the root cell subdivides 2x2x2
 * recursively, biased toward a random hotspot (refinement follows a
 * feature, as in flow solvers); only unrefined *leaf* cells are
 * emitted, so every interior point lies in exactly one cell. The
 * domain extent is deliberately non-power-of-two so cell boundaries
 * are float-rounded products that query points essentially never hit
 * exactly. kind = AmrCells (amrs, amrd).
 */
Scene makeAmrScene(const std::string &name, std::uint64_t seed,
                   int max_levels, float hotspot_bias);

} // namespace cooprt::scene

#endif // COOPRT_SCENE_GENERATORS_HPP

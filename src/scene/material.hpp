/**
 * @file
 * Minimal material model for the path-tracing workload.
 *
 * The paper's raygen shader (Listing 1) only needs three behaviours
 * from a material: scatter the ray (Lambertian bounce), terminate at a
 * light source (emissive), or terminate by absorption ("!scattered").
 */

#ifndef COOPRT_SCENE_MATERIAL_HPP
#define COOPRT_SCENE_MATERIAL_HPP

#include <cstdint>
#include <vector>

#include "geom/vec3.hpp"

namespace cooprt::scene {

/** Index into a scene's material table. */
using MaterialId = std::uint16_t;

/**
 * A surface material.
 *
 * emission > 0 marks a light source: a path terminates there and the
 * pixel accumulates the emitted radiance. Otherwise the surface is a
 * Lambertian reflector with the given albedo; `scatter_prob` is the
 * survival probability of the bounce (absorption terminates the path,
 * the `!scattered` branch of Listing 1).
 */
struct Material
{
    geom::Vec3 albedo{0.7f, 0.7f, 0.7f};
    /** Emitted radiance (grayscale); > 0 means light source. */
    float emission = 0.0f;
    /** Probability that a hit scatters rather than absorbs. */
    float scatter_prob = 1.0f;

    bool isLight() const { return emission > 0.0f; }
};

/** A small material table shared by all meshes of a scene. */
class MaterialTable
{
  public:
    MaterialTable()
    {
        // Id 0 is a default gray diffuse material.
        materials_.push_back(Material{});
    }

    /** Add a material and return its id. */
    MaterialId
    add(const Material &m)
    {
        materials_.push_back(m);
        return static_cast<MaterialId>(materials_.size() - 1);
    }

    const Material &operator[](MaterialId id) const
    { return materials_[id]; }

    std::size_t size() const { return materials_.size(); }

  private:
    std::vector<Material> materials_;
};

} // namespace cooprt::scene

#endif // COOPRT_SCENE_MATERIAL_HPP

#include "scene/generators.hpp"

#include <cmath>
#include <vector>

#include "geom/proxy.hpp"
#include "geom/rng.hpp"
#include "scene/primitives.hpp"

namespace cooprt::scene {

using geom::Pcg32;
using geom::Triangle;
using geom::Vec3;

namespace {

/** Standard palette used by all generators. */
struct Palette
{
    MaterialId gray;
    MaterialId ground;
    MaterialId dark;
    MaterialId leaf;
    MaterialId light;

    explicit Palette(MaterialTable &mats)
    {
        gray = mats.add({{0.70f, 0.70f, 0.70f}, 0.0f, 0.95f});
        ground = mats.add({{0.45f, 0.40f, 0.35f}, 0.0f, 0.90f});
        dark = mats.add({{0.30f, 0.30f, 0.35f}, 0.0f, 0.85f});
        leaf = mats.add({{0.30f, 0.55f, 0.25f}, 0.0f, 0.80f});
        light = mats.add({{1.0f, 1.0f, 1.0f}, 8.0f, 1.0f});
    }
};

/** Scatter random small triangles in a spherical cluster. */
void
addCluster(Mesh &mesh, Pcg32 &rng, const Vec3 &center, float radius,
           int tris, float tri_size, MaterialId mat)
{
    for (int i = 0; i < tris; ++i) {
        Vec3 p = center + rng.nextUnitVector() *
                          (radius * std::cbrt(rng.nextFloat()));
        Vec3 e1 = rng.nextUnitVector() * tri_size;
        Vec3 e2 = rng.nextUnitVector() * tri_size;
        mesh.addTriangle({p, p + e1, p + e2}, mat);
    }
}

/**
 * Scatter long, thin triangles (branches, scaffold bars, rigging
 * wires) in a spherical cluster. Their bounding boxes are huge
 * relative to their area, so BVH child boxes overlap heavily and
 * rays passing through visit many nodes while rarely hitting — the
 * long-traversal behaviour of the paper's most CoopRT-friendly
 * scenes (crnvl, fox, party).
 */
void
addWireCluster(Mesh &mesh, Pcg32 &rng, const Vec3 &center,
               float radius, int tris, float length, float thickness,
               MaterialId mat)
{
    for (int i = 0; i < tris; ++i) {
        Vec3 p = center + rng.nextUnitVector() *
                          (radius * std::cbrt(rng.nextFloat()));
        Vec3 e1 = rng.nextUnitVector() * length;
        Vec3 e2 = rng.nextUnitVector() * thickness;
        mesh.addTriangle({p - e1 * 0.5f, p + e1 * 0.5f, p + e2}, mat);
    }
}

/**
 * A displaced-sphere blob: concentric shells of jittered triangles,
 * approximating a scanned object (bunny/car/robot stand-in).
 */
void
addBlob(Mesh &mesh, Pcg32 &rng, const Vec3 &center, float radius,
        int segments, float roughness, MaterialId mat)
{
    const float pi = 3.14159265358979f;
    const int nu = segments, nv = segments / 2;
    auto point = [&](int i, int j) {
        const float theta = pi * float(j) / float(nv);
        const float phi = 2.0f * pi * float(i % nu) / float(nu);
        // Deterministic displacement from the grid indices, so shared
        // vertices displace identically and the surface stays closed.
        std::uint64_t h =
            geom::mix64((std::uint64_t(i % nu) << 32) | std::uint64_t(j));
        float disp =
            1.0f + roughness * (float(h & 0xffff) / 65535.0f - 0.5f);
        return center +
               radius * disp * Vec3{std::sin(theta) * std::cos(phi),
                                    std::cos(theta),
                                    std::sin(theta) * std::sin(phi)};
    };
    for (int i = 0; i < nu; ++i) {
        for (int j = 0; j < nv; ++j) {
            Vec3 a = point(i, j), b = point(i + 1, j);
            Vec3 c = point(i + 1, j + 1), d = point(i, j + 1);
            if (j > 0)
                mesh.addTriangle({a, b, c}, mat);
            if (j + 1 < nv)
                mesh.addTriangle({a, c, d}, mat);
        }
    }
    (void)rng;
}

/**
 * A simple tree: trunk cylinder plus a canopy mixing thin branches
 * (wires) with leaf triangles.
 */
void
addTree(Mesh &mesh, Pcg32 &rng, const Vec3 &base, float height,
        int leaf_tris, MaterialId trunk_mat, MaterialId leaf_mat)
{
    addCylinder(mesh, base, height * 0.06f, height * 0.55f, 6,
                trunk_mat);
    const Vec3 canopy = base + Vec3{0, height * 0.72f, 0};
    // Branches: long and thin, dominating the node-visit counts. The
    // wire density inside the crown sets the AABB overlap depth and
    // with it the traversal length of rays that enter.
    addWireCluster(mesh, rng, canopy, height * 0.42f,
                   (2 * leaf_tris) / 3, height * 0.40f,
                   height * 0.012f, trunk_mat);
    addCluster(mesh, rng, canopy, height * 0.42f, leaf_tris / 3,
               height * 0.05f, leaf_mat);
}

/** Smooth value-noise height function for terrains. */
float
terrainHeight(float x, float z, float amp, std::uint64_t seed)
{
    auto cell = [seed](int i, int j) {
        std::uint64_t h = geom::mix64(
            seed ^ (std::uint64_t(std::uint32_t(i)) << 32 |
                    std::uint32_t(j)));
        return float(h & 0xffff) / 65535.0f;
    };
    float total = 0.0f, a = amp, fx = x, fz = z;
    for (int oct = 0; oct < 3; ++oct) {
        int i = int(std::floor(fx)), j = int(std::floor(fz));
        float tx = fx - float(i), tz = fz - float(j);
        float sx = tx * tx * (3 - 2 * tx), sz = tz * tz * (3 - 2 * tz);
        float v00 = cell(i, j), v10 = cell(i + 1, j);
        float v01 = cell(i, j + 1), v11 = cell(i + 1, j + 1);
        total += a * ((v00 * (1 - sx) + v10 * sx) * (1 - sz) +
                      (v01 * (1 - sx) + v11 * sx) * sz);
        a *= 0.5f;
        fx *= 2.03f;
        fz *= 2.03f;
    }
    return total;
}

} // namespace

Scene
makeObjectScene(const std::string &name, std::uint64_t seed, int detail,
                float object_scale)
{
    Scene s;
    s.name = name;
    Palette pal(s.materials);
    Pcg32 rng(seed);

    const float r = 1.0f * object_scale;
    addBlob(s.mesh, rng, {0, r * 1.05f, 0}, r, detail, 0.18f, pal.gray);
    // Ground patch under an open sky.
    addQuad(s.mesh, {-8, 0, -8}, {16, 0, 0}, {0, 0, 16}, pal.ground);
    // A small area light overhead, off to the side.
    addQuad(s.mesh, {3, 6, -1}, {2, 0, 0}, {0, 0, 2}, pal.light);

    s.sky_emission = 1.0f;
    s.camera = Camera({3.2f, 2.4f, 3.2f}, {0, r, 0}, {0, 1, 0}, 40.0f);
    return s;
}

Scene
makeShipScene(const std::string &name, std::uint64_t seed, int detail)
{
    Scene s;
    s.name = name;
    Palette pal(s.materials);
    Pcg32 rng(seed);

    // Hull: a stack of elongated boxes.
    for (int i = 0; i < 5; ++i) {
        float w = 1.2f - 0.15f * i, y = 0.3f * i;
        addBox(s.mesh, {-4.0f + 0.2f * i, y, -w},
               {4.0f - 0.2f * i, y + 0.3f, w}, pal.dark);
    }
    // Masts and rigging detail.
    for (int m = 0; m < 3; ++m) {
        float x = -2.5f + 2.5f * m;
        addCylinder(s.mesh, {x, 1.5f, 0}, 0.08f, 3.5f, 6, pal.gray);
        for (int k = 0; k < detail; ++k) {
            Vec3 p{x + rng.nextRange(-0.8f, 0.8f),
                   2.0f + rng.nextRange(0.0f, 2.6f),
                   rng.nextRange(-0.6f, 0.6f)};
            Vec3 e1 = rng.nextUnitVector() * 0.25f;
            Vec3 e2 = rng.nextUnitVector() * 0.25f;
            s.mesh.addTriangle({p, p + e1, p + e2}, pal.gray);
        }
    }
    // Water plane.
    addQuad(s.mesh, {-20, 0, -20}, {40, 0, 0}, {0, 0, 40}, pal.ground);

    s.sky_emission = 1.0f;
    s.camera = Camera({7, 4, 9}, {0, 1.5f, 0}, {0, 1, 0}, 42.0f);
    return s;
}

Scene
makeClosedRoomScene(const std::string &name, std::uint64_t seed,
                    int detail, float openness, int clutter_objects)
{
    Scene s;
    s.name = name;
    Palette pal(s.materials);
    Pcg32 rng(seed);

    const Vec3 lo{-6, 0, -4}, hi{6, 4.5f, 4};
    const Vec3 e = hi - lo;

    // Floor.
    addQuad(s.mesh, lo, {e.x, 0, 0}, {0, 0, e.z}, pal.ground);
    // Ceiling: split into strips; `openness` fraction is skipped
    // (skylight), the rest alternates solid panels and the light.
    const int strips = 8;
    for (int i = 0; i < strips; ++i) {
        if (float(i) / strips < openness)
            continue; // open to the sky
        Vec3 o{lo.x + e.x * float(i) / strips, hi.y, lo.z};
        MaterialId m = (i == strips / 2) ? pal.light : pal.gray;
        addQuad(s.mesh, o, {e.x / strips, 0, 0}, {0, 0, e.z}, m);
    }
    // Walls.
    addQuad(s.mesh, lo, {e.x, 0, 0}, {0, e.y, 0}, pal.gray);
    addQuad(s.mesh, {lo.x, lo.y, hi.z}, {e.x, 0, 0}, {0, e.y, 0},
            pal.gray);
    addQuad(s.mesh, lo, {0, 0, e.z}, {0, e.y, 0}, pal.gray);
    addQuad(s.mesh, {hi.x, lo.y, lo.z}, {0, 0, e.z}, {0, e.y, 0},
            pal.gray);

    // Colonnade: two rows of columns (sponza's signature geometry).
    for (int i = 0; i < 6; ++i) {
        float x = lo.x + 1.0f + i * (e.x - 2.0f) / 5.0f;
        addCylinder(s.mesh, {x, 0, -2.0f}, 0.25f, 3.6f, 10, pal.gray);
        addCylinder(s.mesh, {x, 0, 2.0f}, 0.25f, 3.6f, 10, pal.gray);
        addBox(s.mesh, {x - 0.35f, 3.6f, -2.35f},
               {x + 0.35f, 3.9f, -1.65f}, pal.dark);
        addBox(s.mesh, {x - 0.35f, 3.6f, 1.65f},
               {x + 0.35f, 3.9f, 2.35f}, pal.dark);
    }

    // Clutter: detailed objects scattered on the floor.
    for (int c = 0; c < clutter_objects; ++c) {
        Vec3 p{rng.nextRange(lo.x + 1, hi.x - 1), 0.0f,
               rng.nextRange(lo.z + 1, hi.z - 1)};
        int kind = rng.nextBelow(3);
        if (kind == 0) {
            addSphere(s.mesh, p + Vec3{0, 0.4f, 0}, 0.4f, detail,
                      pal.dark);
        } else if (kind == 1) {
            addBox(s.mesh, p - Vec3{0.3f, 0, 0.3f},
                   p + Vec3{0.3f, 0.9f, 0.3f}, pal.gray);
        } else {
            addCluster(s.mesh, rng, p + Vec3{0, 0.5f, 0}, 0.5f,
                       detail * 6, 0.12f, pal.leaf);
        }
    }

    s.sky_emission = openness > 0.0f ? 1.0f : 0.0f;
    s.camera = Camera({-4.5f, 1.8f, 0}, {4, 1.6f, 0}, {0, 1, 0}, 55.0f);
    return s;
}

Scene
makeTreeScene(const std::string &name, std::uint64_t seed, int detail)
{
    Scene s;
    s.name = name;
    Palette pal(s.materials);
    Pcg32 rng(seed);

    const int n = 24;
    addHeightfield(s.mesh, {-12, 0, -12}, 24, 24, n, [&](int i, int j) {
        return terrainHeight(i * 0.3f, j * 0.3f, 0.8f, seed);
    }, pal.ground);

    addTree(s.mesh, rng, {0, 0.4f, 0}, 7.0f, detail * 40, pal.dark,
            pal.leaf);
    // A few saplings around it.
    for (int t = 0; t < 5; ++t) {
        Vec3 base{rng.nextRange(-9, 9), 0.3f, rng.nextRange(-9, 9)};
        if (base.lengthSq() < 9.0f)
            continue;
        addTree(s.mesh, rng, base, rng.nextRange(2.0f, 3.5f),
                detail * 6, pal.dark, pal.leaf);
    }

    s.sky_emission = 1.0f;
    s.camera = Camera({14, 5.5f, 14}, {0, 4.0f, 0}, {0, 1, 0}, 42.0f);
    return s;
}

Scene
makeCarnivalScene(const std::string &name, std::uint64_t seed,
                  int detail, int structures)
{
    Scene s;
    s.name = name;
    Palette pal(s.materials);
    Pcg32 rng(seed);

    // Large open ground.
    addQuad(s.mesh, {-30, 0, -30}, {60, 0, 0}, {0, 0, 60}, pal.ground);

    // Sparse tall structures with dense internal lattices: rays that
    // enter wander long; rays that miss escape instantly. This is the
    // paper's "low SIMT efficiency + long traversals" profile.
    for (int k = 0; k < structures; ++k) {
        Vec3 base{rng.nextRange(-24, 24), 0, rng.nextRange(-24, 24)};
        int kind = rng.nextBelow(3);
        if (kind == 0) {
            // Ferris-wheel-like ring of cabins.
            float r = rng.nextRange(3.0f, 5.0f);
            Vec3 hub = base + Vec3{0, r + 1.0f, 0};
            addCylinder(s.mesh, base, 0.2f, r + 1.0f, 6, pal.dark);
            for (int c = 0; c < 10; ++c) {
                float a = 2 * 3.14159265f * c / 10.0f;
                Vec3 cab = hub + Vec3{r * std::cos(a), r * std::sin(a),
                                      0};
                addBox(s.mesh, cab - Vec3(0.4f), cab + Vec3(0.4f),
                       pal.gray);
            }
        } else if (kind == 1) {
            // Tent poles and guy-wires: a dense thicket of long thin
            // bars -> very long traversals for the rays that enter.
            addCone(s.mesh, base + Vec3{0, 3.2f, 0},
                    rng.nextRange(2.0f, 3.5f), 1.6f, 10, pal.gray);
            addWireCluster(s.mesh, rng, base + Vec3{0, 1.8f, 0}, 2.2f,
                           detail * 6, 2.6f, 0.02f, pal.dark);
        } else {
            // Scaffold lattice tower made of thin bars.
            float h = rng.nextRange(4.0f, 8.0f);
            addWireCluster(s.mesh, rng, base + Vec3{0, h * 0.5f, 0},
                           h * 0.55f, detail * 4, 1.8f, 0.02f,
                           pal.dark);
        }
        // String lights: small emissive quads.
        if (k % 3 == 0) {
            Vec3 p = base + Vec3{0, 4.5f, 0};
            addQuad(s.mesh, p, {0.4f, 0, 0}, {0, 0, 0.4f}, pal.light);
        }
    }

    // Overhead cable/bunting layer spanning the fairground: thin
    // wires above head height. Bounce rays leaving the ground cross
    // it, so even late-bounce traversals stay long — the profile
    // that gives crnvl/party the paper's largest CoopRT gains.
    const int cable_clusters = structures * 2;
    for (int c = 0; c < cable_clusters; ++c) {
        Vec3 p{rng.nextRange(-24, 24), rng.nextRange(3.5f, 7.0f),
               rng.nextRange(-24, 24)};
        addWireCluster(s.mesh, rng, p, 3.0f, detail * 2, 2.2f, 0.015f,
                       pal.dark);
    }

    s.sky_emission = 1.0f;
    s.camera = Camera({0, 2.0f, 26}, {0, 3.0f, 0}, {0, 1, 0}, 55.0f);
    return s;
}

Scene
makeForestScene(const std::string &name, std::uint64_t seed, int detail,
                int trees, float density)
{
    Scene s;
    s.name = name;
    Palette pal(s.materials);
    Pcg32 rng(seed);

    const int n = 28;
    const float half = 20.0f;
    addHeightfield(s.mesh, {-half, 0, -half}, 2 * half, 2 * half, n,
                   [&](int i, int j) {
                       return terrainHeight(i * 0.25f, j * 0.25f, 1.2f,
                                            seed);
                   }, pal.ground);

    for (int t = 0; t < trees; ++t) {
        Vec3 base{rng.nextRange(-half * density, half * density), 0.5f,
                  rng.nextRange(-half * density, half * density)};
        addTree(s.mesh, rng, base, rng.nextRange(3.0f, 6.5f), detail,
                pal.dark, pal.leaf);
    }
    // Undergrowth: grass blades (thin wires near the ground).
    for (int c = 0; c < trees / 2; ++c) {
        Vec3 p{rng.nextRange(-half, half), 0.6f,
               rng.nextRange(-half, half)};
        addWireCluster(s.mesh, rng, p, 1.0f, detail / 2, 0.9f, 0.015f,
                       pal.leaf);
    }

    s.sky_emission = 1.0f;
    // Camera outside the stand at crown height: rays either slip
    // between the crowns (fast miss) or cross several dense crowns
    // (very long traversal) — the bimodal profile behind the
    // paper's biggest speedups.
    s.camera = Camera({19, 5.0f, 19}, {0, 3.5f, 0}, {0, 1, 0}, 50.0f);
    return s;
}

Scene
makeTerrainScene(const std::string &name, std::uint64_t seed, int detail)
{
    Scene s;
    s.name = name;
    Palette pal(s.materials);
    Pcg32 rng(seed);

    const int n = detail;
    addHeightfield(s.mesh, {-25, 0, -25}, 50, 50, n, [&](int i, int j) {
        return terrainHeight(i * 0.18f, j * 0.18f, 4.0f, seed);
    }, pal.ground);

    // Scattered rocks.
    for (int r = 0; r < detail * 2; ++r) {
        Vec3 p{rng.nextRange(-22, 22), 0.0f, rng.nextRange(-22, 22)};
        p.y = terrainHeight((p.x + 25) / 50 * n * 0.18f,
                            (p.z + 25) / 50 * n * 0.18f, 4.0f, seed);
        addSphere(s.mesh, p, rng.nextRange(0.2f, 0.7f), 6, pal.dark);
    }

    s.sky_emission = 1.0f;
    s.camera = Camera({18, 7, 18}, {0, 2, 0}, {0, 1, 0}, 48.0f);
    return s;
}

// --- Query scenes (cooprt::query) ---------------------------------

namespace {

/** Shared domain for the point-cloud scenes: a non-cubic box, so no
 *  axis is special and BVH splits exercise all three. */
const Vec3 kPointLo{0.0f, 0.0f, 0.0f};
const Vec3 kPointHi{2.3f, 1.7f, 2.9f};

} // namespace

Scene
makeUniformPointCloudScene(const std::string &name, std::uint64_t seed,
                           int points)
{
    Scene s;
    s.name = name;
    s.kind = SceneKind::PointCloud;
    Pcg32 rng(seed, 1);
    for (int i = 0; i < points; ++i)
        s.mesh.addTriangle(geom::pointProxy(
            rng.nextInBox(kPointLo, kPointHi)));
    s.sky_emission = 0.0f;
    return s;
}

Scene
makeClusteredPointCloudScene(const std::string &name,
                             std::uint64_t seed, int points,
                             int clusters)
{
    Scene s;
    s.name = name;
    s.kind = SceneKind::PointCloud;
    Pcg32 rng(seed, 1);

    struct Bell
    {
        Vec3 center;
        float sigma;
    };
    std::vector<Bell> bells;
    bells.reserve(std::size_t(clusters));
    const float span = (kPointHi - kPointLo).length();
    for (int c = 0; c < clusters; ++c)
        bells.push_back({rng.nextInBox(kPointLo, kPointHi),
                         span * rng.nextRange(0.01f, 0.05f)});

    for (int i = 0; i < points; ++i) {
        const Bell &b = bells[rng.nextBelow(std::uint32_t(clusters))];
        // Isotropic bell: uniform direction, Rayleigh-distributed
        // radius (inverse-CDF of 1 - exp(-r^2 / 2sigma^2)).
        const float u = rng.nextFloat();
        const float r =
            b.sigma * std::sqrt(-2.0f * std::log(1.0f - u));
        s.mesh.addTriangle(geom::pointProxy(
            b.center + rng.nextUnitVector() * r));
    }
    s.sky_emission = 0.0f;
    return s;
}

Scene
makeSurfacePointCloudScene(const std::string &name, std::uint64_t seed,
                           int points)
{
    Scene s;
    s.name = name;
    s.kind = SceneKind::PointCloud;
    Pcg32 rng(seed, 1);

    const Vec3 center = (kPointLo + kPointHi) * 0.5f;
    const float radius = 0.35f * (kPointHi - kPointLo).minComponent();
    for (int i = 0; i < points; ++i) {
        const Vec3 d = rng.nextUnitVector();
        // Deterministic wavy displacement of the shell, a stand-in
        // for a scanned object's relief.
        const float disp = 1.0f + 0.18f * std::sin(5.3f * d.x) *
                                      std::cos(4.1f * d.y) +
                           0.09f * std::sin(7.7f * d.z);
        s.mesh.addTriangle(geom::pointProxy(
            center + d * (radius * disp)));
    }
    s.sky_emission = 0.0f;
    return s;
}

Scene
makeAmrScene(const std::string &name, std::uint64_t seed,
             int max_levels, float hotspot_bias)
{
    Scene s;
    s.name = name;
    s.kind = SceneKind::AmrCells;
    Pcg32 rng(seed, 2);

    // Non-power-of-two domain: see the generators.hpp contract.
    const Vec3 root_lo{0.0f, 0.0f, 0.0f};
    const Vec3 root_hi{2.7f, 2.7f, 2.7f};
    const Vec3 hotspot = rng.nextInBox(root_lo, root_hi);

    // Recursive 2x2x2 refinement. The refine decision consumes one
    // rng draw per visited cell in a fixed (depth-first, octant-
    // ordered) traversal, so the grid is a pure function of the seed.
    auto refine = [&](const Vec3 &lo, const Vec3 &hi,
                      int level) -> bool {
        if (level >= max_levels)
            return false;
        if (level == 0)
            return true; // at least one refinement everywhere
        const float d = (((lo + hi) * 0.5f) - hotspot).length();
        const float p = 0.32f - 0.05f * float(level) +
                        hotspot_bias * std::exp(-3.0f * d * d);
        return rng.nextFloat() < p;
    };
    auto emit = [&](auto &&self, const Vec3 &lo, const Vec3 &hi,
                    int level) -> void {
        if (!refine(lo, hi, level)) {
            s.mesh.addTriangle(geom::cellProxy({lo, hi}));
            return;
        }
        const Vec3 mid = (lo + hi) * 0.5f;
        for (int oct = 0; oct < 8; ++oct) {
            const Vec3 clo{oct & 1 ? mid.x : lo.x,
                           oct & 2 ? mid.y : lo.y,
                           oct & 4 ? mid.z : lo.z};
            const Vec3 chi{oct & 1 ? hi.x : mid.x,
                           oct & 2 ? hi.y : mid.y,
                           oct & 4 ? hi.z : mid.z};
            self(self, clo, chi, level + 1);
        }
    };
    emit(emit, root_lo, root_hi, 0);
    s.sky_emission = 0.0f;
    return s;
}

} // namespace cooprt::scene

/**
 * @file
 * A complete renderable scene: geometry, materials, camera and sky.
 */

#ifndef COOPRT_SCENE_SCENE_HPP
#define COOPRT_SCENE_SCENE_HPP

#include <cstdint>
#include <string>

#include "scene/camera.hpp"
#include "scene/material.hpp"
#include "scene/mesh.hpp"

namespace cooprt::scene {

/**
 * What the mesh's primitives encode, and hence which workloads the
 * scene supports. Rendering shaders require `Triangles`; the
 * `cooprt::query` workloads require the matching proxy encoding
 * (see geom/proxy.hpp).
 */
enum class SceneKind : std::uint8_t
{
    /** Ordinary renderable triangles (the 15 benchmark scenes). */
    Triangles,
    /** Degenerate point-proxy triangles (k-NN / radius search). */
    PointCloud,
    /** AMR leaf-cell proxy triangles (point containment). */
    AmrCells,
};

/**
 * Everything the shader workloads need to trace a frame.
 *
 * `sky_emission` is the radiance returned by the miss shader; scenes
 * with an exposed sky terminate escaped rays there (the `missed`
 * branch of Listing 1), which is the paper's primary source of
 * inactive threads.
 */
struct Scene
{
    std::string name;
    /** Primitive encoding; gates shader/scene compatibility. */
    SceneKind kind = SceneKind::Triangles;
    Mesh mesh;
    MaterialTable materials;
    Camera camera;
    /** Miss-shader radiance; 0 for fully enclosed scenes. */
    float sky_emission = 1.0f;
    /** Default render resolution for benches (paper: 256, ours: 64). */
    int default_resolution = 64;
    /** Host wall-clock cost of constructing this scene, filled by
     *  SceneRegistry::get (telemetry's scene_load phase; the scene is
     *  process-cached, so every run sharing it re-reports the same
     *  one-time cost — see DESIGN.md §16.2). */
    double build_seconds = 0.0;

    const Material &materialOf(std::uint32_t prim) const
    { return materials[mesh.materialOf(prim)]; }
};

} // namespace cooprt::scene

#endif // COOPRT_SCENE_SCENE_HPP

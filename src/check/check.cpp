#include "check/check.hpp"

namespace cooprt::check {

namespace {

/**
 * Process-wide audit state. The simulator is single-threaded (and the
 * harness runs one simulation per process at a time), so plain
 * globals suffice; none of this state influences simulated behaviour
 * unless a mutation is armed.
 */
Handler g_handler;               // empty = throwing default
std::uint64_t g_violations = 0;
Mutation g_armed = Mutation::None;
std::uint64_t g_fired = 0;

} // namespace

std::string
Violation::message() const
{
    return invariant + " violated at cycle " + std::to_string(cycle) +
           " in " + component + ": " + detail;
}

ViolationError::ViolationError(Violation v)
    : std::runtime_error(v.message()), v_(std::move(v))
{
}

void
setHandler(Handler handler)
{
    g_handler = std::move(handler);
}

void
fail(std::string component, std::string invariant, std::uint64_t cycle,
     std::string detail)
{
    Violation v;
    v.component = std::move(component);
    v.invariant = std::move(invariant);
    v.cycle = cycle;
    v.detail = std::move(detail);
    g_violations++;
    if (g_handler) {
        g_handler(v);
        return;
    }
    throw ViolationError(std::move(v));
}

std::uint64_t
violationCount()
{
    return g_violations;
}

Collector::Collector()
{
    // Capturing `this` is safe: the destructor restores the default
    // before the collector dies.
    setHandler([this](const Violation &v) { items_.push_back(v); });
}

Collector::~Collector()
{
    setHandler(nullptr);
}

const char *
mutationName(Mutation m)
{
    switch (m) {
      case Mutation::None: return "None";
      case Mutation::DoubleConsumeResponse: return "DoubleConsumeResponse";
      case Mutation::DropResponse: return "DropResponse";
      case Mutation::StackOverPush: return "StackOverPush";
      case Mutation::LostWarp: return "LostWarp";
      case Mutation::LeakWarpSlot: return "LeakWarpSlot";
      case Mutation::IllegalLbuHelper: return "IllegalLbuHelper";
      case Mutation::CacheHitMiscount: return "CacheHitMiscount";
      case Mutation::L2BankTimeTravel: return "L2BankTimeTravel";
      case Mutation::MetricsCycleRepeat: return "MetricsCycleRepeat";
      case Mutation::ProfMisattribution: return "ProfMisattribution";
      case Mutation::RayProvenanceDrop: return "RayProvenanceDrop";
      case Mutation::MemscopeMisattribution:
          return "MemscopeMisattribution";
    }
    return "Unknown";
}

const std::vector<Mutation> &
allMutations()
{
    static const std::vector<Mutation> all = {
        Mutation::DoubleConsumeResponse, Mutation::DropResponse,
        Mutation::StackOverPush,         Mutation::LostWarp,
        Mutation::LeakWarpSlot,          Mutation::IllegalLbuHelper,
        Mutation::CacheHitMiscount,      Mutation::L2BankTimeTravel,
        Mutation::MetricsCycleRepeat,    Mutation::ProfMisattribution,
        Mutation::RayProvenanceDrop,    Mutation::MemscopeMisattribution,
    };
    return all;
}

void
armMutation(Mutation m)
{
    g_armed = m;
}

void
disarmMutation()
{
    g_armed = Mutation::None;
}

Mutation
armedMutation()
{
    return g_armed;
}

bool
mutationArmed(Mutation m)
{
    return g_armed == m && m != Mutation::None;
}

bool
mutationFires(Mutation m)
{
    if (!mutationArmed(m))
        return false;
    g_armed = Mutation::None;
    g_fired++;
    return true;
}

std::uint64_t
mutationsFired()
{
    return g_fired;
}

} // namespace cooprt::check

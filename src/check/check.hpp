/**
 * @file
 * The simulator's correctness-audit layer (`cooprt::check`).
 *
 * Every figure the bench suite reproduces rests on cycle-level
 * bookkeeping: per-thread traversal stacks, one coalesced node fetch
 * per warp per cycle, one response consumed per cycle, the LBU moving
 * one TOS per subwarp per cycle (paper Fig. 7 / Algorithm 2). A
 * silent accounting bug in any of these invalidates every reported
 * cycle count. RTL reproductions get an equivalent net for free from
 * assertions and lint; this header is the C++ timing model's version
 * of it.
 *
 * Components register *structural invariants* at the places where the
 * state lives (RT unit warp buffer, SM residency ledger, cache tag
 * stores, samplers) and validate them every cycle or at phase
 * boundaries through the `COOPRT_AUDIT` macro. A failed audit raises
 * a structured `check::Violation` — component path, invariant id,
 * cycle, and a snapshot of the offending state — which by default is
 * thrown as a `check::ViolationError` so tests can assert on it.
 *
 * The whole layer is compile-time selectable: configure with
 * `-DCOOPRT_CHECK=ON` (or the `check` CMake preset) to enable it.
 * When off (the default), `COOPRT_AUDIT` and `COOPRT_MUTATE` expand
 * to nothing — zero overhead, bit-identical simulation results.
 *
 * A mutation-test harness rides along: `armMutation()` arms one of
 * ~9 seeded model bugs (double-consumed response, runaway stack push,
 * lost warp, illegal LBU steal, ...) that the model code injects at
 * the matching `COOPRT_MUTATE` site, proving the audits actually
 * catch the bug class they claim to (see tests/check).
 *
 * The invariant catalogue lives in DESIGN.md ("Correctness audit
 * layer"); add new invariants there when adding audits here.
 */

#ifndef COOPRT_CHECK_CHECK_HPP
#define COOPRT_CHECK_CHECK_HPP

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#ifndef COOPRT_CHECK_ENABLED
#define COOPRT_CHECK_ENABLED 0
#endif

namespace cooprt::check {

/** True when the audit layer is compiled in (COOPRT_CHECK=ON). */
constexpr bool
enabled()
{
    return COOPRT_CHECK_ENABLED != 0;
}

/** One detected invariant violation. */
struct Violation
{
    /** Component path, e.g. "rtunit.sm0" or "mem.l2". */
    std::string component;
    /** Invariant id, e.g. "rtunit.outstanding_matches_fifo". */
    std::string invariant;
    /** Simulated cycle at which the audit fired. */
    std::uint64_t cycle = 0;
    /** Snapshot of the offending state, human-readable. */
    std::string detail;

    /** "invariant violated at cycle N in component: detail". */
    std::string message() const;
};

/** The exception the default violation handler throws. */
class ViolationError : public std::runtime_error
{
  public:
    explicit ViolationError(Violation v);
    const Violation &violation() const { return v_; }

  private:
    Violation v_;
};

/**
 * Handler invoked on every violation. The default handler throws
 * `ViolationError`; tests install a collecting handler to count
 * violations without unwinding.
 */
using Handler = std::function<void(const Violation &)>;

/** Install @p handler; a null handler restores the throwing default. */
void setHandler(Handler handler);

/**
 * Report a violation (the slow path behind COOPRT_AUDIT; also usable
 * directly from check-only code). Routes to the installed handler.
 */
void fail(std::string component, std::string invariant,
          std::uint64_t cycle, std::string detail);

/** Total violations reported since process start (any handler). */
std::uint64_t violationCount();

/**
 * RAII collector: while alive, violations are appended to `items`
 * instead of thrown. Restores the previous handler on destruction.
 */
class Collector
{
  public:
    Collector();
    ~Collector();
    Collector(const Collector &) = delete;
    Collector &operator=(const Collector &) = delete;

    const std::vector<Violation> &items() const { return items_; }
    bool empty() const { return items_.empty(); }

  private:
    std::vector<Violation> items_;
};

/**
 * The seeded model bugs of the mutation-test harness. Each names the
 * bug class it injects and (in tests/check/test_mutations.cpp) the
 * invariant id expected to catch it.
 */
enum class Mutation
{
    None = 0,
    /** RT unit decrements a warp's outstanding-response count twice. */
    DoubleConsumeResponse,
    /** RT unit discards a response without delivering it. */
    DropResponse,
    /** Runaway duplicate pushes flood a traversal stack. */
    StackOverPush,
    /** SM drops a retired warp instead of resuming its program. */
    LostWarp,
    /** RT unit retires a warp without releasing its buffer slot. */
    LeakWarpSlot,
    /** LBU steals into a helper whose stack is not empty. */
    IllegalLbuHelper,
    /** Cache counts a miss as a hit as well. */
    CacheHitMiscount,
    /** L2 bank's busy-until clock moves backwards. */
    L2BankTimeTravel,
    /** Metrics sampler records a duplicate (non-monotone) cycle row. */
    MetricsCycleRepeat,
    /** Profiler skips one warp's stall classification for a cycle. */
    ProfMisattribution,
    /** Ray provenance recorder silently loses a steal event. */
    RayProvenanceDrop,
    /** Memscope drops one line's serving-level attribution. */
    MemscopeMisattribution,
};

/** Stable name of @p m ("DoubleConsumeResponse", ...). */
const char *mutationName(Mutation m);

/** All injectable mutations (everything but None). */
const std::vector<Mutation> &allMutations();

/**
 * Arm @p m: the next `COOPRT_MUTATE(m)` site reached fires exactly
 * once. Arming replaces any previously armed mutation.
 */
void armMutation(Mutation m);

/** Disarm without firing. */
void disarmMutation();

/** The currently armed, not-yet-fired mutation (None when idle). */
Mutation armedMutation();

/** True when @p m is armed and has not fired yet (does not consume). */
bool mutationArmed(Mutation m);

/**
 * Consume the armed mutation: true exactly once after `armMutation(m)`
 * (the backing of COOPRT_MUTATE; model code normally uses the macro).
 */
bool mutationFires(Mutation m);

/** Number of mutations fired since process start. */
std::uint64_t mutationsFired();

} // namespace cooprt::check

#if COOPRT_CHECK_ENABLED

/**
 * Validate a structural invariant. @p cond is the invariant; on
 * failure @p detail (a std::string expression, evaluated lazily) is
 * captured into a Violation routed through the handler.
 */
#define COOPRT_AUDIT(component, invariant, cycle, cond, detail)        \
    do {                                                               \
        if (!(cond))                                                   \
            ::cooprt::check::fail((component), (invariant), (cycle),   \
                                  (detail));                           \
    } while (0)

/** True once when mutation @p m is armed (see check::armMutation). */
#define COOPRT_MUTATE(m)                                               \
    (::cooprt::check::mutationFires(::cooprt::check::Mutation::m))

/** Peek: mutation @p m is armed and unfired (does not consume). */
#define COOPRT_MUTATE_ARMED(m)                                         \
    (::cooprt::check::mutationArmed(::cooprt::check::Mutation::m))

/** Compile the argument only in check builds (check-only state). */
#define COOPRT_CHECK_ONLY(...) __VA_ARGS__

#else

#define COOPRT_AUDIT(component, invariant, cycle, cond, detail) ((void)0)
#define COOPRT_MUTATE(m) false
#define COOPRT_MUTATE_ARMED(m) false
#define COOPRT_CHECK_ONLY(...)

#endif // COOPRT_CHECK_ENABLED

#endif // COOPRT_CHECK_CHECK_HPP

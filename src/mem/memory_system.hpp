/**
 * @file
 * The full memory hierarchy of Fig. 3: per-SM L1 data caches, a
 * crossbar to a banked shared L2, and multi-channel DRAM.
 */

#ifndef COOPRT_MEM_MEMORY_SYSTEM_HPP
#define COOPRT_MEM_MEMORY_SYSTEM_HPP

#include <memory>
#include <vector>

#include "mem/cache.hpp"
#include "mem/dram.hpp"

namespace cooprt::mem {

/** Configuration of the whole hierarchy (Table 1 defaults). */
struct MemConfig
{
    int num_sms = 30;
    CacheConfig l1{64 * 1024, 0, 128, 20};       // fully assoc, 20 cyc
    CacheConfig l2{3 * 1024 * 1024, 16, 128, 160}; // 16-way, 160 cyc
    /**
     * L1 sector size in bytes (0 = unsectored). When sectored, a
     * demand fetch fills only the touched 32 B sectors of a line,
     * GPGPU-Sim style; the L2 below stays line-based.
     */
    std::uint32_t l1_sector_bytes = 0;
    /** Number of L2 banks (one per memory sub-partition). */
    std::uint32_t l2_banks = 12;
    /** L2 bank service bandwidth, bytes per core cycle. */
    double l2_bytes_per_cycle = 32.0;
    DramConfig dram;
};

/** Aggregate traffic counters for bandwidth figures. */
struct MemSystemStats
{
    /** Bytes crossing L2 <-> interconnect (paper Fig. 12 left). */
    std::uint64_t l2_bytes = 0;
    /** Busy cycles summed over L2 banks. */
    std::uint64_t l2_busy_cycles = 0;
};

/**
 * The memory system. One instance is shared by all SMs of a GPU; the
 * per-SM L1s live inside. All methods are event-driven: they return
 * data-ready cycles and never block.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemConfig &config);
    ~MemorySystem();

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    const MemConfig &config() const { return cfg_; }

    /**
     * Register the hierarchy's counters into @p registry: aggregate
     * L1 probes under `mem.l1.*`, per-SM L1s under `mem.l1.sm<i>.*`,
     * the L2 under `mem.l2.*`, DRAM under `mem.dram.*` and the
     * interconnect under `mem.xbar.*`. Idempotent (re-registration
     * overwrites); registrations are dropped in the destructor, so
     * the registry must outlive this object.
     */
    void registerMetrics(cooprt::trace::Registry &registry);

    /**
     * Fetch @p bytes at @p addr on behalf of SM @p sm at cycle
     * @p now. The request is split into cache lines; the returned
     * cycle is when the last line has arrived at the SM.
     */
    std::uint64_t fetch(int sm, std::uint64_t addr, std::uint32_t bytes,
                        std::uint64_t now);

    /**
     * Level that served the most recent fetch(): 0 = L1 hit, 1 = L2
     * (including L1 MSHR merges, which ride an L2 fill already in
     * flight), 2 = DRAM. A multi-line fetch reports its deepest
     * line. Maintained unconditionally (plain stores, no timing
     * effect); the profiler reads it right after each RT-unit issue
     * to attribute response-starved cycles (prof::MemLevel).
     */
    int lastFetchDepth() const { return last_depth_; }

    /**
     * Attach (or detach with nullptr) a memscope collector: hands the
     * per-L1 / L2 reuse scopes and the DRAM scope to their owners and
     * makes fetch() record per-line serving levels, L2 fill bytes and
     * bank contention into the collector. Observation only; in check
     * builds every fetch re-audits the traffic-conservation identity
     * against the `cache.*` / DRAM counters while attached.
     */
    void attachMemscope(cooprt::memscope::Collector *collector);

    const CacheStats &l1Stats(int sm) const { return l1_[sm]->stats(); }
    /** L1 stats aggregated over all SMs. */
    CacheStats l1StatsTotal() const;
    const CacheStats &l2Stats() const { return l2_.stats(); }
    const DramStats &dramStats() const { return dram_.stats(); }
    const MemSystemStats &stats() const { return stats_; }
    std::uint32_t dramChannels() const
    { return dram_.config().channels; }

    void reset();

    /**
     * Restart clocks and statistics while keeping cache contents
     * warm (multi-pass schedulers).
     */
    void resetTiming();

  private:
    /**
     * @p bytes of one line through the banked L2 (and DRAM below).
     * @p depth_out is raised to the level that served the line
     * (1 = L2, 2 = DRAM).
     */
    std::uint64_t l2Access(std::uint64_t line, std::uint32_t bytes,
                           std::uint64_t now, int &depth_out);

    MemConfig cfg_;
    std::vector<std::unique_ptr<Cache>> l1_;
    Cache l2_;
    Dram dram_;
    std::vector<std::uint64_t> bank_free_;
    MemSystemStats stats_;
    cooprt::trace::Registry *metrics_registry_ = nullptr;
    int last_depth_ = 0; ///< serving level of the last fetch()
    /** Borrowed memscope collector; null = profiling off. */
    cooprt::memscope::Collector *mscope_ = nullptr;
};

} // namespace cooprt::mem

#endif // COOPRT_MEM_MEMORY_SYSTEM_HPP

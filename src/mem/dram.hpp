/**
 * @file
 * DRAM timing model: multiple channels, each with a fixed access
 * latency and a finite transfer bandwidth. Bandwidth contention is
 * the first-order effect behind the paper's Figs. 12 and 18.
 */

#ifndef COOPRT_MEM_DRAM_HPP
#define COOPRT_MEM_DRAM_HPP

#include <cstdint>
#include <vector>

#include "memscope/memscope.hpp"

namespace cooprt::mem {

/** DRAM geometry and timing (in core-clock cycles). */
struct DramConfig
{
    /** Number of independent channels (RTX 2060: 6; mobile: 4). */
    std::uint32_t channels = 6;
    /** Access latency (row activate + CAS), core cycles. */
    std::uint32_t latency = 220;
    /**
     * Transfer bandwidth per channel in bytes per core cycle.
     * RTX 2060: 336 GB/s total at 1.365 GHz core clock ~= 246 B/cyc,
     * i.e. ~41 B/cyc per channel.
     */
    double bytes_per_cycle = 41.0;
    /** Channel interleave granularity in bytes. */
    std::uint32_t interleave_bytes = 256;
};

/** Counters for the DRAM model. */
struct DramStats
{
    std::uint64_t requests = 0;
    std::uint64_t bytes = 0;
    /** Sum over channels of cycles spent transferring data. */
    std::uint64_t busy_cycles = 0;

    /** Utilization in [0, 1] over @p elapsed cycles and @p channels. */
    double
    utilization(std::uint64_t elapsed, std::uint32_t channels) const
    {
        const double denom = double(elapsed) * double(channels);
        return denom <= 0.0 ? 0.0 : double(busy_cycles) / denom;
    }
};

/**
 * The DRAM device. `access()` returns the completion cycle of a read,
 * modeling per-channel queueing: a request must wait for its channel
 * to finish earlier transfers.
 */
class Dram
{
  public:
    explicit Dram(const DramConfig &config)
        : cfg_(config), next_free_(config.channels, 0)
    {}

    const DramConfig &config() const { return cfg_; }
    const DramStats &stats() const { return stats_; }

    /** Attach (or detach with nullptr) a row-locality profiler; a
     *  borrowed pointer, observation only. */
    void attachMemscope(memscope::DramScope *scope)
    { mscope_ = scope; }

    /** Channel servicing @p addr. */
    std::uint32_t
    channelOf(std::uint64_t addr) const
    {
        return std::uint32_t((addr / cfg_.interleave_bytes) %
                             cfg_.channels);
    }

    /**
     * Read @p bytes at @p addr issued at cycle @p now; returns the
     * cycle at which the data has fully arrived.
     */
    std::uint64_t
    access(std::uint64_t addr, std::uint32_t bytes, std::uint64_t now)
    {
        const std::uint32_t ch = channelOf(addr);
        if (mscope_ != nullptr)
            mscope_->onAccess(addr, bytes, ch);
        const std::uint64_t transfer = std::uint64_t(
            double(bytes) / cfg_.bytes_per_cycle + 0.999999);
        const std::uint64_t start =
            next_free_[ch] > now ? next_free_[ch] : now;
        next_free_[ch] = start + transfer;
        stats_.requests++;
        stats_.bytes += bytes;
        stats_.busy_cycles += transfer;
        return start + cfg_.latency + transfer;
    }

    void
    reset()
    {
        stats_ = DramStats{};
        for (auto &c : next_free_)
            c = 0;
    }

    /** DRAM has no contents to keep; identical to reset(). */
    void resetTiming() { reset(); }

  private:
    DramConfig cfg_;
    DramStats stats_;
    std::vector<std::uint64_t> next_free_;
    memscope::DramScope *mscope_ = nullptr; // borrowed, may be null
};

} // namespace cooprt::mem

#endif // COOPRT_MEM_DRAM_HPP

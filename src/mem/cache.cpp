#include "mem/cache.hpp"

#include <algorithm>

namespace cooprt::mem {

void
Cache::registerMetrics(cooprt::trace::Registry &registry,
                       const std::string &prefix,
                       const void *owner) const
{
    const CacheStats *s = &stats_;
    auto add = [&](const char *name, const std::uint64_t *src) {
        registry.probe(prefix + "." + name,
                       [src] { return double(*src); }, owner);
    };
    add("accesses", &s->accesses);
    add("hits", &s->hits);
    add("misses", &s->misses);
    add("mshr_merges", &s->mshr_merges);
    add("sector_misses", &s->sector_misses);
    registry.probe(prefix + ".miss_rate",
                   [s] { return s->missRate(); }, owner);
    registry.probe(prefix + ".mshr_live",
                   [this] { return double(outstanding_.size()); },
                   owner);
}

std::vector<Cache::MshrEntry>
Cache::outstandingLines() const
{
    std::vector<MshrEntry> out;
    out.reserve(outstanding_.size());
    // cooprt-lint: allow(nondeterministic-iteration) snapshot is
    // sorted immediately below; hash-order appends cannot leak out
    for (const auto &[line, mshr] : outstanding_)
        out.push_back({line, mshr.ready, mshr.sectors});
    std::sort(out.begin(), out.end(),
              [](const MshrEntry &a, const MshrEntry &b) {
                  return a.line < b.line;
              });
    return out;
}

Cache::Cache(const CacheConfig &config) : cfg_(config)
{
    const std::uint64_t lines = cfg_.size_bytes / cfg_.line_bytes;
    if (cfg_.assoc == 0) {
        num_sets_ = 1;
        ways_ = std::uint32_t(lines);
    } else {
        ways_ = cfg_.assoc;
        num_sets_ = std::uint32_t(lines / cfg_.assoc);
        if (num_sets_ == 0)
            num_sets_ = 1;
    }
    sets_.resize(num_sets_);
}

std::uint32_t
Cache::setOf(std::uint64_t line) const
{
    return std::uint32_t(line % num_sets_);
}

std::uint32_t
Cache::lookupAndTouch(std::uint64_t line, std::uint32_t add_sectors)
{
    Set &s = sets_[setOf(line)];
    auto it = s.where.find(line);
    if (it == s.where.end())
        return 0;
    s.lru.splice(s.lru.begin(), s.lru, it->second.pos); // touch to MRU
    it->second.sectors |= add_sectors;
    return it->second.sectors;
}

bool
Cache::contains(std::uint64_t line) const
{
    const Set &s = sets_[setOf(line)];
    return s.where.find(line) != s.where.end();
}

void
Cache::insert(std::uint64_t line, std::uint32_t sectors)
{
    Set &s = sets_[setOf(line)];
    auto it = s.where.find(line);
    if (it != s.where.end()) {
        it->second.sectors |= sectors;
        return;
    }
    if (s.lru.size() >= ways_) {
        s.where.erase(s.lru.back());
        s.lru.pop_back();
    }
    s.lru.push_front(line);
    s.where[line] = Way{s.lru.begin(), sectors};
}

void
Cache::maybeCompactOutstanding(std::uint64_t now)
{
    // Drop completed fills occasionally so the MSHR map stays small.
    if (outstanding_.size() < 4096 || now - last_compact_ < 10000)
        return;
    last_compact_ = now;
    for (auto it = outstanding_.begin(); it != outstanding_.end();) {
        if (it->second.ready <= now)
            it = outstanding_.erase(it);
        else
            ++it;
    }
}

#if COOPRT_CHECK_ENABLED
void
Cache::auditInvariants(std::uint64_t line, std::uint64_t now) const
{
    // Every access is classified exactly once.
    COOPRT_AUDIT(check_label_, "mem.cache_access_conservation", now,
                 stats_.accesses ==
                     stats_.hits + stats_.misses + stats_.mshr_merges,
                 "accesses=" + std::to_string(stats_.accesses) +
                     " hits=" + std::to_string(stats_.hits) +
                     " misses=" + std::to_string(stats_.misses) +
                     " mshr_merges=" +
                     std::to_string(stats_.mshr_merges));
    COOPRT_AUDIT(check_label_, "mem.cache_access_conservation", now,
                 stats_.sector_misses <= stats_.misses,
                 "sector_misses=" +
                     std::to_string(stats_.sector_misses) +
                     " > misses=" + std::to_string(stats_.misses));

    // The touched set's LRU list and tag map mirror each other and
    // respect the associativity bound.
    const Set &s = sets_[setOf(line)];
    COOPRT_AUDIT(check_label_, "mem.cache_lru_consistent", now,
                 s.lru.size() == s.where.size() &&
                     s.lru.size() <= ways_,
                 "set " + std::to_string(setOf(line)) + " lru=" +
                     std::to_string(s.lru.size()) + " map=" +
                     std::to_string(s.where.size()) + " ways=" +
                     std::to_string(ways_));
    for (auto it = s.lru.begin(); it != s.lru.end(); ++it) {
        auto w = s.where.find(*it);
        COOPRT_AUDIT(check_label_, "mem.cache_lru_consistent", now,
                     w != s.where.end() && w->second.pos == it,
                     "line " + std::to_string(*it) +
                         " on the LRU list lacks a matching tag");
    }
}
#endif // COOPRT_CHECK_ENABLED

void
Cache::resetTiming()
{
    outstanding_.clear();
    last_compact_ = 0;
    stats_ = CacheStats{};
}

void
Cache::reset()
{
    for (auto &s : sets_) {
        s.lru.clear();
        s.where.clear();
    }
    outstanding_.clear();
    stats_ = CacheStats{};
}

} // namespace cooprt::mem

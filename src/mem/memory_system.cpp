#include "mem/memory_system.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace cooprt::mem {

MemorySystem::MemorySystem(const MemConfig &config)
    : cfg_(config), l2_(config.l2), dram_(config.dram),
      bank_free_(config.l2_banks, 0)
{
    if (cfg_.num_sms <= 0)
        throw std::invalid_argument("MemConfig.num_sms must be > 0");
    if (cfg_.l1.line_bytes != cfg_.l2.line_bytes)
        throw std::invalid_argument(
            "L1 and L2 line sizes must match (shared line index)");
    if (cfg_.l1_sector_bytes != 0)
        cfg_.l1.sector_bytes = cfg_.l1_sector_bytes;
    if (cfg_.l1.sector_bytes != 0 &&
        (cfg_.l1.line_bytes % cfg_.l1.sector_bytes != 0 ||
         cfg_.l1.line_bytes / cfg_.l1.sector_bytes > 32))
        throw std::invalid_argument(
            "L1 sector size must divide the line into <= 32 sectors");
    l1_.reserve(std::size_t(cfg_.num_sms));
    for (int i = 0; i < cfg_.num_sms; ++i)
        l1_.push_back(std::make_unique<Cache>(cfg_.l1));
#if COOPRT_CHECK_ENABLED
    for (int i = 0; i < cfg_.num_sms; ++i)
        l1_[std::size_t(i)]->setCheckLabel("mem.l1.sm" +
                                           std::to_string(i));
    l2_.setCheckLabel("mem.l2");
#endif
}

MemorySystem::~MemorySystem()
{
    if (metrics_registry_ != nullptr)
        metrics_registry_->unregisterOwner(this);
}

void
MemorySystem::registerMetrics(cooprt::trace::Registry &registry)
{
    metrics_registry_ = &registry;

    // Aggregate L1 probes (what the paper's Fig. 16 reports) plus
    // the per-SM breakdown; the filter decides what a consumer sees.
    auto agg = [this](std::uint64_t CacheStats::*field) {
        return [this, field] {
            return double(l1StatsTotal().*field);
        };
    };
    registry.probe("mem.l1.accesses", agg(&CacheStats::accesses),
                   this);
    registry.probe("mem.l1.hits", agg(&CacheStats::hits), this);
    registry.probe("mem.l1.misses", agg(&CacheStats::misses), this);
    registry.probe("mem.l1.mshr_merges",
                   agg(&CacheStats::mshr_merges), this);
    registry.probe("mem.l1.miss_rate",
                   [this] { return l1StatsTotal().missRate(); },
                   this);
    for (std::size_t i = 0; i < l1_.size(); ++i)
        l1_[i]->registerMetrics(
            registry, "mem.l1.sm" + std::to_string(i), this);

    l2_.registerMetrics(registry, "mem.l2", this);
    registry.probe("mem.l2.bytes",
                   [this] { return double(stats_.l2_bytes); }, this);
    registry.probe("mem.l2.busy_cycles",
                   [this] { return double(stats_.l2_busy_cycles); },
                   this);

    const DramStats *d = &dram_.stats();
    registry.probe("mem.dram.requests",
                   [d] { return double(d->requests); }, this);
    registry.probe("mem.dram.bytes",
                   [d] { return double(d->bytes); }, this);
    registry.probe("mem.dram.busy_cycles",
                   [d] { return double(d->busy_cycles); }, this);

    registry.probe("mem.mshr_live",
                   [this] {
                       std::size_t live = l2_.mshrLive();
                       for (const auto &l1 : l1_)
                           live += l1->mshrLive();
                       return double(live);
                   },
                   this);
}

void
MemorySystem::attachMemscope(cooprt::memscope::Collector *collector)
{
    mscope_ = collector;
    for (std::size_t i = 0; i < l1_.size(); ++i)
        l1_[i]->attachMemscope(
            collector ? &collector->l1Scope(int(i)) : nullptr);
    l2_.attachMemscope(collector ? &collector->l2Scope() : nullptr);
    dram_.attachMemscope(collector ? &collector->dram() : nullptr);
}

std::uint64_t
MemorySystem::l2Access(std::uint64_t line, std::uint32_t bytes,
                       std::uint64_t now, int &depth_out)
{
    if (depth_out < 1)
        depth_out = 1; // served by the L2 (or deeper, below)
    // Bank queueing: the line's bank must be free to serve it. Only
    // the requested bytes (the missing sectors) cross the
    // interconnect.
    const std::uint32_t bank = std::uint32_t(line % cfg_.l2_banks);
    const std::uint64_t service = std::uint64_t(
        double(bytes) / cfg_.l2_bytes_per_cycle + 0.999999);
    const std::uint64_t start =
        bank_free_[bank] > now ? bank_free_[bank] : now;
    if (mscope_ != nullptr) {
        memscope::MemTraffic &t = mscope_->traffic();
        t.l2_fill_bytes += bytes;
        t.bank_requests++;
        if (bank_free_[bank] > now) {
            t.bank_conflicts++;
            t.bank_wait_cycles += bank_free_[bank] - now;
        }
    }
    COOPRT_CHECK_ONLY(const std::uint64_t prev_free =
                          bank_free_[bank];)
    bank_free_[bank] = start + service;
    if (COOPRT_MUTATE(L2BankTimeTravel))
        bank_free_[bank] = now; // bank forgets its queued work
    // A bank only ever books time forward: the new free cycle is
    // strictly past both the request and the previous booking.
    COOPRT_AUDIT("mem.xbar", "mem.l2_bank_monotone", now,
                 bank_free_[bank] > now &&
                     bank_free_[bank] > prev_free,
                 "bank " + std::to_string(bank) + " free " +
                     std::to_string(prev_free) + " -> " +
                     std::to_string(bank_free_[bank]));
    stats_.l2_busy_cycles += service;
    stats_.l2_bytes += bytes;

    return l2_.access(line, start,
                      [this, &depth_out](std::uint64_t l,
                                         std::uint64_t t) {
                          depth_out = 2;
                          return dram_.access(
                              l * cfg_.l2.line_bytes,
                              cfg_.l2.line_bytes, t);
                      });
}

std::uint64_t
MemorySystem::fetch(int sm, std::uint64_t addr, std::uint32_t bytes,
                    std::uint64_t now)
{
    if (sm < 0 || sm >= cfg_.num_sms)
        throw std::out_of_range("MemorySystem::fetch bad sm index");
    if (bytes == 0)
        return now;

    Cache &l1 = *l1_[sm];
    const std::uint32_t line_bytes = cfg_.l1.line_bytes;
    const std::uint64_t first = addr / line_bytes;
    const std::uint64_t last = (addr + bytes - 1) / line_bytes;
    const std::uint32_t sector =
        cfg_.l1.sector_bytes ? cfg_.l1.sector_bytes : line_bytes;

    std::uint64_t ready = now;
    last_depth_ = 0;
    for (std::uint64_t line = first; line <= last; ++line) {
        // Byte range of the request inside this line.
        const std::uint64_t lo =
            std::max<std::uint64_t>(addr, line * line_bytes);
        const std::uint64_t hi = std::min<std::uint64_t>(
            addr + bytes, (line + 1) * line_bytes);
        const std::uint32_t mask =
            l1.sectorMaskOf(lo, std::uint32_t(hi - lo));
        const std::uint64_t merges_before = l1.stats().mshr_merges;
        int line_depth = 0; // serving level of this line (0 = L1 hit)
        const std::uint64_t r = l1.access(
            line, mask, now,
            [this, sector, &line_depth](std::uint64_t l,
                                        std::uint32_t missing,
                                        std::uint64_t t) {
                const std::uint32_t fill_bytes =
                    std::uint32_t(std::popcount(missing)) * sector;
                return l2Access(l, fill_bytes, t, line_depth);
            });
        // An MSHR merge rides an in-flight L2 fill without invoking
        // the fill callback; attribute it to the L2.
        if (l1.stats().mshr_merges != merges_before &&
            line_depth < 1)
            line_depth = 1;
        if (line_depth > last_depth_)
            last_depth_ = line_depth; // a fetch reports its deepest line
        if (mscope_ != nullptr &&
            !COOPRT_MUTATE(MemscopeMisattribution))
            mscope_->traffic().line_level[std::size_t(line_depth)]++;
        if (r > ready)
            ready = r;
    }
#if COOPRT_CHECK_ENABLED
    if (mscope_ != nullptr) {
        // Conservation: fetch() is the single choke point every access
        // crosses, so the profiled per-level line counts and byte
        // totals must tie out exactly against the pre-existing
        // counters after every request.
        const CacheStats l1t = l1StatsTotal();
        const memscope::MemTraffic &t = mscope_->trafficConst();
        COOPRT_AUDIT(
            "mem", "memscope.traffic_conservation", now,
            t.lineTotal() == l1t.accesses &&
                t.line_level[0] == l1t.hits &&
                t.l2_fill_bytes == stats_.l2_bytes &&
                mscope_->dramConst().bytes == dram_.stats().bytes,
            "lines " + std::to_string(t.lineTotal()) + "/" +
                std::to_string(l1t.accesses) + " l1-hit " +
                std::to_string(t.line_level[0]) + "/" +
                std::to_string(l1t.hits) + " l2B " +
                std::to_string(t.l2_fill_bytes) + "/" +
                std::to_string(stats_.l2_bytes) + " dramB " +
                std::to_string(mscope_->dramConst().bytes) + "/" +
                std::to_string(dram_.stats().bytes));
    }
#endif
    return ready;
}

CacheStats
MemorySystem::l1StatsTotal() const
{
    CacheStats total;
    for (const auto &c : l1_) {
        total.accesses += c->stats().accesses;
        total.hits += c->stats().hits;
        total.misses += c->stats().misses;
        total.mshr_merges += c->stats().mshr_merges;
    }
    return total;
}

void
MemorySystem::resetTiming()
{
    for (auto &c : l1_)
        c->resetTiming();
    l2_.resetTiming();
    dram_.resetTiming();
    for (auto &b : bank_free_)
        b = 0;
    stats_ = MemSystemStats{};
}

void
MemorySystem::reset()
{
    for (auto &c : l1_)
        c->reset();
    l2_.reset();
    dram_.reset();
    for (auto &b : bank_free_)
        b = 0;
    stats_ = MemSystemStats{};
}

} // namespace cooprt::mem

/**
 * @file
 * Set-associative / fully-associative LRU cache timing model with
 * MSHR-style miss coalescing.
 *
 * Matches Table 1 of the paper: the L1 data cache is 64 KB fully
 * associative LRU with 20-cycle latency; the L2 is 3 MB 16-way LRU
 * with 160-cycle latency.
 *
 * The model is event-driven: `access()` returns the cycle at which
 * the requested line is available, and updates tag state immediately.
 * Outstanding misses are tracked per line so that secondary misses to
 * an in-flight line merge onto the same fill (no duplicate downstream
 * traffic), which is where ray coherence shows up in bandwidth.
 */

#ifndef COOPRT_MEM_CACHE_HPP
#define COOPRT_MEM_CACHE_HPP

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/check.hpp"
#include "memscope/memscope.hpp"
#include "trace/registry.hpp"

namespace cooprt::mem {

/** Cache geometry and timing. */
struct CacheConfig
{
    std::uint64_t size_bytes = 64 * 1024;
    /** Associativity; 0 means fully associative. */
    std::uint32_t assoc = 0;
    std::uint32_t line_bytes = 128;
    /** Hit latency in core cycles. */
    std::uint32_t latency = 20;
    /**
     * Sector size in bytes; 0 disables sectoring. GPGPU-Sim-style
     * sectored caches fill only the touched 32 B sectors of a line
     * (the paper's memory access queue "breaks the requests into
     * small chunks"): an access to an untouched sector of a resident
     * line is a *sector miss* — it fetches just that sector from the
     * next level.
     */
    std::uint32_t sector_bytes = 0;
};

/** Counters for one cache instance. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    /** Primary misses: caused a downstream fetch. */
    std::uint64_t misses = 0;
    /** Secondary misses merged onto an outstanding fill. */
    std::uint64_t mshr_merges = 0;
    /** Sector misses: line resident but the sector was not (counted
     *  within `misses` as well; sectored configs only). */
    std::uint64_t sector_misses = 0;

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : double(misses + mshr_merges) / double(accesses);
    }
};

/**
 * One cache level. The downstream level is invoked through a callback
 * so L1 -> L2 -> DRAM stacks compose without virtual dispatch in the
 * hot path.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return cfg_; }
    const CacheStats &stats() const { return stats_; }

    /** One in-flight MSHR fill, snapshot form. */
    struct MshrEntry
    {
        std::uint64_t line;    ///< line address
        std::uint64_t ready;   ///< cycle the fill completes
        std::uint32_t sectors; ///< sectors being filled
    };

    /**
     * Snapshot of the in-flight fills, sorted by line address. The
     * MSHR table itself is an unordered_map, so anything that emits,
     * audits or compares in-flight state must go through this
     * accessor — hash order is not part of the simulator's
     * deterministic surface (cooprt-lint: nondeterministic-iteration
     * rejects direct iteration into a sink).
     */
    std::vector<MshrEntry> outstandingLines() const;

    /** Live MSHR entries (completed-but-uncompacted fills count). */
    std::size_t mshrLive() const { return outstanding_.size(); }

    /** Component path reported by COOPRT_CHECK audits ("mem.l1.sm0",
     *  "mem.l2", ...). No-op in default builds. */
    void
    setCheckLabel(const std::string &label)
    {
#if COOPRT_CHECK_ENABLED
        check_label_ = label;
#else
        (void)label;
#endif
    }

    /**
     * Register this cache's counters into @p registry as probes
     * under `<prefix>.accesses`, `.hits`, `.misses`, `.mshr_merges`,
     * `.sector_misses` and `.miss_rate`. @p owner tags the
     * registrations for `Registry::unregisterOwner` (the owning
     * hierarchy unregisters, since it controls this cache's
     * lifetime).
     */
    void registerMetrics(cooprt::trace::Registry &registry,
                         const std::string &prefix,
                         const void *owner) const;

    /**
     * Attach (or detach with nullptr) a reuse-distance profiler. A
     * borrowed pointer: every access is forwarded to it. Pure
     * observation — no effect on timing or tag state.
     */
    void attachMemscope(memscope::CacheScope *scope)
    { mscope_ = scope; }

    std::uint64_t lineOf(std::uint64_t addr) const
    { return addr / cfg_.line_bytes; }

    /** All-sectors mask for this cache's geometry. */
    std::uint32_t
    fullSectorMask() const
    {
        if (cfg_.sector_bytes == 0)
            return 1u;
        const std::uint32_t n = cfg_.line_bytes / cfg_.sector_bytes;
        return n >= 32 ? 0xffffffffu : (1u << n) - 1u;
    }

    /** Sector mask touched by [addr, addr+bytes) within its line. */
    std::uint32_t
    sectorMaskOf(std::uint64_t addr, std::uint32_t bytes) const
    {
        if (cfg_.sector_bytes == 0)
            return 1u;
        const std::uint64_t off = addr % cfg_.line_bytes;
        const std::uint32_t first =
            std::uint32_t(off / cfg_.sector_bytes);
        const std::uint32_t last = std::uint32_t(
            (off + (bytes ? bytes - 1 : 0)) / cfg_.sector_bytes);
        std::uint32_t mask = 0;
        for (std::uint32_t s = first;
             s <= last && s * cfg_.sector_bytes < cfg_.line_bytes; ++s)
            mask |= (1u << s);
        return mask;
    }

    /**
     * Access sectors of one line.
     *
     * @param line       Line index (addr / line_bytes).
     * @param sectors    Sector mask needed (use fullSectorMask() /
     *                   sectorMaskOf(); ignored when unsectored).
     * @param now        Request cycle.
     * @param fetchBelow Callback `(line, missing_sectors, cycle) ->
     *                   ready_cycle` invoked on a miss to fetch the
     *                   missing sectors from the next level.
     * @return Cycle at which the requested data is available here.
     */
    template <typename FetchFn>
    std::uint64_t
    access(std::uint64_t line, std::uint32_t sectors,
           std::uint64_t now, FetchFn fetchBelow)
    {
        stats_.accesses++;
        if (mscope_ != nullptr)
            mscope_->touch(line, setOf(line));
        if (cfg_.sector_bytes == 0)
            sectors = 1u;
        // Outstanding fill covering all needed sectors? Merge (MSHR
        // secondary miss) and wait for the in-flight data; checked
        // before the tag lookup because the line and its sector bits
        // are installed at miss time.
        auto mshr = outstanding_.find(line);
        if (mshr != outstanding_.end() && mshr->second.ready > now &&
            (sectors & ~mshr->second.sectors) == 0) {
            stats_.mshr_merges++;
            lookupAndTouch(line, 0);
            COOPRT_CHECK_ONLY(auditInvariants(line, now);)
            return mshr->second.ready;
        }
        const std::uint32_t resident = lookupAndTouch(line, 0);
        std::uint32_t missing = sectors & ~resident;
        if (resident != 0 && missing == 0) {
            stats_.hits += COOPRT_MUTATE(CacheHitMiscount) ? 2 : 1;
            COOPRT_CHECK_ONLY(auditInvariants(line, now);)
            return now + cfg_.latency;
        }
        stats_.misses++;
        if (resident != 0)
            stats_.sector_misses++;
        const std::uint64_t ready =
            fetchBelow(line, missing ? missing : sectors,
                       now + cfg_.latency);
        auto &slot = outstanding_[line];
        if (slot.ready <= now)
            slot.sectors = 0;
        slot.ready = std::max(slot.ready, ready);
        slot.sectors |= sectors;
        insert(line, sectors);
        maybeCompactOutstanding(now);
        COOPRT_CHECK_ONLY(auditInvariants(line, now);)
        return ready;
    }

    /** Backward-compatible whole-line access. */
    template <typename FetchFn>
    std::uint64_t
    access(std::uint64_t line, std::uint64_t now, FetchFn fetchBelow)
    {
        return access(line, fullSectorMask(), now,
                      [&](std::uint64_t l, std::uint32_t,
                          std::uint64_t t) { return fetchBelow(l, t); });
    }

    /** True when @p line currently resides in the cache. */
    bool contains(std::uint64_t line) const;

    /** Invalidate everything (tests/start of run). */
    void reset();

    /**
     * Reset timing state (in-flight fills, whose ready times are in
     * absolute cycles) and statistics, but keep the cached tags —
     * used when a new pass restarts the clock on a warm machine.
     */
    void resetTiming();

  private:
#if COOPRT_CHECK_ENABLED
    /**
     * Per-access audit: counter conservation plus LRU/tag-map
     * consistency of the set @p line maps to (DESIGN.md catalogue).
     */
    void auditInvariants(std::uint64_t line, std::uint64_t now) const;
#endif

    /**
     * Look up @p line: returns the resident sector mask (0 when
     * absent), touches the LRU and ORs @p add_sectors into the
     * resident mask when present.
     */
    std::uint32_t lookupAndTouch(std::uint64_t line,
                                 std::uint32_t add_sectors);
    void insert(std::uint64_t line, std::uint32_t sectors);
    std::uint32_t setOf(std::uint64_t line) const;
    void maybeCompactOutstanding(std::uint64_t now);

    CacheConfig cfg_;
    CacheStats stats_;
    std::uint32_t num_sets_;
    std::uint32_t ways_;

    /**
     * Per-set LRU list (front = MRU) plus a map from line to its list
     * position and resident-sector mask for O(1) touch.
     */
    struct Way
    {
        std::list<std::uint64_t>::iterator pos;
        std::uint32_t sectors = 0;
    };
    struct Set
    {
        std::list<std::uint64_t> lru; // front = most recent
        std::unordered_map<std::uint64_t, Way> where;
    };
    std::vector<Set> sets_;

    /** In-flight fill: ready cycle + sectors being filled. */
    struct Mshr
    {
        std::uint64_t ready = 0;
        std::uint32_t sectors = 0;
    };
    std::unordered_map<std::uint64_t, Mshr> outstanding_;
    std::uint64_t last_compact_ = 0;
    memscope::CacheScope *mscope_ = nullptr; // borrowed, may be null

#if COOPRT_CHECK_ENABLED
    std::string check_label_ = "mem.cache";
#endif
};

} // namespace cooprt::mem

#endif // COOPRT_MEM_CACHE_HPP

#include "exec/exec.hpp"

#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "check/check.hpp"
#include "core/report.hpp"
#include "prof/prof.hpp"
#include "trace/json.hpp"

namespace cooprt::exec {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    // cooprt-lint: allow(unseeded-randomness) wall-clock timing here
    // is reporting-only; it never feeds simulated state
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

int
resolveWorkers(int jobs_option, std::size_t num_jobs)
{
    int n = jobs_option;
    if (n <= 0)
        n = int(std::thread::hardware_concurrency());
    if (n <= 0)
        n = 1;
    if (num_jobs > 0 && std::size_t(n) > num_jobs)
        n = int(num_jobs);
    return n;
}

void
writeSinkFile(const std::string &path,
              const std::function<void(std::ostream &)> &writer,
              const char *what)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error(std::string("cannot open ") + path +
                                 " for " + what);
    writer(os);
}

} // namespace

const char *
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::Exception: return "exception";
      case FailureKind::Timeout: return "timeout";
    }
    return "unknown";
}

telemetry::CampaignCounters
countersSnapshot(const CampaignStats &s)
{
    telemetry::CampaignCounters c;
    c.queued = s.queued.load(std::memory_order_relaxed);
    c.running = s.running.load(std::memory_order_relaxed);
    c.done = s.done.load(std::memory_order_relaxed);
    c.failed = s.failed.load(std::memory_order_relaxed);
    c.retried = s.retried.load(std::memory_order_relaxed);
    c.timed_out = s.timed_out.load(std::memory_order_relaxed);
    c.steals = s.steals.load(std::memory_order_relaxed);
    return c;
}

std::string
sanitizeTag(const std::string &tag)
{
    std::string out;
    out.reserve(tag.size());
    for (char c : tag) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        out.push_back(ok ? c : '_');
    }
    return out.empty() ? std::string("job") : out;
}

Campaign::Campaign(CampaignOptions options)
    : options_(std::move(options))
{
    if (options_.session != nullptr) {
        auto &reg = options_.session->registry();
        auto probe = [&](const char *name,
                         const std::atomic<std::uint64_t> &value) {
            reg.probe(name,
                      [&value] {
                          return double(value.load(
                              std::memory_order_relaxed));
                      },
                      this);
        };
        probe("exec.jobs_queued", stats_.queued);
        probe("exec.jobs_running", stats_.running);
        probe("exec.jobs_done", stats_.done);
        probe("exec.jobs_failed", stats_.failed);
        probe("exec.jobs_retried", stats_.retried);
        probe("exec.jobs_timed_out", stats_.timed_out);
        probe("exec.steals", stats_.steals);
    }
}

Campaign::~Campaign()
{
    if (options_.session != nullptr)
        options_.session->registry().unregisterOwner(this);
}

std::size_t
Campaign::add(Job job)
{
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
}

core::RunOutcome
runSimJob(const Job &job)
{
    return core::simulationFor(job.scene_label).run(job.config);
}

JobRunner
Campaign::defaultRunner() const
{
    const std::string metrics_dir = options_.metrics_dir;
    const std::string profile_dir = options_.profile_dir;
    const bool attach_profiler =
        options_.attach_profiler || !profile_dir.empty();
    const std::string raytrace_dir = options_.raytrace_dir;
    const bool attach_ray =
        options_.attach_ray_recorder || !raytrace_dir.empty();
    const raytrace::RecorderConfig ray_config = options_.ray_config;
    const std::string memscope_dir = options_.memscope_dir;
    const bool attach_memscope =
        options_.attach_memscope || !memscope_dir.empty();
    const std::string telemetry_dir = options_.telemetry_dir;
    const bool attach_telemetry =
        options_.attach_telemetry || !telemetry_dir.empty();
    const std::string report_dir = options_.report_dir;
    return [metrics_dir, profile_dir, attach_profiler, raytrace_dir,
            attach_ray, ray_config, memscope_dir, attach_memscope,
            telemetry_dir, attach_telemetry,
            report_dir](const Job &job, std::stop_token) {
        core::RunConfig cfg = job.config;

        // Per-job sinks: every worker gets private session/profiler
        // instances, so jobs never share observability state.
        std::optional<trace::Session> session;
        if (!metrics_dir.empty()) {
            trace::SessionOptions so;
            so.metrics = true;
            so.metrics_interval = cfg.gpu.sample_interval;
            session.emplace(so);
            cfg.trace_session = &*session;
        }
        std::optional<prof::Profiler> profiler;
        if (attach_profiler) {
            profiler.emplace();
            cfg.profiler = &*profiler;
        }
        std::optional<raytrace::Recorder> ray;
        if (attach_ray) {
            ray.emplace(ray_config);
            cfg.ray_recorder = &*ray;
        }
        std::optional<memscope::Collector> mscope;
        if (attach_memscope) {
            mscope.emplace();
            cfg.memscope = &*mscope;
        }
        std::optional<telemetry::Recorder> telem;
        if (attach_telemetry) {
            telem.emplace();
            cfg.telemetry = &*telem;
        }

        const core::Simulation &sim =
            core::simulationFor(job.scene_label);
        core::RunOutcome out = sim.run(cfg);

        const std::string stem = sanitizeTag(job.tag);
        if (session)
            writeSinkFile(metrics_dir + "/" + stem + ".metrics.csv",
                          [&](std::ostream &os) {
                              session->writeMetricsCsv(os);
                          },
                          "per-job metrics");
        // Sink guards test the optional itself, not just the
        // directory flag that correlates with it: the engagement
        // condition lives many lines up, and
        // bugprone-unchecked-optional-access (rightly) refuses to
        // reason across that distance.
        if (profiler && !profile_dir.empty()) {
            writeSinkFile(profile_dir + "/" + stem + ".folded",
                          [&](std::ostream &os) {
                              profiler->writeFolded(os, out.scene);
                          },
                          "per-job folded profile");
            writeSinkFile(profile_dir + "/" + stem + ".prof.json",
                          [&](std::ostream &os) {
                              profiler->writeJson(os, out.scene);
                          },
                          "per-job json profile");
        }
        if (ray && !raytrace_dir.empty())
            writeSinkFile(raytrace_dir + "/" + stem +
                              ".raystats.json",
                          [&](std::ostream &os) {
                              ray->writeRayStatsJson(os, out.scene);
                          },
                          "per-job ray stats");
        if (mscope && !memscope_dir.empty()) {
            writeSinkFile(memscope_dir + "/" + stem +
                              ".memscope.json",
                          [&](std::ostream &os) {
                              mscope->writeJson(os, out.scene);
                              os << '\n';
                          },
                          "per-job memscope profile");
            writeSinkFile(memscope_dir + "/" + stem +
                              ".memscope.folded",
                          [&](std::ostream &os) {
                              mscope->writeFolded(os, out.scene);
                          },
                          "per-job memscope folded stacks");
        }
        if (telem && !telemetry_dir.empty())
            writeSinkFile(telemetry_dir + "/" + stem +
                              ".telemetry.json",
                          [&](std::ostream &os) {
                              telem->writeJson(os, out.scene);
                          },
                          "per-job telemetry");
        if (!report_dir.empty())
            writeSinkFile(report_dir + "/" + stem + ".report.json",
                          [&](std::ostream &os) {
                              core::writeJson(os, out);
                          },
                          "per-job run report");
        return out;
    };
}

std::vector<JobResult>
Campaign::run()
{
    const std::size_t n = jobs_.size();
    std::vector<JobResult> results(n);
    if (n == 0)
        return results;

    // cooprt-lint: allow(unseeded-randomness) campaign wall-clock is
    // reporting-only; simulated cycles come from the seeded model
    const auto campaign_start = Clock::now();
    stats_.queued.store(n, std::memory_order_relaxed);
    const int workers = resolveWorkers(options_.jobs, n);
    const double timeout_s = options_.timeout_s;

    // Materialize the per-job sink directories before any worker
    // starts: writeSinkFile opens plain paths, and doing this once
    // here (rather than per job) keeps workers free of filesystem
    // races on a shared parent.
    for (const std::string *dir :
         {&options_.metrics_dir, &options_.profile_dir,
          &options_.raytrace_dir, &options_.memscope_dir,
          &options_.telemetry_dir, &options_.report_dir})
        if (!dir->empty())
            std::filesystem::create_directories(*dir);

    telemetry::EventLog *events = options_.event_log;
    telemetry::CampaignMonitor *monitor = options_.monitor;
    if (monitor != nullptr) {
        monitor->begin(n, workers);
        monitor->setCountersSource(
            [this] { return countersSnapshot(stats_); });
    }
    if (events != nullptr)
        events->campaignBegin(n, workers);

    const JobRunner runner = runner_ ? runner_ : defaultRunner();

    // Per-worker job queues; jobs are dealt round-robin and idle
    // workers steal from the back of a victim's queue. Mutex-per-
    // queue is plenty at this granularity (jobs are whole simulation
    // runs, milliseconds to minutes each).
    struct WorkerQueue
    {
        std::mutex m;
        std::deque<std::size_t> q;
    };
    const std::size_t nworkers = std::size_t(workers);
    std::vector<WorkerQueue> queues(nworkers);
    for (std::size_t i = 0; i < n; ++i)
        queues[i % nworkers].q.push_back(i);

    std::vector<int> attempts(n, 0);
    std::atomic<std::size_t> remaining{n};

    // Watchdog bookkeeping: running jobs with a deadline. The
    // watchdog requests stop on overdue jobs so cooperative runners
    // can abort; non-cooperative ones are failed when they return.
    struct RunningJob
    {
        Clock::time_point deadline;
        std::stop_source *stop = nullptr;
    };
    std::mutex running_mtx;
    std::map<std::size_t, RunningJob> running_jobs;

    std::mutex completion_mtx;

    auto execute = [&](int wid, std::size_t idx) {
        Job &job = jobs_[idx];
        JobResult &r = results[idx];
        stats_.running.fetch_add(1, std::memory_order_relaxed);
        // cooprt-lint: allow(unseeded-randomness) per-job wall-clock
        // drives timeouts and reporting, never simulation results
        const auto t0 = Clock::now();
        std::stop_source stop;
        if (timeout_s > 0.0) {
            std::lock_guard<std::mutex> lock(running_mtx);
            running_jobs[idx] = RunningJob{
                t0 + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s)),
                &stop};
        }

        attempts[idx]++;
        if (events != nullptr)
            events->jobStart(idx, job.tag, attempts[idx]);
        bool ok = false;
        std::optional<JobFailure> failure;
        core::RunOutcome outcome;
        try {
            outcome = runner(job, stop.get_token());
            ok = true;
        } catch (const std::exception &e) {
            failure = JobFailure{FailureKind::Exception, e.what()};
        } catch (...) {
            failure = JobFailure{FailureKind::Exception,
                                 "unknown exception"};
        }

        if (timeout_s > 0.0) {
            std::lock_guard<std::mutex> lock(running_mtx);
            running_jobs.erase(idx);
        }
        const double elapsed = secondsSince(t0);
        // cooprt-lint: allow(float-accumulation-order) single writer
        // per result slot: only this job's attempts ever add to r
        r.wall_seconds += elapsed;
        stats_.running.fetch_sub(1, std::memory_order_relaxed);

        // A job that overran its budget is a timeout no matter how
        // it ended — even a runner that aborted by throwing once the
        // token fired reports as Timeout, and timeouts never retry
        // (a deterministic job would only time out again).
        const bool overdue = timeout_s > 0.0 && elapsed > timeout_s;
        if (overdue) {
            ok = false;
            failure = JobFailure{
                FailureKind::Timeout,
                "exceeded wall-clock budget of " +
                    std::to_string(timeout_s) + " s"};
            stats_.timed_out.fetch_add(1, std::memory_order_relaxed);
            if (events != nullptr)
                events->jobTimeout(idx, job.tag, timeout_s);
        } else if (!ok && attempts[idx] <= options_.retries) {
            stats_.retried.fetch_add(1, std::memory_order_relaxed);
            if (events != nullptr)
                events->jobRetry(idx, job.tag, attempts[idx] + 1);
            std::lock_guard<std::mutex> lock(
                queues[std::size_t(wid)].m);
            queues[std::size_t(wid)].q.push_back(idx);
            return;
        }

        r.index = idx;
        r.tag = job.tag;
        r.ok = ok;
        r.attempts = attempts[idx];
        if (ok) {
            r.outcome = std::move(outcome);
            stats_.done.fetch_add(1, std::memory_order_relaxed);
        } else {
            r.failure = std::move(failure);
            stats_.failed.fetch_add(1, std::memory_order_relaxed);
        }
        remaining.fetch_sub(1);
        if (monitor != nullptr)
            monitor->jobFinished(r.wall_seconds);
        if (events != nullptr)
            events->jobFinish(idx, job.tag, r.ok, r.attempts,
                              r.ok ? r.outcome.gpu.cycles : 0,
                              r.wall_seconds);
        if (options_.on_job_done) {
            std::lock_guard<std::mutex> lock(completion_mtx);
            options_.on_job_done(r);
        }
    };

    auto workerLoop = [&](int wid) {
        for (;;) {
            std::size_t idx = 0;
            bool have = false;
            {
                auto &own = queues[std::size_t(wid)];
                std::lock_guard<std::mutex> lock(own.m);
                if (!own.q.empty()) {
                    idx = own.q.front();
                    own.q.pop_front();
                    have = true;
                }
            }
            if (!have) {
                for (int v = 1; v < workers && !have; ++v) {
                    auto &victim =
                        queues[std::size_t((wid + v) % workers)];
                    std::lock_guard<std::mutex> lock(victim.m);
                    if (!victim.q.empty()) {
                        idx = victim.q.back();
                        victim.q.pop_back();
                        have = true;
                        stats_.steals.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                }
            }
            if (!have) {
                if (remaining.load() == 0)
                    return;
                // Another worker may still requeue a retry; nap
                // briefly (jobs are whole simulation runs, so this
                // costs nothing measurable).
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                continue;
            }
            execute(wid, idx);
        }
    };

    {
        std::jthread watchdog;
        if (timeout_s > 0.0)
            watchdog = std::jthread([&](std::stop_token st) {
                while (!st.stop_requested()) {
                    {
                        std::lock_guard<std::mutex> lock(running_mtx);
                        // cooprt-lint: allow(unseeded-randomness)
                        // deadlines are wall-clock by definition;
                        // the watchdog cancels, it never computes
                        const auto now = Clock::now();
                        for (auto &[idx, rj] : running_jobs)
                            if (now >= rj.deadline)
                                rj.stop->request_stop();
                    }
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                }
            });
        {
            std::vector<std::jthread> pool;
            pool.reserve(std::size_t(workers));
            for (int w = 0; w < workers; ++w)
                pool.emplace_back(workerLoop, w);
        } // joins the workers
        if (watchdog.joinable())
            watchdog.request_stop();
    } // joins the watchdog

    wall_seconds_ = secondsSince(campaign_start);
    if (events != nullptr)
        events->campaignEnd(countersSnapshot(stats_), wall_seconds_);

#if COOPRT_CHECK_ENABLED
    // Campaign accounting must conserve jobs: every queued job ends
    // exactly once (done or failed), nothing is still running, every
    // timeout surfaced as a failure, and each steal corresponds to a
    // real execution (done + failed + requeued retries).
    COOPRT_AUDIT("exec", "exec.jobs_conservation", 0,
                 stats_.running.load() == 0 &&
                     stats_.done.load() + stats_.failed.load() ==
                         stats_.queued.load() &&
                     stats_.timed_out.load() <= stats_.failed.load() &&
                     stats_.steals.load() <=
                         stats_.done.load() + stats_.failed.load() +
                             stats_.retried.load(),
                 "queued=" + std::to_string(stats_.queued.load()) +
                     " done=" + std::to_string(stats_.done.load()) +
                     " failed=" + std::to_string(stats_.failed.load()) +
                     " running=" +
                     std::to_string(stats_.running.load()) +
                     " retried=" +
                     std::to_string(stats_.retried.load()) +
                     " timed_out=" +
                     std::to_string(stats_.timed_out.load()) +
                     " steals=" + std::to_string(stats_.steals.load()));
#endif
    return results;
}

std::vector<JobResult>
runCampaign(std::vector<Job> jobs, const CampaignOptions &options)
{
    Campaign campaign(options);
    for (auto &j : jobs)
        campaign.add(std::move(j));
    return campaign.run();
}

void
writeJsonLine(std::ostream &os, const JobResult &result)
{
    os << "{\"schema_version\":" << trace::kSchemaVersion
       << ",\"tag\":" << trace::quoteJson(result.tag)
       << ",\"ok\":" << (result.ok ? "true" : "false");
    if (result.ok) {
        std::string outcome_json = core::toJson(result.outcome);
        while (!outcome_json.empty() && outcome_json.back() == '\n')
            outcome_json.pop_back();
        os << ",\"outcome\":" << outcome_json;
    } else {
        os << ",\"attempts\":" << result.attempts << ",\"failure\":{";
        if (result.failure) {
            os << "\"kind\":\"" << failureKindName(result.failure->kind)
               << "\",\"message\":"
               << trace::quoteJson(result.failure->message);
        }
        os << "}";
    }
    os << "}\n";
}

} // namespace cooprt::exec

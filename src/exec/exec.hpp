/**
 * @file
 * `cooprt::exec` — the host-parallel experiment-campaign engine.
 *
 * Every paper figure/table and design-space sweep is a list of
 * independent, deterministic simulation jobs (scene × RunConfig).
 * This subsystem runs such a campaign across a work-stealing pool of
 * `std::jthread` workers and collects the outcomes in submission
 * order, so parallel output is byte-identical to a serial run:
 *
 *     std::vector<exec::Job> jobs;
 *     for (const auto &label : scene::SceneRegistry::allLabels())
 *         jobs.push_back({label, core::RunConfig{}, "fig09/" + label});
 *     exec::CampaignOptions opt;
 *     opt.jobs = 8;                       // 0 = hardware_concurrency
 *     auto results = exec::runCampaign(std::move(jobs), opt);
 *
 * Determinism contract: each job is simulated single-threaded with
 * its own GPU/shader state; the only shared mutable state is the
 * build-once scene/BVH cache (`SceneRegistry::get`, `simulationFor`),
 * which is guarded by per-label `std::once_flag`s. Results are
 * returned indexed by submission order, so tables and JSON lines
 * assembled from them do not depend on worker count or scheduling.
 *
 * Fault isolation: a job that throws is captured as a structured
 * `JobFailure` (with a retry budget for transient host errors), and a
 * job that exceeds its wall-clock budget is failed as a timeout —
 * either way the rest of the campaign completes. Timeouts are not
 * retried: the simulator is deterministic, so a pathological config
 * would only time out again.
 */

#ifndef COOPRT_EXEC_EXEC_HPP
#define COOPRT_EXEC_EXEC_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <stop_token>
#include <string>
#include <vector>

#include "core/simulation.hpp"

namespace cooprt::exec {

/** One unit of campaign work: a scene under one configuration. */
struct Job
{
    std::string scene_label;
    core::RunConfig config;
    /** Caller-chosen name, e.g. "fig09/crnvl/coop"; names per-job
     *  sink files and shows up in progress notes and JSON lines. */
    std::string tag;
};

/** Why a job gave up. */
enum class FailureKind { Exception, Timeout };

/** Stable lowercase name ("exception" / "timeout"). */
const char *failureKindName(FailureKind kind);

/** Structured capture of a failed job. */
struct JobFailure
{
    FailureKind kind = FailureKind::Exception;
    /** what() of the captured exception, or the timeout description. */
    std::string message;
};

/** The per-job record a campaign returns, in submission order. */
struct JobResult
{
    std::size_t index = 0; ///< submission index
    std::string tag;
    bool ok = false;
    /** Valid when `ok`. */
    core::RunOutcome outcome;
    /** Set when `!ok`. */
    std::optional<JobFailure> failure;
    /** Attempts consumed (1 + retries actually taken). */
    int attempts = 0;
    /** Host wall clock across all attempts. Non-deterministic:
     *  excluded from `writeJsonLine` so sinks stay byte-identical
     *  between serial and parallel runs. */
    double wall_seconds = 0.0;
};

/** Live campaign counters (also exported as `exec.*` registry
 *  probes when a `trace::Session` is attached). */
struct CampaignStats
{
    std::atomic<std::uint64_t> queued{0};    ///< total jobs submitted
    std::atomic<std::uint64_t> running{0};   ///< currently executing
    std::atomic<std::uint64_t> done{0};      ///< completed ok
    std::atomic<std::uint64_t> failed{0};    ///< gave up (incl. timeouts)
    std::atomic<std::uint64_t> retried{0};   ///< re-queued attempts
    std::atomic<std::uint64_t> timed_out{0}; ///< failures that were timeouts
    std::atomic<std::uint64_t> steals{0};    ///< jobs taken from another worker
};

/**
 * Executes one job attempt. The stop token is signalled when the
 * job's wall-clock budget expires; cooperative runners may poll it
 * and abort early (the default simulation runner does not — a
 * non-cooperative overdue job is failed post-hoc when it returns).
 */
using JobRunner =
    std::function<core::RunOutcome(const Job &, std::stop_token)>;

/** Everything configurable about a campaign. */
struct CampaignOptions
{
    /** Worker threads; <= 0 means hardware_concurrency. */
    int jobs = 0;
    /** Extra attempts after a thrown (non-timeout) failure. */
    int retries = 0;
    /** Per-attempt wall-clock budget in seconds; 0 = unlimited. */
    double timeout_s = 0.0;
    /**
     * Optional observability session: the campaign registers
     * `exec.jobs_queued/running/done/failed/retried/timed_out` and
     * `exec.steals` probes into its registry (owner-tagged, dropped
     * when the campaign is destroyed). The session is borrowed and
     * is NOT handed to jobs — per-job sinks are separate (below).
     */
    trace::Session *session = nullptr;
    /** When set, each job runs with its own metrics-enabled session
     *  and writes `<dir>/<sanitized tag>.metrics.csv`. */
    std::string metrics_dir;
    /** When set, each job runs with its own profiler and writes
     *  `<dir>/<sanitized tag>.folded` + `.prof.json`. */
    std::string profile_dir;
    /** Attach a per-job profiler even without `profile_dir`, filling
     *  `outcome.gpu.prof_summary` (bit-identical cycle counts). */
    bool attach_profiler = false;
    /** When set, each job runs with its own ray-provenance recorder
     *  (configured by `ray_config`) and writes
     *  `<dir>/<sanitized tag>.raystats.json`. The sink depends only
     *  on the simulated run, so it is byte-identical between
     *  `--jobs 1` and `--jobs N`. */
    std::string raytrace_dir;
    /** Attach a per-job ray recorder even without `raytrace_dir`,
     *  filling `outcome.gpu.ray_summary` (bit-identical cycles). */
    bool attach_ray_recorder = false;
    /** Sampling parameters for per-job ray recorders. */
    raytrace::RecorderConfig ray_config;
    /** When set, each job runs with its own memscope collector and
     *  writes `<dir>/<sanitized tag>.memscope.json` +
     *  `.memscope.folded`. The sinks depend only on the simulated
     *  run, so they are byte-identical between `--jobs 1` and
     *  `--jobs N`. */
    std::string memscope_dir;
    /** Attach a per-job memscope collector even without
     *  `memscope_dir`, filling `outcome.gpu.memscope_summary`
     *  (bit-identical cycle counts). */
    bool attach_memscope = false;
    /** When set, each job runs with its own host-telemetry recorder
     *  and writes `<dir>/<sanitized tag>.telemetry.json`. The sink's
     *  deterministic fields are byte-identical between `--jobs 1`
     *  and `--jobs N`; its wall-clock/RSS fields live in a `"host"`
     *  object that identity tooling strips (DESIGN.md §16). */
    std::string telemetry_dir;
    /** Attach a per-job telemetry recorder even without
     *  `telemetry_dir`, filling `outcome.telemetry` (bit-identical
     *  cycle counts). */
    bool attach_telemetry = false;
    /** When set, each job writes its full schema-stamped run report
     *  to `<dir>/<sanitized tag>.report.json` (`core::writeJson`) —
     *  the file format `diff_cli` and `--diff-baseline` consume.
     *  Deterministic, byte-identical between `--jobs 1` and
     *  `--jobs N`. */
    std::string report_dir;
    /**
     * Optional campaign lifecycle event log (JSON lines: job start /
     * retry / timeout / finish with durations). Borrowed, must
     * outlive `run()`; null = off. Workers emit concurrently; the
     * log serializes them.
     */
    telemetry::EventLog *event_log = nullptr;
    /**
     * Optional campaign aggregate monitor: `run()` arms it
     * (total/workers), feeds it per-job durations for the EWMA/ETA,
     * and points its counters source at this campaign's stats.
     * Borrowed, must outlive `run()`; reads through the counters
     * source (heartbeats, Prometheus snapshots) must not outlive the
     * campaign. Null = off.
     */
    telemetry::CampaignMonitor *monitor = nullptr;
    /**
     * Completion hook, invoked once per job (success or final
     * failure) from worker threads, serialized by the campaign.
     * Completion order is scheduling-dependent — deterministic
     * consumers should use the returned vector instead.
     */
    std::function<void(const JobResult &)> on_job_done;
};

/**
 * A campaign: add jobs, run them, read the results in submission
 * order. Reusable only for one `run()`.
 */
class Campaign
{
  public:
    explicit Campaign(CampaignOptions options = {});
    ~Campaign();

    Campaign(const Campaign &) = delete;
    Campaign &operator=(const Campaign &) = delete;

    /** Queue @p job; returns its submission index. */
    std::size_t add(Job job);

    std::size_t size() const { return jobs_.size(); }

    /**
     * Replace the default simulation runner (tests use this to
     * inject failures and skewed job durations).
     */
    void setRunner(JobRunner runner) { runner_ = std::move(runner); }

    /**
     * Run every job to completion across the pool; blocks. Results
     * are indexed by submission order regardless of worker count.
     */
    std::vector<JobResult> run();

    const CampaignStats &stats() const { return stats_; }

    /** Wall clock of the last `run()`, in seconds. */
    double wallSeconds() const { return wall_seconds_; }

    const CampaignOptions &options() const { return options_; }

  private:
    JobRunner defaultRunner() const;

    CampaignOptions options_;
    std::vector<Job> jobs_;
    JobRunner runner_;
    CampaignStats stats_;
    double wall_seconds_ = 0.0;
};

/** One-shot convenience over `Campaign`. */
std::vector<JobResult> runCampaign(std::vector<Job> jobs,
                                   const CampaignOptions &options = {});

/**
 * The default job body without per-job sinks: resolve the shared
 * prepared simulation for the job's scene and run its config.
 */
core::RunOutcome runSimJob(const Job &job);

/**
 * Append @p result as one JSON line (the `--json-out` format):
 * `{"tag":...,"ok":true,"outcome":{...}}` on success,
 * `{"tag":...,"ok":false,"attempts":N,"failure":{...}}` otherwise.
 * Only deterministic fields are written (no wall clock), so the sink
 * is byte-identical between `--jobs 1` and `--jobs N`.
 */
void writeJsonLine(std::ostream &os, const JobResult &result);

/** @p tag reduced to a file-name-safe form ([A-Za-z0-9._-]). */
std::string sanitizeTag(const std::string &tag);

/** Relaxed snapshot of live campaign counters in telemetry's
 *  exec-independent mirror (heartbeats/Prometheus read this). */
telemetry::CampaignCounters countersSnapshot(const CampaignStats &s);

} // namespace cooprt::exec

#endif // COOPRT_EXEC_EXEC_HPP

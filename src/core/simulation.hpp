/**
 * @file
 * The top-level CoopRT library API: configure a GPU, pick a scene and
 * a shader workload, run the cycle-level simulation, get cycles /
 * power / bandwidth / utilization back.
 *
 * This is the layer every example and bench binary uses:
 *
 *     const auto &scene = scene::SceneRegistry::get("crnvl");
 *     core::Simulation sim(scene);
 *     core::RunConfig cfg;               // baseline RT unit
 *     auto base = sim.run(cfg);
 *     cfg.gpu.trace.coop = true;         // CoopRT
 *     auto coop = sim.run(cfg);
 *     double speedup = double(base.gpu.cycles) / coop.gpu.cycles;
 */

#ifndef COOPRT_CORE_SIMULATION_HPP
#define COOPRT_CORE_SIMULATION_HPP

#include <memory>
#include <string>

#include "bvh/flat_bvh.hpp"
#include "gpu/gpu.hpp"
#include "power/energy_model.hpp"
#include "query/query.hpp"
#include "scene/registry.hpp"
#include "shaders/ao.hpp"
#include "shaders/path_tracer.hpp"
#include "shaders/shadow.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/json.hpp"
#include "trace/session.hpp"

namespace cooprt::core {

/**
 * Which workload to run: the paper's three raygen shaders (Sections
 * 6.2 / 7.3) or one of the non-rendering `cooprt::query` workloads
 * (k-NN / radius search over point-cloud scenes, point containment
 * over AMR scenes — see query/query.hpp).
 */
enum class ShaderKind
{
    PathTracing,
    AmbientOcclusion,
    Shadow,
    QueryKnn,
    QueryRadius,
    QueryContain,
};

/** True for the `cooprt::query` workloads. */
inline bool
isQueryShader(ShaderKind k)
{
    return k == ShaderKind::QueryKnn || k == ShaderKind::QueryRadius ||
           k == ShaderKind::QueryContain;
}

/** Stable CLI token for @p k (pt|ao|sh|knn|radius|contain) — the
 *  same spelling every CLI's --shader flag accepts, and the spelling
 *  run keys are stamped with. */
const char *shaderToken(ShaderKind k);

/** Everything configurable about one simulation run. */
struct RunConfig
{
    gpu::GpuConfig gpu = gpu::GpuConfig::rtx2060Bench();
    ShaderKind shader = ShaderKind::PathTracing;
    /** Frame resolution (square); 0 = the scene's bench default. */
    int resolution = 0;
    shaders::PtParams pt;
    shaders::AoParams ao;
    shaders::ShadowParams sh;
    /** Parameters of the Query* workloads (k, radius, steps, oracle
     *  verification). */
    query::QueryParams query;
    power::EnergyCoefficients energy;

    /**
     * Optional observability session (see trace/session.hpp): when
     * set, the run registers every component's counters into the
     * session registry and — per the session's options — records
     * Chrome-trace events and periodic metric snapshots. The session
     * is borrowed, must outlive the run, and has its collected data
     * restarted by each run that uses it. Null = tracing off (the
     * default, with zero timing impact).
     */
    cooprt::trace::Session *trace_session = nullptr;

    /**
     * Optional stall-attribution profiler (see prof/prof.hpp): when
     * set, the run classifies every warp-resident RT-unit cycle into
     * the taxonomy and fills `GpuRunResult::prof_summary`. Borrowed,
     * must outlive the run, reset by each run that uses it. Null =
     * profiling off (the default, bit-identical timing).
     */
    cooprt::prof::Profiler *profiler = nullptr;

    /**
     * Optional ray-level provenance recorder (see
     * raytrace/raytrace.hpp): when set, the run deterministically
     * samples K rays per warp, logs their lifecycle events and fills
     * `GpuRunResult::ray_summary`; the recorder keeps the full
     * per-warp records for raystats / Perfetto export. Borrowed, must
     * outlive the run, reset by each run that uses it. Null =
     * recording off (the default, bit-identical timing).
     */
    cooprt::raytrace::Recorder *ray_recorder = nullptr;

    /**
     * Optional memory & BVH-topology profiler (see
     * memscope/memscope.hpp): when set, the run tags every node fetch
     * with node id / tree depth / serving level, measures cache-line
     * reuse distance and DRAM row locality, and fills
     * `GpuRunResult::memscope_summary`; the collector keeps the full
     * heatmaps for JSON / folded-stack export. Borrowed, must outlive
     * the run, reset by each run that uses it. Null = profiling off
     * (the default, bit-identical timing).
     */
    cooprt::memscope::Collector *memscope = nullptr;

    /**
     * Optional host-side telemetry recorder (see
     * telemetry/telemetry.hpp): when set, the run records phase-
     * scoped wall-clock spans (scene load, BVH build, warmup, sim
     * loop), derives throughput gauges (simulated cycles/sec, rays
     * retired/sec), samples RSS and fills `RunOutcome::telemetry`.
     * Unlike its observer peers it measures the simulator process,
     * not the simulated GPU; like them it is borrowed, must outlive
     * the run, is reset by each run that uses it, and is purely
     * observational — simulated results are bit-identical with and
     * without it. Null = telemetry off (the default, zero overhead).
     */
    cooprt::telemetry::Recorder *telemetry = nullptr;

    /**
     * Canonical 64-bit configuration fingerprint: an FNV-1a hash over
     * every *deterministic* value field — the GPU/memory/RT-unit
     * configuration, shader kind, resolution, workload parameters and
     * energy coefficients — and over none of the borrowed observer
     * pointers (attaching observers never changes simulated results,
     * so it must not change the identity either). Two RunConfigs with
     * equal fingerprints produce bit-identical simulated outcomes on
     * the same scene; the fingerprint is stamped into every report/
     * sink as part of the run key (DESIGN.md section 18).
     */
    std::uint64_t fingerprint() const;
};

/** The run key `Simulation::run` stamps into outcomes and attached
 *  observers: scene + shader token + resolved resolution +
 *  fingerprint (see trace::RunKeyFields). */
cooprt::trace::RunKeyFields makeRunKey(const RunConfig &config,
                                       const std::string &scene,
                                       int resolved_resolution);

/** The result of one run: timing, power and all collected stats. */
struct RunOutcome
{
    std::string scene;
    int resolution = 0;

    /** Canonical run identity (scene, shader, resolution,
     *  config fingerprint), stamped by `Simulation::run` and written
     *  into every JSON report (`core::writeJson`) so cross-run
     *  tooling can align reports (src/diff/, DESIGN.md §18). */
    cooprt::trace::RunKeyFields run_key;
    gpu::GpuRunResult gpu;
    power::PowerReport power;

    /** Host-side telemetry summary (enabled == false unless a
     *  `telemetry::Recorder` was attached via RunConfig). */
    cooprt::telemetry::Summary telemetry;

    /** Query-workload summary (enabled == false unless the run's
     *  shader was one of the Query* kinds): deterministic counts and
     *  checksum, plus the oracle cross-check when
     *  `RunConfig::query.verify` is set. */
    query::Summary query;

    /** Shorthand for the run's observability totals. */
    const cooprt::trace::RunTraceSummary &traceSummary() const
    { return gpu.trace_summary; }
};

/**
 * A scene prepared for simulation: BVH built once, reusable across
 * many runs/configurations.
 */
class Simulation
{
  public:
    /** Build the 6-wide quantized BVH for @p scene. */
    explicit Simulation(const scene::Scene &scene);

    const scene::Scene &scene() const { return scene_; }
    const bvh::FlatBvh &bvh() const { return flat_; }
    /** Wall-clock cost of the one-time BVH build (telemetry's
     *  bvh_build phase; re-reported by every run on this object). */
    double bvhBuildSeconds() const { return bvh_build_seconds_; }
    /** Table 2 columns for this scene. */
    bvh::TreeStats treeStats() const { return flat_.stats(); }

    /**
     * Run one configuration.
     *
     * @param film          Optional output image.
     * @param timeline      Optional Fig.-11 per-thread timeline
     *                      recorder (records one trace on SM 0).
     * @param timeline_skip Trace_rays to skip before recording —
     *                      lets callers capture a late, divergent
     *                      trace as the paper's Fig. 11 does.
     */
    RunOutcome run(const RunConfig &config,
                   shaders::Film *film = nullptr,
                   stats::TimelineRecorder *timeline = nullptr,
                   int timeline_skip = 0) const;

  private:
    /** buildWideBvh timed with telemetry's wall clock; fills
     *  @p seconds (declared before flat_ so the ctor init list can
     *  write through it). */
    static bvh::FlatBvh timedBuild(const scene::Scene &scene,
                                   double *seconds);

    const scene::Scene &scene_;
    double bvh_build_seconds_ = 0.0;
    bvh::FlatBvh flat_;
};

/**
 * Process-wide cache: one prepared Simulation per registry label, so
 * bench binaries that sweep many configurations build each BVH once.
 */
const Simulation &simulationFor(const std::string &label);

/** Baseline-vs-CoopRT comparison for one scene (Fig. 9 row). */
struct Comparison
{
    RunOutcome base;
    RunOutcome coop;

    double speedup() const
    { return double(base.gpu.cycles) / double(coop.gpu.cycles); }
    double powerRatio() const
    { return coop.power.avgWatts() / base.power.avgWatts(); }
    double energyRatio() const
    { return coop.power.totalJoules() / base.power.totalJoules(); }
    /** EDP improvement factor (paper Fig. 15; > 1 is better). */
    double edpImprovement() const
    { return base.power.edp() / coop.power.edp(); }
};

/**
 * Run @p config twice on @p label — coop off then on — holding
 * everything else fixed.
 */
Comparison compareCoop(const std::string &label, RunConfig config);

} // namespace cooprt::core

#endif // COOPRT_CORE_SIMULATION_HPP

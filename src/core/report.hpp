/**
 * @file
 * Machine-readable reporting of simulation outcomes: a hand-rolled
 * JSON writer (no external dependencies) used by the CLI front end
 * and available to downstream tooling.
 */

#ifndef COOPRT_CORE_REPORT_HPP
#define COOPRT_CORE_REPORT_HPP

#include <iosfwd>
#include <string>

#include "core/simulation.hpp"

namespace cooprt::core {

/**
 * Write @p outcome as a JSON object: scene, resolution, cycles, RT
 * unit counters, cache/DRAM statistics, stall breakdown, utilization
 * and power.
 */
void writeJson(std::ostream &os, const RunOutcome &outcome);

/** Convenience: the same JSON as a string. */
std::string toJson(const RunOutcome &outcome);

} // namespace cooprt::core

#endif // COOPRT_CORE_REPORT_HPP

#pragma once
/*
 * COOPRT_LINT_ALLOW — statement/namespace-scope suppression marker
 * for cooprt-lint (tools/cooprt_lint).
 *
 * Both spellings suppress a finding on their own line or the line
 * directly below, and both REQUIRE a reason:
 *
 *     // cooprt-lint: allow(rule-id) reason text
 *     COOPRT_LINT_ALLOW("rule-id", "reason text");
 *
 * The macro form is for places where a trailing comment is awkward
 * (macro bodies, long conditions). It compiles to nothing but
 * enforces the non-empty-reason contract at compile time:
 * sizeof("") == 1, so an empty reason fails the static_assert.
 * An unused or malformed allow() is itself a lint finding, so stale
 * suppressions cannot accumulate.
 */

#define COOPRT_LINT_ALLOW(rule, reason)                                \
    static_assert(sizeof(rule) > 1 && sizeof(reason) > 1,              \
                  "cooprt-lint: allow() needs a rule id and a "        \
                  "non-empty reason")

#include "core/simulation.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

namespace cooprt::core {

Simulation::Simulation(const scene::Scene &scene)
    : scene_(scene), flat_(timedBuild(scene, &bvh_build_seconds_))
{
}

bvh::FlatBvh
Simulation::timedBuild(const scene::Scene &scene, double *seconds)
{
    const double t0 = telemetry::monotonicSeconds();
    bvh::FlatBvh flat(bvh::buildWideBvh(scene.mesh));
    *seconds = telemetry::monotonicSeconds() - t0;
    return flat;
}

RunOutcome
Simulation::run(const RunConfig &config, shaders::Film *film,
                stats::TimelineRecorder *timeline,
                int timeline_skip) const
{
    const int res = config.resolution > 0
                        ? config.resolution
                        : scene_.default_resolution;

    if (config.telemetry != nullptr) {
        config.telemetry->reset();
        // Scene and BVH construction are one-time, process-cached
        // costs; every run that uses the cache re-reports them so a
        // run's telemetry is self-contained (DESIGN.md §16.2).
        config.telemetry->recordPhase(telemetry::Phase::SceneLoad,
                                      scene_.build_seconds);
        config.telemetry->recordPhase(telemetry::Phase::BvhBuild,
                                      bvh_build_seconds_);
    }

    std::vector<std::unique_ptr<gpu::WarpProgram>> programs;
    // Kept alive for the whole run (Shadow programs reference it).
    std::unique_ptr<shaders::LightSampler> lights;
    // Query-workload result sink (query programs write into it).
    std::unique_ptr<query::ResultStore> qstore;
    const query::Workload qwl =
        config.shader == ShaderKind::QueryRadius ? query::Workload::Radius
        : config.shader == ShaderKind::QueryContain
            ? query::Workload::Contain
            : query::Workload::Knn;
    {
        const auto warmup = telemetry::Recorder::span(
            config.telemetry, telemetry::Phase::Warmup);
        switch (config.shader) {
          case ShaderKind::PathTracing:
            programs = shaders::makePathTracerFrame(scene_, film, res,
                                                    res, config.pt);
            break;
          case ShaderKind::AmbientOcclusion:
            programs = shaders::makeAmbientOcclusionFrame(
                scene_, film, res, res, config.ao);
            break;
          case ShaderKind::Shadow:
            lights = std::make_unique<shaders::LightSampler>(scene_);
            programs = shaders::makeShadowFrame(scene_, *lights, film,
                                                res, res, config.sh);
            break;
          case ShaderKind::QueryKnn:
          case ShaderKind::QueryRadius:
          case ShaderKind::QueryContain:
            qstore = std::make_unique<query::ResultStore>(
                std::size_t(res) * std::size_t(res));
            if (config.trace_session != nullptr)
                qstore->registerMetrics(
                    config.trace_session->registry());
            programs = query::makeQueryFrame(scene_, qwl, *qstore,
                                             res, res, config.query);
            break;
        }
    }

    std::vector<gpu::WarpProgram *> ptrs;
    ptrs.reserve(programs.size());
    for (auto &p : programs)
        ptrs.push_back(p.get());

    gpu::Gpu g(flat_, scene_.mesh, config.gpu);
    g.setTrace(config.trace_session);
    g.setProf(config.profiler);
    g.setRayTrace(config.ray_recorder);
    g.setMemscope(config.memscope);
    g.setTelemetry(config.telemetry);
    RunOutcome out;
    out.scene = scene_.name;
    out.resolution = res;
    {
        const auto simloop = telemetry::Recorder::span(
            config.telemetry, telemetry::Phase::SimLoop);
        out.gpu = g.run(ptrs, timeline, timeline_skip);
    }

    power::EnergyModel energy(config.energy);
    out.power = energy.evaluate(out.gpu, config.gpu.num_sms);
#if COOPRT_CHECK_ENABLED
    COOPRT_AUDIT("core.simulation", "core.outcome_sane",
                 out.gpu.cycles,
                 (ptrs.empty() || out.gpu.cycles > 0) &&
                     out.gpu.completions.size() == ptrs.size() &&
                     out.power.totalJoules() >= 0.0,
                 "scene " + out.scene + ": cycles=" +
                     std::to_string(out.gpu.cycles) + " warps=" +
                     std::to_string(ptrs.size()) + " completed=" +
                     std::to_string(out.gpu.completions.size()));
#endif
    if (qstore != nullptr) {
        out.query = query::summarize(qwl, *qstore);
        if (config.query.verify) {
            const query::OracleCheck chk = query::verifyAgainstOracle(
                scene_, qwl, config.query, res, res, *qstore);
            out.query.verified = true;
            out.query.oracle_checked = chk.checked;
            out.query.oracle_mismatches = chk.mismatches;
#if COOPRT_CHECK_ENABLED
            COOPRT_AUDIT("core.simulation", "core.query_oracle_agrees",
                         chk.mismatches, chk.mismatches == 0,
                         "scene " + out.scene + " workload " +
                             out.query.workload + ": " +
                             std::to_string(chk.mismatches) + " of " +
                             std::to_string(chk.checked) +
                             " queries disagree with the brute-force "
                             "oracle");
#endif
        }
    }
    if (config.telemetry != nullptr) {
        config.telemetry->finishRun(out.gpu.cycles,
                                    out.gpu.rt.retired_warps);
        out.telemetry = config.telemetry->summary();
    }
    return out;
}

const Simulation &
simulationFor(const std::string &label)
{
    // Mirrors SceneRegistry::get: the map is created once with every
    // label pre-inserted (immutable structure, lock-free lookups) and
    // each BVH builds under its own once_flag, so campaign workers
    // prepare different scenes concurrently without serializing on a
    // global lock.
    struct Slot
    {
        std::once_flag once;
        std::unique_ptr<Simulation> sim;
    };
    static std::map<std::string, Slot> cache;
    static std::once_flag init;
    std::call_once(init, [] {
        for (const auto &l : scene::SceneRegistry::allLabels())
            cache.try_emplace(l);
        for (const auto &l : scene::SceneRegistry::queryLabels())
            cache.try_emplace(l);
    });
    auto it = cache.find(label);
    if (it == cache.end())
        throw std::out_of_range("unknown scene label: " + label);
    Slot &slot = it->second;
    std::call_once(slot.once, [&] {
        slot.sim = std::make_unique<Simulation>(
            scene::SceneRegistry::get(label));
    });
    return *slot.sim;
}

Comparison
compareCoop(const std::string &label, RunConfig config)
{
    const Simulation &sim = simulationFor(label);
    Comparison cmp;
    config.gpu.trace.coop = false;
    cmp.base = sim.run(config);
    config.gpu.trace.coop = true;
    cmp.coop = sim.run(config);
    return cmp;
}

} // namespace cooprt::core

#include "core/simulation.hpp"

#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>

namespace cooprt::core {

const char *
shaderToken(ShaderKind k)
{
    switch (k) {
      case ShaderKind::PathTracing:
        return "pt";
      case ShaderKind::AmbientOcclusion:
        return "ao";
      case ShaderKind::Shadow:
        return "sh";
      case ShaderKind::QueryKnn:
        return "knn";
      case ShaderKind::QueryRadius:
        return "radius";
      case ShaderKind::QueryContain:
        return "contain";
    }
    return "?";
}

namespace {

/**
 * Field-by-field FNV-1a mixer for RunConfig::fingerprint(). Every
 * field is mixed through its byte representation with a fixed width,
 * so the hash is stable across platforms with identical field values
 * and changes whenever any single knob changes. Floating-point
 * fields mix their IEEE-754 bits — the configs compared by the diff
 * tooling come from the same literals, never from arithmetic, so
 * bit-equality is the right notion of "same configuration".
 */
class Fnv
{
  public:
    void
    mixBytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= b[i];
            h_ *= 0x100000001b3ull;
        }
    }

    template <typename T>
    void
    mix(T v)
    {
        static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
        // Widen integers/enums/bools to a fixed 8 bytes so the hash
        // does not depend on the declared field width.
        if constexpr (std::is_floating_point_v<T>) {
            double d = double(v);
            std::uint64_t bits = 0;
            std::memcpy(&bits, &d, sizeof(bits));
            mixBytes(&bits, sizeof(bits));
        } else {
            const std::uint64_t wide = std::uint64_t(std::int64_t(v));
            mixBytes(&wide, sizeof(wide));
        }
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

void
mixCache(Fnv &f, const mem::CacheConfig &c)
{
    f.mix(c.size_bytes);
    f.mix(c.assoc);
    f.mix(c.line_bytes);
    f.mix(c.latency);
    f.mix(c.sector_bytes);
}

void
mixShadingCost(Fnv &f, const gpu::ShadingCost &c)
{
    f.mix(c.alu);
    f.mix(c.sfu);
    f.mix(c.mem);
}

} // namespace

std::uint64_t
RunConfig::fingerprint() const
{
    Fnv f;
    // GPU shell.
    f.mix(gpu.num_sms);
    f.mix(gpu.max_warps_per_sm);
    f.mix(gpu.alu_latency);
    f.mix(gpu.sfu_latency);
    f.mix(gpu.mem_latency);
    f.mix(gpu.sample_interval);
    // Memory hierarchy.
    f.mix(gpu.mem.num_sms);
    mixCache(f, gpu.mem.l1);
    mixCache(f, gpu.mem.l2);
    f.mix(gpu.mem.l1_sector_bytes);
    f.mix(gpu.mem.l2_banks);
    f.mix(gpu.mem.l2_bytes_per_cycle);
    f.mix(gpu.mem.dram.channels);
    f.mix(gpu.mem.dram.latency);
    f.mix(gpu.mem.dram.bytes_per_cycle);
    f.mix(gpu.mem.dram.interleave_bytes);
    // RT unit.
    f.mix(gpu.trace.coop);
    f.mix(gpu.trace.subwarp_size);
    f.mix(gpu.trace.warp_buffer_entries);
    f.mix(gpu.trace.lbu_moves_per_cycle);
    f.mix(gpu.trace.steal_from_bottom);
    f.mix(gpu.trace.order);
    f.mix(gpu.trace.sched);
    f.mix(gpu.trace.helper_requires_idle);
    f.mix(gpu.trace.math_latency);
    f.mix(gpu.trace.stack_capacity);
    f.mix(gpu.trace.model_hit_stores);
    f.mix(gpu.trace.hit_record_bytes);
    f.mix(gpu.trace.child_prefetch);
    f.mix(gpu.trace.intersection_predictor);
    f.mix(gpu.trace.predictor_entries);
    // Workload.
    f.mix(shader);
    f.mix(resolution);
    f.mix(pt.max_bounces);
    f.mix(pt.frame_seed);
    mixShadingCost(f, pt.bounce_cost);
    f.mix(ao.samples);
    f.mix(ao.radius_fraction);
    f.mix(ao.frame_seed);
    mixShadingCost(f, ao.shade_cost);
    f.mix(sh.samples);
    f.mix(sh.frame_seed);
    mixShadingCost(f, sh.shade_cost);
    f.mix(query.k);
    f.mix(query.radius);
    f.mix(query.steps);
    f.mix(query.frame_seed);
    f.mix(query.max_rounds);
    f.mix(query.verify);
    mixShadingCost(f, query.shade_cost);
    // Energy model (reported joules/EDP are part of the outcome).
    f.mix(energy.box_test_nj);
    f.mix(energy.tri_test_nj);
    f.mix(energy.lbu_move_nj);
    f.mix(energy.stack_op_nj);
    f.mix(energy.l1_access_nj);
    f.mix(energy.l2_access_nj);
    f.mix(energy.dram_access_nj);
    f.mix(energy.shade_cycle_nj);
    f.mix(energy.static_w_per_sm);
    // Observer pointers are deliberately NOT mixed: attaching them
    // never changes simulated results (the determinism contract), so
    // it must not change the run identity either.
    return f.value();
}

cooprt::trace::RunKeyFields
makeRunKey(const RunConfig &config, const std::string &scene,
           int resolved_resolution)
{
    cooprt::trace::RunKeyFields key;
    key.scene = scene;
    key.shader = shaderToken(config.shader);
    key.resolution = resolved_resolution;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(
                      config.fingerprint()));
    key.fingerprint = buf;
    return key;
}

Simulation::Simulation(const scene::Scene &scene)
    : scene_(scene), flat_(timedBuild(scene, &bvh_build_seconds_))
{
}

bvh::FlatBvh
Simulation::timedBuild(const scene::Scene &scene, double *seconds)
{
    const double t0 = telemetry::monotonicSeconds();
    bvh::FlatBvh flat(bvh::buildWideBvh(scene.mesh));
    *seconds = telemetry::monotonicSeconds() - t0;
    return flat;
}

RunOutcome
Simulation::run(const RunConfig &config, shaders::Film *film,
                stats::TimelineRecorder *timeline,
                int timeline_skip) const
{
    const int res = config.resolution > 0
                        ? config.resolution
                        : scene_.default_resolution;

    if (config.telemetry != nullptr) {
        config.telemetry->reset();
        // Scene and BVH construction are one-time, process-cached
        // costs; every run that uses the cache re-reports them so a
        // run's telemetry is self-contained (DESIGN.md §16.2).
        config.telemetry->recordPhase(telemetry::Phase::SceneLoad,
                                      scene_.build_seconds);
        config.telemetry->recordPhase(telemetry::Phase::BvhBuild,
                                      bvh_build_seconds_);
    }

    std::vector<std::unique_ptr<gpu::WarpProgram>> programs;
    // Kept alive for the whole run (Shadow programs reference it).
    std::unique_ptr<shaders::LightSampler> lights;
    // Query-workload result sink (query programs write into it).
    std::unique_ptr<query::ResultStore> qstore;
    const query::Workload qwl =
        config.shader == ShaderKind::QueryRadius ? query::Workload::Radius
        : config.shader == ShaderKind::QueryContain
            ? query::Workload::Contain
            : query::Workload::Knn;
    {
        const auto warmup = telemetry::Recorder::span(
            config.telemetry, telemetry::Phase::Warmup);
        switch (config.shader) {
          case ShaderKind::PathTracing:
            programs = shaders::makePathTracerFrame(scene_, film, res,
                                                    res, config.pt);
            break;
          case ShaderKind::AmbientOcclusion:
            programs = shaders::makeAmbientOcclusionFrame(
                scene_, film, res, res, config.ao);
            break;
          case ShaderKind::Shadow:
            lights = std::make_unique<shaders::LightSampler>(scene_);
            programs = shaders::makeShadowFrame(scene_, *lights, film,
                                                res, res, config.sh);
            break;
          case ShaderKind::QueryKnn:
          case ShaderKind::QueryRadius:
          case ShaderKind::QueryContain:
            qstore = std::make_unique<query::ResultStore>(
                std::size_t(res) * std::size_t(res));
            if (config.trace_session != nullptr)
                qstore->registerMetrics(
                    config.trace_session->registry());
            programs = query::makeQueryFrame(scene_, qwl, *qstore,
                                             res, res, config.query);
            break;
        }
    }

    std::vector<gpu::WarpProgram *> ptrs;
    ptrs.reserve(programs.size());
    for (auto &p : programs)
        ptrs.push_back(p.get());

    gpu::Gpu g(flat_, scene_.mesh, config.gpu);
    g.setTrace(config.trace_session);
    g.setProf(config.profiler);
    g.setRayTrace(config.ray_recorder);
    g.setMemscope(config.memscope);
    g.setTelemetry(config.telemetry);
    RunOutcome out;
    out.scene = scene_.name;
    out.resolution = res;
    out.run_key = makeRunKey(config, scene_.name, res);
    // Stamp the key onto the attached observers so every sink they
    // later export carries the same identity block. setRunKey is
    // metadata-only and does not perturb the observers' collected
    // data (and run() has already reset the ones it uses).
    if (config.trace_session != nullptr)
        config.trace_session->setRunKey(out.run_key);
    if (config.ray_recorder != nullptr)
        config.ray_recorder->setRunKey(out.run_key);
    if (config.memscope != nullptr)
        config.memscope->setRunKey(out.run_key);
    if (config.telemetry != nullptr)
        config.telemetry->setRunKey(out.run_key);
    {
        const auto simloop = telemetry::Recorder::span(
            config.telemetry, telemetry::Phase::SimLoop);
        out.gpu = g.run(ptrs, timeline, timeline_skip);
    }

    power::EnergyModel energy(config.energy);
    out.power = energy.evaluate(out.gpu, config.gpu.num_sms);
#if COOPRT_CHECK_ENABLED
    COOPRT_AUDIT("core.simulation", "core.outcome_sane",
                 out.gpu.cycles,
                 (ptrs.empty() || out.gpu.cycles > 0) &&
                     out.gpu.completions.size() == ptrs.size() &&
                     out.power.totalJoules() >= 0.0,
                 "scene " + out.scene + ": cycles=" +
                     std::to_string(out.gpu.cycles) + " warps=" +
                     std::to_string(ptrs.size()) + " completed=" +
                     std::to_string(out.gpu.completions.size()));
#endif
    if (qstore != nullptr) {
        out.query = query::summarize(qwl, *qstore);
        if (config.query.verify) {
            const query::OracleCheck chk = query::verifyAgainstOracle(
                scene_, qwl, config.query, res, res, *qstore);
            out.query.verified = true;
            out.query.oracle_checked = chk.checked;
            out.query.oracle_mismatches = chk.mismatches;
#if COOPRT_CHECK_ENABLED
            COOPRT_AUDIT("core.simulation", "core.query_oracle_agrees",
                         chk.mismatches, chk.mismatches == 0,
                         "scene " + out.scene + " workload " +
                             out.query.workload + ": " +
                             std::to_string(chk.mismatches) + " of " +
                             std::to_string(chk.checked) +
                             " queries disagree with the brute-force "
                             "oracle");
#endif
        }
    }
    if (config.telemetry != nullptr) {
        config.telemetry->finishRun(out.gpu.cycles,
                                    out.gpu.rt.retired_warps);
        out.telemetry = config.telemetry->summary();
    }
    return out;
}

const Simulation &
simulationFor(const std::string &label)
{
    // Mirrors SceneRegistry::get: the map is created once with every
    // label pre-inserted (immutable structure, lock-free lookups) and
    // each BVH builds under its own once_flag, so campaign workers
    // prepare different scenes concurrently without serializing on a
    // global lock.
    struct Slot
    {
        std::once_flag once;
        std::unique_ptr<Simulation> sim;
    };
    static std::map<std::string, Slot> cache;
    static std::once_flag init;
    std::call_once(init, [] {
        for (const auto &l : scene::SceneRegistry::allLabels())
            cache.try_emplace(l);
        for (const auto &l : scene::SceneRegistry::queryLabels())
            cache.try_emplace(l);
    });
    auto it = cache.find(label);
    if (it == cache.end())
        throw std::out_of_range("unknown scene label: " + label);
    Slot &slot = it->second;
    std::call_once(slot.once, [&] {
        slot.sim = std::make_unique<Simulation>(
            scene::SceneRegistry::get(label));
    });
    return *slot.sim;
}

Comparison
compareCoop(const std::string &label, RunConfig config)
{
    const Simulation &sim = simulationFor(label);
    Comparison cmp;
    config.gpu.trace.coop = false;
    cmp.base = sim.run(config);
    config.gpu.trace.coop = true;
    cmp.coop = sim.run(config);
    return cmp;
}

} // namespace cooprt::core

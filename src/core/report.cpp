#include "core/report.hpp"

#include <ostream>
#include <sstream>

#include "telemetry/telemetry.hpp"
#include "trace/json.hpp"

namespace cooprt::core {

void
writeJson(std::ostream &os, const RunOutcome &o)
{
    cooprt::trace::JsonWriter w(os);
    w.open();
    trace::writeSchemaVersion(w);
    if (o.run_key.valid())
        trace::writeRunKey(w, o.run_key);
    w.field("scene", o.scene);
    w.field("resolution", o.resolution);
    w.field("cycles", o.gpu.cycles);

    // Configure-time provenance: constant per binary, so reports stay
    // byte-identical across worker counts. Wall-clock telemetry never
    // joins this report (see Recorder::writeJson for the host sink).
    w.open("build");
    telemetry::writeBuildFields(w);
    w.close();

    w.open("rt_unit");
    w.field("node_fetches", o.gpu.rt.node_fetches);
    w.field("leaf_fetches", o.gpu.rt.leaf_fetches);
    w.field("box_tests", o.gpu.rt.box_tests);
    w.field("tri_tests", o.gpu.rt.tri_tests);
    w.field("steals", o.gpu.rt.steals);
    w.field("stale_pops", o.gpu.rt.stale_pops);
    w.field("stack_overflows", o.gpu.rt.stack_overflows);
    w.field("retired_warps", o.gpu.rt.retired_warps);
    w.field("max_trace_latency", o.gpu.rt.max_trace_latency);
    w.field("prefetches", o.gpu.rt.prefetches);
    w.field("predictor_hits", o.gpu.rt.predictor_hits);
    w.close();

    w.open("memory");
    w.field("l1_accesses", o.gpu.l1.accesses);
    w.field("l1_miss_rate", o.gpu.l1.missRate());
    w.field("l2_accesses", o.gpu.l2.accesses);
    w.field("l2_miss_rate", o.gpu.l2.missRate());
    w.field("dram_requests", o.gpu.dram.requests);
    w.field("dram_bytes", o.gpu.dram.bytes);
    w.field("l2_bytes", o.gpu.mem_sys.l2_bytes);
    w.field("dram_utilization", o.gpu.dram_utilization);
    w.close();

    w.open("stalls");
    w.field("rt", o.gpu.stalls.rt);
    w.field("mem", o.gpu.stalls.mem);
    w.field("alu", o.gpu.stalls.alu);
    w.field("sfu", o.gpu.stalls.sfu);
    w.close();

    w.open("power");
    w.field("seconds", o.power.seconds);
    w.field("dynamic_j", o.power.dynamic_j);
    w.field("static_j", o.power.static_j);
    w.field("avg_watts", o.power.avgWatts());
    w.field("edp", o.power.edp());
    w.close();

    w.field("avg_thread_utilization", o.gpu.avg_thread_utilization);
    w.field("slowest_warp_latency", o.gpu.slowestWarpLatency());

    if (o.gpu.prof_summary.enabled) {
        const auto &p = o.gpu.prof_summary;
        w.open("prof");
        w.field("resident_cycles", p.resident_cycles);
        w.field("rt_stall_cycles", p.rtStallCycles());
        w.open("buckets");
        for (int b = 0; b < prof::kNumBuckets; ++b)
            w.field(prof::bucketName(prof::Bucket(b)), p.buckets[b]);
        w.close();
        w.open("thread_status");
        w.field("inactive", p.threads.inactive);
        w.field("busy", p.threads.busy);
        w.field("waiting", p.threads.waiting);
        w.close();
        w.close();
    }

    if (o.gpu.ray_summary.enabled) {
        const auto &r = o.gpu.ray_summary;
        w.open("ray");
        w.field("warps_seen", r.stats.warps_seen);
        w.field("warps_sampled", r.stats.warps_sampled);
        w.field("warps_retired", r.stats.warps_retired);
        w.field("rays_sampled", r.stats.rays_sampled);
        w.field("events_recorded", r.stats.events_recorded);
        w.field("events_dropped", r.stats.events_dropped);
        w.field("steal_events", r.stats.steal_events);
        w.openArray("critical_path");
        for (const auto &e : r.critical) {
            w.open();
            w.field("sm", e.sm);
            w.field("ordinal", e.ordinal);
            w.field("warp_id", e.warp_id);
            w.field("submit_cycle", e.submit_cycle);
            w.field("retire_cycle", e.retire_cycle);
            w.field("latency", e.latency());
            w.field("blocking_lane", e.blocking_lane);
            w.field("ray_node_visits", e.ray_node_visits);
            w.field("ray_steals_in", e.ray_steals_in);
            w.field("ray_steals_out", e.ray_steals_out);
            w.open("buckets");
            for (int b = 0; b < prof::kNumBuckets; ++b)
                w.field(prof::bucketName(prof::Bucket(b)),
                        e.buckets[std::size_t(b)]);
            w.close();
            w.close();
        }
        w.closeArray();
        w.close();
    }

    if (o.gpu.memscope_summary.enabled) {
        const auto &m = o.gpu.memscope_summary;
        w.open("memscope");
        w.field("node_accesses", m.node_accesses);
        w.field("node_bytes", m.node_bytes);
        w.open("levels");
        w.field("l1", m.node_level[0]);
        w.field("l2", m.node_level[1]);
        w.field("dram", m.node_level[2]);
        w.close();
        w.openArray("depths");
        for (const auto &d : m.depths) {
            w.open();
            w.field("depth", d.depth);
            w.field("accesses", d.accesses);
            w.field("bytes", d.bytes);
            // Serving-level split per depth: the diff engine's
            // depth × level attribution axis (DESIGN.md §18).
            w.field("l1", d.level[0]);
            w.field("l2", d.level[1]);
            w.field("dram", d.level[2]);
            w.field("miss_rate", d.missRate());
            w.field("avg_lanes", d.avgLanes());
            w.close();
        }
        w.closeArray();
        w.open("mem");
        w.field("line_l1", m.traffic.line_level[0]);
        w.field("line_l2", m.traffic.line_level[1]);
        w.field("line_dram", m.traffic.line_level[2]);
        w.field("l2_fill_bytes", m.traffic.l2_fill_bytes);
        w.field("bank_conflicts", m.traffic.bank_conflicts);
        w.field("bank_wait_cycles", m.traffic.bank_wait_cycles);
        w.close();
        w.open("dram");
        w.field("row_hits", m.dram_row_hits);
        w.field("row_misses", m.dram_row_misses);
        w.close();
        w.open("reuse");
        w.field("l1_cold", m.l1_reuse_cold);
        w.field("l1_tracked", m.l1_reuse_tracked);
        w.field("l2_cold", m.l2_reuse_cold);
        w.field("l2_tracked", m.l2_reuse_tracked);
        w.close();
        w.close();
    }

    if (o.query.enabled) {
        w.open("query");
        w.field("workload", o.query.workload);
        w.field("queries", o.query.queries);
        w.field("rounds", o.query.rounds);
        w.field("found", o.query.found);
        // Hex string: a 64-bit checksum exceeds the exact-integer
        // range of JSON readers that decode numbers as doubles.
        std::ostringstream csum;
        csum << "0x" << std::hex << o.query.checksum;
        w.field("checksum", csum.str());
        if (o.query.verified) {
            w.open("oracle");
            w.field("checked", o.query.oracle_checked);
            w.field("mismatches", o.query.oracle_mismatches);
            w.field("matches",
                    o.query.oracleMatches() ? "true" : "false");
            w.close();
        }
        w.close();
    }

    if (o.traceSummary().enabled) {
        w.open("trace");
        w.field("events_recorded", o.traceSummary().events_recorded);
        w.field("events_dropped", o.traceSummary().events_dropped);
        w.field("metric_samples", o.traceSummary().metric_samples);
        w.field("registered_metrics",
                o.traceSummary().registered_metrics);
        w.close();
    }
    w.close();
    os << '\n';
}

std::string
toJson(const RunOutcome &outcome)
{
    std::ostringstream ss;
    writeJson(ss, outcome);
    return ss.str();
}

} // namespace cooprt::core

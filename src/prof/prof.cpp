#include "prof/prof.hpp"

#include <ostream>

#include "trace/json.hpp"

namespace cooprt::prof {

namespace {

/** Indexed by Bucket; lint_stats_registry.py cross-checks this table
    against the enum and the DESIGN.md taxonomy, so the three cannot
    drift. */
constexpr std::array<const char *, kNumBuckets> kBucketNames = {
    "issue_compute",    // IssueCompute
    "fetch_queued",     // FetchQueued
    "stack_bound",      // StackBound
    "lbu_steal",        // LbuSteal
    "starved_l1",       // StarvedL1
    "starved_l2",       // StarvedL2
    "starved_dram",     // StarvedDram
    "subwarp_drain",    // SubwarpDrain
    "warp_buffer_full", // WarpBufferFull
    "idle_no_ray",      // IdleNoRay
};

constexpr std::array<const char *, kNumPhases> kPhaseNames = {
    "ramp",
    "traverse",
    "drain",
};

void
writeBuckets(std::ostream &os,
             const std::array<std::uint64_t, kNumBuckets> &b)
{
    os << '{';
    for (int i = 0; i < kNumBuckets; ++i) {
        if (i)
            os << ',';
        os << trace::quoteJson(kBucketNames[std::size_t(i)]) << ':'
           << b[std::size_t(i)];
    }
    os << '}';
}

} // namespace

const char *
bucketName(Bucket b)
{
    return kBucketNames[std::size_t(b)];
}

const char *
phaseName(Phase p)
{
    return kPhaseNames[std::size_t(p)];
}

Bucket
classify(const WarpView &v)
{
    // Strict priority; first match wins. Progress beats everything,
    // then direct-issue states, then LBU-only progress, then memory
    // waits, then the retire-pending residue. The order is part of
    // the taxonomy definition (DESIGN.md section 11).
    if (v.progressed)
        return Bucket::IssueCompute;
    if (v.stole)
        return Bucket::LbuSteal;
    if (v.has_ready)
        return v.ready_all_stale ? Bucket::StackBound
                                 : Bucket::FetchQueued;
    if (v.lbu_eligible)
        return Bucket::LbuSteal;
    if (v.outstanding > 0) {
        if (v.coop && !v.any_stack_work && v.has_idle_lane)
            return Bucket::SubwarpDrain;
        switch (v.wait_level) {
          case MemLevel::L1: return Bucket::StarvedL1;
          case MemLevel::L2: return Bucket::StarvedL2;
          case MemLevel::Dram: return Bucket::StarvedDram;
        }
        return Bucket::StarvedL1; // unreachable; keeps -Wreturn-type quiet
    }
    return Bucket::IdleNoRay;
}

Phase
phaseOf(bool consumed_any_response, bool any_stack_work)
{
    if (!consumed_any_response)
        return Phase::Ramp;
    return any_stack_work ? Phase::Traverse : Phase::Drain;
}

void
RtUnitProfile::add(Bucket b, Phase p, std::uint64_t weight)
{
    buckets[std::size_t(b)] += weight;
    phase_buckets[std::size_t(p)][std::size_t(b)] += weight;
    resident_cycles += weight;
}

void
RtUnitProfile::addWarpBufferFull(std::uint64_t cycles)
{
    // SM-side wait: the warp is not resident in the RT unit yet, so
    // this bucket stays outside resident_cycles and the phase matrix.
    buckets[std::size_t(Bucket::WarpBufferFull)] += cycles;
}

std::uint64_t
RtUnitProfile::residentBucketSum() const
{
    std::uint64_t sum = 0;
    for (int i = 0; i < kNumBuckets; ++i)
        if (Bucket(i) != Bucket::WarpBufferFull)
            sum += buckets[std::size_t(i)];
    return sum;
}

void
RtUnitProfile::reset()
{
    *this = RtUnitProfile{};
}

Profiler::~Profiler()
{
    if (registry_ != nullptr)
        registry_->unregisterOwner(this);
}

RtUnitProfile &
Profiler::unit(int sm_id)
{
    while (int(units_.size()) <= sm_id)
        units_.push_back(std::make_unique<RtUnitProfile>());
    return *units_[std::size_t(sm_id)];
}

void
Profiler::reset()
{
    for (auto &u : units_)
        u->reset();
}

std::array<std::uint64_t, kNumBuckets>
Profiler::totals() const
{
    std::array<std::uint64_t, kNumBuckets> t{};
    for (const auto &u : units_)
        for (int i = 0; i < kNumBuckets; ++i)
            t[std::size_t(i)] += u->buckets[std::size_t(i)];
    return t;
}

std::array<std::array<std::uint64_t, kNumBuckets>, kNumPhases>
Profiler::phaseTotals() const
{
    std::array<std::array<std::uint64_t, kNumBuckets>, kNumPhases> t{};
    for (const auto &u : units_)
        for (int p = 0; p < kNumPhases; ++p)
            for (int i = 0; i < kNumBuckets; ++i)
                t[std::size_t(p)][std::size_t(i)] +=
                    u->phase_buckets[std::size_t(p)][std::size_t(i)];
    return t;
}

std::uint64_t
Profiler::residentCycles() const
{
    std::uint64_t sum = 0;
    for (const auto &u : units_)
        sum += u->resident_cycles;
    return sum;
}

std::uint64_t
Profiler::warpBufferFullCycles() const
{
    std::uint64_t sum = 0;
    for (const auto &u : units_)
        sum += u->buckets[std::size_t(Bucket::WarpBufferFull)];
    return sum;
}

ThreadStatusCycles
Profiler::threadStatus() const
{
    ThreadStatusCycles t;
    for (const auto &u : units_) {
        t.inactive += u->threads.inactive;
        t.busy += u->threads.busy;
        t.waiting += u->threads.waiting;
    }
    return t;
}

void
Profiler::registerMetrics(cooprt::trace::Registry &registry)
{
    registry_ = &registry;
    for (std::size_t i = 0; i < units_.size(); ++i) {
        const RtUnitProfile *u = units_[i].get();
        const std::string p = "prof.sm" + std::to_string(i) + ".";
        for (int b = 0; b < kNumBuckets; ++b) {
            const std::uint64_t *src = &u->buckets[std::size_t(b)];
            registry.probe(p + kBucketNames[std::size_t(b)],
                           [src] { return double(*src); }, this);
        }
        registry.probe(p + "resident_cycles",
                       [u] { return double(u->resident_cycles); },
                       this);
    }
    for (int b = 0; b < kNumBuckets; ++b) {
        const Bucket bucket = Bucket(b);
        registry.probe(
            std::string("prof.gpu.") + kBucketNames[std::size_t(b)],
            [this, bucket] {
                return double(totals()[std::size_t(bucket)]);
            },
            this);
    }
}

void
Profiler::writeJson(std::ostream &os, const std::string &scene) const
{
    os << "{\"scene\":" << trace::quoteJson(scene)
       << ",\"buckets\":";
    writeBuckets(os, totals());
    os << ",\"resident_cycles\":" << residentCycles();
    const ThreadStatusCycles ts = threadStatus();
    os << ",\"thread_status\":{\"inactive\":" << ts.inactive
       << ",\"busy\":" << ts.busy << ",\"waiting\":" << ts.waiting
       << '}';
    const auto phases = phaseTotals();
    os << ",\"phases\":{";
    for (int p = 0; p < kNumPhases; ++p) {
        if (p)
            os << ',';
        os << trace::quoteJson(kPhaseNames[std::size_t(p)]) << ':';
        writeBuckets(os, phases[std::size_t(p)]);
    }
    os << "},\"units\":[";
    for (std::size_t i = 0; i < units_.size(); ++i) {
        if (i)
            os << ',';
        os << "{\"sm\":" << i << ",\"buckets\":";
        writeBuckets(os, units_[i]->buckets);
        os << ",\"resident_cycles\":" << units_[i]->resident_cycles
           << '}';
    }
    os << "]}";
}

void
Profiler::writeFolded(std::ostream &os, const std::string &scene) const
{
    for (std::size_t i = 0; i < units_.size(); ++i)
        for (int b = 0; b < kNumBuckets; ++b) {
            const std::uint64_t n =
                units_[i]->buckets[std::size_t(b)];
            if (n == 0)
                continue;
            os << scene << ";sm" << i << ";rtunit;"
               << kBucketNames[std::size_t(b)] << ' ' << n << '\n';
        }
}

} // namespace cooprt::prof

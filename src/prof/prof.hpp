/**
 * @file
 * The warp stall-attribution profiler (`cooprt::prof`).
 *
 * Every figure in the paper that argues *why* CoopRT wins — the
 * opening stall breakdown (Fig. 1), the thread-status distribution
 * (Fig. 4), the warp timeline (Fig. 11) — needs a per-cycle answer to
 * one question: what was each resident warp waiting for? This layer
 * answers it with a mutually-exclusive, collectively-exhaustive
 * taxonomy: every cycle a warp spends resident in an RT unit lands in
 * exactly one `Bucket`, so the bucket totals sum to the warp's trace
 * latency exactly and GPU-wide to the aggregated
 * `RtUnitStats::retired_trace_latency` (the conservation identity the
 * `prof.bucket_conservation` audit enforces in check builds).
 *
 * The layer is compile-always and runtime-enabled: attach a
 * `Profiler` through `core::RunConfig::profiler` (or `--profile` on
 * simulate_cli) to collect; leave it null and no per-cycle work runs
 * at all — simulated cycle counts are bit-identical either way (the
 * pinned-cycle tests prove it).
 *
 * Three export views:
 *   - hierarchical JSON summary (`Profiler::writeJson`, also embedded
 *     in the `core::writeJson` report as the "prof" object);
 *   - folded-stack flamegraph lines `scene;sm<i>;rtunit;<bucket> N`
 *     (`Profiler::writeFolded`) for flamegraph.pl / speedscope;
 *   - per-interval CSV columns: `registerMetrics()` publishes every
 *     bucket as a `prof.*` probe into the trace registry, so the
 *     MetricsSampler time series picks them up alongside the PR-1
 *     counters.
 */

#ifndef COOPRT_PROF_PROF_HPP
#define COOPRT_PROF_PROF_HPP

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/registry.hpp"

namespace cooprt::prof {

/**
 * The stall taxonomy. Classification is by strict priority (the
 * order below); `classify()` is the single authority, so exclusivity
 * and exhaustiveness are properties of one pure function.
 */
enum class Bucket : int
{
    /** Progress: issued a coalesced fetch or consumed a response. */
    IssueCompute = 0,
    /** Had issueable work but lost the single-issue arbitration. */
    FetchQueued,
    /** Only stale stack entries ready (pop-time elimination debt). */
    StackBound,
    /** Progress only possible through the LBU (served or waiting). */
    LbuSteal,
    /** All remaining work in flight; earliest response is an L1 hit. */
    StarvedL1,
    /** ... earliest outstanding response is served by the L2. */
    StarvedL2,
    /** ... earliest outstanding response is served by DRAM. */
    StarvedDram,
    /** CoopRT terminal drain: stacks empty, idle helper lanes, final
        fetches in flight — no stealable work left to give them. */
    SubwarpDrain,
    /** SM-side: trace issued but no free warp-buffer slot (counted
        per SM at submit, outside the RT-resident conservation sum). */
    WarpBufferFull,
    /** Resident with nothing to do (retire pending this tick). */
    IdleNoRay,
};

constexpr int kNumBuckets = 10;

/** Stable snake_case name of @p b (flamegraph / CSV / JSON key). */
const char *bucketName(Bucket b);

/** Memory level that ultimately serves a fetch (response-starved
    attribution). L1 MSHR merges are attributed to the L2 fill they
    merged into. */
enum class MemLevel : int
{
    L1 = 0,
    L2 = 1,
    Dram = 2,
};

/** Traversal phase of a warp (the warp axis of the hierarchy). */
enum class Phase : int
{
    /** Submit until the first node response is consumed. */
    Ramp = 0,
    /** Stack work exists somewhere in the warp. */
    Traverse,
    /** Stacks empty; only in-flight responses remain. */
    Drain,
};

constexpr int kNumPhases = 3;

/** Stable name of @p p ("ramp" / "traverse" / "drain"). */
const char *phaseName(Phase p);

/**
 * One warp's classification inputs, snapshotted by the RT unit. Kept
 * as plain flags so `classify()` is a pure, exhaustively testable
 * function (tests/prof/test_taxonomy.cpp enumerates this space).
 */
struct WarpView
{
    /** Issued a fetch or consumed a response this cycle. */
    bool progressed = false;
    /** The LBU moved a node within this warp this cycle. */
    bool stole = false;
    /** Some thread is issueable (!pending && non-empty stack). */
    bool has_ready = false;
    /** Every issueable thread's next pop is stale (entry_t past the
        search limit) — the warp is waiting on pop-time elimination. */
    bool ready_all_stale = false;
    /** CoopRT: some subwarp holds a legal helper/main pair. */
    bool lbu_eligible = false;
    /** In-flight responses for this warp. */
    int outstanding = 0;
    /** Level serving the earliest-ready outstanding response. */
    MemLevel wait_level = MemLevel::L1;
    /** CoopRT configuration (gates SubwarpDrain). */
    bool coop = false;
    /** Some thread's stack is non-empty (even if not issueable). */
    bool any_stack_work = false;
    /** Some lane is fully idle (no stack, no fetch in flight). */
    bool has_idle_lane = false;
};

/**
 * Classify one resident-warp cycle. Total: every input maps to
 * exactly one bucket (never WarpBufferFull, which is SM-side).
 */
Bucket classify(const WarpView &v);

/** Phase of a warp given its progress state (see Phase). */
Phase phaseOf(bool consumed_any_response, bool any_stack_work);

/** Exact thread-status cycle totals (the Fig. 4 axes). */
struct ThreadStatusCycles
{
    std::uint64_t inactive = 0; ///< lane had no ray at submit
    std::uint64_t busy = 0;     ///< stack work or fetch in flight
    std::uint64_t waiting = 0;  ///< had a ray, finished early

    std::uint64_t total() const { return inactive + busy + waiting; }
};

/**
 * Per-RT-unit accumulation: bucket totals, the phase-resolved
 * breakdown, and exact thread-status cycles. Addresses are stable
 * for the lifetime of the owning Profiler (registry probes read them
 * live).
 */
struct RtUnitProfile
{
    std::array<std::uint64_t, kNumBuckets> buckets{};
    /** buckets split by traversal phase (RT-resident cycles only). */
    std::array<std::array<std::uint64_t, kNumBuckets>, kNumPhases>
        phase_buckets{};
    /** Warp-resident cycle total == sum of non-WarpBufferFull
        buckets (the conservation invariant). */
    std::uint64_t resident_cycles = 0;
    ThreadStatusCycles threads;

    /** Account @p weight resident-warp cycles to (@p b, @p p). */
    void add(Bucket b, Phase p, std::uint64_t weight);
    /** SM-side warp-buffer-full wait (outside resident_cycles). */
    void addWarpBufferFull(std::uint64_t cycles);
    /** Sum over the RT-resident buckets (everything but
        WarpBufferFull); equals resident_cycles by construction. */
    std::uint64_t residentBucketSum() const;
    void reset();
};

/**
 * The GPU-wide profiler: one RtUnitProfile per SM's RT unit, stable
 * addresses, hierarchical export. Attach through
 * `core::RunConfig::profiler`; each run resets collected data.
 */
class Profiler
{
  public:
    Profiler() = default;
    ~Profiler();

    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /** The per-unit accumulator for SM @p sm_id (created on first
        use; the address stays valid until the Profiler dies). */
    RtUnitProfile &unit(int sm_id);
    int unitCount() const { return int(units_.size()); }
    const RtUnitProfile &unitAt(int i) const { return *units_[std::size_t(i)]; }

    /** Zero all collected data, keeping unit addresses stable. */
    void reset();

    /** GPU-level bucket totals (sum over units). */
    std::array<std::uint64_t, kNumBuckets> totals() const;
    /** GPU-level phase x bucket totals. */
    std::array<std::array<std::uint64_t, kNumBuckets>, kNumPhases>
    phaseTotals() const;
    /** GPU-level warp-resident cycles (== non-bufful bucket sum). */
    std::uint64_t residentCycles() const;
    /** GPU-level SM-side warp-buffer-full wait cycles. */
    std::uint64_t warpBufferFullCycles() const;
    /** GPU-level exact thread-status cycles (Fig. 4). */
    ThreadStatusCycles threadStatus() const;

    /**
     * Publish every bucket as `prof.sm<i>.<bucket>` plus GPU-level
     * `prof.gpu.<bucket>` probes into @p registry, so metric CSV
     * snapshots carry the taxonomy per interval. Idempotent; probes
     * are dropped in the destructor (the registry must outlive this
     * object). Call after the units exist (the Gpu attaches units
     * first, then registers).
     */
    void registerMetrics(cooprt::trace::Registry &registry);

    /** Hierarchical JSON summary (GPU -> phases -> per-SM units). */
    void writeJson(std::ostream &os, const std::string &scene) const;

    /**
     * Folded-stack flamegraph lines, one per non-zero (unit, bucket):
     *
     *     <scene>;sm<i>;rtunit;<bucket> <count>
     *
     * directly consumable by flamegraph.pl or speedscope.
     */
    void writeFolded(std::ostream &os, const std::string &scene) const;

  private:
    std::vector<std::unique_ptr<RtUnitProfile>> units_;
    cooprt::trace::Registry *registry_ = nullptr;
};

/**
 * Flat roll-up of a run's profile, copied into `gpu::GpuRunResult`
 * so reports and benches can consume the taxonomy without holding
 * the Profiler. `enabled` is false (and everything zero) when no
 * profiler was attached.
 */
struct Summary
{
    bool enabled = false;
    std::array<std::uint64_t, kNumBuckets> buckets{};
    std::uint64_t resident_cycles = 0;
    ThreadStatusCycles threads;

    /** buckets[b] accessor by enum for readability. */
    std::uint64_t of(Bucket b) const
    { return buckets[std::size_t(b)]; }
    /** Total RT-class stall cycles: resident + warp-buffer-full
        (equals the SM's class-level `stalls.rt` exactly). */
    std::uint64_t rtStallCycles() const
    { return resident_cycles + of(Bucket::WarpBufferFull); }
};

} // namespace cooprt::prof

#endif // COOPRT_PROF_PROF_HPP

#include "query/query.hpp"

#include <stdexcept>

namespace cooprt::query {

using geom::Pcg32;
using geom::Ray;
using geom::Vec3;
using rtunit::kWarpSize;

const char *
workloadName(Workload wl)
{
    switch (wl) {
    case Workload::Knn: return "knn";
    case Workload::Radius: return "radius";
    case Workload::Contain: return "contain";
    }
    return "?";
}

// --- ResultStore --------------------------------------------------

ResultStore::~ResultStore()
{
    if (registry_ != nullptr)
        registry_->unregisterOwner(this);
}

std::uint64_t
ResultStore::totalFound() const
{
    std::uint64_t n = 0;
    for (const auto &e : results_)
        n += e.count;
    return n;
}

std::uint64_t
ResultStore::totalRounds() const
{
    std::uint64_t n = 0;
    for (const auto &e : results_)
        n += e.rounds;
    return n;
}

std::uint64_t
ResultStore::checksum() const
{
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const auto &e : results_)
        h = geom::mix64(h ^ e.hash ^
                        (std::uint64_t(e.count) << 32) ^ e.rounds);
    return h;
}

void
ResultStore::registerMetrics(trace::Registry &reg)
{
    registry_ = &reg;
    reg.probe("query.queries",
              [this] { return double(results_.size()); }, this);
    reg.probe("query.rounds",
              [this] { return double(totalRounds()); }, this);
    reg.probe("query.found",
              [this] { return double(totalFound()); }, this);
}

Summary
summarize(Workload wl, const ResultStore &store)
{
    Summary s;
    s.enabled = true;
    s.workload = workloadName(wl);
    s.queries = store.size();
    s.rounds = store.totalRounds();
    s.found = store.totalFound();
    s.checksum = store.checksum();
    return s;
}

// --- Query sample points ------------------------------------------

geom::AABB
queryDomain(const scene::Scene &scene)
{
    geom::AABB b = scene.mesh.bounds();
    if (scene.kind == scene::SceneKind::AmrCells) {
        // Stay strictly inside the grid: advectPoint clamps to the
        // same inset, so every locate step finds a cell.
        const Vec3 e = b.extent();
        return {b.lo + e * 0.004f, b.hi - e * 0.004f};
    }
    return b;
}

Vec3
queryPointFor(const geom::AABB &domain, std::uint64_t frame_seed,
              int id)
{
    // Same per-stream seeding idiom as the shader pixels, so query
    // ids decorrelate and the point set is a pure function of the
    // seed.
    Pcg32 rng(geom::mix64(std::uint64_t(id) * 69069u ^ frame_seed),
              std::uint64_t(id));
    return rng.nextInBox(domain.lo, domain.hi);
}

// --- The warp program ---------------------------------------------

namespace {

/**
 * One warp of up to 32 queries, all of the same workload. Each lane
 * runs its own refinement loop; the warp issues one TraceJob per
 * round covering every still-active lane (divergent lanes simply
 * stop contributing rays, the exact analogue of threads leaving the
 * bounce loop in Listing 1).
 */
class QueryProgram : public gpu::WarpProgram
{
  public:
    QueryProgram(Workload wl, ResultStore &store,
                 const geom::AABB &domain, int first_query, int total,
                 const QueryParams &params)
        : wl_(wl), store_(store), params_(params), domain_(domain)
    {
        for (int t = 0; t < kWarpSize; ++t) {
            const int id = first_query + t;
            if (id >= total)
                continue;
            LaneState &l = lanes_[std::size_t(t)];
            l.valid = true;
            l.id = std::uint32_t(id);
            l.point =
                queryPointFor(domain, params.frame_seed, id);
        }
    }

    gpu::WarpAction
    start() override
    {
        return makeRound();
    }

    gpu::WarpAction
    resume(const rtunit::TraceResult &result) override
    {
        for (int t = 0; t < kWarpSize; ++t) {
            LaneState &l = lanes_[std::size_t(t)];
            if (!l.valid || !l.issued)
                continue;
            l.issued = false;
            l.round++;
            QueryResult &e = store_.at(l.id);
            e.rounds++;
            const geom::HitRecord &hit =
                result.hits[std::size_t(t)];
            switch (wl_) {
            case Workload::Knn:
                if (hit.hit()) {
                    accept(e, l, hit);
                    l.done = l.round >= params_.k;
                } else {
                    // Fewer than k points beyond tmin: exhausted.
                    l.done = true;
                }
                break;
            case Workload::Radius:
                if (hit.hit()) {
                    accept(e, l, hit);
                    l.done = l.round >= params_.max_rounds;
                } else {
                    l.done = true;
                }
                break;
            case Workload::Contain:
                if (hit.hit()) {
                    accept(e, l, hit);
                } else {
                    // Should not happen (samples stay inside the
                    // grid); fold the miss so it cannot hide.
                    e.hash =
                        hashStep(e.hash, 0xffffffffu, geom::kNoHit);
                }
                l.point = advectPoint(l.point, domain_);
                l.done = l.round >= params_.steps;
                break;
            }
        }
        return makeRound();
    }

  private:
    struct LaneState
    {
        bool valid = false;
        bool done = false;
        bool issued = false;
        std::uint32_t id = 0;
        Vec3 point;
        float last_d = 0.0f;
        int round = 0;
    };

    /** Fold an accepted (prim, value) into the lane's query. */
    void
    accept(QueryResult &e, LaneState &l, const geom::HitRecord &hit)
    {
        e.count++;
        e.hash = hashStep(e.hash, hit.prim_id, hit.thit);
        e.last_prim = hit.prim_id;
        e.last_value = hit.thit;
        l.last_d = hit.thit;
    }

    gpu::WarpAction
    makeRound()
    {
        gpu::WarpAction a;
        a.cost = params_.shade_cost;
        a.kind = gpu::WarpAction::Kind::Finish;
        a.trace.query = wl_ == Workload::Contain
                            ? geom::QueryKind::CellContain
                            : geom::QueryKind::NearestPoint;
        for (int t = 0; t < kWarpSize; ++t) {
            LaneState &l = lanes_[std::size_t(t)];
            if (!l.valid || l.done)
                continue;
            switch (wl_) {
            case Workload::Knn:
                a.trace.rays[std::size_t(t)] =
                    Ray(l.point, Vec3{}, l.last_d, geom::kNoHit);
                break;
            case Workload::Radius:
                a.trace.rays[std::size_t(t)] =
                    Ray(l.point, Vec3{}, l.last_d, params_.radius);
                break;
            case Workload::Contain:
                a.trace.rays[std::size_t(t)] =
                    Ray(l.point, Vec3{}, 0.0f, geom::kNoHit);
                break;
            }
            l.issued = true;
            a.kind = gpu::WarpAction::Kind::Trace;
        }
        return a;
    }

    Workload wl_;
    ResultStore &store_;
    QueryParams params_;
    geom::AABB domain_;
    std::array<LaneState, kWarpSize> lanes_;
};

} // namespace

std::vector<std::unique_ptr<gpu::WarpProgram>>
makeQueryFrame(const scene::Scene &scene, Workload wl,
               ResultStore &store, int width, int height,
               const QueryParams &params)
{
    const bool points = scene.kind == scene::SceneKind::PointCloud;
    const bool cells = scene.kind == scene::SceneKind::AmrCells;
    if ((wl == Workload::Contain && !cells) ||
        (wl != Workload::Contain && !points))
        throw std::invalid_argument(
            std::string("query workload '") + workloadName(wl) +
            "' needs a " +
            (wl == Workload::Contain ? "cell (amr*)"
                                     : "point-cloud (pts*)") +
            " scene, got '" + scene.name + "'");

    const int total = width * height;
    if (std::size_t(total) != store.size())
        throw std::invalid_argument(
            "query ResultStore size does not match width*height");

    const geom::AABB domain = queryDomain(scene);
    std::vector<std::unique_ptr<gpu::WarpProgram>> out;
    for (int first = 0; first < total; first += kWarpSize)
        out.push_back(std::make_unique<QueryProgram>(
            wl, store, domain, first, total, params));
    return out;
}

// --- Brute-force oracles ------------------------------------------

namespace {

/**
 * The closest point strictly beyond @p last and strictly inside
 * @p limit — the exact accept condition of geom::queryLeafTest over
 * a full scan, folding the identical distance expression.
 */
struct Best
{
    float value = geom::kNoHit;
    std::uint32_t prim = 0xffffffffu;

    bool found() const { return value != geom::kNoHit; }
};

Best
scanNearest(const scene::Mesh &mesh, const Vec3 &q, float last,
            float tmax)
{
    Best b;
    for (std::uint32_t prim = 0; prim < mesh.size(); ++prim) {
        const float d = (mesh.tri(prim).v0 - q).length();
        if (d <= last)
            continue;
        const float limit = b.value < tmax ? b.value : tmax;
        if (d >= limit)
            continue;
        b.value = d;
        b.prim = prim;
    }
    return b;
}

Best
scanContain(const scene::Mesh &mesh, const Vec3 &p)
{
    Best b;
    for (std::uint32_t prim = 0; prim < mesh.size(); ++prim) {
        const geom::Triangle &tri = mesh.tri(prim);
        if (p.x < tri.v0.x || p.x > tri.v1.x || p.y < tri.v0.y ||
            p.y > tri.v1.y || p.z < tri.v0.z || p.z > tri.v1.z)
            continue;
        const float width = tri.v1.x - tri.v0.x;
        if (width <= 0.0f || width >= b.value)
            continue;
        b.value = width;
        b.prim = prim;
    }
    return b;
}

/** The reference QueryResult of one query, by exhaustive scan. */
QueryResult
oracleQuery(const scene::Scene &scene, Workload wl,
            const QueryParams &params, const geom::AABB &domain,
            int id)
{
    QueryResult e;
    Vec3 p = queryPointFor(domain, params.frame_seed, id);
    float last = 0.0f;

    const int rounds = wl == Workload::Knn      ? params.k
                       : wl == Workload::Radius ? params.max_rounds
                                                : params.steps;
    const float tmax =
        wl == Workload::Radius ? params.radius : geom::kNoHit;

    for (int r = 0; r < rounds; ++r) {
        e.rounds++;
        const Best b = wl == Workload::Contain
                           ? scanContain(scene.mesh, p)
                           : scanNearest(scene.mesh, p, last, tmax);
        if (wl == Workload::Contain) {
            if (b.found()) {
                e.count++;
                e.hash = hashStep(e.hash, b.prim, b.value);
                e.last_prim = b.prim;
                e.last_value = b.value;
            } else {
                e.hash = hashStep(e.hash, 0xffffffffu, geom::kNoHit);
            }
            p = advectPoint(p, domain);
            continue;
        }
        if (!b.found())
            break;
        e.count++;
        e.hash = hashStep(e.hash, b.prim, b.value);
        e.last_prim = b.prim;
        e.last_value = b.value;
        last = b.value;
    }
    return e;
}

bool
sameResult(const QueryResult &a, const QueryResult &b)
{
    // last_value compared bit-for-bit: the oracle folds the same
    // float expressions, so even the sign of zero must agree.
    std::uint32_t abits, bbits;
    std::memcpy(&abits, &a.last_value, sizeof(abits));
    std::memcpy(&bbits, &b.last_value, sizeof(bbits));
    return a.count == b.count && a.rounds == b.rounds &&
           a.last_prim == b.last_prim && abits == bbits &&
           a.hash == b.hash;
}

} // namespace

OracleCheck
verifyAgainstOracle(const scene::Scene &scene, Workload wl,
                    const QueryParams &params, int width, int height,
                    const ResultStore &store)
{
    const geom::AABB domain = queryDomain(scene);
    OracleCheck chk;
    const int total = width * height;
    for (int id = 0; id < total; ++id) {
        const QueryResult want =
            oracleQuery(scene, wl, params, domain, id);
        chk.checked++;
        if (!sameResult(store.at(std::size_t(id)), want))
            chk.mismatches++;
    }
    return chk;
}

} // namespace cooprt::query

/**
 * @file
 * Non-rendering query workloads on the RT unit (`cooprt::query`), a
 * peer of `cooprt::shaders`:
 *
 *  - k-nearest neighbor search over point clouds (RTNN mapping):
 *    each query point is a zero-direction ray; round j sets
 *    `tmin` to round j-1's neighbor distance, so closest-hit
 *    traversal returns the j-th neighbor exactly (shrinking-sphere
 *    refinement with no exclusion lists — see geom/proxy.hpp);
 *  - fixed-radius search: the same loop with `tmax` clamped to the
 *    radius, terminating at the first empty round;
 *  - point containment over AMR cell hierarchies (Zellmann et al.):
 *    a sample point is located in its finest containing leaf cell,
 *    then advected through an analytic velocity field and relocated,
 *    `steps` times (the flow-visualization access pattern).
 *
 * Every workload runs through the unmodified `RtUnit`/`Gpu` timing
 * pipeline — the only RT-unit difference is the leaf test dispatch on
 * `TraceJob::query` — so baseline vs CoopRT comparisons, stall
 * buckets, memscope heatmaps and ray provenance all apply unchanged.
 *
 * Results are stored per query id (scheduling-independent), summed
 * into an order-insensitive checksum, and cross-checked against
 * brute-force oracles that replay the exact per-round float
 * arithmetic: the simulator must match the oracle bit-for-bit.
 */

#ifndef COOPRT_QUERY_QUERY_HPP
#define COOPRT_QUERY_QUERY_HPP

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/proxy.hpp"
#include "geom/rng.hpp"
#include "geom/vec3.hpp"
#include "gpu/warp_program.hpp"
#include "scene/scene.hpp"
#include "trace/registry.hpp"

namespace cooprt::query {

/** The three query workloads (RunConfig selects one). */
enum class Workload
{
    /** k-nearest neighbors per query point (PointCloud scenes). */
    Knn,
    /** All neighbors within a fixed radius (PointCloud scenes). */
    Radius,
    /** Locate-and-advect cell containment (AmrCells scenes). */
    Contain,
};

/** Stable lowercase name: "knn", "radius", "contain". */
const char *workloadName(Workload wl);

/** Tunables of a query run (defaults used by benches and CI). */
struct QueryParams
{
    /** Neighbors per query (Knn). */
    int k = 4;
    /** Search radius (Radius). */
    float radius = 0.22f;
    /** Locate-advect steps per sample point (Contain). */
    int steps = 4;
    /** Seed for the deterministic per-query sample points. */
    std::uint64_t frame_seed = 7;
    /** Safety cap on refinement rounds per query (Radius). */
    int max_rounds = 64;
    /** Cross-check against the brute-force oracle after the run. */
    bool verify = true;
    /** Per-round shading cost (result consumption + next-round
     *  setup), the analogue of the shaders' bounce cost. */
    gpu::ShadingCost shade_cost{6, 2, 4};
};

/**
 * Per-query result, indexed by query id. All fields are pure
 * functions of (scene, workload, params, query id): warp scheduling,
 * work stealing and observer attachment cannot change them.
 */
struct QueryResult
{
    /** Neighbors found / cells located. */
    std::uint32_t count = 0;
    /** Traversal rounds issued for this query. */
    std::uint32_t rounds = 0;
    /** Final primitive (k-th neighbor / last containing cell). */
    std::uint32_t last_prim = 0xffffffffu;
    /** Final distance (Knn/Radius) or cell width (Contain). */
    float last_value = 0.0f;
    /** Order-sensitive fold over every (prim, value) this query
     *  produced; the oracle recomputes it bit-for-bit. */
    std::uint64_t hash = 0;
};

/** One (prim, value) step folded into a query's running hash. */
inline std::uint64_t
hashStep(std::uint64_t h, std::uint32_t prim, float value)
{
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return geom::mix64(h ^ (std::uint64_t(prim) << 32) ^ bits);
}

/**
 * Per-run result sink shared by the warp programs of one frame.
 * Registers the `query.*` probes (single registration authority; see
 * DESIGN.md section 17) when a trace session is attached.
 */
class ResultStore
{
  public:
    explicit ResultStore(std::size_t queries) : results_(queries) {}
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    QueryResult &at(std::size_t i) { return results_[i]; }
    const QueryResult &at(std::size_t i) const { return results_[i]; }
    std::size_t size() const { return results_.size(); }

    /** Sum of per-query counts. */
    std::uint64_t totalFound() const;
    /** Sum of per-query traversal rounds. */
    std::uint64_t totalRounds() const;
    /** Order-insensitive fold over every per-query hash/count. */
    std::uint64_t checksum() const;

    /** Register the `query.*` probes; the destructor unregisters. */
    void registerMetrics(trace::Registry &reg);

  private:
    std::vector<QueryResult> results_;
    trace::Registry *registry_ = nullptr;
};

/** Deterministic run summary, reported alongside the GPU results. */
struct Summary
{
    bool enabled = false;
    std::string workload;
    std::uint64_t queries = 0;
    std::uint64_t rounds = 0;
    std::uint64_t found = 0;
    std::uint64_t checksum = 0;
    /** Oracle cross-check ran (QueryParams::verify). */
    bool verified = false;
    std::uint64_t oracle_checked = 0;
    std::uint64_t oracle_mismatches = 0;

    bool oracleMatches() const
    { return verified && oracle_mismatches == 0; }
};

/** Condense @p store into a Summary (oracle fields left unset). */
Summary summarize(Workload wl, const ResultStore &store);

/** Outcome of a brute-force oracle cross-check. */
struct OracleCheck
{
    std::uint64_t checked = 0;
    std::uint64_t mismatches = 0;
};

/**
 * The box query sample points are drawn from: the mesh bounds for
 * point clouds, the AMR domain shrunk slightly inward (so advected
 * samples never leave the grid) for cell scenes.
 */
geom::AABB queryDomain(const scene::Scene &scene);

/**
 * The sample point of query @p id — a pure function of (domain, seed,
 * id), shared by the warp programs and the oracle.
 */
geom::Vec3 queryPointFor(const geom::AABB &domain,
                         std::uint64_t frame_seed, int id);

/**
 * One advection step of the Contain workload: an analytic swirl
 * velocity field (a function of the position only, so locate results
 * cannot feed back into the trajectory), clamped into @p domain.
 * Inline so the simulator programs and the oracle fold the exact
 * same float expressions.
 */
inline geom::Vec3
advectPoint(const geom::Vec3 &p, const geom::AABB &domain)
{
    const geom::Vec3 v{
        std::sin(3.1f * p.y) + 0.3f * std::cos(2.3f * p.z),
        std::sin(2.7f * p.z) + 0.3f * std::cos(3.7f * p.x),
        std::sin(3.3f * p.x) + 0.3f * std::cos(2.9f * p.y)};
    const geom::Vec3 q = p + v * 0.11f;
    const geom::Vec3 e = domain.extent();
    return geom::min(geom::max(q, domain.lo + e * 0.004f),
                     domain.hi - e * 0.004f);
}

/**
 * Build the warp programs of one query frame: width x height queries,
 * one per "pixel" (so resolution plumbing, campaign matrices and
 * film-less runs work unchanged), 32 per warp. Results are written
 * into @p store, which must outlive the programs and hold
 * width*height entries.
 *
 * @throws std::invalid_argument when the scene kind does not match
 *         the workload (Knn/Radius need PointCloud, Contain needs
 *         AmrCells).
 */
std::vector<std::unique_ptr<gpu::WarpProgram>>
makeQueryFrame(const scene::Scene &scene, Workload wl,
               ResultStore &store, int width, int height,
               const QueryParams &params);

/**
 * Replay every query against a brute-force scan of all primitives,
 * folding the identical float expressions, and compare each
 * QueryResult field bit-for-bit against @p store.
 */
OracleCheck verifyAgainstOracle(const scene::Scene &scene, Workload wl,
                                const QueryParams &params, int width,
                                int height, const ResultStore &store);

} // namespace cooprt::query

#endif // COOPRT_QUERY_QUERY_HPP

/**
 * @file
 * Ray-level provenance tracing (`cooprt::raytrace`).
 *
 * The trace/prof layers (DESIGN.md §9/§11) aggregate counters and
 * MECE cycle buckets; they can say *how many* cycles the RT units
 * spent starved on DRAM, but not *which ray* a warp was waiting on
 * when it became the slowest warp of Fig. 14, nor what that ray's
 * walk through the BVH looked like. This subsystem closes the gap:
 * a compile-always, runtime-enabled recorder samples K rays per
 * warp and logs every lifecycle event of each sampled ray inside
 * `RtUnit` — launch, node pop/push, fetch issued (with the serving
 * memory level), fetch response consumed, leaf test, LBU steal
 * donated/received, subwarp reform, retirement — each stamped with
 * the cycle it happened on.
 *
 * Three exports are derived from the records:
 *   1. per-warp Perfetto tracks through `trace::Tracer`
 *      (`Recorder::emitPerfetto`) — one track group per sampled
 *      warp, one sub-track per sampled ray, slices per phase;
 *   2. a critical-path report (`Recorder::criticalPath`) naming the
 *      slowest sampled warp per SM, its retirement-blocking ray,
 *      and that ray's cycles attributed to the `prof` bucket
 *      taxonomy;
 *   3. a `raystats` JSON/CSV summary (`writeRayStatsJson`/`Csv`)
 *      with per-ray node-visit counts, stack high-water mark,
 *      steal in/out counts and a memory-level histogram.
 *
 * Determinism contract: whether a (warp, lane) pair is sampled
 * depends only on (config seed, SM id, the warp's per-unit
 * submission ordinal, lane) — never on wall clock, host thread or
 * `--jobs`, so records are bit-stable across campaign worker
 * counts. When the recorder is not attached the hot paths pay one
 * null-pointer branch (pinned-cycle tests prove bit-identity).
 */

#ifndef COOPRT_RAYTRACE_RAYTRACE_HPP
#define COOPRT_RAYTRACE_RAYTRACE_HPP

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "prof/prof.hpp"
#include "stats/timeline.hpp"
#include "trace/json.hpp"

namespace cooprt::trace {
class Tracer;
class Registry;
} // namespace cooprt::trace

namespace cooprt::raytrace {

/** SIMD width mirrored from rtunit (static_assert'd in rt_unit.cpp). */
constexpr int kLanes = 32;

/** Lifecycle event kinds of one sampled ray (DESIGN.md §13 schema). */
enum class EventKind : std::uint8_t {
    /** Ray entered the warp buffer; root pushed on its stack. */
    Launch = 0,
    /** Stack entry popped; `aux` 0 = issued for traversal, 1 = stale. */
    NodePop,
    /** Child node pushed (by any lane working for this ray). */
    NodePush,
    /** Node fetch issued to memory; `aux` = serving level (0/1/2). */
    FetchIssued,
    /** Fetch response consumed; `aux` = serving level (0/1/2). */
    FetchConsumed,
    /** Leaf reached; `value` = triangles intersected this visit. */
    LeafTest,
    /** TOS entry of this ray donated; lane = donor, `aux` = recipient. */
    StealDonated,
    /** This lane received a stolen entry; `aux` = donor lane. */
    StealReceived,
    /** Helper retargeted to this ray; lane = helper, `aux` = donor. */
    SubwarpReform,
    /** Ray's warp retired; closing event. */
    Retire,
};

constexpr int kNumEventKinds = 10;

/** Stable lower-case name for @p k (export/report keys). */
const char *eventName(EventKind k);

/** One cycle-stamped lifecycle event (16 bytes). */
struct RayEvent
{
    std::uint64_t cycle = 0;
    /** Node reference (raw) or triangle-test count; see EventKind. */
    std::uint32_t value = 0;
    EventKind kind = EventKind::Launch;
    /** Lane that executed the event (helpers differ from the owner). */
    std::int8_t lane = -1;
    /** Kind-specific payload: peer lane, memory level, or stale flag. */
    std::int8_t aux = -1;
};

/** Per-ray aggregate counters (the raystats export rows). */
struct RayStats
{
    /** Fetch responses consumed on behalf of this ray. */
    std::uint64_t node_visits = 0;
    /** Stack pops that issued traversal work. */
    std::uint64_t node_pops = 0;
    /** Stack pops eliminated as stale (t_entry >= min_thit). */
    std::uint64_t stale_pops = 0;
    /** Child nodes pushed (root launch excluded). */
    std::uint64_t node_pushes = 0;
    /** Triangles intersected at leaves for this ray. */
    std::uint64_t leaf_tests = 0;
    /** Stolen entries this *lane* received as an LBU helper. */
    std::uint64_t steals_in = 0;
    /** Entries of this *ray* donated to helper lanes. */
    std::uint64_t steals_out = 0;
    /** Stack high-water mark in live entries (wherever they reside). */
    std::uint64_t stack_hwm = 0;
    /** Node fetches by serving level (L1 / L2 / DRAM). */
    std::array<std::uint64_t, 3> level_hist{};
};

/** Full record of one sampled ray, identified by its origin lane. */
struct RayRecord
{
    int lane = -1;
    std::uint64_t launch_cycle = 0;
    std::uint64_t retire_cycle = 0;
    RayStats stats;
    std::vector<RayEvent> events;
    /** Events lost to the per-ray cap (conservation excludes them). */
    std::uint64_t events_dropped = 0;
    /** Live stack entries while recording (HWM bookkeeping). */
    std::int64_t live_entries = 0;

    /** Cycle of the last recorded event (launch_cycle when empty). */
    std::uint64_t lastEventCycle() const;
};

/** One lane busy/idle transition (fig11 timeline reconstruction). */
struct LaneEdge
{
    std::uint64_t cycle = 0;
    std::int8_t lane = -1;
    bool busy = false;
};

/** Everything recorded about one sampled warp. */
struct WarpRecord
{
    int sm = 0;
    /** Per-unit submission ordinal (sampling key; 0-based). */
    std::uint64_t ordinal = 0;
    /** GPU-wide warp id (set post-submit by the SM; -1 in unit tests). */
    int warp_id = -1;
    int slot = -1;
    std::uint64_t submit_cycle = 0;
    std::uint64_t retire_cycle = 0;
    bool retired = false;
    std::uint32_t active_mask = 0;
    std::uint32_t sampled_mask = 0;
    /** One record per sampled lane, ascending lane order. */
    std::vector<RayRecord> rays;
    /** All-lane busy edges (only with RecorderConfig::lane_timeline). */
    std::vector<LaneEdge> lane_edges;
#if COOPRT_CHECK_ENABLED
    /** Steal events that must appear in the logs (conservation). */
    std::uint64_t audit_steal_expected = 0;
#endif

    std::uint64_t latency() const { return retire_cycle - submit_cycle; }
    /** Record of the sampled ray at @p lane, or nullptr. */
    const RayRecord *rayAt(int lane) const;
};

/** Runtime knobs; all defaults are cheap enough for campaigns. */
struct RecorderConfig
{
    /** Rays sampled per warp; >= kLanes samples every active lane. */
    int sample_k = 4;
    /** Mixed into the per-lane sampling hash (determinism contract). */
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
    /** Skip the first N warps per unit (fig11 picks a mid-run warp). */
    std::uint64_t warp_skip = 0;
    /** Stop sampling after N warps per unit; 0 = unlimited. */
    std::uint64_t max_warps_per_unit = 0;
    /** Per-ray event cap; excess counted in events_dropped. */
    std::uint64_t max_events_per_ray = 1u << 20;
    /** Record all-lane busy edges (fig11 timelines; costs memory). */
    bool lane_timeline = false;
};

/** Aggregate recorder counters, exported as `ray.*` probes. */
struct RecorderStats
{
    std::uint64_t warps_seen = 0;
    std::uint64_t warps_sampled = 0;
    std::uint64_t warps_retired = 0;
    std::uint64_t rays_sampled = 0;
    std::uint64_t events_recorded = 0;
    std::uint64_t events_dropped = 0;
    std::uint64_t steal_events = 0;
};

/**
 * Per-RT-unit recording surface. `RtUnit` calls the on* hooks (all
 * guarded by a sampled-slot lookup that early-outs in O(1)); the
 * owning `Recorder` aggregates the results. Not thread-safe — one
 * unit is always ticked by one host thread.
 */
class UnitRecorder
{
  public:
    UnitRecorder(int sm, const RecorderConfig *cfg);

    int sm() const { return sm_; }

    /** True when the warp in @p slot has sampled rays. */
    bool
    slotSampled(int slot) const
    {
        return live_rec_[slot] >= 0;
    }

    /** True when @p slot wants all-lane busy edges recorded. */
    bool
    wantLaneEdges(int slot) const
    {
        return cfg_->lane_timeline && live_rec_[slot] >= 0;
    }

    /**
     * Warp entered @p slot at @p now. @p active_mask = lanes with a
     * ray, @p root_mask = lanes whose root push survived (primCount
     * and t-entry filters). Decides sampling for the whole warp.
     */
    void onSubmit(int slot, std::uint64_t now, std::uint32_t active_mask,
                  std::uint32_t root_mask);

    /** Associate the GPU-wide warp id (valid even after retire). */
    void setWarpId(int slot, int warp_id);

    /** Stack pop on @p lane for ray @p owner; stale = eliminated. */
    void onPop(int slot, int lane, int owner, std::uint32_t ref_raw,
               bool stale, std::uint64_t now);

    /** Node fetch issued; @p level = serving memory level (0/1/2). */
    void onFetchIssued(int slot, int lane, int owner,
                       std::uint32_t ref_raw, int level,
                       std::uint64_t now);

    /** Fetch response consumed by @p lane for ray @p owner. */
    void onFetchConsumed(int slot, int lane, int owner,
                         std::uint32_t ref_raw, int level,
                         std::uint64_t now);

    /** Child pushed on @p lane's stack for ray @p owner. */
    void onNodePush(int slot, int lane, int owner,
                    std::uint32_t ref_raw, std::uint64_t now);

    /** @p tests triangles intersected at a leaf for ray @p owner. */
    void onLeafTests(int slot, int lane, int owner, std::uint32_t tests,
                     std::uint64_t now);

    /**
     * LBU moved the TOS entry of ray @p owner from lane @p donor to
     * lane @p recipient; @p reform = the helper switched owners
     * (subwarp reformation).
     */
    void onSteal(int slot, int donor, int recipient, int owner,
                 bool reform, std::uint64_t now);

    /** Lane busy/idle edge (only called when wantLaneEdges). */
    void onLaneEdge(int slot, int lane, bool busy, std::uint64_t now);

    /** Warp in @p slot retired at @p now; closes its records. */
    void onRetire(int slot, std::uint64_t now);

    /** Invariant-audit label, e.g. "raytrace.sm0" (check builds). */
    void setCheckLabel(std::string label) { label_ = std::move(label); }

    const std::vector<WarpRecord> &warps() const { return records_; }
    const RecorderStats &stats() const { return stats_; }

    void reset();

  private:
    /** Append @p ev to @p ray honouring the cap; false when dropped. */
    bool append(RayRecord &ray, const RayEvent &ev);
    /** Ray index of @p lane in the slot's live record, or -1. */
    int rayIndex(int slot, int lane) const;

    int sm_ = 0;
    const RecorderConfig *cfg_;
    std::string label_ = "raytrace";
    std::uint64_t warps_seen_ = 0;
    std::uint64_t warps_sampled_ = 0;
    /** slot -> live record index (-1 = not sampled / retired). */
    std::array<std::int32_t, 64> live_rec_{};
    /** slot -> last record index, surviving retire (setWarpId). */
    std::array<std::int32_t, 64> last_rec_{};
    /** slot x lane -> index into the record's rays (-1 = unsampled). */
    std::array<std::array<std::int8_t, kLanes>, 64> lane_ray_{};
    std::vector<WarpRecord> records_;
    RecorderStats stats_;
};

/** Critical-path attribution for one warp (prof bucket keys). */
struct CriticalPathEntry
{
    int sm = 0;
    std::uint64_t ordinal = 0;
    int warp_id = -1;
    std::uint64_t submit_cycle = 0;
    std::uint64_t retire_cycle = 0;
    /** Lane of the retirement-blocking sampled ray. */
    int blocking_lane = -1;
    /** Cycle of that ray's last recorded event. */
    std::uint64_t blocking_last_event = 0;
    std::uint64_t ray_node_visits = 0;
    std::uint64_t ray_steals_in = 0;
    std::uint64_t ray_steals_out = 0;
    /** Warp-latency cycles per prof bucket; sums to latency(). */
    std::array<std::uint64_t, prof::kNumBuckets> buckets{};

    std::uint64_t latency() const { return retire_cycle - submit_cycle; }
};

/** Slowest *sampled* warp per SM (ascending SM id). */
struct CriticalPathReport
{
    std::vector<CriticalPathEntry> per_sm;

    /** Globally slowest entry, or nullptr when empty. */
    const CriticalPathEntry *slowest() const;
};

/**
 * Attribute @p w's latency to prof buckets along its blocking ray:
 * the sampled ray with the latest recorded event. Every cycle in
 * [submit, retire) lands in exactly one bucket — fetch intervals
 * become starved_l1/l2/dram (deepest level wins on overlap), steal
 * cycles lbu_steal, event cycles issue_compute, the tail after the
 * last event idle_no_ray, and everything else fetch_queued (work
 * exists, the unit is busy elsewhere).
 */
CriticalPathEntry attributeCriticalPath(const WarpRecord &w);

/** Fixed-width attribution table (the fig14 companion output). */
void writeCriticalPath(std::ostream &os, const CriticalPathReport &r);

/** Copy-out snapshot carried in GpuRunResult / RunOutcome. */
struct Summary
{
    bool enabled = false;
    RecorderStats stats;
    /** Slowest sampled warp per SM with bucket attribution. */
    std::vector<CriticalPathEntry> critical;

    const CriticalPathEntry *slowest() const;
};

/**
 * Whole-GPU recorder: owns one UnitRecorder per SM, registers
 * `ray.*` probes, and produces the three exports. Attach via
 * `RunConfig::ray_recorder` (or `Gpu::setRayTrace` directly).
 */
class Recorder
{
  public:
    Recorder() = default;
    explicit Recorder(RecorderConfig cfg) : cfg_(cfg) {}
    ~Recorder();

    Recorder(const Recorder &) = delete;
    Recorder &operator=(const Recorder &) = delete;

    const RecorderConfig &config() const { return cfg_; }

    /** Per-SM recording surface; created on first use. */
    UnitRecorder &unit(int sm);

    /** Drop all records/counters; unit addresses stay valid. */
    void reset();

    /** Counters summed over all units. */
    RecorderStats stats() const;

    /** All sampled warps, SM-major, submission order within an SM. */
    std::vector<const WarpRecord *> warps() const;

    /** Sampled warp of @p sm with the largest latency, or nullptr. */
    const WarpRecord *slowestWarp(int sm) const;

    /** Register `ray.*` probes (owner-tagged; idempotent). */
    void registerMetrics(trace::Registry &reg);

    /** Emit per-warp / per-ray tracks into @p tracer (export 1). */
    void emitPerfetto(trace::Tracer &tracer) const;

    /** Critical-path report over all SMs (export 2). */
    CriticalPathReport criticalPath() const;

    /** raystats JSON document (export 3); @p scene tags the run. */
    void writeRayStatsJson(std::ostream &os,
                           const std::string &scene) const;

    /** raystats CSV: one row per sampled ray. */
    void writeRayStatsCsv(std::ostream &os) const;

    /** Snapshot for GpuRunResult (stats + critical path). */
    Summary summary() const;

    /** Stamp the run identity (called by `Simulation::run`); emitted
     *  into writeRayStatsJson. Metadata only — survives reset(). */
    void setRunKey(const cooprt::trace::RunKeyFields &key)
    { run_key_ = key; }
    const cooprt::trace::RunKeyFields &runKey() const
    { return run_key_; }

  private:
    RecorderConfig cfg_;
    std::vector<std::unique_ptr<UnitRecorder>> units_;
    trace::Registry *registry_ = nullptr;
    cooprt::trace::RunKeyFields run_key_;
};

/**
 * Rebuild a fig11-style busy timeline from @p w's lane edges
 * (requires RecorderConfig::lane_timeline). Bit-equivalent to the
 * legacy `Gpu::armTimeline` recorder for the same warp.
 */
stats::TimelineRecorder laneTimeline(const WarpRecord &w);

} // namespace cooprt::raytrace

#endif // COOPRT_RAYTRACE_RAYTRACE_HPP

#include "raytrace/raytrace.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <utility>

#include "geom/rng.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/json.hpp"
#include "trace/registry.hpp"

namespace cooprt::raytrace {

namespace {

constexpr const char *kEventNames[kNumEventKinds] = {
    "launch",        "node_pop",       "node_push",
    "fetch_issued",  "fetch_consumed", "leaf_test",
    "steal_donated", "steal_received", "subwarp_reform",
    "retire",
};

/** Static-lifetime slice name for a fetch served at @p level. */
const char *
fetchSliceName(int level)
{
    switch (level) {
    case 0: return "fetch_l1";
    case 1: return "fetch_l2";
    default: return "fetch_dram";
    }
}

prof::Bucket
starvedBucket(int level)
{
    switch (level) {
    case 0: return prof::Bucket::StarvedL1;
    case 1: return prof::Bucket::StarvedL2;
    default: return prof::Bucket::StarvedDram;
    }
}

} // namespace

const char *
eventName(EventKind k)
{
    return kEventNames[std::size_t(k)];
}

std::uint64_t
RayRecord::lastEventCycle() const
{
    // The closing Retire event lands on every ray at the same cycle;
    // skip it so "latest event" still discriminates between rays.
    for (auto it = events.rbegin(); it != events.rend(); ++it)
        if (it->kind != EventKind::Retire)
            return it->cycle;
    return launch_cycle;
}

const RayRecord *
WarpRecord::rayAt(int lane) const
{
    for (const auto &r : rays)
        if (r.lane == lane)
            return &r;
    return nullptr;
}

// ---------------------------------------------------------------------------
// UnitRecorder
// ---------------------------------------------------------------------------

UnitRecorder::UnitRecorder(int sm, const RecorderConfig *cfg)
    : sm_(sm), cfg_(cfg)
{
    live_rec_.fill(-1);
    last_rec_.fill(-1);
    for (auto &lanes : lane_ray_)
        lanes.fill(-1);
}

void
UnitRecorder::reset()
{
    warps_seen_ = 0;
    warps_sampled_ = 0;
    live_rec_.fill(-1);
    last_rec_.fill(-1);
    for (auto &lanes : lane_ray_)
        lanes.fill(-1);
    records_.clear();
    stats_ = RecorderStats{};
}

bool
UnitRecorder::append(RayRecord &ray, const RayEvent &ev)
{
    if (ray.events.size() >= cfg_->max_events_per_ray) {
        ray.events_dropped++;
        stats_.events_dropped++;
        return false;
    }
    ray.events.push_back(ev);
    stats_.events_recorded++;
    return true;
}

int
UnitRecorder::rayIndex(int slot, int lane) const
{
    if (lane < 0 || lane >= kLanes)
        return -1;
    return lane_ray_[std::size_t(slot)][std::size_t(lane)];
}

void
UnitRecorder::onSubmit(int slot, std::uint64_t now,
                       std::uint32_t active_mask, std::uint32_t root_mask)
{
    live_rec_[std::size_t(slot)] = -1;
    last_rec_[std::size_t(slot)] = -1;
    const std::uint64_t ordinal = warps_seen_++;
    stats_.warps_seen++;
    if (ordinal < cfg_->warp_skip)
        return;
    if (cfg_->max_warps_per_unit > 0 &&
        warps_sampled_ >= cfg_->max_warps_per_unit)
        return;
    if (active_mask == 0)
        return;

    // Deterministic lane selection: rank the active lanes by a hash
    // of (seed, sm, submission ordinal, lane) and keep the K
    // smallest. Nothing here depends on host threading, so records
    // are byte-identical for every --jobs value.
    std::uint32_t sampled = 0;
    if (cfg_->sample_k >= kLanes) {
        sampled = active_mask;
    } else if (cfg_->sample_k > 0) {
        const std::uint64_t base = geom::mix64(
            cfg_->seed ^
            geom::mix64((std::uint64_t(sm_) << 40) | ordinal));
        std::array<std::pair<std::uint64_t, int>, kLanes> rank;
        int n = 0;
        for (int lane = 0; lane < kLanes; ++lane)
            if (active_mask & (1u << lane))
                rank[std::size_t(n++)] = {
                    geom::mix64(base + std::uint64_t(lane)), lane};
        std::sort(rank.begin(), rank.begin() + n);
        for (int i = 0; i < n && i < cfg_->sample_k; ++i)
            sampled |= 1u << rank[std::size_t(i)].second;
    }
    if (sampled == 0)
        return;

    WarpRecord w;
    w.sm = sm_;
    w.ordinal = ordinal;
    w.slot = slot;
    w.submit_cycle = now;
    w.active_mask = active_mask;
    w.sampled_mask = sampled;
    auto &lanes = lane_ray_[std::size_t(slot)];
    lanes.fill(-1);
    for (int lane = 0; lane < kLanes; ++lane) {
        if (!(sampled & (1u << lane)))
            continue;
        lanes[std::size_t(lane)] = std::int8_t(w.rays.size());
        RayRecord r;
        r.lane = lane;
        r.launch_cycle = now;
        const bool rooted = (root_mask & (1u << lane)) != 0;
        r.live_entries = rooted ? 1 : 0;
        r.stats.stack_hwm = std::uint64_t(r.live_entries);
        append(r, RayEvent{now, 0, EventKind::Launch, std::int8_t(lane),
                           std::int8_t(rooted ? 1 : 0)});
        w.rays.push_back(std::move(r));
        stats_.rays_sampled++;
    }
    if (cfg_->lane_timeline)
        for (int lane = 0; lane < kLanes; ++lane)
            w.lane_edges.push_back({now, std::int8_t(lane),
                                    (root_mask & (1u << lane)) != 0});
    warps_sampled_++;
    stats_.warps_sampled++;
    records_.push_back(std::move(w));
    live_rec_[std::size_t(slot)] = std::int32_t(records_.size() - 1);
    last_rec_[std::size_t(slot)] = live_rec_[std::size_t(slot)];
}

void
UnitRecorder::setWarpId(int slot, int warp_id)
{
    const std::int32_t rec = last_rec_[std::size_t(slot)];
    if (rec >= 0)
        records_[std::size_t(rec)].warp_id = warp_id;
}

void
UnitRecorder::onPop(int slot, int lane, int owner, std::uint32_t ref_raw,
                    bool stale, std::uint64_t now)
{
    const std::int32_t rec = live_rec_[std::size_t(slot)];
    if (rec < 0)
        return;
    const int ri = rayIndex(slot, owner);
    if (ri < 0)
        return;
    RayRecord &r = records_[std::size_t(rec)].rays[std::size_t(ri)];
    r.live_entries--;
    if (stale)
        r.stats.stale_pops++;
    else
        r.stats.node_pops++;
    append(r, RayEvent{now, ref_raw, EventKind::NodePop,
                       std::int8_t(lane), std::int8_t(stale ? 1 : 0)});
}

void
UnitRecorder::onFetchIssued(int slot, int lane, int owner,
                            std::uint32_t ref_raw, int level,
                            std::uint64_t now)
{
    const std::int32_t rec = live_rec_[std::size_t(slot)];
    if (rec < 0)
        return;
    const int ri = rayIndex(slot, owner);
    if (ri < 0)
        return;
    RayRecord &r = records_[std::size_t(rec)].rays[std::size_t(ri)];
    if (level >= 0 && level < 3)
        r.stats.level_hist[std::size_t(level)]++;
    append(r, RayEvent{now, ref_raw, EventKind::FetchIssued,
                       std::int8_t(lane), std::int8_t(level)});
}

void
UnitRecorder::onFetchConsumed(int slot, int lane, int owner,
                              std::uint32_t ref_raw, int level,
                              std::uint64_t now)
{
    const std::int32_t rec = live_rec_[std::size_t(slot)];
    if (rec < 0)
        return;
    const int ri = rayIndex(slot, owner);
    if (ri < 0)
        return;
    RayRecord &r = records_[std::size_t(rec)].rays[std::size_t(ri)];
    r.stats.node_visits++;
    append(r, RayEvent{now, ref_raw, EventKind::FetchConsumed,
                       std::int8_t(lane), std::int8_t(level)});
}

void
UnitRecorder::onNodePush(int slot, int lane, int owner,
                         std::uint32_t ref_raw, std::uint64_t now)
{
    const std::int32_t rec = live_rec_[std::size_t(slot)];
    if (rec < 0)
        return;
    const int ri = rayIndex(slot, owner);
    if (ri < 0)
        return;
    RayRecord &r = records_[std::size_t(rec)].rays[std::size_t(ri)];
    r.live_entries++;
    r.stats.node_pushes++;
    r.stats.stack_hwm =
        std::max(r.stats.stack_hwm, std::uint64_t(r.live_entries));
    append(r, RayEvent{now, ref_raw, EventKind::NodePush,
                       std::int8_t(lane), -1});
}

void
UnitRecorder::onLeafTests(int slot, int lane, int owner,
                          std::uint32_t tests, std::uint64_t now)
{
    const std::int32_t rec = live_rec_[std::size_t(slot)];
    if (rec < 0 || tests == 0)
        return;
    const int ri = rayIndex(slot, owner);
    if (ri < 0)
        return;
    RayRecord &r = records_[std::size_t(rec)].rays[std::size_t(ri)];
    r.stats.leaf_tests += tests;
    append(r, RayEvent{now, tests, EventKind::LeafTest,
                       std::int8_t(lane), -1});
}

void
UnitRecorder::onSteal(int slot, int donor, int recipient, int owner,
                      bool reform, std::uint64_t now)
{
    const std::int32_t rec = live_rec_[std::size_t(slot)];
    if (rec < 0)
        return;
    WarpRecord &w = records_[std::size_t(rec)];

    // The steal-event conservation ledger (ray.event_conservation):
    // every appendable steal event bumps the expected count before
    // the mutation gate, so a RayProvenanceDrop — the recorder
    // "forgetting" an event — is caught at warp retirement.
    const auto appendSteal = [&](RayRecord &r, const RayEvent &ev) {
        if (r.events.size() >= cfg_->max_events_per_ray) {
            r.events_dropped++;
            stats_.events_dropped++;
            return;
        }
        COOPRT_CHECK_ONLY(w.audit_steal_expected++;)
        if (COOPRT_MUTATE(RayProvenanceDrop))
            return;
        r.events.push_back(ev);
        stats_.events_recorded++;
    };

    const int oi = rayIndex(slot, owner);
    const int hi = rayIndex(slot, recipient);
    if (oi >= 0 || hi >= 0)
        stats_.steal_events++;
    if (oi >= 0) {
        RayRecord &r = w.rays[std::size_t(oi)];
        r.stats.steals_out++;
        appendSteal(r, RayEvent{now, 0, EventKind::StealDonated,
                                std::int8_t(donor),
                                std::int8_t(recipient)});
        if (reform)
            append(r, RayEvent{now, 0, EventKind::SubwarpReform,
                               std::int8_t(recipient),
                               std::int8_t(donor)});
    }
    if (hi >= 0) {
        RayRecord &h = w.rays[std::size_t(hi)];
        h.stats.steals_in++;
        appendSteal(h, RayEvent{now, 0, EventKind::StealReceived,
                                std::int8_t(recipient),
                                std::int8_t(donor)});
    }
}

void
UnitRecorder::onLaneEdge(int slot, int lane, bool busy, std::uint64_t now)
{
    const std::int32_t rec = live_rec_[std::size_t(slot)];
    if (rec < 0)
        return;
    records_[std::size_t(rec)].lane_edges.push_back(
        {now, std::int8_t(lane), busy});
}

void
UnitRecorder::onRetire(int slot, std::uint64_t now)
{
    const std::int32_t rec = live_rec_[std::size_t(slot)];
    if (rec < 0)
        return;
    WarpRecord &w = records_[std::size_t(rec)];
    w.retire_cycle = now;
    w.retired = true;
    for (auto &r : w.rays) {
        r.retire_cycle = now;
        append(r, RayEvent{now, 0, EventKind::Retire,
                           std::int8_t(r.lane), -1});
    }
    if (cfg_->lane_timeline)
        for (int lane = 0; lane < kLanes; ++lane)
            w.lane_edges.push_back({now, std::int8_t(lane), false});
    stats_.warps_retired++;

#if COOPRT_CHECK_ENABLED
    std::uint64_t recorded = 0;
    for (const auto &r : w.rays)
        for (const auto &ev : r.events)
            if (ev.kind == EventKind::StealDonated ||
                ev.kind == EventKind::StealReceived)
                recorded++;
    COOPRT_AUDIT(label_, "ray.event_conservation", now,
                 recorded == w.audit_steal_expected,
                 "steal events recorded " + std::to_string(recorded) +
                     " != expected " +
                     std::to_string(w.audit_steal_expected) + " (warp ord " +
                     std::to_string(w.ordinal) + ")");
#endif

    live_rec_[std::size_t(slot)] = -1;
}

// ---------------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------------

const CriticalPathEntry *
CriticalPathReport::slowest() const
{
    const CriticalPathEntry *best = nullptr;
    for (const auto &e : per_sm)
        if (best == nullptr || e.latency() > best->latency())
            best = &e;
    return best;
}

const CriticalPathEntry *
Summary::slowest() const
{
    const CriticalPathEntry *best = nullptr;
    for (const auto &e : critical)
        if (best == nullptr || e.latency() > best->latency())
            best = &e;
    return best;
}

CriticalPathEntry
attributeCriticalPath(const WarpRecord &w)
{
    CriticalPathEntry e;
    e.sm = w.sm;
    e.ordinal = w.ordinal;
    e.warp_id = w.warp_id;
    e.submit_cycle = w.submit_cycle;
    e.retire_cycle = w.retire_cycle;

    // The retirement-blocking ray: among the sampled rays, the one
    // whose provenance log reaches furthest (with K < kLanes this is
    // a sampling approximation of the true blocker — see DESIGN §13).
    const RayRecord *blocking = nullptr;
    for (const auto &r : w.rays)
        if (blocking == nullptr ||
            r.lastEventCycle() > blocking->lastEventCycle())
            blocking = &r;
    const std::uint64_t n = e.latency();
    if (blocking == nullptr) {
        e.buckets[std::size_t(prof::Bucket::IdleNoRay)] = n;
        return e;
    }
    e.blocking_lane = blocking->lane;
    e.blocking_last_event = blocking->lastEventCycle();
    e.ray_node_visits = blocking->stats.node_visits;
    e.ray_steals_in = blocking->stats.steals_in;
    e.ray_steals_out = blocking->stats.steals_out;
    if (n == 0)
        return e;

    // One bucket per warp-latency cycle, painted lowest priority
    // first so later passes win: fetch_queued (default: the ray has
    // work but the unit serves other lanes) -> starved_l1/l2/dram
    // over in-flight fetch intervals (deepest level painted last) ->
    // lbu_steal on steal-event cycles -> issue_compute on progress
    // cycles -> idle_no_ray for the tail after the last event.
    std::vector<std::uint8_t> cls(
        n, std::uint8_t(prof::Bucket::FetchQueued));
    const auto mark = [&](std::uint64_t cycle, prof::Bucket b) {
        if (cycle >= w.submit_cycle && cycle < w.retire_cycle)
            cls[cycle - w.submit_cycle] = std::uint8_t(b);
    };
    constexpr std::uint64_t kNone = ~0ULL;
    for (int level = 0; level < 3; ++level) {
        std::array<std::uint64_t, kLanes> open;
        open.fill(kNone);
        for (const auto &ev : blocking->events) {
            const std::size_t lane = std::size_t(ev.lane);
            if (ev.kind == EventKind::FetchIssued &&
                int(ev.aux) == level) {
                open[lane] = ev.cycle;
            } else if (ev.kind == EventKind::FetchConsumed &&
                       int(ev.aux) == level && open[lane] != kNone) {
                for (std::uint64_t c = open[lane]; c < ev.cycle; ++c)
                    mark(c, starvedBucket(level));
                open[lane] = kNone;
            }
        }
        for (std::size_t lane = 0; lane < kLanes; ++lane)
            if (open[lane] != kNone)
                for (std::uint64_t c = open[lane]; c < w.retire_cycle;
                     ++c)
                    mark(c, starvedBucket(level));
    }
    for (const auto &ev : blocking->events)
        switch (ev.kind) {
        case EventKind::StealDonated:
        case EventKind::StealReceived:
        case EventKind::SubwarpReform:
            mark(ev.cycle, prof::Bucket::LbuSteal);
            break;
        default:
            break;
        }
    for (const auto &ev : blocking->events)
        switch (ev.kind) {
        case EventKind::Launch:
        case EventKind::NodePop:
        case EventKind::NodePush:
        case EventKind::FetchIssued:
        case EventKind::FetchConsumed:
        case EventKind::LeafTest:
            mark(ev.cycle, prof::Bucket::IssueCompute);
            break;
        default:
            break;
        }
    for (std::uint64_t c = e.blocking_last_event + 1;
         c < w.retire_cycle; ++c)
        mark(c, prof::Bucket::IdleNoRay);

    for (std::uint64_t c = 0; c < n; ++c)
        e.buckets[std::size_t(cls[std::size_t(c)])]++;
    return e;
}

void
writeCriticalPath(std::ostream &os, const CriticalPathReport &r)
{
    os << "critical path: slowest sampled warp per SM, cycles "
          "attributed along its blocking ray\n";
    os << std::left << std::setw(4) << "sm" << std::right
       << std::setw(6) << "warp" << std::setw(9) << "latency"
       << std::setw(6) << "lane" << std::setw(8) << "visits"
       << std::setw(6) << "s.in" << std::setw(7) << "s.out";
    for (int b = 0; b < prof::kNumBuckets; ++b)
        os << std::setw(17) << prof::bucketName(prof::Bucket(b));
    os << '\n';
    for (const auto &e : r.per_sm) {
        os << std::left << std::setw(4) << e.sm << std::right
           << std::setw(6) << e.warp_id << std::setw(9) << e.latency()
           << std::setw(6) << e.blocking_lane << std::setw(8)
           << e.ray_node_visits << std::setw(6) << e.ray_steals_in
           << std::setw(7) << e.ray_steals_out;
        for (int b = 0; b < prof::kNumBuckets; ++b)
            os << std::setw(17) << e.buckets[std::size_t(b)];
        os << '\n';
    }
    if (const CriticalPathEntry *s = r.slowest())
        os << "slowest: sm" << s->sm << " warp " << s->warp_id << " ("
           << s->latency() << " cycles, blocking lane "
           << s->blocking_lane << ")\n";
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

Recorder::~Recorder()
{
    if (registry_ != nullptr)
        registry_->unregisterOwner(this);
}

UnitRecorder &
Recorder::unit(int sm)
{
    if (sm >= int(units_.size()))
        units_.resize(std::size_t(sm) + 1);
    auto &u = units_[std::size_t(sm)];
    if (u == nullptr) {
        u = std::make_unique<UnitRecorder>(sm, &cfg_);
        u->setCheckLabel("raytrace.sm" + std::to_string(sm));
    }
    return *u;
}

void
Recorder::reset()
{
    for (auto &u : units_)
        if (u != nullptr)
            u->reset();
}

RecorderStats
Recorder::stats() const
{
    RecorderStats s;
    for (const auto &u : units_) {
        if (u == nullptr)
            continue;
        const RecorderStats &us = u->stats();
        s.warps_seen += us.warps_seen;
        s.warps_sampled += us.warps_sampled;
        s.warps_retired += us.warps_retired;
        s.rays_sampled += us.rays_sampled;
        s.events_recorded += us.events_recorded;
        s.events_dropped += us.events_dropped;
        s.steal_events += us.steal_events;
    }
    return s;
}

std::vector<const WarpRecord *>
Recorder::warps() const
{
    std::vector<const WarpRecord *> out;
    for (const auto &u : units_)
        if (u != nullptr)
            for (const auto &w : u->warps())
                out.push_back(&w);
    return out;
}

const WarpRecord *
Recorder::slowestWarp(int sm) const
{
    if (sm < 0 || sm >= int(units_.size()) ||
        units_[std::size_t(sm)] == nullptr)
        return nullptr;
    const WarpRecord *best = nullptr;
    for (const auto &w : units_[std::size_t(sm)]->warps())
        if (w.retired && (best == nullptr || w.latency() > best->latency()))
            best = &w;
    return best;
}

void
Recorder::registerMetrics(trace::Registry &reg)
{
    registry_ = &reg;
    reg.probe("ray.warps_seen",
              [this] { return double(stats().warps_seen); }, this);
    reg.probe("ray.warps_sampled",
              [this] { return double(stats().warps_sampled); }, this);
    reg.probe("ray.warps_retired",
              [this] { return double(stats().warps_retired); }, this);
    reg.probe("ray.rays_sampled",
              [this] { return double(stats().rays_sampled); }, this);
    reg.probe("ray.events_recorded",
              [this] { return double(stats().events_recorded); }, this);
    reg.probe("ray.events_dropped",
              [this] { return double(stats().events_dropped); }, this);
    reg.probe("ray.steal_events",
              [this] { return double(stats().steal_events); }, this);
}

void
Recorder::emitPerfetto(trace::Tracer &tracer) const
{
    // Track ids: pids are SM ids (shared with the SM trace tracks);
    // tids start far above the GPU warp-id range so ray tracks never
    // collide with the per-warp "trace_ray" slices from the SMs.
    constexpr int kTrackBase = 1000000;
    for (const WarpRecord *wp : warps()) {
        const WarpRecord &w = *wp;
        if (!w.retired)
            continue;
        const int tid0 = kTrackBase + int(w.ordinal) * (kLanes + 1);
        std::string label = "rays ";
        if (w.warp_id >= 0) {
            label += 'w';
            label += std::to_string(w.warp_id);
        } else {
            label += "ord";
            label += std::to_string(w.ordinal);
        }
        tracer.threadName(w.sm, tid0, label);
        tracer.complete("ray", "warp", w.sm, tid0, w.submit_cycle,
                        w.latency());
        for (const auto &r : w.rays) {
            const int tid = tid0 + 1 + r.lane;
            tracer.threadName(w.sm, tid,
                              label + " lane " + std::to_string(r.lane));
            tracer.complete("ray", "ray", w.sm, tid, r.launch_cycle,
                            r.retire_cycle - r.launch_cycle);
            std::array<const RayEvent *, kLanes> open{};
            for (const auto &ev : r.events) {
                const std::size_t lane = std::size_t(ev.lane);
                switch (ev.kind) {
                case EventKind::FetchIssued:
                    open[lane] = &ev;
                    break;
                case EventKind::FetchConsumed:
                    if (const RayEvent *is = open[lane]) {
                        tracer.complete("ray", fetchSliceName(is->aux),
                                        w.sm, tid, is->cycle,
                                        ev.cycle - is->cycle);
                        open[lane] = nullptr;
                    }
                    break;
                case EventKind::LeafTest:
                    tracer.instant("ray", "leaf_test", w.sm, tid,
                                   ev.cycle);
                    break;
                case EventKind::StealDonated:
                    tracer.instant("ray", "steal_out", w.sm, tid,
                                   ev.cycle);
                    break;
                case EventKind::StealReceived:
                    tracer.instant("ray", "steal_in", w.sm, tid,
                                   ev.cycle);
                    break;
                case EventKind::SubwarpReform:
                    tracer.instant("ray", "reform", w.sm, tid,
                                   ev.cycle);
                    break;
                default:
                    break;
                }
            }
        }
    }
}

CriticalPathReport
Recorder::criticalPath() const
{
    CriticalPathReport report;
    for (int sm = 0; sm < int(units_.size()); ++sm)
        if (const WarpRecord *w = slowestWarp(sm))
            report.per_sm.push_back(attributeCriticalPath(*w));
    return report;
}

void
Recorder::writeRayStatsJson(std::ostream &os,
                            const std::string &scene) const
{
    trace::JsonWriter w(os);
    w.open();
    trace::writeSchemaVersion(w);
    if (run_key_.valid())
        trace::writeRunKey(w, run_key_);
    w.field("scene", scene);
    w.field("sample_k", cfg_.sample_k);
    w.field("seed", cfg_.seed);
    const RecorderStats s = stats();
    w.field("warps_seen", s.warps_seen);
    w.field("warps_sampled", s.warps_sampled);
    w.field("warps_retired", s.warps_retired);
    w.field("rays_sampled", s.rays_sampled);
    w.field("events_recorded", s.events_recorded);
    w.field("events_dropped", s.events_dropped);
    w.field("steal_events", s.steal_events);
    w.openArray("warps");
    for (const WarpRecord *wp : warps()) {
        const WarpRecord &wr = *wp;
        w.open();
        w.field("sm", wr.sm);
        w.field("ordinal", wr.ordinal);
        w.field("warp_id", wr.warp_id);
        w.field("submit", wr.submit_cycle);
        w.field("retire", wr.retire_cycle);
        w.field("retired", wr.retired ? "true" : "false");
        w.field("sampled_mask", wr.sampled_mask);
        w.openArray("rays");
        for (const auto &r : wr.rays) {
            w.open();
            w.field("lane", r.lane);
            w.field("launch", r.launch_cycle);
            w.field("retire", r.retire_cycle);
            w.field("node_visits", r.stats.node_visits);
            w.field("node_pops", r.stats.node_pops);
            w.field("stale_pops", r.stats.stale_pops);
            w.field("node_pushes", r.stats.node_pushes);
            w.field("leaf_tests", r.stats.leaf_tests);
            w.field("steals_in", r.stats.steals_in);
            w.field("steals_out", r.stats.steals_out);
            w.field("stack_hwm", r.stats.stack_hwm);
            w.openArray("levels");
            for (const std::uint64_t lv : r.stats.level_hist)
                w.value(lv);
            w.closeArray();
            w.field("events", r.events.size());
            w.field("events_dropped", r.events_dropped);
            w.close();
        }
        w.closeArray();
        w.close();
    }
    w.closeArray();
    w.close();
    os << '\n';
}

void
Recorder::writeRayStatsCsv(std::ostream &os) const
{
    os << "sm,ordinal,warp_id,lane,launch,retire,node_visits,"
          "node_pops,stale_pops,node_pushes,leaf_tests,steals_in,"
          "steals_out,stack_hwm,l1,l2,dram,events\n";
    for (const WarpRecord *wp : warps())
        for (const auto &r : wp->rays)
            os << wp->sm << ',' << wp->ordinal << ',' << wp->warp_id
               << ',' << r.lane << ',' << r.launch_cycle << ','
               << r.retire_cycle << ',' << r.stats.node_visits << ','
               << r.stats.node_pops << ',' << r.stats.stale_pops << ','
               << r.stats.node_pushes << ',' << r.stats.leaf_tests
               << ',' << r.stats.steals_in << ',' << r.stats.steals_out
               << ',' << r.stats.stack_hwm << ','
               << r.stats.level_hist[0] << ',' << r.stats.level_hist[1]
               << ',' << r.stats.level_hist[2] << ','
               << r.events.size() << '\n';
}

Summary
Recorder::summary() const
{
    Summary s;
    s.enabled = true;
    s.stats = stats();
    s.critical = criticalPath().per_sm;
    return s;
}

stats::TimelineRecorder
laneTimeline(const WarpRecord &w)
{
    stats::TimelineRecorder rec(kLanes);
    for (const auto &e : w.lane_edges)
        rec.setBusy(e.lane, e.cycle, e.busy);
    return rec;
}

} // namespace cooprt::raytrace

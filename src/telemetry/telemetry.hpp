/**
 * @file
 * `cooprt::telemetry` — host-side runtime telemetry for the simulator
 * as a *process*: where wall-clock time and memory go, how fast the
 * simulation itself runs, and how a campaign is progressing.
 *
 * Everything in `src/trace`, `src/prof`, `src/raytrace` and
 * `src/memscope` observes the *simulated* GPU; this subsystem
 * observes the simulator. Per run it records phase-scoped monotonic
 * wall-clock spans (scene load, BVH build, warmup, sim loop, report
 * emission), derived throughput gauges (simulated cycles/sec, rays
 * retired/sec) and peak/current RSS; per campaign it adds a live
 * stderr heartbeat, a JSON-lines event log and a Prometheus-style
 * text exposition snapshot.
 *
 * Determinism contract (the same one every observer layer honors):
 * attaching telemetry never changes simulated results — the recorder
 * only reads simulated state, never schedules. Host wall-clock and
 * RSS are inherently nondeterministic, so every sink this subsystem
 * writes splits its fields into a deterministic part (simulated
 * cycles, tags, counts) and a `"host"` object holding the timing /
 * memory / scheduling fields; byte-identity tests (`--jobs 1` vs
 * `--jobs N`) strip the `"host"` objects and compare the rest (see
 * DESIGN.md §16 and tools/validate_telemetry.py).
 *
 * Usage (what `simulate_cli --telemetry` does):
 *
 *     telemetry::Recorder rec;
 *     core::RunConfig cfg;
 *     cfg.telemetry = &rec;
 *     auto out = sim.run(cfg);           // phases + throughput
 *     rec.writeJson(std::cout, out.scene);
 */

#ifndef COOPRT_TELEMETRY_TELEMETRY_HPP
#define COOPRT_TELEMETRY_TELEMETRY_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

#include "trace/json.hpp"

namespace cooprt::trace {
class Registry;
} // namespace cooprt::trace

namespace cooprt::telemetry {

/**
 * Monotonic host wall clock in seconds. The single wall-clock
 * authority of the subsystem: every span, event timestamp and
 * heartbeat interval derives from this reading, and none of it ever
 * feeds simulated state.
 */
double monotonicSeconds();

/* ------------------------------------------------------------------ */
/* Build provenance                                                    */
/* ------------------------------------------------------------------ */

/**
 * Append the configure-time provenance fields (git revision, dirty
 * flag, compiler, build type, COOPRT_CHECK) to an already-open JSON
 * object. Every JSON report/sink embeds these under a `"build"` key
 * so artifacts are attributable to an exact binary.
 */
void writeBuildFields(trace::JsonWriter &w);

/** The whole provenance object as one compact JSON string,
 *  `{"revision":...,"dirty":...,...}` — for hand-rolled emitters. */
std::string buildInfoJson();

/* ------------------------------------------------------------------ */
/* Process memory                                                      */
/* ------------------------------------------------------------------ */

/** Resident-set sizes in kB; zeros when the platform offers none. */
struct Rss
{
    std::uint64_t current_kb = 0; ///< VmRSS
    std::uint64_t peak_kb = 0;    ///< VmHWM (high-water mark)
};

/** Parse `VmRSS` / `VmHWM` lines from a /proc/self/status stream
 *  (split out so tests can feed synthetic content). */
Rss parseProcStatus(std::istream &is);

/** The process's RSS via /proc/self/status on Linux; all-zero
 *  (gracefully degraded, never an error) elsewhere. */
Rss readRss();

/* ------------------------------------------------------------------ */
/* Per-run phase spans and throughput                                  */
/* ------------------------------------------------------------------ */

/**
 * The host-side phases of one simulation run, in lifecycle order.
 * `Warmup` is frame construction (camera rays + warp programs built
 * before the first simulated cycle); `SceneLoad` / `BvhBuild` report
 * the one-time construction cost of the process-wide cached scene /
 * BVH the run used (re-reported by every run sharing the cache — see
 * DESIGN.md §16.2). `Report` is timed by the caller around sink
 * emission.
 */
enum class Phase : int { SceneLoad, BvhBuild, Warmup, SimLoop, Report };

inline constexpr int kNumPhases = 5;

/** Stable snake_case name ("scene_load", "sim_loop", ...). */
const char *phaseName(Phase phase);

/** Accumulated wall clock of one phase. */
struct PhaseSpan
{
    double seconds = 0.0;
    std::uint64_t count = 0; ///< recorded spans (0 = phase never ran)
};

/** Everything one run's telemetry boils down to. */
struct Summary
{
    bool enabled = false;
    /* Deterministic (simulated) totals. */
    std::uint64_t cycles = 0;       ///< simulated cycles
    std::uint64_t rays_retired = 0; ///< retired trace_rays warps
    /* Host-side (nondeterministic) measurements. */
    std::array<PhaseSpan, kNumPhases> phases{};
    double sim_seconds = 0.0;     ///< SimLoop span of this run
    double cycles_per_sec = 0.0;  ///< cycles / sim_seconds
    double rays_per_sec = 0.0;    ///< rays_retired / sim_seconds
    Rss rss;                      ///< sampled at finishRun()

    const PhaseSpan &phase(Phase p) const
    { return phases[std::size_t(p)]; }
};

/**
 * Per-run host telemetry recorder. Borrowed via
 * `core::RunConfig::telemetry` exactly like the profiler/collector
 * peers: must outlive the run, is reset by each run that uses it,
 * and is purely observational — simulated cycle counts are
 * bit-identical with and without it.
 *
 * Not thread-safe across runs (one recorder per concurrent job, as
 * the campaign engine arranges); the live-progress gauges are
 * atomics so a heartbeat thread may read them mid-run.
 */
class Recorder
{
  public:
    /** Forget everything from a previous run. */
    void reset();

    /** Add @p seconds to @p phase (one recorded span). */
    void recordPhase(Phase phase, double seconds);

    /** RAII span: times its scope into @p phase. */
    class ScopedPhase
    {
      public:
        ScopedPhase(Recorder *recorder, Phase phase)
            : recorder_(recorder), phase_(phase),
              t0_(monotonicSeconds())
        {
        }
        ~ScopedPhase()
        {
            if (recorder_ != nullptr)
                recorder_->recordPhase(phase_,
                                       monotonicSeconds() - t0_);
        }
        ScopedPhase(const ScopedPhase &) = delete;
        ScopedPhase &operator=(const ScopedPhase &) = delete;

      private:
        Recorder *recorder_;
        Phase phase_;
        double t0_;
    };

    /** A scope timer for @p phase; null-recorder tolerant, so call
     *  sites need no branch: `Recorder::span(cfg.telemetry, ...)`. */
    static ScopedPhase span(Recorder *recorder, Phase phase)
    { return ScopedPhase(recorder, phase); }

    /**
     * Live progress, published by the GPU at activity-sampling
     * boundaries (simulated values; heartbeats read them without
     * perturbing the run).
     */
    void
    publishProgress(std::uint64_t cycle, std::uint64_t rays_retired)
    {
        live_cycle_.store(cycle, std::memory_order_relaxed);
        live_rays_.store(rays_retired, std::memory_order_relaxed);
    }
    std::uint64_t liveCycle() const
    { return live_cycle_.load(std::memory_order_relaxed); }
    std::uint64_t liveRays() const
    { return live_rays_.load(std::memory_order_relaxed); }

    /**
     * Seal the run: store the simulated totals, derive the
     * throughput gauges from the SimLoop span and sample RSS.
     */
    void finishRun(std::uint64_t cycles, std::uint64_t rays_retired);

    const Summary &summary() const { return summary_; }

    /**
     * Register the recorder's *deterministic* gauges as
     * `telemetry.*` probes (DESIGN.md §16.4 authority table). Only
     * simulated values join per-run metric sessions — host wall
     * clock and RSS stay out, so metrics CSVs remain byte-identical
     * across worker counts.
     */
    void registerMetrics(trace::Registry &registry);

    /**
     * The per-run telemetry sink: deterministic `"sim"` fields,
     * the `"build"` provenance object and a `"host"` object holding
     * every nondeterministic measurement.
     */
    void writeJson(std::ostream &os, const std::string &scene) const;

    /** Stamp the run identity (called by `Simulation::run`); emitted
     *  into writeJson. Metadata only — survives reset(). */
    void setRunKey(const trace::RunKeyFields &key) { run_key_ = key; }
    const trace::RunKeyFields &runKey() const { return run_key_; }

  private:
    Summary summary_;
    std::atomic<std::uint64_t> live_cycle_{0};
    std::atomic<std::uint64_t> live_rays_{0};
    trace::RunKeyFields run_key_;
};

/* ------------------------------------------------------------------ */
/* Campaign-level telemetry                                            */
/* ------------------------------------------------------------------ */

/**
 * A snapshot of the campaign counters (mirrors `exec::CampaignStats`
 * without depending on it; exec copies the atomics in).
 */
struct CampaignCounters
{
    std::uint64_t queued = 0;
    std::uint64_t running = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t retried = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t steals = 0;
};

/**
 * Structured JSON-lines event log of a campaign's lifecycle
 * (campaign_begin, job_start, job_retry, job_timeout, job_finish,
 * campaign_end). One line per event; deterministic fields first, one
 * trailing `"host"` object per line with the timing / scheduling
 * fields. Thread-safe: workers emit concurrently, lines never
 * interleave. The stream is borrowed; null disables every call.
 */
class EventLog
{
  public:
    explicit EventLog(std::ostream *os);

    bool enabled() const { return os_ != nullptr; }

    void campaignBegin(std::size_t jobs, int workers);
    void jobStart(std::size_t index, const std::string &tag,
                  int attempt);
    void jobRetry(std::size_t index, const std::string &tag,
                  int next_attempt);
    void jobTimeout(std::size_t index, const std::string &tag,
                    double budget_s);
    void jobFinish(std::size_t index, const std::string &tag, bool ok,
                   int attempts, std::uint64_t cycles,
                   double duration_s);
    void campaignEnd(const CampaignCounters &counters,
                     double wall_seconds);

  private:
    /** @p deterministic: fields after `"ev"`; @p host: fields inside
     *  the trailing host object (timestamp added automatically). */
    void emit(const char *event, const std::string &deterministic,
              const std::string &host = {});

    std::ostream *os_;
    double t0_ = 0.0;
    std::mutex mutex_;
};

/**
 * Aggregate campaign monitor: EWMA job duration, ETA, the live
 * status line the heartbeat prints, and the Prometheus snapshot.
 * Thread-safe; one per campaign.
 */
class CampaignMonitor
{
  public:
    /** Arm for a campaign of @p total_jobs on @p workers threads. */
    void begin(std::size_t total_jobs, int workers);

    /** Fold one finished job into the EWMA (workers call this). */
    void jobFinished(double duration_seconds);

    /** EWMA of per-job wall clock (0 until the first job lands). */
    double ewmaJobSeconds() const;

    /** Completed jobs per wall-clock second since begin(). */
    double jobsPerSecond(const CampaignCounters &counters) const;

    /**
     * Estimated seconds to completion: remaining × EWMA ÷ workers.
     * Negative when unknown (no finished job yet).
     */
    double etaSeconds(const CampaignCounters &counters) const;

    /** The heartbeat line, e.g.
     *  `12/40 done, 1 failed, 4 running, 3 steals, ewma 0.41 s,
     *   eta 2.9 s, rss 182 MB`. */
    std::string statusLine(const CampaignCounters &counters) const;

    /**
     * Register the campaign-level `telemetry.*` probes (EWMA,
     * jobs/sec, RSS) into @p registry under @p owner. Campaign
     * registries only — these gauges are host-side and must never
     * join a per-run metrics session.
     */
    void registerProbes(trace::Registry &registry, const void *owner);

    /**
     * Write a Prometheus text-exposition snapshot atomically (tmp
     * file + rename, so scrapers never see a torn file).
     */
    void writePrometheus(const std::string &path,
                         const CampaignCounters &counters) const;

    /** writePrometheus body, for tests / non-file sinks. */
    void writePrometheusTo(std::ostream &os,
                           const CampaignCounters &counters) const;

  private:
    mutable std::mutex mutex_;
    std::size_t total_jobs_ = 0;
    int workers_ = 1;
    double t0_ = 0.0;
    double ewma_seconds_ = 0.0;
    std::uint64_t finished_ = 0;
    /** Snapshot for the registry probes (filled by jobFinished). */
    std::function<CampaignCounters()> counters_fn_;

  public:
    /** Provide the counters source for registerProbes gauges. */
    void setCountersSource(std::function<CampaignCounters()> fn)
    { counters_fn_ = std::move(fn); }
};

/**
 * Periodic heartbeat: a jthread that writes @p status() to @p os
 * every @p interval_seconds until destroyed. Prompt shutdown (the
 * sleep is stop-token aware); writes never tear because each beat is
 * one formatted line.
 */
class Heartbeat
{
  public:
    Heartbeat(double interval_seconds,
              std::function<std::string()> status, std::ostream &os);
    ~Heartbeat();

    Heartbeat(const Heartbeat &) = delete;
    Heartbeat &operator=(const Heartbeat &) = delete;

    /** Beats emitted so far (tests poll this). */
    std::uint64_t beats() const
    { return beats_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> beats_{0};
    std::jthread thread_;
};

} // namespace cooprt::telemetry

#endif // COOPRT_TELEMETRY_TELEMETRY_HPP
